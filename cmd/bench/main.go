// Command bench measures the simulator's host-side performance: it runs a
// fixed scan + join suite across the paper's four execution settings on
// the batched fast path (the "sweep"), then compares the fast path
// against the per-op reference engine on representative workloads (the
// "speedup" section), asserting that both produce identical simulated
// results. Results are written to a BENCH_engine.json trajectory file so
// future performance PRs are comparable.
//
// Methodology: every workload is prepared once (environment, input data,
// pre-allocated result buffers — the paper pre-allocates result memory)
// and then run N times; the reported host_ns is the median repetition,
// the right estimator on a noisy single-CPU container. Simulated caches
// start cold on every repetition (each run builds fresh threads), so the
// simulated results of a repetition are independent of the others.
//
// Usage:
//
//	go run ./cmd/bench           # full suite (a few minutes, single core)
//	go run ./cmd/bench -quick    # small sizes, CI smoke run
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/debug"
	"sort"
	"time"

	"sgxbench/internal/core"
	"sgxbench/internal/engine"
	"sgxbench/internal/join"
	"sgxbench/internal/kernels"
	"sgxbench/internal/platform"
	"sgxbench/internal/rel"
	"sgxbench/internal/scan"
)

var (
	quick   = flag.Bool("quick", false, "small sizes and single repetitions (CI smoke run)")
	out     = flag.String("out", "BENCH_engine.json", "output JSON trajectory file")
	threads = flag.Int("threads", 4, "worker threads for the sweep workloads")
)

// wlResult is one (workload, setting, engine-mode) measurement.
type wlResult struct {
	Workload  string `json:"workload"`
	Setting   string `json:"setting"`
	Mode      string `json:"mode"`    // "fast" or "per-op"
	HostNS    int64  `json:"host_ns"` // median over repetitions
	Reps      int    `json:"reps"`
	SimCycles uint64 `json:"sim_cycles"`
	Check     uint64 `json:"check"` // matches / cycle checksum for equivalence
}

type report struct {
	Schema      string             `json:"schema"`
	Timestamp   string             `json:"timestamp"`
	GoVersion   string             `json:"go_version"`
	NumCPU      int                `json:"num_cpu"`
	Quick       bool               `json:"quick"`
	Sweep       []wlResult         `json:"sweep"`
	Speedup     []wlResult         `json:"speedup"`
	Speedups    map[string]float64 `json:"speedups"`
	Equivalent  bool               `json:"equivalence_ok"`
	TargetsMet  bool               `json:"targets_met"`
	TargetNotes []string           `json:"target_notes"`
}

func settings() []core.Setting {
	return []core.Setting{core.PlainCPU, core.PlainCPUM, core.SGXDoE, core.SGXDiE}
}

func median(ds []time.Duration) time.Duration {
	s := append([]time.Duration(nil), ds...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	return s[len(s)/2]
}

// runner executes one timed repetition of a prepared workload and
// returns (host time, simulated cycles, check value).
type runner func() (time.Duration, uint64, uint64)

// --- workload preparation; each returns a runner over reusable state ---

func prepSeq(ref bool, setting core.Setting, bytes int64) runner {
	env := core.NewEnv(core.Options{Plat: platform.XeonGold6326().Scaled(32), Setting: setting, Reference: ref})
	buf := env.Space.Raw("seq", bytes, env.DataRegion())
	return func() (time.Duration, uint64, uint64) {
		t := engine.NewThread(env.EngineConfig(), 0)
		start := time.Now()
		cyc := kernels.StreamRead(t, buf, 0, bytes)
		return time.Since(start), cyc, cyc
	}
}

func prepScan(ref bool, setting core.Setting, bytes int, rowIDs bool, thr int) runner {
	env := core.NewEnv(core.Options{Plat: platform.XeonGold6326().Scaled(32), Setting: setting, Reference: ref})
	col := env.Space.AllocU8("col", bytes, env.DataRegion())
	scan.GenColumn(col, 9)
	opt := scan.Options{Threads: thr, Pred: scan.Predicate{Lo: 16, Hi: 127}, RowIDs: rowIDs}
	if rowIDs {
		opt.IDs = env.Space.AllocU64("scan.ids", col.Len()+64, env.DataRegion())
	} else {
		opt.Bits = env.Space.AllocU64("scan.bits", col.Len()/64+2, env.DataRegion())
	}
	return func() (time.Duration, uint64, uint64) {
		start := time.Now()
		res := scan.Run(env, col, opt)
		return time.Since(start), res.WallCycles, res.Matches
	}
}

// prepGather prepares the filter→gather plan: the row-id scan runs once
// (untimed), its ids are shuffled into an unclustered list, and each
// repetition re-gathers the payload column at those ids. maxIDs caps the
// gather volume so the suite stays within minutes (random accesses are
// the most expensive pattern to simulate).
func prepGather(ref bool, setting core.Setting, bytes, thr, maxIDs int) runner {
	env := core.NewEnv(core.Options{Plat: platform.XeonGold6326().Scaled(32), Setting: setting, Reference: ref})
	col := env.Space.AllocU8("col", bytes, env.DataRegion())
	scan.GenColumn(col, 9)
	sc := scan.Run(env, col, scan.Options{Threads: thr, Pred: scan.Predicate{Lo: 16, Hi: 127}, RowIDs: true})
	n := int(sc.Matches)
	scan.ShuffleIDs(sc.IDs, n, 21)
	if n > maxIDs {
		n = maxIDs
	}
	gopt := scan.GatherOptions{Threads: thr, Out: env.Space.AllocU8("scan.gathered", n, env.DataRegion())}
	return func() (time.Duration, uint64, uint64) {
		start := time.Now()
		res := scan.Gather(env, col, sc.IDs, n, gopt)
		return time.Since(start), res.WallCycles, res.Sum
	}
}

// prepMicroGather prepares the Fig 5 random-access micro-benchmark in its
// batched form (kernels.GatherAccess) over a DRAM-sized array.
func prepMicroGather(ref bool, setting core.Setting, arr int64, ops int) runner {
	env := core.NewEnv(core.Options{Plat: platform.XeonGold6326().Scaled(32), Setting: setting, Reference: ref})
	buf := env.Space.Raw("gather.arr", arr, env.DataRegion())
	return func() (time.Duration, uint64, uint64) {
		t := engine.NewThread(env.EngineConfig(), 0)
		start := time.Now()
		cyc := kernels.GatherAccess(t, buf, ops, false, 5)
		return time.Since(start), cyc, cyc
	}
}

// prepJoin builds the join inputs once; every repetition re-runs the
// algorithm (fresh per-run state is allocated from the same simulated
// space, so repetition k sees the same addresses in both engine modes).
func prepJoin(ref bool, setting core.Setting, alg join.Algorithm, scale int64, thr int) runner {
	env := core.NewEnv(core.Options{Plat: platform.XeonGold6326().Scaled(scale), Setting: setting, Reference: ref})
	nR := rel.RowsForMB(100) / int(scale)
	nS := rel.RowsForMB(400) / int(scale)
	build, probe := rel.GenFKPair(env.Space, nR, nS, env.DataRegion(), 1234)
	return func() (time.Duration, uint64, uint64) {
		start := time.Now()
		res, err := alg.Run(env, build, probe, join.Options{Threads: thr, Optimized: true})
		if err != nil {
			panic(err)
		}
		return time.Since(start), res.WallCycles, res.Matches
	}
}

// measure runs r reps times and returns the median host time plus the
// first repetition's simulated cycles and check value. The preceding
// workload's buffers (hundreds of MB) are collected up front so a GC
// cycle over the accumulated heap never lands inside a timed region.
func measure(r runner, reps int) (time.Duration, uint64, uint64, []uint64, []uint64) {
	runtime.GC()
	hosts := make([]time.Duration, reps)
	cycs := make([]uint64, reps)
	chks := make([]uint64, reps)
	for k := 0; k < reps; k++ {
		hosts[k], cycs[k], chks[k] = r()
	}
	return median(hosts), cycs[0], chks[0], cycs, chks
}

func main() {
	flag.Parse()
	// The suite holds a few large long-lived buffers and produces modest
	// per-repetition garbage; a higher GC target keeps collector cycles
	// out of the timed regions (benchmark hygiene, not a result lever —
	// both engine modes run under the same setting).
	debug.SetGCPercent(400)
	rep := &report{
		Schema:    "sgxbench/bench_engine/v2",
		Timestamp: time.Now().UTC().Format(time.RFC3339),
		GoVersion: runtime.Version(),
		NumCPU:    runtime.NumCPU(),
		Quick:     *quick,
		Speedups:  map[string]float64{},
	}

	seqBytes := int64(256 << 20)
	scanBytes := 64 << 20
	gatherIDs := 4 << 20
	gatherOps := 1 << 21
	gatherArr := int64(256 << 20)
	rhoScale := int64(4) // 25 MB join 100 MB: near-full-size working set
	reps := 5
	joinReps := 5
	if *quick {
		seqBytes = 16 << 20
		scanBytes = 4 << 20
		gatherIDs = 1 << 17
		gatherOps = 1 << 16
		gatherArr = 16 << 20
		rhoScale = 64
		reps = 1
		joinReps = 1
	}

	// --- Sweep: the fixed suite across all four settings, fast path ---
	rep.Equivalent = true
	fmt.Printf("== sweep (batched fast path, median of %d) ==\n", reps)
	for _, s := range settings() {
		type wl struct {
			name string
			prep func() runner
			n    int
		}
		wls := []wl{
			{"scan.bv", func() runner { return prepScan(false, s, scanBytes, false, *threads) }, reps},
			{"scan.rowid", func() runner { return prepScan(false, s, scanBytes, true, *threads) }, reps},
			{"scan.gather", func() runner { return prepGather(false, s, scanBytes, *threads, gatherIDs) }, reps},
			{"micro.gather", func() runner { return prepMicroGather(false, s, gatherArr, gatherOps) }, reps},
			{"join.RHO", func() runner { return prepJoin(false, s, join.NewRHO(), rhoScale*8, *threads) }, joinReps},
			{"join.PHT", func() runner { return prepJoin(false, s, join.NewPHT(), rhoScale*8, *threads) }, joinReps},
		}
		for _, w := range wls {
			host, cyc, chk, _, chks := measure(w.prep(), w.n)
			// Check values (matches / checksums) must be deterministic
			// across repetitions; sim_cycles of multi-threaded joins are
			// not (goroutine interleaving on shared tables) and are
			// reported from the first repetition.
			for k, c := range chks {
				if c != chk {
					fmt.Printf("  CHECK DIVERGENCE: %s/%s rep %d check=%d vs %d\n", w.name, s, k, c, chk)
					rep.Equivalent = false
				}
			}
			rep.Sweep = append(rep.Sweep, wlResult{w.name, s.String(), "fast", host.Nanoseconds(), w.n, cyc, chk})
			fmt.Printf("  %-12s %-11s host=%-12v simMcyc=%d\n", w.name, s, host.Round(time.Millisecond), cyc/1e6)
		}
	}

	// --- Speedup: fast vs per-op reference, with equivalence checks ---
	fmt.Println("== speedup (fast vs per-op reference, SGX DiE) ==")
	die := core.SGXDiE
	type sp struct {
		name string
		prep func(ref bool) runner
		n    int
	}
	sps := []sp{
		{"seq.stream", func(ref bool) runner { return prepSeq(ref, die, seqBytes) }, reps},
		{"scan.bv", func(ref bool) runner { return prepScan(ref, die, scanBytes, false, 1) }, reps},
		{"scan.rowid", func(ref bool) runner { return prepScan(ref, die, scanBytes, true, 1) }, reps},
		{"scan.gather", func(ref bool) runner { return prepGather(ref, die, scanBytes, 1, gatherIDs) }, reps},
		{"micro.gather", func(ref bool) runner { return prepMicroGather(ref, die, gatherArr, gatherOps) }, reps},
		{"join.RHO", func(ref bool) runner { return prepJoin(ref, die, join.NewRHO(), rhoScale, 1) }, joinReps},
		{"join.PHT", func(ref bool) runner { return prepJoin(ref, die, join.NewPHT(), rhoScale*4, 1) }, joinReps},
	}
	for _, w := range sps {
		rHost, rCyc, rChk, rCycs, rChks := measure(w.prep(true), w.n)
		fHost, fCyc, fChk, fCycs, fChks := measure(w.prep(false), w.n)
		eq := true
		for k := 0; k < w.n; k++ {
			// Repetition k sees identical simulated state in both modes,
			// so cycles and checks must match pairwise, bit for bit.
			if rCycs[k] != fCycs[k] || rChks[k] != fChks[k] {
				eq = false
			}
		}
		if !eq {
			rep.Equivalent = false
		}
		ratio := float64(rHost) / float64(fHost)
		rep.Speedup = append(rep.Speedup,
			wlResult{w.name, die.String(), "per-op", rHost.Nanoseconds(), w.n, rCyc, rChk},
			wlResult{w.name, die.String(), "fast", fHost.Nanoseconds(), w.n, fCyc, fChk})
		rep.Speedups[w.name] = ratio
		fmt.Printf("  %-12s per-op=%-12v fast=%-12v speedup=%.2fx equivalent=%v\n",
			w.name, rHost.Round(time.Millisecond), fHost.Round(time.Millisecond), ratio, eq)
	}

	// --- Acceptance targets (informative outside -quick) ---
	rep.TargetsMet = true
	check := func(name string, target float64) {
		got := rep.Speedups[name]
		note := fmt.Sprintf("%s: %.2fx (target >= %.1fx)", name, got, target)
		if got < target {
			rep.TargetsMet = false
			note += " MISS"
		}
		rep.TargetNotes = append(rep.TargetNotes, note)
		fmt.Println("  " + note)
	}
	fmt.Println("== targets ==")
	if *quick {
		fmt.Println("  (quick mode: sizes too small for representative ratios; targets not checked)")
	} else {
		check("seq.stream", 5.0)
		// The reference path shares the restructured kernels (NT result
		// stores, vectorized emission), so the rowid fast-vs-reference
		// gap is structurally narrower than the random-access ones.
		check("scan.rowid", 2.0)
		check("scan.gather", 2.0)
		check("micro.gather", 2.0)
		check("join.RHO", 2.0)
		check("join.PHT", 2.0)
	}
	if !rep.Equivalent {
		fmt.Println("  EQUIVALENCE FAILURE: fast path changed simulated results")
	}

	f, err := os.Create(*out)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
	f.Close()
	fmt.Printf("wrote %s\n", *out)
	if !rep.Equivalent {
		os.Exit(1)
	}
}
