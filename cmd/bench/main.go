// Command bench measures the simulator's host-side performance: it runs a
// fixed scan + join + query-pipeline suite across the paper's four
// execution settings on the batched fast path (the "sweep"), then
// compares the fast path against the per-op reference engine on
// representative workloads (the "speedup" section), asserting that both
// produce identical simulated results. Results are written to a
// BENCH_engine.json trajectory file so future performance PRs are
// comparable.
//
// Methodology: every workload is prepared once (environment, input data,
// pre-allocated result buffers — the paper pre-allocates result memory)
// and then run N times; the reported host_ns is the median repetition,
// the right estimator on a noisy single-CPU container. Simulated caches
// start cold on every repetition (each run builds fresh threads), so the
// simulated results of a repetition are independent of the others.
//
// Golden gate: because the simulation is fully deterministic, CI can
// gate on *exact* simulated numbers. The deterministic sweep entries of
// a -quick run (everything except multi-threaded shared-table joins)
// are compared against the committed BENCH_GOLDEN.json; any drift in
// simulated cycles, checks or statistics fails the run. Refresh the
// snapshot intentionally with -update-golden after a change that is
// *supposed* to move simulated numbers.
//
// Usage:
//
//	go run ./cmd/bench                        # full suite (minutes)
//	go run ./cmd/bench -quick                 # small sizes, CI smoke run
//	go run ./cmd/bench -quick -check-golden   # CI regression gate
//	go run ./cmd/bench -quick -update-golden  # refresh BENCH_GOLDEN.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"reflect"
	"runtime"
	"runtime/debug"
	"sort"
	"time"

	"sgxbench/internal/agg"
	"sgxbench/internal/core"
	"sgxbench/internal/engine"
	"sgxbench/internal/join"
	"sgxbench/internal/kernels"
	"sgxbench/internal/obs"
	"sgxbench/internal/plan"
	"sgxbench/internal/platform"
	"sgxbench/internal/query"
	"sgxbench/internal/rel"
	"sgxbench/internal/scan"
	"sgxbench/internal/serve"
	"sgxbench/internal/sgx"
)

var (
	quick        = flag.Bool("quick", false, "small sizes and single repetitions (CI smoke run)")
	out          = flag.String("out", "BENCH_engine.json", "output JSON trajectory file")
	threads      = flag.Int("threads", 4, "worker threads for the sweep workloads")
	goldenPath   = flag.String("golden", "BENCH_GOLDEN.json", "golden snapshot of deterministic -quick simulated numbers")
	checkGolden  = flag.Bool("check-golden", false, "fail on any drift of deterministic simulated numbers vs the golden snapshot (-quick only)")
	updateGolden = flag.Bool("update-golden", false, "rewrite the golden snapshot from this run (-quick only); use after intentional timing-model changes")
)

// rhoRatioScale is the largest platform scale-down factor at which the
// RHO fast-vs-reference ratio assertion is meaningful: the scale-4
// inputs (25 MB join 100 MB) keep the partition passes long enough that
// per-run fixed costs (cold simulated caches, state setup) do not
// dominate the ratio. At smaller data the ratio flakes; the target check
// below skips itself rather than asserting noise.
const rhoRatioScale = 4

// Serving scenario shape: a pool saturated by many closed-loop clients
// issuing small queries — the regime where the paper's two concurrency
// collapses (SDK mutex contention, Section 4.4; serialized EDMM commits,
// Fig 12) dominate. Unlike the host wall-clock ratio targets above,
// the serve collapse ratios are ratios of *simulated* throughput:
// deterministic, noise-free, and therefore asserted as a hard gate in
// quick mode too (the rhoRatioScale idiom applied to a guard that is a
// workload property — the client count — rather than host noise).
const (
	serveClients    = 32
	serveWorkers    = 16
	serveReqsPerCli = 8
	// serveCollapseClients is the minimum client count at which the
	// collapse ratios are asserted: below that the dispatch queue and
	// the EDMM commit lock are not saturated and the gaps are not a
	// property of the contention model.
	serveCollapseClients = 8
	// serveSyncCollapseMin is the asserted minimum throughput ratio of
	// the lock-free dispatch queue over the SGX SDK mutex (paper
	// Section 4.4 / Fig 11 regime; the scenario measures ~8x).
	serveSyncCollapseMin = 4.0
	// serveEDMMCollapseMin is the asserted minimum throughput ratio of
	// the pre-sized enclave over the dynamically-sized (EDMM) one.
	// Fig 12 reports ~95 % loss (~20x); the scenario — every request
	// recommitting its full working set against the enclave-global
	// page-table lock — collapses far harder, so 20x is the floor.
	serveEDMMCollapseMin = 20.0
)

// The Fig 3 hash-vs-sort contrast as a hard gate: the sort-merge query
// path (q5 — sequential run passes, streaming merges, cursor stores the
// SSB mitigation cannot serialize) must show a strictly smaller
// simulated enclave slowdown (SGX DiE cycles / Plain CPU cycles) than
// the radix-hash query path (q2 — data-dependent scatters and probes).
// Both slowdowns are ratios of deterministic simulated numbers from the
// sweep, so the gate is asserted in quick mode too and any regression
// of the timing model that inverts the paper's headline contrast fails
// the run.
const (
	hashGateWorkload = query.Q2Name
	sortGateWorkload = query.Q5Name
)

// The EPC oversubscription degradation gate: at 2x and 4x
// oversubscription (EPC capacity = working set / ratio) the
// spill-partitioned operators — GRACE join and the spill group-by, which
// stage partition runs in untrusted memory through sequential streaming
// writes — must stay under spillDegradeMax slowdown against their own
// fully-resident runs, while the naive in-EPC operators (PHT's shared
// hash table, the single-table direct group-by) collapse past
// naiveCollapseMin under demand paging. All four curves are ratios of
// deterministic simulated cycles, so the gate is hard in quick mode too.
const (
	spillDegradeMax  = 3.0
	naiveCollapseMin = 10.0
)

// spillRatios is the oversubscription axis (0: fully resident baseline).
var spillRatios = []int64{0, 2, 4}

// spillRatioTag names a ratio in workload identifiers.
func spillRatioTag(ratio int64) string {
	if ratio == 0 {
		return "resident"
	}
	return fmt.Sprintf("%dx", ratio)
}

// serveConfigs is the scenario matrix: every synchronization model
// crossed with both memory-provisioning modes, at a fixed saturating
// client/worker shape. Identical in quick and full runs, so the golden
// gate pins all of them and the collapse ratios are comparable.
func serveConfigs() []serve.Config {
	var cfgs []serve.Config
	for _, sync := range []serve.SyncKind{serve.SyncMutex, serve.SyncSpin, serve.SyncLockFree} {
		for _, mem := range []serve.MemMode{serve.MemPreSized, serve.MemDynamic} {
			cfgs = append(cfgs, serve.Config{
				Clients: serveClients, Workers: serveWorkers,
				RequestsPerClient: serveReqsPerCli,
				Sync:              sync, Mem: mem,
				JitterPct: 10, Seed: 7,
			})
		}
	}
	return cfgs
}

// obsPctlViolations collects any serving run where the histogram-backed
// percentiles strayed from the exact sorted-slice oracle by more than
// one bucket width (or Max stopped being exact). Always empty on a
// healthy build; reported as obs_percentiles_ok and gated at exit.
var obsPctlViolations []string

// simulate replays one scenario, treating a config error as fatal —
// every bench scenario is built here and must validate. Every run is
// executed with a tracer and metrics timeline attached: the golden gate
// downstream then doubles as the zero-perturbation proof for the
// observability layer, and each run's histogram percentiles are checked
// against the exact sorted-slice oracle.
func simulate(w *serve.Workload, cfg serve.Config) *serve.Result {
	cfg.Trace = obs.NewTracer(1 << 12)
	cfg.Metrics = obs.NewMetrics(1<<16, 1<<10)
	res, err := w.Simulate(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
	checkPercentiles(res)
	return res
}

// checkPercentiles asserts the satellite guarantee on a finished run:
// each histogram percentile is >= its exact value and within one bucket
// width of it, and Max is exact.
func checkPercentiles(res *serve.Result) {
	e50, e95, e99, emax := res.ExactPercentiles()
	label := res.Config.Name() + "/" + res.Setting
	for _, pc := range []struct {
		name       string
		got, exact uint64
	}{{"p50", res.P50, e50}, {"p95", res.P95, e95}, {"p99", res.P99, e99}} {
		if pc.got < pc.exact || pc.got-pc.exact > obs.BucketWidth(pc.exact) {
			obsPctlViolations = append(obsPctlViolations, fmt.Sprintf(
				"%s: %s = %d, exact %d (bucket width %d)",
				label, pc.name, pc.got, pc.exact, obs.BucketWidth(pc.exact)))
		}
	}
	if res.Max != emax {
		obsPctlViolations = append(obsPctlViolations, fmt.Sprintf(
			"%s: max = %d, exact %d", label, res.Max, emax))
	}
}

// Fault-injected serving: the resilience analogue of the spill gate.
// Three fault plans — fault-free, AEX interrupt storms, and the
// crash-storm (storms + enclave crash-loop + transient aborts) — are
// each served twice: once behind queue-depth admission control and once
// with the naive unbounded queue. Both variants carry identical
// client-side deadlines and capped-backoff retries; only the admission
// limit differs. Every scenario's timing constants scale off the
// calibrated mean service time, so quick and full runs exercise the
// same regime and all twelve numbers stay deterministic and
// golden-pinned.
//
// The hard gate (fault_degradation_ok): under the crash-storm plan,
// admission-controlled goodput must keep >= faultGoodputMin of its own
// fault-free goodput, while the naive variant's p99 must blow past
// naiveP99CollapseMin times its fault-free p99 AND its goodput must
// fall below half of the admission-controlled variant's — the serving
// analogue of the spill-vs-naive degradation curve: mitigations bound
// the damage, the naive shape melts down.
const (
	faultClients        = 64
	faultWorkers        = 8
	faultReqsPerCli     = 4
	faultGoodputMin     = 0.5
	naiveP99CollapseMin = 10.0
)

// Production-scale serving: the shard_scaling_ok gate. An open-loop
// Poisson client population — far past what the closed-loop scenarios
// above can express — drives a 64-worker DiE pool through three
// dispatch shapes: the single global lock-free queue, per-worker shards
// with deterministic work stealing, and shards plus request batching
// (one enclave transition pair amortized over up to scaleBatch queued
// requests). The per-client mean gap is scaleGapServiceMult times the
// calibrated mean service time, so at >= 1024 clients the offered load
// deep-saturates even the batched pool and measured throughput is each
// shape's capacity, not the arrival rate. All nine numbers are
// deterministic and golden-pinned; the gate asserts that at 1024 and
// 2048 clients sharded+batched dispatch holds >= scaleTputRatioMin the
// global queue's throughput with p99 at most 1/scaleP99RatioMin of it —
// the transition-amortization headroom the cost model predicts
// (~2.4x: 2 x 8000-cycle transitions per attempt vs ~1000 amortized).
const (
	scaleWorkers    = 64
	scaleReqsPerCli = 16
	scaleBatch      = 16
	// scaleGapServiceMult is the per-client Poisson mean inter-arrival
	// gap in multiples of the calibrated mean service time: at c clients
	// the offered load is c/scaleGapServiceMult worker-equivalents.
	scaleGapServiceMult = 10
	scaleTputRatioMin   = 2.0
	scaleP99RatioMin    = 2.0
)

// scaleClients is the open-loop population axis; the gate asserts at
// the saturated points (>= 1024), the 256-client point documents the
// saturation edge of the global queue.
var scaleClients = []int{256, 1024, 2048}
var scaleGateClients = []int{1024, 2048}

// faultScenario is one (fault plan x admission) point of the sweep.
type faultScenario struct {
	name string
	cfg  serve.Config
}

// faultConfigs derives the fault sweep from the calibrated workload:
// every interval, deadline and backoff is a multiple of the mean
// calibrated service time S, so the scenario shape — storm windows that
// stretch service past the deadline, rebuild outages spanning several
// deadlines, backoff caps that let shed clients ride out an outage —
// is invariant under quick/full calibration sizes.
func faultConfigs(w *serve.Workload) []faultScenario {
	var sum uint64
	for _, c := range w.Classes {
		sum += c.ServiceCycles
	}
	s := sum / uint64(len(w.Classes))
	// A pool kept healthy by think time (offered load ~60% of capacity)
	// but heavily oversubscribed in clients, so that once service times
	// stretch the naive unbounded queue can amplify to several times the
	// worker count. The deadline sits between the fault-free p99 and a
	// storm-stretched service time: fault-free runs keep a small timeout
	// tail (deadline-aware clients under a saturated tail) while storm
	// windows push whole queue generations past it.
	base := serve.Config{
		Clients: faultClients, Workers: faultWorkers,
		RequestsPerClient: faultReqsPerCli,
		Sync:              serve.SyncLockFree, Mem: serve.MemPreSized,
		ThinkCycles: 12 * s, JitterPct: 10, Seed: 7,
		DeadlineCycles: 7 * s,
		MaxRetries:     7,
		BackoffBase:    s,
		BackoffCap:     16 * s,
	}
	fc := sgx.DefaultFaultCosts()
	// Enclave rebuild outages scale with the calibrated service time so
	// the scenario keeps its shape across platform scales: ~3.5s of
	// serialized rebuild per crash against a 60s per-worker crash
	// interval keeps the kernel enclave-management lock under saturation
	// (the admission variant must be able to ride the outages out).
	fc.Teardown = s / 2
	fc.RebuildBase = 3 * s
	storm := &serve.FaultPlan{
		Seed:          11,
		StormInterval: 20 * s,
		StormLen:      9 * s,
		// Each AEX stalls ~5x its gap: service stretches ~6x inside a
		// storm window, pushing queue waits past the deadline.
		StormAEXGap: fc.AEX / 5,
		Costs:       fc,
	}
	crash := &serve.FaultPlan{}
	*crash = *storm
	crash.CrashInterval = 60 * s
	crash.FailPct = 2
	crash.RebuildPages = 64
	var out []faultScenario
	for _, p := range []struct {
		tag  string
		plan *serve.FaultPlan
	}{{"none", nil}, {"storm", storm}, {"crash", crash}} {
		for _, admit := range []bool{true, false} {
			cfg := base
			cfg.Fault = p.plan
			mode := "naive"
			if admit {
				cfg.AdmitDepth = 12
				mode = "admit"
			}
			out = append(out, faultScenario{
				name: fmt.Sprintf("fault.%s.%s", p.tag, mode),
				cfg:  cfg,
			})
		}
	}
	return out
}

// wlResult is one (workload, setting, engine-mode) measurement.
type wlResult struct {
	Workload  string       `json:"workload"`
	Setting   string       `json:"setting"`
	Mode      string       `json:"mode"`    // "fast" or "per-op"
	HostNS    int64        `json:"host_ns"` // median over repetitions
	Reps      int          `json:"reps"`
	SimCycles uint64       `json:"sim_cycles"`
	Check     uint64       `json:"check"` // matches / cycle checksum for equivalence
	Det       bool         `json:"deterministic"`
	Stats     engine.Stats `json:"stats"`
}

type report struct {
	Schema      string             `json:"schema"`
	Timestamp   string             `json:"timestamp"`
	GoVersion   string             `json:"go_version"`
	NumCPU      int                `json:"num_cpu"`
	Quick       bool               `json:"quick"`
	Sweep       []wlResult         `json:"sweep"`
	Serve       []*serve.Result    `json:"serve"`
	Speedup     []wlResult         `json:"speedup"`
	Speedups    map[string]float64 `json:"speedups"`
	Equivalent  bool               `json:"equivalence_ok"`
	GoldenOK    bool               `json:"golden_ok"`
	ServeOK     bool               `json:"serve_collapse_ok"`
	HashSortOK  bool               `json:"hash_vs_sort_ok"`
	PlannerOK   bool               `json:"planner_ok"`
	SpillOK     bool               `json:"spill_degradation_ok"`
	FaultOK     bool               `json:"fault_degradation_ok"`
	ShardOK     bool               `json:"shard_scaling_ok"`
	ObsOK       bool               `json:"obs_percentiles_ok"`
	TargetsMet  bool               `json:"targets_met"`
	TargetNotes []string           `json:"target_notes"`
}

// goldenEntry is one deterministic sweep measurement in the snapshot.
type goldenEntry struct {
	Workload  string       `json:"workload"`
	Setting   string       `json:"setting"`
	SimCycles uint64       `json:"sim_cycles"`
	Check     uint64       `json:"check"`
	Stats     engine.Stats `json:"stats"`
}

type goldenFile struct {
	Schema  string        `json:"schema"`
	Quick   bool          `json:"quick"`
	Threads int           `json:"threads"`
	Entries []goldenEntry `json:"entries"`
}

const goldenSchema = "sgxbench/bench_golden/v1"

func settings() []core.Setting {
	return []core.Setting{core.PlainCPU, core.PlainCPUM, core.SGXDoE, core.SGXDiE}
}

func median(ds []time.Duration) time.Duration {
	s := append([]time.Duration(nil), ds...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	return s[len(s)/2]
}

// runner executes one timed repetition of a prepared workload and
// returns (host time, simulated cycles, check value, simulated stats).
type runner func() (time.Duration, uint64, uint64, engine.Stats)

// --- workload preparation; each returns a runner over reusable state ---

func prepSeq(ref bool, setting core.Setting, bytes int64) runner {
	env := core.NewEnv(core.Options{Plat: platform.XeonGold6326().Scaled(32), Setting: setting, Reference: ref})
	buf := env.Space.Raw("seq", bytes, env.DataRegion())
	return func() (time.Duration, uint64, uint64, engine.Stats) {
		t := engine.NewThread(env.EngineConfig(), 0)
		start := time.Now()
		cyc := kernels.StreamRead(t, buf, 0, bytes)
		st := t.Stats()
		st.Cycles = cyc
		return time.Since(start), cyc, cyc, st
	}
}

func prepScan(ref bool, setting core.Setting, bytes int, rowIDs bool, thr int) runner {
	env := core.NewEnv(core.Options{Plat: platform.XeonGold6326().Scaled(32), Setting: setting, Reference: ref})
	col := env.Space.AllocU8("col", bytes, env.DataRegion())
	scan.GenColumn(col, 9)
	opt := scan.Options{Threads: thr, Pred: scan.Predicate{Lo: 16, Hi: 127}, RowIDs: rowIDs}
	if rowIDs {
		opt.IDs = env.Space.AllocU64("scan.ids", col.Len()+64, env.DataRegion())
	} else {
		opt.Bits = env.Space.AllocU64("scan.bits", col.Len()/64+2, env.DataRegion())
	}
	return func() (time.Duration, uint64, uint64, engine.Stats) {
		start := time.Now()
		res := scan.Run(env, col, opt)
		return time.Since(start), res.WallCycles, res.Matches, res.Stats
	}
}

// prepGather prepares the filter→gather plan: the row-id scan runs once
// (untimed), its ids are shuffled into an unclustered list, and each
// repetition re-gathers the payload column at those ids. maxIDs caps the
// gather volume so the suite stays within minutes (random accesses are
// the most expensive pattern to simulate).
func prepGather(ref bool, setting core.Setting, bytes, thr, maxIDs int) runner {
	env := core.NewEnv(core.Options{Plat: platform.XeonGold6326().Scaled(32), Setting: setting, Reference: ref})
	col := env.Space.AllocU8("col", bytes, env.DataRegion())
	scan.GenColumn(col, 9)
	sc := scan.Run(env, col, scan.Options{Threads: thr, Pred: scan.Predicate{Lo: 16, Hi: 127}, RowIDs: true})
	n := int(sc.Matches)
	scan.ShuffleIDs(sc.IDs, n, 21)
	if n > maxIDs {
		n = maxIDs
	}
	gopt := scan.GatherOptions{Threads: thr, Out: env.Space.AllocU8("scan.gathered", n, env.DataRegion())}
	return func() (time.Duration, uint64, uint64, engine.Stats) {
		start := time.Now()
		res := scan.Gather(env, col, sc.IDs, n, gopt)
		return time.Since(start), res.WallCycles, res.Sum, res.Stats
	}
}

// prepMicroGather prepares the Fig 5 random-access micro-benchmark in its
// batched form (kernels.GatherAccess) over a DRAM-sized array.
func prepMicroGather(ref bool, setting core.Setting, arr int64, ops int) runner {
	env := core.NewEnv(core.Options{Plat: platform.XeonGold6326().Scaled(32), Setting: setting, Reference: ref})
	buf := env.Space.Raw("gather.arr", arr, env.DataRegion())
	return func() (time.Duration, uint64, uint64, engine.Stats) {
		t := engine.NewThread(env.EngineConfig(), 0)
		start := time.Now()
		cyc := kernels.GatherAccess(t, buf, ops, false, 5)
		st := t.Stats()
		st.Cycles = cyc
		return time.Since(start), cyc, cyc, st
	}
}

// prepJoin builds the join inputs once; every repetition re-runs the
// algorithm (fresh per-run state is allocated from the same simulated
// space, so repetition k sees the same addresses in both engine modes).
func prepJoin(ref bool, setting core.Setting, alg join.Algorithm, scale int64, thr int) runner {
	env := core.NewEnv(core.Options{Plat: platform.XeonGold6326().Scaled(scale), Setting: setting, Reference: ref})
	nR := rel.RowsForMB(100) / int(scale)
	nS := rel.RowsForMB(400) / int(scale)
	build, probe := rel.GenFKPair(env.Space, nR, nS, env.DataRegion(), 1234)
	return func() (time.Duration, uint64, uint64, engine.Stats) {
		start := time.Now()
		res, err := alg.Run(env, build, probe, join.Options{Threads: thr, Optimized: true})
		if err != nil {
			panic(err)
		}
		return time.Since(start), res.WallCycles, res.Matches, res.Stats
	}
}

// prepSpillJoin prepares one join under an EPC capacity of the inputs'
// working set divided by ratio (0: unlimited — the resident baseline).
func prepSpillJoin(ref bool, setting core.Setting, alg join.Algorithm, nR, nS int, ratio int64, thr int) runner {
	var pages int64
	if ratio > 0 {
		pages = int64(nR+nS) * rel.TupleBytes / 4096 / ratio
	}
	env := core.NewEnv(core.Options{
		Plat: platform.XeonGold6326().Scaled(256), Setting: setting,
		Reference: ref, EPCPages: pages,
	})
	build, probe := rel.GenFKPair(env.Space, nR, nS, env.DataRegion(), 99)
	return func() (time.Duration, uint64, uint64, engine.Stats) {
		start := time.Now()
		res, err := alg.Run(env, build, probe, join.Options{Threads: thr, Optimized: true})
		if err != nil {
			panic(err)
		}
		return time.Since(start), res.WallCycles, res.Matches, res.Stats
	}
}

// prepSpillAgg prepares the spill-partitioned (or naive direct) group-by
// over n fact tuples with the given group count, under an EPC capacity
// of the input working set divided by ratio (0: unlimited).
func prepSpillAgg(ref bool, setting core.Setting, spill bool, n, groups int, ratio int64, thr int) runner {
	var pages int64
	if ratio > 0 {
		pages = int64(n) * 8 / 4096 / ratio
	}
	env := core.NewEnv(core.Options{
		Plat: platform.XeonGold6326().Scaled(256), Setting: setting,
		Reference: ref, EPCPages: pages,
	})
	_, fact := rel.GenFKPair(env.Space, groups, n, env.DataRegion(), 99)
	ins := []agg.Input{{Tup: fact.Tup, N: n}}
	opt := agg.Options{Threads: thr, Sel: agg.ByKey, Groups: groups}
	return func() (time.Duration, uint64, uint64, engine.Stats) {
		start := time.Now()
		var res *agg.Result
		if spill {
			res = agg.SpillRun(env, ins, opt)
		} else {
			res = agg.DirectRun(env, ins, opt)
		}
		return time.Since(start), res.WallCycles, res.Check, res.Stats
	}
}

// prepPipeline prepares one end-to-end query pipeline: the star-schema
// dataset and all inter-stage scratch are allocated once; every
// repetition re-runs the whole plan (scan → [join →] aggregation) on a
// fresh thread group. maxRows caps the filtered rows fed downstream
// (0: no cap; the scratch is then sized for the full fact table).
func prepPipeline(ref bool, setting core.Setting, p query.Pipeline, nDim, nFact, maxRows, thr int) runner {
	env := core.NewEnv(core.Options{Plat: platform.XeonGold6326().Scaled(32), Setting: setting, Reference: ref})
	ds := query.GenDataset(env, nDim, nFact, 4242)
	capRows := nFact
	if maxRows > 0 && maxRows < capRows {
		capRows = maxRows
	}
	// A cycle-attribution profiler rides along on every pipeline run:
	// the golden gate's bit-identical checks then prove the profiling
	// hooks perturb nothing.
	opt := query.Options{
		Threads:  thr,
		Pred:     scan.Predicate{Lo: 16, Hi: 127},
		MaxRows:  maxRows,
		Scratch:  query.NewScratch(env, ds, thr, capRows),
		Profiler: obs.NewProfiler("run"),
	}
	return func() (time.Duration, uint64, uint64, engine.Stats) {
		start := time.Now()
		res := p.Run(env, ds, opt)
		return time.Since(start), res.WallCycles, res.Check, res.Stats
	}
}

// measure runs r reps times and returns the median host time plus the
// per-repetition simulated cycles, checks and stats (index 0 is the
// value the sweep reports and the golden gate compares). The preceding
// workload's buffers (hundreds of MB) are collected up front so a GC
// cycle over the accumulated heap never lands inside a timed region.
func measure(r runner, reps int) (time.Duration, []uint64, []uint64, []engine.Stats) {
	runtime.GC()
	hosts := make([]time.Duration, reps)
	cycs := make([]uint64, reps)
	chks := make([]uint64, reps)
	stats := make([]engine.Stats, reps)
	for k := 0; k < reps; k++ {
		hosts[k], cycs[k], chks[k], stats[k] = r()
	}
	return median(hosts), cycs, chks, stats
}

func main() {
	flag.Parse()
	// The suite holds a few large long-lived buffers and produces modest
	// per-repetition garbage; a higher GC target keeps collector cycles
	// out of the timed regions (benchmark hygiene, not a result lever —
	// both engine modes run under the same setting).
	debug.SetGCPercent(400)
	rep := &report{
		Schema:    "sgxbench/bench_engine/v3",
		Timestamp: time.Now().UTC().Format(time.RFC3339),
		GoVersion: runtime.Version(),
		NumCPU:    runtime.NumCPU(),
		Quick:     *quick,
		Speedups:  map[string]float64{},
		GoldenOK:  true,
	}

	seqBytes := int64(256 << 20)
	scanBytes := 64 << 20
	gatherIDs := 4 << 20
	gatherOps := 1 << 21
	gatherArr := int64(256 << 20)
	rhoScale := int64(rhoRatioScale) // 25 MB join 100 MB: near-full-size working set
	qDim := 1 << 16
	qFact := 2 << 20
	qMaxRows := 1 << 20
	q3Fact := 1 << 20     // unfiltered join-agg: keep the probe side bounded
	spillJoinScale := 128 // 800 KB join 3.2 MB against a scaled-down EPC
	spillAggN := 1 << 19
	spillAggGroups := 1 << 16
	reps := 5
	joinReps := 5
	if *quick {
		seqBytes = 16 << 20
		scanBytes = 4 << 20
		gatherIDs = 1 << 17
		gatherOps = 1 << 16
		gatherArr = 16 << 20
		rhoScale = 64
		qDim = 1 << 10
		qFact = 1 << 16
		qMaxRows = 1 << 14
		q3Fact = 1 << 15
		spillJoinScale = 512
		spillAggN = 1 << 17
		spillAggGroups = 1 << 14
		reps = 1
		joinReps = 1
	}
	q1, _ := query.ByName(query.Q1Name)
	q2, _ := query.ByName(query.Q2Name)
	q3, _ := query.ByName(query.Q3Name)
	q4, _ := query.ByName(query.Q4Name)
	q5, _ := query.ByName(query.Q5Name)
	q2s, _ := query.ByName(query.Q2SName)
	q3s, _ := query.ByName(query.Q3SName)

	// --- Sweep: the fixed suite across all four settings, fast path ---
	rep.Equivalent = true
	fmt.Printf("== sweep (batched fast path, median of %d) ==\n", reps)
	for _, s := range settings() {
		type wl struct {
			name string
			prep func() runner
			n    int
			det  bool // simulated numbers are run-to-run deterministic
		}
		// Every entry is deterministic and feeds the golden gate: the PHT
		// shared-table build preclaims its insert slots in input order, so
		// even multi-threaded shared-table workloads (join.PHT, q3) repeat
		// bit-identically.
		wls := []wl{
			{"scan.bv", func() runner { return prepScan(false, s, scanBytes, false, *threads) }, reps, true},
			{"scan.rowid", func() runner { return prepScan(false, s, scanBytes, true, *threads) }, reps, true},
			{"scan.gather", func() runner { return prepGather(false, s, scanBytes, *threads, gatherIDs) }, reps, true},
			{"micro.gather", func() runner { return prepMicroGather(false, s, gatherArr, gatherOps) }, reps, true},
			{"join.RHO", func() runner { return prepJoin(false, s, join.NewRHO(), rhoScale*8, *threads) }, joinReps, true},
			{"join.PHT", func() runner { return prepJoin(false, s, join.NewPHT(), rhoScale*8, *threads) }, joinReps, true},
			{"join.MWAY", func() runner { return prepJoin(false, s, join.NewMWAY(), rhoScale*8, *threads) }, joinReps, true},
			{"join.CrkJoin", func() runner { return prepJoin(false, s, join.NewCrk(), rhoScale*8, *threads) }, joinReps, true},
			{query.Q1Name, func() runner { return prepPipeline(false, s, q1, qDim, qFact, qMaxRows, *threads) }, joinReps, true},
			{query.Q2Name, func() runner { return prepPipeline(false, s, q2, qDim, qFact, qMaxRows, *threads) }, joinReps, true},
			{query.Q3Name, func() runner { return prepPipeline(false, s, q3, qDim, q3Fact, 0, *threads) }, joinReps, true},
			{query.Q4Name, func() runner { return prepPipeline(false, s, q4, qDim, qFact, qMaxRows, *threads) }, joinReps, true},
			{query.Q5Name, func() runner { return prepPipeline(false, s, q5, qDim, q3Fact, 0, *threads) }, joinReps, true},
			{query.Q2SName, func() runner { return prepPipeline(false, s, q2s, qDim, qFact, qMaxRows, *threads) }, joinReps, true},
			{query.Q3SName, func() runner { return prepPipeline(false, s, q3s, qDim, q3Fact, 0, *threads) }, joinReps, true},
		}
		for _, w := range wls {
			host, cycs, chks, stats := measure(w.prep(), w.n)
			// Check values (matches / checksums) must be deterministic
			// across repetitions; sim_cycles of workloads that allocate
			// fresh simulated state per repetition are not and are
			// reported from the first repetition.
			for k, c := range chks {
				if c != chks[0] {
					fmt.Printf("  CHECK DIVERGENCE: %s/%s rep %d check=%d vs %d\n", w.name, s, k, c, chks[0])
					rep.Equivalent = false
				}
			}
			rep.Sweep = append(rep.Sweep, wlResult{w.name, s.String(), "fast", host.Nanoseconds(), w.n, cycs[0], chks[0], w.det, stats[0]})
			fmt.Printf("  %-18s %-11s host=%-12v simMcyc=%d\n", w.name, s, host.Round(time.Millisecond), cycs[0]/1e6)
		}
	}

	// --- The Fig 3 hash-vs-sort contrast gate over the sweep numbers ---
	// Simulated enclave slowdown (DiE / plain cycles) of the sort-merge
	// query must be strictly below the radix-hash query's. Deterministic,
	// hence a hard gate at every size.
	rep.HashSortOK = true
	{
		sim := func(wl string, s core.Setting) (uint64, bool) {
			for _, w := range rep.Sweep {
				if w.Workload == wl && w.Setting == s.String() {
					return w.SimCycles, true
				}
			}
			return 0, false
		}
		slowdown := func(wl string) float64 {
			die, okD := sim(wl, core.SGXDiE)
			plain, okP := sim(wl, core.PlainCPU)
			if !okD || !okP || plain == 0 {
				return 0
			}
			return float64(die) / float64(plain)
		}
		hashSlow, sortSlow := slowdown(hashGateWorkload), slowdown(sortGateWorkload)
		note := fmt.Sprintf("hash-vs-sort gate (simulated DiE/plain slowdown): %s %.3fx vs %s %.3fx (want sort < hash)",
			sortGateWorkload, sortSlow, hashGateWorkload, hashSlow)
		if !(sortSlow > 0 && hashSlow > 0 && sortSlow < hashSlow) {
			rep.HashSortOK = false
			note += " MISS"
		}
		rep.TargetNotes = append(rep.TargetNotes, note)
		fmt.Println("== hash vs sort ==")
		fmt.Println("  " + note)
	}

	// --- Spill: EPC oversubscription degradation sweep (SGX DiE) ---
	// Every (operator, ratio) point runs once on each engine path: the
	// fast run feeds the sweep and the golden gate, the reference run must
	// reproduce it bit for bit — including the demand-paging fault,
	// eviction and paging-cycle counters — and oversubscribed points must
	// actually fault. The degradation gate then compares each operator's
	// oversubscribed points against its own resident baseline.
	rep.SpillOK = true
	fmt.Println("== spill (EPC oversubscription, SGX DiE) ==")
	{
		die := core.SGXDiE
		nR := rel.RowsForMB(100) / spillJoinScale
		nS := rel.RowsForMB(400) / spillJoinScale
		type spillWL struct {
			name  string
			spill bool // spill-aware operator (gated < spillDegradeMax)
			prep  func(ref bool, ratio int64) runner
		}
		wls := []spillWL{
			{"spill.join.grace", true, func(ref bool, ratio int64) runner {
				return prepSpillJoin(ref, die, join.NewGrace(), nR, nS, ratio, *threads)
			}},
			{"spill.join.pht", false, func(ref bool, ratio int64) runner {
				return prepSpillJoin(ref, die, join.NewPHT(), nR, nS, ratio, *threads)
			}},
			{"spill.agg", true, func(ref bool, ratio int64) runner {
				return prepSpillAgg(ref, die, true, spillAggN, spillAggGroups, ratio, *threads)
			}},
			{"spill.agg.direct", false, func(ref bool, ratio int64) runner {
				return prepSpillAgg(ref, die, false, spillAggN, spillAggGroups, ratio, *threads)
			}},
		}
		sim := map[string]uint64{}
		for _, w := range wls {
			for _, ratio := range spillRatios {
				name := w.name + "@" + spillRatioTag(ratio)
				rHost, rCycs, rChks, rStats := measure(w.prep(true, ratio), 1)
				fHost, fCycs, fChks, fStats := measure(w.prep(false, ratio), 1)
				_ = rHost
				if rCycs[0] != fCycs[0] || rChks[0] != fChks[0] || rStats[0] != fStats[0] {
					fmt.Printf("  SPILL EQUIVALENCE FAILURE: %s differs between engine paths\n", name)
					rep.Equivalent = false
				}
				if ratio > 0 && fStats[0].EPCFaults == 0 {
					fmt.Printf("  SPILL GATE FAILURE: %s never demand-paged\n", name)
					rep.SpillOK = false
				}
				if ratio == 0 && fStats[0].EPCFaults != 0 {
					fmt.Printf("  SPILL GATE FAILURE: resident %s faulted %d times\n", name, fStats[0].EPCFaults)
					rep.SpillOK = false
				}
				sim[name] = fCycs[0]
				rep.Sweep = append(rep.Sweep, wlResult{name, die.String(), "fast", fHost.Nanoseconds(), 1, fCycs[0], fChks[0], true, fStats[0]})
				fmt.Printf("  %-24s host=%-12v simMcyc=%-8d faults=%d evictions=%d\n",
					name, fHost.Round(time.Millisecond), fCycs[0]/1e6, fStats[0].EPCFaults, fStats[0].EPCEvictions)
			}
		}
		for _, w := range wls {
			base := sim[w.name+"@resident"]
			for _, ratio := range spillRatios {
				if ratio == 0 {
					continue
				}
				slow := float64(sim[w.name+"@"+spillRatioTag(ratio)]) / float64(base)
				var note string
				if w.spill {
					note = fmt.Sprintf("spill gate: %s at %dx oversubscription %.2fx slowdown (want < %.1fx)",
						w.name, ratio, slow, spillDegradeMax)
					if !(slow < spillDegradeMax) {
						rep.SpillOK = false
						note += " MISS"
					}
				} else {
					note = fmt.Sprintf("spill gate: %s at %dx oversubscription %.2fx slowdown (want > %.1fx naive collapse)",
						w.name, ratio, slow, naiveCollapseMin)
					if !(slow > naiveCollapseMin) {
						rep.SpillOK = false
						note += " MISS"
					}
				}
				rep.TargetNotes = append(rep.TargetNotes, note)
				fmt.Println("  " + note)
			}
		}
	}

	// --- Planner: cost-based strategy choice over the 20-query suite ---
	// Every suite query runs under every static strategy alternative in a
	// fresh identically-prepared environment, then the enclave-aware cost
	// model picks per setting. The planner_ok gate is hard: the pick's
	// measured simulated cycles must never exceed the worst static
	// choice's (strictly below it whenever the field is spread out), and
	// on the EPC oversubscription axis the pick must flip to the spill
	// aggregation exactly where the measured costs cross (2-4x). All
	// chosen runs are deterministic and feed the golden gate as
	// "plan.<query>" entries.
	rep.PlannerOK = true
	{
		planDim, planFact := 1<<12, 1<<17
		if *quick {
			planDim, planFact = 512, 1<<14
		}
		const tieTol = 0.05 // measured near-ties carry no signal
		suite := plan.Suite()
		fmt.Printf("== planner (cost-based pick, %d-query suite, %d dim x %d fact) ==\n", len(suite), planDim, planFact)
		prepEnv := func(s core.Setting, q plan.Query, epcRatio int64) (*core.Env, *plan.Dataset) {
			var pages int64
			if epcRatio > 0 {
				wsBytes := int64(planFact)*(9+7*8) + int64(planDim)*8
				pages = (wsBytes/4096 + 1) / epcRatio
			}
			env := core.NewEnv(core.Options{Plat: platform.XeonGold6326().Scaled(32), Setting: s, EPCPages: pages})
			return env, plan.GenSuiteDataset(env, q, planDim, planFact, 4242)
		}
		// runAll measures every alternative and returns the results plus
		// the planner's choice for the same environment shape.
		runAll := func(s core.Setting, q plan.Query, epcRatio int64) (map[string]*plan.Result, map[string]time.Duration, plan.Alternative) {
			measured := map[string]*plan.Result{}
			hosts := map[string]time.Duration{}
			for _, alt := range q.Alternatives() {
				env, ds := prepEnv(s, q, epcRatio)
				opt := plan.Options{Threads: *threads, Pred: q.Pred, Limit: q.Limit}
				start := time.Now()
				measured[alt.String()] = plan.Execute(env, ds, opt, q.Name, q.Tree(alt))
				hosts[alt.String()] = time.Since(start)
			}
			env, ds := prepEnv(s, q, epcRatio)
			_, alt := q.Plan(env, ds, *threads)
			return measured, hosts, alt
		}
		spread := func(measured map[string]*plan.Result) (best, worst uint64) {
			for _, r := range measured {
				if best == 0 || r.WallCycles < best {
					best = r.WallCycles
				}
				if r.WallCycles > worst {
					worst = r.WallCycles
				}
			}
			return best, worst
		}
		agree, decided := 0, 0
		for _, s := range settings() {
			for _, q := range suite {
				measured, hosts, alt := runAll(s, q, 0)
				chosen := measured[alt.String()]
				best, worst := spread(measured)
				if chosen.WallCycles > worst ||
					(len(measured) > 1 && chosen.WallCycles == worst && float64(worst-best) > tieTol*float64(best)) {
					rep.PlannerOK = false
					fmt.Printf("  PLANNER GATE FAILURE: %s/%s chose %s (%d cycles; field best %d worst %d)\n",
						q.Name, s, alt, chosen.WallCycles, best, worst)
				}
				if float64(worst-best) > tieTol*float64(best) {
					decided++
					if float64(chosen.WallCycles) <= (1+tieTol)*float64(best) {
						agree++
					}
				}
				rep.Sweep = append(rep.Sweep, wlResult{"plan." + q.Name, s.String(), "fast",
					hosts[alt.String()].Nanoseconds(), 1, chosen.WallCycles, chosen.Check, true, chosen.Stats})
				if s == core.SGXDiE {
					fmt.Printf("  %-22s %-9s pick=%-14s simKcyc=%-8d field=[%d..%d]\n",
						q.Name, s, alt, chosen.WallCycles/1e3, best, worst)
				}
			}
		}
		note := fmt.Sprintf("planner gate: cost-based pick within %.0f%% of measured best on %d/%d decided (query,setting) blocks",
			tieTol*100, agree, decided)
		rep.TargetNotes = append(rep.TargetNotes, note)
		fmt.Println("  " + note)

		// The EPC-axis flip: under SGX DiE at 2x and 4x oversubscription
		// the measured field must favor the spill aggregation, and the
		// planner must follow it there.
		for _, name := range []string{"s03.j0.sel902.u.agg", "s09.j1.sel250.u.agg"} {
			q, _ := plan.SuiteByName(name)
			for _, ratio := range []int64{2, 4} {
				measured, hosts, alt := runAll(core.SGXDiE, q, ratio)
				chosen := measured[alt.String()]
				best, _ := spread(measured)
				var bestAlt plan.Alternative
				for _, a := range q.Alternatives() {
					if measured[a.String()].WallCycles == best {
						bestAlt = a
						break
					}
				}
				flipNote := fmt.Sprintf("planner flip: %s at %dx EPC oversubscription pick=%s measured-best=%s", name, ratio, alt, bestAlt)
				if bestAlt.Agg != plan.AggSpill {
					rep.PlannerOK = false
					flipNote += " (measured field did not cross to spill) MISS"
				} else if alt.Agg != plan.AggSpill {
					rep.PlannerOK = false
					flipNote += " (pick did not follow the measured crossing) MISS"
				} else if float64(chosen.WallCycles) > (1+tieTol)*float64(best) {
					rep.PlannerOK = false
					flipNote += fmt.Sprintf(" (pick measures %d, best %d) MISS", chosen.WallCycles, best)
				}
				rep.TargetNotes = append(rep.TargetNotes, flipNote)
				fmt.Println("  " + flipNote)
				rep.Sweep = append(rep.Sweep, wlResult{fmt.Sprintf("plan.%s@epc%d", q.Name, ratio), core.SGXDiE.String(), "fast",
					hosts[alt.String()].Nanoseconds(), 1, chosen.WallCycles, chosen.Check, true, chosen.Stats})
			}
		}

		// One chain query's chosen plan re-runs on the per-op reference
		// path: the Project and INL nodes must be bit-identical across
		// engine paths like every other operator.
		q, _ := plan.SuiteByName("s19.j3.sel250.u.agg")
		env, ds := prepEnv(core.SGXDiE, q, 0)
		tree, alt := q.Plan(env, ds, *threads)
		opt := plan.Options{Threads: *threads, Pred: q.Pred, Limit: q.Limit}
		fast := plan.Execute(env, ds, opt, q.Name, tree)
		refEnv := core.NewEnv(core.Options{Plat: platform.XeonGold6326().Scaled(32), Setting: core.SGXDiE, Reference: true})
		refDS := plan.GenSuiteDataset(refEnv, q, planDim, planFact, 4242)
		ref := plan.Execute(refEnv, refDS, opt, q.Name, q.Tree(alt))
		if fast.Check != ref.Check || fast.WallCycles != ref.WallCycles || fast.Stats != ref.Stats {
			fmt.Printf("  PLANNER EQUIVALENCE FAILURE: %s fast/ref diverge (check %#x/%#x wall %d/%d)\n",
				q.Name, fast.Check, ref.Check, fast.WallCycles, ref.WallCycles)
			rep.Equivalent = false
		}
	}

	// --- Serve: multi-query serving scenarios over the worker pool ---
	// Each setting calibrates the five pipelines once (small
	// serving-sized queries) and replays the sync x memory scenario
	// matrix on the virtual clock. All simulated numbers are
	// deterministic and golden-gated; under SGX DiE the run additionally
	// recalibrates on the per-op reference path and fails on any
	// cross-path divergence, then asserts the paper's two collapse
	// ratios over the *simulated* throughputs.
	rep.ServeOK = true
	fmt.Printf("== serve (deterministic serving scenarios, %d clients / %d workers) ==\n", serveClients, serveWorkers)
	serveDiE := map[string]*serve.Result{}
	var dieW, dieRefW *serve.Workload
	for _, s := range settings() {
		w, err := serve.Calibrate(serve.CalibrateOptions{Setting: s})
		if err != nil {
			fmt.Fprintln(os.Stderr, "bench:", err)
			os.Exit(1)
		}
		if s == core.SGXDiE {
			dieW = w
		}
		for _, cfg := range serveConfigs() {
			t0 := time.Now()
			res := simulate(w, cfg)
			host := time.Since(t0)
			if s == core.SGXDiE {
				serveDiE[cfg.Name()] = res
			}
			rep.Serve = append(rep.Serve, res)
			rep.Sweep = append(rep.Sweep, wlResult{cfg.Name(), s.String(), "fast", host.Nanoseconds(), 1, res.MakespanCycles, res.Check, true, w.Stats})
			fmt.Printf("  %-18s %-11s qps=%-10.0f p50=%-9d p99=%-9d queueWait=%-11d commitWait=%d\n",
				cfg.Name(), s, res.ThroughputQPS, res.P50, res.P99,
				res.Breakdown.QueueWaitCycles, res.Breakdown.CommitWaitCycles)
		}
		if s == core.SGXDiE {
			// Cross-path equivalence: reference-calibrated scenarios must
			// reproduce every simulated number bit for bit (the fast-path
			// results were just computed into serveDiE).
			refW, err := serve.Calibrate(serve.CalibrateOptions{Setting: s, Reference: true})
			if err != nil {
				fmt.Fprintln(os.Stderr, "bench:", err)
				os.Exit(1)
			}
			dieRefW = refW
			if w.Stats != refW.Stats {
				fmt.Println("  SERVE EQUIVALENCE FAILURE: calibration stats differ between engine paths")
				rep.Equivalent = false
			}
			for _, cfg := range serveConfigs() {
				fr, rr := serveDiE[cfg.Name()], simulate(refW, cfg)
				if fr.Check != rr.Check || fr.MakespanCycles != rr.MakespanCycles || fr.Breakdown != rr.Breakdown {
					fmt.Printf("  SERVE EQUIVALENCE FAILURE: %s differs between engine paths\n", cfg.Name())
					rep.Equivalent = false
				}
			}
		}
	}
	// The paper's two concurrency collapses, asserted over simulated
	// throughput under SGX DiE (deterministic: a hard gate, guarded only
	// by the scenario actually saturating the contended resources).
	if serveClients >= serveCollapseClients {
		tput := func(name string) float64 { return serveDiE[name].ThroughputQPS }
		syncRatio := tput("serve.lockfree.pre") / tput("serve.mutex.pre")
		edmmRatio := tput("serve.lockfree.pre") / tput("serve.lockfree.dyn")
		note := fmt.Sprintf("serve sync collapse (lock-free/SDK-mutex qps, DiE): %.2fx (want >= %.1fx)", syncRatio, serveSyncCollapseMin)
		if syncRatio < serveSyncCollapseMin {
			rep.ServeOK = false
			note += " MISS"
		}
		rep.TargetNotes = append(rep.TargetNotes, note)
		fmt.Println("  " + note)
		note = fmt.Sprintf("serve EDMM collapse (pre-sized/EDMM qps, DiE): %.2fx (want >= %.1fx)", edmmRatio, serveEDMMCollapseMin)
		if edmmRatio < serveEDMMCollapseMin {
			rep.ServeOK = false
			note += " MISS"
		}
		rep.TargetNotes = append(rep.TargetNotes, note)
		fmt.Println("  " + note)
	} else {
		note := fmt.Sprintf("serve collapse ratios not asserted: %d clients < %d (queue/commit lock unsaturated)", serveClients, serveCollapseClients)
		rep.TargetNotes = append(rep.TargetNotes, note)
		fmt.Println("  " + note)
	}

	// --- Fault: fault-injected serving under SGX DiE ---
	// Every scenario is deterministic and golden-pinned; the reference-
	// calibrated workload must reproduce each one bit for bit, and the
	// crash-storm pair anchors the graceful-degradation gate.
	rep.FaultOK = true
	fmt.Printf("== fault (fault-injected serving, SGX DiE, %d clients / %d workers) ==\n", faultClients, faultWorkers)
	faultRes := map[string]*serve.Result{}
	for _, sc := range faultConfigs(dieW) {
		t0 := time.Now()
		res := simulate(dieW, sc.cfg)
		host := time.Since(t0)
		faultRes[sc.name] = res
		rep.Serve = append(rep.Serve, res)
		rep.Sweep = append(rep.Sweep, wlResult{sc.name, core.SGXDiE.String(), "fast", host.Nanoseconds(), 1, res.MakespanCycles, res.Check, true, dieW.Stats})
		if rr := simulate(dieRefW, sc.cfg); rr.Check != res.Check || rr.MakespanCycles != res.MakespanCycles || rr.Breakdown != res.Breakdown {
			fmt.Printf("  FAULT EQUIVALENCE FAILURE: %s differs between engine paths\n", sc.name)
			rep.Equivalent = false
		}
		fmt.Printf("  %-18s goodput=%-9.0f p99=%-11d ok=%-4d fail=%-3d timeout=%-4d retry=%-4d shed=%-4d crash=%-3d aex=%d\n",
			sc.name, res.GoodputQPS, res.P99, res.Succeeded, res.Failed,
			res.Breakdown.Timeouts, res.Breakdown.Retries, res.Breakdown.Shed,
			res.Breakdown.Crashes, res.Breakdown.AEXEvents)
	}
	{
		good := func(name string) float64 { return faultRes[name].GoodputQPS }
		degr := good("fault.crash.admit") / good("fault.none.admit")
		note := fmt.Sprintf("fault degradation (admit crash-storm/fault-free goodput, DiE): %.2fx (want >= %.2fx)", degr, faultGoodputMin)
		if degr < faultGoodputMin {
			rep.FaultOK = false
			note += " MISS"
		}
		rep.TargetNotes = append(rep.TargetNotes, note)
		fmt.Println("  " + note)
		blow := float64(faultRes["fault.crash.naive"].P99) / float64(faultRes["fault.none.naive"].P99)
		note = fmt.Sprintf("fault naive p99 blowup (crash-storm/fault-free, DiE): %.1fx (want >= %.1fx)", blow, naiveP99CollapseMin)
		if blow < naiveP99CollapseMin {
			rep.FaultOK = false
			note += " MISS"
		}
		rep.TargetNotes = append(rep.TargetNotes, note)
		fmt.Println("  " + note)
		coll := good("fault.crash.naive") / good("fault.crash.admit")
		note = fmt.Sprintf("fault naive goodput collapse (naive/admit under crash-storm, DiE): %.2fx (want < %.2fx)", coll, faultGoodputMin)
		if coll >= faultGoodputMin {
			rep.FaultOK = false
			note += " MISS"
		}
		rep.TargetNotes = append(rep.TargetNotes, note)
		fmt.Println("  " + note)
	}

	// --- Scale: open-loop sharded/batched serving under SGX DiE ---
	// A dedicated calibration (three tiny pipelines: the scan-only q1,
	// the sort-order q4, the join-heavy q3, mixed 6/3/1) keeps the mean
	// service time small enough that per-attempt enclave transitions
	// dominate the unbatched shapes — the regime batching targets. The
	// reference-calibrated workload must reproduce every scenario bit
	// for bit, as in the serve and fault sections.
	rep.ShardOK = true
	fmt.Printf("== scale (open-loop sharded/batched serving, SGX DiE, %d workers) ==\n", scaleWorkers)
	scaleRes := map[string]*serve.Result{}
	{
		opt := serve.CalibrateOptions{
			Setting: core.SGXDiE, NDim: 64, NFact: 256, MaxRows: 256,
			Pipelines: []string{query.Q1Name, query.Q4Name, query.Q3Name},
		}
		w, err := serve.Calibrate(opt)
		if err != nil {
			fmt.Fprintln(os.Stderr, "bench:", err)
			os.Exit(1)
		}
		ropt := opt
		ropt.Reference = true
		rw, err := serve.Calibrate(ropt)
		if err != nil {
			fmt.Fprintln(os.Stderr, "bench:", err)
			os.Exit(1)
		}
		if w.Stats != rw.Stats {
			fmt.Println("  SCALE EQUIVALENCE FAILURE: calibration stats differ between engine paths")
			rep.Equivalent = false
		}
		weights := []int{6, 3, 1}
		var wsum, wtot uint64
		for i, c := range w.Classes {
			wsum += uint64(weights[i]) * c.ServiceCycles
			wtot += uint64(weights[i])
		}
		sbar := wsum / wtot
		gap := scaleGapServiceMult * sbar
		variants := []struct {
			tag      string
			dispatch serve.DispatchKind
			batch    int
		}{
			{"global", serve.DispatchGlobal, 0},
			{"shard", serve.DispatchSharded, 0},
			{"shard.batch", serve.DispatchSharded, scaleBatch},
		}
		for _, nc := range scaleClients {
			for _, v := range variants {
				cfg := serve.Config{
					Clients: nc, Workers: scaleWorkers,
					RequestsPerClient: scaleReqsPerCli,
					Sync:              serve.SyncLockFree, Mem: serve.MemPreSized,
					Weights: weights, JitterPct: 10, Seed: 7,
					Dispatch: v.dispatch, Batch: v.batch,
					Arrival: &serve.ArrivalPlan{Kind: serve.ArrivalPoisson, MeanGapCycles: gap},
				}
				name := fmt.Sprintf("scale.%s.c%d", v.tag, nc)
				t0 := time.Now()
				res := simulate(w, cfg)
				host := time.Since(t0)
				scaleRes[name] = res
				rep.Serve = append(rep.Serve, res)
				rep.Sweep = append(rep.Sweep, wlResult{name, core.SGXDiE.String(), "fast", host.Nanoseconds(), 1, res.MakespanCycles, res.Check, true, w.Stats})
				if rr := simulate(rw, cfg); rr.Check != res.Check || rr.MakespanCycles != res.MakespanCycles ||
					rr.Breakdown != res.Breakdown || rr.DispatchStats != res.DispatchStats {
					fmt.Printf("  SCALE EQUIVALENCE FAILURE: %s differs between engine paths\n", name)
					rep.Equivalent = false
				}
				fmt.Printf("  %-22s qps=%-10.0f p50=%-9d p99=%-10d steals=%-6d batches=%-6d transitions=%d\n",
					name, res.ThroughputQPS, res.P50, res.P99,
					res.DispatchStats.Steals, res.DispatchStats.Batches, res.Breakdown.Transitions)
			}
		}
		for _, nc := range scaleGateClients {
			g := scaleRes[fmt.Sprintf("scale.global.c%d", nc)]
			sb := scaleRes[fmt.Sprintf("scale.shard.batch.c%d", nc)]
			ratio := sb.ThroughputQPS / g.ThroughputQPS
			note := fmt.Sprintf("shard scaling (shard.batch/global qps, %d open-loop clients, DiE): %.2fx (want >= %.1fx)",
				nc, ratio, scaleTputRatioMin)
			if ratio < scaleTputRatioMin {
				rep.ShardOK = false
				note += " MISS"
			}
			rep.TargetNotes = append(rep.TargetNotes, note)
			fmt.Println("  " + note)
			p99r := float64(g.P99) / float64(sb.P99)
			note = fmt.Sprintf("shard p99 bound (global/shard.batch p99, %d clients, DiE): %.2fx (want >= %.1fx)",
				nc, p99r, scaleP99RatioMin)
			if p99r < scaleP99RatioMin {
				rep.ShardOK = false
				note += " MISS"
			}
			rep.TargetNotes = append(rep.TargetNotes, note)
			fmt.Println("  " + note)
		}
	}

	// --- Speedup: fast vs per-op reference, with equivalence checks ---
	fmt.Println("== speedup (fast vs per-op reference, SGX DiE) ==")
	die := core.SGXDiE
	type sp struct {
		name string
		prep func(ref bool) runner
		n    int
	}
	sps := []sp{
		{"seq.stream", func(ref bool) runner { return prepSeq(ref, die, seqBytes) }, reps},
		{"scan.bv", func(ref bool) runner { return prepScan(ref, die, scanBytes, false, 1) }, reps},
		{"scan.rowid", func(ref bool) runner { return prepScan(ref, die, scanBytes, true, 1) }, reps},
		{"scan.gather", func(ref bool) runner { return prepGather(ref, die, scanBytes, 1, gatherIDs) }, reps},
		{"micro.gather", func(ref bool) runner { return prepMicroGather(ref, die, gatherArr, gatherOps) }, reps},
		{"join.RHO", func(ref bool) runner { return prepJoin(ref, die, join.NewRHO(), rhoScale, 1) }, joinReps},
		{"join.PHT", func(ref bool) runner { return prepJoin(ref, die, join.NewPHT(), rhoScale*4, 1) }, joinReps},
		{"join.MWAY", func(ref bool) runner { return prepJoin(ref, die, join.NewMWAY(), rhoScale*4, 1) }, joinReps},
		{"join.CrkJoin", func(ref bool) runner { return prepJoin(ref, die, join.NewCrk(), rhoScale*4, 1) }, joinReps},
		{query.Q1Name, func(ref bool) runner { return prepPipeline(ref, die, q1, qDim, qFact, qMaxRows, 1) }, joinReps},
		{query.Q2Name, func(ref bool) runner { return prepPipeline(ref, die, q2, qDim, qFact, qMaxRows, 1) }, joinReps},
		{query.Q3Name, func(ref bool) runner { return prepPipeline(ref, die, q3, qDim, q3Fact, 0, 1) }, joinReps},
		{query.Q4Name, func(ref bool) runner { return prepPipeline(ref, die, q4, qDim, qFact, qMaxRows, 1) }, joinReps},
		{query.Q5Name, func(ref bool) runner { return prepPipeline(ref, die, q5, qDim, q3Fact, 0, 1) }, joinReps},
		{query.Q2SName, func(ref bool) runner { return prepPipeline(ref, die, q2s, qDim, qFact, qMaxRows, 1) }, joinReps},
		{query.Q3SName, func(ref bool) runner { return prepPipeline(ref, die, q3s, qDim, q3Fact, 0, 1) }, joinReps},
	}
	for _, w := range sps {
		rHost, rCycs, rChks, rStats := measure(w.prep(true), w.n)
		fHost, fCycs, fChks, fStats := measure(w.prep(false), w.n)
		eq := true
		for k := 0; k < w.n; k++ {
			// Repetition k sees identical simulated state in both modes,
			// so cycles, checks and stats must match pairwise, bit for bit.
			if rCycs[k] != fCycs[k] || rChks[k] != fChks[k] || rStats[k] != fStats[k] {
				eq = false
			}
		}
		if !eq {
			rep.Equivalent = false
		}
		ratio := float64(rHost) / float64(fHost)
		rep.Speedup = append(rep.Speedup,
			wlResult{w.name, die.String(), "per-op", rHost.Nanoseconds(), w.n, rCycs[0], rChks[0], true, rStats[0]},
			wlResult{w.name, die.String(), "fast", fHost.Nanoseconds(), w.n, fCycs[0], fChks[0], true, fStats[0]})
		rep.Speedups[w.name] = ratio
		fmt.Printf("  %-18s per-op=%-12v fast=%-12v speedup=%.2fx equivalent=%v\n",
			w.name, rHost.Round(time.Millisecond), fHost.Round(time.Millisecond), ratio, eq)
	}

	// --- Acceptance targets (informative outside -quick) ---
	rep.TargetsMet = true
	check := func(name string, target float64) {
		got := rep.Speedups[name]
		note := fmt.Sprintf("%s: %.2fx (target >= %.1fx)", name, got, target)
		if got < target {
			rep.TargetsMet = false
			note += " MISS"
		}
		rep.TargetNotes = append(rep.TargetNotes, note)
		fmt.Println("  " + note)
	}
	fmt.Println("== targets ==")
	if *quick {
		fmt.Println("  (quick mode: sizes too small for representative ratios; targets not checked)")
	} else {
		check("seq.stream", 5.0)
		// The reference path shares the restructured kernels (NT result
		// stores, vectorized emission), so the rowid fast-vs-reference
		// gap is structurally narrower than the random-access ones.
		check("scan.rowid", 2.0)
		check("scan.gather", 2.0)
		check("micro.gather", 2.0)
		if rhoScale <= rhoRatioScale {
			check("join.RHO", 2.0)
		} else {
			note := fmt.Sprintf("join.RHO: ratio not asserted at scale %d (needs scale <= %d data; smaller inputs flake on fixed costs)", rhoScale, rhoRatioScale)
			rep.TargetNotes = append(rep.TargetNotes, note)
			fmt.Println("  " + note)
		}
		check("join.PHT", 2.0)
	}
	if !rep.Equivalent {
		fmt.Println("  EQUIVALENCE FAILURE: fast path changed simulated results")
	}

	// --- Golden gate over the deterministic sweep entries ---
	if *updateGolden || *checkGolden {
		if !*quick {
			fmt.Fprintln(os.Stderr, "bench: the golden snapshot covers -quick numbers only; add -quick")
			os.Exit(2)
		}
		if *updateGolden {
			if err := writeGolden(*goldenPath, rep, *threads); err != nil {
				fmt.Fprintln(os.Stderr, "bench:", err)
				os.Exit(1)
			}
			fmt.Printf("== golden ==\n  wrote %s\n", *goldenPath)
		} else {
			drift := compareGolden(*goldenPath, rep, *threads)
			fmt.Println("== golden ==")
			if len(drift) == 0 {
				fmt.Printf("  %s: no drift\n", *goldenPath)
			} else {
				rep.GoldenOK = false
				const maxDriftLines = 25
				shown := drift
				if len(shown) > maxDriftLines {
					shown = shown[:maxDriftLines]
				}
				for _, d := range shown {
					fmt.Println("  DRIFT: " + d)
				}
				if more := len(drift) - len(shown); more > 0 {
					fmt.Printf("  ... and %d more drift lines (%d total)\n", more, len(drift))
				}
				fmt.Println("  (intentional change? refresh with: go run ./cmd/bench -quick -update-golden)")
			}
		}
	}

	rep.ObsOK = len(obsPctlViolations) == 0
	if !rep.ObsOK {
		fmt.Println("== histogram percentile violations ==")
		for _, v := range obsPctlViolations {
			fmt.Println("  OBS: " + v)
		}
	}

	f, err := os.Create(*out)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
	f.Close()
	fmt.Printf("wrote %s\n", *out)
	if !rep.Equivalent || !rep.GoldenOK || !rep.ServeOK || !rep.HashSortOK || !rep.PlannerOK || !rep.SpillOK || !rep.FaultOK || !rep.ShardOK || !rep.ObsOK {
		os.Exit(1)
	}
}

// goldenEntries extracts the deterministic sweep measurements.
func goldenEntries(rep *report) []goldenEntry {
	var es []goldenEntry
	for _, w := range rep.Sweep {
		if w.Det {
			es = append(es, goldenEntry{Workload: w.Workload, Setting: w.Setting, SimCycles: w.SimCycles, Check: w.Check, Stats: w.Stats})
		}
	}
	return es
}

func writeGolden(path string, rep *report, threads int) error {
	g := goldenFile{Schema: goldenSchema, Quick: true, Threads: threads, Entries: goldenEntries(rep)}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	return enc.Encode(g)
}

// compareGolden diffs this run's deterministic sweep entries against the
// snapshot; it returns one message per drift (empty: gate passes).
func compareGolden(path string, rep *report, threads int) []string {
	raw, err := os.ReadFile(path)
	if err != nil {
		return []string{fmt.Sprintf("cannot read %s: %v (first run? create it with -update-golden)", path, err)}
	}
	var g goldenFile
	if err := json.Unmarshal(raw, &g); err != nil {
		return []string{fmt.Sprintf("cannot parse %s: %v", path, err)}
	}
	if g.Schema != goldenSchema {
		return []string{fmt.Sprintf("%s has schema %q, want %q (refresh with -update-golden)", path, g.Schema, goldenSchema)}
	}
	if g.Threads != threads {
		return []string{fmt.Sprintf("golden was recorded with -threads %d, this run used %d", g.Threads, threads)}
	}
	key := func(w, s string) string { return w + "|" + s }
	got := map[string]goldenEntry{}
	for _, e := range goldenEntries(rep) {
		got[key(e.Workload, e.Setting)] = e
	}
	var drift []string
	seen := map[string]bool{}
	for _, want := range g.Entries {
		k := key(want.Workload, want.Setting)
		seen[k] = true
		cur, ok := got[k]
		if !ok {
			drift = append(drift, fmt.Sprintf("%s/%s: in golden but missing from this run", want.Workload, want.Setting))
			continue
		}
		if cur.SimCycles != want.SimCycles {
			drift = append(drift, fmt.Sprintf("%s/%s: sim_cycles %d, golden %d", want.Workload, want.Setting, cur.SimCycles, want.SimCycles))
		}
		if cur.Check != want.Check {
			drift = append(drift, fmt.Sprintf("%s/%s: check %#x, golden %#x", want.Workload, want.Setting, cur.Check, want.Check))
		}
		if cur.Stats != want.Stats {
			// Name the drifted fields: "stats differ" on a 15-field struct
			// sends the reader diffing JSON by hand; the gate should say
			// which counter moved and by how much.
			gv, wv := reflect.ValueOf(cur.Stats), reflect.ValueOf(want.Stats)
			for i := 0; i < gv.NumField(); i++ {
				if gv.Field(i).Interface() != wv.Field(i).Interface() {
					drift = append(drift, fmt.Sprintf("%s/%s: stats.%s %v, golden %v",
						want.Workload, want.Setting, gv.Type().Field(i).Name,
						gv.Field(i).Interface(), wv.Field(i).Interface()))
				}
			}
		}
	}
	for k, e := range got {
		if !seen[k] {
			drift = append(drift, fmt.Sprintf("%s/%s: new deterministic workload not in golden (refresh with -update-golden)", e.Workload, e.Setting))
		}
	}
	sort.Strings(drift)
	return drift
}
