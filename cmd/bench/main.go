// Command bench measures the simulator's host-side performance: it runs a
// fixed scan + join suite across the paper's four execution settings on
// the batched fast path (the "sweep"), then compares the fast path
// against the per-op reference engine on representative workloads (the
// "speedup" section), asserting that both produce identical simulated
// results. Results are written to a BENCH_engine.json trajectory file so
// future performance PRs are comparable.
//
// Usage:
//
//	go run ./cmd/bench           # full suite (a few minutes, single core)
//	go run ./cmd/bench -quick    # small sizes, CI smoke run
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"sgxbench/internal/core"
	"sgxbench/internal/engine"
	"sgxbench/internal/join"
	"sgxbench/internal/kernels"
	"sgxbench/internal/platform"
	"sgxbench/internal/rel"
	"sgxbench/internal/scan"
)

var (
	quick   = flag.Bool("quick", false, "small sizes and single repetitions (CI smoke run)")
	out     = flag.String("out", "BENCH_engine.json", "output JSON trajectory file")
	threads = flag.Int("threads", 4, "worker threads for the sweep workloads")
)

// wlResult is one (workload, setting, engine-mode) measurement.
type wlResult struct {
	Workload  string `json:"workload"`
	Setting   string `json:"setting"`
	Mode      string `json:"mode"` // "fast" or "per-op"
	HostNS    int64  `json:"host_ns"`
	SimCycles uint64 `json:"sim_cycles"`
	Check     uint64 `json:"check"` // matches / cycle checksum for equivalence
}

type report struct {
	Schema      string             `json:"schema"`
	Timestamp   string             `json:"timestamp"`
	GoVersion   string             `json:"go_version"`
	NumCPU      int                `json:"num_cpu"`
	Quick       bool               `json:"quick"`
	Sweep       []wlResult         `json:"sweep"`
	Speedup     []wlResult         `json:"speedup"`
	Speedups    map[string]float64 `json:"speedups"`
	Equivalent  bool               `json:"equivalence_ok"`
	TargetsMet  bool               `json:"targets_met"`
	TargetNotes []string           `json:"target_notes"`
}

func settings() []core.Setting {
	return []core.Setting{core.PlainCPU, core.PlainCPUM, core.SGXDoE, core.SGXDiE}
}

// --- workload runners; each returns (host time, simulated cycles, check) ---

func runSeq(ref bool, setting core.Setting, bytes int64) (time.Duration, uint64, uint64) {
	env := core.NewEnv(core.Options{Plat: platform.XeonGold6326().Scaled(32), Setting: setting, Reference: ref})
	buf := env.Space.Raw("seq", bytes, env.DataRegion())
	t := engine.NewThread(env.EngineConfig(), 0)
	start := time.Now()
	cyc := kernels.StreamRead(t, buf, 0, bytes)
	return time.Since(start), cyc, cyc
}

func runScan(ref bool, setting core.Setting, bytes int, rowIDs bool, thr int) (time.Duration, uint64, uint64) {
	env := core.NewEnv(core.Options{Plat: platform.XeonGold6326().Scaled(32), Setting: setting, Reference: ref})
	col := env.Space.AllocU8("col", bytes, env.DataRegion())
	scan.GenColumn(col, 9)
	start := time.Now()
	res := scan.Run(env, col, scan.Options{Threads: thr, Pred: scan.Predicate{Lo: 16, Hi: 127}, RowIDs: rowIDs})
	return time.Since(start), res.WallCycles, res.Matches
}

func runJoin(ref bool, setting core.Setting, alg join.Algorithm, scale int64, thr int) (time.Duration, uint64, uint64) {
	env := core.NewEnv(core.Options{Plat: platform.XeonGold6326().Scaled(scale), Setting: setting, Reference: ref})
	nR := rel.RowsForMB(100) / int(scale)
	nS := rel.RowsForMB(400) / int(scale)
	build, probe := rel.GenFKPair(env.Space, nR, nS, env.DataRegion(), 1234)
	start := time.Now()
	res, err := alg.Run(env, build, probe, join.Options{Threads: thr, Optimized: true})
	if err != nil {
		panic(err)
	}
	return time.Since(start), res.WallCycles, res.Matches
}

func main() {
	flag.Parse()
	rep := &report{
		Schema:    "sgxbench/bench_engine/v1",
		Timestamp: time.Now().UTC().Format(time.RFC3339),
		GoVersion: runtime.Version(),
		NumCPU:    runtime.NumCPU(),
		Quick:     *quick,
		Speedups:  map[string]float64{},
	}

	// Repetitions per (workload, mode) in the speedup section; the best
	// (minimum) host time is kept, the standard estimator under noise
	// that only ever adds time.
	seqBytes := int64(256 << 20)
	scanBytes := 64 << 20
	rhoScale := int64(4) // 25 MB join 100 MB: near-full-size working set
	reps := 4
	joinReps := 3
	if *quick {
		seqBytes = 16 << 20
		scanBytes = 4 << 20
		rhoScale = 64
		reps = 1
		joinReps = 1
	}

	// --- Sweep: the fixed suite across all four settings, fast path ---
	fmt.Println("== sweep (batched fast path) ==")
	for _, s := range settings() {
		type wl struct {
			name string
			run  func() (time.Duration, uint64, uint64)
		}
		wls := []wl{
			{"scan.bv", func() (time.Duration, uint64, uint64) { return runScan(false, s, scanBytes, false, *threads) }},
			{"scan.rowid", func() (time.Duration, uint64, uint64) { return runScan(false, s, scanBytes, true, *threads) }},
			{"join.RHO", func() (time.Duration, uint64, uint64) {
				return runJoin(false, s, join.NewRHO(), rhoScale*8, *threads)
			}},
			{"join.PHT", func() (time.Duration, uint64, uint64) {
				return runJoin(false, s, join.NewPHT(), rhoScale*8, *threads)
			}},
		}
		for _, w := range wls {
			host, cyc, chk := w.run()
			rep.Sweep = append(rep.Sweep, wlResult{w.name, s.String(), "fast", host.Nanoseconds(), cyc, chk})
			fmt.Printf("  %-11s %-11s host=%-12v simMcyc=%d\n", w.name, s, host.Round(time.Millisecond), cyc/1e6)
		}
	}

	// --- Speedup: fast vs per-op reference, with equivalence checks ---
	fmt.Println("== speedup (fast vs per-op reference, SGX DiE) ==")
	die := core.SGXDiE
	type sp struct {
		name string
		run  func(ref bool) (time.Duration, uint64, uint64)
	}
	sps := []sp{
		{"seq.stream", func(ref bool) (time.Duration, uint64, uint64) { return runSeq(ref, die, seqBytes) }},
		{"scan.bv", func(ref bool) (time.Duration, uint64, uint64) { return runScan(ref, die, scanBytes, false, 1) }},
		{"scan.rowid", func(ref bool) (time.Duration, uint64, uint64) { return runScan(ref, die, scanBytes, true, 1) }},
		{"join.RHO", func(ref bool) (time.Duration, uint64, uint64) { return runJoin(ref, die, join.NewRHO(), rhoScale, 1) }},
		{"join.PHT", func(ref bool) (time.Duration, uint64, uint64) { return runJoin(ref, die, join.NewPHT(), rhoScale*4, 1) }},
	}
	rep.Equivalent = true
	for _, w := range sps {
		n := reps
		if w.name == "join.RHO" || w.name == "join.PHT" {
			n = joinReps
		}
		var rBest, fBest time.Duration = 1 << 62, 1 << 62
		var rCyc, fCyc, rChk, fChk uint64
		for k := 0; k < n; k++ {
			if h, c, m := w.run(true); h < rBest {
				rBest, rCyc, rChk = h, c, m
			}
			if h, c, m := w.run(false); h < fBest {
				fBest, fCyc, fChk = h, c, m
			}
		}
		eq := rCyc == fCyc && rChk == fChk
		if !eq {
			rep.Equivalent = false
		}
		ratio := float64(rBest) / float64(fBest)
		rep.Speedup = append(rep.Speedup,
			wlResult{w.name, die.String(), "per-op", rBest.Nanoseconds(), rCyc, rChk},
			wlResult{w.name, die.String(), "fast", fBest.Nanoseconds(), fCyc, fChk})
		rep.Speedups[w.name] = ratio
		fmt.Printf("  %-11s per-op=%-12v fast=%-12v speedup=%.2fx equivalent=%v\n",
			w.name, rBest.Round(time.Millisecond), fBest.Round(time.Millisecond), ratio, eq)
	}

	// --- Acceptance targets (informative outside -quick) ---
	rep.TargetsMet = true
	check := func(name string, target float64) {
		got := rep.Speedups[name]
		note := fmt.Sprintf("%s: %.2fx (target >= %.1fx)", name, got, target)
		if got < target {
			rep.TargetsMet = false
			note += " MISS"
		}
		rep.TargetNotes = append(rep.TargetNotes, note)
		fmt.Println("  " + note)
	}
	fmt.Println("== targets ==")
	if *quick {
		fmt.Println("  (quick mode: sizes too small for representative ratios; targets not checked)")
	} else {
		check("seq.stream", 5.0)
		check("join.RHO", 2.0)
	}
	if !rep.Equivalent {
		fmt.Println("  EQUIVALENCE FAILURE: fast path changed simulated results")
	}

	f, err := os.Create(*out)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
	f.Close()
	fmt.Printf("wrote %s\n", *out)
	if !rep.Equivalent {
		os.Exit(1)
	}
}
