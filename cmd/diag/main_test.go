package main

import (
	"strings"
	"testing"
)

// TestPickMode pins the mode dispatch: each mode flag alone selects its
// mode, no flags select the join mode, and every conflicting
// combination is an error naming the clashing flags — the regression
// test for the silent precedence order that used to run -serve and
// drop -epc when both were given.
func TestPickMode(t *testing.T) {
	cases := []struct {
		label    string
		serve    bool
		fault    bool
		epc      bool
		query    string
		want     runMode
		errFlags []string
	}{
		{label: "default-join", want: modeJoin},
		{label: "serve", serve: true, want: modeServe},
		{label: "fault", fault: true, want: modeFault},
		{label: "epc", epc: true, want: modeEPC},
		{label: "query", query: "q1.filter-agg", want: modeQuery},
		{label: "suite-query", query: "s09.j1.sel250.u.agg", want: modeQuery},
		{label: "serve+fault", serve: true, fault: true, errFlags: []string{"-serve", "-fault"}},
		{label: "serve+epc", serve: true, epc: true, errFlags: []string{"-serve", "-epc"}},
		{label: "fault+query", fault: true, query: "q1.filter-agg", errFlags: []string{"-fault", "-query"}},
		{label: "epc+query", epc: true, query: "q1.filter-agg", errFlags: []string{"-epc", "-query"}},
		{label: "all-four", serve: true, fault: true, epc: true, query: "x",
			errFlags: []string{"-serve", "-fault", "-epc", "-query"}},
	}
	for _, c := range cases {
		got, err := pickMode(c.serve, c.fault, c.epc, c.query)
		if len(c.errFlags) > 0 {
			if err == nil {
				t.Errorf("%s: no error, got mode %d", c.label, got)
				continue
			}
			for _, f := range c.errFlags {
				if !strings.Contains(err.Error(), f) {
					t.Errorf("%s: error %q does not name %s", c.label, err, f)
				}
			}
			continue
		}
		if err != nil {
			t.Errorf("%s: unexpected error %v", c.label, err)
		} else if got != c.want {
			t.Errorf("%s: mode %d, want %d", c.label, got, c.want)
		}
	}
}

// TestParseSetting pins the setting-name table and its rejection of
// unknown names (main exits 2 on the false return).
func TestParseSetting(t *testing.T) {
	for name, want := range map[string]bool{
		"plain": true, "plainm": true, "doe": true, "die": true,
		"": false, "sgx": false, "DiE": false,
	} {
		if _, ok := parseSetting(name); ok != want {
			t.Errorf("parseSetting(%q) ok=%v, want %v", name, ok, want)
		}
	}
}
