// Command diag runs one join under one execution setting and prints the
// simulated phase breakdown — a quick inspection tool for the timing
// model.
//
// Usage:
//
//	go run ./cmd/diag [-alg RHO] [-setting plain|plainm|doe|die] [-scale 128] [-threads 16] [-opt]
package main

import (
	"flag"
	"fmt"
	"os"

	"sgxbench/internal/core"
	"sgxbench/internal/join"
	"sgxbench/internal/platform"
	"sgxbench/internal/rel"
)

var (
	algName  = flag.String("alg", "RHO", "join algorithm: PHT, RHO, MWAY, INL or CrkJoin")
	setName  = flag.String("setting", "plain", "execution setting: plain, plainm, doe or die")
	scale    = flag.Int64("scale", 128, "platform scale-down factor (power of two)")
	threads  = flag.Int("threads", 16, "worker threads")
	optimize = flag.Bool("opt", false, "enable the unroll+reorder optimized kernels")
)

func parseSetting(s string) (core.Setting, bool) {
	switch s {
	case "plain":
		return core.PlainCPU, true
	case "plainm":
		return core.PlainCPUM, true
	case "doe":
		return core.SGXDoE, true
	case "die":
		return core.SGXDiE, true
	}
	return 0, false
}

func main() {
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: diag [flags]\n\nflags:\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	setting, ok := parseSetting(*setName)
	if !ok {
		fmt.Fprintf(os.Stderr, "diag: unknown setting %q (want plain, plainm, doe or die)\n", *setName)
		flag.Usage()
		os.Exit(2)
	}
	alg, err := join.ByName(*algName)
	if err != nil {
		fmt.Fprintf(os.Stderr, "diag: %v\n", err)
		flag.Usage()
		os.Exit(2)
	}
	if *scale <= 0 || *scale&(*scale-1) != 0 {
		fmt.Fprintf(os.Stderr, "diag: -scale %d must be a positive power of two\n", *scale)
		flag.Usage()
		os.Exit(2)
	}
	if *threads < 1 {
		fmt.Fprintf(os.Stderr, "diag: -threads %d must be >= 1\n", *threads)
		flag.Usage()
		os.Exit(2)
	}

	plat := platform.XeonGold6326().Scaled(*scale)
	env := core.NewEnv(core.Options{Plat: plat, Setting: setting})
	nR := rel.RowsForMB(100) / int(*scale)
	nS := rel.RowsForMB(400) / int(*scale)
	build, probe := rel.GenFKPair(env.Space, nR, nS, env.DataRegion(), 1234)
	res, err := alg.Run(env, build, probe, join.Options{Threads: *threads, Optimized: *optimize})
	if err != nil {
		fmt.Fprintf(os.Stderr, "diag: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("%s %s: wall=%d tput=%.1f M/s build=%d probe=%d\n",
		alg.Name(), setting, res.WallCycles, res.Throughput(env, nR, nS)/1e6, res.BuildCycles, res.ProbeCycles)
	for _, p := range res.Phases {
		fmt.Printf("%-10s wall=%9d busiest=%9d bw=%v host=%6.1fms loads=%9d stores=%9d l1=%9d l2=%8d l3=%7d dram=%7d walks=%6d ssb=%9d strF=%7d rndF=%7d\n",
			p.Name, p.WallCycles, p.Busiest, p.BWBound, float64(p.HostNanos)/1e6,
			p.Agg.Loads, p.Agg.Stores, p.Agg.L1Hits, p.Agg.L2Hits, p.Agg.L3Hits,
			p.Agg.DRAMAcc, p.Agg.TLBWalks, p.Agg.StallSSB, p.Agg.StreamFills, p.Agg.RandomFills)
	}
}
