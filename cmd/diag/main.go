package main

import (
	"fmt"
	"os"

	"sgxbench/internal/core"
	"sgxbench/internal/join"
	"sgxbench/internal/platform"
	"sgxbench/internal/rel"
)

func main() {
	scale := int64(128)
	algName := "RHO"
	if len(os.Args) > 1 {
		algName = os.Args[1]
	}
	setting := core.PlainCPU
	if len(os.Args) > 2 && os.Args[2] == "die" {
		setting = core.SGXDiE
	}
	plat := platform.XeonGold6326().Scaled(scale)
	env := core.NewEnv(core.Options{Plat: plat, Setting: setting})
	nR := rel.RowsForMB(100) / int(scale)
	nS := rel.RowsForMB(400) / int(scale)
	build, probe := rel.GenFKPair(env.Space, nR, nS, env.DataRegion(), 1234)
	alg, err := join.ByName(algName)
	if err != nil {
		panic(err)
	}
	res, _ := alg.Run(env, build, probe, join.Options{Threads: 16})
	fmt.Printf("%s %s: wall=%d tput=%.1f M/s build=%d probe=%d\n", algName, setting, res.WallCycles, res.Throughput(env, nR, nS)/1e6, res.BuildCycles, res.ProbeCycles)
	for _, p := range res.Phases {
		fmt.Printf("%-10s wall=%9d busiest=%9d bw=%v loads=%9d stores=%9d l1=%9d l2=%8d l3=%7d dram=%7d walks=%6d ssb=%9d strF=%7d rndF=%7d\n",
			p.Name, p.WallCycles, p.Busiest, p.BWBound, p.Agg.Loads, p.Agg.Stores, p.Agg.L1Hits, p.Agg.L2Hits, p.Agg.L3Hits, p.Agg.DRAMAcc, p.Agg.TLBWalks, p.Agg.StallSSB, p.Agg.StreamFills, p.Agg.RandomFills)
	}
}
