// Command diag runs one join, one end-to-end query pipeline, or one
// multi-query serving scenario under one execution setting and prints
// the simulated breakdown — a quick inspection tool for the timing
// model.
//
// Usage:
//
//	go run ./cmd/diag [-alg RHO] [-setting plain|plainm|doe|die] [-scale 128] [-threads 16] [-opt]
//	go run ./cmd/diag -query q2.filter-join-agg -setting die [-threads 4]
//	go run ./cmd/diag -serve -setting die [-sync mutex] [-mem dyn] [-clients 32] [-workers 16]
//	go run ./cmd/diag -serve -setting die -dispatch shard -batch 16 -arrival poisson -gap 100000
//	go run ./cmd/diag -epc -setting die [-ratio 2] [-scale 512] [-threads 4]
//	go run ./cmd/diag -fault -setting die [-admit 12] [-clients 64] [-workers 8]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"sgxbench/internal/agg"
	"sgxbench/internal/core"
	"sgxbench/internal/engine"
	"sgxbench/internal/exec"
	"sgxbench/internal/join"
	"sgxbench/internal/obs"
	"sgxbench/internal/platform"
	"sgxbench/internal/query"
	"sgxbench/internal/rel"
	"sgxbench/internal/scan"
	"sgxbench/internal/serve"
	"sgxbench/internal/sgx"
)

var (
	algName   = flag.String("alg", "RHO", "join algorithm: PHT, RHO, MWAY, INL or CrkJoin")
	queryName = flag.String("query", "", "run a query pipeline instead of a join: a fixed shape (q1.filter-agg ... q5.mergejoin-agg, q2s/q3s spill variants) or a planner suite query (s01.j0.sel004.u.agg ... s20.j3.sel902.z.agg)")
	setName   = flag.String("setting", "plain", "execution setting: plain, plainm, doe or die")
	scale     = flag.Int64("scale", 128, "platform scale-down factor (power of two)")
	threads   = flag.Int("threads", 16, "worker threads")
	optimize  = flag.Bool("opt", false, "enable the unroll+reorder optimized kernels")

	// Serving-scenario mode (-serve): the multi-query simulator.
	serveMode = flag.Bool("serve", false, "simulate a multi-query serving scenario instead of a single join/pipeline")
	clients   = flag.Int("clients", 32, "serve: closed-loop clients")
	workers   = flag.Int("workers", 16, "serve: enclave worker-pool size")
	requests  = flag.Int("requests", 8, "serve: requests per client")
	syncName  = flag.String("sync", "mutex", "serve: dispatch queue sync model: mutex, spin or lockfree")
	memName   = flag.String("mem", "pre", "serve: memory mode: pre (pre-sized) or dyn (EDMM / minor faults)")
	think     = flag.Uint64("think", 0, "serve: client think time between requests (cycles)")

	// Production-scale serving knobs (-serve / -fault): dispatch shape,
	// enclave-entry batching and open-loop traffic.
	dispatchName = flag.String("dispatch", "global", "serve: dispatch shape: global (one lock-free/mutex queue) or shard (per-worker queues with work stealing)")
	batch        = flag.Int("batch", 0, "serve: max queued requests coalesced per enclave entry (0 or 1: unbatched)")
	arrivalName  = flag.String("arrival", "", "serve: open-loop arrival process: uniform, poisson, bursty, diurnal or heavytail (empty: closed loop)")
	gapCycles    = flag.Uint64("gap", 300_000, "serve: open-loop mean inter-arrival gap per client (cycles)")
	burstSize    = flag.Int("burst", 8, "serve: burst length for -arrival bursty")
	rampCycles   = flag.Uint64("ramp", 8_000_000, "serve: full diurnal period for -arrival diurnal (cycles)")

	// EPC oversubscription mode (-epc): the demand-paging diagnostics.
	epcMode  = flag.Bool("epc", false, "run the spill/naive operator pairs under a capacity-limited enclave and print the paging breakdown")
	epcRatio = flag.Int64("ratio", 2, "epc: oversubscription ratio (EPC capacity = working set / ratio; 0 = unlimited)")

	// Fault-injection mode (-fault): the crash-storm serving scenario
	// with deadlines, retries and admission control, plus the injected
	// fault timeline.
	faultMode = flag.Bool("fault", false, "simulate the fault-injected serving scenario and print the fault timeline next to the breakdown")
	admit     = flag.Int("admit", 12, "fault: queue-depth admission limit (0 = naive unbounded queue)")

	// Observability outputs: a Chrome-trace-event span/metrics timeline
	// for serving scenarios, a folded-stack cycle profile for pipelines.
	tracePath   = flag.String("trace", "", "serve/fault: write the scenario's span trace + metrics timeline as Chrome trace-event JSON (load in Perfetto / chrome://tracing)")
	profilePath = flag.String("profile", "", "query: print the per-operator x per-phase cycle tree and write folded stacks (flamegraph.pl compatible) to this file")
)

// runMode identifies which of diag's mutually exclusive run modes a
// flag combination selects.
type runMode int

const (
	modeJoin runMode = iota
	modeQuery
	modeServe
	modeEPC
	modeFault
)

// pickMode resolves the mode flags. At most one of -serve, -fault,
// -epc and -query may be given (none: the single-join mode);
// conflicting combinations are an error instead of a silent precedence
// order, so a typo like "-serve -epc" cannot run the wrong simulation.
func pickMode(serveM, faultM, epcM bool, queryName string) (runMode, error) {
	var sel []string
	m := modeJoin
	if serveM {
		sel = append(sel, "-serve")
		m = modeServe
	}
	if faultM {
		sel = append(sel, "-fault")
		m = modeFault
	}
	if epcM {
		sel = append(sel, "-epc")
		m = modeEPC
	}
	if queryName != "" {
		sel = append(sel, "-query")
		m = modeQuery
	}
	if len(sel) > 1 {
		return 0, fmt.Errorf("conflicting modes %s (pick one)", strings.Join(sel, " "))
	}
	return m, nil
}

func parseSetting(s string) (core.Setting, bool) {
	switch s {
	case "plain":
		return core.PlainCPU, true
	case "plainm":
		return core.PlainCPUM, true
	case "doe":
		return core.SGXDoE, true
	case "die":
		return core.SGXDiE, true
	}
	return 0, false
}

func main() {
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: diag [flags]\n\nflags:\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	mode, err := pickMode(*serveMode, *faultMode, *epcMode, *queryName)
	if err != nil {
		fmt.Fprintf(os.Stderr, "diag: %v\n", err)
		flag.Usage()
		os.Exit(2)
	}

	setting, ok := parseSetting(*setName)
	if !ok {
		fmt.Fprintf(os.Stderr, "diag: unknown setting %q (want plain, plainm, doe or die)\n", *setName)
		flag.Usage()
		os.Exit(2)
	}
	if *scale <= 0 || *scale&(*scale-1) != 0 {
		fmt.Fprintf(os.Stderr, "diag: -scale %d must be a positive power of two\n", *scale)
		flag.Usage()
		os.Exit(2)
	}
	if *threads < 1 {
		fmt.Fprintf(os.Stderr, "diag: -threads %d must be >= 1\n", *threads)
		flag.Usage()
		os.Exit(2)
	}

	plat := platform.XeonGold6326().Scaled(*scale)

	switch mode {
	case modeServe, modeFault:
		runServe(plat, setting)
		return
	case modeEPC:
		runEPC(plat, setting)
		return
	}

	env := core.NewEnv(core.Options{Plat: plat, Setting: setting})

	if mode == modeQuery {
		p, err := query.ByName(*queryName)
		if err != nil {
			fmt.Fprintf(os.Stderr, "diag: %v\n", err)
			flag.Usage()
			os.Exit(2)
		}
		nDim := 1 << 13
		nFact := rel.RowsForMB(400) / int(*scale)
		ds := query.GenDataset(env, nDim, nFact, 1234)
		opt := query.Options{Threads: *threads, Pred: scan.Predicate{Lo: 16, Hi: 127}}
		var prof *obs.Profiler
		if *profilePath != "" {
			prof = obs.NewProfiler("run")
			opt.Profiler = prof
		}
		res := p.Run(env, ds, opt)
		fmt.Printf("%s %s: wall=%d rows=%d groups=%d check=%#x\n",
			res.Pipeline, setting, res.WallCycles, res.Rows, res.Groups, res.Check)
		for _, st := range res.Stages {
			fmt.Printf("stage %-8s wall=%9d rows=%d\n", st.Name, st.WallCycles, st.Rows)
		}
		printPhases(res.Phases)
		if prof != nil {
			fmt.Println("cycle-attribution profile:")
			if err := prof.WriteTree(os.Stdout); err != nil {
				fmt.Fprintf(os.Stderr, "diag: %v\n", err)
				os.Exit(1)
			}
			f, err := os.Create(*profilePath)
			if err != nil {
				fmt.Fprintf(os.Stderr, "diag: %v\n", err)
				os.Exit(1)
			}
			werr := prof.WriteFolded(f)
			if cerr := f.Close(); werr == nil {
				werr = cerr
			}
			if werr != nil {
				fmt.Fprintf(os.Stderr, "diag: %v\n", werr)
				os.Exit(1)
			}
			fmt.Printf("wrote folded stacks to %s\n", *profilePath)
		}
		return
	}

	alg, err := join.ByName(*algName)
	if err != nil {
		fmt.Fprintf(os.Stderr, "diag: %v\n", err)
		flag.Usage()
		os.Exit(2)
	}
	nR := rel.RowsForMB(100) / int(*scale)
	nS := rel.RowsForMB(400) / int(*scale)
	build, probe := rel.GenFKPair(env.Space, nR, nS, env.DataRegion(), 1234)
	res, err := alg.Run(env, build, probe, join.Options{Threads: *threads, Optimized: *optimize})
	if err != nil {
		fmt.Fprintf(os.Stderr, "diag: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("%s %s: wall=%d tput=%.1f M/s build=%d probe=%d\n",
		alg.Name(), setting, res.WallCycles, res.Throughput(env, nR, nS)/1e6, res.BuildCycles, res.ProbeCycles)
	printPhases(res.Phases)
}

// runEPC runs the EPC oversubscription operator pairs — the
// spill-partitioned GRACE join and spill group-by against their naive
// counterparts (PHT's shared table, the single-table direct group-by) —
// under an enclave sized at workingSet / -ratio, and prints the paging
// breakdown: capacity, per-thread budget, residency at completion,
// fault/eviction/paging-cycle totals and the per-phase fault profile.
func runEPC(plat *platform.Platform, setting core.Setting) {
	nR := rel.RowsForMB(100) / int(*scale)
	nS := rel.RowsForMB(400) / int(*scale)
	pagesFor := func(ws int64) int64 {
		if *epcRatio <= 0 {
			return 0
		}
		return ws / *epcRatio
	}
	newEnv := func(pages int64) *core.Env {
		return core.NewEnv(core.Options{Plat: plat, Setting: setting, EPCPages: pages})
	}
	type opResult struct {
		wall   uint64
		phases []exec.PhaseStats
		stats  engine.Stats
	}
	type op struct {
		name string
		ws   int64 // working-set pages
		run  func(env *core.Env) (opResult, *exec.Group)
	}
	wsJoin := int64(nR+nS) * rel.TupleBytes / 4096
	wsAgg := int64(nS) * 8 / 4096
	aggInputs := func(env *core.Env) []agg.Input {
		_, fact := rel.GenFKPair(env.Space, nR, nS, env.DataRegion(), 1234)
		return []agg.Input{{Tup: fact.Tup, N: nS}}
	}
	ops := []op{
		{"join.grace (spill)", wsJoin, func(env *core.Env) (opResult, *exec.Group) {
			g := env.NewGroup(*threads, nil)
			build, probe := rel.GenFKPair(env.Space, nR, nS, env.DataRegion(), 1234)
			res, err := join.NewGrace().RunOn(env, g, build, probe, join.Options{Optimized: true})
			if err != nil {
				fmt.Fprintf(os.Stderr, "diag: %v\n", err)
				os.Exit(1)
			}
			return opResult{res.WallCycles, res.Phases, res.Stats}, g
		}},
		{"join.pht (naive)", wsJoin, func(env *core.Env) (opResult, *exec.Group) {
			g := env.NewGroup(*threads, nil)
			build, probe := rel.GenFKPair(env.Space, nR, nS, env.DataRegion(), 1234)
			res, err := join.NewPHT().RunOn(env, g, build, probe, join.Options{Optimized: true})
			if err != nil {
				fmt.Fprintf(os.Stderr, "diag: %v\n", err)
				os.Exit(1)
			}
			return opResult{res.WallCycles, res.Phases, res.Stats}, g
		}},
		{"agg.spill", wsAgg, func(env *core.Env) (opResult, *exec.Group) {
			g := env.NewGroup(*threads, nil)
			res := agg.SpillRunOn(env, g, aggInputs(env), agg.Options{Sel: agg.ByKey, Groups: nR})
			return opResult{res.WallCycles, res.Phases, res.Stats}, g
		}},
		{"agg.direct (naive)", wsAgg, func(env *core.Env) (opResult, *exec.Group) {
			g := env.NewGroup(1, nil)
			res := agg.DirectRunOn(env, g, aggInputs(env), agg.Options{Sel: agg.ByKey, Groups: nR})
			return opResult{res.WallCycles, res.Phases, res.Stats}, g
		}},
	}
	fmt.Printf("EPC oversubscription diagnostics: %s, scale %d, ratio %dx, %d threads\n",
		setting, *scale, *epcRatio, *threads)
	for _, o := range ops {
		pages := pagesFor(o.ws)
		env := newEnv(pages)
		res, g := o.run(env)
		fmt.Printf("\n%-20s ws=%d pages  epc=%d pages  wall=%d cycles\n", o.name, o.ws, pages, res.wall)
		budget, resident := 0, 0
		for _, t := range g.Threads {
			budget = t.EPCBudgetPages()
			resident += t.EPCResident()
		}
		fmt.Printf("  budget=%d pages/thread  resident(end)=%d pages\n", budget, resident)
		fmt.Printf("  faults=%d evictions=%d pagingCycles=%d\n",
			res.stats.EPCFaults, res.stats.EPCEvictions, res.stats.EPCPagingCycles)
		for _, p := range res.phases {
			if p.Agg.EPCFaults == 0 {
				continue
			}
			fmt.Printf("  phase %-12s wall=%9d faults=%7d evictions=%7d pagingCycles=%d\n",
				p.Name, p.WallCycles, p.Agg.EPCFaults, p.Agg.EPCEvictions, p.Agg.EPCPagingCycles)
		}
	}
}

// runServe calibrates the pipelines on the -scale'd platform and
// replays one serving scenario, printing the per-phase
// queue/transition/EDMM breakdown. Under -fault the scenario carries the
// crash-storm fault plan plus deadlines, capped-backoff retries and
// (unless -admit 0) queue-depth admission control, and the injected
// fault timeline is printed next to the breakdown, mirroring -epc.
func runServe(plat *platform.Platform, setting core.Setting) {
	sync, err := serve.ParseSync(*syncName)
	if err != nil {
		fmt.Fprintf(os.Stderr, "diag: %v\n", err)
		flag.Usage()
		os.Exit(2)
	}
	mm, err := serve.ParseMem(*memName)
	if err != nil {
		fmt.Fprintf(os.Stderr, "diag: %v\n", err)
		flag.Usage()
		os.Exit(2)
	}
	disp, err := serve.ParseDispatchKind(*dispatchName)
	if err != nil {
		fmt.Fprintf(os.Stderr, "diag: %v\n", err)
		flag.Usage()
		os.Exit(2)
	}
	var arrival *serve.ArrivalPlan
	if *arrivalName != "" {
		kind, err := serve.ParseArrivalKind(*arrivalName)
		if err != nil {
			fmt.Fprintf(os.Stderr, "diag: %v\n", err)
			flag.Usage()
			os.Exit(2)
		}
		arrival = &serve.ArrivalPlan{
			Kind: kind, MeanGapCycles: *gapCycles,
			BurstSize: *burstSize, RampPeriodCycles: *rampCycles,
		}
	}
	w, err := serve.Calibrate(serve.CalibrateOptions{Plat: plat, Setting: setting})
	if err != nil {
		fmt.Fprintf(os.Stderr, "diag: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("calibrated classes (%s, scale %d):\n", setting, *scale)
	for _, c := range w.Classes {
		fmt.Printf("  %-20s service=%9d cycles  workingSet=%4d pages\n", c.Name, c.ServiceCycles, c.Pages)
	}
	cfg := serve.Config{
		Clients: *clients, Workers: *workers, RequestsPerClient: *requests,
		Sync: sync, Mem: mm, ThinkCycles: *think, JitterPct: 10, Seed: 7,
		Dispatch: disp, Batch: *batch, Arrival: arrival,
	}
	if arrival != nil {
		// Open-loop scenarios pace themselves; think time is a
		// closed-loop knob and Validate rejects the combination.
		cfg.ThinkCycles = 0
	}
	// Calibrated mean service time: scales the fault plan and the
	// metrics sample interval so both survive -scale changes.
	var sum uint64
	for _, c := range w.Classes {
		sum += c.ServiceCycles
	}
	meanService := sum / uint64(len(w.Classes))
	if *tracePath != "" {
		cfg.Trace = obs.NewTracer(1 << 16)
		cfg.Metrics = obs.NewMetrics(meanService, 1<<12)
	}
	var plan *serve.FaultPlan
	if *faultMode {
		// The bench crash-storm scenario, scaled off the calibrated mean
		// service time so the shape survives -scale changes.
		s := meanService
		fc := sgx.DefaultFaultCosts()
		fc.Teardown = s / 2
		fc.RebuildBase = 3 * s
		plan = &serve.FaultPlan{
			Seed:          11,
			CrashInterval: 60 * s,
			RebuildPages:  64,
			StormInterval: 20 * s,
			StormLen:      9 * s,
			StormAEXGap:   fc.AEX / 5,
			FailPct:       2,
			Costs:         fc,
		}
		cfg.Fault = plan
		if arrival == nil {
			cfg.ThinkCycles = 12 * s
		}
		cfg.DeadlineCycles = 7 * s
		cfg.MaxRetries = 7
		cfg.BackoffBase = s
		cfg.BackoffCap = 16 * s
		cfg.AdmitDepth = *admit
	}
	res, err := w.Simulate(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "diag: %v\n", err)
		os.Exit(1)
	}
	// Echo the full scenario shape so any run is reproducible from the
	// diag output alone: traffic process, dispatch topology, batching.
	traffic := fmt.Sprintf("closed loop (think=%d)", cfg.ThinkCycles)
	if cfg.Arrival != nil {
		traffic = "open loop: " + cfg.Arrival.String()
	}
	shards := 1
	if cfg.Dispatch == serve.DispatchSharded {
		shards = cfg.Workers
	}
	fmt.Printf("\nscenario: clients=%d workers=%d requests/client=%d seed=%d\n",
		cfg.Clients, cfg.Workers, cfg.RequestsPerClient, cfg.Seed)
	fmt.Printf("scenario: %s  dispatch=%s (%d shards) batch=%d\n", traffic, cfg.Dispatch, shards, cfg.Batch)
	fmt.Printf("\n%s %s queue=%q mem=%s: %d requests, makespan=%d cycles, %.0f q/s\n",
		res.Setting, sync, res.Queue, mm, res.Requests, res.MakespanCycles, res.ThroughputQPS)
	if *faultMode {
		fmt.Printf("outcome: %d succeeded, %d failed, goodput %.0f q/s (admit depth %d)\n",
			res.Succeeded, res.Failed, res.GoodputQPS, *admit)
	}
	fmt.Printf("latency cycles: p50=%d p95=%d p99=%d max=%d\n", res.P50, res.P95, res.P99, res.Max)
	b := res.Breakdown
	fmt.Printf("breakdown (cycles summed over %d requests):\n", b.Requests)
	fmt.Printf("  %-12s %14d  (%d one-way transitions)\n", "transition", b.TransitionCycles, b.Transitions)
	fmt.Printf("  %-12s %14d\n", "lock path", b.LockCycles)
	fmt.Printf("  %-12s %14d\n", "queue wait", b.QueueWaitCycles)
	fmt.Printf("  %-12s %14d  (%d pages)\n", "page commit", b.CommitCycles, b.PagesCommitted)
	fmt.Printf("  %-12s %14d\n", "commit wait", b.CommitWaitCycles)
	fmt.Printf("  %-12s %14d\n", "service", b.ServiceCycles)
	if ds := res.DispatchStats; ds != (serve.DispatchStats{}) {
		fmt.Printf("dispatch: steals=%d stolenAttempts=%d batches=%d batchedAttempts=%d\n",
			ds.Steals, ds.StolenAttempts, ds.Batches, ds.BatchedAttempts)
	}
	if *faultMode {
		fmt.Printf("  %-12s %14d  (%d AEX events)\n", "aex", b.AEXCycles, b.AEXEvents)
		fmt.Printf("  %-12s %14d  (%d crashes)\n", "rebuild", b.RebuildCycles, b.Crashes)
		fmt.Printf("fault counters: timeouts=%d retries=%d shed=%d\n", b.Timeouts, b.Retries, b.Shed)
	}
	fmt.Println("per class:")
	for _, c := range res.PerClass {
		fmt.Printf("  %-20s n=%4d  meanLat=%d\n", c.Name, c.Requests, c.MeanCycles)
	}
	if *faultMode {
		fmt.Println("injected fault timeline:")
		for _, win := range plan.StormWindows(res.MakespanCycles) {
			fmt.Printf("  t=%-12d aex storm until t=%d (one AEX per %d work cycles)\n",
				win[0], win[1], plan.StormAEXGap)
		}
		for _, ev := range res.Faults {
			fmt.Printf("  t=%-12d worker %-3d %s\n", ev.T, ev.Worker, ev.Kind)
		}
		if res.FaultsDropped > 0 {
			fmt.Printf("  (+%d earlier fault events past the %d-event cap; counters above stay exact)\n",
				res.FaultsDropped, len(res.Faults))
		}
	}
	if cfg.Trace != nil {
		f, err := os.Create(*tracePath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "diag: %v\n", err)
			os.Exit(1)
		}
		werr := obs.WriteTrace(f, cfg.Trace, cfg.Metrics)
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			fmt.Fprintf(os.Stderr, "diag: %v\n", werr)
			os.Exit(1)
		}
		st := cfg.Trace.Stats()
		fmt.Printf("wrote trace to %s: %d spans, %d instants (%d dropped), %d metric samples every %d cycles (%d dropped)\n",
			*tracePath, st.Spans, st.Instants, st.Dropped,
			cfg.Metrics.Len(), cfg.Metrics.Interval(), cfg.Metrics.Dropped())
	}
}

func printPhases(phases []exec.PhaseStats) {
	for _, p := range phases {
		fmt.Printf("%-10s wall=%9d busiest=%9d bw=%v host=%6.1fms loads=%9d stores=%9d l1=%9d l2=%8d l3=%7d dram=%7d walks=%6d ssb=%9d strF=%7d rndF=%7d\n",
			p.Name, p.WallCycles, p.Busiest, p.BWBound, float64(p.HostNanos)/1e6,
			p.Agg.Loads, p.Agg.Stores, p.Agg.L1Hits, p.Agg.L2Hits, p.Agg.L3Hits,
			p.Agg.DRAMAcc, p.Agg.TLBWalks, p.Agg.StallSSB, p.Agg.StreamFills, p.Agg.RandomFills)
	}
}
