package exec_test

import (
	"testing"

	"sgxbench/internal/exec"
	"sgxbench/internal/sgx"
)

// TestReplayQueueUncontended: one worker never contends, so the wall
// time is exactly the pops plus the tasks.
func TestReplayQueueUncontended(t *testing.T) {
	c := sgx.DefaultOSCosts()
	q := sgx.SGXMutexQueue(c)
	tasks := []uint64{1000, 2000, 3000}
	got := exec.ReplayQueue(tasks, 1, q)
	want := 3*q.PopCycles + 6000
	if got != want {
		t.Errorf("ReplayQueue(1 worker) = %d, want %d", got, want)
	}
}

// TestReplayQueueContention pins the Section 4.4 ordering: under many
// workers popping tiny tasks, the SGX SDK mutex (transition-based sleep,
// extended contended holds) must be far slower than a plain mutex, which
// must be slower than the lock-free pop; and the spinlock must sit
// between the SDK mutex and lock-free.
func TestReplayQueueContention(t *testing.T) {
	c := sgx.DefaultOSCosts()
	tasks := make([]uint64, 256)
	for i := range tasks {
		tasks[i] = 500 // tiny tasks: the queue dominates
	}
	wall := func(q sgx.QueueModel) uint64 { return exec.ReplayQueue(tasks, 16, q) }
	sdk := wall(sgx.SGXMutexQueue(c))
	plain := wall(sgx.PlainMutexQueue(c))
	spin := wall(sgx.SpinlockQueue(c))
	free := wall(sgx.LockFreeQueue(c))
	if !(free < spin && spin < plain && plain < sdk) {
		t.Errorf("contention ordering violated: lockfree=%d spin=%d plain=%d sdk=%d",
			free, spin, plain, sdk)
	}
	if ratio := float64(sdk) / float64(free); ratio < 10 {
		t.Errorf("SDK mutex vs lock-free = %.1fx, want a >=10x collapse under 16 workers", ratio)
	}
}

// TestReplayQueueDeterministic: replays are pure arithmetic.
func TestReplayQueueDeterministic(t *testing.T) {
	c := sgx.DefaultOSCosts()
	tasks := []uint64{100, 900, 50, 4000, 700, 700, 700}
	a := exec.ReplayQueue(tasks, 4, sgx.SGXMutexQueue(c))
	b := exec.ReplayQueue(tasks, 4, sgx.SGXMutexQueue(c))
	if a != b {
		t.Errorf("nondeterministic replay: %d vs %d", a, b)
	}
}
