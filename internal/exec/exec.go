// Package exec runs multi-threaded simulated phases.
//
// Operators are structured as barrier-separated phases (exactly how the
// paper's join implementations work: histogram, partition, build, probe).
// Within a phase each simulated thread runs independently — real Go
// goroutines advancing private cycle clocks — and at the barrier the
// group clock advances to the slowest thread, then is raised further if
// the phase's aggregate DRAM or UPI traffic exceeds what the socket
// bandwidth allows in that time (roofline composition). This reproduces
// both compute/latency-bound behaviour (joins) and bandwidth-bound
// behaviour (multi-threaded scans, Fig 14; UPI-bound cross-NUMA scans,
// Fig 16).
package exec

import (
	"sync"
	"time"

	"sgxbench/internal/engine"
	"sgxbench/internal/obs"
	"sgxbench/internal/platform"
)

// Group is a set of simulated threads that execute phases together.
type Group struct {
	Plat    *platform.Platform
	Threads []*engine.Thread
	epc     *engine.EPCDomain // enclave EPC capacity model (nil: unlimited)
	clock   uint64
	phases  []PhaseStats
	prof    *obs.Profiler // optional cycle-attribution sink; nil: off
}

// PhaseStats describes one completed phase.
type PhaseStats struct {
	Name       string
	WallCycles uint64
	Busiest    uint64 // slowest thread's cycles (before bandwidth raise)
	BWBound    bool   // wall time was raised by a bandwidth roof
	HostNanos  int64  // real host time spent simulating the phase
	Agg        engine.Stats
}

// NewGroup creates n threads. nodeOf maps a thread index to its socket
// (nil pins everything to node 0, the paper's default single-socket
// setup). Threads on the same socket share that socket's L3.
func NewGroup(cfg engine.Config, n int, nodeOf func(i int) int) *Group {
	if nodeOf == nil {
		nodeOf = func(int) int { return 0 }
	}
	perNode := map[int]int{}
	for i := 0; i < n; i++ {
		perNode[nodeOf(i)]++
	}
	g := &Group{Plat: cfg.Plat, Threads: make([]*engine.Thread, n), epc: cfg.EPC}
	for i := 0; i < n; i++ {
		c := cfg
		c.Node = nodeOf(i)
		c.L3Share = perNode[c.Node]
		// The EPC is per enclave, not per socket: all n threads share it
		// regardless of the node mapping.
		c.EPCShare = n
		g.Threads[i] = engine.NewThread(c, i)
	}
	return g
}

// Clock returns the group-aligned simulated time.
func (g *Group) Clock() uint64 { return g.clock }

// AttachProfiler routes completed phases and clock advances into p as
// leaf records. The profiler only observes values the group computes
// anyway — attaching one changes no clock, stat or phase outcome.
func (g *Group) AttachProfiler(p *obs.Profiler) { g.prof = p }

// Profiler returns the attached profiler (nil when none).
func (g *Group) Profiler() *obs.Profiler { return g.prof }

// Scope opens a named profile scope around a pipeline stage and returns
// the closer that attributes the stage's clock advance to it. With no
// profiler attached both halves are no-ops, so operators can scope
// unconditionally:
//
//	defer g.Scope("join")()
func (g *Group) Scope(name string) func() {
	if g.prof == nil {
		return func() {}
	}
	g.prof.Push(name)
	start := g.clock
	return func() { g.prof.Pop(g.clock - start) }
}

// AdvanceClock adds serialized cycles (e.g. EDMM page commits) to the
// group clock between phases.
func (g *Group) AdvanceClock(cycles uint64) {
	g.clock += cycles
	for _, t := range g.Threads {
		t.SetCycle(g.clock)
	}
	if g.prof != nil && cycles > 0 {
		g.prof.Leaf("edmm.commit", cycles, nil)
	}
}

// Phase runs body on every thread concurrently, waits for all, and
// advances the group clock with bandwidth composition. It returns the
// phase statistics.
func (g *Group) Phase(name string, body func(t *engine.Thread, id int)) PhaseStats {
	start := g.clock
	before := make([]engine.Stats, len(g.Threads))
	for i, t := range g.Threads {
		t.SetCycle(start)
		before[i] = t.Stats()
	}
	hostStart := time.Now()
	var wg sync.WaitGroup
	for i, t := range g.Threads {
		wg.Add(1)
		go func(t *engine.Thread, id int) {
			defer wg.Done()
			body(t, id)
			t.Drain()
		}(t, i)
	}
	wg.Wait()

	ps := PhaseStats{Name: name, HostNanos: time.Since(hostStart).Nanoseconds()}
	var dram [2]uint64
	var upi uint64
	for i, t := range g.Threads {
		s := t.Stats()
		cyc := s.Cycles - start
		if cyc > ps.Busiest {
			ps.Busiest = cyc
		}
		d := s.Sub(before[i])
		ps.Agg.Add(d)
		dram[0] += d.DRAMBytes[0]
		dram[1] += d.DRAMBytes[1]
		upi += d.UPIBytes
	}
	wall := ps.Busiest
	for node := 0; node < 2; node++ {
		if need := uint64(float64(dram[node]) / g.Plat.SocketDRAMBW); need > wall {
			wall = need
			ps.BWBound = true
		}
	}
	if need := uint64(float64(upi) / g.Plat.UPIBW); need > wall {
		wall = need
		ps.BWBound = true
	}
	// Demand paging serializes across the enclave on the page-table lock,
	// exactly like EDMM commits: the phase cannot finish before the kernel
	// has worked through every fault it raised. The sum of per-fault costs
	// is interleaving-independent, so this stays bit-reproducible.
	wall += g.epc.SerialCycles()
	ps.WallCycles = wall
	ps.Agg.Cycles = wall
	g.clock = start + wall
	for _, t := range g.Threads {
		t.SetCycle(g.clock)
	}
	g.phases = append(g.phases, ps)
	if g.prof != nil {
		g.prof.Leaf(name, wall, ps.Agg.Attribution())
	}
	return ps
}

// Phases returns the recorded per-phase statistics in execution order.
func (g *Group) Phases() []PhaseStats { return g.phases }

// Mark is a checkpoint in a group's phase log. Pipeline stages take one
// before running so that the stage's own phases, aggregate stats and
// clock advance can be extracted afterwards, even though the group is
// shared across operators (simulated caches and TLBs deliberately carry
// over between stages).
type Mark struct {
	phase int
	clock uint64
}

// Mark checkpoints the current phase count and group clock.
func (g *Group) Mark() Mark { return Mark{phase: len(g.phases), clock: g.clock} }

// Since returns the phases recorded after m, their aggregated stats
// (Cycles set to the clock advance since m), and that clock advance.
func (g *Group) Since(m Mark) ([]PhaseStats, engine.Stats, uint64) {
	ps := g.phases[m.phase:]
	var s engine.Stats
	for _, p := range ps {
		s.Add(p.Agg)
	}
	d := g.clock - m.clock
	s.Cycles = d
	return ps, s, d
}

// ResetPhases clears the recorded phase log and rebases the clock to 0.
func (g *Group) ResetPhases() {
	g.phases = nil
	g.clock = 0
}

// TotalStats sums the aggregate stats over all recorded phases.
func (g *Group) TotalStats() engine.Stats {
	var s engine.Stats
	for _, p := range g.phases {
		s.Add(p.Agg)
	}
	s.Cycles = g.clock
	return s
}
