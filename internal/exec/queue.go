package exec

import "sgxbench/internal/sgx"

// ReplayQueue is the deterministic contention simulator behind Fig 11.
//
// A work-stealing join distributes per-partition tasks through a shared
// queue. The timing of the tasks themselves comes from the engine (the
// caller measures each task's duration under static assignment); this
// replay then computes the wall time of dynamically scheduling those
// tasks over `threads` workers through a queue protected by the given
// synchronization model.
//
// The model: each pop is a critical section of q.PopCycles. If a worker
// arrives while the lock is held it additionally suffers q.SleepLatency
// before it can proceed (futex wake or enclave re-entry), and the unlock
// that hands over a contended lock extends the owner's hold time by
// q.HoldExtension (the SGX SDK mutex performs OCALL/ECALL transitions
// with the mutex still held, Section 4.4).
func ReplayQueue(taskCycles []uint64, threads int, q sgx.QueueModel) uint64 {
	if threads < 1 {
		threads = 1
	}
	clocks := make([]uint64, threads)
	var lockFree uint64
	next := 0
	for next < len(taskCycles) {
		// The earliest-available worker pops the next task.
		w := 0
		for i := 1; i < threads; i++ {
			if clocks[i] < clocks[w] {
				w = i
			}
		}
		arrive := clocks[w]
		contended := arrive < lockFree
		acquire := arrive
		if contended {
			acquire = lockFree + q.SleepLatency
		}
		hold := q.PopCycles
		if contended {
			hold += q.HoldExtension
		}
		lockFree = acquire + hold
		clocks[w] = acquire + hold + taskCycles[next]
		next++
	}
	var wall uint64
	for _, c := range clocks {
		if c > wall {
			wall = c
		}
	}
	return wall
}
