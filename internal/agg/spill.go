package agg

import (
	"fmt"

	"sgxbench/internal/core"
	"sgxbench/internal/engine"
	"sgxbench/internal/exec"
	"sgxbench/internal/mem"
)

// This file holds the EPC-oversubscription pair of group-by operators:
//
//   - SpillRunOn: the spill-partitioned group-by. Like the regular
//     RunOn it radix-partitions on hash digits and aggregates partition
//     by partition, but the partition count is driven by the enclave's
//     per-thread EPC budget instead of L2, the partitioning runs in as
//     many recursive passes as that budget demands, and under a capacity
//     limit the staging buffers live in untrusted memory — spilled
//     partitions leave the enclave through sequential streaming writes,
//     so only the inputs' single drain pass and the budget-sized worker
//     tables touch EPC pages.
//
//   - DirectRunOn: the naive baseline. One thread, one full-domain hash
//     table, no partitioning — the textbook group-by whose hash-derived
//     random accesses demand-page catastrophically once the table
//     outgrows the EPC. It exists to demonstrate the collapse the spill
//     operator avoids (the degradation gate's second half).

// spillAggTarget returns the per-partition working-set target in bytes:
// the L2 target when the EPC is unlimited, else an eighth of the
// thread's EPC share (the worker keeps buckets and touched entries
// resident while the partition streams through).
func spillAggTarget(env *core.Env, threads int) int64 {
	target := env.Plat.L2.SizeBytes / 4
	if target < 1024 {
		target = 1024
	}
	if env.EPCPages > 0 {
		per := env.EPCPages * 4096 / int64(threads)
		if b := per / 8; b < target {
			target = b
		}
		if target < 1024 {
			target = 1024
		}
	}
	return target
}

// spillAggPassBits plans the recursive partitioning: total hash bits so
// that a partition's aggregation working set — EntryBytes per expected
// group plus the bucket table's word per row — fits the target, split
// into TLB-friendly passes of at most 8 bits.
func spillAggPassBits(env *core.Env, n, groups, threads int) []uint {
	target := spillAggTarget(env, threads)
	load := int64(groups)*EntryBytes + int64(n)*4
	var total uint = 1
	for load>>total > target && total < 16 {
		total++
	}
	const maxPass = 8
	var passes []uint
	for total > 0 {
		b := total
		if b > maxPass {
			b = maxPass
		}
		passes = append(passes, b)
		total -= b
	}
	return passes
}

// SpillRun executes the spill-partitioned group-by over the concatenated
// inputs under env.
func SpillRun(env *core.Env, ins []Input, opt Options) *Result {
	return SpillRunOn(env, env.NewGroup(opt.threads(), opt.NodeOf), ins, opt)
}

// SpillRunOn executes the spill-partitioned group-by on an existing
// thread group. Options.PartBits, when set, overrides the total hash-bit
// count but keeps the budget-driven per-pass split.
func SpillRunOn(env *core.Env, g *exec.Group, ins []Input, opt Options) *Result {
	T := len(g.Threads)
	mark := g.Mark()
	n := 0
	for _, in := range ins {
		n += in.N
	}
	groupsHint := opt.Groups
	if groupsHint <= 0 || groupsHint > n {
		groupsHint = n
	}
	if groupsHint < 1 {
		groupsHint = 1
	}
	passes := spillAggPassBits(env, n, groupsHint, T)
	if opt.PartBits > 0 {
		per := passes[0]
		passes = nil
		for total := uint(opt.PartBits); total > 0; {
			b := total
			if b > per {
				b = per
			}
			passes = append(passes, b)
			total -= b
		}
	}
	stageReg := env.SpillRegion()
	bufs := [2]*mem.U64Buf{
		env.Space.AllocU64("agg.sp0", maxInt(n, 1), stageReg),
		env.Space.AllocU64("agg.sp1", maxInt(n, 1), stageReg),
	}

	srcIns := ins
	// When the inputs live in the paged EPC, drain them once into the
	// untrusted staging buffer through sequential streaming (non-temporal)
	// writes: every partitioning pass then reads untrusted memory, so each
	// input page faults exactly once, independent of the pass count.
	if env.EPCPages > 0 && env.DataRegion().Kind == mem.EPC {
		stage := bufs[1]
		g.Phase("Agg.Drain", func(t *engine.Thread, id int) {
			lo, hi := chunk(n, T, id)
			base := 0
			for _, in := range ins {
				sLo, sHi := lo-base, hi-base
				if sLo < 0 {
					sLo = 0
				}
				if sHi > in.N {
					sHi = in.N
				}
				if sLo < sHi {
					tok := t.LoadRun(&in.Tup.Buffer, in.Tup.Off(sLo), 8, sHi-sLo, 0)
					copy(stage.D[base+sLo:base+sHi], in.Tup.D[sLo:sHi])
					lines := int((int64(sHi-sLo)*8 + 63) / 64)
					t.StoreLinesNT(&stage.Buffer, stage.Off(base+sLo), lines, 0, tok)
				}
				base += in.N
			}
		})
		srcIns = []Input{{Tup: stage, N: n}}
	}

	// --- Recursive partitioning: one hash-digit window per pass ---
	// Pass 1 is cooperative (all threads histogram and scatter slices of
	// the whole input); deeper passes refine the previous level's
	// partitions round-robin, each by one thread.
	start := []int{0, n}
	var parts *mem.U64Buf
	shift := uint(0)
	for pass, bk := range passes {
		fan := 1 << bk
		p := len(start) - 1
		dst := bufs[pass&1]
		if pass == 0 {
			hist := env.Space.AllocU32(fmt.Sprintf("agg.h%d", pass+1), T*fan, stageReg)
			cur := env.Space.AllocU32(fmt.Sprintf("agg.c%d", pass+1), T*fan, stageReg)
			g.Phase(fmt.Sprintf("Agg.Hist%d", pass+1), func(t *engine.Thread, id int) {
				lo, hi := chunk(n, T, id)
				forSegments(srcIns, lo, hi, func(seg Input, sLo, sHi int) {
					histSeg(t, seg.Tup, sLo, sHi, hist, id*fan, opt.Sel, shift, bk)
				})
			})
			next := make([]int, fan+1)
			g.Phase(fmt.Sprintf("Agg.Part%d", pass+1), func(t *engine.Thread, id int) {
				// Cooperative prefix: per partition, one strided gather of
				// the T per-thread counts, then the thread's own cursor
				// store (the Kim et al. scheme the regular RunOn uses).
				offs := make([]int64, T)
				base := 0
				for p2 := 0; p2 < fan; p2++ {
					for tt := 0; tt < T; tt++ {
						offs[tt] = hist.Off(tt*fan + p2)
					}
					t.LoadGather(&hist.Buffer, 4, offs, nil, nil)
					cum := base
					for tt := 0; tt < T; tt++ {
						if tt == id {
							engine.StoreU32(t, cur, id*fan+p2, uint32(cum), 0, 0)
						}
						cum += int(hist.D[tt*fan+p2])
					}
					if id == 0 {
						next[p2] = base
					}
					base = cum
				}
				if id == 0 {
					next[fan] = base
				}
				lo, hi := chunk(n, T, id)
				forSegments(srcIns, lo, hi, func(seg Input, sLo, sHi int) {
					scatterSeg(t, seg.Tup, sLo, sHi, dst, cur, id*fan, opt.Sel, shift, bk)
				})
			})
			start = next
		} else {
			hist := env.Space.AllocU32(fmt.Sprintf("agg.h%d", pass+1), p*fan, stageReg)
			cur := env.Space.AllocU32(fmt.Sprintf("agg.c%d", pass+1), p*fan, stageReg)
			src := parts
			prev := start
			next := make([]int, p*fan+1)
			g.Phase(fmt.Sprintf("Agg.Hist%d", pass+1), func(t *engine.Thread, id int) {
				for pp := id; pp < p; pp += T {
					histSeg(t, src, prev[pp], prev[pp+1], hist, pp*fan, opt.Sel, shift, bk)
				}
			})
			g.Phase(fmt.Sprintf("Agg.Part%d", pass+1), func(t *engine.Thread, id int) {
				for pp := id; pp < p; pp += T {
					// Local prefix over the partition's histogram row:
					// batched sequential read, then the cursor writes.
					tok := t.LoadRun(&hist.Buffer, hist.Off(pp*fan), 4, fan, 0)
					cum := uint32(prev[pp])
					for j := 0; j < fan; j++ {
						v := hist.D[pp*fan+j]
						cur.D[pp*fan+j] = cum
						next[pp*fan+j] = int(cum)
						cum += v
					}
					t.StoreRun(&cur.Buffer, cur.Off(pp*fan), 4, fan, 0, engine.After(tok, 1))
					scatterSeg(t, src, prev[pp], prev[pp+1], dst, cur, pp*fan, opt.Sel, shift, bk)
				}
			})
			next[p*fan] = prev[p]
			start = next
		}
		parts = dst
		shift += bk
	}
	P := len(start) - 1
	pBits := shift

	// --- Per-partition in-cache aggregation + emission ---
	reg := env.DataRegion()
	out := opt.Out
	if out == nil {
		out = env.Space.AllocU64("agg.out", EntryWords*maxInt(n, 1), reg)
	}
	res := &Result{Rows: n, Out: out, PartStart: start, PartGroups: make([]int, P)}
	maxPart := 0
	for p := 0; p < P; p++ {
		if c := start[p+1] - start[p]; c > maxPart {
			maxPart = c
		}
	}
	workers := make([]*worker, T)
	for i := range workers {
		workers[i] = newWorker(env, maxPart)
	}
	g.Phase("Agg.Build", func(t *engine.Thread, id int) {
		w := workers[id]
		for p := id; p < P; p += T {
			nG := w.aggregatePartition(t, parts, start[p], start[p+1], opt.Sel, pBits)
			w.emit(t, out, start[p], nG)
			res.PartGroups[p] = nG
		}
	})

	g.AdvanceClock(env.Alloc.SerialCycles())
	for _, gp := range res.PartGroups {
		res.Groups += gp
	}
	res.Check = checksum(out, res.PartStart, res.PartGroups)
	res.Phases, res.Stats, res.WallCycles = g.Since(mark)
	return res
}

// DirectRun executes the naive single-table group-by under env.
func DirectRun(env *core.Env, ins []Input, opt Options) *Result {
	return DirectRunOn(env, env.NewGroup(1, opt.NodeOf), ins, opt)
}

// DirectRunOn executes the naive group-by on the group's first thread:
// every segment streams through one full-domain hash table sized at the
// input row count, exactly the operator shape whose random accesses
// collapse under EPC oversubscription. Options.Threads is ignored — the
// baseline is deliberately single-threaded.
func DirectRunOn(env *core.Env, g *exec.Group, ins []Input, opt Options) *Result {
	mark := g.Mark()
	n := 0
	for _, in := range ins {
		n += in.N
	}
	reg := env.DataRegion()
	out := opt.Out
	if out == nil {
		out = env.Space.AllocU64("agg.out", EntryWords*maxInt(n, 1), reg)
	}
	w := newWorker(env, maxInt(n, 1))
	nb := nextPow2(maxInt(n, 1))
	if nb < 16 {
		nb = 16
	}
	bBits := log2(nb)
	res := &Result{Rows: n, Out: out}
	g.Phase("Agg.Direct", func(t *engine.Thread, id int) {
		if id != 0 {
			return
		}
		w.gen++
		var nG uint32
		for _, in := range ins {
			nG = w.aggregateRun(t, in.Tup, 0, in.N, opt.Sel, 0, bBits, nG)
		}
		w.emit(t, out, 0, int(nG))
		res.Groups = int(nG)
	})
	g.AdvanceClock(env.Alloc.SerialCycles())
	res.PartStart = []int{0, res.Groups}
	res.PartGroups = []int{res.Groups}
	res.Check = checksum(out, res.PartStart, res.PartGroups)
	res.Phases, res.Stats, res.WallCycles = g.Since(mark)
	return res
}
