package agg

import (
	"fmt"
	"testing"

	"sgxbench/internal/core"
	"sgxbench/internal/engine"
	"sgxbench/internal/platform"
)

// spillTestEnv builds an Env with an EPC capacity limit (pages; 0 =
// unlimited).
func spillTestEnv(s core.Setting, ref bool, epcPages int64) *core.Env {
	return core.NewEnv(core.Options{
		Plat:      platform.XeonGold6326().Scaled(256),
		Setting:   s,
		Reference: ref,
		EPCPages:  epcPages,
	})
}

// aggEPCHalf returns an EPC capacity of half the input working set — a
// 2x oversubscription for n tuples.
func aggEPCHalf(n int) int64 { return int64(n) * 8 / 4096 / 2 }

// TestSpillCorrectness checks the spill group-by against the map oracle
// across distributions, thread counts, settings and EPC capacities; the
// paging and staging machinery may never influence values.
func TestSpillCorrectness(t *testing.T) {
	for _, skewed := range []bool{false, true} {
		for _, groups := range []int{1, 16, 700, 2048} {
			for _, threads := range []int{1, 3} {
				for _, setting := range []core.Setting{core.PlainCPU, core.SGXDiE} {
					for _, pages := range []int64{0, aggEPCHalf(15000)} {
						env := spillTestEnv(setting, false, pages)
						tup := genTuples(env, 15000, groups, skewed, 77)
						ins := []Input{{Tup: tup, N: 15000}}
						res := SpillRun(env, ins, Options{Threads: threads, Sel: ByKey, Groups: groups})
						want := Reference(ins, ByKey)
						label := fmt.Sprintf("spill skew=%v groups=%d threads=%d %s epc=%d",
							skewed, groups, threads, setting, pages)
						if res.Groups != len(want) {
							t.Errorf("%s: groups=%d oracle=%d", label, res.Groups, len(want))
						}
						verifyAgainstOracle(t, label, res, want)
					}
				}
			}
		}
	}
}

// TestSpillSegments checks the spill group-by over multiple input
// segments (the join-output consumption path of the spill pipelines),
// including the drained (EPC-limited) route where segments are staged
// into one contiguous untrusted run.
func TestSpillSegments(t *testing.T) {
	for _, pages := range []int64{0, aggEPCHalf(8777)} {
		env := spillTestEnv(core.SGXDiE, false, pages)
		a := genTuples(env, 5000, 300, false, 5)
		b := genTuples(env, 3777, 300, true, 6)
		ins := []Input{{Tup: a, N: 5000}, {Tup: b, N: 3777}}
		res := SpillRun(env, ins, Options{Threads: 2, Sel: ByKey, Groups: 300})
		want := Reference(ins, ByKey)
		if res.Groups != len(want) {
			t.Fatalf("epc=%d: groups=%d oracle=%d", pages, res.Groups, len(want))
		}
		verifyAgainstOracle(t, fmt.Sprintf("spill segments epc=%d", pages), res, want)
	}
}

// TestDirectCorrectness checks the naive single-table baseline against
// the map oracle, with and without an EPC limit.
func TestDirectCorrectness(t *testing.T) {
	for _, pages := range []int64{0, aggEPCHalf(12000)} {
		env := spillTestEnv(core.SGXDiE, false, pages)
		a := genTuples(env, 9000, 500, false, 11)
		b := genTuples(env, 3000, 500, true, 12)
		ins := []Input{{Tup: a, N: 9000}, {Tup: b, N: 3000}}
		res := DirectRun(env, ins, Options{Sel: ByKey, Groups: 500})
		want := Reference(ins, ByKey)
		if res.Groups != len(want) {
			t.Fatalf("epc=%d: groups=%d oracle=%d", pages, res.Groups, len(want))
		}
		verifyAgainstOracle(t, fmt.Sprintf("direct epc=%d", pages), res, want)
	}
}

// goldenSpillRun executes the spill group-by under one setting and EPC
// capacity on either engine path.
func goldenSpillRun(t *testing.T, setting core.Setting, ref bool, epcPages int64, threads int, sel Sel) *Result {
	t.Helper()
	env := spillTestEnv(setting, ref, epcPages)
	tup := genTuples(env, 20000, 700, false, 77)
	return SpillRun(env, []Input{{Tup: tup, N: 20000}}, Options{Threads: threads, Sel: sel, Groups: 700})
}

// TestGoldenSpillEquivalence enforces the fast-path invariant on the
// spill group-by under every setting, with and without EPC pressure:
// results, wall cycles and full stats — including the fault, eviction
// and paging-cycle counters — must be bit-identical between the per-op
// reference engine and the batched fast engine.
func TestGoldenSpillEquivalence(t *testing.T) {
	settings := []core.Setting{core.PlainCPU, core.PlainCPUM, core.SGXDoE, core.SGXDiE}
	for _, setting := range settings {
		for _, pages := range []int64{0, aggEPCHalf(20000)} {
			for _, threads := range []int{1, 3} {
				label := fmt.Sprintf("%s/spill/threads=%d/epc=%d", setting, threads, pages)
				ref := goldenSpillRun(t, setting, true, pages, threads, ByKey)
				fast := goldenSpillRun(t, setting, false, pages, threads, ByKey)
				compareGolden(t, label, ref, fast)
				wantFaults := pages > 0 && setting == core.SGXDiE
				if wantFaults && ref.Stats.EPCFaults == 0 {
					t.Errorf("%s: oversubscribed spill group-by did not fault", label)
				}
				if !wantFaults && ref.Stats.EPCFaults != 0 {
					t.Errorf("%s: unexpected faults %d", label, ref.Stats.EPCFaults)
				}
			}
		}
	}
}

// TestGoldenDirectEquivalence enforces the fast-path invariant on the
// naive baseline under EPC pressure (where it pages heavily — exactly
// the regime the degradation gate exercises it in).
func TestGoldenDirectEquivalence(t *testing.T) {
	for _, setting := range []core.Setting{core.PlainCPU, core.SGXDiE} {
		for _, pages := range []int64{0, aggEPCHalf(12000)} {
			run := func(ref bool) *Result {
				env := spillTestEnv(setting, ref, pages)
				tup := genTuples(env, 12000, 400, false, 77)
				return DirectRun(env, []Input{{Tup: tup, N: 12000}}, Options{Sel: ByKey, Groups: 400})
			}
			label := fmt.Sprintf("%s/direct/epc=%d", setting, pages)
			compareGolden(t, label, run(true), run(false))
		}
	}
}

// TestSpillMultiThreadDeterminism: the spill group-by issues every
// access from the owning thread over pre-assigned ranges, so
// multi-threaded runs — including fault and eviction counts under EPC
// pressure — must repeat bit-identically.
func TestSpillMultiThreadDeterminism(t *testing.T) {
	run := func() (uint64, uint64, engine.Stats) {
		env := spillTestEnv(core.SGXDiE, false, aggEPCHalf(15000))
		tup := genTuples(env, 15000, 700, false, 99)
		res := SpillRun(env, []Input{{Tup: tup, N: 15000}}, Options{Threads: 4, Sel: ByKey, Groups: 700})
		return res.Check, res.WallCycles, res.Stats
	}
	c0, w0, s0 := run()
	for rep := 1; rep < 3; rep++ {
		c, w, s := run()
		if c != c0 || w != w0 || s != s0 {
			t.Fatalf("rep %d diverged: check %#x vs %#x, wall %d vs %d\nstats0: %+v\nstats:  %+v",
				rep, c0, c, w0, w, s0, s)
		}
	}
}

// TestAggSpillDegradation is the unit-scale group-by half of the bench
// gate: at 2x and 4x EPC oversubscription the spill group-by must stay
// under 3x slowdown against its fully-resident run, while the naive
// single-table baseline collapses by more than 10x.
func TestAggSpillDegradation(t *testing.T) {
	const n = 1 << 17
	const groups = 1 << 14
	ws := int64(n) * 8 / 4096
	wall := func(spill bool, pages int64) uint64 {
		env := spillTestEnv(core.SGXDiE, false, pages)
		tup := genTuples(env, n, groups, false, 99)
		ins := []Input{{Tup: tup, N: n}}
		opt := Options{Threads: 4, Sel: ByKey, Groups: groups}
		if spill {
			return SpillRun(env, ins, opt).WallCycles
		}
		return DirectRun(env, ins, opt).WallCycles
	}
	spillBase := wall(true, 0)
	directBase := wall(false, 0)
	for _, ratio := range []int64{2, 4} {
		pages := ws / ratio
		if g := float64(wall(true, pages)) / float64(spillBase); g >= 3.0 {
			t.Errorf("spill group-by at %dx oversubscription degraded %.2fx, want < 3x", ratio, g)
		}
		if d := float64(wall(false, pages)) / float64(directBase); d <= 10.0 {
			t.Errorf("direct group-by at %dx oversubscription degraded only %.2fx, want > 10x (naive collapse)", ratio, d)
		}
	}
}
