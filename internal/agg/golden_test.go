package agg

import (
	"fmt"
	"testing"

	"sgxbench/internal/core"
	"sgxbench/internal/mem"
	"sgxbench/internal/platform"
	"sgxbench/internal/rng"
)

// genTuples fills a fresh simulated relation with n tuples whose group
// keys are drawn from [1, groups] — uniformly, or skewed (~90% of rows
// land on a handful of hot groups) — and whose values are row-derived.
func genTuples(env *core.Env, n, groups int, skewed bool, seed uint64) *mem.U64Buf {
	tup := env.Space.AllocU64("in", n, env.DataRegion())
	r := rng.NewXorShift(rng.Mix(seed))
	hot := groups / 16
	if hot < 1 {
		hot = 1
	}
	for i := 0; i < n; i++ {
		var k uint64
		if skewed && r.Uint64n(10) != 0 {
			k = r.Uint64n(uint64(hot))
		} else {
			k = r.Uint64n(uint64(groups))
		}
		tup.D[i] = mem.MakeTuple(uint32(k)+1, uint32(i)*2654435761)
	}
	return tup
}

// goldenRun executes one group-by under one setting on either engine
// path; the dataset is regenerated per run so both paths see identical
// simulated addresses.
func goldenRun(t *testing.T, setting core.Setting, ref bool, threads int, sel Sel, n, groups int, skewed bool) *Result {
	t.Helper()
	env := core.NewEnv(core.Options{
		Plat:      platform.XeonGold6326().Scaled(256),
		Setting:   setting,
		Reference: ref,
	})
	tup := genTuples(env, n, groups, skewed, 77)
	return Run(env, []Input{{Tup: tup, N: n}}, Options{Threads: threads, Sel: sel, Groups: groups})
}

func compareGolden(t *testing.T, label string, ref, fast *Result) {
	t.Helper()
	if ref.Groups != fast.Groups {
		t.Errorf("%s: groups ref=%d fast=%d", label, ref.Groups, fast.Groups)
	}
	if ref.Check != fast.Check {
		t.Errorf("%s: check ref=%#x fast=%#x", label, ref.Check, fast.Check)
	}
	if ref.WallCycles != fast.WallCycles {
		t.Errorf("%s: wall cycles ref=%d fast=%d", label, ref.WallCycles, fast.WallCycles)
	}
	if ref.Stats != fast.Stats {
		t.Errorf("%s: stats differ\nref:  %+v\nfast: %+v", label, ref.Stats, fast.Stats)
	}
}

// TestGoldenEquivalence enforces the fast-path invariant on the
// group-by: identical simulated results *and* statistics on both engine
// paths, under all four settings, both key selectors, single- and
// multi-threaded (threads own partitions round-robin, so multi-threaded
// timing is deterministic, unlike shared-table builds).
func TestGoldenEquivalence(t *testing.T) {
	settings := []core.Setting{core.PlainCPU, core.PlainCPUM, core.SGXDoE, core.SGXDiE}
	for _, setting := range settings {
		for _, sel := range []Sel{ByKey, ByPayload} {
			for _, threads := range []int{1, 3} {
				label := fmt.Sprintf("%s/sel=%d/threads=%d", setting, sel, threads)
				ref := goldenRun(t, setting, true, threads, sel, 20000, 700, false)
				fast := goldenRun(t, setting, false, threads, sel, 20000, 700, false)
				compareGolden(t, label, ref, fast)
			}
		}
	}
}

// TestGoldenDistributions runs the equivalence check over a randomized
// skewed and a uniform group-key distribution, and additionally checks
// both paths against the map oracle.
func TestGoldenDistributions(t *testing.T) {
	for _, skewed := range []bool{false, true} {
		for _, groups := range []int{1, 16, 2048} {
			label := fmt.Sprintf("skew=%v/groups=%d", skewed, groups)
			ref := goldenRun(t, core.SGXDiE, true, 2, ByKey, 15000, groups, skewed)
			fast := goldenRun(t, core.SGXDiE, false, 2, ByKey, 15000, groups, skewed)
			compareGolden(t, label, ref, fast)

			env := core.NewEnv(core.Options{Plat: platform.XeonGold6326().Scaled(256), Setting: core.PlainCPU})
			tup := genTuples(env, 15000, groups, skewed, 77)
			want := Reference([]Input{{Tup: tup, N: 15000}}, ByKey)
			if fast.Groups != len(want) {
				t.Errorf("%s: groups=%d oracle=%d", label, fast.Groups, len(want))
			}
			verifyAgainstOracle(t, label, fast, want)
		}
	}
}

func verifyAgainstOracle(t *testing.T, label string, res *Result, want map[uint32]GroupAgg) {
	t.Helper()
	seen := 0
	res.ForEach(func(key uint32, count, sum uint64, mn, mx uint32) {
		seen++
		w, ok := want[key]
		if !ok {
			t.Errorf("%s: unexpected group %d", label, key)
			return
		}
		if w.Count != count || w.Sum != sum || w.Min != mn || w.Max != mx {
			t.Errorf("%s: group %d got (%d,%d,%d,%d) want (%d,%d,%d,%d)",
				label, key, count, sum, mn, mx, w.Count, w.Sum, w.Min, w.Max)
		}
	})
	if seen != len(want) {
		t.Errorf("%s: emitted %d groups, oracle has %d", label, seen, len(want))
	}
}
