// Package agg implements the aggregation operator of the query
// pipelines: a partitioned hash group-by with COUNT/SUM/MIN/MAX
// aggregates over the paper's 8-byte <key, payload> tuples.
//
// The operator is structured like the paper's radix joins — barrier
// phases on an exec.Group — because group-by shares their
// micro-architectural profile: a histogram pass (data-dependent
// read-modify-writes), a partition scatter (dependent cursor
// load/stores), and an in-cache build whose hash-table updates are the
// same hash-derived random accesses the SSB mitigation serializes inside
// enclaves. All hot loops run on the engine's batched bulk APIs
// (LoadRunToks, LoadGather, RMWScatter, StoreScatter, StoreRun); in
// reference mode every call decomposes into the per-op sequence, and the
// golden tests assert bit-identical simulated statistics between both
// engine paths under all four execution settings.
//
// Group results land in a flat output array at deterministic per-
// partition offsets, so multi-threaded runs are reproducible enough for
// exact golden-stats gating (threads own partitions round-robin, as in
// RHO's join phase).
package agg

import (
	"math/bits"

	"sgxbench/internal/core"
	"sgxbench/internal/engine"
	"sgxbench/internal/exec"
	"sgxbench/internal/mem"
)

// Sel selects which 32-bit half of a tuple is the group key; the other
// half is the aggregated value. Join outputs pack <probe payload, build
// payload>, so aggregating a join result by the dimension attribute is
// ByPayload; aggregating a fact table by its foreign key is ByKey.
type Sel int

const (
	// ByKey groups on the tuple key and aggregates the payload.
	ByKey Sel = iota
	// ByPayload groups on the tuple payload and aggregates the key.
	ByPayload
)

// Group returns the group key of a tuple under the selector.
func (s Sel) Group(tup uint64) uint32 {
	if s == ByPayload {
		return mem.TuplePayload(tup)
	}
	return mem.TupleKey(tup)
}

// Value returns the aggregated value of a tuple under the selector.
func (s Sel) Value(tup uint64) uint32 {
	if s == ByPayload {
		return mem.TupleKey(tup)
	}
	return mem.TuplePayload(tup)
}

// Input is one contiguous run of input tuples. Pipelines hand the
// operator several segments (e.g. the per-thread materialized outputs of
// a join) that are aggregated as one logical table.
type Input struct {
	Tup *mem.U64Buf
	N   int
}

// EntryWords is the output entry width: key, count, sum, min|max<<32.
const EntryWords = 4

// EntryBytes is the byte size of one group entry (half a cache line).
const EntryBytes = EntryWords * 8

// hashKey is the group-key hash (the multiplicative hash the joins use).
func hashKey(k uint32) uint32 { return k * 2654435761 }

// hashCost is the dataflow latency from key to hash/bucket index.
const hashCost = 2

// aggUnroll is the batch width of the unrolled kernels: one vector
// (line-granular) load covers 8 tuples.
const aggUnroll = 8

// Options configures a group-by run.
type Options struct {
	// Threads is the number of worker threads (Run only; RunOn uses the
	// group's).
	Threads int
	// NodeOf pins thread i to a socket (Run only).
	NodeOf func(i int) int
	// Sel picks the group-key half of the tuple (default ByKey).
	Sel Sel
	// Groups is the expected number of distinct groups, used to size the
	// radix partitions (0: assume every row is its own group).
	Groups int
	// PartBits overrides the automatic partition-count choice (0 = auto).
	PartBits int
	// Out, when non-nil, is the pre-allocated output entry array
	// (EntryWords per input row, worst case); Parts the pre-allocated
	// partition intermediate (one word per row). Reused across repeated
	// benchmark runs so re-runs see identical simulated addresses.
	Out   *mem.U64Buf
	Parts *mem.U64Buf
}

func (o Options) threads() int {
	if o.Threads < 1 {
		return 1
	}
	return o.Threads
}

// Result reports a completed group-by.
type Result struct {
	WallCycles uint64
	Rows       int // input rows aggregated
	Groups     int // distinct groups found
	// Check is an FNV-1a checksum over the emitted group entries in
	// partition order — the deterministic equivalence value benchmarks
	// and golden gates compare.
	Check  uint64
	Phases []exec.PhaseStats
	Stats  engine.Stats
	// Out holds the group entries: partition p's groups occupy entry
	// slots [PartStart[p], PartStart[p]+PartGroups[p]), each EntryWords
	// words: key, count, sum, min|max<<32.
	Out        *mem.U64Buf
	PartStart  []int
	PartGroups []int
}

// ForEach calls f for every emitted group in partition order.
func (r *Result) ForEach(f func(key uint32, count, sum uint64, min, max uint32)) {
	for p, n := range r.PartGroups {
		for g := 0; g < n; g++ {
			e := (r.PartStart[p] + g) * EntryWords
			w0, w3 := r.Out.D[e], r.Out.D[e+3]
			f(uint32(w0), r.Out.D[e+1], r.Out.D[e+2], uint32(w3), uint32(w3>>32))
		}
	}
}

// partBits picks the partition count so that the expected per-partition
// group table fits comfortably in L2, mirroring RHO's RadixBits policy.
func partBits(env *core.Env, groups int) uint {
	target := env.Plat.L2.SizeBytes / 4
	if target < 1024 {
		target = 1024
	}
	var b uint = 1
	for int64(groups)*EntryBytes>>b > target && b < 12 {
		b++
	}
	return b
}

// nextPow2 returns the next power of two >= n (minimum 1).
func nextPow2(n int) int {
	if n <= 1 {
		return 1
	}
	return 1 << bits.Len(uint(n-1))
}

// log2 returns floor(log2(n)) for a power-of-two n.
func log2(n int) uint {
	if n <= 1 {
		return 0
	}
	return uint(bits.Len(uint(n)) - 1)
}

// chunk splits n items over workers; returns [lo, hi) for worker id.
func chunk(n, workers, id int) (int, int) {
	per := n / workers
	rem := n % workers
	lo := id*per + min(id, rem)
	hi := lo + per
	if id < rem {
		hi++
	}
	return lo, hi
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// forSegments calls f for every segment sub-range covered by the global
// row range [lo, hi) of the concatenated inputs.
func forSegments(ins []Input, lo, hi int, f func(seg Input, sLo, sHi int)) {
	base := 0
	for _, in := range ins {
		sLo, sHi := lo-base, hi-base
		if sLo < 0 {
			sLo = 0
		}
		if sHi > in.N {
			sHi = in.N
		}
		if sLo < sHi {
			f(in, sLo, sHi)
		}
		base += in.N
	}
}

// Run executes the group-by over the concatenated inputs under env.
func Run(env *core.Env, ins []Input, opt Options) *Result {
	return RunOn(env, env.NewGroup(opt.threads(), opt.NodeOf), ins, opt)
}

// RunOn executes the group-by on an existing thread group (pipeline
// stage composition: simulated cache/TLB state carries over from the
// upstream operator). Options.Threads and NodeOf are ignored.
func RunOn(env *core.Env, g *exec.Group, ins []Input, opt Options) *Result {
	T := len(g.Threads)
	mark := g.Mark()
	n := 0
	for _, in := range ins {
		n += in.N
	}
	groupsHint := opt.Groups
	if groupsHint <= 0 || groupsHint > n {
		groupsHint = n
	}
	if groupsHint < 1 {
		groupsHint = 1
	}
	pBits := uint(opt.PartBits)
	if opt.PartBits <= 0 {
		pBits = partBits(env, groupsHint)
	}
	P := 1 << pBits
	reg := env.DataRegion()

	parts := opt.Parts
	if parts == nil {
		parts = env.Space.AllocU64("agg.parts", maxInt(n, 1), reg)
	}
	out := opt.Out
	if out == nil {
		out = env.Space.AllocU64("agg.out", EntryWords*maxInt(n, 1), reg)
	}
	hist := env.Space.AllocU32("agg.hist", T*P, reg)
	cur := env.Space.AllocU32("agg.cur", T*P, reg)
	res := &Result{Rows: n, Out: out, PartStart: make([]int, P+1), PartGroups: make([]int, P)}

	// --- Phase 1: per-thread partition histograms ---
	g.Phase("Agg.Hist", func(t *engine.Thread, id int) {
		lo, hi := chunk(n, T, id)
		forSegments(ins, lo, hi, func(seg Input, sLo, sHi int) {
			histSeg(t, seg.Tup, sLo, sHi, hist, id*P, opt.Sel, 0, pBits)
		})
	})

	// --- Phase 2: cursor derivation + partition scatter ---
	partCnt := make([]int, P)
	g.Phase("Agg.Part", func(t *engine.Thread, id int) {
		// Each thread derives its own cursor column from the shared
		// histogram matrix: per partition, one strided gather of the T
		// per-thread counts, then the thread's own cursor store (the
		// cooperative prefix sum of the Kim et al. partitioning).
		offs := make([]int64, T)
		base := 0
		for p := 0; p < P; p++ {
			for tt := 0; tt < T; tt++ {
				offs[tt] = hist.Off(tt*P + p)
			}
			t.LoadGather(&hist.Buffer, 4, offs, nil, nil)
			cum := base
			for tt := 0; tt < T; tt++ {
				if tt == id {
					engine.StoreU32(t, cur, id*P+p, uint32(cum), 0, 0)
				}
				cum += int(hist.D[tt*P+p])
			}
			if id == 0 {
				res.PartStart[p] = base
				partCnt[p] = cum - base
			}
			base = cum
		}
		lo, hi := chunk(n, T, id)
		forSegments(ins, lo, hi, func(seg Input, sLo, sHi int) {
			scatterSeg(t, seg.Tup, sLo, sHi, parts, cur, id*P, opt.Sel, 0, pBits)
		})
	})
	res.PartStart[P] = n

	// --- Phase 3: per-partition in-cache aggregation + emission ---
	maxPart := 0
	for _, c := range partCnt {
		if c > maxPart {
			maxPart = c
		}
	}
	workers := make([]*worker, T)
	for i := range workers {
		workers[i] = newWorker(env, maxPart)
	}
	g.Phase("Agg.Build", func(t *engine.Thread, id int) {
		w := workers[id]
		for p := id; p < P; p += T {
			lo := res.PartStart[p]
			nG := w.aggregatePartition(t, parts, lo, lo+partCnt[p], opt.Sel, pBits)
			w.emit(t, out, lo, nG)
			res.PartGroups[p] = nG
		}
	})

	g.AdvanceClock(env.Alloc.SerialCycles())
	for _, gp := range res.PartGroups {
		res.Groups += gp
	}
	res.Check = checksum(out, res.PartStart, res.PartGroups)
	res.Phases, res.Stats, res.WallCycles = g.Since(mark)
	return res
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// FNVOffset64 is the FNV-1a 64-bit offset basis — the seed of the
// deterministic check values the benchmarks and golden gates compare.
const FNVOffset64 uint64 = 14695981039346656037

const fnvPrime64 = 1099511628211

// Mix folds the 8 bytes of v into the FNV-1a accumulator h. Shared by
// the aggregate checksum and the pipeline check values in
// internal/query, so both follow one hash discipline.
func Mix(h, v uint64) uint64 {
	for i := 0; i < 8; i++ {
		h ^= (v >> (8 * i)) & 0xff
		h *= fnvPrime64
	}
	return h
}

// checksum is FNV-1a over the emitted entries in partition order.
func checksum(out *mem.U64Buf, start, groups []int) uint64 {
	h := FNVOffset64
	for p, nG := range groups {
		for g := 0; g < nG; g++ {
			e := (start[p] + g) * EntryWords
			h = Mix(h, out.D[e])
			h = Mix(h, out.D[e+1])
			h = Mix(h, out.D[e+2])
			h = Mix(h, out.D[e+3])
		}
	}
	return h
}

// GroupAgg is the aggregate state of one group (oracle representation).
type GroupAgg struct {
	Count, Sum uint64
	Min, Max   uint32
}

// Reference computes the group aggregates with a plain Go map,
// independent of any simulated machinery. Used as the test oracle.
func Reference(ins []Input, sel Sel) map[uint32]GroupAgg {
	m := make(map[uint32]GroupAgg)
	for _, in := range ins {
		for i := 0; i < in.N; i++ {
			tup := in.Tup.D[i]
			k, v := sel.Group(tup), sel.Value(tup)
			a, ok := m[k]
			if !ok {
				a = GroupAgg{Min: v, Max: v}
			} else {
				if v < a.Min {
					a.Min = v
				}
				if v > a.Max {
					a.Max = v
				}
			}
			a.Count++
			a.Sum += uint64(v)
			m[k] = a
		}
	}
	return m
}
