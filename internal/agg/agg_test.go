package agg

import (
	"testing"

	"sgxbench/internal/core"
	"sgxbench/internal/mem"
	"sgxbench/internal/platform"
)

func testEnv() *core.Env {
	return core.NewEnv(core.Options{Plat: platform.XeonGold6326().Scaled(256), Setting: core.PlainCPU})
}

// TestSegmentsEquivalent checks that aggregating one table split into
// several input segments produces the same aggregates as the oracle over
// the concatenation (the join-output consumption path of the pipelines).
func TestSegmentsEquivalent(t *testing.T) {
	env := testEnv()
	a := genTuples(env, 5000, 300, false, 5)
	b := genTuples(env, 3777, 300, true, 6)
	ins := []Input{{Tup: a, N: 5000}, {Tup: b, N: 3777}}
	res := Run(env, ins, Options{Threads: 2, Sel: ByKey, Groups: 300})
	want := Reference(ins, ByKey)
	if res.Groups != len(want) {
		t.Fatalf("groups=%d oracle=%d", res.Groups, len(want))
	}
	if res.Rows != 8777 {
		t.Fatalf("rows=%d want 8777", res.Rows)
	}
	verifyAgainstOracle(t, "segments", res, want)
}

// TestByPayload checks the payload-side selector (the join-output shape:
// group on the build payload, aggregate the probe payload).
func TestByPayload(t *testing.T) {
	env := testEnv()
	tup := env.Space.AllocU64("in", 1000, env.DataRegion())
	for i := range tup.D {
		tup.D[i] = mem.MakeTuple(uint32(i), uint32(i%7))
	}
	res := Run(env, []Input{{Tup: tup, N: 1000}}, Options{Threads: 2, Sel: ByPayload, Groups: 7})
	if res.Groups != 7 {
		t.Fatalf("groups=%d want 7", res.Groups)
	}
	verifyAgainstOracle(t, "bypayload", res, Reference([]Input{{Tup: tup, N: 1000}}, ByPayload))
}

// TestPartBitsOverride checks correctness across forced partition
// counts, including a single partition and more partitions than groups.
func TestPartBitsOverride(t *testing.T) {
	env := testEnv()
	tup := genTuples(env, 4096, 99, false, 9)
	want := Reference([]Input{{Tup: tup, N: 4096}}, ByKey)
	for _, pb := range []int{1, 4, 9} {
		res := Run(env, []Input{{Tup: tup, N: 4096}}, Options{Threads: 3, Sel: ByKey, Groups: 99, PartBits: pb})
		if res.Groups != len(want) {
			t.Errorf("partbits=%d: groups=%d oracle=%d", pb, res.Groups, len(want))
		}
		verifyAgainstOracle(t, "partbits", res, want)
	}
}

// TestEmptyAndTiny covers the degenerate inputs a pipeline can produce
// (a filter that selects nothing, or a single row).
func TestEmptyAndTiny(t *testing.T) {
	env := testEnv()
	tup := env.Space.AllocU64("in", 8, env.DataRegion())
	tup.D[0] = mem.MakeTuple(42, 7)
	res := Run(env, []Input{{Tup: tup, N: 0}}, Options{Threads: 2})
	if res.Groups != 0 || res.Rows != 0 {
		t.Fatalf("empty: groups=%d rows=%d", res.Groups, res.Rows)
	}
	res = Run(env, []Input{{Tup: tup, N: 1}}, Options{Threads: 2})
	if res.Groups != 1 {
		t.Fatalf("tiny: groups=%d want 1", res.Groups)
	}
	res.ForEach(func(key uint32, count, sum uint64, mn, mx uint32) {
		if key != 42 || count != 1 || sum != 7 || mn != 7 || mx != 7 {
			t.Fatalf("tiny: entry (%d,%d,%d,%d,%d)", key, count, sum, mn, mx)
		}
	})
}

// TestPreallocatedBuffers checks that repeated runs over pre-allocated
// Out/Parts buffers (the benchmark reuse pattern) are reproducible.
func TestPreallocatedBuffers(t *testing.T) {
	env := testEnv()
	tup := genTuples(env, 6000, 150, false, 3)
	opt := Options{
		Threads: 2, Sel: ByKey, Groups: 150,
		Out:   env.Space.AllocU64("agg.out", EntryWords*6000, env.DataRegion()),
		Parts: env.Space.AllocU64("agg.parts", 6000, env.DataRegion()),
	}
	first := Run(env, []Input{{Tup: tup, N: 6000}}, opt)
	for rep := 0; rep < 2; rep++ {
		res := Run(env, []Input{{Tup: tup, N: 6000}}, opt)
		if res.Check != first.Check || res.Groups != first.Groups {
			t.Fatalf("rep %d: check=%#x groups=%d, first check=%#x groups=%d",
				rep, res.Check, res.Groups, first.Check, first.Groups)
		}
	}
}
