package agg

import (
	"sgxbench/internal/core"
	"sgxbench/internal/engine"
	"sgxbench/internal/mem"
)

// The group-by kernels. Partitioning bins on the *high* bits of the
// multiplicative group-key hash (group keys may be clustered — a radix
// on raw key bits would skew), and the in-partition bucket index uses
// the next hash bits below the partition digit, so partitions do not
// collapse their tables into a handful of buckets.

// digitOf returns the bits-wide hash-digit window at the given shift
// below the top of the group key's hash: the generalization that lets
// the spill variant refine partitions recursively, one consecutive
// window per pass.
func digitOf(gk uint32, shift, bits uint) int {
	return int((hashKey(gk) << shift) >> (32 - bits))
}

// partOf returns the partition of a group key.
func partOf(gk uint32, pBits uint) int { return int(hashKey(gk) >> (32 - pBits)) }

// bucketOf returns the in-partition bucket index (bBits wide) of a
// group key, drawn from the hash bits below the partition digit.
func bucketOf(gk uint32, pBits, bBits uint) int {
	return digitOf(gk, pBits, bBits)
}

// histSeg counts the partition digits of in[lo:hi] into
// hist[histBase:histBase+2^pBits] — the unroll+reorder histogram over
// the batched APIs: one vector (line-granular) load per 8 tuples, one
// vectorized hash, then the bin load+increment pairs as one
// read-modify-write scatter (Listing 1's optimized loop, with the bin
// address derived from a hash instead of a radix mask).
func histSeg(t *engine.Thread, in *mem.U64Buf, lo, hi int, hist *mem.U32Buf, histBase int, sel Sel, shift, bits uint) {
	var lineTok engine.Tok
	var toks [aggUnroll]engine.Tok
	var offs [aggUnroll]int64
	i := lo
	for ; i+aggUnroll <= hi; i += aggUnroll {
		t.LoadRunToks(&in.Buffer, in.Off(i), 64, 1, 0, toks[:1])
		lineTok = toks[0]
		t.Work(1) // vector multiply+shift over 8 lanes
		vTok := engine.After(lineTok, hashCost)
		for j := 0; j < aggUnroll; j++ {
			p := digitOf(sel.Group(in.D[i+j]), shift, bits)
			toks[j] = engine.After(vTok, 1) // lane extract
			offs[j] = hist.Off(histBase + p)
			hist.D[histBase+p]++
		}
		t.RMWScatter(&hist.Buffer, 4, offs[:], toks[:], nil)
	}
	// Scalar tail.
	for ; i < hi; i++ {
		tup, tok := engine.LoadU64(t, in, i, 0)
		p := digitOf(sel.Group(tup), shift, bits)
		idxTok := engine.After(tok, hashCost)
		cur, curTok := engine.LoadU32(t, hist, histBase+p, idxTok)
		engine.StoreU32(t, hist, histBase+p, cur+1, idxTok, engine.After(curTok, 1))
	}
}

// scatterSeg copies in[lo:hi] to their partitions in parts, advancing
// the per-partition cursors cur[curBase+p] — the unrolled radix copy:
// batched tuple loads, one cursor read-modify-write scatter, then the
// tuple stores whose addresses came from the cursor loads.
func scatterSeg(t *engine.Thread, in *mem.U64Buf, lo, hi int, parts *mem.U64Buf, cur *mem.U32Buf, curBase int, sel Sel, shift, bits uint) {
	var lineTok engine.Tok
	var tToks, pToks, posToks [aggUnroll]engine.Tok
	var curOffs, outOffs [aggUnroll]int64
	i := lo
	for ; i+aggUnroll <= hi; i += aggUnroll {
		t.LoadRunToks(&in.Buffer, in.Off(i), 64, 1, 0, tToks[:1])
		lineTok = tToks[0]
		t.Work(1) // vector hash over 8 lanes
		vTok := engine.After(lineTok, hashCost)
		for j := 0; j < aggUnroll; j++ {
			tup := in.D[i+j]
			p := digitOf(sel.Group(tup), shift, bits)
			tToks[j] = engine.After(lineTok, 1) // lane extract
			pToks[j] = engine.After(vTok, 1)
			curOffs[j] = cur.Off(curBase + p)
			pos := cur.D[curBase+p]
			cur.D[curBase+p] = pos + 1
			outOffs[j] = parts.Off(int(pos))
			parts.D[pos] = tup
		}
		t.RMWScatter(&cur.Buffer, 4, curOffs[:], pToks[:], posToks[:])
		t.StoreScatter(&parts.Buffer, 8, outOffs[:], posToks[:], tToks[:])
	}
	// Scalar tail.
	for ; i < hi; i++ {
		tup, tok := engine.LoadU64(t, in, i, 0)
		p := digitOf(sel.Group(tup), shift, bits)
		pTok := engine.After(tok, hashCost)
		pos, posTok := engine.LoadU32(t, cur, curBase+p, pTok)
		engine.StoreU64(t, parts, int(pos), tup, posTok, tok)
		engine.StoreU32(t, cur, curBase+p, pos+1, pTok, engine.After(posTok, 1))
	}
}

// worker is one thread's reusable in-cache aggregation area: a bucket
// table of 1-based entry indexes and an entry arena. Entries are
// EntryBytes wide — key and chain link packed in word 0, then count,
// sum, min|max — so an aggregate update is one load + one store of the
// same half-line (the read-modify-write idiom the engine batches). An
// epoch counter makes per-partition clearing free, as in the joins'
// in-cache scratch.
type worker struct {
	buckets *mem.U32Buf
	ents    *mem.U64Buf
	epoch   []uint32
	gen     uint32
}

func newWorker(env *core.Env, maxPartRows int) *worker {
	nb := nextPow2(maxPartRows)
	if nb < 16 {
		nb = 16
	}
	return &worker{
		buckets: env.Space.AllocU32("agg.buckets", nb, env.DataRegion()),
		ents:    env.Space.AllocU64("agg.ents", EntryWords*(maxPartRows+2), env.DataRegion()),
		epoch:   make([]uint32, nb),
	}
}

// head returns the real chain head of bucket h (0 if stale).
func (w *worker) head(h int) uint32 {
	if w.epoch[h] == w.gen {
		return w.buckets.D[h]
	}
	return 0
}

// setHead updates the real chain head of bucket h.
func (w *worker) setHead(h int, row uint32) {
	w.buckets.D[h] = row
	w.epoch[h] = w.gen
}

// entOff returns the simulated byte offset of 1-based entry row.
func (w *worker) entOff(row uint32) int64 { return int64(row) * EntryBytes }

// update applies value v to the real aggregate state of entry row.
func (w *worker) update(row uint32, v uint32) {
	e := int(row) * EntryWords
	w.ents.D[e+1]++
	w.ents.D[e+2] += uint64(v)
	mn, mx := uint32(w.ents.D[e+3]), uint32(w.ents.D[e+3]>>32)
	if v < mn {
		mn = v
	}
	if v > mx {
		mx = v
	}
	w.ents.D[e+3] = uint64(mn) | uint64(mx)<<32
}

// insert initializes entry row for group gk with first value v and
// chain link to the previous bucket head.
func (w *worker) insert(row uint32, gk, v, link uint32) {
	e := int(row) * EntryWords
	w.ents.D[e] = uint64(gk) | uint64(link)<<32
	w.ents.D[e+1] = 1
	w.ents.D[e+2] = uint64(v)
	w.ents.D[e+3] = uint64(v) | uint64(v)<<32
}

// matchAtHead reports whether head (non-zero) is gk's entry — the
// common case once the table is populated, resolved host-side to pick
// the batched read-modify-write dispatch.
func (w *worker) matchAtHead(head, gk uint32) bool {
	return uint32(w.ents.D[int(head)*EntryWords]) == gk
}

// chase charges the dependent chain walk from head (non-zero) looking
// for gk: one EntryBytes load per visited entry, each address derived
// from the previous entry's link field, plus one compare per entry.
// It returns the matched row (0: absent), the token of that entry's
// load, and the dep its address came from; on a miss addrTok is the
// token after the full walk.
func (w *worker) chase(t *engine.Thread, head, gk uint32, dep engine.Tok) (row uint32, loadTok, addrTok engine.Tok) {
	for row = head; row != 0; {
		loadTok = t.Load(&w.ents.Buffer, w.entOff(row), EntryBytes, dep)
		t.Work(1) // key compare
		e := int(row) * EntryWords
		if uint32(w.ents.D[e]) == gk {
			return row, loadTok, dep
		}
		row = uint32(w.ents.D[e] >> 32)
		dep = engine.After(loadTok, 1)
	}
	return 0, 0, dep
}

// aggregateOne is the scalar (tail) path: the per-op decomposition of
// one tuple's aggregation — bucket-head load, dependent entry chain,
// then either an entry read-modify-write (existing group) or an entry
// store plus bucket-head update (new group). nG is the current group
// count; the updated count is returned.
func (w *worker) aggregateOne(t *engine.Thread, tup uint64, tok engine.Tok, sel Sel, h int, nG uint32) uint32 {
	gk, v := sel.Group(tup), sel.Value(tup)
	hTok := engine.After(tok, hashCost)
	headTok := t.Load(&w.buckets.Buffer, w.buckets.Off(h), 4, hTok)
	head := w.head(h)
	if head != 0 {
		row, loadTok, aDep := w.chase(t, head, gk, engine.After(headTok, 1))
		if row != 0 {
			// Aggregate update: store the entry back (same line as its
			// load — the read-modify-write idiom).
			t.Store(&w.ents.Buffer, w.entOff(row), EntryBytes, aDep, engine.After(loadTok, 1))
			w.update(row, v)
			return nG
		}
	}
	nG++
	w.insert(nG, gk, v, head)
	w.setHead(h, nG)
	// Entry store at the sequential group cursor (statically known
	// address; the data includes the just-loaded head as chain link),
	// then the bucket-head update at the hash-derived address.
	t.Store(&w.ents.Buffer, w.entOff(nG), EntryBytes, 0, engine.After(headTok, 1))
	t.Store(&w.buckets.Buffer, w.buckets.Off(h), 4, hTok, engine.After(headTok, 1))
	return nG
}

// aggregatePartition aggregates parts[lo:hi] into the worker's table and
// returns the number of distinct groups. The batched loop mirrors the
// optimized joins: one vector load per 8 tuples, one gather of the
// batch's bucket heads, then the entry accesses dispatched as scatter
// groups — existing groups as one entry read-modify-write scatter (the
// dominant case once the table is populated), new groups as an entry
// store scatter plus a bucket-head store scatter. Chains longer than one
// entry fall back to dependent per-op loads (rare by construction: the
// bucket table is sized at the partition's row count).
func (w *worker) aggregatePartition(t *engine.Thread, parts *mem.U64Buf, lo, hi int, sel Sel, pBits uint) int {
	rows := hi - lo
	if rows <= 0 {
		return 0
	}
	nb := nextPow2(rows)
	if nb < 16 {
		nb = 16
	}
	if nb > w.buckets.Len() {
		nb = w.buckets.Len()
	}
	w.gen++
	return int(w.aggregateRun(t, parts, lo, hi, sel, pBits, log2(nb), 0))
}

// aggregateRun is aggregatePartition's inner loop without the table
// reset: it continues from nG already-present groups, so callers can
// fold several input runs into one table (the naive Direct baseline
// streams every segment through a single full-domain table this way).
func (w *worker) aggregateRun(t *engine.Thread, parts *mem.U64Buf, lo, hi int, sel Sel, pBits, bBits uint, nG uint32) uint32 {
	var lineToks [1]engine.Tok
	var hToks, headToks [aggUnroll]engine.Tok
	var bOffs [aggUnroll]int64
	var hs [aggUnroll]int
	var updOffs, insOffs, hdOffs [aggUnroll]int64
	var updDeps, insDeps, hdADeps, hdDDeps [aggUnroll]engine.Tok

	i := lo
	for ; i+aggUnroll <= hi; i += aggUnroll {
		t.LoadRunToks(&parts.Buffer, parts.Off(i), 64, 1, 0, lineToks[:])
		t.Work(1) // vector hash over 8 lanes
		vTok := engine.After(lineToks[0], hashCost)
		for j := 0; j < aggUnroll; j++ {
			hToks[j] = engine.After(vTok, 1) // lane extract
			hs[j] = bucketOf(sel.Group(parts.D[i+j]), pBits, bBits)
			bOffs[j] = w.buckets.Off(hs[j])
		}
		t.LoadGather(&w.buckets.Buffer, 4, bOffs[:], hToks[:], headToks[:])
		nUpd, nIns, nHd := 0, 0, 0
		for j := 0; j < aggUnroll; j++ {
			tup := parts.D[i+j]
			gk, v := sel.Group(tup), sel.Value(tup)
			head := w.head(hs[j])
			dep := engine.After(headToks[j], 1)
			if head != 0 && w.matchAtHead(head, gk) {
				// Existing group at the chain head: one entry RMW,
				// dispatched with the batch.
				t.Work(1) // key compare
				updOffs[nUpd] = w.entOff(head)
				updDeps[nUpd] = dep
				nUpd++
				w.update(head, v)
				continue
			}
			if head != 0 {
				// Deeper in the chain (or a miss after a full walk):
				// dependent per-op hops.
				row, loadTok, aDep := w.chase(t, head, gk, dep)
				if row != 0 {
					t.Store(&w.ents.Buffer, w.entOff(row), EntryBytes, aDep, engine.After(loadTok, 1))
					w.update(row, v)
					continue
				}
			}
			// New group: entry store at the group cursor, head update.
			nG++
			w.insert(nG, gk, v, head)
			w.setHead(hs[j], nG)
			insOffs[nIns] = w.entOff(nG)
			insDeps[nIns] = dep
			nIns++
			hdOffs[nHd] = bOffs[j]
			hdADeps[nHd] = hToks[j]
			hdDDeps[nHd] = dep
			nHd++
		}
		t.RMWScatter(&w.ents.Buffer, EntryBytes, updOffs[:nUpd], updDeps[:nUpd], nil)
		t.StoreScatter(&w.ents.Buffer, EntryBytes, insOffs[:nIns], nil, insDeps[:nIns])
		t.StoreScatter(&w.buckets.Buffer, 4, hdOffs[:nHd], hdADeps[:nHd], hdDDeps[:nHd])
	}
	// Scalar tail.
	for ; i < hi; i++ {
		tup, tok := engine.LoadU64(t, parts, i, 0)
		nG = w.aggregateOne(t, tup, tok, sel, bucketOf(sel.Group(tup), pBits, bBits), nG)
	}
	return nG
}

// emit copies the partition's nG group entries to the output array at
// entry slot outSlot: one sequential read run over the entry arena, a
// pack step stripping the chain links, then one sequential store run —
// the streaming materialization of an aggregation result.
func (w *worker) emit(t *engine.Thread, out *mem.U64Buf, outSlot, nG int) {
	if nG == 0 {
		return
	}
	ldTok := t.LoadRun(&w.ents.Buffer, EntryBytes, EntryBytes, nG, 0)
	for r := 1; r <= nG; r++ {
		e := r * EntryWords
		o := (outSlot + r - 1) * EntryWords
		out.D[o] = uint64(uint32(w.ents.D[e])) // key, link stripped
		out.D[o+1] = w.ents.D[e+1]
		out.D[o+2] = w.ents.D[e+2]
		out.D[o+3] = w.ents.D[e+3]
	}
	t.Work(uint64(nG)) // pack/strip the links
	t.StoreRun(&out.Buffer, out.Off(outSlot*EntryWords), EntryBytes, nG, 0, engine.After(ldTok, 1))
}
