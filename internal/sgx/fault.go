package sgx

// FaultCosts parameterizes the enclave failure model: what the runtime
// pays when an enclave is interrupted, when a thread inside it aborts,
// and when the whole enclave must be torn down and rebuilt.
//
// The paper's SGXv2 numbers are dominated by transition-shaped costs
// (Section 4.1: ~8k cycles per one-way transition, EDMM page commits
// serialized enclave-wide). The failure paths scale the same building
// blocks up: an asynchronous exit (AEX) is an involuntary transition
// round trip with TLB and state-save overhead; a crashed enclave can
// only be recovered by running the whole ECREATE/EADD/EEXTEND/EINIT
// build sequence again, page by page, serialized on the same kernel
// paths that serialize EDMM commits.
type FaultCosts struct {
	// AEX is one asynchronous enclave exit and its ERESUME: the
	// hardware saves the enclave state (SSA frame), exits, the kernel
	// services the interrupt, and ERESUME restores. Charged per AEX
	// during an interrupt storm; slightly below a full ECALL/EEXIT pair
	// because no SDK marshalling runs.
	AEX uint64
	// AbortDetect is the SDK-level cost of detecting a transient
	// enclave-thread abort (EENTER into a poisoned TCS, error
	// propagation back out to the caller).
	AbortDetect uint64
	// Teardown is the bulk EREMOVE of a dead enclave's pages plus the
	// kernel bookkeeping to release its EPC.
	Teardown uint64
	// RebuildBase is the fixed cost of bringing a replacement enclave
	// up: ECREATE, EINIT (launch-token / attestation path) and SDK
	// runtime re-initialization. EINIT alone is measured in the
	// hundreds of microseconds.
	RebuildBase uint64
	// RebuildPage is the per-page EADD+EEXTEND cost of reloading the
	// enclave's initial image and heap. Rebuilds serialize on the same
	// kernel enclave-management lock as EDMM commits, so concurrent
	// crashes queue behind each other.
	RebuildPage uint64
}

// DefaultFaultCosts returns the calibrated failure cost set, in the
// same cycle units as DefaultOSCosts (3.9 GHz Xeon Gold 6326 scale).
func DefaultFaultCosts() FaultCosts {
	return FaultCosts{
		AEX:         7000,      // ~1.8 us: involuntary exit + ERESUME
		AbortDetect: 2000,      // error path through the SDK dispatcher
		Teardown:    200_000,   // bulk EREMOVE + EPC release
		RebuildBase: 1_500_000, // ECREATE + EINIT + runtime re-init (~0.4 ms)
		RebuildPage: 1200,      // EADD + EEXTEND per 4 KiB page
	}
}
