// Package sgx models the software-visible costs of the SGXv2 runtime: the
// enclave life cycle, enclave transitions (ECALL/OCALL), Enclave Dynamic
// Memory Management (EDMM) page commits, and the SGX SDK synchronization
// primitives whose transition-based design the paper shows to be
// disastrous under contention (Section 4.4).
//
// Hardware-level memory costs (TME-MK, EPCM checks, UPI encryption) live
// in the engine; this package covers the OS/SDK interaction layer.
package sgx

import (
	"fmt"
	"sync/atomic"

	"sgxbench/internal/engine"
	"sgxbench/internal/mem"
)

// OSCosts parameterizes OS- and SDK-level costs (cycles).
type OSCosts struct {
	// Transition is the one-way cost of an enclave transition (EENTER or
	// EEXIT including SDK state save/restore and marshalling).
	Transition uint64
	// EDMMPage is the cost of committing one 4 KiB EPC page at run time:
	// the in-enclave page fault (AEX), the kernel EAUG path, the EACCEPT
	// back inside the enclave, and the TLB shootdown. Commits serialize
	// on the enclave's page-table lock, which is why Fig 12 shows a 95 %
	// throughput collapse for dynamically sized enclaves.
	EDMMPage uint64
	// MinorFault is the cost of a minor page fault for ordinary (plain
	// CPU) dynamic memory allocation.
	MinorFault uint64
	// FutexWake is the wake-up latency a sleeping thread observes with a
	// plain (non-enclave) mutex.
	FutexWake uint64
	// MutexCS is the base critical-section cost of a mutex-protected
	// queue operation.
	MutexCS uint64
	// CASCycles is the cost of a lock-free queue pop (one contended CAS).
	CASCycles uint64
	// EPCPageIn is the cost of demand-paging one 4 KiB EPC page back in
	// when the enclave's working set exceeds the EPC: the AEX on the
	// faulting access, the kernel ELDU path decrypting and integrity-
	// checking the page, and the TLB refill.
	EPCPageIn uint64
	// EPCPageOut is the additional cost when the fault must evict a
	// resident page first: the EWB encrypted write-back and its TLB
	// shootdown. A fault under a full EPC costs EPCPageIn + EPCPageOut.
	EPCPageOut uint64
}

// DefaultOSCosts returns the calibrated cost set.
func DefaultOSCosts() OSCosts {
	return OSCosts{
		Transition: 8000, // ~2.8 us one way
		EDMMPage:   40000,
		MinorFault: 1500,
		FutexWake:  1500,
		MutexCS:    100,
		CASCycles:  30,
		EPCPageIn:  1500,
		EPCPageOut: 800,
	}
}

// NewEPCDomain builds the engine's EPC oversubscription model for an
// enclave with capPages of EPC capacity, parameterized by the OS paging
// costs. capPages <= 0 means "not oversubscribed" and returns nil, which
// disables paging entirely (the pre-oversubscription behaviour of every
// existing workload).
func NewEPCDomain(capPages int64, c OSCosts) *engine.EPCDomain {
	if capPages <= 0 {
		return nil
	}
	return &engine.EPCDomain{
		TotalPages:    capPages,
		PageInCycles:  c.EPCPageIn,
		PageOutCycles: c.EPCPageOut,
	}
}

// AllocPolicy selects how operator working memory is provisioned, the
// axis of Fig 12.
type AllocPolicy int

const (
	// PreAllocated: memory was allocated and touched before measurement
	// (the paper's default benchmark setting).
	PreAllocated AllocPolicy = iota
	// DynamicOS: plain CPU dynamic allocation; pages fault in on first
	// touch.
	DynamicOS
	// EnclaveStatic: a statically sized enclave with all EPC pages
	// committed at enclave build time.
	EnclaveStatic
	// EnclaveEDMM: a dynamically sized enclave; pages beyond the
	// pre-committed minimum are added via EDMM on demand.
	EnclaveEDMM
)

func (p AllocPolicy) String() string {
	switch p {
	case PreAllocated:
		return "pre-allocated"
	case DynamicOS:
		return "dynamic (OS)"
	case EnclaveStatic:
		return "static enclave size"
	case EnclaveEDMM:
		return "dynamic enclave size (EDMM)"
	default:
		return fmt.Sprintf("AllocPolicy(%d)", int(p))
	}
}

// Allocator provisions simulated memory under a policy and charges the
// per-page costs to the allocating thread. EDMM page commits additionally
// serialize globally; SerialCycles exposes the accumulated serial cost so
// the phase runner can raise the wall clock accordingly.
type Allocator struct {
	Space  *mem.Space
	Reg    mem.Region
	Policy AllocPolicy
	Costs  OSCosts

	pages  atomic.Int64 // pages committed under DynamicOS/EnclaveEDMM
	serial atomic.Int64 // accumulated serialized cycles (EDMM)
}

// NewAllocator returns an allocator for region reg under the policy.
func NewAllocator(space *mem.Space, reg mem.Region, policy AllocPolicy, costs OSCosts) *Allocator {
	return &Allocator{Space: space, Reg: reg, Policy: policy, Costs: costs}
}

// charge applies the policy cost for n fresh bytes to thread t (t may be
// nil for setup-time allocations, which are free in every policy, mirroring
// the paper's "measurements start after data is allocated and initialized").
func (a *Allocator) charge(t *engine.Thread, n int64) {
	if t == nil {
		return
	}
	pages := (n + 4095) / 4096
	switch a.Policy {
	case PreAllocated, EnclaveStatic:
		// No run-time cost: pages are resident and, for enclaves,
		// EADD-ed at build time.
	case DynamicOS:
		t.Work(uint64(pages) * a.Costs.MinorFault)
		a.pages.Add(pages)
	case EnclaveEDMM:
		// The faulting thread runs the AEX/EACCEPT protocol for its own
		// pages and the kernel serializes commits across threads.
		t.Work(uint64(pages) * a.Costs.EDMMPage)
		a.pages.Add(pages)
		a.serial.Add(pages * int64(a.Costs.EDMMPage))
	}
}

// AllocU64 provisions an n-word tuple buffer, charging t per policy.
func (a *Allocator) AllocU64(t *engine.Thread, name string, n int) *mem.U64Buf {
	b := a.Space.AllocU64(name, n, a.Reg)
	a.charge(t, b.Size)
	return b
}

// AllocU32 provisions an n-word buffer, charging t per policy.
func (a *Allocator) AllocU32(t *engine.Thread, name string, n int) *mem.U32Buf {
	b := a.Space.AllocU32(name, n, a.Reg)
	a.charge(t, b.Size)
	return b
}

// AllocU8 provisions an n-byte buffer, charging t per policy.
func (a *Allocator) AllocU8(t *engine.Thread, name string, n int) *mem.U8Buf {
	b := a.Space.AllocU8(name, n, a.Reg)
	a.charge(t, b.Size)
	return b
}

// Raw provisions an untyped buffer, charging t per policy.
func (a *Allocator) Raw(t *engine.Thread, name string, n int64) mem.Buffer {
	b := a.Space.Raw(name, n, a.Reg)
	a.charge(t, b.Size)
	return b
}

// PagesCommitted returns the number of pages committed at run time.
func (a *Allocator) PagesCommitted() int64 { return a.pages.Load() }

// SerialCycles returns the serialized page-commit cycles accumulated so
// far and resets the counter. The phase runner folds this into wall time.
func (a *Allocator) SerialCycles() uint64 {
	return uint64(a.serial.Swap(0))
}

// Enclave bundles an enclave's identity and cost model. It exists mostly
// for documentation value in the public API: experiments construct one to
// express "this work runs inside an enclave on socket N".
type Enclave struct {
	Node   int
	Costs  OSCosts
	policy AllocPolicy
}

// NewEnclave creates an enclave on the given NUMA node.
func NewEnclave(node int, policy AllocPolicy, costs OSCosts) *Enclave {
	return &Enclave{Node: node, Costs: costs, policy: policy}
}

// ECall charges one enclave entry to t.
func (e *Enclave) ECall(t *engine.Thread) { t.Work(e.Costs.Transition) }

// OCall charges one enclave exit + re-entry round trip to t.
func (e *Enclave) OCall(t *engine.Thread) { t.Work(2 * e.Costs.Transition) }

// Policy returns the enclave's allocation policy.
func (e *Enclave) Policy() AllocPolicy { return e.policy }

// QueueModel describes the timing behaviour of a shared task queue's
// synchronization, used by the deterministic contention replay (Fig 11).
type QueueModel struct {
	Name string
	// PopCycles is the uncontended critical-section length of one pop.
	PopCycles uint64
	// HoldExtension extends the critical section when waiters are
	// present at unlock time. The SGX SDK mutex keeps the mutex locked
	// while the owner exits the enclave to wake the first waiter and
	// both transition back in (Section 4.4).
	HoldExtension uint64
	// SleepLatency is the additional delay a thread that found the lock
	// taken observes before it can run in the critical section.
	SleepLatency uint64
}

// LockFreeQueue models a CAS-based queue pop.
func LockFreeQueue(c OSCosts) QueueModel {
	return QueueModel{Name: "lock-free", PopCycles: c.CASCycles}
}

// PlainMutexQueue models a futex-based mutex outside an enclave.
func PlainMutexQueue(c OSCosts) QueueModel {
	return QueueModel{Name: "mutex (plain)", PopCycles: c.MutexCS, SleepLatency: c.FutexWake}
}

// SpinlockQueue models a test-and-set spinlock: waiters burn cycles in
// place, so a contended handover costs only the critical section and the
// lock line's cache transfer — no futex, and crucially no enclave
// transitions, which is why spinning is the viable in-enclave
// alternative to the SDK mutex under contention (Section 4.4).
func SpinlockQueue(c OSCosts) QueueModel {
	return QueueModel{Name: "spinlock", PopCycles: c.MutexCS}
}

// SGXMutexQueue models the SGX SDK mutex: sleeping and waking require
// enclave transitions during which the mutex remains locked.
func SGXMutexQueue(c OSCosts) QueueModel {
	return QueueModel{
		Name:          "mutex (SGX SDK)",
		PopCycles:     c.MutexCS,
		HoldExtension: 2 * c.Transition,
		SleepLatency:  2 * c.Transition,
	}
}
