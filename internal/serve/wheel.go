package serve

import (
	"math/bits"
)

// eventQueue is the simulator's pending-event set. Two implementations
// exist: the original container/heap binary heap (kept as the ordering
// oracle for differential tests) and the hierarchical timer wheel below
// (the default). Both pop events in strictly identical
// (time, schedule-seq) order, so a replay is bit-identical under either.
type eventQueue interface {
	push(event)
	pop() event
	empty() bool
}

const (
	wheelBits   = 6                                // slots per level = 2^6
	wheelSlots  = 1 << wheelBits                   // 64
	wheelMask   = wheelSlots - 1                   // slot index mask
	wheelLevels = (64 + wheelBits - 1) / wheelBits // 11 levels cover a full uint64 clock
)

// timerWheel is an indexed hierarchical timer wheel over the virtual
// clock: wheelLevels levels of wheelSlots slots, each level one 6-bit
// digit of the 64-bit timestamp. An event lives at the highest level
// whose digit differs from the wheel's current time `cur`; per-level
// uint64 occupancy bitmaps make "find the earliest non-empty slot" one
// TrailingZeros64, so push and pop are O(1) amortized regardless of how
// many events are in flight — the heap's O(log n) sift at 10^4+ pending
// events is what this replaces.
//
// Ordering proof sketch (why pops are bit-identical to the heap's
// (t, seq) order):
//   - Two events with equal t share every digit, hence the same slot at
//     every level they ever occupy; slots are FIFO slices, cascades
//     preserve slot order, and a direct push always carries a larger
//     seq than anything already resident. Equal-t pops are therefore in
//     push (= seq) order.
//   - Within a level every occupied digit is >= cur's digit at that
//     level (t >= cur and the higher digits match cur), so the lowest
//     set occupancy bit is the earliest slot; and any event at level
//     l is strictly earlier than any event at level m > l. Lowest
//     non-empty level + lowest set bit is therefore the global minimum.
type timerWheel struct {
	cur  uint64 // lower bound on every pending event's time
	n    int
	occ  [wheelLevels]uint64
	slot [wheelLevels][wheelSlots][]event

	// ready holds the currently-draining level-0 slot: events whose
	// t == cur exactly, in seq order. Pushes at t == cur append here.
	ready     []event
	readyHead int

	// late catches pushes with t < cur. The simulator never schedules
	// into the past, but the heap would serve such an event first and
	// the wheel must not silently diverge, so they are kept sorted and
	// drained before anything else.
	late []event
}

func newTimerWheel() *timerWheel { return &timerWheel{} }

func (w *timerWheel) empty() bool { return w.n == 0 }

func (w *timerWheel) push(e event) {
	w.n++
	if e.t < w.cur {
		i := len(w.late)
		for i > 0 && (w.late[i-1].t > e.t || (w.late[i-1].t == e.t && w.late[i-1].seq > e.seq)) {
			i--
		}
		w.late = append(w.late, event{})
		copy(w.late[i+1:], w.late[i:])
		w.late[i] = e
		return
	}
	w.place(e)
}

// place files an event with t >= cur into its wheel position.
func (w *timerWheel) place(e event) {
	d := e.t ^ w.cur
	if d == 0 {
		w.ready = append(w.ready, e)
		return
	}
	lvl := (63 - bits.LeadingZeros64(d)) / wheelBits
	s := int(e.t>>(uint(lvl)*wheelBits)) & wheelMask
	w.slot[lvl][s] = append(w.slot[lvl][s], e)
	w.occ[lvl] |= 1 << uint(s)
}

func (w *timerWheel) pop() event {
	w.n--
	if len(w.late) > 0 {
		e := w.late[0]
		w.late = w.late[1:]
		return e
	}
	for {
		if w.readyHead < len(w.ready) {
			e := w.ready[w.readyHead]
			w.readyHead++
			if w.readyHead == len(w.ready) {
				w.ready = w.ready[:0]
				w.readyHead = 0
			}
			return e
		}
		lvl := 0
		for lvl < wheelLevels && w.occ[lvl] == 0 {
			lvl++
		}
		s := bits.TrailingZeros64(w.occ[lvl]) // panics via index if popped empty — caller bug
		evs := w.slot[lvl][s]
		w.occ[lvl] &^= 1 << uint(s)
		if lvl == 0 {
			// Advance to the slot's (single) timestamp and serve it FIFO.
			w.cur = w.cur&^wheelMask | uint64(s)
			w.slot[0][s] = w.ready[:0] // recycle the drained ready backing array
			w.ready, w.readyHead = evs, 0
			continue
		}
		// Cascade: advance cur's digit at this level to s, zero the
		// digits below, and re-file the slot's events — each lands at a
		// strictly lower level (its level-lvl digit now matches cur), so
		// this terminates. Shift counts >= 64 are defined as 0 in Go,
		// which makes the top level's mask come out all-ones for free.
		shift := uint(lvl) * wheelBits
		mask := uint64(1)<<(shift+wheelBits) - 1
		w.cur = w.cur&^mask | uint64(s)<<shift
		for _, e := range evs {
			w.place(e)
		}
		w.slot[lvl][s] = evs[:0] // events are re-filed; recycle the backing array
	}
}
