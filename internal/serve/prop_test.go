package serve_test

import (
	"testing"

	"sgxbench/internal/core"
	"sgxbench/internal/serve"
)

// Property tests over the serving simulator: structural laws that must
// hold across whole parameter ranges, not just at the bench scenario's
// single operating point.

// TestMutexThroughputMonotoneInClients: once the worker pool is
// saturated, adding closed-loop clients under the SGX SDK mutex must
// never buy throughput — the queue is lock-bound and added offered load
// can only deepen the contention (the Section 4.4 regime). The
// simulation is deterministic but finite runs carry a sub-0.5% ramp-up/
// ramp-down boundary effect (a shorter warm-up fraction at higher client
// counts), so the law is asserted with a 0.5% tolerance over long runs
// rather than exact non-increase.
func TestMutexThroughputMonotoneInClients(t *testing.T) {
	w := synthetic(core.SGXDiE, 50_000, 0)
	const workers = 8
	const boundarySlack = 1.005
	prev := -1.0
	prevClients := 0
	for _, clients := range []int{workers, 2 * workers, 4 * workers, 8 * workers, 16 * workers} {
		r := mustSim(t, w, serve.Config{
			Clients: clients, Workers: workers, RequestsPerClient: 128,
			Sync: serve.SyncMutex, Mem: serve.MemPreSized, JitterPct: 10, Seed: 7,
		})
		if prev >= 0 && r.ThroughputQPS > prev*boundarySlack {
			t.Errorf("SDK mutex throughput increased with clients: %d clients %.0f qps > %d clients %.0f qps",
				clients, r.ThroughputQPS, prevClients, prev)
		}
		prev, prevClients = r.ThroughputQPS, clients
	}
}

// TestLockFreeAtLeastMutexEveryWorkerCount: at every pool size, the
// lock-free dispatch queue must serve at least the SDK mutex's
// throughput — the ordering the paper's Fig 11 regime implies has no
// crossover point.
func TestLockFreeAtLeastMutexEveryWorkerCount(t *testing.T) {
	w := synthetic(core.SGXDiE, 50_000, 0)
	for _, workers := range []int{1, 2, 4, 8, 16, 32} {
		c := serve.Config{
			Clients: 32, Workers: workers, RequestsPerClient: 8,
			Mem: serve.MemPreSized, JitterPct: 10, Seed: 7,
		}
		c.Sync = serve.SyncMutex
		mutex := mustSim(t, w, c)
		c.Sync = serve.SyncLockFree
		free := mustSim(t, w, c)
		if free.ThroughputQPS < mutex.ThroughputQPS {
			t.Errorf("workers=%d: lock-free %.0f qps < SDK mutex %.0f qps",
				workers, free.ThroughputQPS, mutex.ThroughputQPS)
		}
	}
}

// TestCheckInvariantUnderEnginePathSwap: the FNV check value of every
// scenario in the sync x memory matrix must be invariant under swapping
// the calibration between the fast and per-op reference engine paths —
// the serving-layer face of the engine's fast-path invariant, asserted
// over real (small) calibrated pipelines rather than synthetic costs.
func TestCheckInvariantUnderEnginePathSwap(t *testing.T) {
	small := serve.CalibrateOptions{Setting: core.SGXDiE, NDim: 64, NFact: 1 << 9}
	fast, err := serve.Calibrate(small)
	if err != nil {
		t.Fatal(err)
	}
	small.Reference = true
	ref, err := serve.Calibrate(small)
	if err != nil {
		t.Fatal(err)
	}
	for _, sync := range []serve.SyncKind{serve.SyncMutex, serve.SyncSpin, serve.SyncLockFree} {
		for _, mem := range []serve.MemMode{serve.MemPreSized, serve.MemDynamic} {
			c := serve.Config{
				Clients: 16, Workers: 8, RequestsPerClient: 4,
				Sync: sync, Mem: mem, JitterPct: 10, Seed: 7,
			}
			fr, rr := mustSim(t, fast, c), mustSim(t, ref, c)
			if fr.Check != rr.Check || fr.MakespanCycles != rr.MakespanCycles || fr.Breakdown != rr.Breakdown {
				t.Errorf("%s/%s: scenario diverged across engine paths (check %#x vs %#x)",
					sync, mem, fr.Check, rr.Check)
			}
		}
	}
}
