// Package serve is a deterministic multi-query serving simulator: it
// drives many concurrent clients issuing pipeline requests (q1..q5)
// through an enclave worker pool on a virtual clock.
//
// The paper's most dramatic SGXv2 results are concurrency effects, not
// single-query numbers: SDK synchronization primitives whose
// transition-based sleep collapses throughput under contention
// (Section 4.4, Fig 11), and dynamically sized enclaves losing ~95 % of
// their throughput to serialized EDMM page commits (Fig 12). The
// operator simulator parameterizes both costs (sgx.OSCosts) but nothing
// below this layer exercises them end to end. This package does: it
// turns one-shot pipeline executions into a served workload and exposes
// exactly those two collapse axes as scenario knobs.
//
// The design splits cleanly in two:
//
//   - Calibrate runs each query class once through the full engine
//     (internal/query on a fresh core.Env) and records its service
//     cycles, its per-request working set in EPC pages, and its
//     simulated statistics. Because pipelines are bit-identical between
//     the fast and reference engine paths, so is the calibrated
//     Workload.
//   - Workload.Simulate replays a serving scenario — C closed-loop
//     clients, W pool workers, a dispatch queue under a selectable
//     synchronization model, and a memory-provisioning mode — as a pure
//     integer discrete-event simulation on the virtual clock. No host
//     time, no host randomness: results (latency percentiles,
//     throughput, per-phase breakdown, check value) are bit-reproducible
//     across runs, platforms and engine paths.
//
// The request path models what a DuckDB-style engine inside an enclave
// pays per query: the client's ECALL/EEXIT to submit, a push and a pop
// through the shared dispatch queue (each a critical section under the
// scenario's sgx.QueueModel), the worker's ECALL, the commit of the
// request's working-set pages (serialized across the enclave under
// EDMM), the pipeline's service cycles, and the worker's EEXIT.
package serve

import (
	"fmt"
	"strings"

	"sgxbench/internal/core"
	"sgxbench/internal/engine"
	"sgxbench/internal/mem"
	"sgxbench/internal/platform"
	"sgxbench/internal/query"
	"sgxbench/internal/scan"
	"sgxbench/internal/sgx"
)

// SyncKind selects the dispatch queue's synchronization primitive — the
// contention axis of Section 4.4.
type SyncKind int

const (
	// SyncMutex is the setting-appropriate sleeping mutex: the SGX SDK
	// mutex inside enclaves (sleep and wake are enclave transitions with
	// the mutex held), a futex-based mutex outside.
	SyncMutex SyncKind = iota
	// SyncSpin is a test-and-set spinlock: waiters burn cycles in place
	// but never transition.
	SyncSpin
	// SyncLockFree is a CAS-based lock-free queue.
	SyncLockFree
)

func (k SyncKind) String() string {
	switch k {
	case SyncMutex:
		return "mutex"
	case SyncSpin:
		return "spin"
	case SyncLockFree:
		return "lockfree"
	default:
		return fmt.Sprintf("SyncKind(%d)", int(k))
	}
}

// ParseSync parses a SyncKind name as printed by String.
func ParseSync(s string) (SyncKind, error) {
	switch strings.ToLower(s) {
	case "mutex":
		return SyncMutex, nil
	case "spin", "spinlock":
		return SyncSpin, nil
	case "lockfree", "lock-free", "cas":
		return SyncLockFree, nil
	}
	return 0, fmt.Errorf("serve: unknown sync kind %q (want mutex, spin or lockfree)", s)
}

// MemMode selects how each request's working memory is provisioned —
// the enclave-sizing axis of Fig 12.
type MemMode int

const (
	// MemPreSized: the enclave (or process) was sized for the workload;
	// every page is resident before serving starts. No per-request cost.
	MemPreSized MemMode = iota
	// MemDynamic: each request commits its working-set pages on first
	// touch. Inside an enclave this is EDMM — the AEX/EAUG/EACCEPT
	// protocol per page, serialized across the whole enclave on the
	// page-table lock (the Fig 12 collapse). Outside it is ordinary
	// minor faults, charged to the faulting worker only.
	MemDynamic
)

func (m MemMode) String() string {
	switch m {
	case MemPreSized:
		return "pre"
	case MemDynamic:
		return "dyn"
	default:
		return fmt.Sprintf("MemMode(%d)", int(m))
	}
}

// ParseMem parses a MemMode name as printed by String.
func ParseMem(s string) (MemMode, error) {
	switch strings.ToLower(s) {
	case "pre", "presized", "pre-sized", "static":
		return MemPreSized, nil
	case "dyn", "dynamic", "edmm":
		return MemDynamic, nil
	}
	return 0, fmt.Errorf("serve: unknown memory mode %q (want pre or dyn)", s)
}

// ClassCost is the calibrated cost model of one query class.
type ClassCost struct {
	// Name is the pipeline name (query.Q1Name, ...).
	Name string `json:"name"`
	// ServiceCycles is the pipeline's wall cycles when executed alone by
	// one worker on a warm, pre-sized environment.
	ServiceCycles uint64 `json:"service_cycles"`
	// Pages is the request-private working set in 4 KiB pages: the
	// pre-allocated inter-stage scratch plus everything the operators
	// allocate during one run. Under MemDynamic every request commits
	// this many pages.
	Pages int64 `json:"pages"`
	// EPCPages is the EPC capacity the class was calibrated under
	// (0: unlimited). Set when CalibrateOptions.EPCRatio oversubscribes
	// the enclave relative to the class's probed working set.
	EPCPages int64 `json:"epc_pages,omitempty"`
	// Faults is the demand-paging fault count of the calibration run
	// (non-zero only under an EPC capacity limit with data in EPC).
	Faults uint64 `json:"faults,omitempty"`
	// Check is the pipeline's deterministic check value (equivalence).
	Check uint64 `json:"check"`
}

// Workload is a calibrated service model: the per-class costs plus the
// platform and OS-cost context the simulation charges against.
type Workload struct {
	Setting   core.Setting
	Plat      *platform.Platform
	OS        sgx.OSCosts
	InEnclave bool
	// EPCRatio is the working-set / EPC-capacity oversubscription the
	// classes were calibrated under (0: unlimited enclave).
	EPCRatio float64
	Classes  []ClassCost
	// Stats aggregates the calibration runs' engine statistics; bench
	// golden gates pin it alongside the simulated scenario numbers.
	Stats engine.Stats
}

// CalibrateOptions configures Calibrate. Zero values select small
// serving-sized queries on the paper's platform.
type CalibrateOptions struct {
	Plat      *platform.Platform // default: XeonGold6326().Scaled(32)
	Setting   core.Setting
	Reference bool        // per-op reference engine path
	OS        sgx.OSCosts // default: sgx.DefaultOSCosts
	// Dataset shape. Serving workloads are many small queries, so the
	// defaults are deliberately tiny: NDim 256, NFact 4096.
	NDim, NFact, MaxRows int
	Pipelines            []string // default: q1..q5 (+ q2s/q3s when EPCRatio > 0)
	Seed                 uint64   // dataset seed (default 4242)
	// EPCRatio oversubscribes the enclave: each class's working set is
	// probed on an unlimited environment, then the class is calibrated
	// with an EPC capacity of workingSet/EPCRatio pages, so service
	// cycles include the demand-paging cost of running at that ratio.
	// Zero (or any setting that keeps data out of EPC) calibrates on an
	// unlimited enclave. This is the working-set/EPC-ratio scenario axis:
	// calibrate the same mix at ratios 1, 2, 4 and the spill pipelines
	// degrade gracefully while the naive shapes collapse.
	EPCRatio float64
}

func (o *CalibrateOptions) defaults() {
	if o.Plat == nil {
		o.Plat = platform.XeonGold6326().Scaled(32)
	}
	if o.OS == (sgx.OSCosts{}) {
		o.OS = sgx.DefaultOSCosts()
	}
	if o.NDim == 0 {
		o.NDim = 1 << 8
	}
	if o.NFact == 0 {
		o.NFact = 1 << 12
	}
	if o.MaxRows == 0 || o.MaxRows > o.NFact {
		o.MaxRows = o.NFact
	}
	if len(o.Pipelines) == 0 {
		o.Pipelines = []string{query.Q1Name, query.Q2Name, query.Q3Name, query.Q4Name, query.Q5Name}
		if o.EPCRatio > 0 {
			// The oversubscription axis is about how operators behave when
			// the working set outgrows the enclave — include the spill
			// shapes so the workload carries both halves of the story.
			o.Pipelines = append(o.Pipelines, query.Q2SName, query.Q3SName)
		}
	}
	if o.Seed == 0 {
		o.Seed = 4242
	}
}

// Calibrate measures each query class once through the full engine and
// returns the Workload the discrete-event simulation replays.
//
// Every class runs on a fresh environment (cold simulated caches, fresh
// address space), single-threaded — one pool worker executes one
// request — under the pre-sized allocation policy: dynamic-memory costs
// are the serving layer's to charge, per scenario. The calibration is
// deterministic and bit-identical between engine paths, which makes
// every downstream Simulate result so too.
func Calibrate(o CalibrateOptions) (*Workload, error) {
	o.defaults()
	w := &Workload{
		Setting:   o.Setting,
		Plat:      o.Plat,
		OS:        o.OS,
		InEnclave: o.Setting.InEnclave(),
	}
	w.EPCRatio = o.EPCRatio
	for _, name := range o.Pipelines {
		p, err := query.ByName(name)
		if err != nil {
			return nil, err
		}
		var epcPages int64
		if o.EPCRatio > 0 {
			// Probe the class's EPC working set on an unlimited enclave,
			// then size the capacity limit to oversubscribe it by the
			// requested ratio. Settings that keep data out of EPC probe
			// zero and stay unlimited.
			probe := core.NewEnv(core.Options{
				Plat: o.Plat, Setting: o.Setting, OS: o.OS, Reference: o.Reference,
			})
			pds := query.GenDataset(probe, o.NDim, o.NFact, o.Seed)
			p.Run(probe, pds, query.Options{
				Threads: 1,
				Pred:    scan.Predicate{Lo: 16, Hi: 127},
				MaxRows: o.MaxRows,
				Scratch: query.NewScratch(probe, pds, 1, o.MaxRows),
			})
			if used := probe.Space.Used(mem.Region{Node: probe.Node, Kind: mem.EPC}); used > 0 {
				ws := (used + 4095) / 4096
				epcPages = int64(float64(ws) / o.EPCRatio)
				if epcPages < 1 {
					epcPages = 1
				}
			}
		}
		env := core.NewEnv(core.Options{
			Plat: o.Plat, Setting: o.Setting, OS: o.OS, Reference: o.Reference,
			EPCPages: epcPages,
		})
		ds := query.GenDataset(env, o.NDim, o.NFact, o.Seed)
		reg := env.DataRegion()
		// Snapshot before the scratch so the working set below counts
		// every request-private byte exactly once — the eager scratch,
		// the sort/top-k buffers q4/q5 allocate lazily on first use, and
		// whatever the operators allocate while running (join tables,
		// partition buffers, ...).
		preUsed := env.Space.Used(reg)
		sc := query.NewScratch(env, ds, 1, o.MaxRows)
		res := p.Run(env, ds, query.Options{
			Threads: 1,
			Pred:    scan.Predicate{Lo: 16, Hi: 127},
			MaxRows: o.MaxRows,
			Scratch: sc,
		})
		wsBytes := env.Space.Used(reg) - preUsed
		w.Classes = append(w.Classes, ClassCost{
			Name:          name,
			ServiceCycles: res.WallCycles,
			Pages:         (wsBytes + 4095) / 4096,
			EPCPages:      epcPages,
			Faults:        res.Stats.EPCFaults,
			Check:         res.Check,
		})
		w.Stats.Add(res.Stats)
	}
	return w, nil
}

// queueModel maps a SyncKind onto the timing model of the workload's
// execution setting: SyncMutex is the SGX SDK mutex inside enclaves and
// a plain futex mutex outside; spinlocks and lock-free queues behave
// identically in both worlds.
func (w *Workload) queueModel(k SyncKind) sgx.QueueModel {
	switch k {
	case SyncSpin:
		return sgx.SpinlockQueue(w.OS)
	case SyncLockFree:
		return sgx.LockFreeQueue(w.OS)
	default:
		if w.InEnclave {
			return sgx.SGXMutexQueue(w.OS)
		}
		return sgx.PlainMutexQueue(w.OS)
	}
}
