package serve_test

import (
	"testing"

	"sgxbench/internal/core"
	"sgxbench/internal/platform"
	"sgxbench/internal/query"
	"sgxbench/internal/serve"
	"sgxbench/internal/sgx"
)

// synthetic returns a hand-built workload (no calibration) so the pure
// simulation properties can be tested in microseconds.
func synthetic(setting core.Setting, service uint64, pages int64) *serve.Workload {
	return &serve.Workload{
		Setting:   setting,
		Plat:      platform.XeonGold6326(),
		OS:        sgx.DefaultOSCosts(),
		InEnclave: setting.InEnclave(),
		Classes: []serve.ClassCost{
			{Name: "a", ServiceCycles: service, Pages: pages},
			{Name: "b", ServiceCycles: service * 2, Pages: pages},
		},
	}
}

func cfg(sync serve.SyncKind, mem serve.MemMode) serve.Config {
	return serve.Config{
		Clients: 16, Workers: 8, RequestsPerClient: 8,
		Sync: sync, Mem: mem, JitterPct: 10, Seed: 7,
	}
}

// mustSim replays a scenario that is expected to validate.
func mustSim(t *testing.T, w *serve.Workload, c serve.Config) *serve.Result {
	t.Helper()
	r, err := w.Simulate(c)
	if err != nil {
		t.Fatalf("Simulate: %v", err)
	}
	return r
}

// TestSimulateDeterministic: repeated replays of the same scenario must
// be bit-identical, including the check value.
func TestSimulateDeterministic(t *testing.T) {
	w := synthetic(core.SGXDiE, 50_000, 16)
	for _, sync := range []serve.SyncKind{serve.SyncMutex, serve.SyncSpin, serve.SyncLockFree} {
		for _, mem := range []serve.MemMode{serve.MemPreSized, serve.MemDynamic} {
			c := cfg(sync, mem)
			a := mustSim(t, w, c)
			for rep := 0; rep < 3; rep++ {
				b := mustSim(t, w, c)
				if a.Check != b.Check || a.MakespanCycles != b.MakespanCycles ||
					a.Breakdown != b.Breakdown || a.P99 != b.P99 {
					t.Fatalf("%s/%s: replay diverged: %+v vs %+v", sync, mem, a, b)
				}
			}
		}
	}
}

// TestSimulateAccounting pins the structural invariants of one replay.
func TestSimulateAccounting(t *testing.T) {
	w := synthetic(core.SGXDiE, 50_000, 16)
	c := cfg(serve.SyncMutex, serve.MemDynamic)
	r := mustSim(t, w, c)
	want := c.Clients * c.RequestsPerClient
	if r.Requests != want || r.Breakdown.Requests != uint64(want) {
		t.Fatalf("requests = %d / %d, want %d", r.Requests, r.Breakdown.Requests, want)
	}
	if !(r.P50 <= r.P95 && r.P95 <= r.P99 && r.P99 <= r.Max) {
		t.Fatalf("percentiles not ordered: p50=%d p95=%d p99=%d max=%d", r.P50, r.P95, r.P99, r.Max)
	}
	if r.MakespanCycles < r.Max {
		t.Fatalf("makespan %d < max latency %d", r.MakespanCycles, r.Max)
	}
	// Every request transitions 4 times: submit ECALL/EEXIT + worker
	// ECALL/EEXIT.
	if got := r.Breakdown.Transitions; got != uint64(4*want) {
		t.Fatalf("transitions = %d, want %d", got, 4*want)
	}
	perClient := 0
	for _, cs := range r.PerClient {
		perClient += cs.Requests
	}
	perClass := 0
	for _, cs := range r.PerClass {
		perClass += cs.Requests
	}
	if perClient != want || perClass != want {
		t.Fatalf("per-client %d / per-class %d, want %d", perClient, perClass, want)
	}
	if r.Breakdown.PagesCommitted == 0 || r.Breakdown.CommitCycles == 0 {
		t.Fatalf("dynamic memory mode committed nothing: %+v", r.Breakdown)
	}
	if r.ThroughputQPS <= 0 {
		t.Fatalf("throughput = %v", r.ThroughputQPS)
	}
}

// TestPlainNoTransitions: outside an enclave nothing transitions and
// dynamic memory never serializes.
func TestPlainNoTransitions(t *testing.T) {
	w := synthetic(core.PlainCPU, 50_000, 16)
	r := mustSim(t, w, cfg(serve.SyncMutex, serve.MemDynamic))
	if r.Breakdown.Transitions != 0 || r.Breakdown.TransitionCycles != 0 {
		t.Fatalf("plain CPU transitioned: %+v", r.Breakdown)
	}
	if r.Breakdown.CommitWaitCycles != 0 {
		t.Fatalf("plain CPU serialized page commits: %+v", r.Breakdown)
	}
	if r.Breakdown.CommitCycles == 0 {
		t.Fatalf("plain CPU dynamic mode charged no minor faults")
	}
}

// TestSyncCollapse reproduces the Section 4.4 contention collapse: with
// >= 8 clients hammering the dispatch queue, the SGX SDK mutex (whose
// sleep and wake are enclave transitions with the mutex held) must lose
// substantial throughput against the lock-free queue, and the spinlock
// must sit in between.
func TestSyncCollapse(t *testing.T) {
	w := synthetic(core.SGXDiE, 50_000, 0)
	mutex := mustSim(t, w, cfg(serve.SyncMutex, serve.MemPreSized))
	spin := mustSim(t, w, cfg(serve.SyncSpin, serve.MemPreSized))
	free := mustSim(t, w, cfg(serve.SyncLockFree, serve.MemPreSized))
	if ratio := free.ThroughputQPS / mutex.ThroughputQPS; ratio < 2 {
		t.Errorf("lock-free/mutex throughput = %.2fx, want >= 2x (mutex %v qps, lock-free %v qps)",
			ratio, mutex.ThroughputQPS, free.ThroughputQPS)
	}
	if spin.ThroughputQPS < mutex.ThroughputQPS {
		t.Errorf("spinlock (%v qps) slower than SDK mutex (%v qps) under contention",
			spin.ThroughputQPS, mutex.ThroughputQPS)
	}
	if mutex.Breakdown.LockCycles <= free.Breakdown.LockCycles {
		t.Errorf("mutex lock cycles %d not above lock-free %d",
			mutex.Breakdown.LockCycles, free.Breakdown.LockCycles)
	}
	// Outside the enclave SyncMutex resolves to a plain futex mutex,
	// which must not collapse anywhere near as hard.
	pw := synthetic(core.PlainCPU, 50_000, 0)
	pm := mustSim(t, pw, cfg(serve.SyncMutex, serve.MemPreSized))
	pf := mustSim(t, pw, cfg(serve.SyncLockFree, serve.MemPreSized))
	sgxRatio := free.ThroughputQPS / mutex.ThroughputQPS
	plainRatio := pf.ThroughputQPS / pm.ThroughputQPS
	if plainRatio >= sgxRatio {
		t.Errorf("plain mutex collapse (%.2fx) >= SGX mutex collapse (%.2fx)", plainRatio, sgxRatio)
	}
}

// TestEDMMCollapse reproduces the Fig 12 collapse: a dynamically sized
// enclave serializes every request's page commits on the enclave-global
// lock and loses most of its throughput against a pre-sized enclave.
func TestEDMMCollapse(t *testing.T) {
	w := synthetic(core.SGXDiE, 50_000, 32)
	pre := mustSim(t, w, cfg(serve.SyncLockFree, serve.MemPreSized))
	dyn := mustSim(t, w, cfg(serve.SyncLockFree, serve.MemDynamic))
	if ratio := pre.ThroughputQPS / dyn.ThroughputQPS; ratio < 5 {
		t.Errorf("pre-sized/EDMM throughput = %.2fx, want >= 5x", ratio)
	}
	if dyn.Breakdown.CommitWaitCycles == 0 {
		t.Errorf("EDMM scenario never waited on the commit lock: %+v", dyn.Breakdown)
	}
	// The same pages outside an enclave (minor faults, unserialized)
	// must hurt far less.
	pw := synthetic(core.PlainCPU, 50_000, 32)
	ppre := mustSim(t, pw, cfg(serve.SyncLockFree, serve.MemPreSized))
	pdyn := mustSim(t, pw, cfg(serve.SyncLockFree, serve.MemDynamic))
	enclaveRatio := pre.ThroughputQPS / dyn.ThroughputQPS
	plainRatio := ppre.ThroughputQPS / pdyn.ThroughputQPS
	if plainRatio >= enclaveRatio {
		t.Errorf("plain dynamic collapse (%.2fx) >= EDMM collapse (%.2fx)", plainRatio, enclaveRatio)
	}
}

// TestCalibrateEquivalence: the calibrated workload — and therefore
// every scenario simulated over it — must be bit-identical between the
// fast and per-op reference engine paths.
func TestCalibrateEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration runs full pipelines")
	}
	for _, setting := range []core.Setting{core.PlainCPU, core.SGXDiE} {
		opt := serve.CalibrateOptions{Setting: setting}
		fast, err := serve.Calibrate(opt)
		if err != nil {
			t.Fatal(err)
		}
		opt.Reference = true
		ref, err := serve.Calibrate(opt)
		if err != nil {
			t.Fatal(err)
		}
		if fast.Stats != ref.Stats {
			t.Errorf("%v: calibration stats differ:\nfast: %+v\nref:  %+v", setting, fast.Stats, ref.Stats)
		}
		for i := range fast.Classes {
			if fast.Classes[i] != ref.Classes[i] {
				t.Errorf("%v: class %d differs:\nfast: %+v\nref:  %+v",
					setting, i, fast.Classes[i], ref.Classes[i])
			}
		}
		c := cfg(serve.SyncMutex, serve.MemDynamic)
		fr := mustSim(t, fast, c)
		rr := mustSim(t, ref, c)
		if fr.Check != rr.Check || fr.MakespanCycles != rr.MakespanCycles || fr.Breakdown != rr.Breakdown {
			t.Errorf("%v: simulated scenario differs across engine paths:\nfast: %+v\nref:  %+v",
				setting, fr, rr)
		}
	}
}

// TestCalibrateEPCRatio covers the working-set/EPC-ratio axis: under
// SGX DiE at 2x oversubscription every class must be calibrated against
// a positive EPC capacity below its probed working set, fault during
// calibration, and cost more service cycles than on an unlimited
// enclave — while the calibration stays bit-identical across engine
// paths. Outside the enclave the ratio is inert (nothing lives in EPC).
func TestCalibrateEPCRatio(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration runs full pipelines")
	}
	pipes := []string{query.Q3Name, query.Q3SName}
	base, err := serve.Calibrate(serve.CalibrateOptions{Setting: core.SGXDiE, Pipelines: pipes})
	if err != nil {
		t.Fatal(err)
	}
	opt := serve.CalibrateOptions{Setting: core.SGXDiE, Pipelines: pipes, EPCRatio: 2}
	over, err := serve.Calibrate(opt)
	if err != nil {
		t.Fatal(err)
	}
	if over.EPCRatio != 2 {
		t.Fatalf("workload EPCRatio = %v, want 2", over.EPCRatio)
	}
	for i, cc := range over.Classes {
		if cc.EPCPages <= 0 {
			t.Errorf("%s: EPCPages = %d, want > 0", cc.Name, cc.EPCPages)
		}
		if cc.Faults == 0 {
			t.Errorf("%s: oversubscribed calibration did not fault", cc.Name)
		}
		if cc.ServiceCycles <= base.Classes[i].ServiceCycles {
			t.Errorf("%s: oversubscribed service %d not above unlimited %d",
				cc.Name, cc.ServiceCycles, base.Classes[i].ServiceCycles)
		}
	}
	opt.Reference = true
	ref, err := serve.Calibrate(opt)
	if err != nil {
		t.Fatal(err)
	}
	for i := range over.Classes {
		if over.Classes[i] != ref.Classes[i] {
			t.Errorf("class %d differs across engine paths:\nfast: %+v\nref:  %+v",
				i, over.Classes[i], ref.Classes[i])
		}
	}
	plain, err := serve.Calibrate(serve.CalibrateOptions{Setting: core.PlainCPU, Pipelines: pipes, EPCRatio: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, cc := range plain.Classes {
		if cc.EPCPages != 0 || cc.Faults != 0 {
			t.Errorf("%s: plain CPU calibrated with EPC limit %d / faults %d", cc.Name, cc.EPCPages, cc.Faults)
		}
	}
}

// TestParseRoundTrip covers the flag-facing parsers.
func TestParseRoundTrip(t *testing.T) {
	for _, k := range []serve.SyncKind{serve.SyncMutex, serve.SyncSpin, serve.SyncLockFree} {
		got, err := serve.ParseSync(k.String())
		if err != nil || got != k {
			t.Errorf("ParseSync(%q) = %v, %v", k.String(), got, err)
		}
	}
	for _, m := range []serve.MemMode{serve.MemPreSized, serve.MemDynamic} {
		got, err := serve.ParseMem(m.String())
		if err != nil || got != m {
			t.Errorf("ParseMem(%q) = %v, %v", m.String(), got, err)
		}
	}
	if _, err := serve.ParseSync("bogus"); err == nil {
		t.Error("ParseSync accepted bogus")
	}
	if _, err := serve.ParseMem("bogus"); err == nil {
		t.Error("ParseMem accepted bogus")
	}
}

// TestCalibrateSuiteClasses covers the planner-suite side of the query
// registry: serving classes named after suite queries must calibrate
// (the planner picks each class's strategies for the calibration
// setting) and replay deterministically, so a serving mix can blend the
// fixed shapes with planned star queries.
func TestCalibrateSuiteClasses(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration runs full pipelines")
	}
	pipes := []string{query.Q2Name, "s03.j0.sel902.u.agg", "s09.j1.sel250.u.agg", "s14.j1.sel250.u.top"}
	w, err := serve.Calibrate(serve.CalibrateOptions{Setting: core.SGXDiE, Pipelines: pipes})
	if err != nil {
		t.Fatal(err)
	}
	if len(w.Classes) != len(pipes) {
		t.Fatalf("calibrated %d classes, want %d", len(w.Classes), len(pipes))
	}
	for i, c := range w.Classes {
		if c.Name != pipes[i] || c.ServiceCycles == 0 {
			t.Errorf("class %d = %+v, want name %q with nonzero service", i, c, pipes[i])
		}
	}
	c := cfg(serve.SyncLockFree, serve.MemPreSized)
	a, b := mustSim(t, w, c), mustSim(t, w, c)
	if a.Check != b.Check || a.MakespanCycles != b.MakespanCycles {
		t.Fatalf("suite-class scenario replay diverged: %+v vs %+v", a, b)
	}
	if _, err := serve.Calibrate(serve.CalibrateOptions{
		Setting: core.SGXDiE, Pipelines: []string{"s99.nope"},
	}); err == nil {
		t.Fatal("unknown suite class calibrated without error")
	}
}
