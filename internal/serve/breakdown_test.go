package serve_test

import (
	"reflect"
	"testing"

	"sgxbench/internal/serve"
)

// fillBreakdown assigns base*k to the k-th numeric field, failing on any
// field kind it does not know how to fill — extending the engine.Stats
// completeness discipline to the serving counters (queue waits,
// transitions, EDMM commits): a new Breakdown field that is not also
// added to Add and Sub fails this file's tests.
func fillBreakdown(t *testing.T, b *serve.Breakdown, base uint64) {
	t.Helper()
	v := reflect.ValueOf(b).Elem()
	for i := 0; i < v.NumField(); i++ {
		f := v.Field(i)
		if f.Kind() != reflect.Uint64 {
			t.Fatalf("Breakdown has a field of unsupported kind %v: teach fillBreakdown (and Add/Sub) about it", f.Kind())
		}
		f.SetUint(base * uint64(i+1))
	}
}

// TestBreakdownSubCoversAllFields fails when a newly added Breakdown
// counter is omitted from Sub.
func TestBreakdownSubCoversAllFields(t *testing.T) {
	var a, b, want serve.Breakdown
	fillBreakdown(t, &a, 5)
	fillBreakdown(t, &b, 2)
	fillBreakdown(t, &want, 3)
	if got := a.Sub(b); got != want {
		t.Errorf("Breakdown.Sub misses a field:\ngot:  %+v\nwant: %+v", got, want)
	}
}

// TestBreakdownAddCoversAllFields fails when a newly added Breakdown
// counter is omitted from Add: Add then Sub must round-trip.
func TestBreakdownAddCoversAllFields(t *testing.T) {
	var a, b serve.Breakdown
	fillBreakdown(t, &a, 9)
	fillBreakdown(t, &b, 4)
	sum := a
	sum.Add(b)
	if got := sum.Sub(b); got != a {
		t.Errorf("(a+b)-b != a:\ngot:  %+v\nwant: %+v", got, a)
	}
}

// TestBreakdownFoldCoversAllFields pins the golden-check fold's
// sensitivity: flipping any single Breakdown counter must change the
// fold value, so no counter can silently fall out of the scenario
// check.
func TestBreakdownFoldCoversAllFields(t *testing.T) {
	var base serve.Breakdown
	fillBreakdown(t, &base, 7)
	h0 := base.Fold(0xcbf29ce484222325)
	v := reflect.ValueOf(&base).Elem()
	for i := 0; i < v.NumField(); i++ {
		mutated := base
		mv := reflect.ValueOf(&mutated).Elem().Field(i)
		mv.SetUint(mv.Uint() + 1)
		if mutated.Fold(0xcbf29ce484222325) == h0 {
			t.Errorf("Fold insensitive to field %s", v.Type().Field(i).Name)
		}
	}
}
