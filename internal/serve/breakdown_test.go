package serve_test

import (
	"reflect"
	"testing"

	"sgxbench/internal/serve"
)

// fillBreakdown assigns base*k to the k-th numeric field, failing on any
// field kind it does not know how to fill — extending the engine.Stats
// completeness discipline to the serving counters (queue waits,
// transitions, EDMM commits): a new Breakdown field that is not also
// added to Add and Sub fails this file's tests.
func fillBreakdown(t *testing.T, b *serve.Breakdown, base uint64) {
	t.Helper()
	v := reflect.ValueOf(b).Elem()
	for i := 0; i < v.NumField(); i++ {
		f := v.Field(i)
		if f.Kind() != reflect.Uint64 {
			t.Fatalf("Breakdown has a field of unsupported kind %v: teach fillBreakdown (and Add/Sub) about it", f.Kind())
		}
		f.SetUint(base * uint64(i+1))
	}
}

// TestBreakdownSubCoversAllFields fails when a newly added Breakdown
// counter is omitted from Sub.
func TestBreakdownSubCoversAllFields(t *testing.T) {
	var a, b, want serve.Breakdown
	fillBreakdown(t, &a, 5)
	fillBreakdown(t, &b, 2)
	fillBreakdown(t, &want, 3)
	if got := a.Sub(b); got != want {
		t.Errorf("Breakdown.Sub misses a field:\ngot:  %+v\nwant: %+v", got, want)
	}
}

// TestBreakdownAddCoversAllFields fails when a newly added Breakdown
// counter is omitted from Add: Add then Sub must round-trip.
func TestBreakdownAddCoversAllFields(t *testing.T) {
	var a, b serve.Breakdown
	fillBreakdown(t, &a, 9)
	fillBreakdown(t, &b, 4)
	sum := a
	sum.Add(b)
	if got := sum.Sub(b); got != a {
		t.Errorf("(a+b)-b != a:\ngot:  %+v\nwant: %+v", got, a)
	}
}
