package serve

import "fmt"

// ArrivalKind selects the open-loop inter-arrival process.
type ArrivalKind int

const (
	// ArrivalUniform paces every client at exactly MeanGapCycles.
	ArrivalUniform ArrivalKind = iota
	// ArrivalPoisson draws exponential gaps (memoryless arrivals).
	ArrivalPoisson
	// ArrivalBursty releases BurstSize back-to-back arrivals, then one
	// exponential gap stretched by BurstSize so the mean rate is
	// unchanged — same load, much worse queueing.
	ArrivalBursty
	// ArrivalDiurnal modulates exponential gaps by a 16-phase sinusoidal
	// rate curve over RampPeriodCycles (a compressed day: peak rate
	// ~1.6x the mean, trough ~0.4x).
	ArrivalDiurnal
	// ArrivalHeavyTail draws Pareto-like gaps (alpha ~ 1.5): most
	// arrivals cluster, a deterministic tail stretches to ~10x the mean.
	ArrivalHeavyTail
)

func (k ArrivalKind) String() string {
	switch k {
	case ArrivalUniform:
		return "uniform"
	case ArrivalPoisson:
		return "poisson"
	case ArrivalBursty:
		return "bursty"
	case ArrivalDiurnal:
		return "diurnal"
	case ArrivalHeavyTail:
		return "heavytail"
	}
	return fmt.Sprintf("arrival(%d)", int(k))
}

// ParseArrivalKind parses the String form (diag flags).
func ParseArrivalKind(s string) (ArrivalKind, error) {
	for _, k := range []ArrivalKind{ArrivalUniform, ArrivalPoisson, ArrivalBursty, ArrivalDiurnal, ArrivalHeavyTail} {
		if k.String() == s {
			return k, nil
		}
	}
	return 0, fmt.Errorf("unknown arrival kind %q", s)
}

// ArrivalPlan makes a scenario open-loop: each client issues new logical
// requests on its own arrival clock, independent of responses — so
// overload piles up queueing instead of throttling the offered load,
// exactly the regime where dispatch sharding and batching matter. A nil
// plan keeps the original closed loop.
type ArrivalPlan struct {
	Kind ArrivalKind `json:"kind"`
	// MeanGapCycles is the mean inter-arrival gap per client; the
	// offered load is Clients / MeanGapCycles requests per cycle.
	MeanGapCycles uint64 `json:"mean_gap_cycles"`
	// BurstSize is the ArrivalBursty batch length (ignored otherwise).
	BurstSize int `json:"burst_size,omitempty"`
	// RampPeriodCycles is the ArrivalDiurnal full-cycle length
	// (ignored otherwise). Must be at least 16 cycles.
	RampPeriodCycles uint64 `json:"ramp_period_cycles,omitempty"`
}

func (p *ArrivalPlan) validate() error {
	if p.MeanGapCycles == 0 {
		return fmt.Errorf("serve: ArrivalPlan.MeanGapCycles must be positive")
	}
	switch p.Kind {
	case ArrivalUniform, ArrivalPoisson, ArrivalHeavyTail:
	case ArrivalBursty:
		if p.BurstSize < 1 {
			return fmt.Errorf("serve: ArrivalBursty needs BurstSize >= 1, got %d", p.BurstSize)
		}
	case ArrivalDiurnal:
		if p.RampPeriodCycles < 16 {
			return fmt.Errorf("serve: ArrivalDiurnal needs RampPeriodCycles >= 16, got %d", p.RampPeriodCycles)
		}
	default:
		return fmt.Errorf("serve: unknown ArrivalKind %d", int(p.Kind))
	}
	return nil
}

// String is the one-line form diag prints so a scenario is reproducible
// from its output alone.
func (p *ArrivalPlan) String() string {
	s := fmt.Sprintf("%s meanGap=%d", p.Kind, p.MeanGapCycles)
	if p.Kind == ArrivalBursty {
		s += fmt.Sprintf(" burst=%d", p.BurstSize)
	}
	if p.Kind == ArrivalDiurnal {
		s += fmt.Sprintf(" ramp=%d", p.RampPeriodCycles)
	}
	return s
}

// gap draws client c's n-th inter-arrival gap at virtual time now.
// Pure integer arithmetic over Q16 lookup tables — no floating point on
// any simulated path, so results are bit-identical across platforms.
func (p *ArrivalPlan) gap(seed uint64, c, n int, now uint64) uint64 {
	r := splitmix64(seed ^ 0xa331c0de ^ uint64(c)<<32 ^ uint64(n))
	g := p.MeanGapCycles
	switch p.Kind {
	case ArrivalPoisson:
		return g * expGapQ16[r%64] >> 16
	case ArrivalBursty:
		bs := uint64(p.BurstSize)
		if uint64(n)%bs != 0 {
			return 0 // inside a burst: arrivals land together
		}
		return bs * g * expGapQ16[r%64] >> 16
	case ArrivalDiurnal:
		phase := now / (p.RampPeriodCycles / 16) % 16
		// gap = g * exp / 2^16 * 2^8 / rate, fused to keep precision.
		return g * expGapQ16[r%64] / (diurnalRateQ8[phase] << 8)
	case ArrivalHeavyTail:
		return g * paretoGapQ16[r%64] >> 16
	}
	return g // ArrivalUniform
}

// Inverse-CDF tables in Q16 fixed point, evaluated at the 64 midpoints
// (k+0.5)/64 and integer-adjusted so each table's mean is exactly 2^16
// — a draw therefore scales MeanGapCycles by an exactly-mean-1 factor.
// Hardcoded (not computed with math.Log at runtime) so the simulation
// carries no floating point and cannot drift across platforms.

// expGapQ16[k] = -ln(1 - (k+0.5)/64) * 2^16: exponential gaps, max ~5.2x mean.
var expGapQ16 = [64]uint64{
	514, 1554, 2611, 3686, 4778, 5889, 7019, 8169,
	9339, 10530, 11744, 12981, 14241, 15526, 16837, 18174,
	19540, 20934, 22359, 23815, 25305, 26829, 28390, 29988,
	31627, 33307, 35032, 36803, 38624, 40496, 42424, 44410,
	46458, 48572, 50757, 53017, 55358, 57786, 60307, 62928,
	65659, 68509, 71489, 74610, 77887, 81338, 84979, 88836,
	92933, 97304, 101987, 107030, 112495, 118457, 125016, 132305,
	140508, 149886, 160834, 173985, 190455, 212507, 245984, 340653,
}

// paretoGapQ16[k] = Pareto(alpha=1.5) inverse CDF, renormalized to mean
// 1: a deterministic heavy tail reaching ~9.6x the mean.
var paretoGapQ16 = [64]uint64{
	630358, 303045, 215579, 172262, 145689, 127446, 114014, 103640,
	95343, 88529, 82815, 77942, 73727, 70040, 66781, 63877,
	61270, 58913, 56770, 54812, 53015, 51358, 49825, 48401,
	47075, 45836, 44676, 43586, 42560, 41593, 40679, 39813,
	38992, 38212, 37470, 36763, 36089, 35444, 34828, 34238,
	33672, 33129, 32607, 32105, 31622, 31157, 30709, 30276,
	29859, 29455, 29065, 28688, 28322, 27968, 27625, 27292,
	26969, 26656, 26351, 26055, 25767, 25487, 25214, 24949,
}

// diurnalRateQ8: 16-phase sinusoidal rate multiplier, mean exactly 256
// (Q8): 256 + 160*sin(2*pi*k/16).
var diurnalRateQ8 = [16]uint64{
	256, 317, 369, 404, 416, 404, 369, 317,
	256, 195, 143, 108, 96, 108, 143, 195,
}
