package serve

import (
	"fmt"

	"sgxbench/internal/sgx"
)

// FaultPlan is a seeded, deterministic fault schedule injected into
// Simulate's event loop. Everything is derived from the plan's Seed and
// the virtual clock — no host randomness — so a faulted scenario is as
// bit-reproducible as a clean one, across runs and engine paths.
//
// Three failure modes, mirroring what a full DBMS-in-enclave deployment
// (Hyrise under Gramine, DuckDB-SGX2) actually survives in production:
//
//   - AEX interrupt storms: windows of the virtual clock during which
//     every cycle of enclave execution is pelted with asynchronous
//     exits (timer interrupts, IPIs). Each AEX charges FaultCosts.AEX
//     of wall time without advancing the request's work — service
//     stretches by (1 + AEX/StormAEXGap) inside a window.
//   - Transient request failure: an enclave thread aborts partway
//     through a request (poisoned TCS, simulated EPCM integrity trip).
//     The attempt's partial work is wasted and the client sees a
//     retriable failure after FaultCosts.AbortDetect.
//   - Enclave crash → rebuild: a worker's enclave dies on a schedule;
//     the in-flight request is lost, and the worker is unavailable for
//     teardown plus an ECREATE/EADD/EINIT-scale rebuild. Rebuilds
//     serialize on the kernel's enclave-management lock — the same
//     serialization that collapses EDMM commits in Fig 12 — so
//     correlated crashes queue into long outages.
type FaultPlan struct {
	// Seed drives every deterministic draw (crash phases, abort picks,
	// abort progress fractions).
	Seed uint64
	// CrashInterval is the mean per-worker enclave lifetime in cycles;
	// each worker's crash times are jittered deterministically around
	// it. Zero disables crashes.
	CrashInterval uint64
	// RebuildPages is the number of EPC pages re-added during a
	// rebuild. Zero defaults to the workload's summed class working
	// sets (the enclave image that served them).
	RebuildPages int64
	// StormInterval is the AEX storm period: a storm window opens at
	// every positive multiple of it. Zero disables storms.
	StormInterval uint64
	// StormLen is the storm window length (must be <= StormInterval).
	StormLen uint64
	// StormAEXGap is how many cycles of enclave execution pass between
	// AEXs inside a storm window.
	StormAEXGap uint64
	// FailPct is the per-attempt transient failure probability in
	// percent [0, 100].
	FailPct int
	// Costs is the failure cost model; the zero value selects
	// sgx.DefaultFaultCosts.
	Costs sgx.FaultCosts
}

// validate reports the first structural problem with the plan.
func (p *FaultPlan) validate() error {
	if p.CrashInterval == 0 && p.StormInterval == 0 && p.FailPct == 0 {
		return fmt.Errorf("serve: fault plan injects nothing (no crashes, storms or failures); use Fault: nil instead")
	}
	if p.StormInterval > 0 {
		if p.StormLen == 0 || p.StormLen > p.StormInterval {
			return fmt.Errorf("serve: storm length %d outside (0, interval %d]", p.StormLen, p.StormInterval)
		}
		if p.StormAEXGap == 0 {
			return fmt.Errorf("serve: storms enabled with zero StormAEXGap")
		}
	}
	if p.FailPct < 0 || p.FailPct > 100 {
		return fmt.Errorf("serve: FailPct %d outside [0, 100]", p.FailPct)
	}
	if p.RebuildPages < 0 {
		return fmt.Errorf("serve: negative RebuildPages %d", p.RebuildPages)
	}
	return nil
}

// costs returns the plan's cost model, defaulting the zero value.
func (p *FaultPlan) costs() sgx.FaultCosts {
	if p.Costs == (sgx.FaultCosts{}) {
		return sgx.DefaultFaultCosts()
	}
	return p.Costs
}

// StormWindows enumerates the plan's AEX storm windows that open before
// horizon, as [start, end) pairs on the virtual clock. Used by
// cmd/diag -fault to print the injected timeline.
func (p *FaultPlan) StormWindows(horizon uint64) [][2]uint64 {
	var ws [][2]uint64
	if p == nil || p.StormInterval == 0 {
		return ws
	}
	for t := p.StormInterval; t < horizon; t += p.StormInterval {
		ws = append(ws, [2]uint64{t, t + p.StormLen})
	}
	return ws
}

// FaultEvent is one injected-fault occurrence recorded during a
// simulation: an enclave crash or the completion of its rebuild.
type FaultEvent struct {
	T      uint64 `json:"t"`
	Kind   string `json:"kind"` // "crash" or "rebuilt"
	Worker int    `json:"worker"`
}

// maxFaultEvents caps the per-result fault timeline so a long crash-loop
// scenario cannot bloat the report; the Breakdown counters stay exact.
const maxFaultEvents = 512

// Validate reports the first structural problem with the scenario
// configuration against a workload of nClasses query classes. Simulate
// calls it and returns its error instead of mis-running: a malformed
// mix, a zero-size pool facing live clients, or an underflowing jitter
// must fail loudly, not skew a golden number.
func (c Config) Validate(nClasses int) error {
	if nClasses <= 0 {
		return fmt.Errorf("serve: workload has no classes")
	}
	if c.Clients < 0 || c.Workers < 0 || c.RequestsPerClient < 0 {
		return fmt.Errorf("serve: negative counts (clients %d, workers %d, requests/client %d)",
			c.Clients, c.Workers, c.RequestsPerClient)
	}
	if c.Workers == 0 && c.Clients > 0 {
		return fmt.Errorf("serve: zero workers cannot serve %d clients", c.Clients)
	}
	if c.JitterPct < 0 || c.JitterPct >= 100 {
		return fmt.Errorf("serve: JitterPct %d outside [0, 100)", c.JitterPct)
	}
	if c.Weights != nil {
		if len(c.Weights) != nClasses {
			return fmt.Errorf("serve: %d weights for %d classes", len(c.Weights), nClasses)
		}
		total := 0
		for i, wt := range c.Weights {
			if wt < 0 {
				return fmt.Errorf("serve: negative weight %d for class %d", wt, i)
			}
			total += wt
		}
		if total == 0 {
			return fmt.Errorf("serve: class weights sum to zero")
		}
	}
	if c.MaxRetries < 0 {
		return fmt.Errorf("serve: negative MaxRetries %d", c.MaxRetries)
	}
	if c.AdmitDepth < 0 {
		return fmt.Errorf("serve: negative AdmitDepth %d", c.AdmitDepth)
	}
	if c.BackoffCap > 0 && c.BackoffBase > c.BackoffCap {
		return fmt.Errorf("serve: BackoffBase %d above BackoffCap %d", c.BackoffBase, c.BackoffCap)
	}
	if c.Dispatch != DispatchGlobal && c.Dispatch != DispatchSharded {
		return fmt.Errorf("serve: unknown DispatchKind %d", int(c.Dispatch))
	}
	if c.Batch < 0 {
		return fmt.Errorf("serve: negative Batch %d", c.Batch)
	}
	if c.ThinkHeavyTail && c.ThinkCycles == 0 {
		return fmt.Errorf("serve: ThinkHeavyTail needs ThinkCycles > 0 (there is no tail on a zero pause)")
	}
	if c.Arrival != nil {
		if err := c.Arrival.validate(); err != nil {
			return err
		}
		if c.ThinkCycles > 0 || c.ThinkHeavyTail {
			return fmt.Errorf("serve: think time is a closed-loop knob; an open-loop scenario (Arrival set) paces itself")
		}
	}
	if c.Fault != nil {
		if err := c.Fault.validate(); err != nil {
			return err
		}
	}
	return nil
}
