package serve_test

import (
	"bytes"
	"encoding/json"
	"testing"

	"sgxbench/internal/core"
	"sgxbench/internal/obs"
	"sgxbench/internal/serve"
)

// obsScenarios is the scenario matrix the zero-perturbation and
// percentile tests sweep: the legacy closed loop, the production-scale
// sharded/batched open loop, admission shedding, and the full fault
// schedule with deadlines and retries.
func obsScenarios() map[string]serve.Config {
	shed := cfg(serve.SyncMutex, serve.MemPreSized)
	shed.AdmitDepth = 2
	shed.MaxRetries = 4
	shed.BackoffBase = 20_000

	open := cfg(serve.SyncLockFree, serve.MemDynamic)
	open.Dispatch = serve.DispatchSharded
	open.Batch = 4
	open.Arrival = &serve.ArrivalPlan{Kind: serve.ArrivalPoisson, MeanGapCycles: 400_000}

	return map[string]serve.Config{
		"closed":  cfg(serve.SyncMutex, serve.MemDynamic),
		"shed":    shed,
		"sharded": open,
		"fault":   faultCfg(faultPlan()),
	}
}

// observed re-runs c with a tracer and metrics attached.
func observed(c serve.Config) serve.Config {
	c.Trace = obs.NewTracer(1 << 14)
	c.Metrics = obs.NewMetrics(1<<15, 1<<10)
	return c
}

// TestObservabilityZeroPerturbation is the serving half of the
// tentpole invariant: attaching a tracer and a metrics timeline must
// leave every simulated number bit-identical — check value, makespan,
// breakdown, dispatch stats, percentiles, outcome split — under every
// execution setting and scenario shape.
func TestObservabilityZeroPerturbation(t *testing.T) {
	settings := []core.Setting{core.PlainCPU, core.PlainCPUM, core.SGXDoE, core.SGXDiE}
	for name, c := range obsScenarios() {
		for _, setting := range settings {
			w := synthetic(setting, 50_000, 16)
			bare := mustSim(t, w, c)
			traced := mustSim(t, w, observed(c))
			label := name + "/" + setting.String()
			if bare.Check != traced.Check {
				t.Errorf("%s: check off=%#x on=%#x", label, bare.Check, traced.Check)
			}
			if bare.MakespanCycles != traced.MakespanCycles {
				t.Errorf("%s: makespan off=%d on=%d", label, bare.MakespanCycles, traced.MakespanCycles)
			}
			if bare.Breakdown != traced.Breakdown {
				t.Errorf("%s: breakdown differs with observability attached", label)
			}
			if bare.DispatchStats != traced.DispatchStats {
				t.Errorf("%s: dispatch stats differ with observability attached", label)
			}
			if bare.P50 != traced.P50 || bare.P95 != traced.P95 || bare.P99 != traced.P99 || bare.Max != traced.Max {
				t.Errorf("%s: percentiles differ with observability attached", label)
			}
			if bare.Succeeded != traced.Succeeded || bare.Failed != traced.Failed {
				t.Errorf("%s: outcome split differs with observability attached", label)
			}
			if bare.FaultsDropped != traced.FaultsDropped {
				t.Errorf("%s: FaultsDropped differs with observability attached", label)
			}
		}
	}
}

// TestHistogramPercentilesMatchExact pins the satellite guarantee on
// real serving runs: each histogram-backed percentile is >= the exact
// sorted-slice value and within one bucket width of it, and Max is
// exact.
func TestHistogramPercentilesMatchExact(t *testing.T) {
	for name, c := range obsScenarios() {
		for _, setting := range []core.Setting{core.PlainCPU, core.SGXDiE} {
			r := mustSim(t, synthetic(setting, 50_000, 16), c)
			e50, e95, e99, emax := r.ExactPercentiles()
			label := name + "/" + setting.String()
			for _, pc := range []struct {
				name       string
				got, exact uint64
			}{{"p50", r.P50, e50}, {"p95", r.P95, e95}, {"p99", r.P99, e99}} {
				if pc.got < pc.exact {
					t.Errorf("%s: %s = %d below exact %d", label, pc.name, pc.got, pc.exact)
				}
				if w := obs.BucketWidth(pc.exact); pc.got-pc.exact > w {
					t.Errorf("%s: %s = %d off exact %d by more than bucket width %d",
						label, pc.name, pc.got, pc.exact, w)
				}
			}
			if r.Max != emax {
				t.Errorf("%s: Max = %d, want exact %d", label, r.Max, emax)
			}
			if h := r.LatencyHistogram(); h == nil || h.Count() != uint64(r.Requests) {
				t.Errorf("%s: histogram count mismatch", label)
			}
		}
	}
}

// TestTraceContent checks what the tracer captures on a fault scenario:
// whole-request spans for every terminal request, queue+service spans on
// the serve tracks, fault markers, and a Perfetto-loadable export.
func TestTraceContent(t *testing.T) {
	c := observed(faultCfg(faultPlan()))
	r := mustSim(t, synthetic(core.SGXDiE, 50_000, 16), c)

	var requests, services, queues, crashes, timeouts int
	for _, s := range c.Trace.Spans() {
		switch s.Name {
		case "request":
			requests++
			if s.PID != 1 {
				t.Errorf("request span on pid %d, want client pid 1", s.PID)
			}
		case "queue":
			queues++
			if s.PID != 0 {
				t.Errorf("queue span on pid %d, want serve pid 0", s.PID)
			}
		case "a", "b":
			services++
		case "crash":
			crashes++
			if s.Ph != obs.PhInstant {
				t.Error("crash marker is not an instant")
			}
		case "timeout":
			timeouts++
		}
	}
	if c.Trace.Dropped() == 0 && requests != r.Requests {
		t.Errorf("request spans = %d, terminal requests = %d", requests, r.Requests)
	}
	if services == 0 || queues == 0 {
		t.Errorf("missing serve-side spans: %d service, %d queue", services, queues)
	}
	if uint64(crashes) != r.Breakdown.Crashes && c.Trace.Dropped() == 0 {
		t.Errorf("crash markers = %d, breakdown crashes = %d", crashes, r.Breakdown.Crashes)
	}
	if timeouts == 0 && r.Breakdown.Timeouts > 0 {
		t.Error("breakdown reports timeouts but no timeout markers were traced")
	}

	var buf bytes.Buffer
	if err := obs.WriteTrace(&buf, c.Trace, c.Metrics); err != nil {
		t.Fatal(err)
	}
	var f struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &f); err != nil {
		t.Fatalf("trace export is not valid JSON: %v", err)
	}
	if len(f.TraceEvents) == 0 {
		t.Fatal("trace export is empty")
	}
}

// TestMetricsTimeline checks the sampled gauge timeline: strictly
// advancing boundary-aligned timestamps inside the makespan, and
// per-shard depths only for sharded dispatch.
func TestMetricsTimeline(t *testing.T) {
	c := cfg(serve.SyncLockFree, serve.MemDynamic)
	c.Dispatch = serve.DispatchSharded
	c.ThinkCycles = 100_000
	c = observed(c)
	r := mustSim(t, synthetic(core.SGXDiE, 50_000, 16), c)

	samples := c.Metrics.Samples()
	if len(samples) == 0 {
		t.Fatal("no metrics samples over a multi-interval makespan")
	}
	iv := c.Metrics.Interval()
	var prev uint64
	for i, s := range samples {
		if s.T%iv != 0 || (i > 0 && s.T <= prev) {
			t.Fatalf("sample %d at T=%d: not boundary-aligned/monotone (interval %d)", i, s.T, iv)
		}
		prev = s.T
		if len(s.Shards) != c.Workers {
			t.Fatalf("sample %d has %d shard depths, want %d", i, len(s.Shards), c.Workers)
		}
		var sum, max uint64
		for _, d := range s.Shards {
			sum += d
			if d > max {
				max = d
			}
		}
		if s.G.QueueDepth != sum || s.G.MaxShardDepth != max {
			t.Fatalf("sample %d gauge/shard mismatch: %+v vs shards %v", i, s.G, s.Shards)
		}
		if s.G.BusyWorkers > uint64(c.Workers) {
			t.Fatalf("sample %d: %d busy workers of %d", i, s.G.BusyWorkers, c.Workers)
		}
	}
	if last := samples[len(samples)-1].T; last > r.MakespanCycles+iv {
		t.Errorf("last sample at %d, past makespan %d", last, r.MakespanCycles)
	}
}

// TestFaultsDropped drives a crash loop long enough to overflow the
// fault-event cap: the timeline must hold exactly the cap, the dropped
// counter must say how much history was cut, and the truncation must
// not touch the deterministic check.
func TestFaultsDropped(t *testing.T) {
	plan := faultPlan()
	plan.CrashInterval = 150_000
	plan.StormInterval = 0
	plan.StormLen = 0
	plan.FailPct = 0
	c := faultCfg(plan)
	c.RequestsPerClient = 48
	w := synthetic(core.SGXDiE, 50_000, 16)

	r := mustSim(t, w, c)
	if len(r.Faults) != 512 {
		t.Fatalf("fault timeline holds %d events, want the 512 cap (tune the scenario)", len(r.Faults))
	}
	if r.FaultsDropped == 0 {
		t.Fatal("timeline at cap but FaultsDropped = 0")
	}
	// Every crash records a crash event and (later) a rebuilt event;
	// the replay ends when the last request does, so up to Workers
	// rebuilds can still be pending and unrecorded.
	total := uint64(len(r.Faults)) + r.FaultsDropped
	lo, hi := r.Breakdown.Crashes*2-uint64(c.Workers), r.Breakdown.Crashes*2
	if total < lo || total > hi {
		t.Errorf("kept %d + dropped %d fault events, want within [%d, %d] for %d crashes",
			len(r.Faults), r.FaultsDropped, lo, hi, r.Breakdown.Crashes)
	}
	again := mustSim(t, w, c)
	if again.Check != r.Check || again.FaultsDropped != r.FaultsDropped {
		t.Error("fault-overflow scenario is not deterministic")
	}
}
