package serve

import (
	"fmt"
	"reflect"

	"sgxbench/internal/agg"
)

// DispatchKind selects how submitted attempts reach workers.
type DispatchKind int

const (
	// DispatchGlobal is the original single shared queue: every push and
	// pop serializes on one dispatch lock.
	DispatchGlobal DispatchKind = iota
	// DispatchSharded gives every worker its own queue (same sync model
	// per shard). Clients spread submissions round-robin; a worker that
	// drains its own shard steals the oldest half of a seeded-order
	// victim's queue, so the pool stays work-conserving without a
	// global lock.
	DispatchSharded
)

func (d DispatchKind) String() string {
	switch d {
	case DispatchGlobal:
		return "global"
	case DispatchSharded:
		return "shard"
	}
	return fmt.Sprintf("dispatch(%d)", int(d))
}

// ParseDispatchKind parses the String form (diag flags).
func ParseDispatchKind(s string) (DispatchKind, error) {
	for _, d := range []DispatchKind{DispatchGlobal, DispatchSharded} {
		if d.String() == s {
			return d, nil
		}
	}
	return 0, fmt.Errorf("unknown dispatch kind %q", s)
}

// DispatchStats counts the sharded/batched dispatch machinery's work,
// kept separate from Breakdown so legacy scenarios' golden check values
// stay bit-identical: the check folds these counters only for scenarios
// that actually use the new machinery (see Config.extended). Follows the
// Breakdown completeness discipline (Add/Sub/Fold cover every field,
// pinned by tests).
type DispatchStats struct {
	// Batches counts worker enclave entries through the batched path;
	// BatchedAttempts the attempts they carried (mean batch size =
	// BatchedAttempts / Batches).
	Batches         uint64 `json:"batches"`
	BatchedAttempts uint64 `json:"batched_attempts"`
	// Steals counts successful steal operations; StolenAttempts the
	// attempts migrated (steal-half: ceil(victim depth / 2) each).
	Steals         uint64 `json:"steals"`
	StolenAttempts uint64 `json:"stolen_attempts"`
}

// Add accumulates o into d, field-wise.
func (d *DispatchStats) Add(o DispatchStats) {
	d.Batches += o.Batches
	d.BatchedAttempts += o.BatchedAttempts
	d.Steals += o.Steals
	d.StolenAttempts += o.StolenAttempts
}

// Sub returns the field-wise difference d - o.
func (d DispatchStats) Sub(o DispatchStats) DispatchStats {
	d.Batches -= o.Batches
	d.BatchedAttempts -= o.BatchedAttempts
	d.Steals -= o.Steals
	d.StolenAttempts -= o.StolenAttempts
	return d
}

// Fold mixes every counter into h, in field order (reflective, so a new
// counter is folded by construction).
func (d DispatchStats) Fold(h uint64) uint64 {
	v := reflect.ValueOf(d)
	for i := 0; i < v.NumField(); i++ {
		h = agg.Mix(h, v.Field(i).Uint())
	}
	return h
}
