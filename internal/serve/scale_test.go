package serve_test

import (
	"reflect"
	"testing"

	"sgxbench/internal/core"
	"sgxbench/internal/serve"
)

// openCfg returns an open-loop scenario over the synthetic workload:
// many clients submitting on Poisson clocks into a 16-worker DiE pool.
// At 256 clients the offered load saturates even the batched pool, so
// measured throughput reflects each dispatch mode's capacity — for the
// unbatched global queue that capacity is dominated by the two
// worker transitions per attempt (2 x 8000 cycles against 10k service),
// which is exactly what batching amortizes.
func openCfg(clients int) serve.Config {
	return serve.Config{
		Clients: clients, Workers: 16, RequestsPerClient: 8,
		Sync: serve.SyncLockFree, Mem: serve.MemPreSized,
		JitterPct: 10, Seed: 7,
		Arrival: &serve.ArrivalPlan{Kind: serve.ArrivalPoisson, MeanGapCycles: 100_000},
	}
}

// TestShardedWorkConservation: sharded dispatch must finish every
// request, actually steal under imbalance, and stay deterministic.
func TestShardedWorkConservation(t *testing.T) {
	w := synthetic(core.SGXDiE, 10_000, 0)
	c := openCfg(256)
	c.Dispatch = serve.DispatchSharded
	a := mustSim(t, w, c)
	if want := c.Clients * c.RequestsPerClient; a.Requests != want || a.Succeeded != want {
		t.Fatalf("sharded run finished %d/%d requests, want %d", a.Succeeded, a.Requests, want)
	}
	if a.DispatchStats.Steals == 0 || a.DispatchStats.StolenAttempts < a.DispatchStats.Steals {
		t.Errorf("expected work stealing under bursty imbalance, got %+v", a.DispatchStats)
	}
	b := mustSim(t, w, c)
	if a.Check != b.Check || a.DispatchStats != b.DispatchStats {
		t.Errorf("sharded replay diverged: %+v vs %+v", a.DispatchStats, b.DispatchStats)
	}
}

// TestBatchAmortizesTransitions: with batching, the worker-side
// ECALL/EEXIT pairs are paid per batch instead of per attempt, so the
// transition count must drop and the mean batch size must exceed one
// under queue pressure.
func TestBatchAmortizesTransitions(t *testing.T) {
	w := synthetic(core.SGXDiE, 10_000, 0)
	base := openCfg(256)
	unbatched := mustSim(t, w, base)
	batched := base
	batched.Batch = 16
	bres := mustSim(t, w, batched)
	if bres.Breakdown.Transitions >= unbatched.Breakdown.Transitions {
		t.Errorf("batching did not amortize transitions: %d (batched) vs %d (unbatched)",
			bres.Breakdown.Transitions, unbatched.Breakdown.Transitions)
	}
	ds := bres.DispatchStats
	if ds.Batches == 0 || ds.BatchedAttempts <= ds.Batches {
		t.Errorf("no multi-attempt batches formed under overload: %+v", ds)
	}
	if bres.ThroughputQPS <= unbatched.ThroughputQPS {
		t.Errorf("batched throughput %.0f qps not above unbatched %.0f qps",
			bres.ThroughputQPS, unbatched.ThroughputQPS)
	}
}

// TestShardBatchBeatsGlobalAtScale is the in-package twin of the bench
// shard_scaling_ok gate: at 256 open-loop DiE clients whose offered
// load oversaturates the transition-bound global queue, sharded+batched
// dispatch must hold well over 1.5x the global throughput with a lower
// p99.
func TestShardBatchBeatsGlobalAtScale(t *testing.T) {
	w := synthetic(core.SGXDiE, 10_000, 0)
	global := mustSim(t, w, openCfg(256))
	sb := openCfg(256)
	sb.Dispatch = serve.DispatchSharded
	sb.Batch = 16
	sbres := mustSim(t, w, sb)
	if ratio := sbres.ThroughputQPS / global.ThroughputQPS; ratio < 1.5 {
		t.Errorf("sharded+batched/global throughput = %.2fx, want >= 1.5x", ratio)
	}
	if sbres.P99 >= global.P99 {
		t.Errorf("sharded+batched p99 %d not below global %d", sbres.P99, global.P99)
	}
}

// TestOpenLoopArrivals: every arrival process completes the request
// budget deterministically, and distinct processes produce distinct
// deterministic timelines (different checks) at the same mean rate.
func TestOpenLoopArrivals(t *testing.T) {
	w := synthetic(core.SGXDiE, 10_000, 0)
	plans := []*serve.ArrivalPlan{
		{Kind: serve.ArrivalUniform, MeanGapCycles: 300_000},
		{Kind: serve.ArrivalPoisson, MeanGapCycles: 300_000},
		{Kind: serve.ArrivalBursty, MeanGapCycles: 300_000, BurstSize: 8},
		{Kind: serve.ArrivalDiurnal, MeanGapCycles: 300_000, RampPeriodCycles: 10_000_000},
		{Kind: serve.ArrivalHeavyTail, MeanGapCycles: 300_000},
	}
	checks := map[uint64]string{}
	for _, p := range plans {
		c := openCfg(64)
		c.Arrival = p
		a := mustSim(t, w, c)
		if want := c.Clients * c.RequestsPerClient; a.Requests != want {
			t.Fatalf("%s: finished %d requests, want %d", p.Kind, a.Requests, want)
		}
		b := mustSim(t, w, c)
		if a.Check != b.Check {
			t.Errorf("%s: open-loop replay diverged", p.Kind)
		}
		if prev, dup := checks[a.Check]; dup {
			t.Errorf("%s and %s produced identical timelines (check %#x)", p.Kind, prev, a.Check)
		}
		checks[a.Check] = p.Kind.String()
	}
}

// TestOpenLoopOverloadQueues pins the defining open-loop property:
// arrivals do not wait for responses, so driving the same pool harder
// (shorter gaps) piles up queueing delay instead of throttling load —
// p99 must grow sharply while the closed-loop variant's cannot.
func TestOpenLoopOverloadQueues(t *testing.T) {
	w := synthetic(core.SGXDiE, 10_000, 0)
	mild := openCfg(64)
	mild.Arrival.MeanGapCycles = 2_000_000
	hot := openCfg(64)
	hot.Arrival.MeanGapCycles = 40_000
	m := mustSim(t, w, mild)
	h := mustSim(t, w, hot)
	if h.P99 < 4*m.P99 {
		t.Errorf("overload p99 %d not >= 4x light-load p99 %d", h.P99, m.P99)
	}
	if h.Breakdown.QueueWaitCycles <= m.Breakdown.QueueWaitCycles {
		t.Errorf("overload queue wait %d not above light load %d",
			h.Breakdown.QueueWaitCycles, m.Breakdown.QueueWaitCycles)
	}
}

// TestThinkHeavyTailPreservesMean: the heavy-tail think option keeps the
// closed loop deterministic and changes the timeline without changing
// the request count.
func TestThinkHeavyTailPreservesMean(t *testing.T) {
	w := synthetic(core.SGXDiE, 10_000, 0)
	c := cfg(serve.SyncLockFree, serve.MemPreSized)
	c.ThinkCycles = 500_000
	plain := mustSim(t, w, c)
	c.ThinkHeavyTail = true
	tail := mustSim(t, w, c)
	if tail.Requests != plain.Requests {
		t.Fatalf("heavy-tail think changed the request count: %d vs %d", tail.Requests, plain.Requests)
	}
	if tail.Check == plain.Check {
		t.Errorf("heavy-tail think produced an identical timeline")
	}
	again := mustSim(t, w, c)
	if tail.Check != again.Check {
		t.Errorf("heavy-tail think replay diverged")
	}
}

// TestShardedAdmissionPerShard: admission control still sheds under
// sharded dispatch (the limit applies per shard queue).
func TestShardedAdmissionPerShard(t *testing.T) {
	w := synthetic(core.SGXDiE, 10_000, 0)
	c := openCfg(256)
	c.Arrival.MeanGapCycles = 40_000 // far past saturation
	c.Dispatch = serve.DispatchSharded
	c.AdmitDepth = 4
	c.MaxRetries = 2
	r := mustSim(t, w, c)
	if r.Breakdown.Shed == 0 {
		t.Errorf("overloaded sharded pool with AdmitDepth=4 shed nothing: %+v", r.Breakdown)
	}
	if want := c.Clients * c.RequestsPerClient; r.Requests != want {
		t.Errorf("terminal requests %d, want %d", r.Requests, want)
	}
}

// fillDispatchStats mirrors fillBreakdown for the dispatch counters.
func fillDispatchStats(t *testing.T, d *serve.DispatchStats, base uint64) {
	t.Helper()
	v := reflect.ValueOf(d).Elem()
	for i := 0; i < v.NumField(); i++ {
		f := v.Field(i)
		if f.Kind() != reflect.Uint64 {
			t.Fatalf("DispatchStats has a field of unsupported kind %v: teach fillDispatchStats (and Add/Sub) about it", f.Kind())
		}
		f.SetUint(base * uint64(i+1))
	}
}

// TestDispatchStatsCoverAllFields extends the Breakdown completeness
// discipline to DispatchStats: Add/Sub round-trip and Fold sensitivity
// over every field.
func TestDispatchStatsCoverAllFields(t *testing.T) {
	var a, b, want serve.DispatchStats
	fillDispatchStats(t, &a, 5)
	fillDispatchStats(t, &b, 2)
	fillDispatchStats(t, &want, 3)
	if got := a.Sub(b); got != want {
		t.Errorf("DispatchStats.Sub misses a field:\ngot:  %+v\nwant: %+v", got, want)
	}
	sum := a
	sum.Add(b)
	if got := sum.Sub(b); got != a {
		t.Errorf("(a+b)-b != a:\ngot:  %+v\nwant: %+v", got, a)
	}
	h0 := a.Fold(0xcbf29ce484222325)
	v := reflect.ValueOf(&a).Elem()
	for i := 0; i < v.NumField(); i++ {
		mutated := a
		mv := reflect.ValueOf(&mutated).Elem().Field(i)
		mv.SetUint(mv.Uint() + 1)
		if mutated.Fold(0xcbf29ce484222325) == h0 {
			t.Errorf("Fold insensitive to field %s", v.Type().Field(i).Name)
		}
	}
}

// TestScaleParseRoundTrip covers the new flag-facing parsers.
func TestScaleParseRoundTrip(t *testing.T) {
	for _, d := range []serve.DispatchKind{serve.DispatchGlobal, serve.DispatchSharded} {
		got, err := serve.ParseDispatchKind(d.String())
		if err != nil || got != d {
			t.Errorf("ParseDispatchKind(%q) = %v, %v", d.String(), got, err)
		}
	}
	for _, k := range []serve.ArrivalKind{serve.ArrivalUniform, serve.ArrivalPoisson,
		serve.ArrivalBursty, serve.ArrivalDiurnal, serve.ArrivalHeavyTail} {
		got, err := serve.ParseArrivalKind(k.String())
		if err != nil || got != k {
			t.Errorf("ParseArrivalKind(%q) = %v, %v", k.String(), got, err)
		}
	}
	if _, err := serve.ParseDispatchKind("bogus"); err == nil {
		t.Error("ParseDispatchKind accepted bogus")
	}
	if _, err := serve.ParseArrivalKind("bogus"); err == nil {
		t.Error("ParseArrivalKind accepted bogus")
	}
}
