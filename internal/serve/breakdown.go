package serve

import (
	"reflect"

	"sgxbench/internal/agg"
)

// Breakdown accounts where the served requests' cycles went, summed over
// all requests of a scenario. Together with the latency percentiles it
// is the serving-layer analogue of engine.Stats: cmd/diag -serve prints
// it per scenario and the golden-gated check value folds every field.
//
// The completeness discipline mirrors engine.Stats: phase deltas are
// taken with Sub, and TestBreakdownSubCoversAllFields fails if a newly
// added counter is omitted from Add or Sub.
type Breakdown struct {
	// Requests is the number of completed requests.
	Requests uint64 `json:"requests"`
	// Transitions counts one-way enclave transitions (EENTER or EEXIT);
	// zero outside enclaves.
	Transitions uint64 `json:"transitions"`
	// TransitionCycles is the cycles those transitions cost.
	TransitionCycles uint64 `json:"transition_cycles"`
	// QueueWaitCycles is the time requests sat in the dispatch queue
	// between being enqueued and being handed to a worker.
	QueueWaitCycles uint64 `json:"queue_wait_cycles"`
	// LockCycles is the full dispatch-lock path cost (sleep latency,
	// critical sections, contended hold extensions) over all pushes and
	// pops.
	LockCycles uint64 `json:"lock_cycles"`
	// CommitWaitCycles is the time workers waited on the enclave-global
	// EDMM page-commit serialization before their own commits started.
	CommitWaitCycles uint64 `json:"commit_wait_cycles"`
	// CommitCycles is the page-commit work itself (EDMM protocol inside
	// enclaves, minor faults outside).
	CommitCycles uint64 `json:"commit_cycles"`
	// PagesCommitted is the number of 4 KiB pages committed at run time.
	PagesCommitted uint64 `json:"pages_committed"`
	// ServiceCycles is the query-execution work actually performed by
	// workers, including work on attempts the client had already
	// abandoned (the server is deadline-unaware) and the partial work
	// of transiently aborted attempts. Work lost to enclave crashes
	// vanishes with the enclave and is not counted.
	ServiceCycles uint64 `json:"service_cycles"`
	// Timeouts counts attempts abandoned by their client's deadline.
	Timeouts uint64 `json:"timeouts"`
	// Retries counts re-issued attempts (after a shed, timeout, abort
	// or crash-lost attempt), i.e. attempts beyond each logical
	// request's first.
	Retries uint64 `json:"retries"`
	// Shed counts submissions rejected by queue-depth admission
	// control.
	Shed uint64 `json:"shed"`
	// Crashes counts enclave crashes across the worker pool.
	Crashes uint64 `json:"crashes"`
	// RebuildCycles is the total wall time workers were out of service
	// across crashes: teardown, waiting on the serialized kernel
	// enclave-management lock, and the ECREATE/EADD/EINIT-scale
	// rebuild itself.
	RebuildCycles uint64 `json:"rebuild_cycles"`
	// AEXEvents counts asynchronous enclave exits injected by storm
	// windows; AEXCycles is the wall time they cost.
	AEXEvents uint64 `json:"aex_events"`
	AEXCycles uint64 `json:"aex_cycles"`
}

// Add accumulates o into b, field-wise.
func (b *Breakdown) Add(o Breakdown) {
	b.Requests += o.Requests
	b.Transitions += o.Transitions
	b.TransitionCycles += o.TransitionCycles
	b.QueueWaitCycles += o.QueueWaitCycles
	b.LockCycles += o.LockCycles
	b.CommitWaitCycles += o.CommitWaitCycles
	b.CommitCycles += o.CommitCycles
	b.PagesCommitted += o.PagesCommitted
	b.ServiceCycles += o.ServiceCycles
	b.Timeouts += o.Timeouts
	b.Retries += o.Retries
	b.Shed += o.Shed
	b.Crashes += o.Crashes
	b.RebuildCycles += o.RebuildCycles
	b.AEXEvents += o.AEXEvents
	b.AEXCycles += o.AEXCycles
}

// Sub returns the field-wise difference b - o, where o is an earlier
// snapshot of the same accumulator. TestBreakdownSubCoversAllFields
// fails if a newly added field is omitted here.
func (b Breakdown) Sub(o Breakdown) Breakdown {
	b.Requests -= o.Requests
	b.Transitions -= o.Transitions
	b.TransitionCycles -= o.TransitionCycles
	b.QueueWaitCycles -= o.QueueWaitCycles
	b.LockCycles -= o.LockCycles
	b.CommitWaitCycles -= o.CommitWaitCycles
	b.CommitCycles -= o.CommitCycles
	b.PagesCommitted -= o.PagesCommitted
	b.ServiceCycles -= o.ServiceCycles
	b.Timeouts -= o.Timeouts
	b.Retries -= o.Retries
	b.Shed -= o.Shed
	b.Crashes -= o.Crashes
	b.RebuildCycles -= o.RebuildCycles
	b.AEXEvents -= o.AEXEvents
	b.AEXCycles -= o.AEXCycles
	return b
}

// Fold mixes every Breakdown counter into h, in field order. It walks
// the struct reflectively so a newly added counter is folded into the
// golden check value by construction (TestBreakdownFoldCoversAllFields
// pins the sensitivity); fillBreakdown's kind check keeps the fields
// uint64-only.
func (b Breakdown) Fold(h uint64) uint64 {
	v := reflect.ValueOf(b)
	for i := 0; i < v.NumField(); i++ {
		h = agg.Mix(h, v.Field(i).Uint())
	}
	return h
}
