package serve

import (
	"container/heap"
	"fmt"
	"sort"

	"sgxbench/internal/agg"
	"sgxbench/internal/sgx"
)

// Config describes one serving scenario over a calibrated Workload.
type Config struct {
	// Clients is the number of closed-loop clients: each has one request
	// in flight, thinks for ThinkCycles after a response, then issues
	// the next (default 1).
	Clients int
	// Workers is the enclave worker-pool size (default 1).
	Workers int
	// RequestsPerClient is how many logical requests each client issues
	// (default 1). Retried attempts do not count extra.
	RequestsPerClient int
	// Sync selects the dispatch queue's synchronization model.
	Sync SyncKind
	// Mem selects the memory-provisioning mode.
	Mem MemMode
	// Weights gives the request mix over the workload's classes; nil
	// means uniform. Length must match the workload's class count.
	Weights []int
	// ThinkCycles is the client pause between a response and the next
	// request; zero keeps every client saturating the pool.
	ThinkCycles uint64
	// JitterPct varies each request's service time deterministically by
	// up to ±JitterPct percent (seeded; zero disables).
	JitterPct int
	// Seed drives the deterministic class picks and jitter.
	Seed uint64

	// --- Resilience knobs (all zero: the clean pre-fault behaviour) ---

	// Fault injects a deterministic failure schedule (nil: fault-free).
	Fault *FaultPlan
	// DeadlineCycles is the client-side per-attempt deadline: an
	// attempt not answered this many cycles after its issue is
	// abandoned and counts a timeout. The server is deadline-unaware —
	// a worker that pops an abandoned attempt still executes it, which
	// is exactly the wasted work that melts the unbounded-queue
	// variant down under faults. Zero disables deadlines.
	DeadlineCycles uint64
	// MaxRetries is how many extra attempts a client gives a logical
	// request after a shed, timeout, transient abort or crash loss;
	// exhausting them fails the request. Zero: fail on first error.
	MaxRetries int
	// BackoffBase and BackoffCap shape the client retry backoff:
	// attempt n waits min(BackoffBase<<(n-1), BackoffCap) cycles,
	// spread by deterministic jitter so retries cannot arrive in
	// lockstep. BackoffBase zero retries immediately.
	BackoffBase uint64
	BackoffCap  uint64
	// AdmitDepth is the queue-depth admission limit: a submission that
	// finds this many requests already queued is shed at the dispatch
	// lock (a cheap rejection the client can retry) instead of
	// deepening the queue. Zero: unbounded queue, never shed.
	AdmitDepth int
}

func (c Config) normalized() Config {
	if c.Clients < 1 {
		c.Clients = 1
	}
	if c.Workers < 1 {
		c.Workers = 1
	}
	if c.RequestsPerClient < 1 {
		c.RequestsPerClient = 1
	}
	return c
}

// Name returns the scenario's bench workload identifier.
func (c Config) Name() string {
	return fmt.Sprintf("serve.%s.%s", c.Sync, c.Mem)
}

// ClientSummary is one client's latency summary.
type ClientSummary struct {
	Requests   int    `json:"requests"`
	MeanCycles uint64 `json:"mean_cycles"`
	MaxCycles  uint64 `json:"max_cycles"`
}

// ClassSummary is one query class's latency summary.
type ClassSummary struct {
	Name       string `json:"name"`
	Requests   int    `json:"requests"`
	MeanCycles uint64 `json:"mean_cycles"`
}

// Result reports one simulated serving scenario.
type Result struct {
	Setting string `json:"setting"`
	Queue   string `json:"queue"` // resolved sgx.QueueModel name
	Config  Config `json:"config"`
	// Requests is the number of logical requests that reached a
	// terminal state (Clients x RequestsPerClient).
	Requests int `json:"requests"`
	// Succeeded and Failed split Requests into answered requests and
	// requests dropped after exhausting their retry budget.
	Succeeded int `json:"succeeded"`
	Failed    int `json:"failed"`
	// MakespanCycles is the virtual time from the first issue to the
	// last terminal event; the scenario's simulated wall clock.
	MakespanCycles uint64 `json:"makespan_cycles"`
	// ThroughputQPS counts every terminal request over the makespan in
	// platform seconds; GoodputQPS counts only successes — the number
	// the degradation gate compares.
	ThroughputQPS float64 `json:"throughput_qps"`
	GoodputQPS    float64 `json:"goodput_qps"`
	// Latency percentiles (nearest-rank) over all requests, in cycles.
	// A failed request's latency runs to the moment it was dropped.
	P50 uint64 `json:"p50_cycles"`
	P95 uint64 `json:"p95_cycles"`
	P99 uint64 `json:"p99_cycles"`
	Max uint64 `json:"max_cycles"`

	Breakdown Breakdown       `json:"breakdown"`
	PerClient []ClientSummary `json:"per_client"`
	PerClass  []ClassSummary  `json:"per_class"`
	// Faults is the injected fault timeline (crashes and rebuild
	// completions on the virtual clock), capped at maxFaultEvents;
	// empty for fault-free scenarios. The Breakdown counters stay
	// exact past the cap.
	Faults []FaultEvent `json:"fault_events,omitempty"`
	// Check folds every latency (in completion order), the breakdown,
	// the outcome split and the makespan into one FNV-1a value — the
	// deterministic number golden gates compare.
	Check uint64 `json:"check"`
}

// Event kinds. Issue submits a client's next attempt (ECALL + queue
// push or shed), enqueue makes a pushed attempt poppable, done
// completes a worker's execution, timeout abandons an attempt
// client-side, crash kills a worker's enclave, rebuilt returns the
// worker to the pool.
const (
	evIssue = iota
	evEnqueue
	evDone
	evTimeout
	evCrash
	evRebuilt
)

type event struct {
	t    uint64
	seq  uint64 // schedule order: deterministic tie-break at equal times
	kind int
	who  int    // client (evIssue), attempt (evEnqueue/evTimeout), worker (evDone/evCrash/evRebuilt)
	gen  uint64 // worker generation (evDone): stale completions are ignored
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].t != h[j].t {
		return h[i].t < h[j].t
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// attempt is one issued try of a logical request.
type attempt struct {
	client    int
	class     int
	service   uint64
	issue     uint64 // this attempt's issue time
	enq       uint64 // time it became poppable
	abandoned bool   // client gave up (deadline passed)
	done      bool   // server finished it (or it was lost to a crash)
}

// clientState tracks one closed-loop client's current logical request.
type clientState struct {
	issued     int // logical requests issued so far
	attempt    int // attempts used by the current logical request
	class      int
	service    uint64
	firstIssue uint64
	active     bool
}

type worker struct {
	att       int
	busy      bool
	down      bool // enclave torn down, rebuild pending
	inIdle    bool
	gen       uint64
	abort     bool   // planned transient abort of the running attempt
	workDone  uint64 // planned executed work of the running attempt
	nextCrash uint64
	crashes   uint64 // per-worker crash count, salts the next schedule draw
}

// sim is the mutable state of one scenario replay.
type sim struct {
	w     *Workload
	cfg   Config
	q     sgx.QueueModel
	trans uint64 // one-way transition cost (0 outside enclaves)
	fc    sgx.FaultCosts

	events eventHeap
	seq    uint64

	queue       []int // FIFO of attempt indices (head index avoids O(n) shifts)
	qHead       int
	idle        []int // idle worker ids, FIFO
	iHead       int
	workers     []worker
	atts        []attempt
	clients     []clientState
	lockFree    uint64 // dispatch-lock state
	edmmFree    uint64 // enclave-global page-commit serialization
	rebuildFree uint64 // kernel enclave-management lock (crash rebuilds)

	bd        Breakdown
	lats      []uint64 // latency per logical request, terminal order
	succeeded int
	failed    int
	makespan  uint64
	perClient []ClientSummary
	classReq  []int
	classLat  []uint64
	faults    []FaultEvent
}

// splitmix64 is the standard SplitMix64 mixer — the deterministic,
// dependency-free randomness source for class picks, jitter, fault
// draws and backoff spread.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

func (s *sim) schedule(t uint64, kind, who int) {
	s.seq++
	heap.Push(&s.events, event{t: t, seq: s.seq, kind: kind, who: who})
}

func (s *sim) scheduleDone(t uint64, w int, gen uint64) {
	s.seq++
	heap.Push(&s.events, event{t: t, seq: s.seq, kind: evDone, who: w, gen: gen})
}

// lockPass runs one critical section of the dispatch lock starting at t
// and returns its completion time. The contention semantics mirror
// exec.ReplayQueue: a thread that finds the lock taken waits out the
// current hold plus the model's sleep latency, and a contended handover
// extends the hold by the model's extension (the SGX SDK mutex keeps
// the mutex locked across the owner's wake-up transitions).
func (s *sim) lockPass(t uint64) uint64 {
	acquire := t
	hold := s.q.PopCycles
	if t < s.lockFree {
		acquire = s.lockFree + s.q.SleepLatency
		hold += s.q.HoldExtension
	}
	s.lockFree = acquire + hold
	s.bd.LockCycles += acquire + hold - t
	return acquire + hold
}

// queued is the current dispatch-queue depth.
func (s *sim) queued() int { return len(s.queue) - s.qHead }

// issue submits client c's next attempt at time t: on a fresh logical
// request the class pick and service draw, then the client's ECALL, the
// push through the dispatch lock — where admission control may shed it
// — and the EEXIT.
func (s *sim) issue(c int, t uint64) {
	cs := &s.clients[c]
	if !cs.active {
		r := splitmix64(s.cfg.Seed ^ uint64(c)<<32 ^ uint64(cs.issued))
		cs.class = s.pickClass(r)
		base := s.w.Classes[cs.class].ServiceCycles
		cs.service = base
		if j := s.cfg.JitterPct; j > 0 {
			// base scaled into [100-j, 100+j] percent, deterministically.
			cs.service = base * (100 - uint64(j) + splitmix64(r)%uint64(2*j+1)) / 100
		}
		cs.active = true
		cs.attempt = 0
		cs.firstIssue = t
	}
	cs.attempt++
	if s.trans > 0 {
		s.bd.Transitions += 2 // submit ECALL + EEXIT
		s.bd.TransitionCycles += 2 * s.trans
	}
	pushDone := s.lockPass(t + s.trans)
	if s.cfg.AdmitDepth > 0 && s.queued() >= s.cfg.AdmitDepth {
		// Admission control: the push found the queue at its depth
		// limit and is rejected inside the same critical section — a
		// cheap, immediate failure the client can back off from,
		// instead of a request the pool would serve long past its
		// deadline.
		s.bd.Shed++
		s.attemptFailed(c, pushDone)
		return
	}
	s.atts = append(s.atts, attempt{client: c, class: cs.class, service: cs.service, issue: t})
	idx := len(s.atts) - 1
	s.schedule(pushDone, evEnqueue, idx)
	if s.cfg.DeadlineCycles > 0 {
		s.schedule(t+s.cfg.DeadlineCycles, evTimeout, idx)
	}
}

func (s *sim) pickClass(r uint64) int {
	ws := s.cfg.Weights
	if ws == nil {
		return int(r % uint64(len(s.w.Classes)))
	}
	total := 0
	for _, w := range ws {
		total += w
	}
	pick := int(r % uint64(total))
	for i, w := range ws {
		pick -= w
		if pick < 0 {
			return i
		}
	}
	return len(ws) - 1
}

// backoff returns attempt n's retry delay: capped exponential growth
// from BackoffBase, with deterministic jitter spreading concurrent
// retries over the top quarter of the interval.
func (s *sim) backoff(c, n int) uint64 {
	b := s.cfg.BackoffBase
	if b == 0 {
		return 0
	}
	for i := 1; i < n && i < 63; i++ {
		b <<= 1
		if bc := s.cfg.BackoffCap; bc > 0 && b >= bc {
			b = bc
			break
		}
	}
	if j := b / 4; j > 0 {
		r := splitmix64(s.cfg.Seed ^ 0x5bf03635c0ffee ^ uint64(c)<<24 ^ s.bd.Retries)
		b = b - j + r%(2*j+1)
	}
	return b
}

// attemptFailed handles a retriable failure (shed, timeout, transient
// abort, crash loss) of client c's current attempt at time t: back off
// and retry if budget remains, otherwise drop the logical request.
func (s *sim) attemptFailed(c int, t uint64) {
	cs := &s.clients[c]
	if cs.attempt <= s.cfg.MaxRetries {
		s.bd.Retries++
		s.schedule(t+s.backoff(c, cs.attempt), evIssue, c)
		return
	}
	s.finishRequest(c, t, false)
}

// finishRequest records the terminal state of client c's current
// logical request at time t and closes the client loop (think, then the
// next logical request).
func (s *sim) finishRequest(c int, t uint64, success bool) {
	cs := &s.clients[c]
	lat := t - cs.firstIssue
	s.lats = append(s.lats, lat)
	s.bd.Requests++
	if success {
		s.succeeded++
	} else {
		s.failed++
	}
	if t > s.makespan {
		s.makespan = t
	}
	pc := &s.perClient[c]
	pc.Requests++
	pc.MeanCycles += lat // sum here; divided at the end
	if lat > pc.MaxCycles {
		pc.MaxCycles = lat
	}
	s.classReq[cs.class]++
	s.classLat[cs.class] += lat
	cs.active = false
	if cs.issued < s.cfg.RequestsPerClient {
		cs.issued++
		s.schedule(t+s.cfg.ThinkCycles, evIssue, c)
	}
}

// advanceWork executes work cycles of enclave execution starting at
// wall time t under the fault plan's AEX storm windows: inside a
// window, every StormAEXGap cycles of execution absorb one AEX of
// FaultCosts.AEX wall cycles that advances no work. Returns the
// completion time and the AEX count. Pure integer arithmetic — the
// deterministic heart of the storm model.
func (s *sim) advanceWork(t, work uint64) (uint64, uint64) {
	p := s.cfg.Fault
	if p == nil || p.StormInterval == 0 || work == 0 {
		return t + work, 0
	}
	gap, aex := p.StormAEXGap, s.fc.AEX
	var events uint64
	for work > 0 {
		k := t / p.StormInterval
		ws := k * p.StormInterval
		we := ws + p.StormLen
		if k >= 1 && t < we {
			// Inside a storm window: blocks of gap work cost gap+aex
			// wall; the window end is a hard wall bound.
			avail := we - t
			blk := gap + aex
			nb := avail / blk
			rem := avail % blk
			maxWork := nb*gap + min(rem, gap)
			if work <= maxWork {
				nFull := work / gap
				events += nFull
				return t + work + nFull*aex, events
			}
			work -= maxWork
			events += nb
			if rem >= gap {
				events++ // the partial block's AEX straddles the window end
			}
			t = we
		} else {
			// Outside any window: run plainly until the next one opens.
			nw := (k + 1) * p.StormInterval
			span := nw - t
			if work <= span {
				return t + work, events
			}
			work -= span
			t = nw
		}
	}
	return t, events
}

// crash kills worker w's enclave at time t: the in-flight attempt (if
// any) is lost, and the worker leaves the pool for teardown plus a
// rebuild serialized on the kernel's enclave-management lock.
func (s *sim) crash(w int, t uint64) {
	wk := &s.workers[w]
	wk.crashes++
	s.bd.Crashes++
	s.recordFault(FaultEvent{T: t, Kind: "crash", Worker: w})
	if wk.busy {
		wk.gen++ // the pending evDone is now stale
		wk.busy = false
		att := &s.atts[wk.att]
		if !att.done {
			att.done = true
			if !att.abandoned {
				s.attemptFailed(att.client, t)
			}
		}
	}
	wk.down = true
	pages := s.cfg.Fault.RebuildPages
	if pages == 0 {
		for _, cc := range s.w.Classes {
			pages += cc.Pages
		}
	}
	start := t + s.fc.Teardown
	if s.rebuildFree > start {
		start = s.rebuildFree
	}
	done := start + s.fc.RebuildBase + uint64(pages)*s.fc.RebuildPage
	s.rebuildFree = done
	s.bd.RebuildCycles += done - t
	s.schedule(done, evRebuilt, w)
	// The replacement enclave's own crash clock starts after the
	// rebuild completes.
	wk.nextCrash = done + s.crashDelay(w, wk.crashes)
	s.schedule(wk.nextCrash, evCrash, w)
}

// crashDelay draws worker w's deterministic time-to-next-crash: spread
// over [interval/2, 3*interval/2) so the pool's enclaves neither die in
// lockstep nor settle into one stable phase.
func (s *sim) crashDelay(w int, nth uint64) uint64 {
	p := s.cfg.Fault
	r := splitmix64(p.Seed ^ 0xc4a54ed ^ uint64(w)<<32 ^ nth)
	return p.CrashInterval/2 + r%p.CrashInterval
}

func (s *sim) recordFault(e FaultEvent) {
	if len(s.faults) < maxFaultEvents {
		s.faults = append(s.faults, e)
	}
}

// popIdle returns an idle, alive worker id, or -1. Crashed workers that
// were idle stay in the FIFO as tombstones and are skipped here; they
// re-enter via evRebuilt.
func (s *sim) popIdle() int {
	for s.iHead < len(s.idle) {
		w := s.idle[s.iHead]
		s.iHead++
		if s.iHead == len(s.idle) { // compact the drained FIFO
			s.idle = s.idle[:0]
			s.iHead = 0
		}
		s.workers[w].inIdle = false
		if !s.workers[w].down {
			return w
		}
	}
	return -1
}

func (s *sim) pushIdle(w int) {
	if !s.workers[w].inIdle {
		s.workers[w].inIdle = true
		s.idle = append(s.idle, w)
	}
}

// dispatch has worker w pop the queue head at time t and computes the
// attempt's execution timeline: pop through the dispatch lock, worker
// ECALL, page commits, service stretched by any AEX storm windows, a
// possible transient abort, worker EEXIT.
func (s *sim) dispatch(w int, t uint64) {
	popDone := s.lockPass(t)
	idx := s.queue[s.qHead]
	s.qHead++
	if s.qHead == len(s.queue) {
		s.queue = s.queue[:0]
		s.qHead = 0
	}
	att := &s.atts[idx]
	s.bd.QueueWaitCycles += popDone - att.enq

	start := popDone + s.trans // worker ECALL
	if s.trans > 0 {
		s.bd.Transitions += 2 // worker ECALL now, EEXIT at completion
		s.bd.TransitionCycles += 2 * s.trans
	}
	if s.cfg.Mem == MemDynamic {
		pages := uint64(s.w.Classes[att.class].Pages)
		s.bd.PagesCommitted += pages
		if s.w.InEnclave {
			// EDMM: the worker runs the AEX/EACCEPT protocol for its own
			// pages, and the kernel serializes commits enclave-wide.
			commitStart := start
			if s.edmmFree > commitStart {
				commitStart = s.edmmFree
			}
			s.bd.CommitWaitCycles += commitStart - start
			cost := pages * s.w.OS.EDMMPage
			s.bd.CommitCycles += cost
			start = commitStart + cost
			s.edmmFree = start
		} else {
			// Plain minor faults: per-worker cost, no serialization.
			cost := pages * s.w.OS.MinorFault
			s.bd.CommitCycles += cost
			start += cost
		}
	}
	wk := &s.workers[w]
	wk.gen++
	wk.busy = true
	wk.att = idx
	wk.abort = false
	work := att.service
	if p := s.cfg.Fault; p != nil && p.FailPct > 0 {
		fr := splitmix64(p.Seed ^ 0xfa17 ^ uint64(idx)<<16)
		if int(fr%100) < p.FailPct {
			// Transient enclave-thread abort after a deterministic
			// fraction of the service: the partial work is wasted.
			wk.abort = true
			work = att.service * (1 + (fr>>8)%98) / 100
		}
	}
	end, aexN := s.advanceWork(start, work)
	s.bd.AEXEvents += aexN
	s.bd.AEXCycles += aexN * s.fc.AEX
	s.bd.ServiceCycles += work
	wk.workDone = work
	if wk.abort {
		end += s.fc.AbortDetect
	}
	done := end + s.trans // worker EEXIT
	s.scheduleDone(done, w, wk.gen)
}

// complete finishes worker w's execution at time t: a successful,
// un-abandoned attempt answers its client; an aborted one triggers the
// retry path; an abandoned one was wasted work. Either way the freed
// worker pops the next queued attempt.
func (s *sim) complete(w int, t uint64) {
	wk := &s.workers[w]
	wk.busy = false
	att := &s.atts[wk.att]
	att.done = true
	if !att.abandoned {
		if wk.abort {
			s.attemptFailed(att.client, t)
		} else {
			s.finishRequest(att.client, t, true)
		}
	}
	if t > s.makespan {
		s.makespan = t
	}
	if s.queued() > 0 {
		s.dispatch(w, t)
	} else {
		s.pushIdle(w)
	}
}

// Simulate replays one serving scenario over the calibrated workload.
// Pure integer event-driven arithmetic on the virtual clock: the result
// is bit-reproducible across runs and engine paths. A structurally
// invalid Config (see Config.Validate) returns an error instead of a
// skewed replay.
func (w *Workload) Simulate(cfg Config) (*Result, error) {
	if err := cfg.Validate(len(w.Classes)); err != nil {
		return nil, err
	}
	cfg = cfg.normalized()
	s := &sim{
		w:         w,
		cfg:       cfg,
		q:         w.queueModel(cfg.Sync),
		workers:   make([]worker, cfg.Workers),
		clients:   make([]clientState, cfg.Clients),
		perClient: make([]ClientSummary, cfg.Clients),
		classReq:  make([]int, len(w.Classes)),
		classLat:  make([]uint64, len(w.Classes)),
	}
	if w.InEnclave {
		s.trans = w.OS.Transition
	}
	if cfg.Fault != nil {
		s.fc = cfg.Fault.costs()
	}
	for wi := 0; wi < cfg.Workers; wi++ {
		s.pushIdle(wi)
		if cfg.Fault != nil && cfg.Fault.CrashInterval > 0 {
			s.workers[wi].nextCrash = s.crashDelay(wi, 0)
			s.schedule(s.workers[wi].nextCrash, evCrash, wi)
		}
	}
	for c := 0; c < cfg.Clients; c++ {
		s.clients[c].issued = 1
		s.schedule(0, evIssue, c)
	}
	// (heap.Push from an empty heap maintains the invariant throughout;
	// no Init needed.)
	for s.events.Len() > 0 {
		ev := heap.Pop(&s.events).(event)
		switch ev.kind {
		case evIssue:
			s.issue(ev.who, ev.t)
		case evEnqueue:
			att := &s.atts[ev.who]
			if att.abandoned {
				// The deadline expired before the push even landed; the
				// client is already retrying.
				att.done = true
				break
			}
			att.enq = ev.t
			s.queue = append(s.queue, ev.who)
			if wi := s.popIdle(); wi >= 0 {
				s.dispatch(wi, ev.t)
			}
		case evDone:
			if wk := &s.workers[ev.who]; wk.busy && wk.gen == ev.gen {
				s.complete(ev.who, ev.t)
			}
		case evTimeout:
			att := &s.atts[ev.who]
			if !att.done && !att.abandoned {
				att.abandoned = true
				s.bd.Timeouts++
				s.attemptFailed(att.client, ev.t)
			}
		case evCrash:
			s.crash(ev.who, ev.t)
		case evRebuilt:
			wk := &s.workers[ev.who]
			wk.down = false
			s.recordFault(FaultEvent{T: ev.t, Kind: "rebuilt", Worker: ev.who})
			if s.queued() > 0 {
				s.dispatch(ev.who, ev.t)
			} else {
				s.pushIdle(ev.who)
			}
		}
		// Crash schedules stop once every client is done: without this
		// the crash-interval event chain would keep the loop alive
		// long after the last request completed. Terminal requests are
		// exactly Clients*RequestsPerClient, each counted once.
		if int(s.bd.Requests) == cfg.Clients*cfg.RequestsPerClient {
			break
		}
	}
	return s.result(), nil
}

// pctl returns the nearest-rank p-th percentile of the sorted latencies.
func pctl(sorted []uint64, p int) uint64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := (len(sorted)*p + 99) / 100
	if idx < 1 {
		idx = 1
	}
	return sorted[idx-1]
}

func (s *sim) result() *Result {
	res := &Result{
		Setting:        s.w.Setting.String(),
		Queue:          s.q.Name,
		Config:         s.cfg,
		Requests:       len(s.lats),
		Succeeded:      s.succeeded,
		Failed:         s.failed,
		MakespanCycles: s.makespan,
		Breakdown:      s.bd,
		PerClient:      s.perClient,
		Faults:         s.faults,
	}
	if s.makespan > 0 {
		secs := s.w.Plat.CyclesToSeconds(s.makespan)
		res.ThroughputQPS = float64(res.Requests) / secs
		res.GoodputQPS = float64(res.Succeeded) / secs
	}
	sorted := append([]uint64(nil), s.lats...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	res.P50 = pctl(sorted, 50)
	res.P95 = pctl(sorted, 95)
	res.P99 = pctl(sorted, 99)
	if n := len(sorted); n > 0 {
		res.Max = sorted[n-1]
	}
	for i := range res.PerClient {
		if r := res.PerClient[i].Requests; r > 0 {
			res.PerClient[i].MeanCycles /= uint64(r)
		}
	}
	for i, cc := range s.w.Classes {
		cs := ClassSummary{Name: cc.Name, Requests: s.classReq[i]}
		if cs.Requests > 0 {
			cs.MeanCycles = s.classLat[i] / uint64(cs.Requests)
		}
		res.PerClass = append(res.PerClass, cs)
	}
	res.Check = s.check(res)
	return res
}

// check folds the scenario's observable behaviour into one FNV-1a value:
// every latency in completion order, the outcome split, the breakdown,
// the makespan and the class mix. Shares the hash discipline of the
// pipeline check values.
func (s *sim) check(res *Result) uint64 {
	h := agg.FNVOffset64
	h = agg.Mix(h, uint64(res.Requests))
	h = agg.Mix(h, uint64(res.Succeeded))
	h = agg.Mix(h, uint64(res.Failed))
	h = agg.Mix(h, res.MakespanCycles)
	for _, l := range s.lats {
		h = agg.Mix(h, l)
	}
	h = res.Breakdown.Fold(h)
	for i := range s.classReq {
		h = agg.Mix(h, uint64(s.classReq[i]))
	}
	return h
}
