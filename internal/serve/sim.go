package serve

import (
	"container/heap"
	"fmt"
	"sort"

	"sgxbench/internal/agg"
	"sgxbench/internal/obs"
	"sgxbench/internal/sgx"
)

// Config describes one serving scenario over a calibrated Workload.
type Config struct {
	// Clients is the number of clients (default 1). Closed loop (nil
	// Arrival): each has one request in flight, thinks for ThinkCycles
	// after a response, then issues the next. Open loop (Arrival set):
	// each issues on its own arrival clock regardless of responses.
	Clients int
	// Workers is the enclave worker-pool size (default 1).
	Workers int
	// RequestsPerClient is how many logical requests each client issues
	// (default 1). Retried attempts do not count extra.
	RequestsPerClient int
	// Sync selects the dispatch queue's synchronization model.
	Sync SyncKind
	// Mem selects the memory-provisioning mode.
	Mem MemMode
	// Weights gives the request mix over the workload's classes; nil
	// means uniform. Length must match the workload's class count.
	Weights []int
	// ThinkCycles is the client pause between a response and the next
	// request; zero keeps every client saturating the pool. Ignored in
	// open loop (Arrival non-nil).
	ThinkCycles uint64
	// ThinkHeavyTail spreads the closed-loop think time with the
	// deterministic Pareto-like tail (mean stays ThinkCycles, a seeded
	// minority of pauses stretch to ~10x). Requires ThinkCycles > 0.
	ThinkHeavyTail bool
	// JitterPct varies each request's service time deterministically by
	// up to ±JitterPct percent (seeded; zero disables).
	JitterPct int
	// Seed drives the deterministic class picks, jitter, arrival gaps
	// and steal victim order.
	Seed uint64

	// --- Production-scale dispatch knobs (all zero: the original
	// single global queue with per-attempt enclave entries) ---

	// Dispatch selects the queue topology: one global queue, or one
	// queue per worker with deterministic work stealing.
	Dispatch DispatchKind
	// Batch lets a worker claim up to this many queued attempts in one
	// dispatch-lock critical section and serve them in a single enclave
	// entry, amortizing the two worker transitions (and any AEX-storm
	// exposure) across the batch. Results are handed back as each
	// attempt finishes (exit-less async completion); the worker's EEXIT
	// happens once, after the batch. 0 or 1: the original
	// one-attempt-per-entry path.
	Batch int
	// Arrival switches the scenario to open-loop traffic (see
	// ArrivalPlan). Nil keeps the closed loop.
	Arrival *ArrivalPlan

	// --- Resilience knobs (all zero: the clean pre-fault behaviour) ---

	// Fault injects a deterministic failure schedule (nil: fault-free).
	Fault *FaultPlan
	// DeadlineCycles is the client-side per-attempt deadline: an
	// attempt not answered this many cycles after its issue is
	// abandoned and counts a timeout. The server is deadline-unaware —
	// a worker that pops an abandoned attempt still executes it, which
	// is exactly the wasted work that melts the unbounded-queue
	// variant down under faults. Zero disables deadlines.
	DeadlineCycles uint64
	// MaxRetries is how many extra attempts a client gives a logical
	// request after a shed, timeout, transient abort or crash loss;
	// exhausting them fails the request. Zero: fail on first error.
	MaxRetries int
	// BackoffBase and BackoffCap shape the client retry backoff:
	// attempt n waits min(BackoffBase<<(n-1), BackoffCap) cycles,
	// spread by deterministic jitter so retries cannot arrive in
	// lockstep. BackoffBase zero retries immediately.
	BackoffBase uint64
	BackoffCap  uint64
	// AdmitDepth is the per-queue admission limit: a submission that
	// finds its target queue this deep is shed at the dispatch lock (a
	// cheap rejection the client can retry) instead of deepening the
	// queue. Under DispatchSharded the limit applies per shard. Zero:
	// unbounded queues, never shed.
	AdmitDepth int

	// --- Observability attachments (excluded from the serialized
	// scenario shape: they observe a replay, they are not part of it) ---

	// Trace, when set, receives per-attempt spans on the virtual clock:
	// submit/queue/service/batch intervals with worker, shard,
	// generation and retry attribution, plus shed/timeout/crash/rebuild
	// markers. Purely observational — the simulator only hands the
	// tracer values it computes anyway, so an attached tracer leaves
	// every simulated cycle and check value bit-identical (the
	// zero-perturbation differential tests pin this).
	Trace *obs.Tracer `json:"-"`
	// Metrics, when set, receives a gauge timeline (queue depths,
	// worker states, committed pages) sampled at its interval. Sampling
	// happens as the event loop passes each boundary and never
	// schedules events, so it cannot perturb event order.
	Metrics *obs.Metrics `json:"-"`

	// useHeap replays the scenario on the original container/heap event
	// queue instead of the timer wheel — the differential-test knob
	// proving both orderings are bit-identical.
	useHeap bool
}

func (c Config) normalized() Config {
	if c.Clients < 1 {
		c.Clients = 1
	}
	if c.Workers < 1 {
		c.Workers = 1
	}
	if c.RequestsPerClient < 1 {
		c.RequestsPerClient = 1
	}
	return c
}

// extended reports whether the scenario uses the production-scale
// machinery added after the original golden snapshots. The check value
// folds DispatchStats only then, so legacy scenarios stay bit-identical.
func (c Config) extended() bool {
	return c.Dispatch != DispatchGlobal || c.Batch > 1 || c.Arrival != nil || c.ThinkHeavyTail
}

// Name returns the scenario's bench workload identifier.
func (c Config) Name() string {
	return fmt.Sprintf("serve.%s.%s", c.Sync, c.Mem)
}

// ClientSummary is one client's latency summary.
type ClientSummary struct {
	Requests   int    `json:"requests"`
	MeanCycles uint64 `json:"mean_cycles"`
	MaxCycles  uint64 `json:"max_cycles"`
}

// ClassSummary is one query class's latency summary.
type ClassSummary struct {
	Name       string `json:"name"`
	Requests   int    `json:"requests"`
	MeanCycles uint64 `json:"mean_cycles"`
}

// Result reports one simulated serving scenario.
type Result struct {
	Setting string `json:"setting"`
	Queue   string `json:"queue"` // resolved sgx.QueueModel name
	Config  Config `json:"config"`
	// Requests is the number of logical requests that reached a
	// terminal state (Clients x RequestsPerClient).
	Requests int `json:"requests"`
	// Succeeded and Failed split Requests into answered requests and
	// requests dropped after exhausting their retry budget.
	Succeeded int `json:"succeeded"`
	Failed    int `json:"failed"`
	// MakespanCycles is the virtual time from the first issue to the
	// last terminal event; the scenario's simulated wall clock.
	MakespanCycles uint64 `json:"makespan_cycles"`
	// ThroughputQPS counts every terminal request over the makespan in
	// platform seconds; GoodputQPS counts only successes — the number
	// the degradation gate compares.
	ThroughputQPS float64 `json:"throughput_qps"`
	GoodputQPS    float64 `json:"goodput_qps"`
	// Latency percentiles (nearest-rank) over all requests, in cycles.
	// A failed request's latency runs to the moment it was dropped.
	P50 uint64 `json:"p50_cycles"`
	P95 uint64 `json:"p95_cycles"`
	P99 uint64 `json:"p99_cycles"`
	Max uint64 `json:"max_cycles"`

	Breakdown Breakdown `json:"breakdown"`
	// DispatchStats counts the sharded/batched dispatch machinery's
	// work; all-zero for legacy global unbatched scenarios.
	DispatchStats DispatchStats   `json:"dispatch_stats"`
	PerClient     []ClientSummary `json:"per_client"`
	PerClass      []ClassSummary  `json:"per_class"`
	// Faults is the injected fault timeline (crashes and rebuild
	// completions on the virtual clock), capped at maxFaultEvents;
	// empty for fault-free scenarios. The Breakdown counters stay
	// exact past the cap.
	Faults []FaultEvent `json:"fault_events,omitempty"`
	// FaultsDropped counts fault events past the Faults cap — the
	// explicit truncation signal (the timeline used to cut off at
	// maxFaultEvents silently). Not folded into Check: the counters
	// were always exact, only the event list truncates.
	FaultsDropped uint64 `json:"fault_events_dropped,omitempty"`
	// Check folds every latency (in completion order), the breakdown,
	// the outcome split and the makespan into one FNV-1a value — the
	// deterministic number golden gates compare.
	Check uint64 `json:"check"`

	// lats and hist back ExactPercentiles and LatencyHistogram.
	lats []uint64
	hist *obs.Histogram
}

// ExactPercentiles recomputes the latency summary from the raw
// per-request latencies by sorting — the O(n log n) oracle the reported
// histogram-backed percentiles are tested against. Each reported
// percentile is >= its exact value and within one obs.BucketWidth of
// it; Max is exact on both paths.
func (r *Result) ExactPercentiles() (p50, p95, p99, max uint64) {
	sorted := append([]uint64(nil), r.lats...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	if n := len(sorted); n > 0 {
		max = sorted[n-1]
	}
	return pctl(sorted, 50), pctl(sorted, 95), pctl(sorted, 99), max
}

// LatencyHistogram returns the run's log-bucketed latency distribution
// (one Record per terminal request, in completion order).
func (r *Result) LatencyHistogram() *obs.Histogram { return r.hist }

// Event kinds. Issue submits a request's next attempt (ECALL + queue
// push or shed), enqueue makes a pushed attempt poppable, done
// completes a worker's enclave entry, timeout abandons an attempt
// client-side, crash kills a worker's enclave, rebuilt returns the
// worker to the pool, arrive starts an open-loop client's next logical
// request, itemdone completes one attempt inside a batched entry.
const (
	evIssue = iota
	evEnqueue
	evDone
	evTimeout
	evCrash
	evRebuilt
	evArrive
	evItemDone
)

type event struct {
	t    uint64
	seq  uint64 // schedule order: deterministic tie-break at equal times
	kind int
	who  int    // request (evIssue), attempt (evEnqueue/evTimeout/evItemDone), worker (evDone/evCrash/evRebuilt), client (evArrive)
	gen  uint64 // worker generation (evDone/evItemDone): stale completions are ignored
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].t != h[j].t {
		return h[i].t < h[j].t
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// heapQueue adapts eventHeap to the eventQueue interface — the ordering
// oracle the timer wheel is differentially tested against.
type heapQueue struct{ h eventHeap }

func (q *heapQueue) push(e event) { heap.Push(&q.h, e) }
func (q *heapQueue) pop() event   { return heap.Pop(&q.h).(event) }
func (q *heapQueue) empty() bool  { return len(q.h) == 0 }

// request is one logical client request: the unit of the latency
// percentiles and the retry budget. Closed loop keeps one live slot per
// client; open loop appends a new one per arrival, so a client can have
// several in flight.
type request struct {
	client     int
	class      int
	attempt    int // attempts used so far
	service    uint64
	firstIssue uint64
	active     bool
}

// attempt is one issued try of a logical request.
type attempt struct {
	req       int
	class     int
	service   uint64
	issue     uint64 // this attempt's issue time
	enq       uint64 // time it became poppable
	shard     int    // queue it was pushed to
	worker    int    // worker executing it (batched path)
	abandoned bool   // client gave up (deadline passed)
	done      bool   // server finished it (or it was lost to a crash)
	aborted   bool   // batched path: transient abort planned at dispatch
}

// clientState tracks one client's issue progress.
type clientState struct {
	issued int // logical requests issued so far
}

type worker struct {
	att       int
	busy      bool
	down      bool // enclave torn down, rebuild pending
	inIdle    bool
	gen       uint64
	abort     bool  // planned transient abort of the running attempt (unbatched)
	batch     []int // attempts of the running batched entry
	steals    uint64
	nextCrash uint64
	crashes   uint64 // per-worker crash count, salts the next schedule draw
}

// shard is one dispatch queue with its own lock state. DispatchGlobal
// uses a single shard; DispatchSharded one per worker.
type shard struct {
	queue    []int // FIFO of attempt indices (head index avoids O(n) shifts)
	qHead    int
	lockFree uint64 // this queue's dispatch-lock state
}

func (sh *shard) depth() int { return len(sh.queue) - sh.qHead }

func (sh *shard) pop() int {
	idx := sh.queue[sh.qHead]
	sh.qHead++
	if sh.qHead == len(sh.queue) {
		sh.queue = sh.queue[:0]
		sh.qHead = 0
	}
	return idx
}

// sim is the mutable state of one scenario replay.
type sim struct {
	w     *Workload
	cfg   Config
	q     sgx.QueueModel
	trans uint64 // one-way transition cost (0 outside enclaves)
	fc    sgx.FaultCosts

	events eventQueue
	seq    uint64

	shards      []shard
	rr          uint64 // round-robin submission spread over shards
	idle        []int  // idle worker ids, FIFO
	iHead       int
	workers     []worker
	atts        []attempt
	reqs        []request
	clients     []clientState
	edmmFree    uint64 // enclave-global page-commit serialization
	rebuildFree uint64 // kernel enclave-management lock (crash rebuilds)

	bd            Breakdown
	ds            DispatchStats
	lats          []uint64 // latency per logical request, terminal order
	succeeded     int
	failed        int
	makespan      uint64
	perClient     []ClientSummary
	classReq      []int
	classLat      []uint64
	faults        []FaultEvent
	faultsDropped uint64
}

// splitmix64 is the standard SplitMix64 mixer — the deterministic,
// dependency-free randomness source for class picks, jitter, fault
// draws, arrival gaps, steal victim order and backoff spread.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Trace track convention: server-side spans (queue waits, enclave
// entries, faults) land on pid 0 with the worker id as tid; client-side
// spans (submissions, whole-request lifetimes, sheds, timeouts) on
// pid 1 with the client id. Perfetto renders them as two process
// groups with one track per worker / per client.
const (
	tracePIDServe  = 0
	tracePIDClient = 1
)

func (s *sim) schedule(t uint64, kind, who int) {
	s.seq++
	s.events.push(event{t: t, seq: s.seq, kind: kind, who: who})
}

func (s *sim) scheduleGen(t uint64, kind, who int, gen uint64) {
	s.seq++
	s.events.push(event{t: t, seq: s.seq, kind: kind, who: who, gen: gen})
}

// lockPass runs one critical section of a shard's dispatch lock
// starting at t and returns its completion time. The contention
// semantics mirror exec.ReplayQueue: a thread that finds the lock taken
// waits out the current hold plus the model's sleep latency, and a
// contended handover extends the hold by the model's extension (the SGX
// SDK mutex keeps the mutex locked across the owner's wake-up
// transitions).
func (s *sim) lockPass(sh *shard, t uint64) uint64 {
	acquire := t
	hold := s.q.PopCycles
	if t < sh.lockFree {
		acquire = sh.lockFree + s.q.SleepLatency
		hold += s.q.HoldExtension
	}
	sh.lockFree = acquire + hold
	s.bd.LockCycles += acquire + hold - t
	return acquire + hold
}

func (s *sim) sharded() bool { return len(s.shards) > 1 }

// pickShard spreads submissions round-robin over the shards — the
// deterministic stand-in for a client-side shard choice.
func (s *sim) pickShard() int {
	if !s.sharded() {
		return 0
	}
	si := int(s.rr % uint64(len(s.shards)))
	s.rr++
	return si
}

// drawService draws a class's jittered service time from the request's
// class-pick random value.
func (s *sim) drawService(class int, r uint64) uint64 {
	base := s.w.Classes[class].ServiceCycles
	if j := s.cfg.JitterPct; j > 0 {
		// base scaled into [100-j, 100+j] percent, deterministically.
		base = base * (100 - uint64(j) + splitmix64(r)%uint64(2*j+1)) / 100
	}
	return base
}

// issueReq submits request idx's next attempt at time t. In the closed
// loop the request slot doubles as the client's current logical
// request: an inactive slot means this is the fresh issue (class pick
// and service draw happen now).
func (s *sim) issueReq(idx int, t uint64) {
	r := &s.reqs[idx]
	if !r.active {
		c := r.client
		rnd := splitmix64(s.cfg.Seed ^ uint64(c)<<32 ^ uint64(s.clients[c].issued))
		r.class = s.pickClass(rnd)
		r.service = s.drawService(r.class, rnd)
		r.active = true
		r.attempt = 0
		r.firstIssue = t
	}
	s.submit(idx, t)
}

// arrive starts open-loop client c's next logical request at time t and
// schedules the following arrival — independent of any response, which
// is what makes the load open-loop.
func (s *sim) arrive(c int, t uint64) {
	cs := &s.clients[c]
	rnd := splitmix64(s.cfg.Seed ^ uint64(c)<<32 ^ uint64(cs.issued))
	idx := len(s.reqs)
	s.reqs = append(s.reqs, request{client: c, active: true, firstIssue: t})
	r := &s.reqs[idx]
	r.class = s.pickClass(rnd)
	r.service = s.drawService(r.class, rnd)
	s.submit(idx, t)
	if cs.issued < s.cfg.RequestsPerClient {
		cs.issued++
		s.schedule(t+s.cfg.Arrival.gap(s.cfg.Seed, c, cs.issued, t), evArrive, c)
	}
}

// submit pushes request idx's next attempt: the client's ECALL, the
// push through the target shard's dispatch lock — where admission
// control may shed it — and the EEXIT.
func (s *sim) submit(idx int, t uint64) {
	r := &s.reqs[idx]
	r.attempt++
	if s.trans > 0 {
		s.bd.Transitions += 2 // submit ECALL + EEXIT
		s.bd.TransitionCycles += 2 * s.trans
	}
	si := s.pickShard()
	sh := &s.shards[si]
	pushDone := s.lockPass(sh, t+s.trans)
	if s.cfg.AdmitDepth > 0 && sh.depth() >= s.cfg.AdmitDepth {
		// Admission control: the push found the queue at its depth
		// limit and is rejected inside the same critical section — a
		// cheap, immediate failure the client can back off from,
		// instead of a request the pool would serve long past its
		// deadline.
		s.bd.Shed++
		if tr := s.cfg.Trace; tr != nil {
			tr.Record(obs.Span{Name: "shed", Cat: "client", Ph: obs.PhInstant, T: pushDone,
				PID: tracePIDClient, TID: r.client, Args: []obs.Attr{
					{Key: "req", Val: uint64(idx)}, {Key: "attempt", Val: uint64(r.attempt)},
					{Key: "shard", Val: uint64(si)}}})
		}
		s.failAttempt(idx, pushDone)
		return
	}
	s.atts = append(s.atts, attempt{req: idx, class: r.class, service: r.service, issue: t, shard: si, worker: -1})
	ai := len(s.atts) - 1
	if tr := s.cfg.Trace; tr != nil {
		tr.Record(obs.Span{Name: "submit", Cat: "client", Ph: obs.PhComplete, T: t, Dur: pushDone - t,
			PID: tracePIDClient, TID: r.client, Args: []obs.Attr{
				{Key: "req", Val: uint64(idx)}, {Key: "attempt", Val: uint64(r.attempt)},
				{Key: "shard", Val: uint64(si)}}})
	}
	s.schedule(pushDone, evEnqueue, ai)
	if s.cfg.DeadlineCycles > 0 {
		s.schedule(t+s.cfg.DeadlineCycles, evTimeout, ai)
	}
}

func (s *sim) pickClass(r uint64) int {
	ws := s.cfg.Weights
	if ws == nil {
		return int(r % uint64(len(s.w.Classes)))
	}
	total := 0
	for _, w := range ws {
		total += w
	}
	pick := int(r % uint64(total))
	for i, w := range ws {
		pick -= w
		if pick < 0 {
			return i
		}
	}
	return len(ws) - 1
}

// backoff returns attempt n's retry delay: capped exponential growth
// from BackoffBase, with deterministic jitter spreading concurrent
// retries over the top quarter of the interval.
func (s *sim) backoff(c, n int) uint64 {
	b := s.cfg.BackoffBase
	if b == 0 {
		return 0
	}
	for i := 1; i < n && i < 63; i++ {
		b <<= 1
		if bc := s.cfg.BackoffCap; bc > 0 && b >= bc {
			b = bc
			break
		}
	}
	if j := b / 4; j > 0 {
		r := splitmix64(s.cfg.Seed ^ 0x5bf03635c0ffee ^ uint64(c)<<24 ^ s.bd.Retries)
		b = b - j + r%(2*j+1)
	}
	return b
}

// failAttempt handles a retriable failure (shed, timeout, transient
// abort, crash loss) of request idx's current attempt at time t: back
// off and retry if budget remains, otherwise drop the logical request.
func (s *sim) failAttempt(idx int, t uint64) {
	r := &s.reqs[idx]
	if r.attempt <= s.cfg.MaxRetries {
		s.bd.Retries++
		s.schedule(t+s.backoff(r.client, r.attempt), evIssue, idx)
		return
	}
	s.finishRequest(idx, t, false)
}

// think returns the closed-loop pause before client c's n-th logical
// request: ThinkCycles, optionally stretched by the deterministic
// heavy-tail table (mean preserved).
func (s *sim) think(c, n int) uint64 {
	tc := s.cfg.ThinkCycles
	if !s.cfg.ThinkHeavyTail || tc == 0 {
		return tc
	}
	r := splitmix64(s.cfg.Seed ^ 0x7417c0de ^ uint64(c)<<32 ^ uint64(n))
	return tc * paretoGapQ16[r%64] >> 16
}

// finishRequest records the terminal state of request idx at time t;
// in the closed loop it also closes the client loop (think, then the
// next logical request).
func (s *sim) finishRequest(idx int, t uint64, success bool) {
	r := &s.reqs[idx]
	lat := t - r.firstIssue
	s.lats = append(s.lats, lat)
	s.bd.Requests++
	if success {
		s.succeeded++
	} else {
		s.failed++
	}
	if t > s.makespan {
		s.makespan = t
	}
	pc := &s.perClient[r.client]
	pc.Requests++
	pc.MeanCycles += lat // sum here; divided at the end
	if lat > pc.MaxCycles {
		pc.MaxCycles = lat
	}
	s.classReq[r.class]++
	s.classLat[r.class] += lat
	if tr := s.cfg.Trace; tr != nil {
		var ok uint64
		if success {
			ok = 1
		}
		tr.Record(obs.Span{Name: "request", Cat: "client", Ph: obs.PhComplete, T: r.firstIssue, Dur: lat,
			PID: tracePIDClient, TID: r.client, Args: []obs.Attr{
				{Key: "class", Val: uint64(r.class)}, {Key: "attempts", Val: uint64(r.attempt)},
				{Key: "ok", Val: ok}}})
	}
	r.active = false
	if s.cfg.Arrival == nil {
		cs := &s.clients[r.client]
		if cs.issued < s.cfg.RequestsPerClient {
			cs.issued++
			s.schedule(t+s.think(r.client, cs.issued), evIssue, r.client)
		}
	}
}

// advanceWork executes work cycles of enclave execution starting at
// wall time t under the fault plan's AEX storm windows: inside a
// window, every StormAEXGap cycles of execution absorb one AEX of
// FaultCosts.AEX wall cycles that advances no work. Returns the
// completion time and the AEX count. Pure integer arithmetic — the
// deterministic heart of the storm model.
func (s *sim) advanceWork(t, work uint64) (uint64, uint64) {
	p := s.cfg.Fault
	if p == nil || p.StormInterval == 0 || work == 0 {
		return t + work, 0
	}
	gap, aex := p.StormAEXGap, s.fc.AEX
	var events uint64
	for work > 0 {
		k := t / p.StormInterval
		ws := k * p.StormInterval
		we := ws + p.StormLen
		if k >= 1 && t < we {
			// Inside a storm window: blocks of gap work cost gap+aex
			// wall; the window end is a hard wall bound.
			avail := we - t
			blk := gap + aex
			nb := avail / blk
			rem := avail % blk
			maxWork := nb*gap + min(rem, gap)
			if work <= maxWork {
				nFull := work / gap
				events += nFull
				return t + work + nFull*aex, events
			}
			work -= maxWork
			events += nb
			if rem >= gap {
				events++ // the partial block's AEX straddles the window end
			}
			t = we
		} else {
			// Outside any window: run plainly until the next one opens.
			nw := (k + 1) * p.StormInterval
			span := nw - t
			if work <= span {
				return t + work, events
			}
			work -= span
			t = nw
		}
	}
	return t, events
}

// crash kills worker w's enclave at time t: the in-flight attempt (or
// whole in-flight batch) is lost, and the worker leaves the pool for
// teardown plus a rebuild serialized on the kernel's
// enclave-management lock.
func (s *sim) crash(w int, t uint64) {
	wk := &s.workers[w]
	wk.crashes++
	s.bd.Crashes++
	s.recordFault(FaultEvent{T: t, Kind: "crash", Worker: w})
	if wk.busy {
		wk.gen++ // pending evDone/evItemDone events are now stale
		wk.busy = false
		if s.cfg.Batch > 1 {
			for _, ai := range wk.batch {
				att := &s.atts[ai]
				if !att.done {
					att.done = true
					if !att.abandoned {
						s.failAttempt(att.req, t)
					}
				}
			}
		} else {
			att := &s.atts[wk.att]
			if !att.done {
				att.done = true
				if !att.abandoned {
					s.failAttempt(att.req, t)
				}
			}
		}
	}
	wk.down = true
	pages := s.cfg.Fault.RebuildPages
	if pages == 0 {
		for _, cc := range s.w.Classes {
			pages += cc.Pages
		}
	}
	start := t + s.fc.Teardown
	if s.rebuildFree > start {
		start = s.rebuildFree
	}
	done := start + s.fc.RebuildBase + uint64(pages)*s.fc.RebuildPage
	s.rebuildFree = done
	s.bd.RebuildCycles += done - t
	if tr := s.cfg.Trace; tr != nil {
		tr.Record(obs.Span{Name: "crash", Cat: "fault", Ph: obs.PhInstant, T: t,
			PID: tracePIDServe, TID: w, Args: []obs.Attr{
				{Key: "gen", Val: wk.gen}, {Key: "crashes", Val: wk.crashes}}})
		tr.Record(obs.Span{Name: "rebuild", Cat: "fault", Ph: obs.PhComplete, T: t, Dur: done - t,
			PID: tracePIDServe, TID: w})
	}
	s.schedule(done, evRebuilt, w)
	// The replacement enclave's own crash clock starts after the
	// rebuild completes.
	wk.nextCrash = done + s.crashDelay(w, wk.crashes)
	s.schedule(wk.nextCrash, evCrash, w)
}

// crashDelay draws worker w's deterministic time-to-next-crash: spread
// over [interval/2, 3*interval/2) so the pool's enclaves neither die in
// lockstep nor settle into one stable phase.
func (s *sim) crashDelay(w int, nth uint64) uint64 {
	p := s.cfg.Fault
	r := splitmix64(p.Seed ^ 0xc4a54ed ^ uint64(w)<<32 ^ nth)
	return p.CrashInterval/2 + r%p.CrashInterval
}

func (s *sim) recordFault(e FaultEvent) {
	if len(s.faults) < maxFaultEvents {
		s.faults = append(s.faults, e)
	} else {
		s.faultsDropped++
	}
}

// popIdle returns an idle, alive worker id, or -1. Crashed workers that
// were idle stay in the FIFO as tombstones and are skipped here, as are
// entries gone stale because claimWorker took their worker out of band;
// crashed workers re-enter via evRebuilt.
func (s *sim) popIdle() int {
	for s.iHead < len(s.idle) {
		w := s.idle[s.iHead]
		s.iHead++
		if s.iHead == len(s.idle) { // compact the drained FIFO
			s.idle = s.idle[:0]
			s.iHead = 0
		}
		if !s.workers[w].inIdle {
			continue // stale: claimed out of band since it was pushed
		}
		s.workers[w].inIdle = false
		if !s.workers[w].down {
			return w
		}
	}
	return -1
}

func (s *sim) pushIdle(w int) {
	if !s.workers[w].inIdle {
		s.workers[w].inIdle = true
		s.idle = append(s.idle, w)
	}
}

// claimWorker finds an idle worker for shard si's new work: under
// sharded dispatch the shard's own worker has affinity (claimed out of
// band, its idle-FIFO entry left behind as a stale tombstone), falling
// back to the global idle FIFO either way.
func (s *sim) claimWorker(si int) int {
	if s.sharded() {
		if wk := &s.workers[si]; wk.inIdle && !wk.down {
			wk.inIdle = false
			return si
		}
	}
	return s.popIdle()
}

// homeShard is the queue worker w drains first: its own under sharded
// dispatch, the global queue otherwise.
func (s *sim) homeShard(w int) int {
	if s.sharded() {
		return w
	}
	return 0
}

// findWork is a freed (or rebuilt) worker's hunt at time t: drain the
// home shard, else steal, else go idle.
func (s *sim) findWork(w int, t uint64) {
	home := s.homeShard(w)
	if s.shards[home].depth() > 0 {
		s.dispatch(w, home, t)
		return
	}
	if s.sharded() && s.trySteal(w, t) {
		return
	}
	s.pushIdle(w)
}

// trySteal has worker w probe the other shards in a seeded rotation and
// migrate the oldest half of the first non-empty victim's queue to its
// own, then dispatch from home. Two critical sections are charged: the
// victim's (claim the half) and the home shard's (deposit); probing an
// empty queue is free (an uncontended emptiness check).
func (s *sim) trySteal(w int, t uint64) bool {
	ns := len(s.shards)
	if ns < 2 {
		return false
	}
	wk := &s.workers[w]
	r := splitmix64(s.cfg.Seed ^ 0x57ea1c0de ^ uint64(w)<<32 ^ wk.steals)
	start := int(r % uint64(ns-1))
	for i := 0; i < ns-1; i++ {
		v := (w + 1 + (start+i)%(ns-1)) % ns
		vic := &s.shards[v]
		d := vic.depth()
		if d == 0 {
			continue
		}
		wk.steals++
		s.ds.Steals++
		k := (d + 1) / 2 // steal half, rounded up
		tv := s.lockPass(vic, t)
		home := &s.shards[w]
		th := s.lockPass(home, tv)
		for j := 0; j < k; j++ {
			home.queue = append(home.queue, vic.pop())
		}
		s.ds.StolenAttempts += uint64(k)
		s.dispatch(w, w, th)
		return true
	}
	return false
}

// dispatch has worker w pop shard si at time t. Batch > 1 takes the
// batched path; otherwise the original one-attempt-per-entry timeline:
// pop through the dispatch lock, worker ECALL, page commits, service
// stretched by any AEX storm windows, a possible transient abort,
// worker EEXIT.
func (s *sim) dispatch(w, si int, t uint64) {
	if s.cfg.Batch > 1 {
		s.dispatchBatch(w, si, t)
		return
	}
	sh := &s.shards[si]
	popDone := s.lockPass(sh, t)
	idx := sh.pop()
	att := &s.atts[idx]
	att.worker = w
	s.bd.QueueWaitCycles += popDone - att.enq

	start := popDone + s.trans // worker ECALL
	if s.trans > 0 {
		s.bd.Transitions += 2 // worker ECALL now, EEXIT at completion
		s.bd.TransitionCycles += 2 * s.trans
	}
	start = s.commitPages(att.class, start)
	wk := &s.workers[w]
	wk.gen++
	wk.busy = true
	wk.att = idx
	wk.abort = false
	work := att.service
	if p := s.cfg.Fault; p != nil && p.FailPct > 0 {
		fr := splitmix64(p.Seed ^ 0xfa17 ^ uint64(idx)<<16)
		if int(fr%100) < p.FailPct {
			// Transient enclave-thread abort after a deterministic
			// fraction of the service: the partial work is wasted.
			wk.abort = true
			work = att.service * (1 + (fr>>8)%98) / 100
		}
	}
	end, aexN := s.advanceWork(start, work)
	s.bd.AEXEvents += aexN
	s.bd.AEXCycles += aexN * s.fc.AEX
	s.bd.ServiceCycles += work
	if wk.abort {
		end += s.fc.AbortDetect
	}
	done := end + s.trans // worker EEXIT
	if tr := s.cfg.Trace; tr != nil {
		tr.Record(obs.Span{Name: "queue", Cat: "serve", Ph: obs.PhComplete, T: att.enq, Dur: popDone - att.enq,
			PID: tracePIDServe, TID: w, Args: []obs.Attr{
				{Key: "req", Val: uint64(att.req)}, {Key: "shard", Val: uint64(si)}}})
		var abort uint64
		if wk.abort {
			abort = 1
		}
		tr.Record(obs.Span{Name: s.w.Classes[att.class].Name, Cat: "service", Ph: obs.PhComplete,
			T: popDone, Dur: done - popDone, PID: tracePIDServe, TID: w, Args: []obs.Attr{
				{Key: "req", Val: uint64(att.req)}, {Key: "gen", Val: wk.gen},
				{Key: "aex", Val: aexN}, {Key: "abort", Val: abort}}})
	}
	s.scheduleGen(done, evDone, w, wk.gen)
}

// commitPages charges the dynamic-memory page commits for one attempt
// of the given class starting at start, returning when execution can
// begin. MemPreSized is free.
func (s *sim) commitPages(class int, start uint64) uint64 {
	if s.cfg.Mem != MemDynamic {
		return start
	}
	pages := uint64(s.w.Classes[class].Pages)
	s.bd.PagesCommitted += pages
	if s.w.InEnclave {
		// EDMM: the worker runs the AEX/EACCEPT protocol for its own
		// pages, and the kernel serializes commits enclave-wide.
		commitStart := start
		if s.edmmFree > commitStart {
			commitStart = s.edmmFree
		}
		s.bd.CommitWaitCycles += commitStart - start
		cost := pages * s.w.OS.EDMMPage
		s.bd.CommitCycles += cost
		start = commitStart + cost
		s.edmmFree = start
		return start
	}
	// Plain minor faults: per-worker cost, no serialization.
	cost := pages * s.w.OS.MinorFault
	s.bd.CommitCycles += cost
	return start + cost
}

// dispatchBatch has worker w claim up to Batch queued attempts from
// shard si in ONE dispatch-lock critical section and serve them in ONE
// enclave entry: a single worker ECALL/EEXIT pair brackets the whole
// run, so the two transitions amortize across the batch. Each attempt's
// result is handed back the moment it finishes (evItemDone — exit-less
// async completion); the final evDone only frees the worker.
func (s *sim) dispatchBatch(w, si int, t uint64) {
	sh := &s.shards[si]
	popDone := s.lockPass(sh, t)
	n := sh.depth()
	if n > s.cfg.Batch {
		n = s.cfg.Batch
	}
	wk := &s.workers[w]
	wk.gen++
	wk.busy = true
	wk.batch = wk.batch[:0]
	s.ds.Batches++
	s.ds.BatchedAttempts += uint64(n)
	if s.trans > 0 {
		s.bd.Transitions += 2 // one worker ECALL + EEXIT for the whole batch
		s.bd.TransitionCycles += 2 * s.trans
	}
	start := popDone + s.trans // worker ECALL
	for i := 0; i < n; i++ {
		idx := sh.pop()
		att := &s.atts[idx]
		att.worker = w
		wk.batch = append(wk.batch, idx)
		s.bd.QueueWaitCycles += popDone - att.enq
		itemStart := start
		start = s.commitPages(att.class, start)
		work := att.service
		if p := s.cfg.Fault; p != nil && p.FailPct > 0 {
			fr := splitmix64(p.Seed ^ 0xfa17 ^ uint64(idx)<<16)
			if int(fr%100) < p.FailPct {
				att.aborted = true
				work = att.service * (1 + (fr>>8)%98) / 100
			}
		}
		end, aexN := s.advanceWork(start, work)
		s.bd.AEXEvents += aexN
		s.bd.AEXCycles += aexN * s.fc.AEX
		s.bd.ServiceCycles += work
		if att.aborted {
			end += s.fc.AbortDetect
		}
		if tr := s.cfg.Trace; tr != nil {
			tr.Record(obs.Span{Name: "queue", Cat: "serve", Ph: obs.PhComplete, T: att.enq, Dur: popDone - att.enq,
				PID: tracePIDServe, TID: w, Args: []obs.Attr{
					{Key: "req", Val: uint64(att.req)}, {Key: "shard", Val: uint64(si)}}})
			var abort uint64
			if att.aborted {
				abort = 1
			}
			tr.Record(obs.Span{Name: s.w.Classes[att.class].Name, Cat: "service", Ph: obs.PhComplete,
				T: itemStart, Dur: end - itemStart, PID: tracePIDServe, TID: w, Args: []obs.Attr{
					{Key: "req", Val: uint64(att.req)}, {Key: "gen", Val: wk.gen},
					{Key: "aex", Val: aexN}, {Key: "abort", Val: abort}}})
		}
		s.scheduleGen(end, evItemDone, idx, wk.gen)
		start = end
	}
	done := start + s.trans // worker EEXIT after the batch
	if tr := s.cfg.Trace; tr != nil {
		tr.Record(obs.Span{Name: "batch", Cat: "serve", Ph: obs.PhComplete, T: popDone, Dur: done - popDone,
			PID: tracePIDServe, TID: w, Args: []obs.Attr{
				{Key: "n", Val: uint64(n)}, {Key: "gen", Val: wk.gen}, {Key: "shard", Val: uint64(si)}}})
	}
	s.scheduleGen(done, evDone, w, wk.gen)
}

// itemDone completes one attempt of a batched entry at time t: the
// response leaves through the exit-less completion queue while the
// worker keeps running the rest of the batch.
func (s *sim) itemDone(ai int, t uint64, gen uint64) {
	att := &s.atts[ai]
	wk := &s.workers[att.worker]
	if wk.gen != gen {
		return // the enclave crashed mid-batch; the attempt was re-routed
	}
	att.done = true
	if t > s.makespan {
		s.makespan = t
	}
	if att.abandoned {
		return // wasted work: the client's deadline already passed
	}
	if att.aborted {
		s.failAttempt(att.req, t)
	} else {
		s.finishRequest(att.req, t, true)
	}
}

// complete finishes worker w's enclave entry at time t. Unbatched: a
// successful, un-abandoned attempt answers its client, an aborted one
// triggers the retry path, an abandoned one was wasted work. Batched:
// the per-attempt outcomes already happened at their evItemDone times
// and this is just the EEXIT. Either way the freed worker hunts for the
// next work.
func (s *sim) complete(w int, t uint64) {
	wk := &s.workers[w]
	wk.busy = false
	if s.cfg.Batch <= 1 {
		att := &s.atts[wk.att]
		att.done = true
		if !att.abandoned {
			if wk.abort {
				s.failAttempt(att.req, t)
			} else {
				s.finishRequest(att.req, t, true)
			}
		}
	}
	if t > s.makespan {
		s.makespan = t
	}
	s.findWork(w, t)
}

// Simulate replays one serving scenario over the calibrated workload.
// Pure integer event-driven arithmetic on the virtual clock: the result
// is bit-reproducible across runs and engine paths. A structurally
// invalid Config (see Config.Validate) returns an error instead of a
// skewed replay.
func (w *Workload) Simulate(cfg Config) (*Result, error) {
	if err := cfg.Validate(len(w.Classes)); err != nil {
		return nil, err
	}
	cfg = cfg.normalized()
	nShards := 1
	if cfg.Dispatch == DispatchSharded {
		nShards = cfg.Workers
	}
	s := &sim{
		w:         w,
		cfg:       cfg,
		q:         w.queueModel(cfg.Sync),
		shards:    make([]shard, nShards),
		workers:   make([]worker, cfg.Workers),
		clients:   make([]clientState, cfg.Clients),
		perClient: make([]ClientSummary, cfg.Clients),
		classReq:  make([]int, len(w.Classes)),
		classLat:  make([]uint64, len(w.Classes)),
	}
	if cfg.useHeap {
		s.events = &heapQueue{}
	} else {
		s.events = newTimerWheel()
	}
	if w.InEnclave {
		s.trans = w.OS.Transition
	}
	if cfg.Fault != nil {
		s.fc = cfg.Fault.costs()
	}
	for wi := 0; wi < cfg.Workers; wi++ {
		s.pushIdle(wi)
		if cfg.Fault != nil && cfg.Fault.CrashInterval > 0 {
			s.workers[wi].nextCrash = s.crashDelay(wi, 0)
			s.schedule(s.workers[wi].nextCrash, evCrash, wi)
		}
	}
	if cfg.Arrival != nil {
		// Open loop: one request slot per arrival, appended as clients'
		// arrival clocks fire; the first arrival is one drawn gap in.
		for c := 0; c < cfg.Clients; c++ {
			s.clients[c].issued = 1
			s.schedule(cfg.Arrival.gap(cfg.Seed, c, 0, 0), evArrive, c)
		}
	} else {
		// Closed loop: request slot c is client c's live logical request.
		s.reqs = make([]request, cfg.Clients)
		for c := 0; c < cfg.Clients; c++ {
			s.reqs[c].client = c
			s.clients[c].issued = 1
			s.schedule(0, evIssue, c)
		}
	}
	for !s.events.empty() {
		ev := s.events.pop()
		// Metrics sampling: between events the simulated state is
		// constant, so every boundary the clock is about to pass gets a
		// sample of the state as it stands. Pure reads — no event is
		// scheduled, no seq consumed — so an attached Metrics cannot
		// change the replay.
		if m := cfg.Metrics; m != nil {
			for m.Due(ev.t) {
				m.Record(s.gauges())
			}
		}
		switch ev.kind {
		case evIssue:
			s.issueReq(ev.who, ev.t)
		case evArrive:
			s.arrive(ev.who, ev.t)
		case evEnqueue:
			att := &s.atts[ev.who]
			if att.abandoned {
				// The deadline expired before the push even landed; the
				// client is already retrying.
				att.done = true
				break
			}
			att.enq = ev.t
			sh := &s.shards[att.shard]
			sh.queue = append(sh.queue, ev.who)
			if wi := s.claimWorker(att.shard); wi >= 0 {
				s.dispatch(wi, att.shard, ev.t)
			}
		case evDone:
			if wk := &s.workers[ev.who]; wk.busy && wk.gen == ev.gen {
				s.complete(ev.who, ev.t)
			}
		case evItemDone:
			s.itemDone(ev.who, ev.t, ev.gen)
		case evTimeout:
			att := &s.atts[ev.who]
			if !att.done && !att.abandoned {
				att.abandoned = true
				s.bd.Timeouts++
				if tr := s.cfg.Trace; tr != nil {
					tr.Record(obs.Span{Name: "timeout", Cat: "client", Ph: obs.PhInstant, T: ev.t,
						PID: tracePIDClient, TID: s.reqs[att.req].client, Args: []obs.Attr{
							{Key: "req", Val: uint64(att.req)}, {Key: "attempt", Val: uint64(ev.who)}}})
				}
				s.failAttempt(att.req, ev.t)
			}
		case evCrash:
			s.crash(ev.who, ev.t)
		case evRebuilt:
			wk := &s.workers[ev.who]
			wk.down = false
			s.recordFault(FaultEvent{T: ev.t, Kind: "rebuilt", Worker: ev.who})
			s.findWork(ev.who, ev.t)
		}
		// Crash schedules stop once every client is done: without this
		// the crash-interval event chain would keep the loop alive
		// long after the last request completed. Terminal requests are
		// exactly Clients*RequestsPerClient, each counted once.
		if int(s.bd.Requests) == cfg.Clients*cfg.RequestsPerClient {
			break
		}
	}
	return s.result(), nil
}

// gauges snapshots the simulator's instantaneous state for the metrics
// timeline. The per-shard depth slice is only materialized for sharded
// dispatch (a single global queue is already the QueueDepth gauge).
func (s *sim) gauges() (obs.Gauges, []uint64) {
	var g obs.Gauges
	var shards []uint64
	if s.sharded() {
		shards = make([]uint64, len(s.shards))
	}
	for i := range s.shards {
		d := uint64(s.shards[i].depth())
		g.QueueDepth += d
		if d > g.MaxShardDepth {
			g.MaxShardDepth = d
		}
		if shards != nil {
			shards[i] = d
		}
	}
	for i := range s.workers {
		wk := &s.workers[i]
		if wk.busy {
			g.BusyWorkers++
			if s.cfg.Batch > 1 {
				g.InFlightBatches++
			}
		}
		if wk.down {
			g.DownWorkers++
		}
	}
	g.PagesCommitted = s.bd.PagesCommitted
	return g, shards
}

// pctl returns the nearest-rank p-th percentile of the sorted latencies.
func pctl(sorted []uint64, p int) uint64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := (len(sorted)*p + 99) / 100
	if idx < 1 {
		idx = 1
	}
	return sorted[idx-1]
}

func (s *sim) result() *Result {
	res := &Result{
		Setting:        s.w.Setting.String(),
		Queue:          s.q.Name,
		Config:         s.cfg,
		Requests:       len(s.lats),
		Succeeded:      s.succeeded,
		Failed:         s.failed,
		MakespanCycles: s.makespan,
		Breakdown:      s.bd,
		DispatchStats:  s.ds,
		PerClient:      s.perClient,
		Faults:         s.faults,
		FaultsDropped:  s.faultsDropped,
		lats:           s.lats,
	}
	if s.makespan > 0 {
		secs := s.w.Plat.CyclesToSeconds(s.makespan)
		res.ThroughputQPS = float64(res.Requests) / secs
		res.GoodputQPS = float64(res.Succeeded) / secs
	}
	// Percentiles come from the log-bucketed histogram — one O(1)
	// Record per request instead of the old O(n log n) sort, at most
	// one bucket width (~3%) above the exact nearest-rank value and
	// clamped to the exact max (see Result.ExactPercentiles for the
	// retained oracle). Check folds the raw latencies, never the
	// percentiles, so the quantization cannot drift any golden value.
	h := obs.NewHistogram()
	for _, l := range s.lats {
		h.Record(l)
	}
	res.P50 = h.Percentile(50)
	res.P95 = h.Percentile(95)
	res.P99 = h.Percentile(99)
	res.Max = h.Max()
	res.hist = h
	for i := range res.PerClient {
		if r := res.PerClient[i].Requests; r > 0 {
			res.PerClient[i].MeanCycles /= uint64(r)
		}
	}
	for i, cc := range s.w.Classes {
		cs := ClassSummary{Name: cc.Name, Requests: s.classReq[i]}
		if cs.Requests > 0 {
			cs.MeanCycles = s.classLat[i] / uint64(cs.Requests)
		}
		res.PerClass = append(res.PerClass, cs)
	}
	res.Check = s.check(res)
	return res
}

// check folds the scenario's observable behaviour into one FNV-1a value:
// every latency in completion order, the outcome split, the breakdown,
// the makespan and the class mix — plus the dispatch counters for
// scenarios using the production-scale machinery (legacy scenarios keep
// their original fold so old golden snapshots never drift). Shares the
// hash discipline of the pipeline check values.
func (s *sim) check(res *Result) uint64 {
	h := agg.FNVOffset64
	h = agg.Mix(h, uint64(res.Requests))
	h = agg.Mix(h, uint64(res.Succeeded))
	h = agg.Mix(h, uint64(res.Failed))
	h = agg.Mix(h, res.MakespanCycles)
	for _, l := range s.lats {
		h = agg.Mix(h, l)
	}
	h = res.Breakdown.Fold(h)
	for i := range s.classReq {
		h = agg.Mix(h, uint64(s.classReq[i]))
	}
	if s.cfg.extended() {
		h = res.DispatchStats.Fold(h)
	}
	return h
}
