package serve

import (
	"container/heap"
	"fmt"
	"sort"

	"sgxbench/internal/agg"
	"sgxbench/internal/sgx"
)

// Config describes one serving scenario over a calibrated Workload.
type Config struct {
	// Clients is the number of closed-loop clients: each has one request
	// in flight, thinks for ThinkCycles after a response, then issues
	// the next (default 1).
	Clients int
	// Workers is the enclave worker-pool size (default 1).
	Workers int
	// RequestsPerClient is how many requests each client issues
	// (default 1).
	RequestsPerClient int
	// Sync selects the dispatch queue's synchronization model.
	Sync SyncKind
	// Mem selects the memory-provisioning mode.
	Mem MemMode
	// Weights gives the request mix over the workload's classes; nil
	// means uniform. Length must match the workload's class count.
	Weights []int
	// ThinkCycles is the client pause between a response and the next
	// request; zero keeps every client saturating the pool.
	ThinkCycles uint64
	// JitterPct varies each request's service time deterministically by
	// up to ±JitterPct percent (seeded; zero disables).
	JitterPct int
	// Seed drives the deterministic class picks and jitter.
	Seed uint64
}

func (c Config) normalized() Config {
	if c.Clients < 1 {
		c.Clients = 1
	}
	if c.Workers < 1 {
		c.Workers = 1
	}
	if c.RequestsPerClient < 1 {
		c.RequestsPerClient = 1
	}
	return c
}

// Name returns the scenario's bench workload identifier.
func (c Config) Name() string {
	return fmt.Sprintf("serve.%s.%s", c.Sync, c.Mem)
}

// ClientSummary is one client's latency summary.
type ClientSummary struct {
	Requests   int    `json:"requests"`
	MeanCycles uint64 `json:"mean_cycles"`
	MaxCycles  uint64 `json:"max_cycles"`
}

// ClassSummary is one query class's latency summary.
type ClassSummary struct {
	Name       string `json:"name"`
	Requests   int    `json:"requests"`
	MeanCycles uint64 `json:"mean_cycles"`
}

// Result reports one simulated serving scenario.
type Result struct {
	Setting string `json:"setting"`
	Queue   string `json:"queue"` // resolved sgx.QueueModel name
	Config  Config `json:"config"`
	// Requests is the number of requests served (Clients x
	// RequestsPerClient).
	Requests int `json:"requests"`
	// MakespanCycles is the virtual time from the first issue to the
	// last completion; the scenario's simulated wall clock.
	MakespanCycles uint64 `json:"makespan_cycles"`
	// ThroughputQPS is Requests over the makespan in platform seconds.
	ThroughputQPS float64 `json:"throughput_qps"`
	// Latency percentiles (nearest-rank) over all requests, in cycles.
	P50 uint64 `json:"p50_cycles"`
	P95 uint64 `json:"p95_cycles"`
	P99 uint64 `json:"p99_cycles"`
	Max uint64 `json:"max_cycles"`

	Breakdown Breakdown       `json:"breakdown"`
	PerClient []ClientSummary `json:"per_client"`
	PerClass  []ClassSummary  `json:"per_class"`
	// Check folds every latency (in completion order), the breakdown
	// and the makespan into one FNV-1a value — the deterministic number
	// golden gates compare.
	Check uint64 `json:"check"`
}

// Event kinds. Issue submits a client's next request (ECALL + queue
// push), enqueue makes the pushed request poppable, done completes a
// worker's request and lets it pop the next.
const (
	evIssue = iota
	evEnqueue
	evDone
)

type event struct {
	t    uint64
	seq  uint64 // schedule order: deterministic tie-break at equal times
	kind int
	who  int // client (evIssue), request index (evEnqueue), worker (evDone)
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].t != h[j].t {
		return h[i].t < h[j].t
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

type request struct {
	client  int
	class   int
	issue   uint64 // client issue time
	enq     uint64 // time it became poppable
	service uint64
}

type worker struct {
	req  request
	done uint64
	busy bool
}

// sim is the mutable state of one scenario replay.
type sim struct {
	w     *Workload
	cfg   Config
	q     sgx.QueueModel
	trans uint64 // one-way transition cost (0 outside enclaves)

	events eventHeap
	seq    uint64

	queue    []request // FIFO (head index to avoid O(n) shifts)
	qHead    int
	idle     []int // idle worker ids, FIFO
	iHead    int
	workers  []worker
	pending  []request // requests between issue and enqueue
	issued   []int     // per-client requests issued so far
	lockFree uint64    // dispatch-lock state
	edmmFree uint64    // enclave-global page-commit serialization

	bd        Breakdown
	lats      []uint64 // latency per request, completion order
	makespan  uint64
	perClient []ClientSummary
	classReq  []int
	classLat  []uint64
}

// splitmix64 is the standard SplitMix64 mixer — the deterministic,
// dependency-free randomness source for class picks and jitter.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

func (s *sim) schedule(t uint64, kind, who int) {
	s.seq++
	heap.Push(&s.events, event{t: t, seq: s.seq, kind: kind, who: who})
}

// lockPass runs one critical section of the dispatch lock starting at t
// and returns its completion time. The contention semantics mirror
// exec.ReplayQueue: a thread that finds the lock taken waits out the
// current hold plus the model's sleep latency, and a contended handover
// extends the hold by the model's extension (the SGX SDK mutex keeps
// the mutex locked across the owner's wake-up transitions).
func (s *sim) lockPass(t uint64) uint64 {
	acquire := t
	hold := s.q.PopCycles
	if t < s.lockFree {
		acquire = s.lockFree + s.q.SleepLatency
		hold += s.q.HoldExtension
	}
	s.lockFree = acquire + hold
	s.bd.LockCycles += acquire + hold - t
	return acquire + hold
}

// issue submits client c's next request at time t: the class pick, the
// client's ECALL, the push through the dispatch lock, the EEXIT.
func (s *sim) issue(c int, t uint64) {
	k := s.issued[c]
	r := splitmix64(s.cfg.Seed ^ uint64(c)<<32 ^ uint64(k))
	class := s.pickClass(r)
	base := s.w.Classes[class].ServiceCycles
	service := base
	if j := s.cfg.JitterPct; j > 0 {
		// base scaled into [100-j, 100+j] percent, deterministically.
		service = base * (100 - uint64(j) + splitmix64(r)%uint64(2*j+1)) / 100
	}
	if s.trans > 0 {
		s.bd.Transitions += 2 // submit ECALL + EEXIT
		s.bd.TransitionCycles += 2 * s.trans
	}
	pushDone := s.lockPass(t + s.trans)
	s.pending = append(s.pending, request{client: c, class: class, issue: t, service: service})
	s.schedule(pushDone, evEnqueue, len(s.pending)-1)
}

func (s *sim) pickClass(r uint64) int {
	ws := s.cfg.Weights
	if ws == nil {
		return int(r % uint64(len(s.w.Classes)))
	}
	total := 0
	for _, w := range ws {
		total += w
	}
	pick := int(r % uint64(total))
	for i, w := range ws {
		pick -= w
		if pick < 0 {
			return i
		}
	}
	return len(ws) - 1
}

// dispatch has worker w pop the queue head at time t and computes the
// request's full execution timeline.
func (s *sim) dispatch(w int, t uint64) {
	popDone := s.lockPass(t)
	r := s.queue[s.qHead]
	s.qHead++
	s.bd.QueueWaitCycles += popDone - r.enq

	start := popDone + s.trans // worker ECALL
	if s.trans > 0 {
		s.bd.Transitions += 2 // worker ECALL now, EEXIT at completion
		s.bd.TransitionCycles += 2 * s.trans
	}
	if s.cfg.Mem == MemDynamic {
		pages := uint64(s.w.Classes[r.class].Pages)
		s.bd.PagesCommitted += pages
		if s.w.InEnclave {
			// EDMM: the worker runs the AEX/EACCEPT protocol for its own
			// pages, and the kernel serializes commits enclave-wide.
			commitStart := start
			if s.edmmFree > commitStart {
				commitStart = s.edmmFree
			}
			s.bd.CommitWaitCycles += commitStart - start
			cost := pages * s.w.OS.EDMMPage
			s.bd.CommitCycles += cost
			start = commitStart + cost
			s.edmmFree = start
		} else {
			// Plain minor faults: per-worker cost, no serialization.
			cost := pages * s.w.OS.MinorFault
			s.bd.CommitCycles += cost
			start += cost
		}
	}
	done := start + r.service + s.trans // service, then worker EEXIT
	s.bd.ServiceCycles += r.service
	s.workers[w] = worker{req: r, done: done, busy: true}
	s.schedule(done, evDone, w)
}

// complete finishes worker w's request at time t and closes the client
// loop (think, then next issue).
func (s *sim) complete(w int, t uint64) {
	r := s.workers[w].req
	s.workers[w].busy = false
	lat := t - r.issue
	s.lats = append(s.lats, lat)
	s.bd.Requests++
	if t > s.makespan {
		s.makespan = t
	}
	cs := &s.perClient[r.client]
	cs.Requests++
	cs.MeanCycles += lat // sum here; divided at the end
	if lat > cs.MaxCycles {
		cs.MaxCycles = lat
	}
	s.classReq[r.class]++
	s.classLat[r.class] += lat
	if s.issued[r.client] < s.cfg.RequestsPerClient {
		s.issued[r.client]++
		s.schedule(t+s.cfg.ThinkCycles, evIssue, r.client)
	}
	// The freed worker pops the next request, if any.
	if s.qHead < len(s.queue) {
		s.dispatch(w, t)
	} else {
		s.idle = append(s.idle, w)
	}
}

// Simulate replays one serving scenario over the calibrated workload.
// Pure integer event-driven arithmetic on the virtual clock: the result
// is bit-reproducible across runs and engine paths.
func (w *Workload) Simulate(cfg Config) *Result {
	cfg = cfg.normalized()
	if len(w.Classes) == 0 {
		panic("serve: Simulate over a workload with no classes")
	}
	if cfg.Weights != nil {
		if len(cfg.Weights) != len(w.Classes) {
			panic(fmt.Sprintf("serve: %d weights for %d classes", len(cfg.Weights), len(w.Classes)))
		}
		total := 0
		for _, wt := range cfg.Weights {
			if wt < 0 {
				panic(fmt.Sprintf("serve: negative class weight %d", wt))
			}
			total += wt
		}
		if total == 0 {
			panic("serve: class weights sum to zero")
		}
	}
	s := &sim{
		w:         w,
		cfg:       cfg,
		q:         w.queueModel(cfg.Sync),
		workers:   make([]worker, cfg.Workers),
		issued:    make([]int, cfg.Clients),
		perClient: make([]ClientSummary, cfg.Clients),
		classReq:  make([]int, len(w.Classes)),
		classLat:  make([]uint64, len(w.Classes)),
	}
	if w.InEnclave {
		s.trans = w.OS.Transition
	}
	for wi := 0; wi < cfg.Workers; wi++ {
		s.idle = append(s.idle, wi)
	}
	for c := 0; c < cfg.Clients; c++ {
		s.issued[c] = 1
		s.schedule(0, evIssue, c)
	}
	// (heap.Push from an empty heap maintains the invariant throughout;
	// no Init needed.)
	for s.events.Len() > 0 {
		ev := heap.Pop(&s.events).(event)
		switch ev.kind {
		case evIssue:
			s.issue(ev.who, ev.t)
		case evEnqueue:
			r := s.pending[ev.who]
			r.enq = ev.t
			s.queue = append(s.queue, r)
			if s.iHead < len(s.idle) {
				wi := s.idle[s.iHead]
				s.iHead++
				if s.iHead == len(s.idle) { // compact the drained FIFO
					s.idle = s.idle[:0]
					s.iHead = 0
				}
				s.dispatch(wi, ev.t)
			}
		case evDone:
			s.complete(ev.who, ev.t)
		}
	}
	return s.result()
}

// pctl returns the nearest-rank p-th percentile of the sorted latencies.
func pctl(sorted []uint64, p int) uint64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := (len(sorted)*p + 99) / 100
	if idx < 1 {
		idx = 1
	}
	return sorted[idx-1]
}

func (s *sim) result() *Result {
	res := &Result{
		Setting:        s.w.Setting.String(),
		Queue:          s.q.Name,
		Config:         s.cfg,
		Requests:       len(s.lats),
		MakespanCycles: s.makespan,
		Breakdown:      s.bd,
		PerClient:      s.perClient,
	}
	if s.makespan > 0 {
		res.ThroughputQPS = float64(res.Requests) / s.w.Plat.CyclesToSeconds(s.makespan)
	}
	sorted := append([]uint64(nil), s.lats...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	res.P50 = pctl(sorted, 50)
	res.P95 = pctl(sorted, 95)
	res.P99 = pctl(sorted, 99)
	if n := len(sorted); n > 0 {
		res.Max = sorted[n-1]
	}
	for i := range res.PerClient {
		if r := res.PerClient[i].Requests; r > 0 {
			res.PerClient[i].MeanCycles /= uint64(r)
		}
	}
	for i, cc := range s.w.Classes {
		cs := ClassSummary{Name: cc.Name, Requests: s.classReq[i]}
		if cs.Requests > 0 {
			cs.MeanCycles = s.classLat[i] / uint64(cs.Requests)
		}
		res.PerClass = append(res.PerClass, cs)
	}
	res.Check = s.check(res)
	return res
}

// check folds the scenario's observable behaviour into one FNV-1a value:
// every latency in completion order, the breakdown, the makespan and the
// class mix. Shares the hash discipline of the pipeline check values.
func (s *sim) check(res *Result) uint64 {
	h := agg.FNVOffset64
	h = agg.Mix(h, uint64(res.Requests))
	h = agg.Mix(h, res.MakespanCycles)
	for _, l := range s.lats {
		h = agg.Mix(h, l)
	}
	h = res.Breakdown.Fold(h)
	for i := range s.classReq {
		h = agg.Mix(h, uint64(s.classReq[i]))
	}
	return h
}
