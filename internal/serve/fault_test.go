package serve_test

import (
	"strings"
	"testing"

	"sgxbench/internal/core"
	"sgxbench/internal/serve"
	"sgxbench/internal/sgx"
)

// faultPlan returns the full crash-storm plan used by the behavioral
// tests: storms, crashes and transient aborts together, scaled to the
// synthetic workload's 50k-cycle service time.
func faultPlan() *serve.FaultPlan {
	fc := sgx.DefaultFaultCosts()
	fc.Teardown = 25_000
	fc.RebuildBase = 150_000
	return &serve.FaultPlan{
		Seed:          11,
		CrashInterval: 3_000_000,
		RebuildPages:  64,
		StormInterval: 1_000_000,
		StormLen:      450_000,
		StormAEXGap:   fc.AEX / 5,
		FailPct:       2,
		Costs:         fc,
	}
}

// faultCfg is the saturating scenario the behavioral tests perturb:
// deadlines, retries and backoff on, admission off unless set.
func faultCfg(plan *serve.FaultPlan) serve.Config {
	return serve.Config{
		Clients: 32, Workers: 4, RequestsPerClient: 8,
		Sync: serve.SyncLockFree, Mem: serve.MemPreSized,
		ThinkCycles: 600_000, JitterPct: 10, Seed: 7,
		DeadlineCycles: 350_000,
		MaxRetries:     7,
		BackoffBase:    50_000,
		BackoffCap:     800_000,
		Fault:          plan,
	}
}

// TestConfigValidate: every malformed configuration must be rejected
// with an error instead of panicking or skewing a golden number.
func TestConfigValidate(t *testing.T) {
	w := synthetic(core.SGXDiE, 50_000, 0)
	ok := cfg(serve.SyncLockFree, serve.MemPreSized)
	cases := []struct {
		name string
		mut  func(c *serve.Config)
		want string
	}{
		{"weights length", func(c *serve.Config) { c.Weights = []int{1} }, "weights"},
		{"negative weight", func(c *serve.Config) { c.Weights = []int{1, -1} }, "negative weight"},
		{"zero-sum weights", func(c *serve.Config) { c.Weights = []int{0, 0} }, "sum to zero"},
		{"negative clients", func(c *serve.Config) { c.Clients = -1 }, "negative counts"},
		{"negative workers", func(c *serve.Config) { c.Workers = -2 }, "negative counts"},
		{"negative requests", func(c *serve.Config) { c.RequestsPerClient = -3 }, "negative counts"},
		{"zero workers, live clients", func(c *serve.Config) { c.Workers = 0 }, "zero workers"},
		{"jitter 100", func(c *serve.Config) { c.JitterPct = 100 }, "JitterPct"},
		{"negative jitter", func(c *serve.Config) { c.JitterPct = -1 }, "JitterPct"},
		{"negative retries", func(c *serve.Config) { c.MaxRetries = -1 }, "MaxRetries"},
		{"negative admit depth", func(c *serve.Config) { c.AdmitDepth = -1 }, "AdmitDepth"},
		{"backoff base above cap", func(c *serve.Config) { c.BackoffBase = 10; c.BackoffCap = 5 }, "BackoffBase"},
		{"no-op fault plan", func(c *serve.Config) { c.Fault = &serve.FaultPlan{} }, "injects nothing"},
		{"storm without length", func(c *serve.Config) {
			c.Fault = &serve.FaultPlan{StormInterval: 100, StormAEXGap: 10}
		}, "storm length"},
		{"storm longer than interval", func(c *serve.Config) {
			c.Fault = &serve.FaultPlan{StormInterval: 100, StormLen: 101, StormAEXGap: 10}
		}, "storm length"},
		{"storm without gap", func(c *serve.Config) {
			c.Fault = &serve.FaultPlan{StormInterval: 100, StormLen: 50}
		}, "StormAEXGap"},
		{"fail pct above 100", func(c *serve.Config) { c.Fault = &serve.FaultPlan{FailPct: 101} }, "FailPct"},
		{"negative rebuild pages", func(c *serve.Config) {
			c.Fault = &serve.FaultPlan{CrashInterval: 100, RebuildPages: -1}
		}, "RebuildPages"},
		{"unknown dispatch kind", func(c *serve.Config) { c.Dispatch = serve.DispatchKind(9) }, "DispatchKind"},
		{"negative batch", func(c *serve.Config) { c.Batch = -4 }, "Batch"},
		{"think tail without think", func(c *serve.Config) { c.ThinkHeavyTail = true }, "ThinkHeavyTail"},
		{"arrival without gap", func(c *serve.Config) {
			c.Arrival = &serve.ArrivalPlan{Kind: serve.ArrivalPoisson}
		}, "MeanGapCycles"},
		{"bursty without burst size", func(c *serve.Config) {
			c.Arrival = &serve.ArrivalPlan{Kind: serve.ArrivalBursty, MeanGapCycles: 1000}
		}, "BurstSize"},
		{"diurnal ramp too short", func(c *serve.Config) {
			c.Arrival = &serve.ArrivalPlan{Kind: serve.ArrivalDiurnal, MeanGapCycles: 1000, RampPeriodCycles: 15}
		}, "RampPeriodCycles"},
		{"unknown arrival kind", func(c *serve.Config) {
			c.Arrival = &serve.ArrivalPlan{Kind: serve.ArrivalKind(7), MeanGapCycles: 1000}
		}, "ArrivalKind"},
		{"open loop with think time", func(c *serve.Config) {
			c.ThinkCycles = 100
			c.Arrival = &serve.ArrivalPlan{Kind: serve.ArrivalPoisson, MeanGapCycles: 1000}
		}, "closed-loop knob"},
	}
	for _, tc := range cases {
		c := ok
		tc.mut(&c)
		if err := c.Validate(len(w.Classes)); err == nil {
			t.Errorf("%s: Validate accepted a malformed config", tc.name)
		} else if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
		if _, err := w.Simulate(c); err == nil {
			t.Errorf("%s: Simulate ran a malformed config", tc.name)
		}
	}
	if err := ok.Validate(0); err == nil {
		t.Error("Validate accepted a workload with no classes")
	}
	if err := ok.Validate(len(w.Classes)); err != nil {
		t.Errorf("Validate rejected the baseline config: %v", err)
	}
}

// TestRetryTermination: retries must always terminate — even when every
// single attempt fails, every logical request reaches a terminal state
// after exactly MaxRetries re-issues (no retry-storm livelock).
func TestRetryTermination(t *testing.T) {
	w := synthetic(core.SGXDiE, 50_000, 0)
	c := cfg(serve.SyncLockFree, serve.MemPreSized)
	c.MaxRetries = 8
	c.BackoffBase = 10_000
	c.BackoffCap = 80_000
	c.Fault = &serve.FaultPlan{Seed: 3, FailPct: 100}
	r := mustSim(t, w, c)
	want := c.Clients * c.RequestsPerClient
	if r.Requests != want {
		t.Fatalf("requests = %d, want %d", r.Requests, want)
	}
	if r.Succeeded != 0 || r.Failed != want {
		t.Fatalf("outcome = %d ok / %d failed, want 0 / %d", r.Succeeded, r.Failed, want)
	}
	if got, wantR := r.Breakdown.Retries, uint64(want*c.MaxRetries); got != wantR {
		t.Fatalf("retries = %d, want exactly %d (MaxRetries per request)", got, wantR)
	}
	if r.GoodputQPS != 0 {
		t.Fatalf("goodput = %f with zero successes", r.GoodputQPS)
	}
}

// TestFaultDeterminism: a fully faulted scenario must replay
// bit-identically — fault injection adds no hidden nondeterminism.
func TestFaultDeterminism(t *testing.T) {
	w := synthetic(core.SGXDiE, 50_000, 16)
	c := faultCfg(faultPlan())
	a := mustSim(t, w, c)
	for rep := 0; rep < 3; rep++ {
		b := mustSim(t, w, c)
		if a.Check != b.Check || a.MakespanCycles != b.MakespanCycles ||
			a.Breakdown != b.Breakdown || a.Succeeded != b.Succeeded ||
			a.P99 != b.P99 || len(a.Faults) != len(b.Faults) {
			t.Fatalf("faulted replay diverged: %+v vs %+v", a, b)
		}
	}
	if a.Breakdown.Crashes == 0 || a.Breakdown.AEXEvents == 0 {
		t.Fatalf("fault plan injected nothing: %+v", a.Breakdown)
	}
}

// TestFaultEnginePathEquivalence: the same faulted scenario over fast-
// and reference-calibrated workloads must agree bit for bit — the
// fault path preserves the engine's cross-path invariant.
func TestFaultEnginePathEquivalence(t *testing.T) {
	small := serve.CalibrateOptions{Setting: core.SGXDiE, NDim: 64, NFact: 1 << 9}
	fast, err := serve.Calibrate(small)
	if err != nil {
		t.Fatal(err)
	}
	small.Reference = true
	ref, err := serve.Calibrate(small)
	if err != nil {
		t.Fatal(err)
	}
	var sum uint64
	for _, cc := range fast.Classes {
		sum += cc.ServiceCycles
	}
	s := sum / uint64(len(fast.Classes))
	fc := sgx.DefaultFaultCosts()
	fc.Teardown = s / 2
	fc.RebuildBase = 3 * s
	c := serve.Config{
		Clients: 24, Workers: 4, RequestsPerClient: 4,
		Sync: serve.SyncLockFree, Mem: serve.MemPreSized,
		ThinkCycles: 4 * s, JitterPct: 10, Seed: 7,
		DeadlineCycles: 7 * s, MaxRetries: 5,
		BackoffBase: s, BackoffCap: 8 * s, AdmitDepth: 8,
		Fault: &serve.FaultPlan{
			Seed: 11, CrashInterval: 40 * s, RebuildPages: 64,
			StormInterval: 12 * s, StormLen: 5 * s, StormAEXGap: fc.AEX / 5,
			FailPct: 5, Costs: fc,
		},
	}
	fr, rr := mustSim(t, fast, c), mustSim(t, ref, c)
	if fr.Check != rr.Check || fr.MakespanCycles != rr.MakespanCycles ||
		fr.Breakdown != rr.Breakdown || fr.Succeeded != rr.Succeeded {
		t.Fatalf("faulted scenario diverged across engine paths (check %#x vs %#x)", fr.Check, rr.Check)
	}
}

// TestFaultBehavior: each injected fault mode must surface in its own
// Breakdown counters, and mitigations must engage.
func TestFaultBehavior(t *testing.T) {
	w := synthetic(core.SGXDiE, 50_000, 16)
	clean := mustSim(t, w, faultCfg(nil))

	stormOnly := faultPlan()
	stormOnly.CrashInterval = 0
	stormOnly.FailPct = 0
	storm := mustSim(t, w, faultCfg(stormOnly))
	if storm.Breakdown.AEXEvents == 0 || storm.Breakdown.AEXCycles == 0 {
		t.Fatalf("storms injected no AEX: %+v", storm.Breakdown)
	}
	if storm.MakespanCycles <= clean.MakespanCycles {
		t.Fatalf("storms did not stretch the makespan: %d <= %d", storm.MakespanCycles, clean.MakespanCycles)
	}
	if storm.Breakdown.Crashes != 0 || storm.Breakdown.RebuildCycles != 0 {
		t.Fatalf("storm-only plan crashed enclaves: %+v", storm.Breakdown)
	}

	full := mustSim(t, w, faultCfg(faultPlan()))
	if full.Breakdown.Crashes == 0 || full.Breakdown.RebuildCycles == 0 {
		t.Fatalf("crash plan produced no crashes: %+v", full.Breakdown)
	}
	if full.Breakdown.Timeouts == 0 {
		t.Fatalf("deadlines produced no timeouts under faults: %+v", full.Breakdown)
	}
	if len(full.Faults) == 0 {
		t.Fatal("crash plan recorded no fault events")
	}
	sawCrash := false
	for _, ev := range full.Faults {
		switch ev.Kind {
		case "crash":
			sawCrash = true
		case "rebuilt":
		default:
			t.Fatalf("unknown fault event kind %q", ev.Kind)
		}
		if ev.Worker < 0 || ev.Worker >= 4 {
			t.Fatalf("fault event names worker %d of 4", ev.Worker)
		}
	}
	if !sawCrash {
		t.Fatal("fault timeline has no crash events")
	}

	admitCfg := faultCfg(faultPlan())
	admitCfg.AdmitDepth = 8
	admitted := mustSim(t, w, admitCfg)
	if admitted.Breakdown.Shed == 0 {
		t.Fatalf("admission control never shed under a crash-storm: %+v", admitted.Breakdown)
	}
	if admitted.GoodputQPS < full.GoodputQPS {
		t.Fatalf("admission control degraded goodput under faults: %.0f < %.0f",
			admitted.GoodputQPS, full.GoodputQPS)
	}
}

// TestStormWindows pins the timeline helper diag prints: windows open at
// every positive multiple of the interval, before the horizon.
func TestStormWindows(t *testing.T) {
	p := &serve.FaultPlan{StormInterval: 100, StormLen: 30, StormAEXGap: 10}
	got := p.StormWindows(250)
	want := [][2]uint64{{100, 130}, {200, 230}}
	if len(got) != len(want) {
		t.Fatalf("windows = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("windows = %v, want %v", got, want)
		}
	}
	var nilPlan *serve.FaultPlan
	if ws := nilPlan.StormWindows(1000); len(ws) != 0 {
		t.Fatalf("nil plan has windows: %v", ws)
	}
}
