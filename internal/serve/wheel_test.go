package serve

import (
	"testing"

	"sgxbench/internal/core"
	"sgxbench/internal/platform"
	"sgxbench/internal/sgx"
)

// popBoth pops one event from each queue and fails on any divergence:
// the wheel must reproduce the heap's (time, seq) order bit-exactly,
// including the full event payload.
func popBoth(t *testing.T, wh, hp eventQueue, step int) event {
	t.Helper()
	a, b := wh.pop(), hp.pop()
	if a != b {
		t.Fatalf("step %d: wheel popped %+v, heap popped %+v", step, a, b)
	}
	return a
}

// TestWheelDifferentialRandom drives the timer wheel and the
// container/heap oracle through identical randomized push/pop
// interleavings across seeds. Delta draws deliberately mix equal times
// (seq tie-breaks), small same-slot offsets, and jumps across every
// cascade boundary (64^1 .. 64^9 cycles ahead), so slots at all levels
// fill, drain and cascade.
func TestWheelDifferentialRandom(t *testing.T) {
	for seed := uint64(1); seed <= 8; seed++ {
		wh := newTimerWheel()
		hp := &heapQueue{}
		r := seed
		next := func(mod uint64) uint64 {
			r = splitmix64(r)
			return r % mod
		}
		var now, lastPush, seq uint64
		pending := 0
		push := func() {
			var tt uint64
			switch next(8) {
			case 0: // exact tie with the previous push: pure seq ordering
				tt = lastPush
				if tt < now {
					tt = now
				}
			case 1: // same level-0 window
				tt = now + next(64)
			case 2, 3: // a few slots ahead
				tt = now + next(4096)
			default: // jump across a cascade boundary at a random level
				lvl := 1 + next(9)
				tt = now + uint64(1)<<(6*lvl) - 32 + next(64)
			}
			lastPush = tt
			seq++
			e := event{t: tt, seq: seq, kind: int(next(6)), who: int(next(1024))}
			wh.push(e)
			hp.push(e)
			pending++
		}
		for i := 0; i < 20000; i++ {
			if pending == 0 || next(5) < 2 {
				push()
				continue
			}
			now = popBoth(t, wh, hp, i).t
			pending--
		}
		for step := 0; pending > 0; pending-- {
			popBoth(t, wh, hp, step)
			step++
		}
		if !wh.empty() || !hp.empty() {
			t.Fatalf("seed %d: queues not drained together", seed)
		}
	}
}

// TestWheelCascadeBoundaries pins the exact cascade edges: events
// straddling 64^l - 1, 64^l, 64^l + 1 for the lower levels, pushed in
// scrambled order with duplicate times, must pop in heap order.
func TestWheelCascadeBoundaries(t *testing.T) {
	var times []uint64
	for lvl := uint(1); lvl <= 4; lvl++ {
		b := uint64(1) << (6 * lvl)
		times = append(times, b-1, b, b+1, b, 2*b-1, 2*b, 3*b+63)
	}
	wh := newTimerWheel()
	hp := &heapQueue{}
	r := uint64(99)
	for seq := uint64(1); seq <= 4096; seq++ {
		r = splitmix64(r)
		e := event{t: times[r%uint64(len(times))], seq: seq, who: int(seq)}
		wh.push(e)
		hp.push(e)
	}
	for i := 0; i < 4096; i++ {
		popBoth(t, wh, hp, i)
	}
}

// TestWheelLatePush: the simulator never schedules into the past, but
// the wheel must not silently diverge from heap semantics if it ever
// did — a late event pops first, ordered among other late events.
func TestWheelLatePush(t *testing.T) {
	wh := newTimerWheel()
	hp := &heapQueue{}
	both := func(e event) { wh.push(e); hp.push(e) }
	both(event{t: 1000, seq: 1})
	popBoth(t, wh, hp, 0) // advances wheel cur to 1000
	both(event{t: 2000, seq: 2})
	both(event{t: 500, seq: 3}) // late
	both(event{t: 500, seq: 4}) // late tie: seq order
	both(event{t: 250, seq: 5}) // later but earlier t: sorts first
	for i := 0; i < 4; i++ {
		popBoth(t, wh, hp, i)
	}
}

// wheelTestWorkload is a hand-built workload for full-replay
// differential tests (internal twin of serve_test.synthetic).
func wheelTestWorkload(setting core.Setting) *Workload {
	return &Workload{
		Setting:   setting,
		Plat:      platform.XeonGold6326(),
		OS:        sgx.DefaultOSCosts(),
		InEnclave: setting.InEnclave(),
		Classes: []ClassCost{
			{Name: "a", ServiceCycles: 40_000, Pages: 16},
			{Name: "b", ServiceCycles: 90_000, Pages: 24},
		},
	}
}

// TestSimulateHeapWheelIdentical replays a scenario matrix spanning
// every simulator feature — legacy global closed loop, faults with
// deadlines/retries/admission, sharded stealing, batching, and
// open-loop arrivals of every kind — once on the heap and once on the
// wheel, and requires bit-identical results. Together with the golden
// gate (whose snapshots predate the wheel) this proves the event-loop
// refactor changed nothing observable.
func TestSimulateHeapWheelIdentical(t *testing.T) {
	base := Config{Clients: 48, Workers: 8, RequestsPerClient: 6, Sync: SyncLockFree, JitterPct: 10, Seed: 7}
	fault := &FaultPlan{Seed: 11, CrashInterval: 4_000_000, StormInterval: 2_000_000,
		StormLen: 900_000, StormAEXGap: 2_000, FailPct: 3}
	cfgs := map[string]func(Config) Config{
		"legacy.mutex.dyn": func(c Config) Config {
			c.Sync, c.Mem, c.ThinkCycles = SyncMutex, MemDynamic, 200_000
			return c
		},
		"legacy.fault": func(c Config) Config {
			c.Fault, c.DeadlineCycles, c.MaxRetries = fault, 2_500_000, 5
			c.BackoffBase, c.BackoffCap, c.AdmitDepth = 50_000, 800_000, 12
			return c
		},
		"shard.steal": func(c Config) Config {
			c.Dispatch, c.Clients = DispatchSharded, 96
			return c
		},
		"shard.batch.fault": func(c Config) Config {
			c.Dispatch, c.Batch, c.Fault, c.MaxRetries = DispatchSharded, 8, fault, 5
			return c
		},
		"open.poisson": func(c Config) Config {
			c.Arrival = &ArrivalPlan{Kind: ArrivalPoisson, MeanGapCycles: 400_000}
			return c
		},
		"open.bursty.shard.batch": func(c Config) Config {
			c.Dispatch, c.Batch = DispatchSharded, 16
			c.Arrival = &ArrivalPlan{Kind: ArrivalBursty, MeanGapCycles: 300_000, BurstSize: 8}
			return c
		},
		"open.diurnal": func(c Config) Config {
			c.Arrival = &ArrivalPlan{Kind: ArrivalDiurnal, MeanGapCycles: 300_000, RampPeriodCycles: 8_000_000}
			return c
		},
		"open.heavytail": func(c Config) Config {
			c.Arrival = &ArrivalPlan{Kind: ArrivalHeavyTail, MeanGapCycles: 300_000}
			return c
		},
		"closed.thinktail": func(c Config) Config {
			c.ThinkCycles, c.ThinkHeavyTail = 300_000, true
			return c
		},
	}
	for _, setting := range []core.Setting{core.PlainCPU, core.SGXDiE} {
		w := wheelTestWorkload(setting)
		for name, mut := range cfgs {
			cfg := mut(base)
			wheel, err := w.Simulate(cfg)
			if err != nil {
				t.Fatalf("%v/%s (wheel): %v", setting, name, err)
			}
			cfg.useHeap = true
			hp, err := w.Simulate(cfg)
			if err != nil {
				t.Fatalf("%v/%s (heap): %v", setting, name, err)
			}
			if wheel.Check != hp.Check || wheel.MakespanCycles != hp.MakespanCycles ||
				wheel.Breakdown != hp.Breakdown || wheel.DispatchStats != hp.DispatchStats ||
				wheel.P50 != hp.P50 || wheel.P99 != hp.P99 ||
				wheel.Succeeded != hp.Succeeded || wheel.Failed != hp.Failed {
				t.Errorf("%v/%s: wheel and heap replays diverge:\nwheel: check=%#x makespan=%d %+v\nheap:  check=%#x makespan=%d %+v",
					setting, name, wheel.Check, wheel.MakespanCycles, wheel.Breakdown,
					hp.Check, hp.MakespanCycles, hp.Breakdown)
			}
		}
	}
}
