package sort

import (
	"sgxbench/internal/core"
	"sgxbench/internal/engine"
	"sgxbench/internal/exec"
	"sgxbench/internal/mem"
)

// Heap-based top-k: ORDER BY key LIMIT k without sorting the input.
// Every thread streams its chunk once (batched sequential loads) against
// a size-k binary max-heap of the smallest rows seen so far; most rows
// fail the register-cached threshold compare and cost one work cycle,
// and the occasional heap replacement walks the log2(k) root path whose
// top levels share one or two cache lines — the engine's MRU line memo
// and L1 absorb them, which is what keeps top-k in the sequential-stream
// cost regime rather than the random-access one.

// TopKOptions configures a top-k run.
type TopKOptions struct {
	// Threads is the number of worker threads (TopK only; TopKOn uses the
	// group's).
	Threads int
	// NodeOf pins thread i to a socket (TopK only).
	NodeOf func(i int) int
	// RunLen overrides the in-cache run length of the final candidate
	// sort (0: RunLen(env)).
	RunLen int
	// Heap / Tmp (T*k words each) and Out (k words), when non-nil, are
	// the pre-allocated per-thread heap area, final-sort ping-pong and
	// result buffers; reused across repeated runs so re-runs see
	// identical simulated addresses.
	Heap *mem.U64Buf
	Tmp  *mem.U64Buf
	Out  *mem.U64Buf
}

func (o TopKOptions) threads() int {
	if o.Threads < 1 {
		return 1
	}
	return o.Threads
}

// TopKResult reports a completed top-k.
type TopKResult struct {
	WallCycles uint64
	// K is the number of rows emitted: min(k, n), in ascending TupLess
	// order at the front of Out.
	K int
	// Check is FNV-1a over the emitted rows in order.
	Check  uint64
	Phases []exec.PhaseStats
	Stats  engine.Stats
	Out    *mem.U64Buf
}

// TopK selects the k smallest rows of in[:n] under env on a fresh group.
func TopK(env *core.Env, in *mem.U64Buf, n, k int, opt TopKOptions) *TopKResult {
	return TopKOn(env, env.NewGroup(opt.threads(), opt.NodeOf), in, n, k, opt)
}

// topkBlock is the number of rows loaded per bulk engine call in the
// scan loop (one call per 2 KiB of input, the scan hot-loop idiom).
const topkBlock = 256

// TopKOn selects the k smallest rows (by TupLess: key, then full tuple)
// of in[:n] on an existing thread group and emits them in ascending
// order into Out. Phase structure: a per-thread streaming heap scan,
// then a single-threaded candidate merge (sort of the <= T*k survivors
// with the in-cache run-sort, emission of the first k). Deterministic at
// any thread count; bit-identical across engine paths.
func TopKOn(env *core.Env, g *exec.Group, in *mem.U64Buf, n, k int, opt TopKOptions) *TopKResult {
	T := len(g.Threads)
	mark := g.Mark()
	if k < 0 {
		k = 0
	}
	if k > n {
		k = n
	}
	reg := env.DataRegion()
	heap := opt.Heap
	if heap == nil || heap.Len() < T*k {
		heap = env.Space.AllocU64("topk.heap", maxInt(T*k, 1), reg)
	}
	tmp := opt.Tmp
	if tmp == nil || tmp.Len() < T*k {
		tmp = env.Space.AllocU64("topk.tmp", maxInt(T*k, 1), reg)
	}
	out := opt.Out
	if out == nil || out.Len() < k {
		out = env.Space.AllocU64("topk.out", maxInt(k, 1), reg)
	}
	runLen := opt.RunLen
	if runLen <= 0 {
		runLen = RunLen(env)
	}
	res := &TopKResult{Out: out}

	// --- Phase: streaming heap scan, one heap region per thread ---
	sizes := make([]int, T)
	g.Phase("TopK.Scan", func(t *engine.Thread, id int) {
		if k == 0 {
			return
		}
		lo, hi := chunk(n, T, id)
		h := newHeapRegion(heap, id*k, k)
		var toks [topkBlock]engine.Tok
		for pos := lo; pos < hi; {
			blk := hi - pos
			if blk > topkBlock {
				blk = topkBlock
			}
			t.LoadRunToks(&in.Buffer, in.Off(pos), 8, blk, 0, toks[:blk])
			for j := 0; j < blk; j++ {
				h.offer(t, in.D[pos+j], toks[j])
			}
			pos += blk
		}
		sizes[id] = h.size
	})

	// --- Phase: candidate merge (thread 0) ---
	// Each chunk contributed at most its k smallest rows, so the global
	// top-k is contained in the <= T*k candidates: compact them, sort
	// them in cache, emit the first k.
	g.Phase("TopK.Merge", func(t *engine.Thread, id int) {
		if id != 0 || k == 0 {
			return
		}
		total := sizes[0]
		for c := 1; c < T; c++ {
			sz := sizes[c]
			if sz == 0 {
				continue
			}
			// Compact region c to the candidate prefix: one sequential
			// read run, one sequential write run.
			tok := t.LoadRun(&heap.Buffer, heap.Off(c*k), 8, sz, 0)
			copy(heap.D[total:total+sz], heap.D[c*k:c*k+sz])
			t.StoreRun(&heap.Buffer, heap.Off(total), 8, sz, 0, tok)
			total += sz
		}
		ChunkSort(t, heap, tmp, 0, total, runLen)
		kOut := minInt(k, total)
		tok := t.LoadRun(&heap.Buffer, 0, 8, kOut, 0)
		copy(out.D[:kOut], heap.D[:kOut])
		t.StoreRun(&out.Buffer, 0, 8, kOut, 0, tok)
		res.K = kOut
	})

	res.Check = Checksum(out, res.K)
	res.Phases, res.Stats, res.WallCycles = g.Since(mark)
	return res
}

// heapRegion is a size-capped binary max-heap (by TupLess) living in a
// thread's slice of the shared heap buffer. The root holds the largest
// kept row — the admission threshold, cached in a register between
// mutations so a failing offer charges one compare cycle and no memory
// access.
type heapRegion struct {
	buf  *mem.U64Buf
	base int
	cap  int
	size int
	root uint64 // register-cached threshold (valid once size == cap)
}

func newHeapRegion(buf *mem.U64Buf, base, cap int) *heapRegion {
	return &heapRegion{buf: buf, base: base, cap: cap}
}

// offer considers one streamed row; tok is its load token (the address
// dependencies of the heap stores derive from the compared value).
func (h *heapRegion) offer(t *engine.Thread, v uint64, tok engine.Tok) {
	t.Work(1) // threshold compare against the register-cached root
	if h.size == h.cap {
		if !TupLess(v, h.root) {
			return
		}
		h.replaceRoot(t, v, tok)
		return
	}
	// Fill phase: append at the next leaf, sift up.
	i := h.size
	h.size++
	engine.StoreU64(t, h.buf, h.base+i, v, 0, engine.After(tok, 1))
	for i > 0 {
		p := (i - 1) / 2
		pv, ptok := engine.LoadU64(t, h.buf, h.base+p, 0)
		t.Work(1)
		if !TupLess(pv, h.buf.D[h.base+i]) {
			break
		}
		// Swap child and parent (two stores on the sift path).
		cv := h.buf.D[h.base+i]
		engine.StoreU64(t, h.buf, h.base+i, pv, 0, engine.After(ptok, 1))
		engine.StoreU64(t, h.buf, h.base+p, cv, 0, engine.After(ptok, 1))
		i = p
	}
	h.root = h.buf.D[h.base]
}

// replaceRoot overwrites the root with v and sifts it down the log2(k)
// root path; the first levels share the root's cache line, so the MRU
// memo charges them as L1 hits.
func (h *heapRegion) replaceRoot(t *engine.Thread, v uint64, tok engine.Tok) {
	i := 0
	engine.StoreU64(t, h.buf, h.base, v, 0, engine.After(tok, 1))
	for {
		l, r := 2*i+1, 2*i+2
		if l >= h.size {
			break
		}
		c := l
		lv, ltok := engine.LoadU64(t, h.buf, h.base+l, 0)
		cv, ctok := lv, ltok
		if r < h.size {
			rv, rtok := engine.LoadU64(t, h.buf, h.base+r, 0)
			t.Work(1)
			if TupLess(lv, rv) {
				c, cv, ctok = r, rv, rtok
			}
		}
		t.Work(1)
		if !TupLess(h.buf.D[h.base+i], cv) {
			break
		}
		// Swap the larger child up.
		pv := h.buf.D[h.base+i]
		engine.StoreU64(t, h.buf, h.base+i, cv, 0, engine.After(ctok, 1))
		engine.StoreU64(t, h.buf, h.base+c, pv, 0, engine.After(ctok, 1))
		i = c
	}
	h.root = h.buf.D[h.base]
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
