package sort_test

import (
	"testing"

	"sgxbench/internal/core"
	sortop "sgxbench/internal/sort"
)

func allSettings() []core.Setting {
	return []core.Setting{core.PlainCPU, core.PlainCPUM, core.SGXDoE, core.SGXDiE}
}

// TestGoldenSortEquivalence enforces the fast-path invariant on the
// parallel sorter: under every execution setting and at multiple thread
// counts, the per-op reference engine and the batched fast engine must
// produce bit-identical checks, wall cycles and statistics.
func TestGoldenSortEquivalence(t *testing.T) {
	const n, maxKey = 20000, 4096
	for _, setting := range allSettings() {
		for _, threads := range []int{1, 3} {
			run := func(ref bool) *sortop.Result {
				env := newEnv(setting, ref)
				in := genTuples(env, "in", n, maxKey, 1234)
				return sortop.Run(env, in, n, sortop.Options{Threads: threads, MaxKey: maxKey})
			}
			ref, fast := run(true), run(false)
			label := setting.String()
			if ref.Check != fast.Check {
				t.Errorf("%s/T=%d: check ref=%#x fast=%#x", label, threads, ref.Check, fast.Check)
			}
			if ref.WallCycles != fast.WallCycles {
				t.Errorf("%s/T=%d: wall cycles ref=%d fast=%d", label, threads, ref.WallCycles, fast.WallCycles)
			}
			if ref.Stats != fast.Stats {
				t.Errorf("%s/T=%d: stats differ\nref:  %+v\nfast: %+v", label, threads, ref.Stats, fast.Stats)
			}
		}
	}
}

// TestGoldenTopKEquivalence enforces the fast-path invariant on the
// heap-based top-k under every setting.
func TestGoldenTopKEquivalence(t *testing.T) {
	const n, k, maxKey = 20000, 512, 4096
	for _, setting := range allSettings() {
		for _, threads := range []int{1, 3} {
			run := func(ref bool) *sortop.TopKResult {
				env := newEnv(setting, ref)
				in := genTuples(env, "in", n, maxKey, 4321)
				return sortop.TopK(env, in, n, k, sortop.TopKOptions{Threads: threads})
			}
			ref, fast := run(true), run(false)
			label := setting.String()
			if ref.Check != fast.Check || ref.K != fast.K {
				t.Errorf("%s/T=%d: check ref=%#x fast=%#x (k %d/%d)", label, threads, ref.Check, fast.Check, ref.K, fast.K)
			}
			if ref.WallCycles != fast.WallCycles {
				t.Errorf("%s/T=%d: wall cycles ref=%d fast=%d", label, threads, ref.WallCycles, fast.WallCycles)
			}
			if ref.Stats != fast.Stats {
				t.Errorf("%s/T=%d: stats differ\nref:  %+v\nfast: %+v", label, threads, ref.Stats, fast.Stats)
			}
		}
	}
}

// TestSortRepeatDeterminism: two identically prepared environments must
// produce pairwise bit-identical results on every repetition (the
// reproducibility the CI golden gate relies on).
func TestSortRepeatDeterminism(t *testing.T) {
	const n, maxKey = 20000, 4096
	mk := func() (*core.Env, func() (*sortop.Result, *sortop.TopKResult)) {
		env := newEnv(core.SGXDiE, false)
		in := genTuples(env, "in", n, maxKey, 77)
		work := env.Space.AllocU64("work", n, env.DataRegion())
		tmp := env.Space.AllocU64("tmp", n, env.DataRegion())
		out := env.Space.AllocU64("out", n, env.DataRegion())
		return env, func() (*sortop.Result, *sortop.TopKResult) {
			copy(work.D, in.D)
			sr := sortop.Run(env, work, n, sortop.Options{Threads: 2, MaxKey: maxKey, Tmp: tmp, Out: out})
			tr := sortop.TopK(env, in, n, 256, sortop.TopKOptions{Threads: 2})
			return sr, tr
		}
	}
	_, runA := mk()
	_, runB := mk()
	for rep := 0; rep < 3; rep++ {
		sa, ta := runA()
		sb, tb := runB()
		if sa.Check != sb.Check || sa.WallCycles != sb.WallCycles || sa.Stats != sb.Stats {
			t.Errorf("rep %d: sort diverged across identically prepared envs", rep)
		}
		if ta.Check != tb.Check || ta.WallCycles != tb.WallCycles || ta.Stats != tb.Stats {
			t.Errorf("rep %d: topk diverged across identically prepared envs", rep)
		}
	}
}
