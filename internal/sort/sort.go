// Package sort implements the batched sort operators of the query
// pipelines: a parallel run-sort + multi-way-merge ORDER BY and a
// heap-based top-k (ORDER BY ... LIMIT k).
//
// Sorting is the access-pattern counterpoint to the hash operators: its
// memory behaviour is dominated by sequential streams (in-cache run
// passes, streaming merge passes) plus compare work, so stores go to
// cursor positions known ahead of time and the SSB mitigation has little
// to bite on. This is why the paper's sort-merge join (MWAY, Fig 3)
// shows a far smaller enclave slowdown than the hash joins — the
// contrast the q5-vs-q2 bench gate asserts end to end.
//
// Simulation note (the m-way charging model, shared with join's MWAY):
// sorting is performed for real with the standard library, while the
// engine charges the access pattern of the vectorized merge network at
// cache-line granularity — log2(runLen) in-cache passes per run plus
// log2(n/runLen) streaming merge passes, then a splitter-partitioned
// multi-way merge with log2(T) compares per element. All hot loops run
// on the engine's batched bulk APIs with per-op reference
// decompositions, so results AND simulated statistics are bit-identical
// between the fast and reference engine paths (golden-tested under all
// four execution settings).
package sort

import (
	stdsort "sort"

	"sgxbench/internal/core"
	"sgxbench/internal/engine"
	"sgxbench/internal/exec"
	"sgxbench/internal/mem"
	"sgxbench/internal/rel"
)

// mergeWork is the charged compute per tuple per merge level (vectorized
// bitonic merge networks; branchless, so no mispredict costs).
const mergeWork = 3

// TupLess orders rows by sort key, breaking ties on the full tuple so
// that every sort is total and deterministic.
func TupLess(a, b uint64) bool {
	ka, kb := mem.TupleKey(a), mem.TupleKey(b)
	if ka != kb {
		return ka < kb
	}
	return a < b
}

// RunLen returns the in-cache run length for env: runs are sized so that
// a run and its ping-pong buffer together occupy half of L2 and stay
// resident across the in-run sort passes.
func RunLen(env *core.Env) int {
	runLen := int(env.Plat.L2.SizeBytes / 4 / rel.TupleBytes)
	if runLen < 64 {
		runLen = 64
	}
	return runLen
}

// ChunkSort really sorts buf[lo:hi] (by key, then tuple, via TupLess)
// and charges the timing of the m-way sort: each cache-sized run is
// sorted with log2(runLen) in-cache passes (the passes iterate
// run-by-run, so the simulated cache keeps each run resident exactly as
// the real algorithm does), followed by log2(n/runLen) streaming merge
// passes over the whole chunk, ping-ponging through tmp.
func ChunkSort(t *engine.Thread, buf, tmp *mem.U64Buf, lo, hi int, runLen int) {
	n := hi - lo
	if n <= 1 {
		return
	}
	stdsort.Slice(buf.D[lo:hi], func(i, j int) bool { return TupLess(buf.D[lo+i], buf.D[lo+j]) })
	const passBlock = 32
	var offs [passBlock]int64
	var toks [passBlock]engine.Tok
	pass := func(src, dst *mem.U64Buf, a, b int) {
		o := int64(a * 8)
		end := int64(b * 8)
		// Full-line blocks: one batched load run per block, then the
		// line stores with their per-line data dependencies as one
		// scatter (the merge network consumes a line before emitting it).
		for o+64 <= end {
			blk := int((end - o) / 64)
			if blk > passBlock {
				blk = passBlock
			}
			t.LoadRunToks(&src.Buffer, o, 64, blk, 0, toks[:blk])
			t.Work(8 * mergeWork * uint64(blk))
			for l := 0; l < blk; l++ {
				offs[l] = o + int64(l)*64
			}
			t.StoreScatter(&dst.Buffer, 64, offs[:blk], nil, toks[:blk])
			o += int64(blk) * 64
		}
		if o < end {
			tok := engine.LoadLine(t, &src.Buffer, o, 0)
			t.Work(8 * mergeWork)
			engine.StoreLine(t, &dst.Buffer, o, 0, tok)
		}
	}
	// In-cache run sorting: all passes of one run before the next run.
	for ra := lo; ra < hi; ra += runLen {
		rb := ra + runLen
		if rb > hi {
			rb = hi
		}
		src, dst := buf, tmp
		for r := 1; r < rb-ra; r <<= 1 {
			pass(src, dst, ra, rb)
			src, dst = dst, src
		}
		if src != buf {
			pass(src, buf, ra, rb) // copy back into place
		}
	}
	// Cross-run merge passes: streaming over the whole chunk.
	src, dst := buf, tmp
	levels := 0
	for r := runLen; r < n; r <<= 1 {
		pass(src, dst, lo, hi)
		src, dst = dst, src
		levels++
	}
	if levels%2 == 1 {
		pass(src, buf, lo, hi)
	}
}

// Options configures a sort run.
type Options struct {
	// Threads is the number of worker threads (Run only; RunOn uses the
	// group's).
	Threads int
	// NodeOf pins thread i to a socket (Run only).
	NodeOf func(i int) int
	// MaxKey bounds the key domain: merge splitters are computed
	// arithmetically over [0, MaxKey), which keeps them balanced for
	// uniform keys (correctness holds for any distribution). Zero derives
	// the bound from the data in an untimed setup pass.
	MaxKey uint32
	// RunLen overrides the in-cache run length (0: RunLen(env)).
	RunLen int
	// Tmp / Out, when non-nil, are the pre-allocated ping-pong and output
	// buffers (n words each); reused across repeated runs so re-runs see
	// identical simulated addresses (benchmark repetitions, golden gates).
	Tmp *mem.U64Buf
	Out *mem.U64Buf
	// SkipCheck skips the host-side O(n) FNV fold of the output
	// (Result.Check stays zero). Callers that discard the check — MWAY,
	// whose join result carries its own check values — avoid paying host
	// time for it in benchmarked paths. Simulated numbers are unaffected
	// either way.
	SkipCheck bool
}

func (o Options) threads() int {
	if o.Threads < 1 {
		return 1
	}
	return o.Threads
}

// Result reports a completed sort.
type Result struct {
	WallCycles uint64
	Rows       int
	// Check is FNV-1a over every output row in order — the deterministic
	// value benchmarks and golden gates compare.
	Check  uint64
	Phases []exec.PhaseStats
	Stats  engine.Stats
	// Out holds the globally sorted rows.
	Out *mem.U64Buf
}

// Run sorts in[:n] under env on a fresh thread group.
func Run(env *core.Env, in *mem.U64Buf, n int, opt Options) *Result {
	return RunOn(env, env.NewGroup(opt.threads(), opt.NodeOf), in, n, opt)
}

// RunOn sorts in[:n] on an existing thread group (pipeline stage
// composition: simulated cache/TLB state carries over from the upstream
// operator; Options.Threads and NodeOf are ignored). in is consumed as
// the per-thread chunk work area — after the run it holds the sorted
// per-thread chunks — and the globally sorted rows land in Out at
// deterministic offsets. Result timing and stats cover only this stage.
func RunOn(env *core.Env, g *exec.Group, in *mem.U64Buf, n int, opt Options) *Result {
	T := len(g.Threads)
	mark := g.Mark()
	reg := env.DataRegion()
	tmp := opt.Tmp
	if tmp == nil || tmp.Len() < n {
		tmp = env.Space.AllocU64("sort.tmp", n, reg)
	}
	out := opt.Out
	if out == nil || out.Len() < n {
		out = env.Space.AllocU64("sort.out", n, reg)
	}
	runLen := opt.RunLen
	if runLen <= 0 {
		runLen = RunLen(env)
	}
	maxKey := opt.MaxKey
	if maxKey == 0 {
		// Untimed setup pass (the caller knows the domain in every
		// pipeline; this fallback keeps ad-hoc sorts correct). A maximum
		// key of ^uint32(0) clamps instead of wrapping to zero — a zero
		// domain would collapse every splitter onto the last thread and
		// serialize the merge.
		for i := 0; i < n; i++ {
			if k := mem.TupleKey(in.D[i]); k >= maxKey {
				if k == ^uint32(0) {
					maxKey = k
				} else {
					maxKey = k + 1
				}
			}
		}
		if maxKey == 0 {
			maxKey = 1
		}
	}
	res := &Result{Rows: n, Out: out}

	// --- Phase: per-thread chunk sort ---
	g.Phase("Sort", func(t *engine.Thread, id int) {
		lo, hi := chunk(n, T, id)
		ChunkSort(t, in, tmp, lo, hi, runLen)
	})

	// --- Phase: multi-way merge, range-partitioned by key ---
	// Thread i merges keys in [Splitter(i), Splitter(i+1)) from every
	// chunk into out at the range's deterministic global offset; the last
	// thread's range is unbounded above (it runs to the chunk ends), so
	// keys at or past MaxKey — including ^uint32(0), which an exclusive
	// bound could never cover — are still emitted.
	g.Phase("Merge", func(t *engine.Thread, id int) {
		mergeRange(t, in, out, n, T, Splitter(maxKey, T, id), Splitter(maxKey, T, id+1), id == T-1)
	})

	if !opt.SkipCheck {
		res.Check = Checksum(out, n)
	}
	res.Phases, res.Stats, res.WallCycles = g.Since(mark)
	return res
}

// Splitter returns the i-th of T arithmetic key splitters over the
// domain [0, maxKey): thread i owns keys in [Splitter(i), Splitter(i+1))
// (the last range is widened to the full key space by the callers).
func Splitter(maxKey uint32, T, i int) uint32 {
	return uint32(uint64(maxKey) * uint64(i) / uint64(T))
}

// mergeRange merges the key range [loKey, hiKey) of the T sorted chunks
// of work into out: per-chunk binary searches locate the range (charged
// as dependent node probes), the output offset is the total number of
// rows below loKey, and a loser-tree merge emits the rows at log2(T)
// compares per element. last marks the final range, whose upper bound is
// the chunk ends rather than hiKey (no exclusive bound can cover the
// maximum key).
func mergeRange(t *engine.Thread, work, out *mem.U64Buf, n, T int, loKey, hiKey uint32, last bool) {
	type cursor struct{ pos, end int }
	cursors := make([]cursor, T)
	outPos := 0
	for c := 0; c < T; c++ {
		clo, chi := chunk(n, T, c)
		d := work.D[clo:chi]
		a := clo + stdsort.Search(len(d), func(i int) bool { return mem.TupleKey(d[i]) >= loKey })
		b := chi
		if !last {
			b = clo + stdsort.Search(len(d), func(i int) bool { return mem.TupleKey(d[i]) >= hiKey })
		}
		cursors[c] = cursor{pos: a, end: b}
		t.Work(20) // binary search probes
	}
	// Output offset: total rows below loKey across chunks.
	for c := 0; c < T; c++ {
		clo, _ := chunk(n, T, c)
		outPos += cursors[c].pos - clo
	}
	// K-way merge. The host-side selection is a plain linear min-scan
	// over the T cursors (T is small and the scan is branch-predictable);
	// the *charged* cost models the real algorithm's branchless
	// vectorized loser tree at log2(T) compares per element.
	logT := 1
	for 1<<logT < T {
		logT++
	}
	for {
		best, bestVal := -1, uint64(0)
		for c := 0; c < T; c++ {
			if cursors[c].pos < cursors[c].end {
				v := work.D[cursors[c].pos]
				if best == -1 || TupLess(v, bestVal) {
					best, bestVal = c, v
				}
			}
		}
		if best == -1 {
			break
		}
		p := cursors[best].pos
		var tok engine.Tok
		if p%8 == 0 {
			tok = engine.LoadLine(t, &work.Buffer, int64(p)*8, 0)
		}
		t.Work(uint64(logT) * mergeWork)
		engine.StoreU64(t, out, outPos, work.D[p], 0, tok)
		cursors[best].pos++
		outPos++
	}
}

// Checksum folds buf[:n] into one FNV-1a value (the hash discipline of
// the pipeline check values in internal/agg).
func Checksum(buf *mem.U64Buf, n int) uint64 {
	h := fnvOffset64
	h = mix(h, uint64(n))
	for i := 0; i < n; i++ {
		h = mix(h, buf.D[i])
	}
	return h
}

// FNV-1a, shared discipline with internal/agg (not imported to keep the
// operator layer dependency-light).
const (
	fnvOffset64 uint64 = 14695981039346656037
	fnvPrime64         = 1099511628211
)

func mix(h, v uint64) uint64 {
	for i := 0; i < 8; i++ {
		h ^= (v >> (8 * i)) & 0xff
		h *= fnvPrime64
	}
	return h
}

// chunk splits n items over workers; returns [lo, hi) for worker id.
func chunk(n, workers, id int) (int, int) {
	per := n / workers
	rem := n % workers
	lo := id*per + minInt(id, rem)
	hi := lo + per
	if id < rem {
		hi++
	}
	return lo, hi
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
