package sort_test

import (
	stdsort "sort"
	"testing"

	"sgxbench/internal/core"
	"sgxbench/internal/mem"
	"sgxbench/internal/platform"
	"sgxbench/internal/rng"
	sortop "sgxbench/internal/sort"
)

// genTuples fills a fresh buffer with n deterministic random tuples whose
// keys are uniform in [1, maxKey).
func genTuples(env *core.Env, name string, n int, maxKey uint32, seed uint64) *mem.U64Buf {
	buf := env.Space.AllocU64(name, n, env.DataRegion())
	r := rng.NewXorShift(rng.Mix(seed))
	for i := range buf.D {
		buf.D[i] = mem.MakeTuple(uint32(r.Uint64n(uint64(maxKey-1)))+1, uint32(i))
	}
	return buf
}

func newEnv(setting core.Setting, ref bool) *core.Env {
	return core.NewEnv(core.Options{
		Plat:      platform.XeonGold6326().Scaled(256),
		Setting:   setting,
		Reference: ref,
	})
}

// oracle returns the TupLess-sorted copy of the rows.
func oracle(rows []uint64) []uint64 {
	out := append([]uint64(nil), rows...)
	stdsort.Slice(out, func(i, j int) bool { return sortop.TupLess(out[i], out[j]) })
	return out
}

// TestSortCorrectness: the parallel sorter must produce exactly the
// TupLess-ordered permutation of its input, at several thread counts and
// sizes (including non-power-of-two and sub-run sizes).
func TestSortCorrectness(t *testing.T) {
	const maxKey = 700
	for _, n := range []int{0, 1, 63, 1000, 20000} {
		for _, threads := range []int{1, 3, 4} {
			env := newEnv(core.PlainCPU, false)
			in := genTuples(env, "in", n, maxKey, 42)
			want := oracle(in.D)
			res := sortop.Run(env, in, n, sortop.Options{Threads: threads, MaxKey: maxKey})
			if res.Rows != n {
				t.Fatalf("n=%d T=%d: rows=%d", n, threads, res.Rows)
			}
			for i := 0; i < n; i++ {
				if res.Out.D[i] != want[i] {
					t.Fatalf("n=%d T=%d: out[%d]=%#x want %#x", n, threads, i, res.Out.D[i], want[i])
				}
			}
		}
	}
}

// TestSortMaxKeyRows: rows carrying the maximum representable key (and
// keys at or past Options.MaxKey) must not be dropped — the last merge
// range is unbounded above, so no exclusive splitter bound can lose
// them.
func TestSortMaxKeyRows(t *testing.T) {
	for _, threads := range []int{1, 2, 4} {
		env := newEnv(core.PlainCPU, false)
		in := env.Space.AllocU64("in", 8, env.DataRegion())
		for i := range in.D {
			k := ^uint32(0) // 0xFFFFFFFF
			if i%2 == 0 {
				k--
			}
			in.D[i] = mem.MakeTuple(k, uint32(i))
		}
		want := oracle(in.D)
		// Both with a derived bound and with a deliberately low MaxKey:
		// out-of-domain keys must still all land in the last range.
		for _, maxKey := range []uint32{0, 10} {
			cp := env.Space.AllocU64("cp", 8, env.DataRegion())
			copy(cp.D, in.D)
			res := sortop.Run(env, cp, 8, sortop.Options{Threads: threads, MaxKey: maxKey})
			for i := range want {
				if res.Out.D[i] != want[i] {
					t.Fatalf("T=%d maxKey=%d: out[%d]=%#x want %#x", threads, maxKey, i, res.Out.D[i], want[i])
				}
			}
		}
	}
}

// TestSortDerivedMaxKey: MaxKey 0 derives the splitter domain from the
// data; the result must still be fully sorted.
func TestSortDerivedMaxKey(t *testing.T) {
	env := newEnv(core.PlainCPU, false)
	in := genTuples(env, "in", 5000, 1<<30, 7)
	want := oracle(in.D)
	res := sortop.Run(env, in, 5000, sortop.Options{Threads: 4})
	for i := range want {
		if res.Out.D[i] != want[i] {
			t.Fatalf("out[%d]=%#x want %#x", i, res.Out.D[i], want[i])
		}
	}
}

// TestTopKCorrectness: TopK must emit the first k rows of the full sort,
// in order, for k below, at and above the input size.
func TestTopKCorrectness(t *testing.T) {
	const n, maxKey = 20000, 300 // heavy key duplication: ties broken by payload
	for _, k := range []int{0, 1, 100, 1024, n, n + 5} {
		for _, threads := range []int{1, 3} {
			env := newEnv(core.PlainCPU, false)
			in := genTuples(env, "in", n, maxKey, 99)
			want := oracle(in.D)
			res := sortop.TopK(env, in, n, k, sortop.TopKOptions{Threads: threads})
			wantK := k
			if wantK > n {
				wantK = n
			}
			if res.K != wantK {
				t.Fatalf("k=%d T=%d: emitted %d rows, want %d", k, threads, res.K, wantK)
			}
			for i := 0; i < wantK; i++ {
				if res.Out.D[i] != want[i] {
					t.Fatalf("k=%d T=%d: out[%d]=%#x want %#x", k, threads, i, res.Out.D[i], want[i])
				}
			}
		}
	}
}

// TestChunkSortInPlace pins ChunkSort's contract: the range is sorted in
// place and data outside [lo, hi) is untouched.
func TestChunkSortInPlace(t *testing.T) {
	env := newEnv(core.SGXDiE, false)
	in := genTuples(env, "in", 1000, 1<<20, 5)
	tmp := env.Space.AllocU64("tmp", 1000, env.DataRegion())
	before := append([]uint64(nil), in.D...)
	th := env.NewThread()
	sortop.ChunkSort(th, in, tmp, 100, 900, 128)
	want := oracle(before[100:900])
	for i, v := range want {
		if in.D[100+i] != v {
			t.Fatalf("in[%d]=%#x want %#x", 100+i, in.D[100+i], v)
		}
	}
	for _, i := range []int{0, 50, 99, 900, 950, 999} {
		if in.D[i] != before[i] {
			t.Fatalf("in[%d] outside the range was modified", i)
		}
	}
}
