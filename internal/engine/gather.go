package engine

import "sgxbench/internal/mem"

// Batched random-access memory APIs. Where the bulk run APIs (LoadRun,
// StoreRun, LoadLines) charge *sequential* access runs, the gather/
// scatter family charges a caller-supplied vector of byte offsets in one
// engine invocation — the data-dependent patterns of row-id scans, radix
// histograms and scatters, and hash-table builds and probes. One call
// hoists the per-op invariants (range-check plumbing, buffer placement,
// pacing latency) out of the per-element loop and issues every element
// through the fused fastLoadAt/fastStoreAt bodies, whose MRU line memo
// collapses the idiomatic same-line sequences (latch CAS + count load,
// histogram load + increment store) into single probes.
//
// Order preservation: every API issues its elements in exactly the
// per-element order of its reference decomposition — element i's
// operations complete before element i+1's begin — so simulated
// statistics and downstream cache/TLB/prefetcher state are bit-identical
// to issuing the same sequence through the per-op Load/Store/CAS calls.
// In reference mode (Config.Reference) each API *is* that decomposition;
// the golden tests in internal/scan, internal/join and this package's
// gather_test.go enforce the equivalence.
//
// deps conventions: a nil token slice means "zero token for every
// element" (statically known addresses / data); a nil toks output slice
// skips recording per-element completion tokens.

// LoadGather charges n := len(offs) independent loads of size bytes at
// the given byte offsets. deps[i] is element i's address dependency —
// for a row-id gather, the token of the loaded row id. It returns the
// last element's value token.
func (t *Thread) LoadGather(b *mem.Buffer, size int64, offs []int64, deps, toks []Tok) Tok {
	var done Tok
	if t.ref {
		for i, off := range offs {
			var d Tok
			if deps != nil {
				d = deps[i]
			}
			done = t.Load(b, off, size, d)
			if toks != nil {
				toks[i] = done
			}
		}
		return done
	}
	node := b.Reg.Node
	remote := node != t.Node
	epc := b.Reg.Kind == mem.EPC
	for i, off := range offs {
		if off < 0 || off+size > b.Size {
			t.checkRange(b, off, size)
		}
		var d Tok
		if deps != nil {
			d = deps[i]
		}
		done = t.fastLoadAt(b, b.Base+uint64(off), node, epc, remote, d)
		if toks != nil {
			toks[i] = done
		}
	}
	return done
}

// StoreScatter charges n := len(offs) independent stores of size bytes at
// the given byte offsets. addrDeps[i] is the token the i-th store address
// was computed from (the SSB-relevant dependency: a partition cursor, a
// hash-derived slot), dataDeps[i] the token of the stored value.
func (t *Thread) StoreScatter(b *mem.Buffer, size int64, offs []int64, addrDeps, dataDeps []Tok) {
	if t.ref {
		for i, off := range offs {
			var aDep, dDep Tok
			if addrDeps != nil {
				aDep = addrDeps[i]
			}
			if dataDeps != nil {
				dDep = dataDeps[i]
			}
			t.Store(b, off, size, aDep, dDep)
		}
		return
	}
	node := b.Reg.Node
	remote := node != t.Node
	epc := b.Reg.Kind == mem.EPC
	for i, off := range offs {
		if off < 0 || off+size > b.Size {
			t.checkRange(b, off, size)
		}
		var aDep, dDep Tok
		if addrDeps != nil {
			aDep = addrDeps[i]
		}
		if dataDeps != nil {
			dDep = dataDeps[i]
		}
		t.fastStoreAt(b, b.Base+uint64(off), node, epc, remote, aDep, dDep)
	}
}

// RMWScatter charges n := len(offs) read-modify-write pairs — the
// histogram-increment / cursor-bump idiom: for each element a load at
// offs[i] (address dependency deps[i]) immediately followed by a store to
// the same offset whose data depends on the loaded value (one ALU cycle
// after it). The store is a same-line repeat of its own load, so the fast
// path charges the pair with a single probe. toks, when non-nil, receives
// the load tokens (the value-availability tokens callers chain dependent
// stores on, e.g. the tuple store of a partition scatter).
func (t *Thread) RMWScatter(b *mem.Buffer, size int64, offs []int64, deps, toks []Tok) {
	if t.ref {
		for i, off := range offs {
			var d Tok
			if deps != nil {
				d = deps[i]
			}
			tok := t.Load(b, off, size, d)
			t.Store(b, off, size, d, After(tok, 1))
			if toks != nil {
				toks[i] = tok
			}
		}
		return
	}
	node := b.Reg.Node
	remote := node != t.Node
	epc := b.Reg.Kind == mem.EPC
	for i, off := range offs {
		if off < 0 || off+size > b.Size {
			t.checkRange(b, off, size)
		}
		var d Tok
		if deps != nil {
			d = deps[i]
		}
		addr := b.Base + uint64(off)
		tok := t.fastLoadAt(b, addr, node, epc, remote, d)
		t.fastStoreAt(b, addr, node, epc, remote, d, After(tok, 1))
		if toks != nil {
			toks[i] = tok
		}
	}
}

// LoadChain charges n := len(offs0) dependent load pairs — the
// pointer-chase idiom of a hash-bucket header followed by its slot line:
// for each element a load at offs0[i] (address dependency deps[i]) and
// then a load at offs1[i] whose address derives from the first value,
// linkLat cycles of dataflow after it. toks, when non-nil, receives the
// second loads' tokens; the return value is the last one.
func (t *Thread) LoadChain(b *mem.Buffer, size int64, offs0, offs1 []int64, linkLat uint64, deps, toks []Tok) Tok {
	if len(offs0) != len(offs1) {
		panic("engine: LoadChain offset vectors differ in length")
	}
	var done Tok
	if t.ref {
		for i, off := range offs0 {
			var d Tok
			if deps != nil {
				d = deps[i]
			}
			tok := t.Load(b, off, size, d)
			done = t.Load(b, offs1[i], size, After(tok, linkLat))
			if toks != nil {
				toks[i] = done
			}
		}
		return done
	}
	node := b.Reg.Node
	remote := node != t.Node
	epc := b.Reg.Kind == mem.EPC
	for i, off := range offs0 {
		if off < 0 || off+size > b.Size {
			t.checkRange(b, off, size)
		}
		if o1 := offs1[i]; o1 < 0 || o1+size > b.Size {
			t.checkRange(b, o1, size)
		}
		var d Tok
		if deps != nil {
			d = deps[i]
		}
		tok := t.fastLoadAt(b, b.Base+uint64(off), node, epc, remote, d)
		done = t.fastLoadAt(b, b.Base+uint64(offs1[i]), node, epc, remote, After(tok, linkLat))
		if toks != nil {
			toks[i] = done
		}
	}
	return done
}

// CASLoad charges n := len(offs) latch-acquire pairs — the hash-insert
// idiom of PHT's build: for each element an atomic CAS on the line at
// offs[i] (latch acquire, exactly t.CAS) followed by a load of loadSize
// bytes at the same offset (the bucket count, which shares the latch
// line). All three micro-accesses of an element touch one line, so the
// fast path pays one probe per element. casToks receives the CAS
// visibility tokens, loadToks the count-load tokens; either may be nil.
func (t *Thread) CASLoad(b *mem.Buffer, loadSize int64, offs []int64, deps, casToks, loadToks []Tok) {
	if t.ref {
		for i, off := range offs {
			var d Tok
			if deps != nil {
				d = deps[i]
			}
			cas := t.CAS(b, off, d)
			ld := t.Load(b, off, loadSize, cas)
			if casToks != nil {
				casToks[i] = cas
			}
			if loadToks != nil {
				loadToks[i] = ld
			}
		}
		return
	}
	node := b.Reg.Node
	remote := node != t.Node
	epc := b.Reg.Kind == mem.EPC
	for i, off := range offs {
		if off < 0 || off+8 > b.Size || off+loadSize > b.Size {
			t.checkRange(b, off, 8)
			t.checkRange(b, off, loadSize)
		}
		var d Tok
		if deps != nil {
			d = deps[i]
		}
		addr := b.Base + uint64(off)
		tok := t.fastLoadAt(b, addr, node, epc, remote, d)
		cas := After(tok, casHold)
		t.fastStoreAt(b, addr, node, epc, remote, d, cas)
		ld := t.fastLoadAt(b, addr, node, epc, remote, cas)
		if casToks != nil {
			casToks[i] = cas
		}
		if loadToks != nil {
			loadToks[i] = ld
		}
	}
}
