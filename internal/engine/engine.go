// Package engine implements the per-thread CPU timing model.
//
// Algorithms execute real Go code over real data and, for every memory
// operation, also inform the engine, which advances a simulated cycle
// clock. The model captures the micro-architectural mechanisms the paper
// identifies as performance-relevant for SGXv2:
//
//   - a structural cache and TLB hierarchy (internal/cache) with page-walk
//     costs whose PTE fetches themselves travel through the caches;
//   - memory-level parallelism: up to MLPSlots outstanding misses overlap,
//     so independent random accesses pipeline while dependent chains
//     (pointer chasing, B-tree descent) serialize via dependency tokens;
//   - a hardware prefetcher: sequential streams are bandwidth-paced rather
//     than latency-bound, which makes scans bandwidth-limited as in Fig 13;
//   - a store buffer and, centrally, the Speculative Store Bypass (SSB)
//     mitigation: when Mode.Mitigation is set — always the case inside SGX
//     enclaves (Section 4.2) — a load may not issue before the addresses
//     of all program-order-earlier stores are known. Outside enclaves
//     loads issue speculatively with a small misspeculation cost.
//
// SGX-specific memory costs (TME-MK line decryption for EPC pages, EPCM
// security checks on enclave page walks, UPI encryption for remote-socket
// EPC traffic) are charged based on each buffer's mem.Region.
//
// Invariant: the engine computes time only. It never produces or alters
// data values, so results are bit-identical across execution modes.
package engine

import (
	"fmt"

	"sgxbench/internal/cache"
	"sgxbench/internal/mem"
	"sgxbench/internal/platform"
)

// Tok is a dependency token: the simulated cycle at which a value (or an
// address derived from it) becomes available. The zero token means
// "ready immediately".
type Tok uint64

// Mode describes how code executes, orthogonally to where data lives.
type Mode struct {
	Name string
	// Mitigation reports whether the Speculative Store Bypass mitigation
	// is active. It is permanently enabled inside SGX enclaves and can be
	// enabled outside via prctl (the paper's "Plain CPU M" setting).
	Mitigation bool
	// InEnclave reports whether code runs inside an enclave, which makes
	// OS interactions (futex sleep/wake, page commits) require enclave
	// transitions.
	InEnclave bool
}

func (m Mode) String() string { return m.Name }

// The four execution settings used throughout the paper's evaluation.
var (
	// PlainCPU is native execution without SGX (baseline).
	PlainCPU = Mode{Name: "Plain CPU"}
	// PlainCPUM is native execution with the SSB mitigation force-enabled
	// via prctl (Figures 6 and 9, setting "Plain CPU M").
	PlainCPUM = Mode{Name: "Plain CPU M", Mitigation: true}
	// Enclave is execution inside an SGXv2 enclave. Whether an access
	// pays EPC costs depends on the buffer's placement: allocate data in
	// mem.EPC for the paper's "SGX DiE" setting or in mem.Untrusted for
	// "SGX DoE".
	Enclave = Mode{Name: "SGX enclave", Mitigation: true, InEnclave: true}
)

// SGXCosts parameterizes the SGXv2-specific memory system costs.
type SGXCosts struct {
	// EPCLineDecrypt is added to every DRAM line transfer from/to EPC
	// memory (TME-MK adds ~11ns to LLC misses; Section 4.1).
	EPCLineDecrypt uint64
	// EPCMCheckCycles is the fixed extra page-walk cost for EPC pages
	// (SGX security checks added to address translation).
	EPCMCheckCycles uint64
	// EPCMAccesses is the number of EPCM metadata memory accesses charged
	// through the cache hierarchy per EPC page walk. With large enclave
	// working sets these metadata accesses miss the LLC themselves, which
	// is what makes random enclave accesses up to ~3x slower (Fig 5).
	EPCMAccesses int
	// UCELatency is added per cache line crossing the UPI link to a
	// remote socket's EPC (UPI Crypto Engine, Section 2).
	UCELatency uint64
	// UPIStreamTaxEPC is the multiplicative bandwidth factor for
	// encrypted UPI streams (Fig 16: 77% single-thread remote).
	UPIStreamTaxEPC float64
}

// DefaultSGXCosts returns the calibrated cost set used by all experiments.
func DefaultSGXCosts() SGXCosts {
	return SGXCosts{
		EPCLineDecrypt:  32, // ~11 ns at 2.9 GHz
		EPCMCheckCycles: 120,
		EPCMAccesses:    1,
		UCELatency:      150,
		UPIStreamTaxEPC: 0.77,
	}
}

// Stats aggregates the events observed by one thread.
type Stats struct {
	Cycles     uint64 // set by Drain / read via Thread.Cycle
	WorkCycles uint64

	Loads  uint64
	Stores uint64

	L1Hits  uint64
	L2Hits  uint64
	L3Hits  uint64
	DRAMAcc uint64 // LLC misses reaching DRAM (data accesses only)

	TLBWalks  uint64
	MetaAcc   uint64 // PTE + EPCM metadata memory accesses
	StallSSB  uint64 // cycles loads were delayed by the store-address barrier
	SpecFlush uint64 // misspeculation flushes (mitigation off)

	DRAMBytes    [2]uint64 // per-socket DRAM traffic in bytes
	UPIBytes     uint64    // cross-socket traffic in bytes
	StreamFills  uint64    // prefetched (bandwidth-paced) line fills
	RandomFills  uint64    // latency-bound line fills
	EvictedDirty uint64    // dirty L3 evictions (writeback traffic)
}

// Add accumulates other into s (Cycles is maxed, not summed).
func (s *Stats) Add(o Stats) {
	if o.Cycles > s.Cycles {
		s.Cycles = o.Cycles
	}
	s.WorkCycles += o.WorkCycles
	s.Loads += o.Loads
	s.Stores += o.Stores
	s.L1Hits += o.L1Hits
	s.L2Hits += o.L2Hits
	s.L3Hits += o.L3Hits
	s.DRAMAcc += o.DRAMAcc
	s.TLBWalks += o.TLBWalks
	s.MetaAcc += o.MetaAcc
	s.StallSSB += o.StallSSB
	s.SpecFlush += o.SpecFlush
	s.DRAMBytes[0] += o.DRAMBytes[0]
	s.DRAMBytes[1] += o.DRAMBytes[1]
	s.UPIBytes += o.UPIBytes
	s.StreamFills += o.StreamFills
	s.RandomFills += o.RandomFills
	s.EvictedDirty += o.EvictedDirty
}

// stream tracks one detected sequential access stream for the prefetcher.
type stream struct {
	lastLine uint64
	streak   uint32
	lastUse  uint64
}

const nStreams = 16

// Thread is one simulated hardware thread with private L1/L2/TLB state and
// a share of the socket's L3.
type Thread struct {
	Plat  *platform.Platform
	Mode  Mode
	Costs SGXCosts
	Node  int // socket the thread is pinned to
	ID    int

	cycle        uint64
	issueAcc     int      // sub-cycle issue slots consumed (superscalar width)
	mlp          []uint64 // outstanding miss completion times
	sbuf         []uint64 // store buffer completion ring
	sbufPos      int
	storeBarrier uint64 // running max of store address-known times
	specCount    uint64

	l1, l2, l3 *cache.Cache
	dtlb, stlb *cache.TLB

	streams    [nStreams]stream
	streamTick uint64

	st Stats
}

// Config bundles the knobs for creating threads.
type Config struct {
	Plat    *platform.Platform
	Mode    Mode
	Costs   SGXCosts
	Node    int
	L3Share int // number of threads sharing the socket L3 (>=1)
}

// NewThread creates a thread with cold caches.
func NewThread(cfg Config, id int) *Thread {
	if cfg.Plat == nil {
		panic("engine: Config.Plat is required")
	}
	share := cfg.L3Share
	if share < 1 {
		share = 1
	}
	l3geom := cfg.Plat.L3
	l3geom.SizeBytes = l3geom.SizeBytes / int64(share)
	if l3geom.SizeBytes < int64(l3geom.Ways)*l3geom.LineBytes {
		l3geom.SizeBytes = int64(l3geom.Ways) * l3geom.LineBytes
	}
	t := &Thread{
		Plat:  cfg.Plat,
		Mode:  cfg.Mode,
		Costs: cfg.Costs,
		Node:  cfg.Node,
		ID:    id,
		mlp:   make([]uint64, cfg.Plat.MLPSlots),
		sbuf:  make([]uint64, cfg.Plat.StoreBufSize),
		l1:    cache.New(cfg.Plat.L1D),
		l2:    cache.New(cfg.Plat.L2),
		l3:    cache.New(l3geom),
		dtlb:  cache.NewTLB(cfg.Plat.DTLB),
		stlb:  cache.NewTLB(cfg.Plat.STLB),
	}
	return t
}

// Cycle returns the thread's current cycle (issue clock; completions may
// be outstanding — call Drain for a quiescent timestamp).
func (t *Thread) Cycle() uint64 { return t.cycle }

// SetCycle force-aligns the thread clock (used at phase barriers).
func (t *Thread) SetCycle(c uint64) {
	if c > t.cycle {
		t.cycle = c
	}
}

// Stats returns a snapshot of the thread's counters with Cycles filled in.
func (t *Thread) Stats() Stats {
	s := t.st
	s.Cycles = t.cycle
	return s
}

// ResetStats clears counters but keeps cache/TLB contents and the clock.
func (t *Thread) ResetStats() { t.st = Stats{} }

// issueWidth is the superscalar issue width: up to four micro-ops retire
// per cycle, so back-to-back independent memory operations cost 1/4 cycle
// of issue bandwidth each. Dependency chains still pay full latencies via
// tokens — this is what separates throughput-bound plain execution from
// the latency-bound serialization the SSB mitigation induces.
const issueWidth = 4

// issueTick consumes one issue slot and returns the current issue cycle.
func (t *Thread) issueTick() uint64 {
	t.issueAcc++
	if t.issueAcc >= issueWidth {
		t.issueAcc = 0
		t.cycle++
	}
	return t.cycle
}

// Work advances the clock by n compute cycles (instructions that are not
// memory operations: hashing, comparisons, SIMD lane work).
func (t *Thread) Work(n uint64) {
	t.cycle += n
	t.st.WorkCycles += n
}

// After returns the token for a value that becomes available n cycles
// after dep (dataflow latency of a dependent computation).
func After(dep Tok, n uint64) Tok { return dep + Tok(n) }

// maxTok returns the later of two tokens.
func maxTok(a, b Tok) Tok {
	if a > b {
		return a
	}
	return b
}

// Load issues a load of size bytes at b[off]. dep is the token of the
// value the *address* depends on (zero for statically known addresses).
// It returns the token at which the loaded value is available.
func (t *Thread) Load(b *mem.Buffer, off, size int64, dep Tok) Tok {
	t.checkRange(b, off, size)
	issue := maxTok(Tok(t.issueTick()), dep)
	if t.Mode.Mitigation {
		if bar := Tok(t.storeBarrier); bar > issue {
			t.st.StallSSB += uint64(bar - issue)
			issue = bar
		}
	} else if Tok(t.storeBarrier) > issue {
		// Speculative execution: the load bypasses pending stores; rare
		// misspeculations flush the pipeline (Section 4.2 notes unrolling
		// also helps the plain CPU by reducing misspeculations).
		t.specCount++
		if t.specCount%64 == 0 {
			t.cycle += 20
			t.st.SpecFlush++
			issue = maxTok(issue, Tok(t.cycle))
		}
	}
	t.st.Loads++
	lat, llcMiss, paced := t.access(b, off, false, uint64(issue))
	var done Tok
	switch {
	case paced:
		// Bandwidth-paced stream: the prefetcher hides latency, the core
		// advances at stream bandwidth.
		t.cycle = uint64(issue) + lat
		done = Tok(t.cycle)
	case llcMiss:
		slot := t.minSlot()
		start := maxTok(issue, Tok(t.mlp[slot]))
		done = start + Tok(lat)
		t.mlp[slot] = uint64(done)
	default:
		done = issue + Tok(lat)
	}
	return done
}

// Store issues a store of size bytes at b[off]. addrDep is the token of
// the value the *address* was computed from — this is what makes a store
// "data-dependent" in the paper's sense (histogram bins, hash buckets,
// partition cursors). dataDep is the token of the stored value. The
// returned token is when the stored data is visible to a dependent load
// (store-to-load forwarding).
func (t *Thread) Store(b *mem.Buffer, off, size int64, addrDep, dataDep Tok) Tok {
	t.checkRange(b, off, size)
	issue := Tok(t.issueTick())
	addrKnown := maxTok(issue, addrDep)
	if uint64(addrKnown) > t.storeBarrier {
		t.storeBarrier = uint64(addrKnown)
	}
	t.st.Stores++
	lat, llcMiss, paced := t.access(b, off, true, uint64(issue))
	ready := maxTok(addrKnown, dataDep)
	var done Tok
	switch {
	case paced:
		t.cycle = uint64(issue) + lat
		done = maxTok(ready, Tok(t.cycle))
	case llcMiss:
		// Write-allocate: the RFO occupies a miss slot like a load.
		slot := t.minSlot()
		start := maxTok(ready, Tok(t.mlp[slot]))
		done = start + Tok(lat)
		t.mlp[slot] = uint64(done)
	default:
		done = ready + Tok(lat)
	}
	// Store buffer occupancy: if the ring is full of incomplete stores,
	// issue stalls until the oldest drains.
	if t.sbuf[t.sbufPos] > t.cycle {
		t.cycle = t.sbuf[t.sbufPos]
	}
	t.sbuf[t.sbufPos] = uint64(done)
	t.sbufPos = (t.sbufPos + 1) % len(t.sbuf)
	// Forwarding latency from the store buffer.
	return maxTok(ready, dataDep) + 5
}

// CAS models an atomic read-modify-write (lock prefix): the line is
// loaded, held for ~20 cycles, and written back. The returned token is
// when the new value is globally visible. Used by latches and lock-free
// queues. Independent CAS operations to different lines still overlap in
// the memory system (line-granular locking), as on real hardware.
func (t *Thread) CAS(b *mem.Buffer, off int64, dep Tok) Tok {
	tok := t.Load(b, off, 8, dep)
	done := After(tok, 20)
	t.Store(b, off, 8, dep, done)
	return done
}

// Fence waits for all outstanding loads and stores to complete.
func (t *Thread) Fence() { t.Drain() }

// Drain advances the clock past every outstanding miss and store, and
// past the store-address barrier; it returns the quiesced cycle.
func (t *Thread) Drain() uint64 {
	m := t.cycle
	for _, c := range t.mlp {
		if c > m {
			m = c
		}
	}
	for _, c := range t.sbuf {
		if c > m {
			m = c
		}
	}
	if t.storeBarrier > m {
		m = t.storeBarrier
	}
	t.cycle = m
	return m
}

func (t *Thread) minSlot() int {
	best, bestC := 0, t.mlp[0]
	for i := 1; i < len(t.mlp); i++ {
		if t.mlp[i] < bestC {
			best, bestC = i, t.mlp[i]
		}
	}
	return best
}

func (t *Thread) checkRange(b *mem.Buffer, off, size int64) {
	if off < 0 || size < 0 || off+size > b.Size {
		panic(fmt.Sprintf("engine: access [%d,%d) out of buffer %q of size %d", off, off+size, b.Name, b.Size))
	}
}
