// Package engine implements the per-thread CPU timing model.
//
// Algorithms execute real Go code over real data and, for every memory
// operation, also inform the engine, which advances a simulated cycle
// clock. The model captures the micro-architectural mechanisms the paper
// identifies as performance-relevant for SGXv2:
//
//   - a structural cache and TLB hierarchy (internal/cache) with page-walk
//     costs whose PTE fetches themselves travel through the caches;
//   - memory-level parallelism: up to MLPSlots outstanding misses overlap,
//     so independent random accesses pipeline while dependent chains
//     (pointer chasing, B-tree descent) serialize via dependency tokens;
//   - a hardware prefetcher: sequential streams are bandwidth-paced rather
//     than latency-bound, which makes scans bandwidth-limited as in Fig 13;
//   - a store buffer and, centrally, the Speculative Store Bypass (SSB)
//     mitigation: when Mode.Mitigation is set — always the case inside SGX
//     enclaves (Section 4.2) — a load may not issue before the addresses
//     of all program-order-earlier stores are known. Outside enclaves
//     loads issue speculatively with a small misspeculation cost.
//
// SGX-specific memory costs (TME-MK line decryption for EPC pages, EPCM
// security checks on enclave page walks, UPI encryption for remote-socket
// EPC traffic) are charged based on each buffer's mem.Region.
//
// Invariant: the engine computes time only. It never produces or alters
// data values, so results are bit-identical across execution modes.
//
// # Fast path
//
// Every memory operation exists in two host-side implementations that are
// required to produce identical simulated behaviour:
//
//   - the per-op reference path (Config.Reference = true): the original
//     implementation — one full TLB probe, stream-table scan and
//     separate cache probe/fill walk per access, over the timestamp-LRU
//     reference caches;
//   - the batched fast path (default): bulk APIs — the sequential runs
//     LoadRun, StoreRun and LoadLines, and the random-access batches
//     LoadGather, StoreScatter, RMWScatter, LoadChain and CASLoad — plus
//     per-op operations over packed recency-ordered caches, a one-entry
//     last-page translation cache in front of the DTLB, a one-entry MRU
//     line memo that charges same-line repeat accesses as pure L1 hits,
//     a cached prefetcher stream slot, fused probe+fill set walks and
//     precomputed stream-pacing latencies.
//
// THE FAST PATH MAY NEVER CHANGE SIMULATED STATISTICS. Both paths must
// yield bit-identical Stats (cycles, hit counts, DRAM bytes, ...) and
// identical downstream cache/TLB state for the same access sequence; the
// golden equivalence tests in internal/scan and internal/join enforce
// this, and cmd/bench measures the host wall-clock gap between the two.
package engine

import (
	"fmt"
	"math/bits"

	"sgxbench/internal/cache"
	"sgxbench/internal/mem"
	"sgxbench/internal/platform"
)

// Tok is a dependency token: the simulated cycle at which a value (or an
// address derived from it) becomes available. The zero token means
// "ready immediately".
type Tok uint64

// Mode describes how code executes, orthogonally to where data lives.
type Mode struct {
	Name string
	// Mitigation reports whether the Speculative Store Bypass mitigation
	// is active. It is permanently enabled inside SGX enclaves and can be
	// enabled outside via prctl (the paper's "Plain CPU M" setting).
	Mitigation bool
	// InEnclave reports whether code runs inside an enclave, which makes
	// OS interactions (futex sleep/wake, page commits) require enclave
	// transitions.
	InEnclave bool
}

func (m Mode) String() string { return m.Name }

// The four execution settings used throughout the paper's evaluation.
var (
	// PlainCPU is native execution without SGX (baseline).
	PlainCPU = Mode{Name: "Plain CPU"}
	// PlainCPUM is native execution with the SSB mitigation force-enabled
	// via prctl (Figures 6 and 9, setting "Plain CPU M").
	PlainCPUM = Mode{Name: "Plain CPU M", Mitigation: true}
	// Enclave is execution inside an SGXv2 enclave. Whether an access
	// pays EPC costs depends on the buffer's placement: allocate data in
	// mem.EPC for the paper's "SGX DiE" setting or in mem.Untrusted for
	// "SGX DoE".
	Enclave = Mode{Name: "SGX enclave", Mitigation: true, InEnclave: true}
)

// SGXCosts parameterizes the SGXv2-specific memory system costs.
type SGXCosts struct {
	// EPCLineDecrypt is added to every DRAM line transfer from/to EPC
	// memory (TME-MK adds ~11ns to LLC misses; Section 4.1).
	EPCLineDecrypt uint64
	// EPCMCheckCycles is the fixed extra page-walk cost for EPC pages
	// (SGX security checks added to address translation).
	EPCMCheckCycles uint64
	// EPCMAccesses is the number of EPCM metadata memory accesses charged
	// through the cache hierarchy per EPC page walk. With large enclave
	// working sets these metadata accesses miss the LLC themselves, which
	// is what makes random enclave accesses up to ~3x slower (Fig 5).
	EPCMAccesses int
	// UCELatency is added per cache line crossing the UPI link to a
	// remote socket's EPC (UPI Crypto Engine, Section 2).
	UCELatency uint64
	// UPIStreamTaxEPC is the multiplicative bandwidth factor for
	// encrypted UPI streams (Fig 16: 77% single-thread remote).
	UPIStreamTaxEPC float64
}

// DefaultSGXCosts returns the calibrated cost set used by all experiments.
func DefaultSGXCosts() SGXCosts {
	return SGXCosts{
		EPCLineDecrypt:  32, // ~11 ns at 2.9 GHz
		EPCMCheckCycles: 120,
		EPCMAccesses:    1,
		UCELatency:      150,
		UPIStreamTaxEPC: 0.77,
	}
}

// Stats aggregates the events observed by one thread.
type Stats struct {
	Cycles     uint64 // set by Drain / read via Thread.Cycle
	WorkCycles uint64

	Loads  uint64
	Stores uint64

	L1Hits  uint64
	L2Hits  uint64
	L3Hits  uint64
	DRAMAcc uint64 // LLC misses reaching DRAM (data accesses only)

	TLBWalks  uint64
	MetaAcc   uint64 // PTE + EPCM metadata memory accesses
	StallSSB  uint64 // cycles loads were delayed by the store-address barrier
	SpecFlush uint64 // misspeculation flushes (mitigation off)

	DRAMBytes    [2]uint64 // per-socket DRAM traffic in bytes
	UPIBytes     uint64    // cross-socket traffic in bytes
	StreamFills  uint64    // prefetched (bandwidth-paced) line fills
	RandomFills  uint64    // latency-bound line fills
	EvictedDirty uint64    // dirty L3 evictions (writeback traffic)
	NTStores     uint64    // non-temporal line stores (cache-bypassing)

	EPCFaults       uint64 // demand-paging faults on EPC data pages
	EPCEvictions    uint64 // EPC pages written back to make room
	EPCPagingCycles uint64 // cycles spent in the paging protocol
}

// Add accumulates other into s (Cycles is maxed, not summed).
func (s *Stats) Add(o Stats) {
	if o.Cycles > s.Cycles {
		s.Cycles = o.Cycles
	}
	s.WorkCycles += o.WorkCycles
	s.Loads += o.Loads
	s.Stores += o.Stores
	s.L1Hits += o.L1Hits
	s.L2Hits += o.L2Hits
	s.L3Hits += o.L3Hits
	s.DRAMAcc += o.DRAMAcc
	s.TLBWalks += o.TLBWalks
	s.MetaAcc += o.MetaAcc
	s.StallSSB += o.StallSSB
	s.SpecFlush += o.SpecFlush
	s.DRAMBytes[0] += o.DRAMBytes[0]
	s.DRAMBytes[1] += o.DRAMBytes[1]
	s.UPIBytes += o.UPIBytes
	s.StreamFills += o.StreamFills
	s.RandomFills += o.RandomFills
	s.EvictedDirty += o.EvictedDirty
	s.NTStores += o.NTStores
	s.EPCFaults += o.EPCFaults
	s.EPCEvictions += o.EPCEvictions
	s.EPCPagingCycles += o.EPCPagingCycles
}

// Sub returns the field-wise difference s - o, where o is an earlier
// snapshot of the same thread or aggregate (Cycles subtracts like every
// other counter — a snapshot delta, unlike Add's max). Phase deltas in
// internal/exec are computed with Sub; TestStatsSubCoversAllFields fails
// if a newly added Stats field is omitted here.
func (s Stats) Sub(o Stats) Stats {
	s.Cycles -= o.Cycles
	s.WorkCycles -= o.WorkCycles
	s.Loads -= o.Loads
	s.Stores -= o.Stores
	s.L1Hits -= o.L1Hits
	s.L2Hits -= o.L2Hits
	s.L3Hits -= o.L3Hits
	s.DRAMAcc -= o.DRAMAcc
	s.TLBWalks -= o.TLBWalks
	s.MetaAcc -= o.MetaAcc
	s.StallSSB -= o.StallSSB
	s.SpecFlush -= o.SpecFlush
	s.DRAMBytes[0] -= o.DRAMBytes[0]
	s.DRAMBytes[1] -= o.DRAMBytes[1]
	s.UPIBytes -= o.UPIBytes
	s.StreamFills -= o.StreamFills
	s.RandomFills -= o.RandomFills
	s.EvictedDirty -= o.EvictedDirty
	s.NTStores -= o.NTStores
	s.EPCFaults -= o.EPCFaults
	s.EPCEvictions -= o.EPCEvictions
	s.EPCPagingCycles -= o.EPCPagingCycles
	return s
}

// stream tracks one detected sequential access stream for the prefetcher.
// The table is indexed by 4 KiB page (hardware stream prefetchers track
// per-page state) with two ways per index and a one-bit MRU choice, so
// lookup and training are O(1) and fully deterministic — no table scan
// and no replacement ambiguity, which is what lets the per-op and batched
// paths share the function bit for bit. A stream that crosses into the
// next page migrates its streak to that page's slot; the second way keeps
// an aliasing pair of streams (e.g. a scan and its result writes) from
// evicting each other.
type stream struct {
	pageKey  uint64 // page+1; 0 means empty
	lastLine uint64
	streak   uint64
}

const nStreams = 16 // stream-table indexes (x2 ways)

// pwcEntries is the size of the paging-structure cache (Ice Lake keeps
// on the order of 32 PDE-cache entries, covering 64 MiB).
const pwcEntries = 32

// Thread is one simulated hardware thread with private L1/L2/TLB state and
// a share of the socket's L3.
type Thread struct {
	Plat  *platform.Platform
	Mode  Mode
	Costs SGXCosts
	Node  int // socket the thread is pinned to
	ID    int

	cycle        uint64
	issueAcc     int      // sub-cycle issue slots consumed (superscalar width)
	mlp          []uint64 // outstanding miss completion times
	sbuf         []uint64 // store buffer completion ring
	sbufPos      int
	storeBarrier uint64 // running max of store address-known times
	specCount    uint64

	// Fast-path cache hierarchy (nil in reference mode).
	l1, l2, l3 *cache.Cache
	dtlb, stlb *cache.TLB

	// Reference-mode cache hierarchy (nil on the fast path).
	rl1, rl2, rl3 *cache.RefCache
	rdtlb, rstlb  *cache.RefTLB

	streams [2 * nStreams]stream
	mruWay  [nStreams]uint8
	lpShift uint // log2(lines per page) = pageShift - 6

	// pwc is the paging-structure cache (Intel's PML4E/PDPTE/PDE caches):
	// a direct-mapped cache of non-leaf page-table entries, tagged by the
	// 2 MiB region (page >> 9). On a hit the walker serves every non-leaf
	// level internally and only the leaf PTE fetch travels through the
	// memory hierarchy — the reason real page walks usually cost one
	// memory access, not one per level. Shared bit-for-bit by the per-op
	// and batched paths (deterministic, no replacement ambiguity).
	pwc [pwcEntries]uint64 // (page>>9)+1; 0 means empty

	// One-entry translation cache: the page of the most recent DTLB probe.
	// A repeat probe of that page is guaranteed to hit at the MRU position
	// of its set and leaves no state change, so the fast path skips it.
	// noPage (an impossible page number) marks it empty.
	lastPage uint64

	// One-entry line memo: the cache line of the thread's most recent data
	// access. A repeat access to the same line is guaranteed to hit the
	// MRU way of its L1 set (every access path leaves the accessed line
	// L1-MRU), to re-hit the MRU page of the translation path, and to
	// leave the prefetcher stream table unchanged (a same-line re-touch is
	// the stream's case 0), so the fast path charges it as a pure L1 hit
	// without probing any structure. The only state a repeat can change is
	// the line's dirty bit (a store after a load), applied via DirtyMRU.
	// noPage marks it empty.
	mruLine uint64

	// EPC demand-paging state (nil/empty when no EPCDomain is configured).
	// Residency is tracked per thread over the thread's private budget
	// (TotalPages / EPCShare): each thread faults its own working set in,
	// which keeps the model race-free and bit-reproducible under any
	// goroutine schedule. epcRing/epcRef form the CLOCK (second-chance)
	// ring, epcIdx maps a resident page to its ring slot, and epcLast is a
	// one-entry memo mirroring mruLine: a re-touch of the most recent page
	// is a guaranteed no-op, which is what lets the fast path's same-line
	// skip stay bit-identical to the reference decomposition.
	epcDom   *EPCDomain
	epcRing  []uint64
	epcRef   []bool
	epcIdx   map[uint64]int
	epcHand  int
	epcCount int
	epcLast  uint64

	ref       bool      // per-op reference mode (golden-test baseline)
	pageShift uint      // log2(Plat.PageBytes)
	pacedLat  [4]uint64 // precomputed stream-pacing cycle advance, idx = remote<<1|epc
	// Hot platform latencies mirrored into the thread to avoid a pointer
	// chase per access on the fast path.
	latL1, latL2, latL3 uint64

	st Stats
}

// Config bundles the knobs for creating threads.
type Config struct {
	Plat    *platform.Platform
	Mode    Mode
	Costs   SGXCosts
	Node    int
	L3Share int // number of threads sharing the socket L3 (>=1)
	// EPC enables the demand-paging model: accesses to mem.EPC data pages
	// fault against a finite resident-set budget (see EPCDomain). nil
	// disables paging entirely — the pre-oversubscription behaviour.
	EPC *EPCDomain
	// EPCShare is the number of threads sharing the enclave's EPC capacity
	// (>= 1). Unlike L3Share it spans sockets: the EPC limit is per
	// enclave, not per socket.
	EPCShare int
	// Reference selects the per-op reference implementation of the memory
	// model: bulk APIs decompose into individual Load/Store calls and all
	// probes use the original timestamp-LRU structures. Simulated results
	// and statistics are identical either way (the fast path may never
	// change simulated stats); Reference exists for the golden equivalence
	// tests and as the cmd/bench baseline.
	Reference bool
}

// NewThread creates a thread with cold caches.
func NewThread(cfg Config, id int) *Thread {
	if cfg.Plat == nil {
		panic("engine: Config.Plat is required")
	}
	share := cfg.L3Share
	if share < 1 {
		share = 1
	}
	l3geom := cfg.Plat.L3
	l3geom.SizeBytes = l3geom.SizeBytes / int64(share)
	if l3geom.SizeBytes < int64(l3geom.Ways)*l3geom.LineBytes {
		l3geom.SizeBytes = int64(l3geom.Ways) * l3geom.LineBytes
	}
	t := &Thread{
		Plat:  cfg.Plat,
		Mode:  cfg.Mode,
		Costs: cfg.Costs,
		Node:  cfg.Node,
		ID:    id,
		mlp:   make([]uint64, cfg.Plat.MLPSlots),
		sbuf:  make([]uint64, cfg.Plat.StoreBufSize),
		ref:   cfg.Reference,
	}
	t.lastPage = noPage
	t.mruLine = noPage
	t.epcLast = noPage
	if cfg.EPC != nil && cfg.EPC.TotalPages > 0 {
		share := int64(cfg.EPCShare)
		if share < 1 {
			share = 1
		}
		budget := cfg.EPC.TotalPages / share
		if budget < 1 {
			budget = 1
		}
		t.epcDom = cfg.EPC
		t.epcRing = make([]uint64, budget)
		t.epcRef = make([]bool, budget)
		t.epcIdx = make(map[uint64]int, budget)
	}
	if t.ref {
		t.rl1 = cache.NewRef(cfg.Plat.L1D)
		t.rl2 = cache.NewRef(cfg.Plat.L2)
		t.rl3 = cache.NewRef(l3geom)
		t.rdtlb = cache.NewRefTLB(cfg.Plat.DTLB)
		t.rstlb = cache.NewRefTLB(cfg.Plat.STLB)
	} else {
		t.l1 = cache.New(cfg.Plat.L1D)
		t.l2 = cache.New(cfg.Plat.L2)
		t.l3 = cache.New(l3geom)
		t.dtlb = cache.NewTLB(cfg.Plat.DTLB)
		t.stlb = cache.NewTLB(cfg.Plat.STLB)
	}
	t.pageShift = uint(bits.TrailingZeros64(uint64(cfg.Plat.PageBytes)))
	t.lpShift = t.pageShift - 6
	t.latL1, t.latL2, t.latL3 = cfg.Plat.LatL1, cfg.Plat.LatL2, cfg.Plat.LatL3
	// Stream-pacing cycle advances per line, by (remote, epc). Computed
	// once so the fast path avoids a float divide per paced access; the
	// expressions match the per-access formula bit for bit.
	line := float64(cfg.Plat.L1D.LineBytes)
	t.pacedLat[0] = uint64(line / cfg.Plat.CoreStreamBW)
	t.pacedLat[1] = uint64(line / (cfg.Plat.CoreStreamBW * cfg.Plat.EPCStreamTax))
	t.pacedLat[2] = uint64(line / cfg.Plat.RemoteStreamBW)
	t.pacedLat[3] = uint64(line / (cfg.Plat.RemoteStreamBW * cfg.Costs.UPIStreamTaxEPC))
	return t
}

// Reference reports whether the thread runs the per-op reference path.
func (t *Thread) Reference() bool { return t.ref }

// Cycle returns the thread's current cycle (issue clock; completions may
// be outstanding — call Drain for a quiescent timestamp).
func (t *Thread) Cycle() uint64 { return t.cycle }

// SetCycle force-aligns the thread clock (used at phase barriers).
func (t *Thread) SetCycle(c uint64) {
	if c > t.cycle {
		t.cycle = c
	}
}

// Stats returns a snapshot of the thread's counters with Cycles filled in.
func (t *Thread) Stats() Stats {
	s := t.st
	s.Cycles = t.cycle
	return s
}

// ResetStats clears counters but keeps cache/TLB contents and the clock.
func (t *Thread) ResetStats() { t.st = Stats{} }

// issueWidth is the superscalar issue width: up to four micro-ops retire
// per cycle, so back-to-back independent memory operations cost 1/4 cycle
// of issue bandwidth each. Dependency chains still pay full latencies via
// tokens — this is what separates throughput-bound plain execution from
// the latency-bound serialization the SSB mitigation induces.
const issueWidth = 4

// issueTick consumes one issue slot and returns the current issue cycle.
func (t *Thread) issueTick() uint64 {
	t.issueAcc++
	if t.issueAcc >= issueWidth {
		t.issueAcc = 0
		t.cycle++
	}
	return t.cycle
}

// Work advances the clock by n compute cycles (instructions that are not
// memory operations: hashing, comparisons, SIMD lane work).
func (t *Thread) Work(n uint64) {
	t.cycle += n
	t.st.WorkCycles += n
}

// After returns the token for a value that becomes available n cycles
// after dep (dataflow latency of a dependent computation).
func After(dep Tok, n uint64) Tok { return dep + Tok(n) }

// maxTok returns the later of two tokens.
func maxTok(a, b Tok) Tok {
	if a > b {
		return a
	}
	return b
}

// loadGate applies the SSB store-address barrier (mitigation on) or the
// speculative-bypass misspeculation model (mitigation off) to a load's
// issue token. Shared verbatim by the per-op and batched paths.
func (t *Thread) loadGate(issue Tok) Tok {
	if t.Mode.Mitigation {
		if bar := Tok(t.storeBarrier); bar > issue {
			t.st.StallSSB += uint64(bar - issue)
			issue = bar
		}
	} else if Tok(t.storeBarrier) > issue {
		// Speculative execution: the load bypasses pending stores; rare
		// misspeculations flush the pipeline (Section 4.2 notes unrolling
		// also helps the plain CPU by reducing misspeculations).
		t.specCount++
		if t.specCount%64 == 0 {
			t.cycle += 20
			t.st.SpecFlush++
			issue = maxTok(issue, Tok(t.cycle))
		}
	}
	return issue
}

// Load issues a load of size bytes at b[off]. dep is the token of the
// value the *address* depends on (zero for statically known addresses).
// It returns the token at which the loaded value is available.
func (t *Thread) Load(b *mem.Buffer, off, size int64, dep Tok) Tok {
	t.checkRange(b, off, size)
	if !t.ref {
		return t.fastLoadOne(b, off, dep)
	}
	return t.loadStep(b, off, dep)
}

// loadStep is the per-op reference path of Load (the fast path dispatches
// to fastLoadOne before reaching it).
func (t *Thread) loadStep(b *mem.Buffer, off int64, dep Tok) Tok {
	if t.epcDom != nil && b.Reg.Kind == mem.EPC {
		t.epcTouch((b.Base + uint64(off)) >> t.pageShift)
	}
	issue := maxTok(Tok(t.issueTick()), dep)
	issue = t.loadGate(issue)
	t.st.Loads++
	lat, llcMiss, paced := t.refAccess(b, off, false)
	switch {
	case paced:
		// Bandwidth-paced stream: the prefetcher hides latency, the core
		// advances at stream bandwidth.
		t.cycle = uint64(issue) + lat
		return Tok(t.cycle)
	case llcMiss:
		slot := t.minSlot()
		start := maxTok(issue, Tok(t.mlp[slot]))
		done := start + Tok(lat)
		t.mlp[slot] = uint64(done)
		return done
	default:
		return issue + Tok(lat)
	}
}

// Store issues a store of size bytes at b[off]. addrDep is the token of
// the value the *address* was computed from — this is what makes a store
// "data-dependent" in the paper's sense (histogram bins, hash buckets,
// partition cursors). dataDep is the token of the stored value. The
// returned token is when the stored data is visible to a dependent load
// (store-to-load forwarding).
func (t *Thread) Store(b *mem.Buffer, off, size int64, addrDep, dataDep Tok) Tok {
	t.checkRange(b, off, size)
	if !t.ref {
		return t.fastStoreOne(b, off, addrDep, dataDep)
	}
	return t.storeStep(b, off, addrDep, dataDep)
}

// storeStep is the per-op reference path of Store (the fast path
// dispatches to fastStoreOne before reaching it).
func (t *Thread) storeStep(b *mem.Buffer, off int64, addrDep, dataDep Tok) Tok {
	if t.epcDom != nil && b.Reg.Kind == mem.EPC {
		t.epcTouch((b.Base + uint64(off)) >> t.pageShift)
	}
	issue := Tok(t.issueTick())
	addrKnown := maxTok(issue, addrDep)
	if uint64(addrKnown) > t.storeBarrier {
		t.storeBarrier = uint64(addrKnown)
	}
	t.st.Stores++
	lat, llcMiss, paced := t.refAccess(b, off, true)
	ready := maxTok(addrKnown, dataDep)
	var done Tok
	switch {
	case paced:
		t.cycle = uint64(issue) + lat
		done = maxTok(ready, Tok(t.cycle))
	case llcMiss:
		// Write-allocate: the RFO occupies a miss slot like a load.
		slot := t.minSlot()
		start := maxTok(ready, Tok(t.mlp[slot]))
		done = start + Tok(lat)
		t.mlp[slot] = uint64(done)
	default:
		done = ready + Tok(lat)
	}
	// Store buffer occupancy: if the ring is full of incomplete stores,
	// issue stalls until the oldest drains.
	if t.sbuf[t.sbufPos] > t.cycle {
		t.cycle = t.sbuf[t.sbufPos]
	}
	t.sbuf[t.sbufPos] = uint64(done)
	t.sbufPos = (t.sbufPos + 1) % len(t.sbuf)
	// Forwarding latency from the store buffer.
	return maxTok(ready, dataDep) + 5
}

// casHold is the line-hold latency of an atomic read-modify-write.
const casHold = 20

// CAS models an atomic read-modify-write (lock prefix): the line is
// loaded, held for ~20 cycles, and written back. The returned token is
// when the new value is globally visible. Used by latches and lock-free
// queues. Independent CAS operations to different lines still overlap in
// the memory system (line-granular locking), as on real hardware.
// CASLoad charges batches of the latch-acquire idiom built on this.
func (t *Thread) CAS(b *mem.Buffer, off int64, dep Tok) Tok {
	tok := t.Load(b, off, 8, dep)
	done := After(tok, casHold)
	t.Store(b, off, 8, dep, done)
	return done
}

// Fence waits for all outstanding loads and stores to complete.
func (t *Thread) Fence() { t.Drain() }

// Drain advances the clock past every outstanding miss and store, and
// past the store-address barrier; it returns the quiesced cycle.
func (t *Thread) Drain() uint64 {
	m := t.cycle
	for _, c := range t.mlp {
		if c > m {
			m = c
		}
	}
	for _, c := range t.sbuf {
		if c > m {
			m = c
		}
	}
	if t.storeBarrier > m {
		m = t.storeBarrier
	}
	t.cycle = m
	return m
}

func (t *Thread) minSlot() int {
	best, bestC := 0, t.mlp[0]
	for i := 1; i < len(t.mlp); i++ {
		if t.mlp[i] < bestC {
			best, bestC = i, t.mlp[i]
		}
	}
	return best
}

func (t *Thread) checkRange(b *mem.Buffer, off, size int64) {
	if off < 0 || size < 0 || off+size > b.Size {
		panic(fmt.Sprintf("engine: access [%d,%d) out of buffer %q of size %d", off, off+size, b.Name, b.Size))
	}
}
