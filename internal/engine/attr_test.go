package engine

import (
	"testing"

	"sgxbench/internal/obs"
)

// TestStatsAttribution pins the attribute keys and their Stats sources
// — profile consumers (flamegraph tooling, diag output) key on these
// names.
func TestStatsAttribution(t *testing.T) {
	s := Stats{WorkCycles: 100, StallSSB: 7, EPCPagingCycles: 42, TLBWalks: 9}
	want := []obs.Attr{
		{Key: "work", Val: 100},
		{Key: "stall.ssb", Val: 7},
		{Key: "paging.epc", Val: 42},
	}
	got := s.Attribution()
	if len(got) != len(want) {
		t.Fatalf("Attribution() = %+v, want %+v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("attr %d = %+v, want %+v", i, got[i], want[i])
		}
	}
}
