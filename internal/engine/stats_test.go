package engine_test

import (
	"reflect"
	"testing"

	"sgxbench/internal/engine"
)

// fillStats assigns base*k to the k-th numeric leaf of s (array elements
// count as separate leaves), failing the test on any field kind it does
// not know how to fill — which forces this test to be extended alongside
// the Stats struct.
func fillStats(t *testing.T, s *engine.Stats, base uint64) {
	t.Helper()
	idx := uint64(1)
	var walk func(f reflect.Value)
	walk = func(f reflect.Value) {
		switch f.Kind() {
		case reflect.Uint64:
			f.SetUint(base * idx)
			idx++
		case reflect.Array:
			for i := 0; i < f.Len(); i++ {
				walk(f.Index(i))
			}
		default:
			t.Fatalf("Stats has a field of unsupported kind %v: teach fillStats (and Stats.Sub) about it", f.Kind())
		}
	}
	v := reflect.ValueOf(s).Elem()
	for i := 0; i < v.NumField(); i++ {
		walk(v.Field(i))
	}
}

// TestStatsSubCoversAllFields fails when a newly added Stats field is
// omitted from Sub: every leaf of a - b must equal the leaf-wise
// difference, which an omitted field (left at a's or the zero value)
// cannot satisfy.
func TestStatsSubCoversAllFields(t *testing.T) {
	var a, b, want engine.Stats
	fillStats(t, &a, 5)
	fillStats(t, &b, 2)
	fillStats(t, &want, 3)
	if got := a.Sub(b); got != want {
		t.Errorf("Stats.Sub misses a field:\ngot:  %+v\nwant: %+v", got, want)
	}
}

// TestStatsPagingCounters pins the demand-paging counters by name: the
// oversubscription layers (exec wall accounting, the spill operators'
// golden gates, cmd/diag -epc) all read these fields directly, so a
// rename or removal must be a deliberate cross-layer change.
func TestStatsPagingCounters(t *testing.T) {
	v := reflect.ValueOf(engine.Stats{})
	for _, name := range []string{"EPCFaults", "EPCEvictions", "EPCPagingCycles"} {
		f := v.FieldByName(name)
		if !f.IsValid() || f.Kind() != reflect.Uint64 {
			t.Errorf("engine.Stats lacks uint64 paging counter %s", name)
		}
	}
}

// TestStatsAddSubRoundTrip pins the snapshot-delta semantics exec relies
// on: (a.Sub(b)) restores b's counters when the phase aggregate is summed
// back — i.e. Sub is the exact inverse of field-wise accumulation.
func TestStatsAddSubRoundTrip(t *testing.T) {
	var a, b engine.Stats
	fillStats(t, &a, 9)
	fillStats(t, &b, 4)
	d := a.Sub(b)
	// Field-wise: b + d == a for every leaf (Add maxes Cycles, so compare
	// through Sub instead: a.Sub(d) must equal b).
	if got := a.Sub(d); got != b {
		t.Errorf("a.Sub(a.Sub(b)) != b:\ngot:  %+v\nwant: %+v", got, b)
	}
}
