package engine

import "sgxbench/internal/mem"

// Typed accessors pair the timing call with the real data access so that
// algorithm code stays readable. Each returns the loaded value together
// with its availability token; stores take the token the *address* was
// derived from, which is what the SSB model keys on.

// LoadU64 loads word i of b.
func LoadU64(t *Thread, b *mem.U64Buf, i int, dep Tok) (uint64, Tok) {
	tok := t.Load(&b.Buffer, b.Off(i), 8, dep)
	return b.D[i], tok
}

// StoreU64 stores v into word i of b.
func StoreU64(t *Thread, b *mem.U64Buf, i int, v uint64, addrDep, dataDep Tok) Tok {
	b.D[i] = v
	return t.Store(&b.Buffer, b.Off(i), 8, addrDep, dataDep)
}

// LoadU32 loads word i of b.
func LoadU32(t *Thread, b *mem.U32Buf, i int, dep Tok) (uint32, Tok) {
	tok := t.Load(&b.Buffer, b.Off(i), 4, dep)
	return b.D[i], tok
}

// StoreU32 stores v into word i of b.
func StoreU32(t *Thread, b *mem.U32Buf, i int, v uint32, addrDep, dataDep Tok) Tok {
	b.D[i] = v
	return t.Store(&b.Buffer, b.Off(i), 4, addrDep, dataDep)
}

// LoadLine charges one full cache-line (vector) load at byte offset off.
// Used by the SIMD scans: one AVX-512 load covers 64 bytes.
func LoadLine(t *Thread, b *mem.Buffer, off int64, dep Tok) Tok {
	n := b.Size - off
	if n > 64 {
		n = 64
	}
	return t.Load(b, off, n, dep)
}

// StoreLine charges one full cache-line (vector) store at byte offset
// off, clamped to the buffer end.
func StoreLine(t *Thread, b *mem.Buffer, off int64, addrDep, dataDep Tok) Tok {
	n := b.Size - off
	if n > 64 {
		n = 64
	}
	return t.Store(b, off, n, addrDep, dataDep)
}

// StreamZero models zeroing (or first-touch initialization of) n bytes
// starting at off using non-temporal stores: pure bandwidth, no latency
// chain. Used for memset-style initialization and buffer pre-touching.
func StreamZero(t *Thread, b *mem.Buffer, off, n int64) {
	lineBytes := t.Plat.L1D.LineBytes
	for o := off; o < off+n; o += lineBytes {
		sz := lineBytes
		if o+sz > b.Size {
			sz = b.Size - o
		}
		t.Store(b, o, sz, 0, 0)
	}
}
