package engine_test

import (
	"testing"

	"sgxbench/internal/engine"
	"sgxbench/internal/mem"
	"sgxbench/internal/platform"
	"sgxbench/internal/rng"
)

// gatherSetting is one (mode, data placement) combination — the engine-
// level equivalent of the paper's four execution settings.
type gatherSetting struct {
	name string
	mode engine.Mode
	kind mem.Kind
}

func gatherSettings() []gatherSetting {
	return []gatherSetting{
		{"PlainCPU", engine.PlainCPU, mem.Untrusted},
		{"PlainCPUM", engine.PlainCPUM, mem.Untrusted},
		{"SGXDoE", engine.Enclave, mem.Untrusted},
		{"SGXDiE", engine.Enclave, mem.EPC},
	}
}

// traceThread replays a deterministic mixed trace of batched and per-op
// accesses on one thread and returns a token checksum. The trace
// interleaves every gather/scatter API with per-op calls and sequential
// runs so that the MRU line memo is exercised across call boundaries.
func traceThread(t *engine.Thread, big, small *mem.Buffer) uint64 {
	r := rng.NewXorShift(rng.Mix(1234))
	const batch = 16
	offs := make([]int64, batch)
	offs1 := make([]int64, batch)
	deps := make([]engine.Tok, batch)
	toks := make([]engine.Tok, batch)
	casToks := make([]engine.Tok, batch)
	var sum uint64
	add := func(tok engine.Tok) { sum = sum*1099511628211 + uint64(tok) }
	slots8 := (big.Size - 8) / 8
	for round := 0; round < 40; round++ {
		// Random 8-byte gather over the big buffer, chained deps.
		var dep engine.Tok
		for i := range offs {
			offs[i] = int64(r.Uint64n(uint64(slots8))) * 8
			deps[i] = dep
		}
		add(t.LoadGather(big, 8, offs, deps, toks))
		dep = toks[batch-1]
		// Scatter stores back to the same offsets (cursor-style addrDeps).
		t.StoreScatter(big, 8, offs, toks, deps)
		// RMW increments on the small buffer (histogram idiom).
		for i := range offs {
			offs[i] = int64(r.Uint64n(uint64(small.Size/4))) * 4
		}
		t.RMWScatter(small, 4, offs, toks, nil)
		// Dependent pair chase (header -> next line).
		for i := range offs {
			o := int64(r.Uint64n(uint64(slots8-8))) * 8
			offs[i] = o
			offs1[i] = o + 64
			if offs1[i]+8 > big.Size {
				offs1[i] = o
			}
		}
		add(t.LoadChain(big, 8, offs, offs1, 1, nil, toks))
		// Latch acquire + count load (PHT insert idiom).
		for i := range offs {
			offs[i] = int64(r.Uint64n(uint64((big.Size-8)/64))) * 64
		}
		t.CASLoad(big, 4, offs, deps, casToks, toks)
		add(casToks[batch-1])
		add(toks[batch-1])
		// Per-op accesses and sequential runs between the batches, so the
		// memo state crosses API boundaries in both directions.
		off := int64(r.Uint64n(uint64(slots8))) * 8
		add(t.Load(big, off, 8, 0))
		add(t.Store(big, off, 8, 0, 0))
		add(t.CAS(big, off, 0))
		runOff := int64(r.Uint64n(uint64(slots8/2))) * 8
		add(t.LoadRun(big, runOff, 8, 32, 0))
		add(t.StoreRun(big, runOff, 8, 32, 0, 0))
		// Non-temporal streaming stores between cached accesses: the NT
		// path must keep the TLB state and the MRU line memo consistent
		// across both engine modes.
		ntOff := int64(r.Uint64n(uint64((big.Size-16*64)/64))) * 64
		add(t.StoreLinesNT(big, ntOff, 16, 0, dep))
		add(t.Load(big, ntOff, 8, 0))
		t.Work(3)
	}
	add(engine.Tok(t.Drain()))
	return sum
}

// TestGatherGoldenEquivalence enforces the fast-path invariant on the
// batched random-access APIs: under every execution setting, replaying
// the same trace on the per-op reference engine and the batched fast
// engine must produce bit-identical tokens and statistics.
func TestGatherGoldenEquivalence(t *testing.T) {
	plat := platform.XeonGold6326().Scaled(256)
	for _, s := range gatherSettings() {
		run := func(ref bool) (uint64, engine.Stats) {
			sp := mem.NewSpace(plat.Sockets)
			reg := mem.Region{Node: 0, Kind: s.kind}
			big := sp.Alloc("big", 1<<20, reg)
			small := sp.Alloc("small", 1<<12, reg)
			th := engine.NewThread(engine.Config{
				Plat: plat, Mode: s.mode, Costs: engine.DefaultSGXCosts(),
				Reference: ref,
			}, 0)
			sum := traceThread(th, &big, &small)
			return sum, th.Stats()
		}
		refSum, refStats := run(true)
		fastSum, fastStats := run(false)
		if refSum != fastSum {
			t.Errorf("%s: token checksum ref=%d fast=%d", s.name, refSum, fastSum)
		}
		if refStats != fastStats {
			t.Errorf("%s: stats differ\nref:  %+v\nfast: %+v", s.name, refStats, fastStats)
		}
	}
}

// TestGatherMatchesPerOp checks the reference decomposition itself: a
// LoadGather over offsets must charge exactly the same stats as the
// equivalent per-op Load sequence (both on the reference engine), so the
// batched APIs cannot drift from the per-op semantics they bundle.
func TestGatherMatchesPerOp(t *testing.T) {
	plat := platform.XeonGold6326().Scaled(256)
	mk := func() (*engine.Thread, mem.Buffer) {
		sp := mem.NewSpace(plat.Sockets)
		buf := sp.Alloc("buf", 1<<18, mem.Region{Node: 0, Kind: mem.EPC})
		th := engine.NewThread(engine.Config{
			Plat: plat, Mode: engine.Enclave, Costs: engine.DefaultSGXCosts(), Reference: true,
		}, 0)
		return th, buf
	}
	r := rng.NewXorShift(7)
	offs := make([]int64, 257)
	for i := range offs {
		offs[i] = int64(r.Uint64n(uint64((1<<18)/8))) * 8
	}
	ga, bufA := mk()
	ga.LoadGather(&bufA, 8, offs, nil, nil)
	ga.Drain()
	po, bufB := mk()
	for _, off := range offs {
		po.Load(&bufB, off, 8, 0)
	}
	po.Drain()
	if ga.Stats() != po.Stats() {
		t.Errorf("gather reference decomposition drifted from per-op loads\ngather: %+v\nper-op: %+v",
			ga.Stats(), po.Stats())
	}
}
