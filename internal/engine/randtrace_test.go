package engine_test

import (
	"testing"

	"sgxbench/internal/engine"
	"sgxbench/internal/mem"
	"sgxbench/internal/platform"
	"sgxbench/internal/rng"
)

// The randomized differential harness: where gather_test.go replays one
// hand-written trace, this test *generates* traces — a seeded uniform
// op picker interleaving every bulk API (LoadRun, LoadRunToks,
// LoadLines, StoreRun, StoreLinesNT, LoadGather, StoreScatter,
// RMWScatter, LoadChain, CASLoad) with the per-op calls, random batch
// widths, random element sizes and cross-call token dependencies — and
// asserts that the per-op reference engine and the batched fast engine
// stay bit-identical in statistics and completion tokens on every one.
// Any fast-path state divergence that only manifests under a particular
// API adjacency (MRU memo handoff, stream-slot reuse, translation memo)
// is the bug class this hunts.

// randTrace replays one generated trace on t and returns a token
// checksum folding every API's completion tokens.
func randTrace(t *engine.Thread, big, small *mem.Buffer, seed uint64, steps int) uint64 {
	r := rng.NewXorShift(rng.Mix(seed))
	const maxBatch = 24
	offs := make([]int64, maxBatch)
	offs1 := make([]int64, maxBatch)
	deps := make([]engine.Tok, maxBatch)
	toks := make([]engine.Tok, maxBatch)
	casToks := make([]engine.Tok, maxBatch)
	var sum uint64
	add := func(tok engine.Tok) { sum = sum*1099511628211 + uint64(tok) }
	var carry engine.Tok // token chained across steps (cross-call deps)
	elems := []int64{4, 8, 16, 32}
	slots := func(b *mem.Buffer, size int64) int64 { return (b.Size - size) / size }
	for step := 0; step < steps; step++ {
		batch := 1 + int(r.Uint64n(maxBatch))
		elem := elems[r.Uint64n(uint64(len(elems)))]
		buf := big
		if r.Uint64n(4) == 0 {
			buf = small
		}
		ns := slots(buf, elem)
		for i := 0; i < batch; i++ {
			offs[i] = int64(r.Uint64n(uint64(ns))) * elem
			if r.Uint64n(2) == 0 {
				deps[i] = 0
			} else {
				deps[i] = carry
			}
		}
		switch r.Uint64n(13) {
		case 0: // sequential load run
			runN := 1 + int(r.Uint64n(64))
			off := int64(r.Uint64n(uint64(maxInt64(ns-int64(runN), 1)))) * elem
			carry = t.LoadRun(buf, off, elem, runN, deps[0])
			add(carry)
		case 1: // load run with per-element tokens
			runN := 1 + int(r.Uint64n(uint64(maxBatch)))
			off := int64(r.Uint64n(uint64(maxInt64(ns-int64(runN), 1)))) * elem
			t.LoadRunToks(buf, off, elem, runN, deps[0], toks[:runN])
			carry = toks[runN-1]
			add(carry)
		case 2: // line-granular load run
			nLines := 1 + int(r.Uint64n(48))
			off := int64(r.Uint64n(uint64(maxInt64(buf.Size/64-int64(nLines), 1)))) * 64
			carry = t.LoadLines(buf, off, nLines, deps[0])
			add(carry)
		case 3: // sequential store run
			runN := 1 + int(r.Uint64n(64))
			off := int64(r.Uint64n(uint64(maxInt64(ns-int64(runN), 1)))) * elem
			carry = t.StoreRun(buf, off, elem, runN, deps[0], carry)
			add(carry)
		case 4: // non-temporal line stores
			nLines := 1 + int(r.Uint64n(24))
			off := int64(r.Uint64n(uint64(maxInt64(buf.Size/64-int64(nLines), 1)))) * 64
			carry = t.StoreLinesNT(buf, off, nLines, deps[0], carry)
			add(carry)
		case 5: // independent gather
			carry = t.LoadGather(buf, elem, offs[:batch], deps[:batch], toks[:batch])
			add(carry)
		case 6: // independent scatter (data deps from the last gather)
			t.StoreScatter(buf, elem, offs[:batch], deps[:batch], toks[:batch])
		case 7: // read-modify-write scatter (histogram idiom)
			t.RMWScatter(buf, elem, offs[:batch], deps[:batch], toks[:batch])
			carry = toks[batch-1]
			add(carry)
		case 8: // dependent pair chase (header -> slot idiom)
			for i := 0; i < batch; i++ {
				offs1[i] = offs[i] + 64
				if offs1[i]+elem > buf.Size {
					offs1[i] = offs[i]
				}
			}
			carry = t.LoadChain(buf, elem, offs[:batch], offs1[:batch], 1+r.Uint64n(3), deps[:batch], toks[:batch])
			add(carry)
		case 9: // latch CAS + count load (hash-insert idiom)
			n8 := slots(buf, 8)
			for i := 0; i < batch; i++ {
				offs[i] = int64(r.Uint64n(uint64(n8))) * 8
			}
			t.CASLoad(buf, minInt64(elem, 8), offs[:batch], deps[:batch], casToks[:batch], toks[:batch])
			carry = toks[batch-1]
			add(casToks[batch-1])
			add(carry)
		case 10: // per-op load + store + CAS
			off := offs[0]
			add(t.Load(buf, off, elem, deps[0]))
			add(t.Store(buf, off, elem, deps[0], carry))
			n8 := slots(buf, 8)
			carry = t.CAS(buf, int64(r.Uint64n(uint64(n8)))*8, deps[0])
			add(carry)
		case 11: // pure compute between memory ops
			t.Work(1 + r.Uint64n(16))
		case 12: // full-line single accesses
			off := int64(r.Uint64n(uint64(maxInt64(buf.Size/64, 1)))) * 64
			carry = engine.LoadLine(t, buf, off, deps[0])
			add(engine.StoreLine(t, buf, off, deps[0], carry))
		}
	}
	add(engine.Tok(t.Drain()))
	return sum
}

func maxInt64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func minInt64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

// TestRandomTraceEquivalence runs the generated traces under every
// execution setting and several seeds, asserting bit-identical stats and
// token checksums between the reference and fast engine paths.
func TestRandomTraceEquivalence(t *testing.T) {
	plat := platform.XeonGold6326().Scaled(256)
	steps := 300
	seeds := []uint64{1, 2, 3, 4, 5}
	if testing.Short() {
		steps = 120
		seeds = seeds[:2]
	}
	for _, s := range gatherSettings() {
		for _, seed := range seeds {
			run := func(ref bool) (uint64, engine.Stats) {
				sp := mem.NewSpace(plat.Sockets)
				reg := mem.Region{Node: 0, Kind: s.kind}
				big := sp.Alloc("big", 1<<20, reg)
				small := sp.Alloc("small", 1<<12, reg)
				th := engine.NewThread(engine.Config{
					Plat: plat, Mode: s.mode, Costs: engine.DefaultSGXCosts(),
					Reference: ref,
				}, 0)
				sum := randTrace(th, &big, &small, seed, steps)
				return sum, th.Stats()
			}
			refSum, refStats := run(true)
			fastSum, fastStats := run(false)
			if refSum != fastSum {
				t.Errorf("%s seed %d: token checksum ref=%d fast=%d", s.name, seed, refSum, fastSum)
			}
			if refStats != fastStats {
				t.Errorf("%s seed %d: stats differ\nref:  %+v\nfast: %+v", s.name, seed, refStats, fastStats)
			}
		}
	}
}
