package engine

import "sgxbench/internal/obs"

// Attribution renders the cycle-accounting view of a Stats snapshot as
// profile attributes: where the cycles went, split into useful work,
// store-address-barrier stalls and EPC paging overhead. The exec layer
// attaches these to leaf phases of a cycle-attribution profile so a
// per-operator tree also explains each phase's cost composition.
func (s Stats) Attribution() []obs.Attr {
	return []obs.Attr{
		{Key: "work", Val: s.WorkCycles},
		{Key: "stall.ssb", Val: s.StallSSB},
		{Key: "paging.epc", Val: s.EPCPagingCycles},
	}
}
