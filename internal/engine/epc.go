package engine

import "sync/atomic"

// EPC oversubscription model. Real SGXv2 machines cap the Enclave Page
// Cache at a fraction of DRAM; when an enclave's working set exceeds it,
// the kernel demand-pages EPC pages to untrusted memory — an encrypted
// write-back (EWB) per victim and an ELDU load per fault, each a kernel
// round trip orders of magnitude more expensive than a TLB miss. The
// DuckDB-SGX2 study calls this regime "the ugly": operators whose access
// pattern cycles a working set larger than the EPC collapse by orders of
// magnitude, while partitioned operators that stage work through
// enclave-resident chunks degrade smoothly.
//
// The model is deliberately software-visible only, like the rest of the
// sgx layer: a finite budget of resident 4 KiB pages per thread, a CLOCK
// (second-chance) replacement policy over them, and per-fault costs
// charged to the faulting thread. Like EDMM page commits, the kernel
// serializes paging across the enclave on the page-table lock, so every
// fault's cycles also accumulate in the domain's serial counter, which
// the phase runner folds into wall time (exec.Group.Phase).
//
// Residency is tracked per thread over TotalPages/EPCShare: each thread
// demand-pages its own partition of the EPC independently. This is a
// determinism-motivated simplification — a shared resident set would make
// fault counts depend on the goroutine interleaving — and matches how the
// operators use the budget: spill-partitioned operators size their chunks
// against the per-thread share.

// EPCDomain is the shared EPC capacity of one enclave. Construct one with
// sgx.NewEPCDomain and pass it to every thread of the enclave via
// Config.EPC; a nil domain (or zero TotalPages) disables paging.
type EPCDomain struct {
	// TotalPages is the enclave's EPC capacity in 4 KiB pages.
	TotalPages int64
	// PageInCycles is charged for every fault: the AEX, the kernel ELDU
	// path decrypting and verifying the page, and the TLB refill.
	PageInCycles uint64
	// PageOutCycles is additionally charged when the fault must evict: the
	// EWB encrypted write-back of the victim plus its TLB shootdown.
	PageOutCycles uint64

	serial atomic.Uint64 // kernel-serialized paging cycles (cf. sgx.Allocator)
}

// SerialCycles returns the serialized paging cycles accumulated since the
// last call and resets the counter. The phase runner folds this into wall
// time exactly like EDMM commit serialization.
func (d *EPCDomain) SerialCycles() uint64 {
	if d == nil {
		return 0
	}
	return d.serial.Swap(0)
}

// epcTouch records an access to an EPC data page, faulting it in (and
// evicting a victim) if it is not resident. Called at the very start of
// every data access on both engine paths, before the issue clock is read,
// so the fault cycles are visible to the access's own timing — including
// bandwidth-paced accesses, which overwrite the clock relative to their
// issue point.
//
// Equivalence invariant: a touch of a resident page only sets that page's
// CLOCK reference bit, and the one-entry epcLast memo guarantees the page
// was touched by the immediately preceding access whenever the fast path
// skips work for a same-line repeat — so the skipped re-touch would have
// been an idempotent no-op. That is what keeps fault and eviction counts
// bit-identical between the per-op reference path and the batched fast
// path. CLOCK (not FIFO) matters for the spill operators: their hash-table
// scratch pages are re-referenced between sweeps and survive the streaming
// probe traffic, which is exactly the hot-set protection second-chance
// replacement exists for.
func (t *Thread) epcTouch(page uint64) {
	if page == t.epcLast {
		return
	}
	t.epcLast = page
	if i, ok := t.epcIdx[page]; ok {
		t.epcRef[i] = true
		return
	}
	d := t.epcDom
	cost := d.PageInCycles
	var slot int
	if t.epcCount < len(t.epcRing) {
		slot = t.epcCount
		t.epcCount++
	} else {
		// CLOCK sweep: clear reference bits until an unreferenced victim
		// turns up. Terminates within one lap — a cleared slot is a victim
		// on revisit.
		for t.epcRef[t.epcHand] {
			t.epcRef[t.epcHand] = false
			if t.epcHand++; t.epcHand == len(t.epcRing) {
				t.epcHand = 0
			}
		}
		slot = t.epcHand
		delete(t.epcIdx, t.epcRing[slot])
		t.st.EPCEvictions++
		cost += d.PageOutCycles
		if t.epcHand++; t.epcHand == len(t.epcRing) {
			t.epcHand = 0
		}
	}
	// Insert unreferenced: the epcLast memo absorbs the fault's own access
	// run, so only a later return to the page sets its reference bit —
	// streamed-once pages stay unreferenced and are evicted first.
	t.epcRing[slot] = page
	t.epcRef[slot] = false
	t.epcIdx[page] = slot
	t.st.EPCFaults++
	t.st.EPCPagingCycles += cost
	t.cycle += cost
	d.serial.Add(cost)
}

// EPCResident returns the number of EPC pages currently resident for this
// thread (diagnostics; 0 when paging is disabled).
func (t *Thread) EPCResident() int { return t.epcCount }

// EPCBudgetPages returns the thread's private resident-set budget in
// pages (diagnostics; 0 when paging is disabled).
func (t *Thread) EPCBudgetPages() int { return len(t.epcRing) }

// resetEPCState drops all residency (cold start), part of
// ResetMemoryState.
func (t *Thread) resetEPCState() {
	if t.epcDom == nil {
		return
	}
	for i := range t.epcRing {
		t.epcRing[i] = 0
		t.epcRef[i] = false
	}
	for p := range t.epcIdx {
		delete(t.epcIdx, p)
	}
	t.epcHand, t.epcCount = 0, 0
	t.epcLast = noPage
}
