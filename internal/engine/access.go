package engine

import "sgxbench/internal/mem"

// Synthetic address windows for translation metadata. They sit below the
// first mem.Space region window (1<<44) so they can never collide with
// data. PTE entries are 8 bytes (512 per page-table page); EPCM entries
// are modeled at 16 bytes per EPC page. Both travel through the regular
// cache hierarchy, so their locality follows the data's page locality:
// sequential scans keep translation metadata cache-resident while random
// accesses over large ranges miss on metadata too — the mechanism behind
// the super-linear random-access overheads of Fig 5.
const (
	pteWindow  = uint64(1) << 42
	epcmWindow = uint64(3) << 42
)

// noPage is the empty value of the one-entry translation cache: no real
// translation can produce it (simulated addresses stay far below 2^63).
const noPage = ^uint64(0)

// Memory accesses charge (latency, llcMiss, bandwidthPaced) through
// refAccess (per-op reference) or fastAccess (batched fast path); both
// perform the identical simulated state transition. The latency of paced
// accesses is a cycle-advance, not a completion latency (see Load).
//
// For accesses that are part of a detected sequential stream the
// translation latency is not charged: the hardware page walker runs ahead
// of the stream alongside the prefetcher, so scans observe pure bandwidth
// — this is why the paper's EPCM-check overhead hurts random accesses
// (Fig 5) but leaves linear scans at ~-3 % (Fig 13).

// refAccess is the original per-op implementation: a full stream-table
// scan, a full TLB probe and separate probe/fill cache walks for every
// access, over the timestamp-LRU reference structures. Kept as the
// golden-test baseline.
func (t *Thread) refAccess(b *mem.Buffer, off int64, write bool) (lat uint64, llcMiss, paced bool) {
	addr := b.Base + uint64(off)
	remote := b.Reg.Node != t.Node
	epc := b.Reg.Kind == mem.EPC
	inStream := t.refTrainStream(addr)

	// --- Translation ---
	var tlbLat uint64
	page := addr / uint64(t.Plat.PageBytes)
	if !t.rdtlb.Access(page) {
		if t.rstlb.Access(page) {
			tlbLat += t.Plat.LatSTLB
		} else {
			tlbLat += t.walkPage(page, b.Reg.Node, epc, remote)
		}
	}

	// --- Data ---
	dl, level := t.refHier(addr, write, b.Reg.Node, epc, remote)
	if level == levelDRAM {
		t.st.DRAMAcc++
		if inStream {
			// Prefetched stream: pace at stream bandwidth instead of
			// paying the full miss latency; translation overlaps with
			// the stream. The reference path recomputes the pacing
			// latency from bandwidth each time, as the model originally
			// did; the value is bit-identical to the fast path's
			// precomputed table.
			bw := t.Plat.CoreStreamBW
			if remote {
				bw = t.Plat.RemoteStreamBW
				if epc {
					bw *= t.Costs.UPIStreamTaxEPC
				}
			} else if epc {
				bw *= t.Plat.EPCStreamTax
			}
			lat = uint64(float64(t.Plat.L1D.LineBytes) / bw)
			t.st.StreamFills++
			return lat, true, true
		}
		t.st.RandomFills++
		return tlbLat + dl, true, false
	}
	return tlbLat + dl, false, false
}

// refTrainStream is the per-op reference implementation of the stream
// table: a linear scan of all slots for the page's stream (and, on a
// miss, for a neighbouring page's stream to continue), exactly as the
// original model scanned its fully-associative table per access. It
// performs the identical state transition to trainStream — a page's
// stream can only ever live in that page's index pair, so the scan finds
// the same slot direct indexing does.
func (t *Thread) refTrainStream(addr uint64) bool {
	line := addr >> 6
	page := line >> t.lpShift
	i := page & (nStreams - 1)
	for j := range t.streams {
		s := &t.streams[j]
		if s.pageKey != page+1 {
			continue
		}
		t.mruWay[i] = uint8(j & 1)
		switch line - s.lastLine {
		case 0:
			return s.streak >= 2
		case 1, ^uint64(0):
			s.streak++
			s.lastLine = line
			return s.streak >= 2
		}
		s.lastLine = line
		s.streak = 0
		return false
	}
	var streak uint64
	for j := range t.streams {
		s := &t.streams[j]
		// pageKey is page+1 of the tracked page, so a slot tracking
		// page-1 has pageKey == page; guard page != 0 so empty slots
		// (pageKey 0) can never match.
		if page != 0 && s.pageKey == page && line == s.lastLine+1 {
			streak = s.streak + 1
			break
		}
		if s.pageKey == page+2 && line+1 == s.lastLine {
			streak = s.streak + 1
			break
		}
	}
	w := 1 - int(t.mruWay[i])
	t.streams[2*i+uint64(w)] = stream{pageKey: page + 1, lastLine: line, streak: streak}
	t.mruWay[i] = uint8(w)
	return streak >= 2
}

// fastTranslate performs the full translation for a page that misses the
// one-entry last-page cache, updating it. Callers pre-check
// dtlb.MRUHit(page) inline (a DTLB-set-MRU page hits without any state
// change), so this function runs only when a real probe is needed.
func (t *Thread) fastTranslate(page uint64, b *mem.Buffer) uint64 {
	var tlbLat uint64
	if !t.dtlb.Access(page) {
		if t.stlb.Access(page) {
			tlbLat = t.Plat.LatSTLB
		} else {
			remote := b.Reg.Node != t.Node
			tlbLat = t.walkPage(page, b.Reg.Node, b.Reg.Kind == mem.EPC, remote)
		}
	}
	t.lastPage = page
	return tlbLat
}

// pacedAdvance returns the per-line cycle advance of a bandwidth-paced
// stream fill (precomputed at thread construction).
func (t *Thread) pacedAdvance(epc, remote bool) uint64 {
	i := 0
	if epc {
		i = 1
	}
	if remote {
		i |= 2
	}
	return t.pacedLat[i]
}

// walkPage charges a hardware page walk (on STLB miss): the base walk
// latency, the PTE fetches through the cache hierarchy, and — for EPC
// pages — the EPCM security checks. Shared by both access paths; the
// metadata fetches go through the mode-appropriate hierarchy walk. When
// the walked page's 2 MiB region hits the paging-structure cache, the
// non-leaf levels are served by the walker internally and only the leaf
// PTE is fetched through the hierarchy.
func (t *Thread) walkPage(page uint64, homeNode int, epc, remote bool) uint64 {
	t.st.TLBWalks++
	tlbLat := t.Plat.LatPageWalk
	levels := t.Plat.PTEAccesses
	pde := page >> 9
	if slot := pde & (pwcEntries - 1); t.pwc[slot] == pde+1 {
		levels = 1
	} else {
		t.pwc[slot] = pde + 1
	}
	for i := 0; i < levels; i++ {
		// Walk levels have decreasing footprint and increasing
		// locality: level i covers page>>(9*i). Each level gets
		// its own sub-window so entries do not alias.
		pteAddr := pteWindow + uint64(i)<<40 + (page>>uint(9*i))<<3
		l, _ := t.hier(pteAddr, false, homeNode, false, remote)
		tlbLat += l
		t.st.MetaAcc++
	}
	if epc {
		// EPCM security checks on enclave address translation
		// (Section 4.1: "most of the security guarantees of Intel
		// SGX are enforced by adding checks to address
		// translation. This increases the cost of TLB misses").
		// EPCM metadata lives in the PRM: its lines are encrypted
		// like any EPC line and large enclave working sets push
		// it out of the LLC, which is what drives random enclave
		// accesses towards 3x (Fig 5).
		tlbLat += t.Costs.EPCMCheckCycles
		for i := 0; i < t.Costs.EPCMAccesses; i++ {
			eAddr := epcmWindow + (page*uint64(t.Costs.EPCMAccesses)+uint64(i))<<6
			l, _ := t.hier(eAddr, false, homeNode, true, remote)
			tlbLat += l
			t.st.MetaAcc++
		}
	}
	return tlbLat
}

type level int

const (
	levelL1 level = iota
	levelL2
	levelL3
	levelDRAM
)

// hier dispatches a hierarchy walk to the mode-appropriate implementation.
func (t *Thread) hier(addr uint64, write bool, homeNode int, epc, remote bool) (uint64, level) {
	if t.ref {
		return t.refHier(addr, write, homeNode, epc, remote)
	}
	return t.fastHier(addr, write, homeNode, epc, remote)
}

// refHier walks the cache hierarchy for one line, filling on miss, and
// returns the latency and the level that served the access — the original
// separate-probe-then-fill implementation. DRAM-level costs include SGX
// adders (TME-MK decryption for EPC lines, UPI transfer and UCE encryption
// for remote lines) and are accounted in the byte counters used for
// phase-level bandwidth composition.
func (t *Thread) refHier(addr uint64, write bool, homeNode int, epc, remote bool) (uint64, level) {
	line := t.rl1.LineOf(addr)
	if t.rl1.Access(line, write) {
		t.st.L1Hits++
		return t.Plat.LatL1, levelL1
	}
	if t.rl2.Access(line, write) {
		t.rl1.Fill(line, write)
		t.st.L2Hits++
		return t.Plat.LatL2, levelL2
	}
	if t.rl3.Access(line, write) {
		t.rl2.Fill(line, write)
		t.rl1.Fill(line, write)
		t.st.L3Hits++
		return t.Plat.LatL3, levelL3
	}
	t.rl1.Fill(line, write)
	t.rl2.Fill(line, write)
	_, dirty, ok := t.rl3.Fill(line, write)
	return t.dramFill(write, homeNode, epc, remote, ok && dirty), levelDRAM
}

// fastHier is the fused-probe implementation of the identical hierarchy
// walk: each level is probed and, on a miss, filled in a single pass over
// the set, so misses never rescan it. The L1 hit exit is the short common
// path — one probe of the recency-ordered set and no further accounting.
func (t *Thread) fastHier(addr uint64, write bool, homeNode int, epc, remote bool) (uint64, level) {
	line := t.l1.LineOf(addr)
	// Seed every level the probe reaches: a level that misses is filled
	// immediately (the original path fills it later in the same access —
	// the merged probe performs the same insertion in one pass).
	if hit, _, _, _ := t.l1.AccessOrFill(line, write); hit {
		t.st.L1Hits++
		return t.Plat.LatL1, levelL1
	}
	if hit, _, _, _ := t.l2.AccessOrFill(line, write); hit {
		t.st.L2Hits++
		return t.Plat.LatL2, levelL2
	}
	hit, _, dirty, ok := t.l3.AccessOrFill(line, write)
	if hit {
		t.st.L3Hits++
		return t.Plat.LatL3, levelL3
	}
	return t.dramFill(write, homeNode, epc, remote, ok && dirty), levelDRAM
}

// dramFill accounts a DRAM-level line transfer: latency adders, per-socket
// byte counters, write-allocate writeback traffic and a dirty L3 eviction.
func (t *Thread) dramFill(write bool, homeNode int, epc, remote, evictedDirty bool) uint64 {
	lineBytes := uint64(t.Plat.L1D.LineBytes)
	lat := t.Plat.LatDRAM
	if remote {
		lat += t.Plat.LatRemote
		t.st.UPIBytes += lineBytes
		if epc {
			lat += t.Costs.UCELatency
		}
	}
	if epc {
		lat += t.Costs.EPCLineDecrypt
	}
	node := homeNode
	if node < 0 || node > 1 {
		node = 0
	}
	t.st.DRAMBytes[node] += lineBytes
	if write {
		// Write-allocate brings the line in and will eventually write it
		// back: account the writeback half now.
		t.st.DRAMBytes[node] += lineBytes
		if remote {
			t.st.UPIBytes += lineBytes
		}
	}
	if evictedDirty {
		t.st.EvictedDirty++
		t.st.DRAMBytes[node] += lineBytes
	}
	return lat
}

// trainStream updates the prefetcher's stream table and reports whether
// the access at addr continues a detected sequential stream (two or more
// consecutive lines). The table is direct-mapped by 4 KiB page, as in
// hardware stream prefetchers that track per-page state: training is O(1)
// — no table scan and no replacement ambiguity — which is what lets both
// the per-op and batched paths share it bit for bit. Streams track
// ascending and descending runs (descending matters for CrkJoin's
// two-pointer pass) and carry their streak across page boundaries by
// migrating to the neighbouring page's slot.
func (t *Thread) trainStream(addr uint64) bool {
	line := addr >> 6
	page := line >> t.lpShift
	i := page & (nStreams - 1)
	w := 0
	s := &t.streams[2*i]
	if s.pageKey != page+1 {
		if s2 := &t.streams[2*i+1]; s2.pageKey == page+1 {
			s, w = s2, 1
		} else {
			// No stream tracks this page yet: claim the non-MRU way.
			// Cross-page continuation carries the streak over — an
			// ascending stream arrives from the previous page's slot, a
			// descending one from the next page's. Only the page's first
			// (resp. last) line can continue a neighbouring stream, so
			// the neighbour lookups are skipped everywhere else.
			var streak uint64
			if lineInPage := line & (1<<t.lpShift - 1); lineInPage == 0 {
				if p := t.streamAt(page - 1); p != nil && line == p.lastLine+1 {
					streak = p.streak + 1
				}
			} else if lineInPage == 1<<t.lpShift-1 {
				if n := t.streamAt(page + 1); n != nil && line+1 == n.lastLine {
					streak = n.streak + 1
				}
			}
			w = 1 - int(t.mruWay[i])
			s = &t.streams[2*i+uint64(w)]
			*s = stream{pageKey: page + 1, lastLine: line, streak: streak}
			t.mruWay[i] = uint8(w)
			return streak >= 2
		}
	}
	t.mruWay[i] = uint8(w)
	switch line - s.lastLine {
	case 0: // re-touch of the current line keeps the stream alive
		return s.streak >= 2
	case 1, ^uint64(0): // ascending or descending continuation
		s.streak++
		s.lastLine = line
		return s.streak >= 2
	}
	// Jump within the page: restart detection.
	s.lastLine = line
	s.streak = 0
	return false
}

// streamAt returns the stream tracking page, if any. The page+1 == 0
// guard keeps an underflowed neighbour index (page 0 minus one) from
// matching empty slots, mirroring refTrainStream's page != 0 guard.
func (t *Thread) streamAt(page uint64) *stream {
	if page+1 == 0 {
		return nil
	}
	i := page & (nStreams - 1)
	if s := &t.streams[2*i]; s.pageKey == page+1 {
		return s
	}
	if s := &t.streams[2*i+1]; s.pageKey == page+1 {
		return s
	}
	return nil
}

// ResetMemoryState clears caches, TLBs and the prefetcher table (cold
// start). Counters and the clock are preserved.
func (t *Thread) ResetMemoryState() {
	if t.ref {
		t.rl1.Reset()
		t.rl2.Reset()
		t.rl3.Reset()
		t.rdtlb.Reset()
		t.rstlb.Reset()
	} else {
		t.l1.Reset()
		t.l2.Reset()
		t.l3.Reset()
		t.dtlb.Reset()
		t.stlb.Reset()
	}
	t.streams = [2 * nStreams]stream{}
	t.mruWay = [nStreams]uint8{}
	t.pwc = [pwcEntries]uint64{}
	t.lastPage = noPage
	t.mruLine = noPage
	for i := range t.mlp {
		t.mlp[i] = 0
	}
	for i := range t.sbuf {
		t.sbuf[i] = 0
	}
	t.storeBarrier = 0
	t.resetEPCState()
}
