package engine

import "sgxbench/internal/mem"

// Synthetic address windows for translation metadata. They sit below the
// first mem.Space region window (1<<44) so they can never collide with
// data. PTE entries are 8 bytes (512 per page-table page); EPCM entries
// are modeled at 16 bytes per EPC page. Both travel through the regular
// cache hierarchy, so their locality follows the data's page locality:
// sequential scans keep translation metadata cache-resident while random
// accesses over large ranges miss on metadata too — the mechanism behind
// the super-linear random-access overheads of Fig 5.
const (
	pteWindow  = uint64(1) << 42
	epcmWindow = uint64(3) << 42
)

// access charges one memory access (after TLB translation) and returns
// (latency, llcMiss, bandwidthPaced). The latency of paced accesses is a
// cycle-advance, not a completion latency (see Load).
//
// For accesses that are part of a detected sequential stream the
// translation latency is not charged: the hardware page walker runs ahead
// of the stream alongside the prefetcher, so scans observe pure bandwidth
// — this is why the paper's EPCM-check overhead hurts random accesses
// (Fig 5) but leaves linear scans at ~-3 % (Fig 13).
func (t *Thread) access(b *mem.Buffer, off int64, write bool, issue uint64) (lat uint64, llcMiss, paced bool) {
	addr := b.Base + uint64(off)
	remote := b.Reg.Node != t.Node
	epc := b.Reg.Kind == mem.EPC
	inStream := t.trainStream(addr)

	// --- Translation ---
	var tlbLat uint64
	page := addr / uint64(t.Plat.PageBytes)
	if !t.dtlb.Access(page) {
		if t.stlb.Access(page) {
			tlbLat += t.Plat.LatSTLB
		} else {
			t.st.TLBWalks++
			tlbLat += t.Plat.LatPageWalk
			for i := 0; i < t.Plat.PTEAccesses; i++ {
				// Walk levels have decreasing footprint and increasing
				// locality: level i covers page>>(9*i). Each level gets
				// its own sub-window so entries do not alias.
				pteAddr := pteWindow + uint64(i)<<40 + (page>>uint(9*i))<<3
				l, _ := t.hierAccess(pteAddr, false, b.Reg.Node, false, remote)
				tlbLat += l
				t.st.MetaAcc++
			}
			if epc {
				// EPCM security checks on enclave address translation
				// (Section 4.1: "most of the security guarantees of Intel
				// SGX are enforced by adding checks to address
				// translation. This increases the cost of TLB misses").
				// EPCM metadata lives in the PRM: its lines are encrypted
				// like any EPC line and large enclave working sets push
				// it out of the LLC, which is what drives random enclave
				// accesses towards 3x (Fig 5).
				tlbLat += t.Costs.EPCMCheckCycles
				for i := 0; i < t.Costs.EPCMAccesses; i++ {
					eAddr := epcmWindow + (page*uint64(t.Costs.EPCMAccesses)+uint64(i))<<6
					l, _ := t.hierAccess(eAddr, false, b.Reg.Node, true, remote)
					tlbLat += l
					t.st.MetaAcc++
				}
			}
		}
	}

	// --- Data ---
	dl, level := t.hierAccess(addr, write, b.Reg.Node, epc, remote)
	if level == levelDRAM {
		t.st.DRAMAcc++
		if inStream {
			// Prefetched stream: pace at stream bandwidth instead of
			// paying the full miss latency; translation overlaps with
			// the stream.
			bw := t.Plat.CoreStreamBW
			if remote {
				bw = t.Plat.RemoteStreamBW
				if epc {
					bw *= t.Costs.UPIStreamTaxEPC
				}
			} else if epc {
				bw *= t.Plat.EPCStreamTax
			}
			lat = uint64(float64(t.Plat.L1D.LineBytes) / bw)
			t.st.StreamFills++
			return lat, true, true
		}
		t.st.RandomFills++
		return tlbLat + dl, true, false
	}
	return tlbLat + dl, false, false
}

type level int

const (
	levelL1 level = iota
	levelL2
	levelL3
	levelDRAM
)

// hierAccess walks the cache hierarchy for one line, filling on miss, and
// returns the latency and the level that served the access. DRAM-level
// costs include SGX adders (TME-MK decryption for EPC lines, UPI transfer
// and UCE encryption for remote lines) and are accounted in the byte
// counters used for phase-level bandwidth composition.
func (t *Thread) hierAccess(addr uint64, write bool, homeNode int, epc, remote bool) (uint64, level) {
	line := t.l1.LineOf(addr)
	lineBytes := uint64(t.Plat.L1D.LineBytes)
	if t.l1.Access(line, write) {
		t.st.L1Hits++
		return t.Plat.LatL1, levelL1
	}
	if t.l2.Access(line, write) {
		t.l1.Fill(line, write)
		t.st.L2Hits++
		return t.Plat.LatL2, levelL2
	}
	if t.l3.Access(line, write) {
		t.l2.Fill(line, write)
		t.l1.Fill(line, write)
		t.st.L3Hits++
		return t.Plat.LatL3, levelL3
	}
	// DRAM access.
	lat := t.Plat.LatDRAM
	if remote {
		lat += t.Plat.LatRemote
		t.st.UPIBytes += lineBytes
		if epc {
			lat += t.Costs.UCELatency
		}
	}
	if epc {
		lat += t.Costs.EPCLineDecrypt
	}
	node := homeNode
	if node < 0 || node > 1 {
		node = 0
	}
	t.st.DRAMBytes[node] += lineBytes
	if write {
		// Write-allocate brings the line in and will eventually write it
		// back: account the writeback half now.
		t.st.DRAMBytes[node] += lineBytes
		if remote {
			t.st.UPIBytes += lineBytes
		}
	}
	t.l1.Fill(line, write)
	t.l2.Fill(line, write)
	if _, dirty, ok := t.l3.Fill(line, write); ok && dirty {
		t.st.EvictedDirty++
		t.st.DRAMBytes[node] += lineBytes
	}
	return lat, levelDRAM
}

// trainStream updates the prefetcher's stream table and reports whether
// the access at addr continues a detected sequential stream (two or more
// consecutive lines). A small fully-associative table of 16 streams is
// tracked, mirroring hardware stream prefetchers.
func (t *Thread) trainStream(addr uint64) bool {
	line := addr >> 6
	t.streamTick++
	// Look for a stream this line extends (ascending, descending, or a
	// re-touch of the current line). Hardware stream prefetchers track
	// both directions; descending matters for CrkJoin's two-pointer pass.
	victim := 0
	var oldest uint64 = ^uint64(0)
	for i := range t.streams {
		s := &t.streams[i]
		if s.lastUse != 0 && (line == s.lastLine+1 || line == s.lastLine || line+1 == s.lastLine) {
			if line != s.lastLine {
				s.streak++
			}
			s.lastLine = line
			s.lastUse = t.streamTick
			return s.streak >= 2
		}
		if s.lastUse < oldest {
			oldest = s.lastUse
			victim = i
		}
	}
	// New potential stream replaces the least recently used slot.
	t.streams[victim] = stream{lastLine: line, streak: 0, lastUse: t.streamTick}
	return false
}

// ResetMemoryState clears caches, TLBs and the prefetcher table (cold
// start). Counters and the clock are preserved.
func (t *Thread) ResetMemoryState() {
	t.l1.Reset()
	t.l2.Reset()
	t.l3.Reset()
	t.dtlb.Reset()
	t.stlb.Reset()
	t.streams = [nStreams]stream{}
	for i := range t.mlp {
		t.mlp[i] = 0
	}
	for i := range t.sbuf {
		t.sbuf[i] = 0
	}
	t.storeBarrier = 0
}
