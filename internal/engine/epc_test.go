package engine_test

import (
	"testing"

	"sgxbench/internal/engine"
	"sgxbench/internal/mem"
	"sgxbench/internal/platform"
)

// TestEPCPagingGoldenEquivalence enforces the fast-path invariant on the
// demand-paging model: under every execution setting, replaying the mixed
// gather/scatter/run trace on an EPC-oversubscribed thread must produce
// bit-identical tokens and statistics — including the fault and eviction
// counters — between the per-op reference engine and the batched fast
// engine. Only the DiE setting places data in the EPC, so only it may
// fault; the others must stay paging-free even with a domain configured.
func TestEPCPagingGoldenEquivalence(t *testing.T) {
	plat := platform.XeonGold6326().Scaled(256)
	for _, s := range gatherSettings() {
		run := func(ref bool) (uint64, engine.Stats, uint64) {
			sp := mem.NewSpace(plat.Sockets)
			reg := mem.Region{Node: 0, Kind: s.kind}
			big := sp.Alloc("big", 1<<20, reg)
			small := sp.Alloc("small", 1<<12, reg)
			dom := &engine.EPCDomain{TotalPages: 64, PageInCycles: 12000, PageOutCycles: 8000}
			th := engine.NewThread(engine.Config{
				Plat: plat, Mode: s.mode, Costs: engine.DefaultSGXCosts(),
				Reference: ref, EPC: dom,
			}, 0)
			sum := traceThread(th, &big, &small)
			return sum, th.Stats(), dom.SerialCycles()
		}
		refSum, refStats, refSerial := run(true)
		fastSum, fastStats, fastSerial := run(false)
		if refSum != fastSum {
			t.Errorf("%s: token checksum ref=%d fast=%d", s.name, refSum, fastSum)
		}
		if refStats != fastStats {
			t.Errorf("%s: stats differ\nref:  %+v\nfast: %+v", s.name, refStats, fastStats)
		}
		if refSerial != fastSerial {
			t.Errorf("%s: serialized paging cycles ref=%d fast=%d", s.name, refSerial, fastSerial)
		}
		if s.kind == mem.EPC {
			if refStats.EPCFaults == 0 || refStats.EPCEvictions == 0 {
				t.Errorf("%s: oversubscribed trace did not page (faults=%d evictions=%d)",
					s.name, refStats.EPCFaults, refStats.EPCEvictions)
			}
			if refSerial == 0 {
				t.Errorf("%s: faults accumulated no serialized cycles", s.name)
			}
		} else if refStats.EPCFaults != 0 || refStats.EPCEvictions != 0 || refStats.EPCPagingCycles != 0 {
			t.Errorf("%s: non-EPC data paged: %+v", s.name, refStats)
		}
	}
}

// epcThread builds a single DiE thread over a domain with the given page
// budget and per-fault costs, plus an EPC buffer of nPages pages.
func epcThread(budget int64, nPages int) (*engine.Thread, mem.Buffer, *engine.EPCDomain) {
	plat := platform.XeonGold6326().Scaled(256)
	sp := mem.NewSpace(plat.Sockets)
	buf := sp.Alloc("epc", int64(nPages)*4096, mem.Region{Node: 0, Kind: mem.EPC})
	dom := &engine.EPCDomain{TotalPages: budget, PageInCycles: 100, PageOutCycles: 10}
	th := engine.NewThread(engine.Config{
		Plat: plat, Mode: engine.Enclave, Costs: engine.DefaultSGXCosts(), EPC: dom,
	}, 0)
	return th, buf, dom
}

// touchPage issues one 8-byte load on page p of buf.
func touchPage(th *engine.Thread, buf *mem.Buffer, p int) {
	th.Load(buf, int64(p)*4096, 8, 0)
}

// TestEPCClockReplacement pins the CLOCK (second-chance) policy's exact
// fault and eviction sequence on a 2-page budget: a re-referenced page
// survives a streaming page's eviction sweep, an un-referenced one does
// not.
func TestEPCClockReplacement(t *testing.T) {
	th, buf, dom := epcThread(2, 8)
	check := func(step string, faults, evictions uint64, resident int) {
		t.Helper()
		s := th.Stats()
		if s.EPCFaults != faults || s.EPCEvictions != evictions || th.EPCResident() != resident {
			t.Fatalf("%s: faults=%d evictions=%d resident=%d, want %d/%d/%d",
				step, s.EPCFaults, s.EPCEvictions, th.EPCResident(), faults, evictions, resident)
		}
	}
	touchPage(th, &buf, 0) // fault, fill slot 0
	touchPage(th, &buf, 1) // fault, fill slot 1
	check("fill", 2, 0, 2)
	touchPage(th, &buf, 0) // re-reference page 0: sets its CLOCK bit
	touchPage(th, &buf, 2) // fault: hand at slot 0, ref'd -> second chance; evicts page 1
	check("second chance", 3, 1, 2)
	touchPage(th, &buf, 0) // page 0 survived the sweep: no fault
	check("hot page survived", 3, 1, 2)
	touchPage(th, &buf, 1) // page 1 was evicted: faults back in, evicting page 0
	check("cold page refaulted", 4, 2, 2)
	if got := th.Stats().EPCPagingCycles; got != 4*100+2*10 {
		t.Fatalf("paging cycles = %d, want %d", got, 4*100+2*10)
	}
	if got := dom.SerialCycles(); got != 4*100+2*10 {
		t.Fatalf("serial cycles = %d, want %d", got, 4*100+2*10)
	}
	if got := dom.SerialCycles(); got != 0 {
		t.Fatalf("SerialCycles did not reset: %d", got)
	}
	if th.EPCBudgetPages() != 2 {
		t.Fatalf("budget = %d, want 2", th.EPCBudgetPages())
	}
}

// TestEPCSequentialAmortizes checks the page-granular amortization that
// makes spilled (streaming) access the graceful mode: a sequential scan
// over N pages faults exactly N times regardless of how many accesses
// land on each page.
func TestEPCSequentialAmortizes(t *testing.T) {
	th, buf, _ := epcThread(4, 16)
	th.LoadRun(&buf, 0, 8, 16*4096/8, 0)
	th.Drain()
	s := th.Stats()
	if s.EPCFaults != 16 {
		t.Fatalf("sequential scan over 16 pages faulted %d times, want 16", s.EPCFaults)
	}
	if s.EPCEvictions != 12 {
		t.Fatalf("evictions = %d, want 12 (16 pages through a 4-page budget)", s.EPCEvictions)
	}
}

// TestEPCResetMemoryState checks that a cold start drops residency: every
// page refaults after the reset.
func TestEPCResetMemoryState(t *testing.T) {
	th, buf, _ := epcThread(8, 4)
	for p := 0; p < 4; p++ {
		touchPage(th, &buf, p)
	}
	if s := th.Stats(); s.EPCFaults != 4 || th.EPCResident() != 4 {
		t.Fatalf("warmup: faults=%d resident=%d", s.EPCFaults, th.EPCResident())
	}
	th.ResetMemoryState()
	if th.EPCResident() != 0 {
		t.Fatalf("resident after reset = %d, want 0", th.EPCResident())
	}
	for p := 0; p < 4; p++ {
		touchPage(th, &buf, p)
	}
	if s := th.Stats(); s.EPCFaults != 8 {
		t.Fatalf("faults after reset = %d, want 8", s.EPCFaults)
	}
}
