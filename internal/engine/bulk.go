package engine

import "sgxbench/internal/mem"

// Bulk (batched) memory APIs. Each call charges a run of N sequential
// accesses in one engine invocation, amortizing the host-side cost of the
// simulation: range checking, buffer placement resolution, stream
// training and address translation fold into per-run and per-page strides
// instead of per-op probes. In reference mode (Config.Reference) every
// bulk call decomposes into the equivalent sequence of per-op Load/Store
// calls; by the engine's fast-path invariant the two produce bit-identical
// simulated statistics and state, which the golden tests assert.

// LoadRun charges n loads of elem bytes each at consecutive offsets
// off, off+elem, ..., off+(n-1)*elem. dep is the address dependency of
// every element (zero for statically known addresses, as in a sequential
// scan). It returns the token of the last element's value.
func (t *Thread) LoadRun(b *mem.Buffer, off, elem int64, n int, dep Tok) Tok {
	if n <= 0 {
		return dep
	}
	t.checkRange(b, off, elem*int64(n))
	if t.ref {
		// Reference decomposition: the true per-op API, one call per
		// element, exactly as the pre-batching code issued them.
		var done Tok
		for i := 0; i < n; i++ {
			done = t.Load(b, off, elem, dep)
			off += elem
		}
		return done
	}
	return t.fastLoadRun(b, off, elem, n, dep, nil)
}

// LoadRunToks is LoadRun but records each element's completion token in
// toks[:n] (used by the unroll+reorder kernels, which need per-element
// dataflow tokens for the dependent stores they group behind the loads).
func (t *Thread) LoadRunToks(b *mem.Buffer, off, elem int64, n int, dep Tok, toks []Tok) {
	if n <= 0 {
		return
	}
	t.checkRange(b, off, elem*int64(n))
	if t.ref {
		for i := 0; i < n; i++ {
			toks[i] = t.Load(b, off, elem, dep)
			off += elem
		}
		return
	}
	t.fastLoadRun(b, off, elem, n, dep, toks)
}

// clampLines range-checks a line-granular run and clamps it to lines
// that actually start inside the buffer, so an over-long nLines cannot
// simulate nonexistent lines (a per-line reference decomposition would
// panic on them). Shared by LoadLines and StoreLinesNT.
func (t *Thread) clampLines(b *mem.Buffer, off int64, nLines int) int {
	span := b.Size - off
	if span > int64(nLines)*64 {
		span = int64(nLines) * 64
	}
	t.checkRange(b, off, span)
	if maxLines := int((span + 63) / 64); nLines > maxLines {
		nLines = maxLines
	}
	return nLines
}

// LoadLines charges nLines full cache-line (64-byte vector) loads
// starting at byte offset off; the final line is clamped to the buffer
// end, mirroring LoadLine. This is the scan hot-path primitive: one call
// charges a whole block of a sequential scan.
func (t *Thread) LoadLines(b *mem.Buffer, off int64, nLines int, dep Tok) Tok {
	if nLines <= 0 {
		return dep
	}
	nLines = t.clampLines(b, off, nLines)
	if t.ref {
		var done Tok
		for i := 0; i < nLines; i++ {
			done = LoadLine(t, b, off, dep)
			off += 64
		}
		return done
	}
	return t.fastLoadRun(b, off, 64, nLines, dep, nil)
}

// fastLoadRun is the batched fast path shared by the Load* bulk APIs: one
// tight loop whose per-element state transitions are exactly those of
// loadStep, with the run-invariant work hoisted — buffer placement, the
// pacing latency, and the prefetcher stream slot, which a sequential run
// keeps extending without re-resolving. Elements that re-touch the
// previous element's line (sub-line strides: 8 loads of an 8-byte run
// share one line) coalesce into the MRU line memo's repeat path, so only
// line transitions pay a probe.
func (t *Thread) fastLoadRun(b *mem.Buffer, off, elem int64, n int, dep Tok, toks []Tok) Tok {
	addr := b.Base + uint64(off)
	step := uint64(elem)
	node := b.Reg.Node
	remote := node != t.Node
	epc := b.Reg.Kind == mem.EPC
	paced := t.pacedAdvance(epc, remote)
	paging := t.epcDom != nil && epc
	t.st.Loads += uint64(n)
	var done Tok
	var sl *stream // stream slot the run is extending (nil: re-resolve)
	for i := 0; i < n; i++ {
		if paging {
			t.epcTouch(addr >> t.pageShift)
		}
		issue := Tok(t.issueTick())
		if dep > issue {
			issue = dep
		}
		issue = t.loadGate(issue)
		line := addr >> 6
		if line == t.mruLine {
			// Same-line repeat: guaranteed L1-MRU hit, no state change.
			t.st.L1Hits++
			done = issue + Tok(t.latL1)
			if toks != nil {
				toks[i] = done
			}
			addr += step
			continue
		}
		// Stream training: within the run only this loop touches the
		// table, so the current page's slot stays valid until the run
		// crosses into the next page.
		var inStream, trained bool
		if sl != nil && sl.pageKey == (line>>t.lpShift)+1 {
			switch line - sl.lastLine {
			case 0:
				inStream, trained = sl.streak >= 2, true
			case 1:
				sl.streak++
				sl.lastLine = line
				inStream, trained = sl.streak >= 2, true
			}
		}
		if !trained {
			inStream = t.trainStream(addr)
			sl = t.streamAt(line >> t.lpShift)
		}
		// Translation (one-entry page cache; runs re-translate per page).
		var tlbLat uint64
		page := addr >> t.pageShift
		if page != t.lastPage {
			if t.dtlb.MRUHit(page) {
				t.lastPage = page
			} else {
				tlbLat = t.fastTranslate(page, b)
			}
		}
		t.mruLine = line
		// Fused hierarchy walk.
		if hit, _, _, _ := t.l1.AccessOrFillStream(line, false); hit {
			t.st.L1Hits++
			done = issue + Tok(tlbLat+t.latL1)
		} else if hit, _, _, _ := t.l2.AccessOrFillStream(line, false); hit {
			t.st.L2Hits++
			done = issue + Tok(tlbLat+t.latL2)
		} else if hit, _, dirty, ok := t.l3.AccessOrFillStream(line, false); hit {
			t.st.L3Hits++
			done = issue + Tok(tlbLat+t.latL3)
		} else {
			dl := t.dramFill(false, node, epc, remote, ok && dirty)
			t.st.DRAMAcc++
			if inStream {
				t.st.StreamFills++
				t.cycle = uint64(issue) + paced
				done = Tok(t.cycle)
			} else {
				t.st.RandomFills++
				slot := t.minSlot()
				start := maxTok(issue, Tok(t.mlp[slot]))
				done = start + Tok(tlbLat+dl)
				t.mlp[slot] = uint64(done)
			}
		}
		if toks != nil {
			toks[i] = done
		}
		addr += step
	}
	return done
}

// StoreLinesNT charges nLines sequential non-temporal full-line stores
// starting at byte offset off — write-combining streaming stores
// (movntdq): each line bypasses the cache hierarchy entirely (no
// allocation, no read-for-ownership) and drains to DRAM at stream
// bandwidth. This is how vectorized kernels materialize large results
// (compressed scan output, radix-partition flushes) without polluting
// the caches; the address is still translated, so TLB state and page
// walks are charged exactly as for cached stores, with the walk latency
// hidden behind the stream like any paced access. The final line is
// clamped to the buffer end. Returns the drain token of the last line.
//
// Model simplification (shared by both engine paths): an NT store does
// not invalidate a stale cached copy of its line, so a kernel that reads
// a region through the caches, overwrites it with StoreLinesNT and then
// re-reads it would see cache hits where hardware evicts and re-fetches.
// No kernel does this today — NT stores are used for write-once result
// streams (scan output, partition flushes) whose lines were never cached
// before the store.
func (t *Thread) StoreLinesNT(b *mem.Buffer, off int64, nLines int, addrDep, dataDep Tok) Tok {
	if nLines <= 0 {
		return dataDep
	}
	nLines = t.clampLines(b, off, nLines)
	addr := b.Base + uint64(off)
	node := b.Reg.Node
	remote := node != t.Node
	epc := b.Reg.Kind == mem.EPC
	paced := t.pacedAdvance(epc, remote)
	lineBytes := uint64(t.Plat.L1D.LineBytes)
	bNode := node
	if bNode < 0 || bNode > 1 {
		bNode = 0
	}
	paging := t.epcDom != nil && epc
	t.st.Stores += uint64(nLines)
	t.st.NTStores += uint64(nLines)
	for i := 0; i < nLines; i++ {
		// Shared by both engine paths (this loop is the reference
		// decomposition too), so the touch order is identical by
		// construction.
		if paging {
			t.epcTouch(addr >> t.pageShift)
		}
		issue := Tok(t.issueTick())
		addrKnown := maxTok(issue, addrDep)
		if uint64(addrKnown) > t.storeBarrier {
			t.storeBarrier = uint64(addrKnown)
		}
		// Translation state advances as for any store; the latency hides
		// behind the stream (the paced-access discipline).
		page := addr >> t.pageShift
		if t.ref {
			if !t.rdtlb.Access(page) {
				if !t.rstlb.Access(page) {
					t.walkPage(page, node, epc, remote)
				}
			}
		} else if page != t.lastPage {
			if t.dtlb.MRUHit(page) {
				t.lastPage = page
			} else {
				t.fastTranslate(page, b)
				// The walk's PTE/EPCM fetches touched the hierarchy, so
				// the MRU line memo can no longer vouch for its line (no
				// data access follows to re-establish it).
				t.mruLine = noPage
			}
		}
		t.st.DRAMBytes[bNode] += lineBytes
		if remote {
			t.st.UPIBytes += lineBytes
		}
		ready := maxTok(addrKnown, dataDep)
		if c := uint64(ready) + paced; c > t.cycle {
			t.cycle = c
		} else {
			t.cycle += paced
		}
		addr += 64
	}
	return Tok(t.cycle)
}

// StoreRun charges n stores of elem bytes each at consecutive offsets.
// addrDep and dataDep apply to every element (sequential result writes
// have statically known addresses, so addrDep is normally zero). It
// returns the forwarding token of the last store.
func (t *Thread) StoreRun(b *mem.Buffer, off, elem int64, n int, addrDep, dataDep Tok) Tok {
	if n <= 0 {
		return dataDep
	}
	t.checkRange(b, off, elem*int64(n))
	if t.ref {
		var done Tok
		for i := 0; i < n; i++ {
			done = t.Store(b, off, elem, addrDep, dataDep)
			off += elem
		}
		return done
	}
	addr := b.Base + uint64(off)
	step := uint64(elem)
	node := b.Reg.Node
	remote := node != t.Node
	epc := b.Reg.Kind == mem.EPC
	pacedLat := t.pacedAdvance(epc, remote)
	paging := t.epcDom != nil && epc
	t.st.Stores += uint64(n)
	var fwd Tok
	var sl *stream
	for i := 0; i < n; i++ {
		if paging {
			t.epcTouch(addr >> t.pageShift)
		}
		issue := Tok(t.issueTick())
		addrKnown := maxTok(issue, addrDep)
		if uint64(addrKnown) > t.storeBarrier {
			t.storeBarrier = uint64(addrKnown)
		}
		line := addr >> 6
		ready := maxTok(addrKnown, dataDep)
		if line == t.mruLine {
			// Same-line repeat: guaranteed L1-MRU hit; only the dirty bit
			// can change, and only for the run's first element (a repeat
			// at i > 0 follows this run's own store to the line, which
			// already dirtied it — a repeat at i == 0 may follow a load).
			if i == 0 {
				t.l1.DirtyMRU(line)
			}
			t.st.L1Hits++
			done := ready + Tok(t.latL1)
			if t.sbuf[t.sbufPos] > t.cycle {
				t.cycle = t.sbuf[t.sbufPos]
			}
			t.sbuf[t.sbufPos] = uint64(done)
			if t.sbufPos++; t.sbufPos == len(t.sbuf) {
				t.sbufPos = 0
			}
			fwd = maxTok(ready, dataDep) + 5
			addr += step
			continue
		}
		var inStream, trained bool
		if sl != nil && sl.pageKey == (line>>t.lpShift)+1 {
			switch line - sl.lastLine {
			case 0:
				inStream, trained = sl.streak >= 2, true
			case 1:
				sl.streak++
				sl.lastLine = line
				inStream, trained = sl.streak >= 2, true
			}
		}
		if !trained {
			inStream = t.trainStream(addr)
			sl = t.streamAt(line >> t.lpShift)
		}
		var tlbLat uint64
		page := addr >> t.pageShift
		if page != t.lastPage {
			if t.dtlb.MRUHit(page) {
				t.lastPage = page
			} else {
				tlbLat = t.fastTranslate(page, b)
			}
		}
		t.mruLine = line
		var done Tok
		if hit, _, _, _ := t.l1.AccessOrFillStream(line, true); hit {
			t.st.L1Hits++
			done = ready + Tok(tlbLat+t.latL1)
		} else if hit, _, _, _ := t.l2.AccessOrFillStream(line, true); hit {
			t.st.L2Hits++
			done = ready + Tok(tlbLat+t.latL2)
		} else if hit, _, dirty, ok := t.l3.AccessOrFillStream(line, true); hit {
			t.st.L3Hits++
			done = ready + Tok(tlbLat+t.latL3)
		} else {
			dl := t.dramFill(true, node, epc, remote, ok && dirty)
			t.st.DRAMAcc++
			if inStream {
				t.st.StreamFills++
				t.cycle = uint64(issue) + pacedLat
				done = maxTok(ready, Tok(t.cycle))
			} else {
				t.st.RandomFills++
				slot := t.minSlot()
				start := maxTok(ready, Tok(t.mlp[slot]))
				done = start + Tok(tlbLat+dl)
				t.mlp[slot] = uint64(done)
			}
		}
		if t.sbuf[t.sbufPos] > t.cycle {
			t.cycle = t.sbuf[t.sbufPos]
		}
		t.sbuf[t.sbufPos] = uint64(done)
		if t.sbufPos++; t.sbufPos == len(t.sbuf) {
			t.sbufPos = 0
		}
		fwd = maxTok(ready, dataDep) + 5
		addr += step
	}
	return fwd
}

// fastLoadOne is the per-op fast path of Load.
func (t *Thread) fastLoadOne(b *mem.Buffer, off int64, dep Tok) Tok {
	return t.fastLoadAt(b, b.Base+uint64(off), b.Reg.Node, b.Reg.Kind == mem.EPC, b.Reg.Node != t.Node, dep)
}

// fastLoadAt is the fused load fast path shared by Load, LoadGather,
// LoadChain and CASLoad: the issue, gating, stream-training, translation,
// hierarchy walk and completion accounting of one load in a single
// function, with the identical state transition to the reference path.
// The buffer placement (node, epc, remote) is resolved by the caller so
// batched invocations hoist it out of their loops.
func (t *Thread) fastLoadAt(b *mem.Buffer, addr uint64, node int, epc, remote bool, dep Tok) Tok {
	if t.epcDom != nil && epc {
		t.epcTouch(addr >> t.pageShift)
	}
	issue := Tok(t.issueTick())
	if dep > issue {
		issue = dep
	}
	issue = t.loadGate(issue)
	t.st.Loads++
	line := addr >> 6
	if line == t.mruLine {
		// Same-line repeat: guaranteed L1-MRU hit, no state change.
		t.st.L1Hits++
		return issue + Tok(t.latL1)
	}
	inStream := t.trainStream(addr)
	var tlbLat uint64
	page := addr >> t.pageShift
	if page != t.lastPage {
		if t.dtlb.MRUHit(page) {
			t.lastPage = page
		} else {
			tlbLat = t.fastTranslate(page, b)
		}
	}
	t.mruLine = line
	if hit, _, _, _ := t.l1.AccessOrFill(line, false); hit {
		t.st.L1Hits++
		return issue + Tok(tlbLat+t.latL1)
	}
	if hit, _, _, _ := t.l2.AccessOrFill(line, false); hit {
		t.st.L2Hits++
		return issue + Tok(tlbLat+t.latL2)
	}
	hit, _, dirty, ok := t.l3.AccessOrFill(line, false)
	if hit {
		t.st.L3Hits++
		return issue + Tok(tlbLat+t.latL3)
	}
	dl := t.dramFill(false, node, epc, remote, ok && dirty)
	t.st.DRAMAcc++
	if inStream {
		t.st.StreamFills++
		t.cycle = uint64(issue) + t.pacedAdvance(epc, remote)
		return Tok(t.cycle)
	}
	t.st.RandomFills++
	slot := t.minSlot()
	start := maxTok(issue, Tok(t.mlp[slot]))
	done := start + Tok(tlbLat+dl)
	t.mlp[slot] = uint64(done)
	return done
}

// fastStoreOne is the per-op fast path of Store.
func (t *Thread) fastStoreOne(b *mem.Buffer, off int64, addrDep, dataDep Tok) Tok {
	return t.fastStoreAt(b, b.Base+uint64(off), b.Reg.Node, b.Reg.Kind == mem.EPC, b.Reg.Node != t.Node, addrDep, dataDep)
}

// fastStoreAt is the fused store fast path shared by Store, StoreScatter,
// RMWScatter and CASLoad, the store counterpart of fastLoadAt.
func (t *Thread) fastStoreAt(b *mem.Buffer, addr uint64, node int, epc, remote bool, addrDep, dataDep Tok) Tok {
	if t.epcDom != nil && epc {
		t.epcTouch(addr >> t.pageShift)
	}
	issue := Tok(t.issueTick())
	addrKnown := maxTok(issue, addrDep)
	if uint64(addrKnown) > t.storeBarrier {
		t.storeBarrier = uint64(addrKnown)
	}
	t.st.Stores++
	ready := maxTok(addrKnown, dataDep)
	var done Tok
	line := addr >> 6
	if line == t.mruLine {
		// Same-line repeat: guaranteed L1-MRU hit; the only state change
		// is the dirty bit (the preceding access may have been a load).
		t.l1.DirtyMRU(line)
		t.st.L1Hits++
		done = ready + Tok(t.latL1)
	} else {
		inStream := t.trainStream(addr)
		var tlbLat uint64
		page := addr >> t.pageShift
		if page != t.lastPage {
			if t.dtlb.MRUHit(page) {
				t.lastPage = page
			} else {
				tlbLat = t.fastTranslate(page, b)
			}
		}
		t.mruLine = line
		if hit, _, _, _ := t.l1.AccessOrFill(line, true); hit {
			t.st.L1Hits++
			done = ready + Tok(tlbLat+t.latL1)
		} else if hit, _, _, _ := t.l2.AccessOrFill(line, true); hit {
			t.st.L2Hits++
			done = ready + Tok(tlbLat+t.latL2)
		} else if hit, _, dirty, ok := t.l3.AccessOrFill(line, true); hit {
			t.st.L3Hits++
			done = ready + Tok(tlbLat+t.latL3)
		} else {
			dl := t.dramFill(true, node, epc, remote, ok && dirty)
			t.st.DRAMAcc++
			if inStream {
				t.st.StreamFills++
				t.cycle = uint64(issue) + t.pacedAdvance(epc, remote)
				done = maxTok(ready, Tok(t.cycle))
			} else {
				t.st.RandomFills++
				slot := t.minSlot()
				start := maxTok(ready, Tok(t.mlp[slot]))
				done = start + Tok(tlbLat+dl)
				t.mlp[slot] = uint64(done)
			}
		}
	}
	if t.sbuf[t.sbufPos] > t.cycle {
		t.cycle = t.sbuf[t.sbufPos]
	}
	t.sbuf[t.sbufPos] = uint64(done)
	if t.sbufPos++; t.sbufPos == len(t.sbuf) {
		t.sbufPos = 0
	}
	return maxTok(ready, dataDep) + 5
}
