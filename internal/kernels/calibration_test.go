package kernels

import (
	"testing"

	"sgxbench/internal/engine"
	"sgxbench/internal/mem"
	"sgxbench/internal/platform"
	"sgxbench/internal/rng"
)

func newThread(mode engine.Mode, epc bool) (*engine.Thread, *mem.Space, mem.Region) {
	plat := platform.XeonGold6326().Scaled(32)
	sp := mem.NewSpace(plat.Sockets)
	kind := mem.Untrusted
	if epc {
		kind = mem.EPC
	}
	reg := mem.Region{Node: 0, Kind: kind}
	t := engine.NewThread(engine.Config{Plat: plat, Mode: mode, Costs: engine.DefaultSGXCosts(), Node: 0}, 0)
	return t, sp, reg
}

func fillTuples(b *mem.U64Buf, seed uint64) {
	r := rng.NewXorShift(seed)
	for i := range b.D {
		b.D[i] = mem.MakeTuple(r.Uint32(), uint32(i))
	}
}

// histRun measures one full histogram pass and returns cycles.
func histRun(mode engine.Mode, epc bool, n, bins int, cfg HistConfig) uint64 {
	t, sp, reg := newThread(mode, epc)
	data := sp.AllocU64("data", n, reg)
	hist := sp.AllocU32("hist", bins, reg)
	fillTuples(data, 7)
	if cfg.Spill == nil {
		cfg.Spill = sp.AllocU32("spill", 64, reg)
	}
	start := t.Cycle()
	Histogram(t, data, 0, n, hist, 0, cfg)
	t.Drain()
	return t.Cycle() - start
}

// TestCalibrationHistogramSSB checks the core finding of Section 4.2:
// the scalar histogram is ~2-3.5x slower with the SSB mitigation, and the
// unroll+reorder optimization brings it within ~35% of plain.
func TestCalibrationHistogramSSB(t *testing.T) {
	const n, bins = 1 << 18, 32
	cfgScalar := HistConfig{Shift: 0, Bits: 5, Unroll: 1}
	plain := histRun(engine.PlainCPU, false, n, bins, cfgScalar)
	mit := histRun(engine.PlainCPUM, false, n, bins, cfgScalar)
	die := histRun(engine.Enclave, true, n, bins, cfgScalar)

	rMit := float64(mit) / float64(plain)
	rDie := float64(die) / float64(plain)
	t.Logf("scalar: plain=%d mitigated=%d (%.2fx) die=%d (%.2fx)", plain, mit, rMit, die, rDie)
	if rMit < 1.8 || rMit > 4.0 {
		t.Errorf("scalar mitigation slowdown %.2fx outside [1.8, 4.0]", rMit)
	}
	if rDie < rMit*0.9 {
		t.Errorf("DiE (%.2fx) should be at least the mitigation slowdown (%.2fx)", rDie, rMit)
	}

	cfgOpt := HistConfig{Shift: 0, Bits: 5, Unroll: ScalarRegBudget}
	plainO := histRun(engine.PlainCPU, false, n, bins, cfgOpt)
	dieO := histRun(engine.Enclave, true, n, bins, cfgOpt)
	rOpt := float64(dieO) / float64(plainO)
	t.Logf("unrolled: plain=%d die=%d (%.2fx)", plainO, dieO, rOpt)
	if rOpt > 1.35 {
		t.Errorf("optimized DiE/plain %.2fx should be <= 1.35 (paper: <20%%)", rOpt)
	}
	if dieO*2 > die {
		t.Errorf("optimization should at least halve in-enclave histogram time (die=%d dieO=%d)", die, dieO)
	}
}

// TestCalibrationUnrollSweep checks the Fig 8 shape: runtime improves up
// to the register budget and degrades once spilling starts.
func TestCalibrationUnrollSweep(t *testing.T) {
	const n, bins = 1 << 17, 32
	run := func(u int) uint64 {
		return histRun(engine.Enclave, true, n, bins, HistConfig{Bits: 5, Unroll: u})
	}
	u1, u8, u9, u16 := run(1), run(8), run(ScalarRegBudget), run(16)
	t.Logf("unroll sweep: u1=%d u8=%d u9=%d u16=%d", u1, u8, u9, u16)
	if !(u9 < u1) {
		t.Errorf("unroll 9 (%d) should beat scalar (%d)", u9, u1)
	}
	if !(u9 <= u8) {
		t.Errorf("unroll 9 (%d) should be <= unroll 8 (%d)", u9, u8)
	}
	if !(u16 > u9) {
		t.Errorf("spilling at unroll 16 (%d) should be slower than 9 (%d)", u16, u9)
	}
}

// TestCalibrationRandomAccess checks the Fig 5 shape: no EPC overhead in
// cache, roughly 1.5-3.5x latency for DRAM-sized arrays.
func TestCalibrationRandomAccess(t *testing.T) {
	run := func(mode engine.Mode, epc bool, size int64) uint64 {
		th, sp, reg := newThread(mode, epc)
		buf := sp.Raw("arr", size, reg)
		// warm up
		RandomAccess(th, buf, 1<<12, false, 3)
		return RandomAccess(th, buf, 1<<15, false, 5)
	}
	small := int64(16 << 10) // fits L1/L2 at scale 32
	big := int64(8 << 20)    // 8 MiB at scale 32 ~ 256 MB full size
	rSmall := float64(run(engine.Enclave, true, small)) / float64(run(engine.PlainCPU, false, small))
	rBig := float64(run(engine.Enclave, true, big)) / float64(run(engine.PlainCPU, false, big))
	t.Logf("random read ratio: in-cache=%.2fx dram=%.2fx", rSmall, rBig)
	if rSmall > 1.15 {
		t.Errorf("in-cache random access should have no EPC overhead, got %.2fx", rSmall)
	}
	if rBig < 1.4 || rBig > 3.5 {
		t.Errorf("DRAM random access overhead %.2fx outside [1.4, 3.5]", rBig)
	}
}

// TestCalibrationStreaming checks Fig 13's core result: sequential scans
// pay only ~3% in the enclave.
func TestCalibrationStreaming(t *testing.T) {
	run := func(mode engine.Mode, epc bool) uint64 {
		th, sp, reg := newThread(mode, epc)
		buf := sp.Raw("col", 8<<20, reg)
		StreamRead(th, buf, 0, 1<<20) // warm-up pass to train nothing in particular
		return StreamRead(th, buf, 0, 8<<20)
	}
	plain := run(engine.PlainCPU, false)
	die := run(engine.Enclave, true)
	ratio := float64(die) / float64(plain)
	t.Logf("stream read: plain=%d die=%d ratio=%.3f", plain, die, ratio)
	if ratio < 1.0 || ratio > 1.10 {
		t.Errorf("streaming EPC overhead should be ~3%%, got %.1f%%", (ratio-1)*100)
	}
}
