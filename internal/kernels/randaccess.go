package kernels

import (
	"sgxbench/internal/engine"
	"sgxbench/internal/mem"
	"sgxbench/internal/rng"
)

// RandomAccess is the Section 4.1 micro-benchmark: read or write 8-byte
// integers at random positions of an array, positions produced by a
// linear congruential generator (kept in registers, so the accesses are
// address-independent of one another and overlap up to the MLP limit).
// It returns the consumed cycles.
func RandomAccess(t *engine.Thread, buf mem.Buffer, ops int, write bool, seed uint64) uint64 {
	start := t.Cycle()
	lcg := rng.NewLCG(seed)
	slots := uint64(buf.Size / 8)
	if slots == 0 {
		slots = 1
	}
	for i := 0; i < ops; i++ {
		off := int64(lcg.Uint64n(slots)) * 8
		t.Work(1) // LCG advance (mul+add, pipelined)
		if write {
			t.Store(&buf, off, 8, 0, 0)
		} else {
			t.Load(&buf, off, 8, 0)
		}
	}
	t.Drain()
	return t.Cycle() - start
}

// GatherAccess is the RandomAccess micro-benchmark restructured over the
// batched gather/scatter APIs: the same LCG offset stream, collected into
// address batches and issued through one engine invocation per batch (the
// unrolled codegen of the Fig 5 loop). Returns the consumed cycles.
func GatherAccess(t *engine.Thread, buf mem.Buffer, ops int, write bool, seed uint64) uint64 {
	const batch = 64
	start := t.Cycle()
	lcg := rng.NewLCG(seed)
	slots := uint64(buf.Size / 8)
	if slots == 0 {
		slots = 1
	}
	offs := make([]int64, batch)
	for i := 0; i < ops; i += batch {
		n := ops - i
		if n > batch {
			n = batch
		}
		for j := 0; j < n; j++ {
			offs[j] = int64(lcg.Uint64n(slots)) * 8
		}
		t.Work(uint64(n)) // LCG advances (mul+add, pipelined)
		if write {
			t.StoreScatter(&buf, 8, offs[:n], nil, nil)
		} else {
			t.LoadGather(&buf, 8, offs[:n], nil, nil)
		}
	}
	t.Drain()
	return t.Cycle() - start
}

// PointerChase models a dependent random-access chain (each address
// derived from the previous load), the worst case for MLP. Used by
// ablation benchmarks to contrast with the independent-access pattern.
func PointerChase(t *engine.Thread, buf mem.Buffer, ops int, seed uint64) uint64 {
	start := t.Cycle()
	lcg := rng.NewLCG(seed)
	slots := uint64(buf.Size / 8)
	if slots == 0 {
		slots = 1
	}
	var dep engine.Tok
	for i := 0; i < ops; i++ {
		off := int64(lcg.Uint64n(slots)) * 8
		dep = t.Load(&buf, off, 8, dep)
	}
	t.Drain()
	return t.Cycle() - start
}

// StreamRead reads n bytes sequentially (line-granular vector loads),
// the access pattern of a column scan, charged through the batched bulk
// API one 4 KiB block at a time. Returns consumed cycles.
func StreamRead(t *engine.Thread, buf mem.Buffer, off, n int64) uint64 {
	const blockBytes = 4096
	start := t.Cycle()
	for o := off; o < off+n; o += blockBytes {
		nb := off + n - o
		if nb > blockBytes {
			nb = blockBytes
		}
		t.LoadLines(&buf, o, int((nb+63)/64), 0)
	}
	t.Drain()
	return t.Cycle() - start
}
