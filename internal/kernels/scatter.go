package kernels

import (
	"sgxbench/internal/engine"
	"sgxbench/internal/mem"
)

// ScatterConfig configures a radix partition copy (the paper's "Copy"
// phases in Fig 6).
type ScatterConfig struct {
	Shift  uint
	Bits   uint
	Unroll int // 1 = scalar
}

// Scatter copies tuples data[lo:hi] to their partitions in out, advancing
// the per-partition write cursors cur[curBase+p]. Cursor values are byte
// element indexes into out. This is the copy phase of radix partitioning:
// the destination address of every store is derived from the just-loaded
// key via the cursor — a dependent load/store pattern the paper shows can
// be improved but not fully cured by unrolling (Section 4.2, Fig 6).
func Scatter(t *engine.Thread, data *mem.U64Buf, lo, hi int, out *mem.U64Buf, cur *mem.U32Buf, curBase int, cfg ScatterConfig) {
	if cfg.Unroll <= 1 {
		scatterScalar(t, data, lo, hi, out, cur, curBase, cfg)
		return
	}
	scatterUnrolled(t, data, lo, hi, out, cur, curBase, cfg)
}

func scatterScalar(t *engine.Thread, data *mem.U64Buf, lo, hi int, out *mem.U64Buf, cur *mem.U32Buf, curBase int, cfg ScatterConfig) {
	mask := uint32(1)<<cfg.Bits - 1
	for i := lo; i < hi; i++ {
		tup, tok := engine.LoadU64(t, data, i, 0)
		p := int((mem.TupleKey(tup) >> cfg.Shift) & mask)
		pTok := engine.After(tok, keyCompute)
		pos, posTok := engine.LoadU32(t, cur, curBase+p, pTok)
		// The tuple store's address comes from the cursor load.
		engine.StoreU64(t, out, int(pos), tup, posTok, tok)
		engine.StoreU32(t, cur, curBase+p, pos+1, pTok, engine.After(posTok, 1))
	}
}

// scatterUnrolled groups the key loads and cursor reads of a batch before
// dispatching the tuple stores, shortening (but, unlike the histogram,
// not eliminating) the store→load dependences: the cursor increments are
// themselves loads of to-be-stored positions.
func scatterUnrolled(t *engine.Thread, data *mem.U64Buf, lo, hi int, out *mem.U64Buf, cur *mem.U32Buf, curBase int, cfg ScatterConfig) {
	u := cfg.Unroll
	mask := uint32(1)<<cfg.Bits - 1
	tups := make([]uint64, u)
	parts := make([]int, u)
	pToks := make([]engine.Tok, u)
	tToks := make([]engine.Tok, u)

	i := lo
	for ; i+u <= hi; i += u {
		// Load group: one batched run of u consecutive tuple loads.
		t.LoadRunToks(&data.Buffer, data.Off(i), 8, u, 0, tToks)
		for j := 0; j < u; j++ {
			tup := data.D[i+j]
			tups[j] = tup
			parts[j] = int((mem.TupleKey(tup) >> cfg.Shift) & mask)
			pToks[j] = engine.After(tToks[j], keyCompute)
		}
		for j := 0; j < u; j++ {
			pos, posTok := engine.LoadU32(t, cur, curBase+parts[j], pToks[j])
			engine.StoreU64(t, out, int(pos), tups[j], posTok, tToks[j])
			engine.StoreU32(t, cur, curBase+parts[j], pos+1, pToks[j], engine.After(posTok, 1))
		}
	}
	tail := cfg
	tail.Unroll = 1
	scatterScalar(t, data, i, hi, out, cur, curBase, tail)
}

// PrefixSum turns counts hist[base:base+n] into exclusive prefix sums
// offset by start, returning the total. A linear dependent loop; cheap
// in every mode.
func PrefixSum(t *engine.Thread, hist *mem.U32Buf, base, n int, start uint32) uint32 {
	sum := start
	var dep engine.Tok
	for i := 0; i < n; i++ {
		v, tok := engine.LoadU32(t, hist, base+i, dep)
		engine.StoreU32(t, hist, base+i, sum, 0, engine.After(tok, 1))
		sum += v
		dep = engine.After(tok, 1)
	}
	return sum
}
