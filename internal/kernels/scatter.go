package kernels

import (
	"sgxbench/internal/engine"
	"sgxbench/internal/mem"
)

// ScatterConfig configures a radix partition copy (the paper's "Copy"
// phases in Fig 6).
type ScatterConfig struct {
	Shift  uint
	Bits   uint
	Unroll int // 1 = scalar
	// WC, when non-nil, enables software write-combining for the
	// unrolled variant: tuples stage into a per-partition cache-line
	// buffer (one line per partition inside this arena) and reach the
	// partition as full 64-byte stores, with the partition cursor
	// maintained at flush granularity. This is the classic radix-copy
	// optimization of the Kim/Balkesen lineage that TEEBench's RHO uses:
	// the scattered stream becomes line-granular, and the cursor
	// read-modify-write leaves the per-tuple path. The arena needs
	// 8 words (one line) per partition.
	WC *mem.U64Buf
}

// Scatter copies tuples data[lo:hi] to their partitions in out, advancing
// the per-partition write cursors cur[curBase+p]. Cursor values are byte
// element indexes into out. This is the copy phase of radix partitioning:
// the destination address of every store is derived from the just-loaded
// key via the cursor — a dependent load/store pattern the paper shows can
// be improved but not fully cured by unrolling (Section 4.2, Fig 6).
func Scatter(t *engine.Thread, data *mem.U64Buf, lo, hi int, out *mem.U64Buf, cur *mem.U32Buf, curBase int, cfg ScatterConfig) {
	if cfg.Unroll <= 1 {
		scatterScalar(t, data, lo, hi, out, cur, curBase, cfg)
		return
	}
	if cfg.WC != nil {
		scatterWC(t, data, lo, hi, out, cur, curBase, cfg)
		return
	}
	scatterUnrolled(t, data, lo, hi, out, cur, curBase, cfg)
}

func scatterScalar(t *engine.Thread, data *mem.U64Buf, lo, hi int, out *mem.U64Buf, cur *mem.U32Buf, curBase int, cfg ScatterConfig) {
	mask := uint32(1)<<cfg.Bits - 1
	for i := lo; i < hi; i++ {
		tup, tok := engine.LoadU64(t, data, i, 0)
		p := int((mem.TupleKey(tup) >> cfg.Shift) & mask)
		pTok := engine.After(tok, keyCompute)
		pos, posTok := engine.LoadU32(t, cur, curBase+p, pTok)
		// The tuple store's address comes from the cursor load.
		engine.StoreU64(t, out, int(pos), tup, posTok, tok)
		engine.StoreU32(t, cur, curBase+p, pos+1, pTok, engine.After(posTok, 1))
	}
}

// scatterUnrolled groups the key loads and cursor reads of a batch before
// dispatching the tuple stores, shortening (but, unlike the histogram,
// not eliminating) the store→load dependences: the cursor increments are
// themselves loads of to-be-stored positions. The unrolled form bumps
// each cursor right after reading it (one read-modify-write scatter, so
// the cursor line is probed once), then dispatches the tuple stores to
// the just-loaded positions as one scatter group.
func scatterUnrolled(t *engine.Thread, data *mem.U64Buf, lo, hi int, out *mem.U64Buf, cur *mem.U32Buf, curBase int, cfg ScatterConfig) {
	u := cfg.Unroll
	mask := uint32(1)<<cfg.Bits - 1
	curOffs := make([]int64, u)
	outOffs := make([]int64, u)
	pToks := make([]engine.Tok, u)
	tToks := make([]engine.Tok, u)
	posToks := make([]engine.Tok, u)

	i := lo
	for ; i+u <= hi; i += u {
		// Load group: one batched run of u consecutive tuple loads.
		t.LoadRunToks(&data.Buffer, data.Off(i), 8, u, 0, tToks)
		for j := 0; j < u; j++ {
			tup := data.D[i+j]
			p := int((mem.TupleKey(tup) >> cfg.Shift) & mask)
			pToks[j] = engine.After(tToks[j], keyCompute)
			curOffs[j] = cur.Off(curBase + p)
			pos := cur.D[curBase+p]
			cur.D[curBase+p] = pos + 1
			outOffs[j] = out.Off(int(pos))
			out.D[pos] = tup
		}
		// Cursor read + bump pairs, then the tuple stores whose addresses
		// came from the cursor loads and whose data are the loaded keys.
		t.RMWScatter(&cur.Buffer, 4, curOffs, pToks, posToks)
		t.StoreScatter(&out.Buffer, 8, outOffs, posToks, tToks)
	}
	tail := cfg
	tail.Unroll = 1
	scatterScalar(t, data, i, hi, out, cur, curBase, tail)
}

// wcLine is the tuple capacity of one write-combining buffer line.
const wcLine = 8

// scatterWC is the software write-combining copy: each tuple is staged
// into its partition's line in the WC arena (a data-dependent store, but
// onto a small L1-resident buffer), and whenever a partition's staging
// line reaches an output-line boundary it is flushed with one 64-byte
// store. The first flush of a partition is shortened so that all later
// flushes are line-aligned, as real SWWC implementations do. Cursors are
// read and written once per flush, not once per tuple. Real tuple
// movement is unchanged — values go directly to out — only the charged
// access pattern differs.
func scatterWC(t *engine.Thread, data *mem.U64Buf, lo, hi int, out *mem.U64Buf, cur *mem.U32Buf, curBase int, cfg ScatterConfig) {
	u := cfg.Unroll
	mask := uint32(1)<<cfg.Bits - 1
	nPart := 1 << cfg.Bits
	wcOffs := make([]int64, u)
	pToks := make([]engine.Tok, u)
	tToks := make([]engine.Tok, u)
	// staged[p] counts tuples in p's WC line; flushAt[p] is the fill
	// level that completes the current (possibly shortened) line.
	staged := make([]int, nPart)
	flushAt := make([]int, nPart)
	wcTok := make([]engine.Tok, nPart) // last staging store of p's line
	for p := 0; p < nPart; p++ {
		flushAt[p] = -1 // computed on first touch from the cursor phase
	}

	flushPart := func(p int) {
		// Cursor read-modify-write at flush granularity, then the full
		// line leaves with a non-temporal store (movntdq) whose address
		// derives from the cursor value — partition output streams to
		// DRAM without polluting the caches, as in real SWWC radix
		// copies.
		pos := cur.D[curBase+p]
		posTok := t.Load(&cur.Buffer, cur.Off(curBase+p), 4, 0)
		t.Store(&cur.Buffer, cur.Off(curBase+p), 4, 0, engine.After(posTok, 1))
		cur.D[curBase+p] = pos + uint32(staged[p])
		lineOff := (out.Off(int(pos)) + int64(staged[p])*8 - 1) &^ 63
		t.StoreLinesNT(&out.Buffer, lineOff, 1, posTok, wcTok[p])
		staged[p] = 0
		flushAt[p] = wcLine
	}

	lineToks := make([]engine.Tok, (u+AVXLanes-1)/AVXLanes)
	i := lo
	for ; i < hi; i += u {
		n := hi - i
		if n > u {
			n = u
		}
		// Load group — one vector (line-granular) load per 8 tuples, as
		// the AVX histogram charges its key loads — then the staging
		// stores: addresses depend on the just-computed partition, data
		// on the loaded tuples. A partition whose line fills mid-batch
		// flushes in place — the pending staging stores are dispatched
		// first so the charged order stays stage…stage, flush, stage….
		if n == u && n%AVXLanes == 0 {
			t.LoadRunToks(&data.Buffer, data.Off(i), 64, n/AVXLanes, 0, lineToks)
			for j := 0; j < n; j++ {
				tToks[j] = engine.After(lineToks[j/AVXLanes], 1) // lane extract
			}
		} else {
			t.LoadRunToks(&data.Buffer, data.Off(i), 8, n, 0, tToks[:n])
		}
		segStart := 0
		for j := 0; j < n; j++ {
			tup := data.D[i+j]
			p := int((mem.TupleKey(tup) >> cfg.Shift) & mask)
			pToks[j] = engine.After(tToks[j], keyCompute)
			if flushAt[p] < 0 {
				// First tuple for p: align the first flush to the output
				// line boundary the partition cursor sits in.
				flushAt[p] = wcLine - int(cur.D[curBase+p])%wcLine
			}
			wcOffs[j] = int64(p)*64 + int64(staged[p])*8
			wcTok[p] = tToks[j]
			pos := cur.D[curBase+p] + uint32(staged[p])
			out.D[pos] = tup
			if staged[p]++; staged[p] == flushAt[p] {
				t.StoreScatter(&cfg.WC.Buffer, 8, wcOffs[segStart:j+1], pToks[segStart:j+1], tToks[segStart:j+1])
				segStart = j + 1
				flushPart(p)
			}
		}
		if segStart < n {
			t.StoreScatter(&cfg.WC.Buffer, 8, wcOffs[segStart:n], pToks[segStart:n], tToks[segStart:n])
		}
	}
	// Drain: partially filled lines go out with one store each.
	for p := 0; p < nPart; p++ {
		if staged[p] > 0 {
			flushPart(p)
		}
	}
}

// PrefixSum turns counts hist[base:base+n] into exclusive prefix sums
// offset by start, returning the total. A linear dependent loop; cheap
// in every mode.
func PrefixSum(t *engine.Thread, hist *mem.U32Buf, base, n int, start uint32) uint32 {
	sum := start
	var dep engine.Tok
	for i := 0; i < n; i++ {
		v, tok := engine.LoadU32(t, hist, base+i, dep)
		engine.StoreU32(t, hist, base+i, sum, 0, engine.After(tok, 1))
		sum += v
		dep = engine.After(tok, 1)
	}
	return sum
}
