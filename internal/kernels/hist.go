// Package kernels implements the low-level loops whose micro-architectural
// behaviour the paper analyzes: radix histograms (Listing 1), partition
// scatter/copy, prefix sums, and the random-access micro-benchmark.
//
// Every kernel exists in the paper's two forms: the straightforward scalar
// loop, and the unroll + reorder optimization that groups address-producing
// loads ahead of data-dependent stores to defeat the SSB-mitigation
// serialization (Section 4.2). Register pressure is modeled faithfully:
// unrolling past the architectural register budget forces spills to the
// stack, which reintroduce the dependent store→load pattern and the
// performance cliff of Fig 8.
package kernels

import (
	"sgxbench/internal/engine"
	"sgxbench/internal/mem"
)

// ScalarRegBudget is the number of computed indexes that fit in scalar
// registers before the compiler must spill (Fig 8: 9 on Ice Lake).
const ScalarRegBudget = 9

// AVXRegBudget is the number of indexes that fit when computed 8-wide
// with AVX-512 (5 vector registers x 8 lanes, Fig 8).
const AVXRegBudget = 40

// AVXLanes is the number of 8-byte tuples covered by one vector load.
const AVXLanes = 8

// keyCompute is the dataflow latency (cycles) from a loaded tuple to its
// histogram index: mask + shift.
const keyCompute = 2

// HistConfig configures a histogram kernel run.
type HistConfig struct {
	// Shift and Bits select the radix digit: idx = (key >> Shift) & (2^Bits - 1).
	Shift uint
	Bits  uint
	// Unroll is the number of indexes computed before the increments are
	// issued. 1 selects the original scalar loop.
	Unroll int
	// AVX selects 8-wide vectorized index computation.
	AVX bool
	// Spill, when non-nil, is the per-thread stack area used when Unroll
	// exceeds the register budget. Required for over-unrolled configs.
	Spill *mem.U32Buf
}

func (c HistConfig) mask() uint32 { return uint32(1)<<c.Bits - 1 }

func (c HistConfig) budget() int {
	if c.AVX {
		return AVXRegBudget
	}
	return ScalarRegBudget
}

// Histogram counts the radix digits of tuples data[lo:hi] into
// hist[histBase : histBase+2^Bits]. It is the exact kernel of the paper's
// Listing 1, including the optimized variant, and returns nothing: counts
// land in hist.D and timing lands on t.
func Histogram(t *engine.Thread, data *mem.U64Buf, lo, hi int, hist *mem.U32Buf, histBase int, cfg HistConfig) {
	if cfg.Unroll <= 1 && !cfg.AVX {
		histScalar(t, data, lo, hi, hist, histBase, cfg)
		return
	}
	histUnrolled(t, data, lo, hi, hist, histBase, cfg)
}

// histScalar is the original loop:
//
//	for i := range data { hist[(data[i].key & mask) >> shift]++ }
//
// Each iteration loads the key, derives the bin address from it, and
// increments the bin — a data-dependent write immediately followed by the
// next iteration's load, the pattern the SSB mitigation serializes.
func histScalar(t *engine.Thread, data *mem.U64Buf, lo, hi int, hist *mem.U32Buf, histBase int, cfg HistConfig) {
	mask := cfg.mask()
	for i := lo; i < hi; i++ {
		tup, tok := engine.LoadU64(t, data, i, 0)
		idx := int((mem.TupleKey(tup) >> cfg.Shift) & mask)
		idxTok := engine.After(tok, keyCompute)
		cur, curTok := engine.LoadU32(t, hist, histBase+idx, idxTok)
		engine.StoreU32(t, hist, histBase+idx, cur+1, idxTok, engine.After(curTok, 1))
	}
}

// histUnrolled is the unroll + reorder optimization (Listing 1, second
// loop): a batch of indexes is computed first, then the increments are
// dispatched together, so store addresses are known by the time the next
// batch's loads issue. Indexes beyond the register budget spill to the
// stack and are reloaded before use, reproducing the Fig 8 cliff.
func histUnrolled(t *engine.Thread, data *mem.U64Buf, lo, hi int, hist *mem.U32Buf, histBase int, cfg HistConfig) {
	u := cfg.Unroll
	if u < 1 {
		u = 1
	}
	if cfg.AVX && u%AVXLanes != 0 {
		panic("kernels: AVX histogram unroll must be a multiple of 8")
	}
	budget := cfg.budget()
	if u > budget && cfg.Spill == nil {
		panic("kernels: over-unrolled histogram requires a spill buffer")
	}
	mask := cfg.mask()
	idxs := make([]int, u)
	toks := make([]engine.Tok, u)
	offs := make([]int64, u)
	var lineToks []engine.Tok
	if cfg.AVX {
		lineToks = make([]engine.Tok, u/AVXLanes)
	}
	spilled := make([]engine.Tok, u) // forwarding tokens of spilled indexes

	i := lo
	for ; i+u <= hi; i += u {
		// Load group: one batched run of consecutive loads, then compute
		// all indexes.
		if cfg.AVX {
			t.LoadRunToks(&data.Buffer, data.Off(i), 64, u/AVXLanes, 0, lineToks)
			for j := 0; j < u; j += AVXLanes {
				t.Work(1) // vector mask+shift over 8 lanes
				vTok := engine.After(lineToks[j/AVXLanes], keyCompute)
				for l := 0; l < AVXLanes; l++ {
					idxs[j+l] = int((mem.TupleKey(data.D[i+j+l]) >> cfg.Shift) & mask)
					toks[j+l] = engine.After(vTok, 1) // lane extract
				}
			}
		} else {
			t.LoadRunToks(&data.Buffer, data.Off(i), 8, u, 0, toks)
			for j := 0; j < u; j++ {
				idxs[j] = int((mem.TupleKey(data.D[i+j]) >> cfg.Shift) & mask)
				toks[j] = engine.After(toks[j], keyCompute)
			}
		}
		if u <= budget {
			// Store group without spills: the per-bin load + increment
			// pairs are one batched read-modify-write scatter (identical
			// per-element sequence to the per-op dispatch below).
			for j := 0; j < u; j++ {
				offs[j] = hist.Off(histBase + idxs[j])
				hist.D[histBase+idxs[j]]++
			}
			t.RMWScatter(&hist.Buffer, 4, offs, toks, nil)
			continue
		}
		// Registers beyond the budget spill to the stack.
		for j := budget; j < u; j++ {
			cfg.Spill.D[j-budget] = uint32(idxs[j])
			spilled[j] = engine.StoreU32(t, cfg.Spill, j-budget, uint32(idxs[j]), 0, toks[j])
		}
		// Store group: dispatch the increments back to back.
		for j := 0; j < u; j++ {
			idxTok := toks[j]
			if j >= budget {
				// Reload the spilled index; the reload is itself a load
				// that the mitigation orders behind this batch's stores.
				_, relTok := engine.LoadU32(t, cfg.Spill, j-budget, spilled[j])
				idxTok = relTok
			}
			cur, curTok := engine.LoadU32(t, hist, histBase+idxs[j], idxTok)
			engine.StoreU32(t, hist, histBase+idxs[j], cur+1, idxTok, engine.After(curTok, 1))
		}
	}
	// Tail.
	tail := cfg
	tail.Unroll = 1
	tail.AVX = false
	histScalar(t, data, i, hi, hist, histBase, tail)
}
