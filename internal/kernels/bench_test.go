package kernels

import (
	"testing"

	"sgxbench/internal/engine"
	"sgxbench/internal/mem"
	"sgxbench/internal/platform"
)

// benchThread builds a DiE-style thread (EPC data, mitigation on) on
// either engine path.
func benchThread(ref bool) (*engine.Thread, mem.Buffer) {
	plat := platform.XeonGold6326().Scaled(32)
	sp := mem.NewSpace(plat.Sockets)
	reg := mem.Region{Node: 0, Kind: mem.EPC}
	t := engine.NewThread(engine.Config{
		Plat: plat, Mode: engine.Enclave, Costs: engine.DefaultSGXCosts(), Reference: ref,
	}, 0)
	return t, sp.Raw("bench", 64<<20, reg)
}

// The sequential-scan workload: the paper's streaming access pattern,
// pure engine cost. The fast/per-op ratio here is the headline number of
// the batched fast-path engine (cmd/bench "seq.stream").
func benchStream(b *testing.B, ref bool) {
	t, buf := benchThread(ref)
	b.SetBytes(64 << 20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		StreamRead(t, buf, 0, 64<<20)
	}
}

func BenchmarkSeqScanPerOp(b *testing.B) { benchStream(b, true) }
func BenchmarkSeqScanFast(b *testing.B)  { benchStream(b, false) }

// The random-access micro-benchmark (Fig 5 pattern).
func benchRandom(b *testing.B, ref bool) {
	t, buf := benchThread(ref)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		RandomAccess(t, buf, 1<<16, false, uint64(i+1))
	}
}

func BenchmarkRandomAccessPerOp(b *testing.B) { benchRandom(b, true) }
func BenchmarkRandomAccessFast(b *testing.B)  { benchRandom(b, false) }

// The radix-histogram kernel (Listing 1, optimized form).
func benchHist(b *testing.B, ref bool) {
	plat := platform.XeonGold6326().Scaled(32)
	sp := mem.NewSpace(plat.Sockets)
	reg := mem.Region{Node: 0, Kind: mem.EPC}
	t := engine.NewThread(engine.Config{
		Plat: plat, Mode: engine.Enclave, Costs: engine.DefaultSGXCosts(), Reference: ref,
	}, 0)
	data := sp.AllocU64("data", 1<<18, reg)
	hist := sp.AllocU32("hist", 32, reg)
	fillTuples(data, 7)
	cfg := HistConfig{Bits: 5, Unroll: ScalarRegBudget, Spill: sp.AllocU32("spill", 64, reg)}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Histogram(t, data, 0, 1<<18, hist, 0, cfg)
	}
}

func BenchmarkHistogramPerOp(b *testing.B) { benchHist(b, true) }
func BenchmarkHistogramFast(b *testing.B)  { benchHist(b, false) }
