// Package btree implements the bulk-loaded B+-tree index used by the
// index nested loop join (INL, Section 4). Lookups descend a dependent
// pointer chain — each node address comes from the previous node's
// search — so probes over indexes larger than the LLC serialize on
// memory latency, the access pattern whose enclave overhead Section 4.1
// quantifies.
package btree

import (
	"sort"

	"sgxbench/internal/engine"
	"sgxbench/internal/mem"
)

// leafCap is the number of (key, value) pairs per leaf node; innerCap is
// the fan-out of inner nodes. Both give 256-byte nodes (4 cache lines).
const (
	leafCap  = 32
	innerCap = 32
	// nodeBytes is the simulated footprint of one node.
	nodeBytes = 256
)

type leaf struct {
	keys []uint32
	vals []uint32
}

type inner struct {
	keys     []uint32 // separator keys, len = len(children)-1
	children []int32  // child node ids (level below)
}

// Tree is a bulk-loaded B+-tree mapping uint32 keys to uint32 values.
// Duplicate keys are supported (stored adjacently).
type Tree struct {
	leaves []leaf
	levels [][]inner // levels[0] is just above the leaves
	height int       // number of inner levels

	leafArena  mem.Buffer
	innerArena mem.Buffer
}

// KV is one key-value pair for bulk loading.
type KV struct {
	K uint32
	V uint32
}

// BulkLoad builds a tree from pairs (sorted in place by key) with node
// storage accounted in region reg.
func BulkLoad(space *mem.Space, name string, pairs []KV, reg mem.Region) *Tree {
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].K < pairs[j].K })
	t := &Tree{}
	// Leaves.
	for lo := 0; lo < len(pairs); lo += leafCap {
		hi := lo + leafCap
		if hi > len(pairs) {
			hi = len(pairs)
		}
		lf := leaf{keys: make([]uint32, 0, hi-lo), vals: make([]uint32, 0, hi-lo)}
		for _, p := range pairs[lo:hi] {
			lf.keys = append(lf.keys, p.K)
			lf.vals = append(lf.vals, p.V)
		}
		t.leaves = append(t.leaves, lf)
	}
	if len(t.leaves) == 0 {
		t.leaves = append(t.leaves, leaf{})
	}
	// Inner levels: each groups innerCap children.
	childKeys := make([]uint32, len(t.leaves))
	for i, lf := range t.leaves {
		if len(lf.keys) > 0 {
			childKeys[i] = lf.keys[0]
		}
	}
	nChildren := len(t.leaves)
	for nChildren > 1 {
		var level []inner
		var nextKeys []uint32
		for lo := 0; lo < nChildren; lo += innerCap {
			hi := lo + innerCap
			if hi > nChildren {
				hi = nChildren
			}
			in := inner{}
			for c := lo; c < hi; c++ {
				in.children = append(in.children, int32(c))
				if c > lo {
					in.keys = append(in.keys, childKeys[c])
				}
			}
			level = append(level, in)
			nextKeys = append(nextKeys, childKeys[lo])
		}
		t.levels = append(t.levels, level)
		childKeys = nextKeys
		nChildren = len(level)
	}
	t.height = len(t.levels)
	nInner := 0
	for _, lv := range t.levels {
		nInner += len(lv)
	}
	t.leafArena = space.Alloc(name+".leaves", int64(len(t.leaves))*nodeBytes, reg)
	if nInner == 0 {
		nInner = 1
	}
	t.innerArena = space.Alloc(name+".inner", int64(nInner)*nodeBytes, reg)
	return t
}

// Height returns the number of inner levels above the leaves.
func (t *Tree) Height() int { return t.height }

// Leaves returns the number of leaf nodes.
func (t *Tree) Leaves() int { return len(t.leaves) }

// nodeOff returns the arena offset of node id at inner level lv.
func (t *Tree) innerOff(lv, id int) int64 {
	base := 0
	for l := 0; l < lv; l++ {
		base += len(t.levels[l])
	}
	return int64(base+id) * nodeBytes
}

// Lookup finds key, charging the descent to thread th. dep is the token
// the key became available at. It returns the value, whether the key was
// found, and the token of the matching leaf entry.
func (t *Tree) Lookup(th *engine.Thread, key uint32, dep engine.Tok) (uint32, bool, engine.Tok) {
	child := 0
	tok := dep
	// Descend inner levels from the root (top of t.levels) to the leaves.
	for lv := t.height - 1; lv >= 0; lv-- {
		n := &t.levels[lv][child]
		// Two dependent line loads per node: header/keys, then children.
		tok = th.Load(&t.innerArena, t.innerOff(lv, child), 64, tok)
		tok = th.Load(&t.innerArena, t.innerOff(lv, child)+128, 64, engine.After(tok, 1))
		th.Work(3) // binary search over <=31 keys
		idx := sort.Search(len(n.keys), func(i int) bool { return n.keys[i] > key })
		child = int(n.children[idx])
	}
	lf := &t.leaves[child]
	tok = th.Load(&t.leafArena, int64(child)*nodeBytes, 64, tok)
	tok = th.Load(&t.leafArena, int64(child)*nodeBytes+128, 64, engine.After(tok, 1))
	th.Work(3)
	idx := sort.Search(len(lf.keys), func(i int) bool { return lf.keys[i] >= key })
	if idx < len(lf.keys) && lf.keys[idx] == key {
		return lf.vals[idx], true, engine.After(tok, 1)
	}
	return 0, false, engine.After(tok, 1)
}

// LookupAll appends all values stored under key to out (duplicates are
// adjacent, possibly spanning several leaves).
//
// Unlike Lookup — which may land on any leaf holding the key — the
// descent here takes the leftmost viable child (lower-bound on the
// separators: a separator equal to key means the run can begin in the
// child left of it), then walks right across leaves until the run ends.
func (t *Tree) LookupAll(th *engine.Thread, key uint32, dep engine.Tok, out []uint32) ([]uint32, engine.Tok) {
	child := 0
	tok := dep
	for lv := t.height - 1; lv >= 0; lv-- {
		n := &t.levels[lv][child]
		tok = th.Load(&t.innerArena, t.innerOff(lv, child), 64, tok)
		tok = th.Load(&t.innerArena, t.innerOff(lv, child)+128, 64, engine.After(tok, 1))
		th.Work(3)
		idx := sort.Search(len(n.keys), func(i int) bool { return n.keys[i] >= key })
		child = int(n.children[idx])
	}
	// The leftmost descent can land one leaf early when key equals a
	// separator; the walk crosses leaf boundaries while the run may
	// still continue (idx ran off the leaf's end).
	for child < len(t.leaves) {
		lf := &t.leaves[child]
		tok = th.Load(&t.leafArena, int64(child)*nodeBytes, 64, tok)
		tok = th.Load(&t.leafArena, int64(child)*nodeBytes+128, 64, engine.After(tok, 1))
		th.Work(3)
		idx := sort.Search(len(lf.keys), func(i int) bool { return lf.keys[i] >= key })
		for ; idx < len(lf.keys) && lf.keys[idx] == key; idx++ {
			out = append(out, lf.vals[idx])
		}
		if idx < len(lf.keys) {
			break // ran past key: the run (if any) ended in this leaf
		}
		child++ // key may continue (or begin) in the next leaf
	}
	return out, engine.After(tok, 1)
}
