package btree_test

import (
	"testing"

	"sgxbench/internal/btree"
	"sgxbench/internal/core"
	"sgxbench/internal/engine"
	"sgxbench/internal/platform"
)

func testEnv(ref bool) *core.Env {
	return core.NewEnv(core.Options{
		Plat:      platform.XeonGold6326().Scaled(256),
		Setting:   core.SGXDiE,
		Reference: ref,
	})
}

// buildTree bulk-loads n keys 0..n-1 with value = 3*key, shuffled
// deterministically so BulkLoad's sort actually works.
func buildTree(env *core.Env, n int) *btree.Tree {
	pairs := make([]btree.KV, n)
	for i := 0; i < n; i++ {
		j := (i*2654435761 + 13) % n // deterministic shuffle of 0..n-1
		pairs[i] = btree.KV{K: uint32(j), V: uint32(3 * j)}
	}
	return btree.BulkLoad(env.Space, "idx", pairs, env.DataRegion())
}

// TestLookupCorrectness: every loaded key resolves to its value; keys
// outside the loaded range miss.
func TestLookupCorrectness(t *testing.T) {
	env := testEnv(false)
	const n = 10_000
	tr := buildTree(env, n)
	th := env.NewThread()
	for _, k := range []uint32{0, 1, 31, 32, 33, 1023, 1024, 4999, n - 1} {
		v, ok, _ := tr.Lookup(th, k, 0)
		if !ok || v != 3*k {
			t.Errorf("Lookup(%d) = %d, %v; want %d, true", k, v, ok, 3*k)
		}
	}
	if _, ok, _ := tr.Lookup(th, n, 0); ok {
		t.Errorf("Lookup(%d) found a key past the loaded range", n)
	}
	// A multi-level tree: 10k keys / 32 per leaf = 313 leaves -> 2 inner
	// levels of fan-out 32.
	if tr.Height() != 2 {
		t.Errorf("Height() = %d, want 2", tr.Height())
	}
	if want := (n + 31) / 32; tr.Leaves() != want {
		t.Errorf("Leaves() = %d, want %d", tr.Leaves(), want)
	}
}

// TestLookupAllDuplicates: duplicate keys are returned completely, even
// when one key's run spans multiple leaves.
func TestLookupAllDuplicates(t *testing.T) {
	env := testEnv(false)
	// 100 copies of key 7 (spanning >3 leaves of 32), plus neighbours.
	var pairs []btree.KV
	for i := 0; i < 100; i++ {
		pairs = append(pairs, btree.KV{K: 7, V: uint32(1000 + i)})
	}
	for i := 0; i < 500; i++ {
		k := uint32(i)
		if k == 7 {
			continue
		}
		pairs = append(pairs, btree.KV{K: k, V: k})
	}
	tr := btree.BulkLoad(env.Space, "dup", pairs, env.DataRegion())
	th := env.NewThread()
	out, _ := tr.LookupAll(th, 7, 0, nil)
	if len(out) != 100 {
		t.Fatalf("LookupAll(7) returned %d values, want 100", len(out))
	}
	seen := map[uint32]bool{}
	for _, v := range out {
		if v < 1000 || v >= 1100 || seen[v] {
			t.Fatalf("LookupAll(7) returned wrong/duplicate value %d", v)
		}
		seen[v] = true
	}
	if out, _ := tr.LookupAll(th, 600, 0, nil); len(out) != 0 {
		t.Errorf("LookupAll(600) returned %d values for an absent key", len(out))
	}
}

// TestLookupCostDecomposition pins the per-op reference decomposition of
// one descent: per level (inner levels + the leaf) the engine is charged
// exactly two dependent 64-byte line loads and 3 work cycles for the
// binary search — so a lookup costs 2*(height+1) loads and the dependent
// chain never overlaps (RandomFills == DRAM-missing loads).
func TestLookupCostDecomposition(t *testing.T) {
	env := testEnv(true) // per-op reference path
	tr := buildTree(env, 10_000)
	th := env.NewThread()
	before := th.Stats()
	_, ok, _ := tr.Lookup(th, 4999, 0)
	th.Drain()
	if !ok {
		t.Fatal("lookup missed")
	}
	d := th.Stats().Sub(before)
	levels := uint64(tr.Height() + 1)
	if want := 2 * levels; d.Loads != want {
		t.Errorf("Loads = %d, want %d (2 per level over %d levels)", d.Loads, want, levels)
	}
	if want := 3 * levels; d.WorkCycles != want {
		t.Errorf("WorkCycles = %d, want %d (3 per level)", d.WorkCycles, want)
	}
	if d.Stores != 0 {
		t.Errorf("Stores = %d, want 0 (lookups are read-only)", d.Stores)
	}
	if fills := d.StreamFills; fills != 0 {
		t.Errorf("StreamFills = %d, want 0 (descent is a dependent pointer chain)", fills)
	}
	if d.L1Hits+d.L2Hits+d.L3Hits+d.DRAMAcc != d.Loads {
		t.Errorf("hit levels don't partition the loads: %+v", d)
	}
}

// TestGoldenLookupEquivalence: a fixed lookup sequence must charge
// bit-identical stats on the fast and per-op reference engine paths
// (the package-level invariant every operator upholds).
func TestGoldenLookupEquivalence(t *testing.T) {
	run := func(ref bool) engine.Stats {
		env := testEnv(ref)
		tr := buildTree(env, 10_000)
		th := env.NewThread()
		var tok engine.Tok
		var out []uint32
		for i := 0; i < 512; i++ {
			k := uint32((i * 2654435761) % 10_000)
			_, _, tok = tr.Lookup(th, k, tok)
			out, tok = tr.LookupAll(th, k, tok, out[:0])
			if len(out) != 1 {
				t.Fatalf("LookupAll(%d) = %d values, want 1", k, len(out))
			}
		}
		th.Drain()
		return th.Stats()
	}
	refStats := run(true)
	fastStats := run(false)
	if refStats != fastStats {
		t.Errorf("fast path changed simulated stats:\nref:  %+v\nfast: %+v", refStats, fastStats)
	}
	if refStats.Cycles == 0 || refStats.Loads == 0 {
		t.Errorf("degenerate run: %+v", refStats)
	}
}

// TestBulkLoadAccounting: node storage is charged to the data region in
// whole simulated nodes.
func TestBulkLoadAccounting(t *testing.T) {
	env := testEnv(false)
	used := env.Space.Used(env.DataRegion())
	tr := buildTree(env, 10_000)
	grew := env.Space.Used(env.DataRegion()) - used
	// 313 leaves + 10 inner (level 0) + 1 root, 256 B each, page-rounded.
	minBytes := int64(tr.Leaves()) * 256
	if grew < minBytes {
		t.Errorf("arena accounting grew %d bytes, want >= %d", grew, minBytes)
	}
}
