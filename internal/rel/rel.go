// Package rel defines the tuple format and workload generators for the
// join benchmarks.
//
// Rows are 8 bytes — a 32-bit join key and a 32-bit payload — matching
// the paper's join input format (Section 4, "Join data"). Join inputs are
// foreign-key pairs: the build side R holds every key exactly once (in
// random order), the probe side S draws keys uniformly from R's domain,
// as in TEEBench's cache-exceed setting.
package rel

import (
	"fmt"

	"sgxbench/internal/mem"
	"sgxbench/internal/rng"
)

// TupleBytes is the size of one row.
const TupleBytes = 8

// Relation is a table of packed (key, payload) rows.
type Relation struct {
	Name string
	Tup  *mem.U64Buf
}

// N returns the row count.
func (r *Relation) N() int { return r.Tup.Len() }

// Bytes returns the table size in bytes.
func (r *Relation) Bytes() int64 { return int64(r.N()) * TupleBytes }

// Key returns the join key of row i.
func (r *Relation) Key(i int) uint32 { return mem.TupleKey(r.Tup.D[i]) }

// Payload returns the payload of row i.
func (r *Relation) Payload(i int) uint32 { return mem.TuplePayload(r.Tup.D[i]) }

// RowsForMB converts the paper's "X MB table" sizes to row counts.
func RowsForMB(mb int64) int { return int(mb << 20 / TupleBytes) }

// Alloc creates an uninitialized relation of n rows in region reg.
func Alloc(space *mem.Space, name string, n int, reg mem.Region) *Relation {
	if n <= 0 {
		panic(fmt.Sprintf("rel: relation %q needs at least one row, got %d", name, n))
	}
	return &Relation{Name: name, Tup: space.AllocU64(name, n, reg)}
}

// GenFK fills build (unique keys 1..n in random order) and probe (keys
// uniform over build's domain) for a foreign-key equi-join. Payloads are
// row identifiers. Deterministic in seed.
func GenFK(build, probe *Relation, seed uint64) {
	r := rng.NewXorShift(rng.Mix(seed))
	perm := make([]uint32, build.N())
	r.Permutation(perm)
	for i := range build.Tup.D {
		build.Tup.D[i] = mem.MakeTuple(perm[i]+1, uint32(i))
	}
	pr := r.Split(1)
	n := uint64(build.N())
	for i := range probe.Tup.D {
		probe.Tup.D[i] = mem.MakeTuple(uint32(pr.Uint64n(n))+1, uint32(i))
	}
}

// GenFKPair allocates and fills a build/probe pair with the given row
// counts in region reg.
func GenFKPair(space *mem.Space, nBuild, nProbe int, reg mem.Region, seed uint64) (build, probe *Relation) {
	build = Alloc(space, "R", nBuild, reg)
	probe = Alloc(space, "S", nProbe, reg)
	GenFK(build, probe, seed)
	return build, probe
}

// GenDim allocates and fills a standalone dimension relation: unique
// keys 1..n in random order, payload = row identifier. The same shape
// as GenFK's build side, for snowflake chain levels generated
// independently of a probe side. Deterministic in seed.
func GenDim(space *mem.Space, name string, n int, reg mem.Region, seed uint64) *Relation {
	d := Alloc(space, name, n, reg)
	r := rng.NewXorShift(rng.Mix(seed))
	perm := make([]uint32, n)
	r.Permutation(perm)
	for i := range d.Tup.D {
		d.Tup.D[i] = mem.MakeTuple(perm[i]+1, uint32(i))
	}
	return d
}

// GenSkewFK refills probe's keys with a self-similar (80/20) draw over
// the domain 1..dimN: 80% of the rows land in the first 20% of the key
// space, recursively at every scale — the skewed foreign keys of a real
// fact table. Payloads stay row identifiers. Deterministic in seed.
func GenSkewFK(probe *Relation, dimN int, seed uint64) {
	r := rng.NewXorShift(rng.Mix(seed))
	for i := range probe.Tup.D {
		lo, span := uint64(0), uint64(dimN)
		for span > 1 {
			head := (span + 4) / 5 // first 20% of the remaining span
			if r.Uint64n(5) != 0 { // 80% of the mass
				span = head
			} else {
				lo += head
				span -= head
			}
		}
		probe.Tup.D[i] = mem.MakeTuple(uint32(lo)+1, uint32(i))
	}
}

// Clone copies r into a new relation in region reg (used by in-place
// algorithms such as CrkJoin that must not destroy the shared inputs).
func Clone(space *mem.Space, r *Relation, name string, reg mem.Region) *Relation {
	c := Alloc(space, name, r.N(), reg)
	copy(c.Tup.D, r.Tup.D)
	return c
}

// ReferenceJoinCount computes the equi-join cardinality with a hash map,
// independent of any simulated machinery. Used as the test oracle.
func ReferenceJoinCount(build, probe *Relation) uint64 {
	m := make(map[uint32]uint32, build.N())
	for i := 0; i < build.N(); i++ {
		m[build.Key(i)]++
	}
	var total uint64
	for i := 0; i < probe.N(); i++ {
		total += uint64(m[probe.Key(i)])
	}
	return total
}

// ReferenceJoinPairs materializes the joined (probePayload, buildPayload)
// pairs with a hash map; used to validate materializing joins.
func ReferenceJoinPairs(build, probe *Relation) []uint64 {
	m := make(map[uint32][]uint32, build.N())
	for i := 0; i < build.N(); i++ {
		k := build.Key(i)
		m[k] = append(m[k], build.Payload(i))
	}
	var out []uint64
	for i := 0; i < probe.N(); i++ {
		for _, bp := range m[probe.Key(i)] {
			out = append(out, mem.MakeTuple(probe.Payload(i), bp))
		}
	}
	return out
}
