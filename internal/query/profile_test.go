package query

import (
	"bytes"
	"strings"
	"testing"

	"sgxbench/internal/core"
	"sgxbench/internal/obs"
	"sgxbench/internal/platform"
)

// profileRun executes one pipeline with an optional profiler attached,
// on the fast or reference engine path.
func profileRun(t *testing.T, p Pipeline, setting core.Setting, ref bool, prof *obs.Profiler) *Result {
	t.Helper()
	env := core.NewEnv(core.Options{
		Plat:      platform.XeonGold6326().Scaled(256),
		Setting:   setting,
		Reference: ref,
	})
	ds := GenDataset(env, testDim, testFact, 1234)
	return p.Run(env, ds, Options{Threads: pipelineThreads(p.Name), Pred: testPred, Profiler: prof})
}

// TestProfilerZeroPerturbation is the profiling half of the
// zero-perturbation invariant: attaching a cycle-attribution profiler
// must leave check values, wall cycles and aggregate statistics
// bit-identical for every pipeline under every execution setting, on
// both engine paths.
func TestProfilerZeroPerturbation(t *testing.T) {
	settings := []core.Setting{core.PlainCPU, core.PlainCPUM, core.SGXDoE, core.SGXDiE}
	for _, p := range All() {
		for _, setting := range settings {
			for _, ref := range []bool{false, true} {
				label := p.Name + "/" + setting.String()
				if ref {
					label += "/ref"
				}
				bare := profileRun(t, p, setting, ref, nil)
				prof := obs.NewProfiler("run")
				traced := profileRun(t, p, setting, ref, prof)
				if bare.Check != traced.Check {
					t.Errorf("%s: check off=%#x on=%#x", label, bare.Check, traced.Check)
				}
				if bare.WallCycles != traced.WallCycles {
					t.Errorf("%s: wall cycles off=%d on=%d", label, bare.WallCycles, traced.WallCycles)
				}
				if bare.Stats != traced.Stats {
					t.Errorf("%s: stats differ with profiler attached", label)
				}
				if prof.Root().Cycles != traced.WallCycles {
					t.Errorf("%s: profile root %d cycles, run wall %d", label, prof.Root().Cycles, traced.WallCycles)
				}
			}
		}
	}
}

// TestProfilerTreeAccountsPipeline pins the profile's shape for one
// representative hash pipeline: the pipeline scope carries the full
// wall time, its stage children partition it (plus EDMM commit leaves),
// and the folded export's self times sum back to the total.
func TestProfilerTreeAccountsPipeline(t *testing.T) {
	p, err := ByName(Q2Name)
	if err != nil {
		t.Fatal(err)
	}
	prof := obs.NewProfiler("run")
	res := profileRun(t, p, core.SGXDiE, false, prof)

	root := prof.Root()
	if len(root.Children) != 1 {
		t.Fatalf("root has %d children, want the pipeline scope", len(root.Children))
	}
	q2 := root.Children[0]
	if q2.Name != Q2Name {
		t.Fatalf("pipeline scope = %q, want %q", q2.Name, Q2Name)
	}
	if q2.Cycles != res.WallCycles {
		t.Fatalf("pipeline scope %d cycles, run wall %d", q2.Cycles, res.WallCycles)
	}
	var stageSum uint64
	stages := map[string]bool{}
	for _, c := range q2.Children {
		stages[c.Name] = true
		stageSum += c.Cycles
	}
	for _, want := range []string{"filter", "gather", "join", "agg"} {
		if !stages[want] {
			t.Errorf("profile missing stage scope %q (has %v)", want, stages)
		}
	}
	if stageSum != q2.Cycles {
		t.Errorf("stage scopes sum to %d, pipeline inclusive %d (self=%d)",
			stageSum, q2.Cycles, q2.SelfCycles())
	}
	// Leaf phases carry the engine attribution keys.
	join := childNode(t, q2, "join")
	if len(join.Children) == 0 {
		t.Fatal("join scope has no phase leaves")
	}
	var sawWork bool
	for _, leaf := range join.Children {
		for _, a := range leaf.Attrs {
			if a.Key == "work" {
				sawWork = true
			}
		}
	}
	if !sawWork {
		t.Error("no join phase leaf carries a work attribution")
	}

	// The folded export is flamegraph-shaped and conserves cycles.
	var buf bytes.Buffer
	if err := prof.WriteFolded(&buf); err != nil {
		t.Fatal(err)
	}
	var total uint64
	for _, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		i := strings.LastIndexByte(line, ' ')
		if i < 0 || !strings.HasPrefix(line, "run;"+Q2Name) {
			t.Fatalf("malformed folded line %q", line)
		}
		var v uint64
		for _, c := range line[i+1:] {
			if c < '0' || c > '9' {
				t.Fatalf("malformed self count in %q", line)
			}
			v = v*10 + uint64(c-'0')
		}
		total += v
	}
	if total != res.WallCycles {
		t.Errorf("folded self total %d, want wall %d", total, res.WallCycles)
	}
}

// childNode finds a named child or fails the test.
func childNode(t *testing.T, n *obs.Node, name string) *obs.Node {
	t.Helper()
	for _, c := range n.Children {
		if c.Name == name {
			return c
		}
	}
	t.Fatalf("node %q has no child %q", n.Name, name)
	return nil
}
