package query

import (
	"testing"

	"sgxbench/internal/core"
	"sgxbench/internal/platform"
)

// TestQ4LimitBeyondScratch is the regression test for the top-k scratch
// sizing bug: Options.Limit larger than the pre-allocated per-thread
// heap capacity (sized for DefaultLimit) used to overrun the scratch
// heaps. The plan layer now grows the top-k scratch to the requested k;
// the emitted rows must match the oracle exactly.
func TestQ4LimitBeyondScratch(t *testing.T) {
	const k = 4 * DefaultLimit
	env := core.NewEnv(core.Options{Plat: platform.XeonGold6326().Scaled(256), Setting: core.PlainCPU})
	ds := GenDataset(env, testDim, testFact, 1234)
	// ~25% of 24000 rows survive the filter: more than k, so the heap
	// genuinely evicts at the grown capacity.
	res := Q4FilterSortLimit(env, ds, Options{Threads: 2, Pred: testPred, Limit: k})
	want := oracleQ4(ds, testPred, k)
	if len(want) != k {
		t.Fatalf("oracle emitted %d rows, need > %d filtered rows for the test to bite", len(want), k)
	}
	if res.Groups != k || len(res.TopRows) != k {
		t.Fatalf("emitted %d/%d rows, want %d", res.Groups, len(res.TopRows), k)
	}
	for i, v := range want {
		if res.TopRows[i] != v {
			t.Fatalf("row %d = %#x, oracle %#x", i, res.TopRows[i], v)
		}
	}
	// The oversized run must stay deterministic across identically
	// prepared environments (the grown scratch allocates at stable
	// addresses).
	env2 := core.NewEnv(core.Options{Plat: platform.XeonGold6326().Scaled(256), Setting: core.PlainCPU})
	ds2 := GenDataset(env2, testDim, testFact, 1234)
	res2 := Q4FilterSortLimit(env2, ds2, Options{Threads: 2, Pred: testPred, Limit: k})
	if res2.Check != res.Check || res2.WallCycles != res.WallCycles {
		t.Fatalf("oversized-limit run not deterministic: check %#x/%#x wall %d/%d",
			res.Check, res2.Check, res.WallCycles, res2.WallCycles)
	}
}

// TestSuitePipelines covers the suite surface of the query API: the
// planner suite is exposed as runnable pipelines and resolvable by
// name alongside the fixed shapes.
func TestSuitePipelines(t *testing.T) {
	suite := Suite()
	if len(suite) != 20 {
		t.Fatalf("suite has %d queries, want 20", len(suite))
	}
	p, err := ByName("s09.j1.sel250.u.agg")
	if err != nil {
		t.Fatalf("suite query not resolvable: %v", err)
	}
	env := core.NewEnv(core.Options{Plat: platform.XeonGold6326().Scaled(256), Setting: core.SGXDiE})
	ds := GenDataset(env, testDim, testFact, 1234)
	res := p.Run(env, ds, Options{Threads: 2})
	if res.Pipeline != p.Name || res.Rows == 0 || res.Groups == 0 {
		t.Fatalf("suite pipeline run malformed: %+v", res)
	}
	if _, err := ByName("zz.unknown"); err == nil {
		t.Fatal("unknown pipeline name resolved")
	}
}
