package query

import (
	"sgxbench/internal/agg"
	"sgxbench/internal/core"
	"sgxbench/internal/exec"
	"sgxbench/internal/join"
	"sgxbench/internal/rel"
)

// The spill pipeline variants: q2/q3 query shapes rebuilt from the
// EPC-oversubscription-aware operators. The join is the spill-
// partitioned GRACE join and the aggregation the spill-partitioned
// group-by, both of which detect an EPC capacity limit on the Env
// (core.Options.EPCPages) and stage their partition runs in untrusted
// memory so the pipeline degrades gracefully instead of collapsing when
// the working set outgrows the enclave. Without a capacity limit they
// run fully resident, making the same pipeline its own baseline for the
// degradation gate.

// Q2SFilterJoinAggSpill is σ(fact) → gather → fact ⋈ dim (GRACE,
// materialized) → spill γ(dim attr): the q2 star query on the
// spill-partitioned operator pair.
func Q2SFilterJoinAggSpill(env *core.Env, ds *Dataset, opt Options) *Result {
	g := env.NewGroup(opt.threads(), opt.NodeOf)
	sc := opt.scratch(env, ds)
	defer profiled(g, opt, Q2SName)()
	res := &Result{Pipeline: Q2SName, Check: agg.FNVOffset64}
	n := filterGather(env, g, ds, sc, opt, res)
	probe := &rel.Relation{Name: "S'", Tup: sc.FTup.View(n)}
	closeJoin := g.Scope("join")
	jr, err := join.NewGrace().RunOn(env, g, ds.Dim, probe, join.Options{
		Optimized: true, Materialize: true, OutBufs: sc.JoinOut,
	})
	closeJoin()
	if err != nil {
		panic(err)
	}
	res.Stages = append(res.Stages, StageStats{Name: "join", WallCycles: jr.WallCycles, Rows: jr.Matches})
	res.Check = agg.Mix(res.Check, jr.Matches)
	spillAggregate(env, g, ds, sc, joinSegments(sc, jr), agg.ByPayload, res)
	return finish(g, res)
}

// Q3SJoinAggSpill is fact ⋈ dim (GRACE, materialized) → spill γ(dim
// attr): the unfiltered q3 join-aggregation on the spill-partitioned
// operator pair.
func Q3SJoinAggSpill(env *core.Env, ds *Dataset, opt Options) *Result {
	g := env.NewGroup(opt.threads(), opt.NodeOf)
	sc := opt.scratch(env, ds)
	defer profiled(g, opt, Q3SName)()
	res := &Result{Pipeline: Q3SName, Check: agg.FNVOffset64}
	closeJoin := g.Scope("join")
	jr, err := join.NewGrace().RunOn(env, g, ds.Dim, ds.Fact, join.Options{
		Optimized: true, Materialize: true, OutBufs: sc.JoinOut,
	})
	closeJoin()
	if err != nil {
		panic(err)
	}
	res.Stages = append(res.Stages, StageStats{Name: "join", WallCycles: jr.WallCycles, Rows: jr.Matches})
	res.Check = agg.Mix(res.Check, jr.Matches)
	spillAggregate(env, g, ds, sc, joinSegments(sc, jr), agg.ByPayload, res)
	return finish(g, res)
}

// spillAggregate runs the final group-by stage through the spill
// operator (the staging buffers are operator-internal; only the output
// entry array comes from the Scratch).
func spillAggregate(env *core.Env, g *exec.Group, ds *Dataset, sc *Scratch, ins []agg.Input, sel agg.Sel, res *Result) {
	rows := 0
	for _, in := range ins {
		rows += in.N
	}
	closeAgg := g.Scope("agg")
	ar := agg.SpillRunOn(env, g, ins, agg.Options{
		Sel: sel, Groups: ds.Dim.N(), Out: sc.AggOut,
	})
	closeAgg()
	res.Stages = append(res.Stages, StageStats{Name: "agg", WallCycles: ar.WallCycles, Rows: uint64(ar.Groups)})
	res.Rows = uint64(rows)
	res.Groups = ar.Groups
	res.Check = agg.Mix(res.Check, ar.Check)
}
