package query

import (
	"sgxbench/internal/agg"
	"sgxbench/internal/core"
	"sgxbench/internal/join"
	"sgxbench/internal/mem"
	"sgxbench/internal/rel"
	sortop "sgxbench/internal/sort"
)

// The sort-based query shapes. Where q1–q3 exercise the hash operators
// (whose data-dependent writes the SSB mitigation serializes inside
// enclaves, Fig 3/6), q4 and q5 put the repo's sort path under the same
// end-to-end harness: sequential run passes, streaming merges and
// cursor stores — the access regime in which the paper's sort-merge
// join loses far less to the enclave than the hash joins. cmd/bench
// turns that contrast into a hard gate: q5's simulated DiE/plain
// slowdown must stay below q2's.

// DefaultLimit is q4's ORDER BY ... LIMIT row count when Options.Limit
// is zero, and the per-thread top-k capacity NewScratch provisions.
const DefaultLimit = 1024

// limitRows resolves the effective LIMIT under the scratch capacity.
func (o Options) limitRows() int {
	if o.Limit > 0 {
		return o.Limit
	}
	return DefaultLimit
}

// Q4FilterSortLimit is σ(fact) → gather → ORDER BY key LIMIT k: the
// selective top-k query. The shared filter→gather prefix of q1/q2 feeds
// the heap-based top-k operator; the k survivors are emitted in
// ascending key order. Result.Groups reports the emitted row count and
// Result.TopRows the rows themselves (ORDER BY key, ties by tuple).
func Q4FilterSortLimit(env *core.Env, ds *Dataset, opt Options) *Result {
	g := env.NewGroup(opt.threads(), opt.NodeOf)
	sc := opt.scratch(env, ds)
	defer profiled(g, opt, Q4Name)()
	res := &Result{Pipeline: Q4Name, Check: agg.FNVOffset64}
	n := filterGather(env, g, ds, sc, opt, res)
	k := opt.limitRows()
	if k > n {
		k = n // TopKOn clamps anyway; clamp first so the scratch gate
		// below sees the effective k, not the nominal LIMIT
	}
	var topt sortop.TopKOptions
	// The scratch heap area fits DefaultLimit rows per thread; larger
	// LIMITs fall back to operator-internal allocation (correct, but
	// repetitions then see advancing simulated addresses).
	if k <= sc.topK {
		sc.ensureTopK(env, len(g.Threads))
		if len(g.Threads)*k <= sc.TopKHeap.Len() {
			topt.Heap, topt.Tmp, topt.Out = sc.TopKHeap, sc.TopKTmp, sc.TopKOut
		}
	}
	closeTopK := g.Scope("topk")
	tr := sortop.TopKOn(env, g, sc.FTup, n, k, topt)
	closeTopK()
	res.Stages = append(res.Stages, StageStats{Name: "topk", WallCycles: tr.WallCycles, Rows: uint64(tr.K)})
	res.Check = agg.Mix(res.Check, tr.Check)
	res.Rows = uint64(n)
	res.Groups = tr.K
	res.TopRows = append([]uint64(nil), tr.Out.D[:tr.K]...)
	return finish(g, res)
}

// Q5MergeJoinAgg is sort(fact), sort(dim) → merge join → γ(dim attr):
// the sort-based star query, q2/q3's contrast workload. Both inputs are
// sorted with internal/sort's run-sort + multi-way merge as explicit
// pipeline stages, merge-joined with join.MergeJoinSorted (MWAY's final
// pass) into the pre-allocated per-thread output buffers, and aggregated
// by the dimension attribute — the same γ as q2/q3, so any end-to-end
// slowdown difference is attributable to the join path's access pattern.
func Q5MergeJoinAgg(env *core.Env, ds *Dataset, opt Options) *Result {
	g := env.NewGroup(opt.threads(), opt.NodeOf)
	sc := opt.scratch(env, ds)
	defer profiled(g, opt, Q5Name)()
	res := &Result{Pipeline: Q5Name, Check: agg.FNVOffset64}
	sc.ensureSort(env, ds)
	maxKey := uint32(ds.Dim.N() + 1)
	runLen := sortop.RunLen(env)

	sortStage := func(name string, in *rel.Relation, work, tmp, out *mem.U64Buf) *mem.U64Buf {
		n := in.N()
		if work == nil || tmp == nil || out == nil || work.Len() < n || tmp.Len() < n || out.Len() < n {
			// Scratch sized below the table (a MaxRows-capped scratch
			// reused across shapes): allocate operator-internally.
			reg := env.DataRegion()
			work = env.Space.AllocU64("q5."+name+".work", n, reg)
			tmp = env.Space.AllocU64("q5."+name+".tmp", n, reg)
			out = env.Space.AllocU64("q5."+name+".sorted", n, reg)
		}
		copy(work.D[:n], in.Tup.D) // untimed setup copy; timed passes stream it
		closeSort := g.Scope("sort-" + name)
		sr := sortop.RunOn(env, g, work, n, sortop.Options{
			MaxKey: maxKey, RunLen: runLen, Tmp: tmp, Out: out,
		})
		closeSort()
		res.Stages = append(res.Stages, StageStats{Name: "sort-" + name, WallCycles: sr.WallCycles, Rows: uint64(n)})
		res.Check = agg.Mix(res.Check, sr.Check)
		return out
	}
	factSorted := sortStage("fact", ds.Fact, sc.FactSort, sc.FactTmp, sc.FactSorted)
	dimSorted := sortStage("dim", ds.Dim, sc.DimSort, sc.DimTmp, sc.DimSorted)

	closeJoin := g.Scope("join")
	jr := join.MergeJoinSorted(env, g, dimSorted, ds.Dim.N(), factSorted, ds.Fact.N(), maxKey, join.Options{
		Materialize: true, OutBufs: sc.JoinOut,
	})
	closeJoin()
	res.Stages = append(res.Stages, StageStats{Name: "join", WallCycles: jr.WallCycles, Rows: jr.Matches})
	res.Check = agg.Mix(res.Check, jr.Matches)
	aggregate(env, g, ds, sc, joinSegments(sc, jr), agg.ByPayload, res)
	return finish(g, res)
}
