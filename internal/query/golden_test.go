package query

import (
	stdsort "sort"
	"testing"

	"sgxbench/internal/agg"
	"sgxbench/internal/core"
	"sgxbench/internal/mem"
	"sgxbench/internal/platform"
	"sgxbench/internal/scan"
	sortop "sgxbench/internal/sort"
)

const (
	testDim  = 512
	testFact = 24000
)

var testPred = scan.Predicate{Lo: 32, Hi: 95} // 25% selectivity

// pipelineThreads returns the thread count a pipeline is golden-tested
// at: q3's shared-table PHT build is only deterministic single-threaded.
func pipelineThreads(name string) int {
	if name == Q3Name {
		return 1
	}
	return 2
}

func goldenRun(t *testing.T, p Pipeline, setting core.Setting, ref bool) *Result {
	t.Helper()
	env := core.NewEnv(core.Options{
		Plat:      platform.XeonGold6326().Scaled(256),
		Setting:   setting,
		Reference: ref,
	})
	ds := GenDataset(env, testDim, testFact, 1234)
	return p.Run(env, ds, Options{Threads: pipelineThreads(p.Name), Pred: testPred})
}

// TestGoldenPipelineEquivalence enforces the fast-path invariant on the
// whole pipelines: under every execution setting, the fast and reference
// engine paths must produce bit-identical check values, wall cycles and
// aggregate statistics for every shipped query shape (q1..q5).
func TestGoldenPipelineEquivalence(t *testing.T) {
	settings := []core.Setting{core.PlainCPU, core.PlainCPUM, core.SGXDoE, core.SGXDiE}
	for _, p := range All() {
		for _, setting := range settings {
			label := p.Name + "/" + setting.String()
			ref := goldenRun(t, p, setting, true)
			fast := goldenRun(t, p, setting, false)
			if ref.Check != fast.Check {
				t.Errorf("%s: check ref=%#x fast=%#x", label, ref.Check, fast.Check)
			}
			if ref.WallCycles != fast.WallCycles {
				t.Errorf("%s: wall cycles ref=%d fast=%d", label, ref.WallCycles, fast.WallCycles)
			}
			if ref.Stats != fast.Stats {
				t.Errorf("%s: stats differ\nref:  %+v\nfast: %+v", label, ref.Stats, fast.Stats)
			}
			if ref.Groups != fast.Groups || ref.Rows != fast.Rows {
				t.Errorf("%s: shape ref=(%d rows, %d groups) fast=(%d rows, %d groups)",
					label, ref.Rows, ref.Groups, fast.Rows, fast.Groups)
			}
		}
	}
}

// TestPipelineRepeatDeterminism checks the reproducibility the CI
// golden gate relies on: two identically prepared environments (as two
// fresh bench processes would build) produce pairwise bit-identical
// simulated wall cycles and checks on every repetition. Within one
// environment, repetitions allocate fresh simulated operator state at
// advancing addresses (as the joins always have), so only the check —
// not the wall time — is rep-invariant; across environments, repetition
// k is fully deterministic.
func TestPipelineRepeatDeterminism(t *testing.T) {
	for _, p := range All() {
		T := pipelineThreads(p.Name)
		prep := func() (*core.Env, *Dataset, Options) {
			env := core.NewEnv(core.Options{Plat: platform.XeonGold6326().Scaled(256), Setting: core.SGXDiE})
			ds := GenDataset(env, testDim, testFact, 1234)
			return env, ds, Options{Threads: T, Pred: testPred, Scratch: NewScratch(env, ds, T, testFact)}
		}
		envA, dsA, optA := prep()
		envB, dsB, optB := prep()
		for rep := 0; rep < 3; rep++ {
			a := p.Run(envA, dsA, optA)
			b := p.Run(envB, dsB, optB)
			if a.Check != b.Check || a.WallCycles != b.WallCycles || a.Stats != b.Stats {
				t.Errorf("%s rep %d: envA (check=%#x wall=%d) vs envB (check=%#x wall=%d)",
					p.Name, rep, a.Check, a.WallCycles, b.Check, b.WallCycles)
			}
		}
	}
}

// oracleQ1 computes q1's expected aggregates directly from the dataset.
func oracleQ1(ds *Dataset, pred scan.Predicate) map[uint32]agg.GroupAgg {
	m := make(map[uint32]agg.GroupAgg)
	addTo(m, ds, pred, func(i int) (uint32, uint32) {
		return ds.Fact.Key(i), ds.Fact.Payload(i)
	})
	return m
}

// oracleJoinAgg computes q2/q3's expected aggregates: fact rows
// (filtered for q2, all for q3) joined to the dimension on key, grouped
// by the dimension payload, aggregating the fact payload.
func oracleJoinAgg(ds *Dataset, pred scan.Predicate, filtered bool) map[uint32]agg.GroupAgg {
	dim := make(map[uint32]uint32, ds.Dim.N())
	for i := 0; i < ds.Dim.N(); i++ {
		dim[ds.Dim.Key(i)] = ds.Dim.Payload(i)
	}
	m := make(map[uint32]agg.GroupAgg)
	p := pred
	if !filtered {
		p = scan.Predicate{Lo: 0, Hi: 255}
	}
	addTo(m, ds, p, func(i int) (uint32, uint32) {
		return dim[ds.Fact.Key(i)], ds.Fact.Payload(i)
	})
	return m
}

// oracleQ4 computes q4's expected top-k rows: the filtered fact tuples
// in ascending (key, tuple) order, truncated to k.
func oracleQ4(ds *Dataset, pred scan.Predicate, k int) []uint64 {
	var rows []uint64
	for i := 0; i < ds.Fact.N(); i++ {
		if ds.Filter.D[i] >= pred.Lo && ds.Filter.D[i] <= pred.Hi {
			rows = append(rows, ds.Fact.Tup.D[i])
		}
	}
	stdsort.Slice(rows, func(i, j int) bool { return sortop.TupLess(rows[i], rows[j]) })
	if k > len(rows) {
		k = len(rows)
	}
	return rows[:k]
}

func addTo(m map[uint32]agg.GroupAgg, ds *Dataset, pred scan.Predicate, kv func(i int) (uint32, uint32)) {
	for i := 0; i < ds.Fact.N(); i++ {
		if ds.Filter.D[i] < pred.Lo || ds.Filter.D[i] > pred.Hi {
			continue
		}
		k, v := kv(i)
		a, ok := m[k]
		if !ok {
			a = agg.GroupAgg{Min: v, Max: v}
		} else {
			if v < a.Min {
				a.Min = v
			}
			if v > a.Max {
				a.Max = v
			}
		}
		a.Count++
		a.Sum += uint64(v)
		m[k] = a
	}
}

// TestPipelineCorrectness validates the pipelines' aggregates against
// pure-Go oracles computed straight from the dataset.
func TestPipelineCorrectness(t *testing.T) {
	env := core.NewEnv(core.Options{Plat: platform.XeonGold6326().Scaled(256), Setting: core.PlainCPU})
	ds := GenDataset(env, testDim, testFact, 1234)
	for _, p := range All() {
		res := p.Run(env, ds, Options{Threads: pipelineThreads(p.Name), Pred: testPred})
		var want map[uint32]agg.GroupAgg
		switch p.Name {
		case Q1Name:
			want = oracleQ1(ds, testPred)
		case Q2Name, Q2SName:
			want = oracleJoinAgg(ds, testPred, true)
		case Q3Name, Q5Name, Q3SName:
			// q5 computes the same unfiltered join-aggregation as q3,
			// through the sort-merge path instead of the hash path; q3s
			// through the spill-partitioned pair.
			want = oracleJoinAgg(ds, testPred, false)
		case Q4Name:
			wantRows := oracleQ4(ds, testPred, DefaultLimit)
			if res.Groups != len(wantRows) || len(res.TopRows) != len(wantRows) {
				t.Errorf("%s: emitted %d/%d rows, oracle %d", p.Name, res.Groups, len(res.TopRows), len(wantRows))
				continue
			}
			for i, v := range wantRows {
				if res.TopRows[i] != v {
					t.Errorf("%s: row %d = %#x, oracle %#x", p.Name, i, res.TopRows[i], v)
					break
				}
			}
			continue
		}
		if res.Groups != len(want) {
			t.Errorf("%s: groups=%d oracle=%d", p.Name, res.Groups, len(want))
		}
	}
}

// TestMaxRowsCap checks that the MaxRows knob bounds the downstream
// stage cardinality without breaking the run.
func TestMaxRowsCap(t *testing.T) {
	env := core.NewEnv(core.Options{Plat: platform.XeonGold6326().Scaled(256), Setting: core.PlainCPU})
	ds := GenDataset(env, testDim, testFact, 1234)
	res := Q1FilterAgg(env, ds, Options{Threads: 2, Pred: testPred, MaxRows: 1000})
	if res.Rows != 1000 {
		t.Fatalf("rows=%d want 1000 (capped)", res.Rows)
	}
	if res.Groups < 1 || res.Groups > testDim {
		t.Fatalf("groups=%d out of range", res.Groups)
	}
}

// TestViewAliasing pins the mem.U64Buf.View contract the pipelines rely
// on: same simulated base address, shared backing data.
func TestViewAliasing(t *testing.T) {
	env := core.NewEnv(core.Options{Plat: platform.XeonGold6326().Scaled(256), Setting: core.PlainCPU})
	b := env.Space.AllocU64("v", 100, env.DataRegion())
	v := b.View(10)
	if v.Base != b.Base || v.Size != 80 || len(v.D) != 10 {
		t.Fatalf("view: base=%d size=%d len=%d", v.Base, v.Size, len(v.D))
	}
	v.D[3] = mem.MakeTuple(9, 0)
	if b.D[3] != mem.MakeTuple(9, 0) {
		t.Fatal("view does not alias backing data")
	}
}
