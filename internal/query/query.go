// Package query composes the repo's operators — filter scans, gathers,
// joins and the partitioned group-by — into end-to-end analytical query
// pipelines, the workload class the paper's title names but its
// experiments only probe operator by operator.
//
// A pipeline runs all of its stages on ONE exec.Group: the same
// simulated threads execute scan, join and aggregation phases back to
// back, so cache, TLB and prefetcher state carry across operator
// boundaries, and every intermediate (row-id lists, filtered fact
// tuples, materialized join outputs, partition buffers) is allocated in
// the environment's data region — EPC-resident under SGX DiE, exactly
// where DuckDB-style engines hold intermediates inside an enclave.
//
// Seven query shapes ship: a star-schema aggregation at increasing
// depth, the two sort-based shapes whose sequential-stream access
// pattern is the paper's Fig 3 counterpoint to the hash operators, and
// the two spill variants that rebuild the q2/q3 stars from the
// EPC-oversubscription-aware operators:
//
//	q1.filter-agg              σ(fact) → gather fact tuples → γ(fk; payload)
//	q2.filter-join-agg         σ(fact) → gather → fact ⋈ dim (RHO) → γ(dim attr)
//	q3.join-agg                fact ⋈ dim (PHT) → γ(dim attr)
//	q4.filter-sort-limit       σ(fact) → gather → ORDER BY key LIMIT k
//	q5.mergejoin-agg           sort(fact), sort(dim) → merge ⋈ (MWAY) → γ(dim attr)
//	q2s.filter-join-agg-spill  q2 on the spill pair: GRACE ⋈ → spill γ
//	q3s.join-agg-spill         q3 on the spill pair: GRACE ⋈ → spill γ
//
// All stages run on the engine's batched APIs with per-op reference
// decompositions, so whole pipelines are bit-identical (results AND
// simulated statistics) between the fast and reference engine paths;
// with pre-allocated Scratch intermediates they are also run-to-run
// deterministic at any thread count, which is what the CI golden gate
// compares (q3's shared PHT table preclaims its insert slots in input
// order, so even the multi-threaded build repeats bit-identically).
package query

import (
	"fmt"

	"sgxbench/internal/agg"
	"sgxbench/internal/core"
	"sgxbench/internal/engine"
	"sgxbench/internal/exec"
	"sgxbench/internal/join"
	"sgxbench/internal/mem"
	"sgxbench/internal/obs"
	"sgxbench/internal/rel"
	"sgxbench/internal/scan"
)

// Dataset is the star-schema corpus the pipelines run over: a dimension
// relation (unique keys), a fact relation (foreign keys into the
// dimension, payload = row id), and a byte filter column aligned with
// the fact rows (the selectivity knob of the scan stage).
type Dataset struct {
	Dim    *rel.Relation
	Fact   *rel.Relation
	Filter *mem.U8Buf
}

// GenDataset allocates and fills a dataset in env's data region.
// Deterministic in seed.
func GenDataset(env *core.Env, nDim, nFact int, seed uint64) *Dataset {
	dim, fact := rel.GenFKPair(env.Space, nDim, nFact, env.DataRegion(), seed)
	filter := env.Space.AllocU8("q.filter", nFact, env.DataRegion())
	scan.GenColumn(filter, seed^0x9e3779b97f4a7c15)
	return &Dataset{Dim: dim, Fact: fact, Filter: filter}
}

// Options configures a pipeline run.
type Options struct {
	// Threads is the number of worker threads (default 1).
	Threads int
	// NodeOf pins thread i to a socket (nil: the env's node).
	NodeOf func(i int) int
	// Pred is the fact filter predicate (q1, q2).
	Pred scan.Predicate
	// MaxRows caps the filtered rows fed downstream (0: no cap) — the
	// benchmark knob bounding the expensive random-access stages.
	MaxRows int
	// Limit is q4's ORDER BY ... LIMIT row count (0: DefaultLimit).
	Limit int
	// Scratch provides pre-allocated intermediates; repeated runs over
	// the same Scratch see identical simulated addresses (benchmark
	// repetitions, golden gates). Nil allocates internally.
	Scratch *Scratch
	// Profiler, when set, receives the run's cycle-attribution tree:
	// one scope per pipeline stage, one leaf per exec phase with the
	// engine's cycle attribution. Purely observational — attaching a
	// profiler changes no simulated cycle or check value.
	Profiler *obs.Profiler
}

func (o Options) threads() int {
	if o.Threads < 1 {
		return 1
	}
	return o.Threads
}

// Scratch holds a pipeline's pre-allocated intermediates. The paper
// pre-allocates result memory; pipelines extend that convention to every
// inter-stage buffer so repetitions never re-fault fresh pages.
type Scratch struct {
	IDs     *mem.U64Buf   // row-id scan output
	FTup    *mem.U64Buf   // filtered fact tuples
	JoinOut []*mem.U64Buf // per-thread materialized join outputs
	AggOut  *mem.U64Buf   // group entries
	AggPart *mem.U64Buf   // group-by partition intermediate
	// Sort-shape intermediates (q4/q5), allocated lazily on first use so
	// the hash-shape pipelines' working sets — and serve.Calibrate's
	// per-class page counts, which drive the EDMM commit costs — never
	// carry sort scratch they don't touch. Once allocated they are
	// reused, so repeated runs still see identical simulated addresses.
	// The fact-side sort triple is sized like FTup (maxRows), the dim
	// side for the full dimension; the top-k triple for up to topK rows
	// per thread.
	FactSort, FactTmp, FactSorted *mem.U64Buf // q5 fact work / ping-pong / sorted
	DimSort, DimTmp, DimSorted    *mem.U64Buf // q5 dim work / ping-pong / sorted
	TopKHeap, TopKTmp             *mem.U64Buf // q4 per-thread heaps + final-sort ping-pong
	TopKOut                       *mem.U64Buf // q4 emitted LIMIT rows
	cap                           int
	topK                          int
}

// NewScratch pre-allocates intermediates for pipelines over ds with the
// given thread count; maxRows bounds the rows any stage materializes
// (use the fact row count when no MaxRows cap is applied).
func NewScratch(env *core.Env, ds *Dataset, threads, maxRows int) *Scratch {
	if threads < 1 {
		threads = 1
	}
	if maxRows < 1 {
		maxRows = 1
	}
	reg := env.DataRegion()
	topK := DefaultLimit
	if topK > maxRows {
		topK = maxRows
	}
	sc := &Scratch{
		IDs:     env.Space.AllocU64("q.ids", ds.Fact.N()+64, reg),
		FTup:    env.Space.AllocU64("q.ftup", maxRows, reg),
		JoinOut: make([]*mem.U64Buf, threads),
		AggOut:  env.Space.AllocU64("q.agg.out", agg.EntryWords*maxRows, reg),
		AggPart: env.Space.AllocU64("q.agg.parts", maxRows, reg),
		cap:     maxRows,
		topK:    topK,
	}
	for i := range sc.JoinOut {
		sc.JoinOut[i] = env.Space.AllocU64(fmt.Sprintf("q.join.out.%d", i), maxRows, reg)
	}
	return sc
}

// ensureSort allocates the q5 sort triples on first use (in the
// pipeline's setup path, before any timed phase, so addresses stay
// deterministic).
func (sc *Scratch) ensureSort(env *core.Env, ds *Dataset) {
	if sc.FactSort != nil {
		return
	}
	reg := env.DataRegion()
	sc.FactSort = env.Space.AllocU64("q.fact.work", sc.cap, reg)
	sc.FactTmp = env.Space.AllocU64("q.fact.tmp", sc.cap, reg)
	sc.FactSorted = env.Space.AllocU64("q.fact.sorted", sc.cap, reg)
	sc.DimSort = env.Space.AllocU64("q.dim.work", ds.Dim.N(), reg)
	sc.DimTmp = env.Space.AllocU64("q.dim.tmp", ds.Dim.N(), reg)
	sc.DimSorted = env.Space.AllocU64("q.dim.sorted", ds.Dim.N(), reg)
}

// ensureTopK allocates the q4 top-k triple on first use.
func (sc *Scratch) ensureTopK(env *core.Env, threads int) {
	if sc.TopKHeap != nil {
		return
	}
	reg := env.DataRegion()
	if threads < 1 {
		threads = 1
	}
	sc.TopKHeap = env.Space.AllocU64("q.topk.heap", threads*sc.topK, reg)
	sc.TopKTmp = env.Space.AllocU64("q.topk.tmp", threads*sc.topK, reg)
	sc.TopKOut = env.Space.AllocU64("q.topk.out", sc.topK, reg)
}

// StageStats reports one pipeline stage.
type StageStats struct {
	Name       string
	WallCycles uint64
	Rows       uint64 // rows the stage produced
}

// Result reports a completed pipeline.
type Result struct {
	Pipeline   string
	WallCycles uint64
	Rows       uint64 // rows flowing into the aggregation
	Groups     int
	// Check is the deterministic checksum benchmarks and golden gates
	// compare: stage cardinalities folded with the aggregate checksum.
	Check  uint64
	Stages []StageStats
	Phases []exec.PhaseStats
	Stats  engine.Stats
	// TopRows holds q4's emitted LIMIT rows in ORDER BY order (nil for
	// the aggregation-shaped pipelines).
	TopRows []uint64
}

// Pipeline is one executable query shape.
type Pipeline struct {
	Name string
	Run  func(env *core.Env, ds *Dataset, opt Options) *Result
}

// All returns the shipped pipelines in report order. The q2s/q3s shapes
// are the q2/q3 star queries rebuilt from the spill-partitioned join and
// group-by; without an EPC capacity limit on the Env they run fully
// resident, and under one they degrade gracefully (the oversubscription
// gate's spill-aware side).
func All() []Pipeline {
	return []Pipeline{
		{Name: Q1Name, Run: Q1FilterAgg},
		{Name: Q2Name, Run: Q2FilterJoinAgg},
		{Name: Q3Name, Run: Q3JoinAgg},
		{Name: Q4Name, Run: Q4FilterSortLimit},
		{Name: Q5Name, Run: Q5MergeJoinAgg},
		{Name: Q2SName, Run: Q2SFilterJoinAggSpill},
		{Name: Q3SName, Run: Q3SJoinAggSpill},
	}
}

// ByName returns the pipeline with the given name.
func ByName(name string) (Pipeline, error) {
	for _, p := range All() {
		if p.Name == name {
			return p, nil
		}
	}
	return Pipeline{}, fmt.Errorf("query: unknown pipeline %q", name)
}

// Pipeline names (the bench workload identifiers).
const (
	Q1Name  = "q1.filter-agg"
	Q2Name  = "q2.filter-join-agg"
	Q3Name  = "q3.join-agg"
	Q4Name  = "q4.filter-sort-limit"
	Q5Name  = "q5.mergejoin-agg"
	Q2SName = "q2s.filter-join-agg-spill"
	Q3SName = "q3s.join-agg-spill"
)

// scratch returns the options' Scratch, allocating one when absent.
func (o Options) scratch(env *core.Env, ds *Dataset) *Scratch {
	if o.Scratch != nil {
		return o.Scratch
	}
	maxRows := ds.Fact.N()
	if o.MaxRows > 0 && o.MaxRows < maxRows {
		maxRows = o.MaxRows
	}
	return NewScratch(env, ds, o.threads(), maxRows)
}

// profiled attaches opt.Profiler (when set) to the group and opens the
// pipeline's own scope, so stage scopes and phase leaves nest under the
// pipeline name. The returned closer pops the scope; with no profiler
// everything is a no-op:
//
//	defer profiled(g, opt, Q2Name)()
func profiled(g *exec.Group, opt Options, name string) func() {
	if opt.Profiler == nil {
		return func() {}
	}
	g.AttachProfiler(opt.Profiler)
	return g.Scope(name)
}

// capRuns truncates the per-thread id runs, in order, to at most maxN
// total rows; it returns the capped runs and their row total.
func capRuns(runs []scan.IDRun, maxN int) ([]scan.IDRun, int) {
	out := make([]scan.IDRun, 0, len(runs))
	n := 0
	for _, r := range runs {
		if r.Count > maxN-n {
			r.Count = maxN - n
		}
		out = append(out, r)
		n += r.Count
	}
	return out, n
}

// filterGather runs the shared σ(fact)→gather prefix of q1 and q2 on g:
// a row-id scan over the filter column, then the materialization of the
// qualifying fact tuples (densely packed in per-thread run order). It
// returns the filtered row count.
func filterGather(env *core.Env, g *exec.Group, ds *Dataset, sc *Scratch, opt Options, res *Result) int {
	closeFilter := g.Scope("filter")
	sr := scan.RunOn(env, g, ds.Filter, scan.Options{Pred: opt.Pred, RowIDs: true, IDs: sc.IDs})
	closeFilter()
	res.Stages = append(res.Stages, StageStats{Name: "filter", WallCycles: sr.WallCycles, Rows: sr.Matches})
	res.Check = agg.Mix(res.Check, sr.Matches)

	maxN := sc.FTup.Len()
	if opt.MaxRows > 0 && opt.MaxRows < maxN {
		maxN = opt.MaxRows
	}
	runs, n := capRuns(sr.IDRuns, maxN)
	closeGather := g.Scope("gather")
	gr := scan.GatherU64On(env, g, ds.Fact.Tup, sc.IDs, runs, sc.FTup)
	closeGather()
	res.Stages = append(res.Stages, StageStats{Name: "gather", WallCycles: gr.WallCycles, Rows: uint64(n)})
	res.Check = agg.Mix(res.Check, gr.Sum)
	return n
}

// aggregate runs the final group-by stage over the given segments.
func aggregate(env *core.Env, g *exec.Group, ds *Dataset, sc *Scratch, ins []agg.Input, sel agg.Sel, res *Result) {
	rows := 0
	for _, in := range ins {
		rows += in.N
	}
	closeAgg := g.Scope("agg")
	ar := agg.RunOn(env, g, ins, agg.Options{
		Sel: sel, Groups: ds.Dim.N(), Out: sc.AggOut, Parts: sc.AggPart,
	})
	closeAgg()
	res.Stages = append(res.Stages, StageStats{Name: "agg", WallCycles: ar.WallCycles, Rows: uint64(ar.Groups)})
	res.Rows = uint64(rows)
	res.Groups = ar.Groups
	res.Check = agg.Mix(res.Check, ar.Check)
}

// finish seals the pipeline result from the group's full run.
func finish(g *exec.Group, res *Result) *Result {
	res.Phases = g.Phases()
	res.WallCycles = g.Clock()
	res.Stats = g.TotalStats()
	return res
}

// Q1FilterAgg is σ(fact) → gather → γ(fk; SUM/COUNT/MIN/MAX payload):
// the selective aggregation query. The gather is data-dependent random
// access; the group-by keys are the fact foreign keys.
func Q1FilterAgg(env *core.Env, ds *Dataset, opt Options) *Result {
	g := env.NewGroup(opt.threads(), opt.NodeOf)
	sc := opt.scratch(env, ds)
	defer profiled(g, opt, Q1Name)()
	res := &Result{Pipeline: Q1Name, Check: agg.FNVOffset64}
	n := filterGather(env, g, ds, sc, opt, res)
	aggregate(env, g, ds, sc, []agg.Input{{Tup: sc.FTup, N: n}}, agg.ByKey, res)
	return finish(g, res)
}

// Q2FilterJoinAgg is σ(fact) → gather → fact ⋈ dim (RHO, materialized)
// → γ(dim attr): the full star query over the paper's best join. Join
// outputs land in per-thread pre-allocated buffers and feed the
// aggregation as segments.
func Q2FilterJoinAgg(env *core.Env, ds *Dataset, opt Options) *Result {
	g := env.NewGroup(opt.threads(), opt.NodeOf)
	sc := opt.scratch(env, ds)
	defer profiled(g, opt, Q2Name)()
	res := &Result{Pipeline: Q2Name, Check: agg.FNVOffset64}
	n := filterGather(env, g, ds, sc, opt, res)
	probe := &rel.Relation{Name: "S'", Tup: sc.FTup.View(n)}
	closeJoin := g.Scope("join")
	jr, err := join.NewRHO().RunOn(env, g, ds.Dim, probe, join.Options{
		Optimized: true, Materialize: true, OutBufs: sc.JoinOut,
	})
	closeJoin()
	if err != nil {
		panic(err)
	}
	res.Stages = append(res.Stages, StageStats{Name: "join", WallCycles: jr.WallCycles, Rows: jr.Matches})
	res.Check = agg.Mix(res.Check, jr.Matches)
	aggregate(env, g, ds, sc, joinSegments(sc, jr), agg.ByPayload, res)
	return finish(g, res)
}

// Q3JoinAgg is fact ⋈ dim (PHT, materialized) → γ(dim attr): the
// unfiltered join-aggregation over the no-partitioning join, whose
// shared-table build is the paper's most SSB-sensitive operator.
func Q3JoinAgg(env *core.Env, ds *Dataset, opt Options) *Result {
	g := env.NewGroup(opt.threads(), opt.NodeOf)
	sc := opt.scratch(env, ds)
	defer profiled(g, opt, Q3Name)()
	res := &Result{Pipeline: Q3Name, Check: agg.FNVOffset64}
	closeJoin := g.Scope("join")
	jr, err := join.NewPHT().RunOn(env, g, ds.Dim, ds.Fact, join.Options{
		Optimized: true, Materialize: true, OutBufs: sc.JoinOut,
	})
	closeJoin()
	if err != nil {
		panic(err)
	}
	res.Stages = append(res.Stages, StageStats{Name: "join", WallCycles: jr.WallCycles, Rows: jr.Matches})
	res.Check = agg.Mix(res.Check, jr.Matches)
	aggregate(env, g, ds, sc, joinSegments(sc, jr), agg.ByPayload, res)
	return finish(g, res)
}

// joinSegments maps a materialized join result onto the aggregation's
// input segments: one per thread, backed by the pre-allocated output
// buffer. Rows past a buffer's capacity spilled to dynamically claimed
// chunks at non-deterministic addresses; they are excluded here (size
// Scratch to the workload so this never truncates — the stage row
// counts in Result.Stages expose it when it does).
func joinSegments(sc *Scratch, jr *join.Result) []agg.Input {
	segs := make([]agg.Input, 0, len(jr.Output))
	for i, rows := range jr.Output {
		n := len(rows)
		if i < len(sc.JoinOut) {
			if c := sc.JoinOut[i].Len(); n > c {
				n = c
			}
			segs = append(segs, agg.Input{Tup: sc.JoinOut[i], N: n})
		}
	}
	return segs
}
