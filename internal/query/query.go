// Package query composes the repo's operators — filter scans, gathers,
// joins and the partitioned group-by — into end-to-end analytical query
// pipelines, the workload class the paper's title names but its
// experiments only probe operator by operator.
//
// The pipelines are built from internal/plan's composable nodes: each
// query shape is a plan tree executed over ONE exec.Group with
// pre-allocated Scratch, so cache, TLB and prefetcher state carry
// across operator boundaries and every intermediate is allocated in the
// environment's data region — EPC-resident under SGX DiE, exactly where
// DuckDB-style engines hold intermediates inside an enclave. The trees
// reproduce the original hand-wired pipelines operator call for
// operator call, so their simulated cycles, checks and statistics are
// bit-identical to the golden entries recorded before the refactor.
//
// Seven fixed query shapes ship, plus the ~20-query planner suite
// (Suite) whose join/aggregation strategies the cost-based planner in
// internal/plan picks per setting:
//
//	q1.filter-agg              σ(fact) → gather fact tuples → γ(fk; payload)
//	q2.filter-join-agg         σ(fact) → gather → fact ⋈ dim (RHO) → γ(dim attr)
//	q3.join-agg                fact ⋈ dim (PHT) → γ(dim attr)
//	q4.filter-sort-limit       σ(fact) → gather → ORDER BY key LIMIT k
//	q5.mergejoin-agg           sort(fact), sort(dim) → merge ⋈ (MWAY) → γ(dim attr)
//	q2s.filter-join-agg-spill  q2 on the spill pair: GRACE ⋈ → spill γ
//	q3s.join-agg-spill         q3 on the spill pair: GRACE ⋈ → spill γ
//
// All stages run on the engine's batched APIs with per-op reference
// decompositions, so whole pipelines are bit-identical (results AND
// simulated statistics) between the fast and reference engine paths;
// with pre-allocated Scratch intermediates they are also run-to-run
// deterministic at any thread count, which is what the CI golden gate
// compares (q3's shared PHT table preclaims its insert slots in input
// order, so even the multi-threaded build repeats bit-identically).
package query

import (
	"fmt"

	"sgxbench/internal/agg"
	"sgxbench/internal/core"
	"sgxbench/internal/plan"
)

// The execution-state types moved to internal/plan when the pipelines
// became plan trees; these aliases keep the query API (and its callers:
// serve, bench, diag, tests) stable.
type (
	// Dataset is the star-schema corpus the pipelines run over.
	Dataset = plan.Dataset
	// Options configures a pipeline run.
	Options = plan.Options
	// Scratch holds a pipeline's pre-allocated intermediates.
	Scratch = plan.Scratch
	// Result reports a completed pipeline.
	Result = plan.Result
	// StageStats reports one pipeline stage.
	StageStats = plan.StageStats
)

// DefaultLimit is q4's ORDER BY ... LIMIT row count when Options.Limit
// is zero, and the per-thread top-k capacity NewScratch provisions.
const DefaultLimit = plan.DefaultLimit

// GenDataset allocates and fills a dataset in env's data region.
// Deterministic in seed.
func GenDataset(env *core.Env, nDim, nFact int, seed uint64) *Dataset {
	return plan.GenDataset(env, nDim, nFact, seed)
}

// NewScratch pre-allocates intermediates for pipelines over ds with the
// given thread count; maxRows bounds the rows any stage materializes.
func NewScratch(env *core.Env, ds *Dataset, threads, maxRows int) *Scratch {
	return plan.NewScratch(env, ds, threads, maxRows)
}

// Pipeline is one executable query shape.
type Pipeline struct {
	Name string
	Run  func(env *core.Env, ds *Dataset, opt Options) *Result
}

// Pipeline names (the bench workload identifiers).
const (
	Q1Name  = "q1.filter-agg"
	Q2Name  = "q2.filter-join-agg"
	Q3Name  = "q3.join-agg"
	Q4Name  = "q4.filter-sort-limit"
	Q5Name  = "q5.mergejoin-agg"
	Q2SName = "q2s.filter-join-agg-spill"
	Q3SName = "q3s.join-agg-spill"
)

// Q1FilterAgg is σ(fact) → gather → γ(fk; SUM/COUNT/MIN/MAX payload):
// the selective aggregation query. The gather is data-dependent random
// access; the group-by keys are the fact foreign keys.
func Q1FilterAgg(env *core.Env, ds *Dataset, opt Options) *Result {
	return plan.Execute(env, ds, opt, Q1Name,
		plan.GroupBy{Input: plan.Gather{Input: plan.Filter{Input: plan.Scan{}}}, Sel: agg.ByKey})
}

// Q2FilterJoinAgg is σ(fact) → gather → fact ⋈ dim (RHO, materialized)
// → γ(dim attr): the full star query over the paper's best join. Join
// outputs land in per-thread pre-allocated buffers and feed the
// aggregation as segments.
func Q2FilterJoinAgg(env *core.Env, ds *Dataset, opt Options) *Result {
	return plan.Execute(env, ds, opt, Q2Name,
		plan.GroupBy{
			Input: plan.HashJoin{Input: plan.Gather{Input: plan.Filter{Input: plan.Scan{}}}},
			Sel:   agg.ByPayload,
		})
}

// Q3JoinAgg is fact ⋈ dim (PHT, materialized) → γ(dim attr): the
// unfiltered join-aggregation over the no-partitioning join, whose
// shared-table build is the paper's most SSB-sensitive operator.
func Q3JoinAgg(env *core.Env, ds *Dataset, opt Options) *Result {
	return plan.Execute(env, ds, opt, Q3Name,
		plan.GroupBy{
			Input: plan.HashJoin{Input: plan.Scan{}, Shared: true},
			Sel:   agg.ByPayload,
		})
}

// Q4FilterSortLimit is σ(fact) → gather → ORDER BY key LIMIT k: the
// selective top-k query. The shared filter→gather prefix of q1/q2 feeds
// the heap-based top-k operator; the k survivors are emitted in
// ascending key order. Result.Groups reports the emitted row count and
// Result.TopRows the rows themselves (ORDER BY key, ties by tuple).
func Q4FilterSortLimit(env *core.Env, ds *Dataset, opt Options) *Result {
	return plan.Execute(env, ds, opt, Q4Name,
		plan.TopK{Input: plan.Gather{Input: plan.Filter{Input: plan.Scan{}}}})
}

// Q5MergeJoinAgg is sort(fact), sort(dim) → merge join → γ(dim attr):
// the sort-based star query, q2/q3's contrast workload. Both inputs are
// sorted with internal/sort's run-sort + multi-way merge as explicit
// pipeline stages, merge-joined with join.MergeJoinSorted (MWAY's final
// pass) into the pre-allocated per-thread output buffers, and aggregated
// by the dimension attribute — the same γ as q2/q3, so any end-to-end
// slowdown difference is attributable to the join path's access pattern.
func Q5MergeJoinAgg(env *core.Env, ds *Dataset, opt Options) *Result {
	return plan.Execute(env, ds, opt, Q5Name,
		plan.GroupBy{Input: plan.MergeJoin{Input: plan.Scan{}}, Sel: agg.ByPayload})
}

// Q2SFilterJoinAggSpill is σ(fact) → gather → fact ⋈ dim (GRACE,
// materialized) → spill γ(dim attr): the q2 star query on the
// spill-partitioned operator pair, which detects an EPC capacity limit
// on the Env and stages partition runs in untrusted memory so the
// pipeline degrades gracefully instead of collapsing.
func Q2SFilterJoinAggSpill(env *core.Env, ds *Dataset, opt Options) *Result {
	return plan.Execute(env, ds, opt, Q2SName,
		plan.SpillGroupBy{
			Input: plan.GraceJoin{Input: plan.Gather{Input: plan.Filter{Input: plan.Scan{}}}},
			Sel:   agg.ByPayload,
		})
}

// Q3SJoinAggSpill is fact ⋈ dim (GRACE, materialized) → spill γ(dim
// attr): the unfiltered q3 join-aggregation on the spill-partitioned
// operator pair.
func Q3SJoinAggSpill(env *core.Env, ds *Dataset, opt Options) *Result {
	return plan.Execute(env, ds, opt, Q3SName,
		plan.SpillGroupBy{Input: plan.GraceJoin{Input: plan.Scan{}}, Sel: agg.ByPayload})
}

// All returns the shipped fixed pipelines in report order. The q2s/q3s
// shapes are the q2/q3 star queries rebuilt from the spill-partitioned
// join and group-by; without an EPC capacity limit on the Env they run
// fully resident, and under one they degrade gracefully (the
// oversubscription gate's spill-aware side).
func All() []Pipeline {
	return []Pipeline{
		{Name: Q1Name, Run: Q1FilterAgg},
		{Name: Q2Name, Run: Q2FilterJoinAgg},
		{Name: Q3Name, Run: Q3JoinAgg},
		{Name: Q4Name, Run: Q4FilterSortLimit},
		{Name: Q5Name, Run: Q5MergeJoinAgg},
		{Name: Q2SName, Run: Q2SFilterJoinAggSpill},
		{Name: Q3SName, Run: Q3SJoinAggSpill},
	}
}

// Suite returns the planner's ~20-query star/snowflake suite
// (internal/plan's Suite) as executable pipelines: each Run ensures the
// snowflake chain its depth needs, then lets the cost-based planner
// pick the join/aggregation strategies for the environment's setting
// and EPC regime before executing the lowered tree.
func Suite() []Pipeline {
	qs := plan.Suite()
	out := make([]Pipeline, len(qs))
	for i, q := range qs {
		q := q
		out[i] = Pipeline{Name: q.Name, Run: q.Run}
	}
	return out
}

// ByName returns the fixed pipeline or suite query with the given name.
func ByName(name string) (Pipeline, error) {
	for _, p := range All() {
		if p.Name == name {
			return p, nil
		}
	}
	for _, p := range Suite() {
		if p.Name == name {
			return p, nil
		}
	}
	return Pipeline{}, fmt.Errorf("query: unknown pipeline %q", name)
}
