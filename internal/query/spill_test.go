package query

import (
	"fmt"
	"testing"

	"sgxbench/internal/core"
	"sgxbench/internal/mem"
	"sgxbench/internal/platform"
)

// oversubscribedRun executes a spill pipeline under an EPC capacity
// limit (pages; 0 = unlimited) on either engine path.
func oversubscribedRun(t *testing.T, p Pipeline, setting core.Setting, ref bool, pages int64) *Result {
	t.Helper()
	env := core.NewEnv(core.Options{
		Plat:      platform.XeonGold6326().Scaled(256),
		Setting:   setting,
		Reference: ref,
		EPCPages:  pages,
	})
	ds := GenDataset(env, testDim, testFact, 1234)
	return p.Run(env, ds, Options{Threads: pipelineThreads(p.Name), Pred: testPred})
}

// spillPipelineEPCHalf probes the q3s working set on an unlimited
// enclave and returns half of it in pages — a 2x oversubscription for
// the golden dataset.
func spillPipelineEPCHalf(t *testing.T) int64 {
	t.Helper()
	env := core.NewEnv(core.Options{
		Plat:    platform.XeonGold6326().Scaled(256),
		Setting: core.SGXDiE,
	})
	ds := GenDataset(env, testDim, testFact, 1234)
	p, err := ByName(Q3SName)
	if err != nil {
		t.Fatal(err)
	}
	p.Run(env, ds, Options{Threads: pipelineThreads(p.Name), Pred: testPred})
	used := env.Space.Used(mem.Region{Node: env.Node, Kind: mem.EPC})
	pages := used / 4096 / 2
	if pages < 1 {
		t.Fatalf("probe found no EPC working set (used=%d bytes)", used)
	}
	return pages
}

// TestGoldenSpillPipelineOversubscribed enforces the fast-path
// invariant on the whole spill pipelines under 2x EPC oversubscription:
// check values, wall cycles and full statistics — including the fault,
// eviction and paging-cycle counters — must be bit-identical between
// the engine paths, and the paging counters must fire exactly when data
// lives in the capacity-limited EPC (SGX DiE).
func TestGoldenSpillPipelineOversubscribed(t *testing.T) {
	pages := spillPipelineEPCHalf(t)
	for _, name := range []string{Q2SName, Q3SName} {
		p, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		for _, setting := range []core.Setting{core.PlainCPU, core.SGXDiE} {
			label := fmt.Sprintf("%s/%s/epc=%d", p.Name, setting, pages)
			ref := oversubscribedRun(t, p, setting, true, pages)
			fast := oversubscribedRun(t, p, setting, false, pages)
			if ref.Check != fast.Check {
				t.Errorf("%s: check ref=%#x fast=%#x", label, ref.Check, fast.Check)
			}
			if ref.WallCycles != fast.WallCycles {
				t.Errorf("%s: wall cycles ref=%d fast=%d", label, ref.WallCycles, fast.WallCycles)
			}
			if ref.Stats != fast.Stats {
				t.Errorf("%s: stats differ\nref:  %+v\nfast: %+v", label, ref.Stats, fast.Stats)
			}
			wantFaults := setting == core.SGXDiE
			if wantFaults && ref.Stats.EPCFaults == 0 {
				t.Errorf("%s: oversubscribed pipeline did not fault", label)
			}
			if !wantFaults && ref.Stats.EPCFaults != 0 {
				t.Errorf("%s: unexpected faults %d", label, ref.Stats.EPCFaults)
			}
		}
	}
}

// TestSpillPipelineOversubscribedDeterminism repeats an oversubscribed
// multi-threaded q3s run across identically prepared environments and
// demands bit-identical checks, wall cycles and stats — the paging
// machinery may not introduce nondeterminism into whole pipelines.
func TestSpillPipelineOversubscribedDeterminism(t *testing.T) {
	pages := spillPipelineEPCHalf(t)
	p, err := ByName(Q3SName)
	if err != nil {
		t.Fatal(err)
	}
	run := func() *Result {
		return oversubscribedRun(t, p, core.SGXDiE, false, pages)
	}
	a := run()
	for rep := 1; rep < 3; rep++ {
		b := run()
		if a.Check != b.Check || a.WallCycles != b.WallCycles || a.Stats != b.Stats {
			t.Fatalf("rep %d diverged: check %#x vs %#x, wall %d vs %d",
				rep, a.Check, b.Check, a.WallCycles, b.WallCycles)
		}
	}
}
