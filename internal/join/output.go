package join

import (
	"sgxbench/internal/core"
	"sgxbench/internal/engine"
	"sgxbench/internal/mem"
)

// outChunkRows is the number of rows per materialization chunk. Output
// memory is claimed chunk-wise during the join, which is exactly the
// allocation pattern whose cost Fig 12 studies: with a pre-allocated /
// statically sized enclave the claims are free, with dynamic allocation
// each chunk faults its pages in, and with EDMM each page commit runs the
// expensive enclave resize protocol.
const outChunkRows = 1 << 16

// outWriter materializes join output tuples for one worker thread.
type outWriter struct {
	env    *core.Env
	id     int
	chunks []*mem.U64Buf
	cur    *mem.U64Buf
	pos    int
	rows   []uint64
}

func newOutWriter(env *core.Env, id int) *outWriter {
	return &outWriter{env: env, id: id}
}

// append writes one output row; dep is the token the row's fields were
// loaded at (the store's data dependency — the address is a sequential
// cursor and thus statically known).
func (w *outWriter) append(t *engine.Thread, row uint64, dep engine.Tok) {
	if w.cur == nil || w.pos == w.cur.Len() {
		w.cur = w.env.Alloc.AllocU64(t, "out", outChunkRows)
		w.chunks = append(w.chunks, w.cur)
		w.pos = 0
	}
	engine.StoreU64(t, w.cur, w.pos, row, 0, dep)
	w.rows = append(w.rows, row)
	w.pos++
}

// result returns all rows written by this worker.
func (w *outWriter) result() []uint64 { return w.rows }
