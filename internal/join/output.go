package join

import (
	"sgxbench/internal/core"
	"sgxbench/internal/engine"
	"sgxbench/internal/mem"
)

// outChunkRows is the number of rows per materialization chunk. Output
// memory is claimed chunk-wise during the join, which is exactly the
// allocation pattern whose cost Fig 12 studies: with a pre-allocated /
// statically sized enclave the claims are free, with dynamic allocation
// each chunk faults its pages in, and with EDMM each page commit runs the
// expensive enclave resize protocol.
const outChunkRows = 1 << 16

// outWriter materializes join output tuples for one worker thread.
//
// Two backing modes: by default output memory is claimed chunk-wise from
// the shared allocator during the join (the Fig 12 allocation-cost
// pattern); with a pre-allocated fixed buffer (Options.OutBufs) every
// store lands at a deterministic simulated address, which is what makes
// multi-threaded materializing pipelines reproducible enough for exact
// golden-stats gating. A fixed buffer that fills up falls back to chunk
// claims (correct, but no longer address-deterministic).
type outWriter struct {
	env    *core.Env
	id     int
	fixed  *mem.U64Buf // pre-allocated rows (nil: chunk mode only)
	fpos   int
	chunks []*mem.U64Buf
	cur    *mem.U64Buf
	pos    int
	rows   []uint64
}

func newOutWriter(env *core.Env, id int, fixed *mem.U64Buf) *outWriter {
	return &outWriter{env: env, id: id, fixed: fixed}
}

// append writes one output row; dep is the token the row's fields were
// loaded at (the store's data dependency — the address is a sequential
// cursor and thus statically known). In fixed mode the pre-allocated
// buffer's backing data IS the materialized output — no host-side copy
// is kept; rows only collects chunk-mode (overflow) output.
func (w *outWriter) append(t *engine.Thread, row uint64, dep engine.Tok) {
	if w.fixed != nil && w.fpos < w.fixed.Len() {
		engine.StoreU64(t, w.fixed, w.fpos, row, 0, dep)
		w.fpos++
		return
	}
	if w.cur == nil || w.pos == w.cur.Len() {
		w.cur = w.env.Alloc.AllocU64(t, "out", outChunkRows)
		w.chunks = append(w.chunks, w.cur)
		w.pos = 0
	}
	engine.StoreU64(t, w.cur, w.pos, row, 0, dep)
	w.rows = append(w.rows, row)
	w.pos++
}

// result returns all rows written by this worker, in append order. In
// fixed mode without overflow this aliases the pre-allocated buffer's
// backing data (callers treat it as read-only).
func (w *outWriter) result() []uint64 {
	if w.fixed == nil {
		return w.rows
	}
	if len(w.rows) == 0 {
		return w.fixed.D[:w.fpos]
	}
	return append(append(make([]uint64, 0, w.fpos+len(w.rows)), w.fixed.D[:w.fpos]...), w.rows...)
}
