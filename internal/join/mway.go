package join

import (
	"sgxbench/internal/core"
	"sgxbench/internal/exec"
	"sgxbench/internal/mem"
	"sgxbench/internal/rel"
	sortop "sgxbench/internal/sort"
)

// MWAY is the Multi-Way Sort Merge join (Kim et al. [21], TEEBench's
// m-way): both inputs are sorted — per-thread cache-sized runs merged by
// a multi-way loser tree — and then merge-joined in one linear pass.
// Its memory behaviour is dominated by sequential streams plus compare
// work, so the SSB mitigation barely affects it: stores go to cursor
// positions known ahead of time. This is why MWAY shows a much smaller
// enclave slowdown than the hash joins in Fig 3.
//
// The implementation composes the operator layers directly: each input
// is sorted with internal/sort's parallel run-sort + multi-way merge
// (the m-way charging model lives there), and the sorted tables are
// joined with MergeJoinSorted — exactly the stages the q5 pipeline runs,
// so the standalone join and the pipeline share one timing model.
type MWAY struct{}

// NewMWAY returns the MWAY algorithm.
func NewMWAY() *MWAY { return &MWAY{} }

// Name returns the paper's name for the algorithm.
func (*MWAY) Name() string { return "MWAY" }

// Run executes the join.
func (m *MWAY) Run(env *core.Env, build, probe *rel.Relation, opt Options) (*Result, error) {
	return m.RunOn(env, env.NewGroup(opt.threads(), opt.NodeOf), build, probe, opt)
}

// RunOn executes the join on an existing thread group (pipeline stage
// composition; see RHO.RunOn). Options.Threads and NodeOf are ignored;
// Result timing and stats cover only this join's phases.
func (m *MWAY) RunOn(env *core.Env, g *exec.Group, build, probe *rel.Relation, opt Options) (*Result, error) {
	mark := g.Mark()
	res := &Result{Algorithm: m.Name()}
	reg := env.DataRegion()
	runLen := sortop.RunLen(env)
	// Key space is [1, nBuild+1) (unique build keys), so arithmetic
	// splitters keep the merge and join ranges balanced; correctness
	// holds for any distribution.
	maxKey := uint32(build.N() + 1)

	type table struct {
		work *mem.U64Buf // per-thread chunk work area (sorted in place)
		tmp  *mem.U64Buf // ping-pong buffer
		out  *mem.U64Buf // globally sorted result
		n    int
	}
	mk := func(r *rel.Relation, name string) *table {
		tb := &table{
			work: env.Space.AllocU64(name+".work", r.N(), reg),
			tmp:  env.Space.AllocU64(name+".tmp", r.N(), reg),
			out:  env.Space.AllocU64(name+".sorted", r.N(), reg),
			n:    r.N(),
		}
		copy(tb.work.D, r.Tup.D) // untimed setup copy; timed passes stream it below
		return tb
	}
	R, S := mk(build, "R"), mk(probe, "S")

	// --- Sort both tables (chunk sort + multi-way merge each) ---
	for _, tb := range []*table{R, S} {
		sortop.RunOn(env, g, tb.work, tb.n, sortop.Options{
			MaxKey: maxKey, RunLen: runLen, Tmp: tb.tmp, Out: tb.out,
			SkipCheck: true, // the join result carries its own checks
		})
	}

	// --- Merge join over the sorted tables ---
	// (MergeJoinSorted folds any serialized allocation cycles into the
	// group clock itself; nothing allocates after it.)
	jr := MergeJoinSorted(env, g, R.out, R.n, S.out, S.n, maxKey, opt)
	res.Matches = jr.Matches
	res.Output = jr.Output

	res.Phases, res.Stats, res.WallCycles = g.Since(mark)
	return res, nil
}
