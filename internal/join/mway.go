package join

import (
	"sort"

	"sgxbench/internal/core"
	"sgxbench/internal/engine"
	"sgxbench/internal/mem"
	"sgxbench/internal/rel"
)

// MWAY is the Multi-Way Sort Merge join (Kim et al. [21], TEEBench's
// m-way): both inputs are sorted — per-thread cache-sized runs merged by
// a multi-way loser tree — and then merge-joined in one linear pass.
// Its memory behaviour is dominated by sequential streams plus compare
// work, so the SSB mitigation barely affects it: stores go to cursor
// positions known ahead of time. This is why MWAY shows a much smaller
// enclave slowdown than the hash joins in Fig 3.
//
// Simulation note (documented in DESIGN.md): sorting is performed for
// real with the standard library, while the engine charges the access
// pattern of the vectorized merge passes at cache-line granularity —
// log2(run) in-cache passes per run plus the multi-way merge pass. This
// preserves the operator's bandwidth/compute profile without simulating
// every comparison individually.
type MWAY struct{}

// NewMWAY returns the MWAY algorithm.
func NewMWAY() *MWAY { return &MWAY{} }

// Name returns the paper's name for the algorithm.
func (*MWAY) Name() string { return "MWAY" }

// mergeWork is the charged compute per tuple per merge level (vectorized
// bitonic merge networks; branchless, so no mispredict costs).
const mergeWork = 3

// sortChunkTimed really sorts tup[lo:hi] (by key, then payload for
// determinism) and charges the timing of the m-way sort: each cache-sized
// run is sorted with log2(runLen) in-cache passes (the passes iterate
// run-by-run, so the simulated cache keeps each run resident exactly as
// the real algorithm does), followed by log2(n/runLen) streaming merge
// passes over the whole chunk.
func sortChunkTimed(t *engine.Thread, buf *mem.U64Buf, tmp *mem.U64Buf, lo, hi int, runLen int) {
	n := hi - lo
	if n <= 1 {
		return
	}
	sort.Slice(buf.D[lo:hi], func(i, j int) bool { return tupLess(buf.D[lo+i], buf.D[lo+j]) })
	const passBlock = 32
	var offs [passBlock]int64
	var toks [passBlock]engine.Tok
	pass := func(src, dst *mem.U64Buf, a, b int) {
		o := int64(a * 8)
		end := int64(b * 8)
		// Full-line blocks: one batched load run per block, then the
		// line stores with their per-line data dependencies as one
		// scatter (the merge network consumes a line before emitting it).
		for o+64 <= end {
			blk := int((end - o) / 64)
			if blk > passBlock {
				blk = passBlock
			}
			t.LoadRunToks(&src.Buffer, o, 64, blk, 0, toks[:blk])
			t.Work(8 * mergeWork * uint64(blk))
			for l := 0; l < blk; l++ {
				offs[l] = o + int64(l)*64
			}
			t.StoreScatter(&dst.Buffer, 64, offs[:blk], nil, toks[:blk])
			o += int64(blk) * 64
		}
		if o < end {
			tok := engine.LoadLine(t, &src.Buffer, o, 0)
			t.Work(8 * mergeWork)
			engine.StoreLine(t, &dst.Buffer, o, 0, tok)
		}
	}
	// In-cache run sorting: all passes of one run before the next run.
	for ra := lo; ra < hi; ra += runLen {
		rb := ra + runLen
		if rb > hi {
			rb = hi
		}
		src, dst := buf, tmp
		for r := 1; r < rb-ra; r <<= 1 {
			pass(src, dst, ra, rb)
			src, dst = dst, src
		}
		if src != buf {
			pass(src, buf, ra, rb) // copy back into place
		}
	}
	// Cross-run merge passes: streaming over the whole chunk.
	src, dst := buf, tmp
	levels := 0
	for r := runLen; r < n; r <<= 1 {
		pass(src, dst, lo, hi)
		src, dst = dst, src
		levels++
	}
	if levels%2 == 1 {
		pass(src, buf, lo, hi)
	}
}

// tupLess orders rows by join key, breaking ties on the payload so that
// every sort is total and deterministic.
func tupLess(a, b uint64) bool {
	ka, kb := mem.TupleKey(a), mem.TupleKey(b)
	if ka != kb {
		return ka < kb
	}
	return a < b
}

// Run executes the join.
func (m *MWAY) Run(env *core.Env, build, probe *rel.Relation, opt Options) (*Result, error) {
	T := opt.threads()
	g := env.NewGroup(T, opt.NodeOf)
	res := &Result{Algorithm: m.Name()}
	reg := env.DataRegion()

	// Runs are sized so that a run and its ping-pong buffer together
	// occupy half of L2 and stay resident across the in-run sort passes.
	runLen := int(env.Plat.L2.SizeBytes / 4 / rel.TupleBytes)
	if runLen < 64 {
		runLen = 64
	}

	type table struct {
		work *mem.U64Buf // sorted per-thread chunks (in place)
		tmp  *mem.U64Buf // ping-pong buffer
		out  *mem.U64Buf // globally sorted result
		n    int
	}
	mk := func(r *rel.Relation, name string) *table {
		tb := &table{
			work: env.Space.AllocU64(name+".work", r.N(), reg),
			tmp:  env.Space.AllocU64(name+".tmp", r.N(), reg),
			out:  env.Space.AllocU64(name+".sorted", r.N(), reg),
			n:    r.N(),
		}
		copy(tb.work.D, r.Tup.D) // untimed setup copy; timed passes stream it below
		return tb
	}
	R, S := mk(build, "R"), mk(probe, "S")

	// --- Phase: per-thread chunk sort (both tables) ---
	g.Phase("Sort", func(t *engine.Thread, id int) {
		for _, tb := range []*table{R, S} {
			lo, hi := chunk(tb.n, T, id)
			sortChunkTimed(t, tb.work, tb.tmp, lo, hi, runLen)
		}
	})

	// --- Phase: multi-way merge, range-partitioned by key ---
	// Thread i merges keys in [splitter(i), splitter(i+1)) from every
	// chunk. Key space is [1, nBuild+1) (uniform FK keys), so arithmetic
	// splitters stay balanced; correctness holds for any distribution.
	maxKey := uint32(build.N() + 1)
	splitter := func(i int) uint32 {
		return uint32(uint64(maxKey) * uint64(i) / uint64(T))
	}
	mergeRange := func(t *engine.Thread, tb *table, id int) {
		loKey, hiKey := splitter(id), splitter(id+1)
		if id == T-1 {
			hiKey = ^uint32(0)
		}
		// Locate the range in every chunk (binary searches, charged as
		// dependent node probes).
		type cursor struct{ pos, end int }
		cursors := make([]cursor, T)
		outPos := 0
		for c := 0; c < T; c++ {
			clo, chi := chunk(tb.n, T, c)
			d := tb.work.D[clo:chi]
			a := clo + sort.Search(len(d), func(i int) bool { return mem.TupleKey(d[i]) >= loKey })
			b := clo + sort.Search(len(d), func(i int) bool { return mem.TupleKey(d[i]) >= hiKey })
			cursors[c] = cursor{pos: a, end: b}
			t.Work(20) // binary search probes
		}
		// Output offset: total rows below loKey across chunks.
		for c := 0; c < T; c++ {
			clo, _ := chunk(tb.n, T, c)
			outPos += cursors[c].pos - clo
		}
		// K-way merge with a loser tree (log2(T) compares per element).
		logT := 1
		for 1<<logT < T {
			logT++
		}
		for {
			best, bestVal := -1, uint64(0)
			for c := 0; c < T; c++ {
				if cursors[c].pos < cursors[c].end {
					v := tb.work.D[cursors[c].pos]
					if best == -1 || tupLess(v, bestVal) {
						best, bestVal = c, v
					}
				}
			}
			if best == -1 {
				break
			}
			p := cursors[best].pos
			var tok engine.Tok
			if p%8 == 0 {
				tok = engine.LoadLine(t, &tb.work.Buffer, int64(p)*8, 0)
			}
			t.Work(uint64(logT) * mergeWork)
			engine.StoreU64(t, tb.out, outPos, tb.work.D[p], 0, tok)
			cursors[best].pos++
			outPos++
		}
	}
	g.Phase("Merge", func(t *engine.Thread, id int) {
		mergeRange(t, R, id)
		mergeRange(t, S, id)
	})

	// --- Phase: merge join over the sorted tables ---
	counts := make([]uint64, T)
	outs := make([]*outWriter, T)
	g.Phase("MergeJoin", func(t *engine.Thread, id int) {
		loKey, hiKey := splitter(id), splitter(id+1)
		if id == T-1 {
			hiKey = ^uint32(0)
		}
		var out *outWriter
		if opt.Materialize {
			out = newOutWriter(env, id, opt.outBuf(id))
			outs[id] = out
		}
		ri := sort.Search(R.n, func(i int) bool { return mem.TupleKey(R.out.D[i]) >= loKey })
		rEnd := sort.Search(R.n, func(i int) bool { return mem.TupleKey(R.out.D[i]) >= hiKey })
		si := sort.Search(S.n, func(i int) bool { return mem.TupleKey(S.out.D[i]) >= loKey })
		sEnd := sort.Search(S.n, func(i int) bool { return mem.TupleKey(S.out.D[i]) >= hiKey })
		var local uint64
		var rTok, sTok engine.Tok
		for ri < rEnd && si < sEnd {
			if ri%8 == 0 {
				rTok = engine.LoadLine(t, &R.out.Buffer, int64(ri)*8, 0)
			}
			rk := mem.TupleKey(R.out.D[ri])
			// Advance S over smaller keys, counting matches on equality.
			for si < sEnd {
				if si%8 == 0 {
					sTok = engine.LoadLine(t, &S.out.Buffer, int64(si)*8, 0)
				}
				sk := mem.TupleKey(S.out.D[si])
				t.Work(1)
				if sk < rk {
					si++
					continue
				}
				if sk > rk {
					break
				}
				local++
				if out != nil {
					dep := rTok
					if sTok > dep {
						dep = sTok
					}
					out.append(t, mem.MakeTuple(mem.TuplePayload(S.out.D[si]), mem.TuplePayload(R.out.D[ri])), engine.After(dep, 1))
				}
				si++
			}
			ri++
			t.Work(1)
		}
		counts[id] = local
	})

	g.AdvanceClock(env.Alloc.SerialCycles())
	for _, c := range counts {
		res.Matches += c
	}
	if opt.Materialize {
		res.Output = make([][]uint64, T)
		for i, w := range outs {
			if w != nil {
				res.Output[i] = w.result()
			}
		}
	}
	res.Phases = g.Phases()
	res.WallCycles = g.Clock()
	res.Stats = g.TotalStats()
	return res, nil
}
