package join

import (
	"sgxbench/internal/btree"
	"sgxbench/internal/core"
	"sgxbench/internal/engine"
	"sgxbench/internal/exec"
	"sgxbench/internal/mem"
	"sgxbench/internal/rel"
)

// INL is the Index Nested Loop join [27]: an existing B+-tree index over
// the build side is probed once per probe row. Every descent is a chain
// of dependent random reads, so the index side cannot exploit memory-
// level parallelism — INL is slow in absolute terms and suffers the
// random-access enclave overhead of Section 4.1, but no SSB penalty
// (lookups store nothing).
//
// As in the paper, the index is pre-built ("uses an existing B-Tree
// index"): construction is not part of the measured join time.
type INL struct{}

// NewINL returns the INL algorithm.
func NewINL() *INL { return &INL{} }

// Name returns the paper's name for the algorithm.
func (*INL) Name() string { return "INL" }

// Run executes the join.
func (n *INL) Run(env *core.Env, build, probe *rel.Relation, opt Options) (*Result, error) {
	return n.RunOn(env, env.NewGroup(opt.threads(), opt.NodeOf), build, probe, opt)
}

// RunOn executes the join on an existing thread group (pipeline stage
// composition: simulated cache/TLB state carries over from the previous
// stage). Options.Threads and NodeOf are ignored; the group decides both.
// Result timing and stats cover only this stage's phases.
func (n *INL) RunOn(env *core.Env, g *exec.Group, build, probe *rel.Relation, opt Options) (*Result, error) {
	T := len(g.Threads)
	mark := g.Mark()
	res := &Result{Algorithm: n.Name()}

	// Pre-built index (setup, untimed).
	pairs := make([]btree.KV, build.N())
	for i := range pairs {
		pairs[i] = btree.KV{K: build.Key(i), V: build.Payload(i)}
	}
	idx := btree.BulkLoad(env.Space, "inl.index", pairs, env.DataRegion())

	counts := make([]uint64, T)
	outs := make([]*outWriter, T)
	ps := g.Phase("Probe", func(t *engine.Thread, id int) {
		lo, hi := chunk(probe.N(), T, id)
		var out *outWriter
		if opt.Materialize {
			out = newOutWriter(env, id, opt.outBuf(id))
			outs[id] = out
		}
		var local uint64
		var vals []uint32
		for i := lo; i < hi; i++ {
			tup, tok := engine.LoadU64(t, probe.Tup, i, 0)
			key := mem.TupleKey(tup)
			vals = vals[:0]
			var leafTok engine.Tok
			vals, leafTok = idx.LookupAll(t, key, tok, vals)
			local += uint64(len(vals))
			if out != nil {
				for _, v := range vals {
					out.append(t, mem.MakeTuple(mem.TuplePayload(tup), v), leafTok)
				}
			}
		}
		counts[id] = local
	})
	res.ProbeCycles = ps.WallCycles

	g.AdvanceClock(env.Alloc.SerialCycles())
	for _, c := range counts {
		res.Matches += c
	}
	if opt.Materialize {
		res.Output = make([][]uint64, T)
		for i, w := range outs {
			if w != nil {
				res.Output[i] = w.result()
			}
		}
	}
	res.Phases, res.Stats, res.WallCycles = g.Since(mark)
	return res, nil
}
