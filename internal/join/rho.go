package join

import (
	"sgxbench/internal/core"
	"sgxbench/internal/engine"
	"sgxbench/internal/exec"
	"sgxbench/internal/kernels"
	"sgxbench/internal/mem"
	"sgxbench/internal/rel"
)

// RHO is the Radix Hash Optimized join [28, 3]: both inputs are radix-
// partitioned in two parallel passes into cache-sized partitions, which
// are then joined with an in-cache hash table. This is the paper's
// best-performing algorithm and the one its optimization study centers
// on (Figures 1, 6, 9). The two-phase parallel partitioning follows Kim
// et al. [21]: per-thread histograms, a cooperative prefix sum, and
// contention-free scatters through per-thread cursors.
type RHO struct{}

// NewRHO returns the RHO algorithm.
func NewRHO() *RHO { return &RHO{} }

// Name returns the paper's name for the algorithm.
func (*RHO) Name() string { return "RHO" }

// RadixBits picks the total number of radix bits so that the average
// final R partition fits comfortably in L2 (cache-sized partitions).
func RadixBits(env *core.Env, nBuild int) (b1, b2 uint) {
	target := env.Plat.L2.SizeBytes / 4
	if target < 512 {
		target = 512
	}
	var b uint
	for int64(nBuild)*rel.TupleBytes>>b > target && b < 18 {
		b++
	}
	if b < 2 {
		b = 2
	}
	b1 = (b + 1) / 2
	b2 = b - b1
	if b2 < 1 {
		b2 = 1
	}
	return b1, b2
}

// rhoState bundles the partitioning buffers for one input table.
type rhoState struct {
	in   *mem.U64Buf // input tuples
	tmp  *mem.U64Buf // pass-1 output
	out  *mem.U64Buf // pass-2 output
	h1   *mem.U32Buf // per-thread pass-1 histograms (T x P1)
	cur1 *mem.U32Buf // per-thread pass-1 cursors (T x P1)
	h2   *mem.U32Buf // pass-2 histograms (P1 x P2)
	cur2 *mem.U32Buf // pass-2 cursors (P1 x P2)

	start1 []int // pass-1 partition start (real bookkeeping)
	count1 []int
	start2 []int // final partition start, indexed p1*P2+p2
	count2 []int
}

func newRHOState(env *core.Env, in *rel.Relation, threads int, p1, p2 int) *rhoState {
	n := in.N()
	reg := env.DataRegion()
	return &rhoState{
		in:     in.Tup,
		tmp:    env.Space.AllocU64(in.Name+".tmp", n, reg),
		out:    env.Space.AllocU64(in.Name+".out", n, reg),
		h1:     env.Space.AllocU32(in.Name+".h1", threads*p1, reg),
		cur1:   env.Space.AllocU32(in.Name+".cur1", threads*p1, reg),
		h2:     env.Space.AllocU32(in.Name+".h2", p1*p2, reg),
		cur2:   env.Space.AllocU32(in.Name+".cur2", p1*p2, reg),
		start1: make([]int, p1+1),
		count1: make([]int, p1),
		start2: make([]int, p1*p2+1),
		count2: make([]int, p1*p2),
	}
}

// Run executes the join.
func (r *RHO) Run(env *core.Env, build, probe *rel.Relation, opt Options) (*Result, error) {
	return r.RunOn(env, env.NewGroup(opt.threads(), opt.NodeOf), build, probe, opt)
}

// RunOn executes the join on an existing thread group (pipeline stage
// composition: simulated cache/TLB state carries over from the previous
// stage). Options.Threads and NodeOf are ignored; the group decides both.
// Result timing and stats cover only this stage's phases.
func (r *RHO) RunOn(env *core.Env, g *exec.Group, build, probe *rel.Relation, opt Options) (*Result, error) {
	T := len(g.Threads)
	mark := g.Mark()
	b1, b2 := RadixBits(env, build.N())
	if opt.RadixBits > 0 {
		b := uint(opt.RadixBits)
		b1 = (b + 1) / 2
		b2 = b - b1
		if b2 < 1 {
			b2 = 1
		}
	}
	p1, p2 := 1<<b1, 1<<b2
	R := newRHOState(env, build, T, p1, p2)
	S := newRHOState(env, probe, T, p1, p2)
	res := &Result{Algorithm: r.Name()}

	unroll := 1
	avx := false
	if opt.Optimized {
		// The optimized variant uses the AVX-512 histogram: 8-wide
		// vectorized index computation at the vector register budget of
		// Fig 8, with line-granular key loads and no spills.
		unroll = kernels.AVXRegBudget
		avx = true
	}
	spills := make([]*mem.U32Buf, T)
	wcs := make([]*mem.U64Buf, T)
	maxP := p1
	if p2 > maxP {
		maxP = p2
	}
	for i := range spills {
		spills[i] = env.Space.AllocU32("spill", 64, env.DataRegion())
		if opt.Optimized {
			// Per-thread write-combining arena: one line per partition.
			wcs[i] = env.Space.AllocU64("wc", maxP*8, env.DataRegion())
		}
	}
	histCfg := func(id int, shift, bits uint) kernels.HistConfig {
		return kernels.HistConfig{Shift: shift, Bits: bits, Unroll: unroll, AVX: avx, Spill: spills[id]}
	}
	scatCfg := func(id int, shift, bits uint) kernels.ScatterConfig {
		u := 1
		if opt.Optimized {
			// The write-combining copy keeps no per-tuple cursor in
			// registers, so it can afford the same unroll depth as the
			// histogram (Fig 8's budget).
			u = 8
		}
		return kernels.ScatterConfig{Shift: shift, Bits: bits, Unroll: u, WC: wcs[id]}
	}

	// --- Pass 1: histograms over both inputs ---
	g.Phase("Hist1", func(t *engine.Thread, id int) {
		for _, st := range []*rhoState{R, S} {
			lo, hi := chunk(st.in.Len(), T, id)
			kernels.Histogram(t, st.in, lo, hi, st.h1, id*p1, histCfg(id, 0, b1))
		}
	})

	// --- Pass 1: cursor computation + scatter ---
	g.Phase("Copy1", func(t *engine.Thread, id int) {
		offs := make([]int64, T)
		for _, st := range []*rhoState{R, S} {
			// Each thread derives its own cursor column from the shared
			// histogram matrix: per partition, one strided gather of the
			// T per-thread counts, then the thread's own cursor store.
			base := 0
			for p := 0; p < p1; p++ {
				for tt := 0; tt < T; tt++ {
					offs[tt] = st.h1.Off(tt*p1 + p)
				}
				t.LoadGather(&st.h1.Buffer, 4, offs, nil, nil)
				cum := base
				for tt := 0; tt < T; tt++ {
					if tt == id {
						engine.StoreU32(t, st.cur1, id*p1+p, uint32(cum), 0, 0)
					}
					cum += int(st.h1.D[tt*p1+p])
				}
				if id == 0 {
					st.start1[p] = base
					st.count1[p] = cum - base
				}
				base = cum
			}
			lo, hi := chunk(st.in.Len(), T, id)
			kernels.Scatter(t, st.in, lo, hi, st.tmp, st.cur1, id*p1, scatCfg(id, 0, b1))
		}
	})
	// --- Pass 2: per-partition histograms ---
	g.Phase("Hist2", func(t *engine.Thread, id int) {
		for _, st := range []*rhoState{R, S} {
			for pp := id; pp < p1; pp += T {
				lo := st.start1[pp]
				hi := lo + st.count1[pp]
				kernels.Histogram(t, st.tmp, lo, hi, st.h2, pp*p2, histCfg(id, b1, b2))
			}
		}
	})

	// --- Pass 2: local prefix + scatter ---
	g.Phase("Copy2", func(t *engine.Thread, id int) {
		for _, st := range []*rhoState{R, S} {
			for pp := id; pp < p1; pp += T {
				lo := st.start1[pp]
				hi := lo + st.count1[pp]
				// Local prefix sum: batched sequential read of the
				// partition's histogram row, then the cursor writes.
				tok := t.LoadRun(&st.h2.Buffer, st.h2.Off(pp*p2), 4, p2, 0)
				cum := uint32(lo)
				for j := 0; j < p2; j++ {
					v := st.h2.D[pp*p2+j]
					st.cur2.D[pp*p2+j] = cum
					st.start2[pp*p2+j] = int(cum)
					st.count2[pp*p2+j] = int(v)
					cum += v
				}
				t.StoreRun(&st.cur2.Buffer, st.cur2.Off(pp*p2), 4, p2, 0, engine.After(tok, 1))
				kernels.Scatter(t, st.tmp, lo, hi, st.out, st.cur2, pp*p2, scatCfg(id, b1, b2))
			}
		}
	})

	// --- In-cache join per final partition ---
	maxPart := 0
	for _, c := range R.count2 {
		if c > maxPart {
			maxPart = c
		}
	}
	scratches := make([]*scratch, T)
	for i := range scratches {
		scratches[i] = newScratch(env, maxPart)
	}
	counts := make([]uint64, T)
	buildCy := make([]uint64, T)
	probeCy := make([]uint64, T)
	outs := make([]*outWriter, T)
	var taskCy [][]uint64
	if opt.CollectTasks {
		taskCy = make([][]uint64, T)
	}
	g.Phase("Join", func(t *engine.Thread, id int) {
		var out *outWriter
		if opt.Materialize {
			out = newOutWriter(env, id, opt.outBuf(id))
			outs[id] = out
		}
		var local uint64
		for pp := id; pp < p1; pp += T {
			taskStart := t.Cycle()
			for j := 0; j < p2; j++ {
				fp := pp*p2 + j
				local += joinPartition(t,
					R.out, R.start2[fp], R.start2[fp]+R.count2[fp],
					S.out, S.start2[fp], S.start2[fp]+S.count2[fp],
					scratches[id], opt.Optimized, out, &buildCy[id], &probeCy[id])
			}
			if opt.CollectTasks {
				taskCy[id] = append(taskCy[id], t.Cycle()-taskStart)
			}
		}
		counts[id] = local
	})

	g.AdvanceClock(env.Alloc.SerialCycles())
	for id := 0; id < T; id++ {
		res.Matches += counts[id]
		res.BuildCycles += buildCy[id]
		res.ProbeCycles += probeCy[id]
		if opt.CollectTasks {
			res.TaskCycles = append(res.TaskCycles, taskCy[id]...)
		}
	}
	if opt.Materialize {
		res.Output = make([][]uint64, T)
		for i, w := range outs {
			if w != nil {
				res.Output[i] = w.result()
			}
		}
	}
	res.Phases, res.Stats, res.WallCycles = g.Since(mark)
	return res, nil
}
