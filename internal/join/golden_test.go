package join

import (
	"testing"

	"sgxbench/internal/core"
	"sgxbench/internal/mem"
	"sgxbench/internal/platform"
	"sgxbench/internal/rel"
)

// goldenRun executes one join under one setting on either engine path.
func goldenRun(t *testing.T, alg Algorithm, setting core.Setting, ref bool, opt Options) *Result {
	t.Helper()
	env := core.NewEnv(core.Options{
		Plat:      platform.XeonGold6326().Scaled(256),
		Setting:   setting,
		Reference: ref,
	})
	nR := rel.RowsForMB(100) / 256
	nS := rel.RowsForMB(400) / 256
	build, probe := rel.GenFKPair(env.Space, nR, nS, env.DataRegion(), 99)
	res, err := alg.Run(env, build, probe, opt)
	if err != nil {
		t.Fatalf("%s: %v", alg.Name(), err)
	}
	return res
}

func compareGolden(t *testing.T, label string, ref, fast *Result) {
	t.Helper()
	if ref.Matches != fast.Matches {
		t.Errorf("%s: matches ref=%d fast=%d", label, ref.Matches, fast.Matches)
	}
	if ref.WallCycles != fast.WallCycles {
		t.Errorf("%s: wall cycles ref=%d fast=%d", label, ref.WallCycles, fast.WallCycles)
	}
	if ref.Stats != fast.Stats {
		t.Errorf("%s: stats differ\nref:  %+v\nfast: %+v", label, ref.Stats, fast.Stats)
	}
	if len(ref.Output) != len(fast.Output) {
		t.Errorf("%s: output shape differs", label)
		return
	}
	for i := range ref.Output {
		if len(ref.Output[i]) != len(fast.Output[i]) {
			t.Errorf("%s: output[%d] length ref=%d fast=%d", label, i, len(ref.Output[i]), len(fast.Output[i]))
			continue
		}
		for j := range ref.Output[i] {
			if ref.Output[i][j] != fast.Output[i][j] {
				t.Fatalf("%s: output[%d][%d] ref=%x fast=%x", label, i, j, ref.Output[i][j], fast.Output[i][j])
			}
		}
	}
}

// TestGoldenRHOEquivalence enforces the fast-path invariant on RHO under
// every setting, in both the scalar and the unroll+reorder (optimized)
// variants.
func TestGoldenRHOEquivalence(t *testing.T) {
	allSettings := []core.Setting{core.PlainCPU, core.PlainCPUM, core.SGXDoE, core.SGXDiE}
	for _, setting := range allSettings {
		for _, optimized := range []bool{false, true} {
			opt := Options{Threads: 4, Optimized: optimized}
			ref := goldenRun(t, NewRHO(), setting, true, opt)
			fast := goldenRun(t, NewRHO(), setting, false, opt)
			compareGolden(t, setting.String()+"/RHO/opt="+boolStr(optimized), ref, fast)
		}
	}
}

// TestGoldenRHOMaterialized compares materialized output single-threaded:
// with multiple threads the output chunks are claimed from the shared
// allocator in goroutine-scheduling order, so the simulated addresses (and
// with them single stats) are not run-to-run deterministic in either
// engine mode.
func TestGoldenRHOMaterialized(t *testing.T) {
	for _, setting := range []core.Setting{core.PlainCPU, core.SGXDiE} {
		opt := Options{Threads: 1, Optimized: true, Materialize: true}
		ref := goldenRun(t, NewRHO(), setting, true, opt)
		fast := goldenRun(t, NewRHO(), setting, false, opt)
		compareGolden(t, setting.String()+"/RHO/materialized", ref, fast)
	}
}

// TestGoldenPHTEquivalence enforces the fast-path invariant on PHT. PHT
// is run single-threaded: its shared-bucket build interleaves real
// goroutine execution, so multi-threaded timing is not run-to-run
// deterministic (in either engine mode) and cannot be compared exactly.
func TestGoldenPHTEquivalence(t *testing.T) {
	allSettings := []core.Setting{core.PlainCPU, core.PlainCPUM, core.SGXDoE, core.SGXDiE}
	for _, setting := range allSettings {
		for _, optimized := range []bool{false, true} {
			opt := Options{Threads: 1, Optimized: optimized}
			ref := goldenRun(t, NewPHT(), setting, true, opt)
			fast := goldenRun(t, NewPHT(), setting, false, opt)
			compareGolden(t, setting.String()+"/PHT/opt="+boolStr(optimized), ref, fast)
		}
	}
}

// TestGoldenMWAYEquivalence enforces the fast-path invariant on the
// sort-merge join. Unlike PHT's shared-table build, every MWAY phase
// (chunk sort, multi-way merge, merge join) issues accesses only through
// the owning thread over pre-partitioned ranges, so the join is
// run-to-run deterministic at any thread count and both the
// multi-threaded and the materialized variants can be compared exactly.
func TestGoldenMWAYEquivalence(t *testing.T) {
	allSettings := []core.Setting{core.PlainCPU, core.PlainCPUM, core.SGXDoE, core.SGXDiE}
	for _, setting := range allSettings {
		opt := Options{Threads: 4}
		ref := goldenRun(t, NewMWAY(), setting, true, opt)
		fast := goldenRun(t, NewMWAY(), setting, false, opt)
		compareGolden(t, setting.String()+"/MWAY", ref, fast)
	}
}

// TestGoldenMWAYMaterialized compares the materialized multi-threaded
// variant (with pre-allocated per-thread output buffers, the q5
// configuration, output rows land at deterministic addresses).
func TestGoldenMWAYMaterialized(t *testing.T) {
	for _, setting := range []core.Setting{core.PlainCPU, core.SGXDiE} {
		run := func(ref bool) *Result {
			env := core.NewEnv(core.Options{
				Plat:      platform.XeonGold6326().Scaled(256),
				Setting:   setting,
				Reference: ref,
			})
			nR := rel.RowsForMB(100) / 256
			nS := rel.RowsForMB(400) / 256
			build, probe := rel.GenFKPair(env.Space, nR, nS, env.DataRegion(), 99)
			outs := make([]*mem.U64Buf, 2)
			for i := range outs {
				outs[i] = env.Space.AllocU64("mway.out", nS, env.DataRegion())
			}
			res, err := NewMWAY().Run(env, build, probe, Options{Threads: 2, Materialize: true, OutBufs: outs})
			if err != nil {
				t.Fatalf("MWAY: %v", err)
			}
			return res
		}
		compareGolden(t, setting.String()+"/MWAY/materialized", run(true), run(false))
	}
}

// TestGoldenCrkEquivalence enforces the fast-path invariant on CrkJoin.
// Cracking partitions both tables in place over disjoint per-thread
// segments and joins partitions round-robin, so it too is deterministic
// at any thread count.
func TestGoldenCrkEquivalence(t *testing.T) {
	allSettings := []core.Setting{core.PlainCPU, core.PlainCPUM, core.SGXDoE, core.SGXDiE}
	for _, setting := range allSettings {
		for _, optimized := range []bool{false, true} {
			opt := Options{Threads: 4, Optimized: optimized}
			ref := goldenRun(t, NewCrk(), setting, true, opt)
			fast := goldenRun(t, NewCrk(), setting, false, opt)
			compareGolden(t, setting.String()+"/CrkJoin/opt="+boolStr(optimized), ref, fast)
		}
	}
}

func boolStr(b bool) string {
	if b {
		return "true"
	}
	return "false"
}
