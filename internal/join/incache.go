package join

import (
	"sgxbench/internal/core"
	"sgxbench/internal/engine"
	"sgxbench/internal/mem"
)

// scratch is a per-thread reusable hash area for in-cache partition joins
// (the join method RHO and CrkJoin share, [3, 26]). Buckets hold
// 1-based row indexes into the current R partition; chains run through
// next. An epoch counter makes clearing free; the timed cost of the
// (tiny) bucket memset is charged explicitly.
type scratch struct {
	buckets *mem.U32Buf
	epoch   *mem.U32Buf // real epoch tags (no timing: part of buckets line)
	next    *mem.U32Buf
	gen     uint32
}

func newScratch(env *core.Env, maxPartRows int) *scratch {
	nb := nextPow2(maxPartRows)
	if nb < 16 {
		nb = 16
	}
	return &scratch{
		buckets: env.Space.AllocU32("join.buckets", nb, env.DataRegion()),
		epoch:   env.Space.AllocU32("join.epoch", nb, env.DataRegion()),
		next:    env.Space.AllocU32("join.next", maxPartRows+1, env.DataRegion()),
	}
}

// joinPartition builds a hash table over R[rLo:rHi] and probes it with
// S[sLo:sHi]. It returns the number of matches; build/probe cycle splits
// are accumulated into the provided counters. Both loops exist in scalar
// and unroll+reorder (optimized) forms: the hash-table insert is a
// data-dependent write (bucket head update at a hash-derived address),
// so the scalar form pays the full SSB serialization inside enclaves even
// though every access hits the cache (Table 2, "data-dependent write,
// < LLC").
func joinPartition(t *engine.Thread, R *mem.U64Buf, rLo, rHi int, S *mem.U64Buf, sLo, sHi int,
	sc *scratch, optimized bool, out *outWriter, buildCycles, probeCycles *uint64) uint64 {

	rLen := rHi - rLo
	if rLen <= 0 {
		if probeCycles != nil {
			// Still scan S to count zero matches (no table: no matches).
		}
		return 0
	}
	nb := nextPow2(rLen)
	if nb < 16 {
		nb = 16
	}
	if nb > sc.buckets.Len() {
		nb = sc.buckets.Len()
	}
	bits := log2(nb)
	sc.gen++

	// --- Build ---
	start := t.Cycle()
	insert := func(i int, tup uint64, tok engine.Tok) {
		h := hashIdx(mem.TupleKey(tup), bits)
		hTok := engine.After(tok, hashCost)
		headTok := t.Load(&sc.buckets.Buffer, sc.buckets.Off(int(h)), 4, hTok)
		var head uint32
		if sc.epoch.D[h] == sc.gen {
			head = sc.buckets.D[h]
		}
		row := i - rLo + 1
		engine.StoreU32(t, sc.next, row, head, 0, headTok)
		sc.buckets.D[h] = uint32(row)
		sc.epoch.D[h] = sc.gen
		// Bucket head update: store address derived from the loaded key.
		t.Store(&sc.buckets.Buffer, sc.buckets.Off(int(h)), 4, hTok, engine.After(headTok, 1))
	}
	if !optimized {
		for i := rLo; i < rHi; i++ {
			tup, tok := engine.LoadU64(t, R, i, 0)
			insert(i, tup, tok)
		}
	} else {
		const u = 8
		var toks [u]engine.Tok
		i := rLo
		for ; i+u <= rHi; i += u {
			// Load group: one batched run of u consecutive tuple loads
			// ahead of the hash-dependent bucket stores.
			t.LoadRunToks(&R.Buffer, R.Off(i), 8, u, 0, toks[:])
			for j := 0; j < u; j++ {
				insert(i+j, R.D[i+j], toks[j])
			}
		}
		for ; i < rHi; i++ {
			tup, tok := engine.LoadU64(t, R, i, 0)
			insert(i, tup, tok)
		}
	}
	t.Drain()
	mid := t.Cycle()
	if buildCycles != nil {
		*buildCycles += mid - start
	}

	// --- Probe ---
	var matches uint64
	probeOne := func(tup uint64, tok engine.Tok) {
		key := mem.TupleKey(tup)
		h := hashIdx(key, bits)
		hTok := engine.After(tok, hashCost)
		chainTok := t.Load(&sc.buckets.Buffer, sc.buckets.Off(int(h)), 4, hTok)
		var row uint32
		if sc.epoch.D[h] == sc.gen {
			row = sc.buckets.D[h]
		}
		for row != 0 {
			rTok := t.Load(&R.Buffer, R.Off(rLo+int(row)-1), 8, chainTok)
			t.Work(1)
			rt := R.D[rLo+int(row)-1]
			if mem.TupleKey(rt) == key {
				matches++
				if out != nil {
					out.append(t, mem.MakeTuple(mem.TuplePayload(tup), mem.TuplePayload(rt)), rTok)
				}
			}
			chainTok = t.Load(&sc.next.Buffer, sc.next.Off(int(row)), 4, rTok)
			row = sc.next.D[row]
		}
	}
	if !optimized {
		for j := sLo; j < sHi; j++ {
			tup, tok := engine.LoadU64(t, S, j, 0)
			probeOne(tup, tok)
		}
	} else {
		const u = 8
		var toks [u]engine.Tok
		j := sLo
		for ; j+u <= sHi; j += u {
			// Load group: batched probe-side loads ahead of the chains.
			t.LoadRunToks(&S.Buffer, S.Off(j), 8, u, 0, toks[:])
			for l := 0; l < u; l++ {
				probeOne(S.D[j+l], toks[l])
			}
		}
		for ; j < sHi; j++ {
			tup, tok := engine.LoadU64(t, S, j, 0)
			probeOne(tup, tok)
		}
	}
	t.Drain()
	if probeCycles != nil {
		*probeCycles += t.Cycle() - mid
	}
	return matches
}
