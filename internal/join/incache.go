package join

import (
	"sgxbench/internal/core"
	"sgxbench/internal/engine"
	"sgxbench/internal/mem"
)

// scratch is a per-thread reusable hash area for in-cache partition joins
// (the join method RHO and CrkJoin share, [3, 26]). Buckets hold 1-based
// entry indexes; each entry packs the build tuple together with its chain
// link (16 bytes), as in the bucket-chained tables of the TEEBench
// lineage — a probe hop therefore costs one load, not a tuple load plus a
// separate link load. An epoch counter makes clearing free; the timed
// cost of the (tiny) bucket memset is charged explicitly.
type scratch struct {
	buckets *mem.U32Buf
	epoch   *mem.U32Buf // real epoch tags (no timing: part of buckets line)
	ents    *mem.U64Buf // 2 words per entry: tuple, chain link
	gen     uint32
}

// entStride is the byte size of one chain entry (tuple + link, padded).
const entStride = 16

func newScratch(env *core.Env, maxPartRows int) *scratch {
	nb := nextPow2(maxPartRows)
	if nb < 16 {
		nb = 16
	}
	return &scratch{
		buckets: env.Space.AllocU32("join.buckets", nb, env.DataRegion()),
		epoch:   env.Space.AllocU32("join.epoch", nb, env.DataRegion()),
		ents:    env.Space.AllocU64("join.ents", 2*(maxPartRows+1), env.DataRegion()),
	}
}

// joinPartition builds a hash table over R[rLo:rHi] and probes it with
// S[sLo:sHi]. It returns the number of matches; build/probe cycle splits
// are accumulated into the provided counters. Both loops exist in scalar
// and unroll+reorder (optimized) forms: the hash-table insert is a
// data-dependent write (bucket head update at a hash-derived address),
// so the scalar form pays the full SSB serialization inside enclaves even
// though every access hits the cache (Table 2, "data-dependent write,
// < LLC").
func joinPartition(t *engine.Thread, R *mem.U64Buf, rLo, rHi int, S *mem.U64Buf, sLo, sHi int,
	sc *scratch, optimized bool, out *outWriter, buildCycles, probeCycles *uint64) uint64 {

	rLen := rHi - rLo
	if rLen <= 0 {
		if probeCycles != nil {
			// Still scan S to count zero matches (no table: no matches).
		}
		return 0
	}
	nb := nextPow2(rLen)
	if nb < 16 {
		nb = 16
	}
	if nb > sc.buckets.Len() {
		nb = sc.buckets.Len()
	}
	bits := log2(nb)
	sc.gen++

	// --- Build ---
	start := t.Cycle()
	insert := func(i int, tup uint64, tok engine.Tok) {
		h := hashIdx(mem.TupleKey(tup), bits)
		hTok := engine.After(tok, hashCost)
		headTok := t.Load(&sc.buckets.Buffer, sc.buckets.Off(int(h)), 4, hTok)
		var head uint32
		if sc.epoch.D[h] == sc.gen {
			head = sc.buckets.D[h]
		}
		row := i - rLo + 1
		// Entry store at the sequential entry cursor: the tuple and its
		// chain link leave together in one 16-byte store.
		sc.ents.D[2*row] = tup
		sc.ents.D[2*row+1] = uint64(head)
		t.Store(&sc.ents.Buffer, int64(row)*entStride, entStride, 0, headTok)
		sc.buckets.D[h] = uint32(row)
		sc.epoch.D[h] = sc.gen
		// Bucket head update: store address derived from the loaded key.
		t.Store(&sc.buckets.Buffer, sc.buckets.Off(int(h)), 4, hTok, engine.After(headTok, 1))
	}
	if !optimized {
		for i := rLo; i < rHi; i++ {
			tup, tok := engine.LoadU64(t, R, i, 0)
			insert(i, tup, tok)
		}
	} else {
		const u = 8
		var toks, hToks, headToks, entDeps [u]engine.Tok
		var bOffs, entOffs [u]int64
		var hs [u]uint32
		i := rLo
		for ; i+u <= rHi; i += u {
			// Load group: one batched run of u consecutive tuple loads
			// ahead of the hash-dependent bucket stores. The bucket-head
			// load + update pairs are one read-modify-write scatter (each
			// pair shares its bucket line), the entry stores one scatter
			// of consecutive 16-byte entries.
			lineTok := t.LoadRun(&R.Buffer, R.Off(i), 64, 1, 0) // one vector load per 8 keys
			for j := 0; j < u; j++ {
				toks[j] = engine.After(lineTok, 1) // lane extract
				hs[j] = hashIdx(mem.TupleKey(R.D[i+j]), bits)
				hToks[j] = engine.After(toks[j], hashCost)
				bOffs[j] = sc.buckets.Off(int(hs[j]))
			}
			t.RMWScatter(&sc.buckets.Buffer, 4, bOffs[:], hToks[:], headToks[:])
			for j := 0; j < u; j++ {
				h := hs[j]
				var head uint32
				if sc.epoch.D[h] == sc.gen {
					head = sc.buckets.D[h]
				}
				row := i + j - rLo + 1
				sc.ents.D[2*row] = R.D[i+j]
				sc.ents.D[2*row+1] = uint64(head)
				sc.buckets.D[h] = uint32(row)
				sc.epoch.D[h] = sc.gen
				entOffs[j] = int64(row) * entStride
				entDeps[j] = headToks[j]
			}
			t.StoreScatter(&sc.ents.Buffer, entStride, entOffs[:], nil, entDeps[:])
		}
		for ; i < rHi; i++ {
			tup, tok := engine.LoadU64(t, R, i, 0)
			insert(i, tup, tok)
		}
	}
	t.Drain()
	mid := t.Cycle()
	if buildCycles != nil {
		*buildCycles += mid - start
	}

	// --- Probe ---
	var matches uint64
	// compareEntry charges the key compare of one chain entry and emits
	// output; it returns the next 1-based entry index.
	compareEntry := func(tup uint64, key uint32, row uint32, entryTok engine.Tok) uint32 {
		t.Work(1)
		rt := sc.ents.D[2*row]
		if mem.TupleKey(rt) == key {
			matches++
			if out != nil {
				out.append(t, mem.MakeTuple(mem.TuplePayload(tup), mem.TuplePayload(rt)), entryTok)
			}
		}
		return uint32(sc.ents.D[2*row+1])
	}
	chase := func(tup uint64, chainTok engine.Tok) {
		key := mem.TupleKey(tup)
		h := hashIdx(key, bits)
		var row uint32
		if sc.epoch.D[h] == sc.gen {
			row = sc.buckets.D[h]
		}
		for row != 0 {
			entryTok := t.Load(&sc.ents.Buffer, int64(row)*entStride, entStride, chainTok)
			row = compareEntry(tup, key, row, entryTok)
			chainTok = engine.After(entryTok, 1)
		}
	}
	probeOne := func(tup uint64, tok engine.Tok) {
		h := hashIdx(mem.TupleKey(tup), bits)
		hTok := engine.After(tok, hashCost)
		chase(tup, t.Load(&sc.buckets.Buffer, sc.buckets.Off(int(h)), 4, hTok))
	}
	if !optimized {
		for j := sLo; j < sHi; j++ {
			tup, tok := engine.LoadU64(t, S, j, 0)
			probeOne(tup, tok)
		}
	} else {
		const u = 8
		var toks, hToks, chainToks, entDeps, entToks [u]engine.Tok
		var bOffs, entOffs [u]int64
		var rows, hs [u]uint32
		var idx [u]int
		j := sLo
		for ; j+u <= sHi; j += u {
			// Load group: batched probe-side loads, one gather of the
			// batch's bucket heads, then — the chain heads being known —
			// one gather of the first chain entries, before the per-tuple
			// compares and (rare) longer chains.
			lineTok := t.LoadRun(&S.Buffer, S.Off(j), 64, 1, 0) // one vector load per 8 keys
			for l := 0; l < u; l++ {
				toks[l] = engine.After(lineTok, 1) // lane extract
				hs[l] = hashIdx(mem.TupleKey(S.D[j+l]), bits)
				hToks[l] = engine.After(toks[l], hashCost)
				bOffs[l] = sc.buckets.Off(int(hs[l]))
			}
			t.LoadGather(&sc.buckets.Buffer, 4, bOffs[:], hToks[:], chainToks[:])
			n := 0
			for l := 0; l < u; l++ {
				h := hs[l]
				var row uint32
				if sc.epoch.D[h] == sc.gen {
					row = sc.buckets.D[h]
				}
				if row != 0 {
					rows[n] = row
					idx[n] = l
					entOffs[n] = int64(row) * entStride
					entDeps[n] = chainToks[l]
					n++
				}
			}
			t.LoadGather(&sc.ents.Buffer, entStride, entOffs[:n], entDeps[:n], entToks[:n])
			for k := 0; k < n; k++ {
				tup := S.D[j+idx[k]]
				key := mem.TupleKey(tup)
				row := compareEntry(tup, key, rows[k], entToks[k])
				chainTok := engine.After(entToks[k], 1)
				for row != 0 {
					entryTok := t.Load(&sc.ents.Buffer, int64(row)*entStride, entStride, chainTok)
					row = compareEntry(tup, key, row, entryTok)
					chainTok = engine.After(entryTok, 1)
				}
			}
		}
		for ; j < sHi; j++ {
			tup, tok := engine.LoadU64(t, S, j, 0)
			probeOne(tup, tok)
		}
	}
	t.Drain()
	if probeCycles != nil {
		*probeCycles += t.Cycle() - mid
	}
	return matches
}
