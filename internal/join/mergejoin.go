package join

import (
	stdsort "sort"

	"sgxbench/internal/core"
	"sgxbench/internal/engine"
	"sgxbench/internal/exec"
	"sgxbench/internal/mem"
	sortop "sgxbench/internal/sort"
)

// MergeJoinSorted merge-joins two key-sorted tables in one linear pass —
// the final stage of MWAY, exported so pipelines that sort their inputs
// as explicit stages (q5.mergejoin-agg) can run exactly the same join.
//
// R (build, nR rows) and S (probe, nS rows) must be sorted by
// sort.TupLess; duplicate keys are supported on both sides (a duplicated
// R key replays the matching S run, emitting the full cross product of
// the equal-key runs). maxKey bounds the key domain so the arithmetic
// splitters (sort.Splitter) can range-partition the pass across the
// group's threads; keys at or beyond it all land in the last range. The access pattern is two forward streams with cursor stores
// — the regime in which the SSB mitigation has nothing to serialize,
// which is why the paper's sort-merge join resists the enclave far
// better than the hash joins (Fig 3). Output rows are (S payload, R
// payload), matching the hash joins' materialization format.
func MergeJoinSorted(env *core.Env, g *exec.Group, R *mem.U64Buf, nR int, S *mem.U64Buf, nS int, maxKey uint32, opt Options) *Result {
	T := len(g.Threads)
	mark := g.Mark()
	res := &Result{Algorithm: "MergeJoin"}
	counts := make([]uint64, T)
	outs := make([]*outWriter, T)
	g.Phase("MergeJoin", func(t *engine.Thread, id int) {
		loKey, hiKey := sortop.Splitter(maxKey, T, id), sortop.Splitter(maxKey, T, id+1)
		last := id == T-1
		var out *outWriter
		if opt.Materialize {
			out = newOutWriter(env, id, opt.outBuf(id))
			outs[id] = out
		}
		ri := stdsort.Search(nR, func(i int) bool { return mem.TupleKey(R.D[i]) >= loKey })
		si := stdsort.Search(nS, func(i int) bool { return mem.TupleKey(S.D[i]) >= loKey })
		// The last range is unbounded above: an exclusive hiKey could
		// never cover the maximum key.
		rEnd, sEnd := nR, nS
		if !last {
			rEnd = stdsort.Search(nR, func(i int) bool { return mem.TupleKey(R.D[i]) >= hiKey })
			sEnd = stdsort.Search(nS, func(i int) bool { return mem.TupleKey(S.D[i]) >= hiKey })
		}
		var local uint64
		var rTok, sTok engine.Tok
		// siRun tracks where the current S equal-key run starts so that a
		// duplicated R key re-joins the whole run instead of resuming past
		// it. With unique R keys the rewind never fires and the access
		// sequence is exactly the single-pass merge.
		siRun := si
		prevKey := uint32(0)
		havePrev := false
		for ri < rEnd {
			rk := mem.TupleKey(R.D[ri])
			if havePrev && rk == prevKey {
				si = siRun // duplicate build key: replay the equal probe run
			}
			if si >= sEnd {
				break // probe side exhausted (after any rewind)
			}
			if ri%8 == 0 {
				rTok = engine.LoadLine(t, &R.Buffer, int64(ri)*8, 0)
			}
			// Advance S over smaller keys, counting matches on equality.
			// siRun lands on the first non-smaller probe row, so a
			// duplicate build key replays exactly the equal run — never
			// the smaller keys skipped before it.
			seenRun := false
			for si < sEnd {
				if si%8 == 0 {
					sTok = engine.LoadLine(t, &S.Buffer, int64(si)*8, 0)
				}
				sk := mem.TupleKey(S.D[si])
				t.Work(1)
				if sk < rk {
					si++
					continue
				}
				if !seenRun {
					siRun = si
					seenRun = true
				}
				if sk > rk {
					break
				}
				local++
				if out != nil {
					dep := rTok
					if sTok > dep {
						dep = sTok
					}
					out.append(t, mem.MakeTuple(mem.TuplePayload(S.D[si]), mem.TuplePayload(R.D[ri])), engine.After(dep, 1))
				}
				si++
			}
			if !seenRun {
				siRun = si // probe side exhausted below rk
			}
			prevKey, havePrev = rk, true
			ri++
			t.Work(1)
		}
		counts[id] = local
	})

	g.AdvanceClock(env.Alloc.SerialCycles())
	for _, c := range counts {
		res.Matches += c
	}
	if opt.Materialize {
		res.Output = make([][]uint64, T)
		for i, w := range outs {
			if w != nil {
				res.Output[i] = w.result()
			}
		}
	}
	res.Phases, res.Stats, res.WallCycles = g.Since(mark)
	return res
}
