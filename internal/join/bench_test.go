package join

import (
	"testing"

	"sgxbench/internal/core"
	"sgxbench/internal/platform"
	"sgxbench/internal/rel"
)

// The RHO join workload (100 MB ⋈ 400 MB scaled) on either engine path.
func benchRHO(b *testing.B, ref bool) {
	const scale = 32
	env := core.NewEnv(core.Options{
		Plat: platform.XeonGold6326().Scaled(scale), Setting: core.SGXDiE, Reference: ref,
	})
	nR := rel.RowsForMB(100) / scale
	nS := rel.RowsForMB(400) / scale
	build, probe := rel.GenFKPair(env.Space, nR, nS, env.DataRegion(), 1234)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := NewRHO().Run(env, build, probe, Options{Threads: 1, Optimized: true}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRHOPerOp(b *testing.B) { benchRHO(b, true) }
func BenchmarkRHOFast(b *testing.B)  { benchRHO(b, false) }
