package join

import (
	"sort"
	"testing"

	"sgxbench/internal/core"
	"sgxbench/internal/engine"
	"sgxbench/internal/platform"
	"sgxbench/internal/rel"
)

// spillEnv builds an Env with an EPC capacity limit (pages; 0 = unlimited).
func spillEnv(s core.Setting, ref bool, epcPages int64) *core.Env {
	return core.NewEnv(core.Options{
		Plat:      platform.XeonGold6326().Scaled(256),
		Setting:   s,
		Reference: ref,
		EPCPages:  epcPages,
	})
}

// epcHalf returns an EPC capacity of half the joined working set — a 2x
// oversubscription for the given input sizes.
func epcHalf(nR, nS int) int64 {
	return int64(nR+nS) * rel.TupleBytes / 4096 / 2
}

// TestGraceCorrectness checks the spill join against the reference count
// across sizes, thread counts, settings, and EPC capacities. The paging
// and spill-staging machinery may never influence values.
func TestGraceCorrectness(t *testing.T) {
	sizes := []struct{ nR, nS int }{
		{100, 400},
		{1000, 4000},
		{5000, 20000},
	}
	for _, sz := range sizes {
		for _, threads := range []int{1, 4} {
			for _, setting := range []core.Setting{core.PlainCPU, core.SGXDiE} {
				for _, pages := range []int64{0, epcHalf(sz.nR, sz.nS)} {
					env := spillEnv(setting, false, pages)
					build, probe := rel.GenFKPair(env.Space, sz.nR, sz.nS, env.DataRegion(), 42)
					want := rel.ReferenceJoinCount(build, probe)
					res, err := NewGrace().Run(env, build, probe, Options{Threads: threads})
					if err != nil {
						t.Fatalf("GRACE: %v", err)
					}
					if res.Matches != want {
						t.Errorf("GRACE nR=%d nS=%d threads=%d %s epc=%d: matches=%d want %d",
							sz.nR, sz.nS, threads, setting, pages, res.Matches, want)
					}
					if res.WallCycles == 0 {
						t.Errorf("GRACE: zero wall cycles")
					}
				}
			}
		}
	}
}

// TestGraceOptimizedCorrectness checks the unroll+reorder variant under
// EPC pressure.
func TestGraceOptimizedCorrectness(t *testing.T) {
	env := spillEnv(core.SGXDiE, false, epcHalf(3000, 12000))
	build, probe := rel.GenFKPair(env.Space, 3000, 12000, env.DataRegion(), 7)
	want := rel.ReferenceJoinCount(build, probe)
	res, err := NewGrace().Run(env, build, probe, Options{Threads: 4, Optimized: true})
	if err != nil {
		t.Fatalf("GRACE: %v", err)
	}
	if res.Matches != want {
		t.Errorf("GRACE optimized: matches=%d want %d", res.Matches, want)
	}
}

// TestGraceMaterialization checks materialized outputs against the
// reference pairs (as multisets), with and without an EPC limit.
func TestGraceMaterialization(t *testing.T) {
	for _, pages := range []int64{0, epcHalf(500, 2000)} {
		env := spillEnv(core.SGXDiE, false, pages)
		build, probe := rel.GenFKPair(env.Space, 500, 2000, env.DataRegion(), 13)
		want := rel.ReferenceJoinPairs(build, probe)
		res, err := NewGrace().Run(env, build, probe, Options{Threads: 4, Materialize: true})
		if err != nil {
			t.Fatalf("GRACE: %v", err)
		}
		var got []uint64
		for _, rows := range res.Output {
			got = append(got, rows...)
		}
		if len(got) != len(want) {
			t.Errorf("epc=%d: materialized %d rows, want %d", pages, len(got), len(want))
			continue
		}
		sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		for i := range got {
			if got[i] != want[i] {
				t.Errorf("epc=%d: row %d = %x, want %x", pages, i, got[i], want[i])
				break
			}
		}
	}
}

// goldenGraceRun executes GRACE under one setting and EPC capacity on
// either engine path (the spill twin of goldenRun).
func goldenGraceRun(t *testing.T, setting core.Setting, ref bool, epcPages int64, opt Options) *Result {
	t.Helper()
	env := spillEnv(setting, ref, epcPages)
	nR := rel.RowsForMB(100) / 256
	nS := rel.RowsForMB(400) / 256
	build, probe := rel.GenFKPair(env.Space, nR, nS, env.DataRegion(), 99)
	res, err := NewGrace().Run(env, build, probe, opt)
	if err != nil {
		t.Fatalf("GRACE: %v", err)
	}
	return res
}

// TestGoldenGraceEquivalence enforces the fast-path invariant on the
// spill join under every setting, with and without EPC pressure: wall
// cycles and full stats — including the fault, eviction and paging-cycle
// counters — must be bit-identical between the per-op reference engine
// and the batched fast engine. Only the DiE setting places data in the
// EPC, so only it may fault under the capacity limit.
func TestGoldenGraceEquivalence(t *testing.T) {
	allSettings := []core.Setting{core.PlainCPU, core.PlainCPUM, core.SGXDoE, core.SGXDiE}
	nR := rel.RowsForMB(100) / 256
	nS := rel.RowsForMB(400) / 256
	for _, setting := range allSettings {
		for _, pages := range []int64{0, epcHalf(nR, nS)} {
			for _, optimized := range []bool{false, true} {
				opt := Options{Threads: 4, Optimized: optimized}
				ref := goldenGraceRun(t, setting, true, pages, opt)
				fast := goldenGraceRun(t, setting, false, pages, opt)
				label := setting.String() + "/GRACE/opt=" + boolStr(optimized)
				if pages > 0 {
					label += "/epc"
				}
				compareGolden(t, label, ref, fast)
				wantFaults := pages > 0 && setting == core.SGXDiE
				if wantFaults && ref.Stats.EPCFaults == 0 {
					t.Errorf("%s: oversubscribed spill join did not fault", label)
				}
				if !wantFaults && ref.Stats.EPCFaults != 0 {
					t.Errorf("%s: unexpected faults %d", label, ref.Stats.EPCFaults)
				}
			}
		}
	}
}

// TestGraceMultiThreadDeterminism: like the other partitioned joins,
// GRACE issues every access from the owning thread over pre-assigned
// ranges (cooperative first pass, round-robin refinement and chunk
// joins), so multi-threaded runs — including fault and eviction counts
// under EPC pressure — must repeat bit-identically.
func TestGraceMultiThreadDeterminism(t *testing.T) {
	run := func() (uint64, uint64, engine.Stats) {
		env := spillEnv(core.SGXDiE, false, epcHalf(2000, 8000))
		build, probe := rel.GenFKPair(env.Space, 2000, 8000, env.DataRegion(), 99)
		res, err := NewGrace().Run(env, build, probe, Options{Threads: 4, Optimized: true})
		if err != nil {
			t.Fatalf("GRACE: %v", err)
		}
		return res.Matches, res.WallCycles, res.Stats
	}
	m0, w0, s0 := run()
	for rep := 1; rep < 3; rep++ {
		m, w, s := run()
		if m != m0 || w != w0 || s != s0 {
			t.Fatalf("rep %d diverged: matches %d vs %d, wall %d vs %d\nstats0: %+v\nstats:  %+v",
				rep, m0, m, w0, w, s0, s)
		}
	}
}

// TestSpillDegradation is the unit-scale version of the bench gate: at 2x
// and 4x EPC oversubscription the spill join must stay under 3x slowdown
// against its fully-resident run, while the naive shared-table join (PHT)
// collapses by more than 10x. Graceful degradation is the point of the
// operator; this pins it against cost-model regressions.
func TestSpillDegradation(t *testing.T) {
	nR := rel.RowsForMB(100) / 512
	nS := rel.RowsForMB(400) / 512
	ws := int64(nR+nS) * rel.TupleBytes / 4096
	wall := func(alg Algorithm, pages int64) uint64 {
		env := spillEnv(core.SGXDiE, false, pages)
		build, probe := rel.GenFKPair(env.Space, nR, nS, env.DataRegion(), 99)
		res, err := alg.Run(env, build, probe, Options{Threads: 4, Optimized: true})
		if err != nil {
			t.Fatalf("%s: %v", alg.Name(), err)
		}
		return res.WallCycles
	}
	graceBase := wall(NewGrace(), 0)
	phtBase := wall(NewPHT(), 0)
	for _, ratio := range []int64{2, 4} {
		pages := ws / ratio
		if g := float64(wall(NewGrace(), pages)) / float64(graceBase); g >= 3.0 {
			t.Errorf("GRACE at %dx oversubscription degraded %.2fx, want < 3x", ratio, g)
		}
		if p := float64(wall(NewPHT(), pages)) / float64(phtBase); p <= 10.0 {
			t.Errorf("PHT at %dx oversubscription degraded only %.2fx, want > 10x (naive collapse)", ratio, p)
		}
	}
}
