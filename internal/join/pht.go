package join

import (
	"sync"

	"sgxbench/internal/core"
	"sgxbench/internal/engine"
	"sgxbench/internal/mem"
	"sgxbench/internal/rel"
)

// PHT is the Parallel Hash Table join (Blanas et al. [5]): all threads
// build one shared hash table over the smaller input, latching buckets,
// then probe it in parallel. It performs no partitioning, so with tables
// exceeding the LLC every bucket access is a random DRAM access — the
// behaviour Fig 4 dissects.
//
// The bucket layout follows TEEBench: one cache line per bucket with a
// small count, a latch, inline tuple slots and an overflow chain. The
// insert pattern "load count, store tuple at bucket[count]" makes the
// store address depend on a just-loaded value; under the SSB mitigation
// that load-to-store-address chain blocks all younger loads, which is why
// the build phase slows down far more (up to ~9x) than the ~3x the pure
// random-access overhead would explain (Sections 4.1-4.2).
type PHT struct{}

// NewPHT returns the PHT algorithm.
func NewPHT() *PHT { return &PHT{} }

// Name returns the paper's name for the algorithm.
func (*PHT) Name() string { return "PHT" }

// bucketBytes is the size of one bucket: two cache lines — a header line
// (latch, count, first slots) and a slot line. A probe therefore chases
// two dependent loads (header, then slots), as in chained tables.
const bucketBytes = 128

// inlineSlots is the number of tuples stored inline before overflowing.
const inlineSlots = 8

// phtTable is the shared hash table. Real values live in the per-bucket
// slices (guarded by striped locks); timing flows through the line-sized
// bucket buffer and the overflow arena.
type phtTable struct {
	bits     uint
	buckets  mem.Buffer // nBuckets cache lines (counts + inline slots)
	overflow mem.Buffer // overflow entry arena (timing only)
	locks    []sync.Mutex
	rows     [][]uint64 // real contents per bucket
	ovCount  []int      // overflow entries appended per thread (timing cursor)
}

const lockStripes = 1024

func newPHTTable(env *core.Env, nBuild, threads int) *phtTable {
	nBuckets := nextPow2((nBuild + 1) / 2)
	ht := &phtTable{
		bits:     log2(nBuckets),
		buckets:  env.Alloc.Raw(nil, "pht.buckets", int64(nBuckets)*bucketBytes),
		overflow: env.Alloc.Raw(nil, "pht.overflow", int64(nBuild+1)*16),
		locks:    make([]sync.Mutex, lockStripes),
		rows:     make([][]uint64, nBuckets),
		ovCount:  make([]int, threads),
	}
	return ht
}

func (h *phtTable) bucketOf(key uint32) int { return int(hashIdx(key, h.bits)) }

// insert adds one tuple: latch the bucket, read its count, store the
// tuple at the count-derived slot, bump the count.
func (h *phtTable) insert(t *engine.Thread, id int, tup uint64, keyTok engine.Tok) {
	b := h.bucketOf(mem.TupleKey(tup))
	hTok := engine.After(keyTok, hashCost)
	base := int64(b) * bucketBytes

	// Latch acquire (uncontended fast path: one CAS on the bucket line).
	latchTok := t.CAS(&h.buckets, base, hTok)
	// Count load: random access, address derived from the key's hash.
	cntTok := t.Load(&h.buckets, base, 4, latchTok)
	h.locks[b&(lockStripes-1)].Lock()
	cnt := len(h.rows[b])
	h.rows[b] = append(h.rows[b], tup)
	h.locks[b&(lockStripes-1)].Unlock()
	slotTok := engine.After(cntTok, 1)
	if cnt < inlineSlots {
		// Tuple store at bucket[count]: store address depends on the
		// loaded count — the SSB-sensitive pattern. Slots beyond the
		// header line live on the bucket's second line.
		slotOff := base + 8 + int64(cnt)*8
		if cnt >= 6 {
			slotOff = base + 64 + int64(cnt-6)*8
		}
		t.Store(&h.buckets, slotOff, 8, slotTok, keyTok)
	} else {
		// Overflow entry: append to the arena and link it.
		pos := h.ovCount[id]
		h.ovCount[id] = pos + 1
		off := int64(id)*16 + int64(pos*16*len(h.ovCount)) // per-thread interleaved arena
		if off+16 > h.overflow.Size {
			off = h.overflow.Size - 16
		}
		t.Store(&h.overflow, off, 8, slotTok, keyTok)
		t.Store(&h.buckets, base+8+int64(inlineSlots)*8, 8, slotTok, 0) // chain pointer
	}
	// Count update + latch release share the bucket line.
	t.Store(&h.buckets, base, 4, hTok, slotTok)
}

// probe returns the number of matches for key and appends output rows.
func (h *phtTable) probe(t *engine.Thread, tup uint64, keyTok engine.Tok, out *outWriter) (uint64, engine.Tok) {
	key := mem.TupleKey(tup)
	b := h.bucketOf(key)
	hTok := engine.After(keyTok, hashCost)
	base := int64(b) * bucketBytes
	// Header line, then the dependent slot line.
	hdrTok := t.Load(&h.buckets, base, 8, hTok)
	lineTok := t.Load(&h.buckets, base+64, 8, engine.After(hdrTok, 1))
	rows := h.rows[b]
	var matches uint64
	scanTok := lineTok
	for i, r := range rows {
		if i > 0 && i%inlineSlots == 0 {
			// Overflow chain: dependent load per spilled entry group.
			scanTok = t.Load(&h.overflow, int64(i%32)*16, 8, scanTok)
		}
		t.Work(1) // key compare
		if mem.TupleKey(r) == key {
			matches++
			if out != nil {
				out.append(t, mem.MakeTuple(mem.TuplePayload(tup), mem.TuplePayload(r)), scanTok)
			}
		}
	}
	return matches, scanTok
}

// Run executes the join.
func (p *PHT) Run(env *core.Env, build, probe *rel.Relation, opt Options) (*Result, error) {
	T := opt.threads()
	g := env.NewGroup(T, opt.NodeOf)
	ht := newPHTTable(env, build.N(), T)
	res := &Result{Algorithm: p.Name()}

	unroll := 1
	if opt.Optimized {
		unroll = 8
	}

	bp := g.Phase("Build", func(t *engine.Thread, id int) {
		lo, hi := chunk(build.N(), T, id)
		if unroll == 1 {
			for i := lo; i < hi; i++ {
				tup, tok := engine.LoadU64(t, build.Tup, i, 0)
				ht.insert(t, id, tup, tok)
			}
			return
		}
		// Optimized build: group the key loads and hash computations of a
		// batch ahead of the count-dependent stores (Section 4.2 applied
		// to PHT, Fig 9 "PHT O"). The load group is one batched run.
		toks := make([]engine.Tok, unroll)
		i := lo
		for ; i+unroll <= hi; i += unroll {
			t.LoadRunToks(&build.Tup.Buffer, build.Tup.Off(i), 8, unroll, 0, toks)
			for j := 0; j < unroll; j++ {
				ht.insert(t, id, build.Tup.D[i+j], toks[j])
			}
		}
		for ; i < hi; i++ {
			tup, tok := engine.LoadU64(t, build.Tup, i, 0)
			ht.insert(t, id, tup, tok)
		}
	})
	res.BuildCycles = bp.WallCycles

	counts := make([]uint64, T)
	outs := make([]*outWriter, T)
	pp := g.Phase("Probe", func(t *engine.Thread, id int) {
		lo, hi := chunk(probe.N(), T, id)
		var out *outWriter
		if opt.Materialize {
			out = newOutWriter(env, id)
			outs[id] = out
		}
		var local uint64
		if unroll == 1 {
			for i := lo; i < hi; i++ {
				tup, tok := engine.LoadU64(t, probe.Tup, i, 0)
				m, _ := ht.probe(t, tup, tok, out)
				local += m
			}
		} else {
			toks := make([]engine.Tok, unroll)
			i := lo
			for ; i+unroll <= hi; i += unroll {
				t.LoadRunToks(&probe.Tup.Buffer, probe.Tup.Off(i), 8, unroll, 0, toks)
				for j := 0; j < unroll; j++ {
					m, _ := ht.probe(t, probe.Tup.D[i+j], toks[j], out)
					local += m
				}
			}
			for ; i < hi; i++ {
				tup, tok := engine.LoadU64(t, probe.Tup, i, 0)
				m, _ := ht.probe(t, tup, tok, out)
				local += m
			}
		}
		counts[id] = local
	})
	res.ProbeCycles = pp.WallCycles

	g.AdvanceClock(env.Alloc.SerialCycles())
	for _, c := range counts {
		res.Matches += c
	}
	if opt.Materialize {
		res.Output = make([][]uint64, T)
		for i, w := range outs {
			if w != nil {
				res.Output[i] = w.result()
			}
		}
	}
	res.Phases = g.Phases()
	res.WallCycles = g.Clock()
	res.Stats = g.TotalStats()
	return res, nil
}
