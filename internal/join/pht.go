package join

import (
	"sgxbench/internal/core"
	"sgxbench/internal/engine"
	"sgxbench/internal/exec"
	"sgxbench/internal/mem"
	"sgxbench/internal/rel"
)

// PHT is the Parallel Hash Table join (Blanas et al. [5]): all threads
// build one shared hash table over the smaller input, latching buckets,
// then probe it in parallel. It performs no partitioning, so with tables
// exceeding the LLC every bucket access is a random DRAM access — the
// behaviour Fig 4 dissects.
//
// The bucket layout follows TEEBench: one cache line per bucket with a
// small count, a latch, inline tuple slots and an overflow chain. The
// insert pattern "load count, store tuple at bucket[count]" makes the
// store address depend on a just-loaded value; under the SSB mitigation
// that load-to-store-address chain blocks all younger loads, which is why
// the build phase slows down far more (up to ~9x) than the ~3x the pure
// random-access overhead would explain (Sections 4.1-4.2).
type PHT struct{}

// NewPHT returns the PHT algorithm.
func NewPHT() *PHT { return &PHT{} }

// Name returns the paper's name for the algorithm.
func (*PHT) Name() string { return "PHT" }

// bucketBytes is the size of one bucket: two cache lines — a header line
// (latch, count, first slots) and a slot line. A probe chases the header
// line and, only when the bucket has spilled past it, the dependent slot
// line — with foreign-key build sides most buckets hold a couple of
// tuples, so the common probe is a single random access.
const bucketBytes = 128

// inlineSlots is the number of tuples stored inline before overflowing.
const inlineSlots = 8

// hdrSlots is the number of inline slots that share the header line
// (latch + count + 6 tuples); slots beyond it live on the bucket's
// second line.
const hdrSlots = 6

// bucketStride is the per-bucket word count of the flat backing array:
// the count word followed by the inline slots, mirroring the simulated
// bucket layout so one probe touches one host cache region instead of
// chasing per-bucket slice headers.
const bucketStride = inlineSlots + 1

// phtTable is the shared hash table. Real values live in the flat
// per-bucket array; timing flows through the line-sized bucket buffer
// and the overflow arena.
//
// The table's contents and every insert's slot index are precomputed in
// input order by preclaim (a partitioned claim pass on the host), so
// the timed build phase only issues simulated accesses — worker threads
// never race on shared host state and the simulated numbers are
// bit-identical at every thread count, which is what lets q3 run
// multi-threaded under the golden gate.
type phtTable struct {
	bits     uint
	buckets  mem.Buffer       // nBuckets x bucketBytes (counts + inline slots)
	overflow mem.Buffer       // overflow entry arena (timing only)
	flat     []uint64         // bucketStride words per bucket: count, slots
	over     map[int][]uint64 // tuples beyond inlineSlots, per bucket
	slots    []int32          // per build-tuple inline slot index (input-order claim)
	ovOrd    []int32          // per build-tuple overflow ordinal; -1 if inline
}

func newPHTTable(env *core.Env, nBuild int) *phtTable {
	nBuckets := nextPow2((nBuild + 1) / 2)
	ht := &phtTable{
		bits:     log2(nBuckets),
		buckets:  env.Alloc.Raw(nil, "pht.buckets", int64(nBuckets)*bucketBytes),
		overflow: env.Alloc.Raw(nil, "pht.overflow", int64(nBuild+1)*16),
		flat:     make([]uint64, nBuckets*bucketStride),
		over:     make(map[int][]uint64),
	}
	return ht
}

func (h *phtTable) bucketOf(key uint32) int { return int(hashIdx(key, h.bits)) }

// preclaim walks the build input in input order and claims each tuple's
// slot: the bucket fill cursor gives the inline slot index, spills past
// inlineSlots get a global overflow ordinal, and the real contents are
// written here, once, on the host. With the claim order fixed by input
// order instead of goroutine arrival, the simulated store addresses of
// the build phase are identical whether one thread or many execute it —
// and single-threaded they match the pre-claim-era numbers exactly.
func (h *phtTable) preclaim(build *rel.Relation) {
	n := build.N()
	h.slots = make([]int32, n)
	h.ovOrd = make([]int32, n)
	ov := 0
	for i := 0; i < n; i++ {
		tup := build.Tup.D[i]
		b := h.bucketOf(mem.TupleKey(tup))
		fb := b * bucketStride
		cnt := int(h.flat[fb])
		h.slots[i] = int32(cnt)
		if cnt < inlineSlots {
			h.flat[fb+1+cnt] = tup
			h.ovOrd[i] = -1
		} else {
			h.over[b] = append(h.over[b], tup)
			h.ovOrd[i] = int32(ov)
			ov++
		}
		h.flat[fb] = uint64(cnt + 1)
	}
}

// slotOff returns the simulated offset of inline slot cnt of the bucket
// at base: the first hdrSlots tuples share the header line, the rest live
// on the bucket's second line.
func slotOff(base int64, cnt int) int64 {
	if cnt < hdrSlots {
		return base + 8 + int64(cnt)*8
	}
	return base + 64 + int64(cnt-hdrSlots)*8
}

// overflowStores charges the arena append of one overflowing insert at
// its preclaimed global ordinal (the bucket-side chain-pointer store is
// issued by the caller). preclaim guarantees ord < nBuild and the arena
// holds nBuild+1 entries, so an out-of-range ordinal is a claim bug.
func (h *phtTable) overflowStores(t *engine.Thread, ord int, slotTok, keyTok engine.Tok) {
	off := int64(ord) * 16
	if off+16 > h.overflow.Size {
		panic("join: overflow ordinal past the preclaimed arena")
	}
	t.Store(&h.overflow, off, 8, slotTok, keyTok)
}

// insert charges build tuple i: latch the bucket, read its count, store
// the tuple at the (preclaimed) count-derived slot, bump the count.
func (h *phtTable) insert(t *engine.Thread, i int, tup uint64, keyTok engine.Tok) {
	b := h.bucketOf(mem.TupleKey(tup))
	hTok := engine.After(keyTok, hashCost)
	base := int64(b) * bucketBytes

	// Latch acquire (uncontended fast path: one CAS on the bucket line).
	latchTok := t.CAS(&h.buckets, base, hTok)
	// Count load: random access, address derived from the key's hash.
	cntTok := t.Load(&h.buckets, base, 4, latchTok)
	cnt := int(h.slots[i])
	slotTok := engine.After(cntTok, 1)
	if cnt < inlineSlots {
		// Tuple store at bucket[count]: store address depends on the
		// loaded count — the SSB-sensitive pattern. Slots beyond the
		// header line live on the bucket's second line.
		t.Store(&h.buckets, slotOff(base, cnt), 8, slotTok, keyTok)
	} else {
		// Overflow entry: append to the arena and link it.
		h.overflowStores(t, int(h.ovOrd[i]), slotTok, keyTok)
		t.Store(&h.buckets, base+8+int64(inlineSlots)*8, 8, slotTok, 0) // chain pointer
	}
	// Count update + latch release share the bucket line.
	t.Store(&h.buckets, base, 4, hTok, slotTok)
}

// phtBatch holds the reusable scratch vectors of the batched build and
// probe loops (one per worker thread).
type phtBatch struct {
	baseOffs  []int64
	hToks     []engine.Tok
	latchToks []engine.Tok
	cntToks   []engine.Tok
	slotToks  []engine.Tok
	sOffs     []int64
	sADeps    []engine.Tok
	sDDeps    []engine.Tok
	off0      []int64
	off1      []int64
	longDeps  []engine.Tok
	longToks  []engine.Tok
	longIdx   []int
	shortOffs []int64
	shortDeps []engine.Tok
	shortToks []engine.Tok
	shortIdx  []int
	scanToks  []engine.Tok
	bkts      []int32
}

func newPHTBatch(u int) *phtBatch {
	return &phtBatch{
		baseOffs:  make([]int64, u),
		hToks:     make([]engine.Tok, u),
		latchToks: make([]engine.Tok, u),
		cntToks:   make([]engine.Tok, u),
		slotToks:  make([]engine.Tok, u),
		sOffs:     make([]int64, u),
		sADeps:    make([]engine.Tok, u),
		sDDeps:    make([]engine.Tok, u),
		off0:      make([]int64, u),
		off1:      make([]int64, u),
		longDeps:  make([]engine.Tok, u),
		longToks:  make([]engine.Tok, u),
		longIdx:   make([]int, u),
		shortOffs: make([]int64, u),
		shortDeps: make([]engine.Tok, u),
		shortToks: make([]engine.Tok, u),
		shortIdx:  make([]int, u),
		scanToks:  make([]engine.Tok, u),
		bkts:      make([]int32, u),
	}
}

// insertBatch is the unroll + reorder build kernel over the batched
// APIs, charging build tuples [i0, i0+len(tups)): the batch's latch CAS
// + count loads are one CASLoad (each element's three micro-accesses
// share the bucket's header line), then the count-addressed tuple
// stores and the count/latch-release stores are dispatched as scatter
// groups.
func (h *phtTable) insertBatch(t *engine.Thread, i0 int, tups []uint64, keyToks []engine.Tok, sc *phtBatch) {
	u := len(tups)
	for j := 0; j < u; j++ {
		b := h.bucketOf(mem.TupleKey(tups[j]))
		sc.baseOffs[j] = int64(b) * bucketBytes
		sc.hToks[j] = engine.After(keyToks[j], hashCost)
	}
	t.CASLoad(&h.buckets, 4, sc.baseOffs[:u], sc.hToks[:u], sc.latchToks[:u], sc.cntToks[:u])
	nS := 0
	for j := 0; j < u; j++ {
		cnt := int(h.slots[i0+j])
		sc.slotToks[j] = engine.After(sc.cntToks[j], 1)
		if cnt < inlineSlots {
			sc.sOffs[nS] = slotOff(sc.baseOffs[j], cnt)
			sc.sADeps[nS] = sc.slotToks[j]
			sc.sDDeps[nS] = keyToks[j]
			nS++
		} else {
			h.overflowStores(t, int(h.ovOrd[i0+j]), sc.slotToks[j], keyToks[j])
			sc.sOffs[nS] = sc.baseOffs[j] + 8 + int64(inlineSlots)*8 // chain pointer
			sc.sADeps[nS] = sc.slotToks[j]
			sc.sDDeps[nS] = 0
			nS++
		}
	}
	t.StoreScatter(&h.buckets, 8, sc.sOffs[:nS], sc.sADeps[:nS], sc.sDDeps[:nS])
	// Count updates + latch releases.
	t.StoreScatter(&h.buckets, 4, sc.baseOffs[:u], sc.hToks[:u], sc.slotToks[:u])
}

// scanBucket compares the probe tuple against bucket b's contents
// (timing of the compares and overflow-chain hops; the header/slot-line
// loads were already charged and produced scanTok).
func (h *phtTable) scanBucket(t *engine.Thread, b int, tup uint64, scanTok engine.Tok, out *outWriter) (uint64, engine.Tok) {
	key := mem.TupleKey(tup)
	fb := b * bucketStride
	n := int(h.flat[fb])
	var ov []uint64
	if n > inlineSlots {
		ov = h.over[b]
	}
	var matches uint64
	for i := 0; i < n; i++ {
		var r uint64
		if i < inlineSlots {
			r = h.flat[fb+1+i]
		} else {
			r = ov[i-inlineSlots]
		}
		if i > 0 && i%inlineSlots == 0 {
			// Overflow chain: dependent load per spilled entry group.
			scanTok = t.Load(&h.overflow, int64(i%32)*16, 8, scanTok)
		}
		t.Work(1) // key compare
		if mem.TupleKey(r) == key {
			matches++
			if out != nil {
				out.append(t, mem.MakeTuple(mem.TuplePayload(tup), mem.TuplePayload(r)), scanTok)
			}
		}
	}
	return matches, scanTok
}

// probe returns the number of matches for key and appends output rows.
func (h *phtTable) probe(t *engine.Thread, tup uint64, keyTok engine.Tok, out *outWriter) (uint64, engine.Tok) {
	b := h.bucketOf(mem.TupleKey(tup))
	hTok := engine.After(keyTok, hashCost)
	base := int64(b) * bucketBytes
	// Header line, then the dependent slot line.
	hdrTok := t.Load(&h.buckets, base, 8, hTok)
	scanTok := t.Load(&h.buckets, base+64, 8, engine.After(hdrTok, 1))
	return h.scanBucket(t, b, tup, scanTok, out)
}

// probeBatch is the unroll + reorder probe kernel over the batched APIs.
// Besides grouping the key loads ahead of the bucket accesses, the
// optimized probe gates the slot-line access on the header's count: the
// header line arrives first anyway, so a bucket that fits its header
// line (the common case for foreign-key builds) costs one random access.
// Buckets that spilled past the header form one header→slot LoadChain,
// the rest one header gather; each tuple's compare loop then runs in
// batch order.
func (h *phtTable) probeBatch(t *engine.Thread, tups []uint64, keyToks []engine.Tok, sc *phtBatch, out *outWriter) uint64 {
	u := len(tups)
	nShort, nLong := 0, 0
	for j := 0; j < u; j++ {
		b := h.bucketOf(mem.TupleKey(tups[j]))
		sc.bkts[j] = int32(b)
		base := int64(b) * bucketBytes
		hTok := engine.After(keyToks[j], hashCost)
		if int(h.flat[b*bucketStride]) > hdrSlots {
			sc.off0[nLong] = base
			sc.off1[nLong] = base + 64
			sc.longDeps[nLong] = hTok
			sc.longIdx[nLong] = j
			nLong++
		} else {
			sc.shortOffs[nShort] = base
			sc.shortDeps[nShort] = hTok
			sc.shortIdx[nShort] = j
			nShort++
		}
	}
	t.LoadGather(&h.buckets, 8, sc.shortOffs[:nShort], sc.shortDeps[:nShort], sc.shortToks[:nShort])
	t.LoadChain(&h.buckets, 8, sc.off0[:nLong], sc.off1[:nLong], 1, sc.longDeps[:nLong], sc.longToks[:nLong])
	for k := 0; k < nShort; k++ {
		sc.scanToks[sc.shortIdx[k]] = sc.shortToks[k]
	}
	for k := 0; k < nLong; k++ {
		sc.scanToks[sc.longIdx[k]] = sc.longToks[k]
	}
	var matches uint64
	for j := 0; j < u; j++ {
		m, _ := h.scanBucket(t, int(sc.bkts[j]), tups[j], sc.scanToks[j], out)
		matches += m
	}
	return matches
}

// Run executes the join.
func (p *PHT) Run(env *core.Env, build, probe *rel.Relation, opt Options) (*Result, error) {
	return p.RunOn(env, env.NewGroup(opt.threads(), opt.NodeOf), build, probe, opt)
}

// RunOn executes the join on an existing thread group (pipeline stage
// composition; see RHO.RunOn). Result timing and stats cover only this
// stage's phases. The shared-table build claims its slots in input
// order (preclaim), so results AND simulated numbers are run-to-run
// deterministic at every thread count.
func (p *PHT) RunOn(env *core.Env, g *exec.Group, build, probe *rel.Relation, opt Options) (*Result, error) {
	T := len(g.Threads)
	mark := g.Mark()
	ht := newPHTTable(env, build.N())
	ht.preclaim(build)
	res := &Result{Algorithm: p.Name()}

	unroll := 1
	if opt.Optimized {
		unroll = 8 // one vector key load per batch
	}

	bp := g.Phase("Build", func(t *engine.Thread, id int) {
		lo, hi := chunk(build.N(), T, id)
		if unroll == 1 {
			for i := lo; i < hi; i++ {
				tup, tok := engine.LoadU64(t, build.Tup, i, 0)
				ht.insert(t, i, tup, tok)
			}
			return
		}
		// Optimized build: group the key loads and hash computations of a
		// batch ahead of the count-dependent stores (Section 4.2 applied
		// to PHT, Fig 9 "PHT O"). The load group is one batched run; the
		// bucket operations go through the CASLoad/StoreScatter batch.
		sc := newPHTBatch(unroll)
		toks := make([]engine.Tok, unroll)
		lineToks := make([]engine.Tok, unroll/8)
		i := lo
		for ; i+unroll <= hi; i += unroll {
			// Vector loads cover the batch's keys 8 lanes at a time.
			t.LoadRunToks(&build.Tup.Buffer, build.Tup.Off(i), 64, unroll/8, 0, lineToks)
			for j := range toks {
				toks[j] = engine.After(lineToks[j/8], 1) // lane extract
			}
			ht.insertBatch(t, i, build.Tup.D[i:i+unroll], toks, sc)
		}
		for ; i < hi; i++ {
			tup, tok := engine.LoadU64(t, build.Tup, i, 0)
			ht.insert(t, i, tup, tok)
		}
	})
	res.BuildCycles = bp.WallCycles

	counts := make([]uint64, T)
	outs := make([]*outWriter, T)
	pp := g.Phase("Probe", func(t *engine.Thread, id int) {
		lo, hi := chunk(probe.N(), T, id)
		var out *outWriter
		if opt.Materialize {
			out = newOutWriter(env, id, opt.outBuf(id))
			outs[id] = out
		}
		var local uint64
		if unroll == 1 {
			for i := lo; i < hi; i++ {
				tup, tok := engine.LoadU64(t, probe.Tup, i, 0)
				m, _ := ht.probe(t, tup, tok, out)
				local += m
			}
		} else {
			sc := newPHTBatch(unroll)
			toks := make([]engine.Tok, unroll)
			lineToks := make([]engine.Tok, unroll/8)
			i := lo
			for ; i+unroll <= hi; i += unroll {
				// Vector loads cover the batch's keys 8 lanes at a time.
				t.LoadRunToks(&probe.Tup.Buffer, probe.Tup.Off(i), 64, unroll/8, 0, lineToks)
				for j := range toks {
					toks[j] = engine.After(lineToks[j/8], 1) // lane extract
				}
				local += ht.probeBatch(t, probe.Tup.D[i:i+unroll], toks, sc, out)
			}
			for ; i < hi; i++ {
				tup, tok := engine.LoadU64(t, probe.Tup, i, 0)
				m, _ := ht.probe(t, tup, tok, out)
				local += m
			}
		}
		counts[id] = local
	})
	res.ProbeCycles = pp.WallCycles

	g.AdvanceClock(env.Alloc.SerialCycles())
	for _, c := range counts {
		res.Matches += c
	}
	if opt.Materialize {
		res.Output = make([][]uint64, T)
		for i, w := range outs {
			if w != nil {
				res.Output[i] = w.result()
			}
		}
	}
	res.Phases, res.Stats, res.WallCycles = g.Since(mark)
	return res, nil
}
