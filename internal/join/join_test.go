package join

import (
	"sort"
	"testing"

	"sgxbench/internal/core"
	"sgxbench/internal/engine"
	"sgxbench/internal/platform"
	"sgxbench/internal/rel"
)

func testEnv(s core.Setting) *core.Env {
	return core.NewEnv(core.Options{
		Plat:    platform.XeonGold6326().Scaled(256),
		Setting: s,
	})
}

// TestJoinCorrectness checks every algorithm against the reference count
// across settings, sizes and thread counts. Results must be identical in
// every execution mode: the timing layer cannot influence values.
func TestJoinCorrectness(t *testing.T) {
	sizes := []struct{ nR, nS int }{
		{100, 400},
		{1000, 4000},
		{5000, 20000},
	}
	for _, alg := range All() {
		for _, sz := range sizes {
			for _, threads := range []int{1, 4} {
				for _, setting := range []core.Setting{core.PlainCPU, core.SGXDiE} {
					env := testEnv(setting)
					build, probe := rel.GenFKPair(env.Space, sz.nR, sz.nS, env.DataRegion(), 42)
					want := rel.ReferenceJoinCount(build, probe)
					res, err := alg.Run(env, build, probe, Options{Threads: threads})
					if err != nil {
						t.Fatalf("%s: %v", alg.Name(), err)
					}
					if res.Matches != want {
						t.Errorf("%s nR=%d nS=%d threads=%d %s: matches=%d want %d",
							alg.Name(), sz.nR, sz.nS, threads, setting, res.Matches, want)
					}
					if res.WallCycles == 0 {
						t.Errorf("%s: zero wall cycles", alg.Name())
					}
				}
			}
		}
	}
}

// TestJoinOptimizedCorrectness checks the unroll+reorder variants return
// the same results.
func TestJoinOptimizedCorrectness(t *testing.T) {
	for _, alg := range All() {
		env := testEnv(core.SGXDiE)
		build, probe := rel.GenFKPair(env.Space, 3000, 12000, env.DataRegion(), 7)
		want := rel.ReferenceJoinCount(build, probe)
		res, err := alg.Run(env, build, probe, Options{Threads: 4, Optimized: true})
		if err != nil {
			t.Fatalf("%s: %v", alg.Name(), err)
		}
		if res.Matches != want {
			t.Errorf("%s optimized: matches=%d want %d", alg.Name(), res.Matches, want)
		}
	}
}

// TestJoinMaterialization checks materialized outputs against the
// reference pairs (as multisets).
func TestJoinMaterialization(t *testing.T) {
	for _, alg := range All() {
		env := testEnv(core.PlainCPU)
		build, probe := rel.GenFKPair(env.Space, 500, 2000, env.DataRegion(), 13)
		want := rel.ReferenceJoinPairs(build, probe)
		res, err := alg.Run(env, build, probe, Options{Threads: 4, Materialize: true})
		if err != nil {
			t.Fatalf("%s: %v", alg.Name(), err)
		}
		var got []uint64
		for _, rows := range res.Output {
			got = append(got, rows...)
		}
		if len(got) != len(want) {
			t.Errorf("%s: materialized %d rows, want %d", alg.Name(), len(got), len(want))
			continue
		}
		sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		for i := range got {
			if got[i] != want[i] {
				t.Errorf("%s: row %d = %x, want %x", alg.Name(), i, got[i], want[i])
				break
			}
		}
	}
}

// TestJoinDeterminism: single-threaded runs must produce identical wall
// cycles on repetition (the simulation is deterministic).
func TestJoinDeterminism(t *testing.T) {
	for _, alg := range All() {
		run := func() uint64 {
			env := testEnv(core.SGXDiE)
			build, probe := rel.GenFKPair(env.Space, 2000, 8000, env.DataRegion(), 99)
			res, err := alg.Run(env, build, probe, Options{Threads: 1})
			if err != nil {
				t.Fatalf("%s: %v", alg.Name(), err)
			}
			return res.WallCycles
		}
		a, b := run(), run()
		if a != b {
			t.Errorf("%s: nondeterministic wall cycles %d vs %d", alg.Name(), a, b)
		}
	}
}

// TestPHTMultiThreadDeterminism: the shared-table build preclaims its
// slot indices in input order, so multi-threaded PHT runs must repeat
// bit-identically — wall cycles AND full stats — in both the plain and
// the optimized kernels. This is what admits q3 (and join.PHT) into the
// multi-threaded golden gate.
func TestPHTMultiThreadDeterminism(t *testing.T) {
	for _, optimized := range []bool{false, true} {
		run := func() (uint64, uint64, engine.Stats) {
			env := testEnv(core.SGXDiE)
			build, probe := rel.GenFKPair(env.Space, 2000, 8000, env.DataRegion(), 99)
			res, err := NewPHT().Run(env, build, probe, Options{Threads: 4, Optimized: optimized})
			if err != nil {
				t.Fatal(err)
			}
			return res.WallCycles, res.Matches, res.Stats
		}
		aw, am, as := run()
		for rep := 0; rep < 3; rep++ {
			bw, bm, bs := run()
			if aw != bw || am != bm || as != bs {
				t.Errorf("optimized=%v rep %d: diverged: wall %d vs %d, matches %d vs %d\nstats a: %+v\nstats b: %+v",
					optimized, rep, aw, bw, am, bm, as, bs)
			}
		}
	}
}
