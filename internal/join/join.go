// Package join implements the five parallel equi-join algorithms the
// paper benchmarks (Section 4):
//
//   - PHT: the no-partitioning Parallel Hash Table join (Blanas et al.),
//     a shared chained hash table built and probed by all threads.
//   - RHO: the Radix Hash Optimized join — two-pass parallel radix
//     partitioning into cache-sized partitions, then in-cache build and
//     probe per partition. The Optimized flag enables the paper's
//     unroll + reorder kernels (Section 4.2).
//   - MWAY: multi-way sort-merge join — parallel chunk sorting, multi-way
//     merge, then a linear merge-join pass.
//   - INL: index nested loop join over a pre-built B+-tree.
//   - CrkJoin: the SGXv1-optimized cracking join (Maliszewski et al.) with
//     its bit-at-a-time in-place partitioning and thread-doubling
//     schedule, included to show that SGXv1 designs do not carry over.
//
// All algorithms return bit-identical match counts (and materialized
// outputs, when requested) in every execution setting: the engine models
// time, never values.
package join

import (
	"fmt"
	"math/bits"

	"sgxbench/internal/core"
	"sgxbench/internal/engine"
	"sgxbench/internal/exec"
	"sgxbench/internal/mem"
	"sgxbench/internal/rel"
)

// Options configures a join run.
type Options struct {
	// Threads is the number of worker threads (default 1).
	Threads int
	// Optimized enables the unroll + reorder kernels (the paper's "O"
	// settings in Figures 6 and 9).
	Optimized bool
	// Materialize writes output tuples (probe payload, build payload)
	// instead of only counting matches (Section 4.4, Fig 12).
	Materialize bool
	// NodeOf optionally pins thread i to a socket (NUMA experiments).
	NodeOf func(i int) int
	// CollectTasks records per-task durations of the in-cache join phase
	// (RHO only), enabling the Fig 11 queue-contention replay.
	CollectTasks bool
	// RadixBits overrides RHO's automatic radix-bit choice (0 = auto).
	// Larger values force smaller partitions — used to create queue
	// contention for the Fig 11 experiment.
	RadixBits int
	// OutBufs, when Materialize is set, provides pre-allocated per-thread
	// output buffers (index = thread id). Materialized rows then land at
	// deterministic simulated addresses instead of dynamically claimed
	// chunks, making multi-threaded materializing runs reproducible for
	// exact stats comparison (pipelines, golden gates). A buffer that
	// fills up falls back to chunk claims for the excess rows.
	OutBufs []*mem.U64Buf
}

// outBuf returns thread id's pre-allocated output buffer, if any.
func (o Options) outBuf(id int) *mem.U64Buf {
	if id < len(o.OutBufs) {
		return o.OutBufs[id]
	}
	return nil
}

func (o Options) threads() int {
	if o.Threads < 1 {
		return 1
	}
	return o.Threads
}

// Result reports a completed join.
type Result struct {
	Algorithm  string
	Matches    uint64
	WallCycles uint64
	// Phases is the barrier-phase breakdown (names depend on algorithm;
	// RHO: Hist1, Copy1, Hist2, Copy2, Join).
	Phases []exec.PhaseStats
	// BuildCycles/ProbeCycles split the in-cache join phase of RHO and
	// CrkJoin (aggregated across threads), and the build/probe phases of
	// PHT; used for the Fig 4/6 breakdowns.
	BuildCycles uint64
	ProbeCycles uint64
	// TaskCycles are per-partition join task durations when
	// Options.CollectTasks is set.
	TaskCycles []uint64
	// Output holds materialized output rows per thread (when requested).
	Output [][]uint64
	// Stats aggregates engine counters over all phases.
	Stats engine.Stats
}

// Throughput returns the paper's join throughput metric: the sum of the
// input cardinalities divided by the wall time.
func (r *Result) Throughput(env *core.Env, nR, nS int) float64 {
	return env.Throughput(nR+nS, r.WallCycles)
}

// Algorithm is one join implementation.
type Algorithm interface {
	Name() string
	Run(env *core.Env, build, probe *rel.Relation, opt Options) (*Result, error)
}

// ByName returns the algorithm with the given name: one of the paper's
// five (All) or the oversubscription-aware spill join (GRACE).
func ByName(name string) (Algorithm, error) {
	for _, a := range append(All(), NewGrace()) {
		if a.Name() == name {
			return a, nil
		}
	}
	return nil, fmt.Errorf("join: unknown algorithm %q", name)
}

// All returns the five algorithms in the paper's Figure 3 order. The
// spill-partitioned GRACE join is deliberately not part of this list —
// the Figure 1/3 shape tests quantify exactly these five — and is
// reachable via ByName and its own tests instead.
func All() []Algorithm {
	return []Algorithm{NewPHT(), NewRHO(), NewMWAY(), NewINL(), NewCrk()}
}

// hashKey is the join-key hash used by the hash-based algorithms:
// a multiplicative (Fibonacci) hash, cheap and well-distributed.
func hashKey(k uint32) uint32 { return k * 2654435761 }

// hashIdx maps a key to a table of 2^bits buckets using the *high* bits
// of the multiplicative hash. Using high bits is essential inside radix
// partitions: the low key bits are constant within a partition (they are
// the radix digits), so low-bit indexing would collapse every partition
// into a couple of buckets.
func hashIdx(k uint32, bits uint) uint32 { return hashKey(k) >> (32 - bits) }

// log2 returns floor(log2(n)) for a power-of-two n.
func log2(n int) uint {
	if n <= 1 {
		return 0
	}
	return uint(bits.Len(uint(n)) - 1)
}

// hashCost is the dataflow latency from key to hash/bucket index.
const hashCost = 2

// nextPow2 returns the next power of two >= n (minimum 1).
func nextPow2(n int) int {
	if n <= 1 {
		return 1
	}
	return 1 << bits.Len(uint(n-1))
}

// chunk splits n items over workers; returns [lo, hi) for worker id.
func chunk(n, workers, id int) (int, int) {
	per := n / workers
	rem := n % workers
	lo := id*per + min(id, rem)
	hi := lo + per
	if id < rem {
		hi++
	}
	return lo, hi
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
