package join

import (
	"fmt"

	"sgxbench/internal/core"
	"sgxbench/internal/engine"
	"sgxbench/internal/exec"
	"sgxbench/internal/kernels"
	"sgxbench/internal/mem"
	"sgxbench/internal/rel"
)

// Grace is the spill-partitioned hash join for EPC oversubscription: a
// multi-pass radix partitioning (GRACE-style) that detects when the build
// side exceeds the enclave's per-thread EPC budget and keeps partitioning
// — recursively, one radix-digit window per pass — until every chunk's
// join working set (build tuples, chained hash entries, bucket heads) is
// enclave-resident, then joins chunk by chunk with the same in-cache
// kernel RHO uses.
//
// Under oversubscription (Env.EPCPages > 0) the staging buffers — the
// ping-pong partition outputs, histograms and cursors — are deliberately
// allocated in untrusted memory: spilled partitions leave the enclave
// through sequential streaming writes, the access pattern SGX tolerates,
// instead of churning the paged EPC. This is the Polars-SGX2 buffer-aware
// design: only the inputs' one streaming read and the budget-sized chunk
// scratch (hash table of the partition being joined) touch EPC pages, so
// the operator faults roughly once per input page and then runs resident
// — the graceful half of the degradation gate, against PHT's shared-table
// random access as the collapsing naive baseline. Without an EPC limit
// everything stays in the data region and the chunk target falls back to
// RHO's L2 target, making the fully-resident run a competitive baseline
// for the degradation ratio.
//
// The chunk sizing is budget-driven: enough radix bits that the average
// build chunk's hash-table working set (tuples, chained entries, bucket
// heads — about 4 bytes of table state per build byte) stays well under
// the thread's EPC share, leaving CLOCK enough slack to protect the
// chunk against the streaming probe traffic.
type Grace struct{}

// NewGrace returns the spill-partitioned join.
func NewGrace() *Grace { return &Grace{} }

// Name returns the algorithm name.
func (*Grace) Name() string { return "GRACE" }

// spillChunkTarget returns the target build-chunk size in bytes: the L2
// target when the EPC is unlimited, else an eighth of the thread's EPC
// share — the chunk join keeps roughly 4 bytes of table state per build
// byte resident plus the probe stream's window, so an eighth leaves a
// comfortable margin for CLOCK to protect the chunk against the stream.
func spillChunkTarget(env *core.Env, threads int) int64 {
	target := env.Plat.L2.SizeBytes / 4
	if target < 512 {
		target = 512
	}
	if env.EPCPages > 0 {
		per := env.EPCPages * 4096 / int64(threads)
		if b := per / 8; b < target {
			target = b
		}
		if target < 1024 {
			target = 1024
		}
	}
	return target
}

// spillPassBits plans the radix passes: total bits to reach the chunk
// target, split into TLB-friendly passes of at most 8 bits (the staging
// buffers live outside the paged EPC, so fanout is not budget-capped).
func spillPassBits(env *core.Env, nBuild, threads int) []uint {
	target := spillChunkTarget(env, threads)
	var total uint
	for int64(nBuild)*rel.TupleBytes>>total > target && total < 20 {
		total++
	}
	if total < 2 {
		total = 2
	}
	const maxPass = 8
	var passes []uint
	for total > 0 {
		b := total
		if b > maxPass {
			b = maxPass
		}
		passes = append(passes, b)
		total -= b
	}
	return passes
}

// graceState bundles the ping-pong partitioning buffers for one input.
type graceState struct {
	in   *mem.U64Buf    // input tuples (read-only)
	bufs [2]*mem.U64Buf // ping-pong pass outputs
	cur  *mem.U64Buf    // buffer holding the current level (nil: in)

	start []int // current level's partition starts (len P+1)
}

func newGraceState(env *core.Env, in *rel.Relation) *graceState {
	n := in.N()
	reg := env.SpillRegion()
	return &graceState{
		in: in.Tup,
		bufs: [2]*mem.U64Buf{
			env.Space.AllocU64(in.Name+".sp0", n, reg),
			env.Space.AllocU64(in.Name+".sp1", n, reg),
		},
		start: []int{0, n},
	}
}

// src returns the buffer holding the current level.
func (st *graceState) src() *mem.U64Buf {
	if st.cur == nil {
		return st.in
	}
	return st.cur
}

// Run executes the join.
func (gr *Grace) Run(env *core.Env, build, probe *rel.Relation, opt Options) (*Result, error) {
	return gr.RunOn(env, env.NewGroup(opt.threads(), opt.NodeOf), build, probe, opt)
}

// RunOn executes the join on an existing thread group. The pass plan is
// budget-driven (spillPassBits); Options.RadixBits, when set, overrides
// the total bit count but keeps the budget-driven per-pass split.
func (gr *Grace) RunOn(env *core.Env, g *exec.Group, build, probe *rel.Relation, opt Options) (*Result, error) {
	T := len(g.Threads)
	mark := g.Mark()
	passes := spillPassBits(env, build.N(), T)
	if opt.RadixBits > 0 {
		per := passes[0]
		passes = nil
		for total := uint(opt.RadixBits); total > 0; {
			b := total
			if b > per {
				b = per
			}
			passes = append(passes, b)
			total -= b
		}
	}
	res := &Result{Algorithm: gr.Name()}

	unroll := 1
	avx := false
	if opt.Optimized {
		unroll = kernels.AVXRegBudget
		avx = true
	}
	spills := make([]*mem.U32Buf, T)
	wcs := make([]*mem.U64Buf, T)
	maxFan := 1
	for _, b := range passes {
		if f := 1 << b; f > maxFan {
			maxFan = f
		}
	}
	for i := range spills {
		spills[i] = env.Space.AllocU32("spill", 64, env.DataRegion())
		if opt.Optimized {
			wcs[i] = env.Space.AllocU64("wc", maxFan*8, env.SpillRegion())
		}
	}
	histCfg := func(id int, shift, bits uint) kernels.HistConfig {
		return kernels.HistConfig{Shift: shift, Bits: bits, Unroll: unroll, AVX: avx, Spill: spills[id]}
	}
	scatCfg := func(id int, shift, bits uint) kernels.ScatterConfig {
		u := 1
		if opt.Optimized {
			u = 8
		}
		return kernels.ScatterConfig{Shift: shift, Bits: bits, Unroll: u, WC: wcs[id]}
	}

	R := newGraceState(env, build)
	S := newGraceState(env, probe)

	// When the inputs live in the paged EPC, drain them once into the
	// untrusted staging buffers through sequential streaming (non-temporal)
	// writes: every subsequent partitioning pass then reads untrusted
	// memory, so each input page faults exactly once, independent of the
	// pass count. Without the drain, the histogram and scatter phases
	// would each re-fault the whole input per pass.
	if env.EPCPages > 0 && env.DataRegion().Kind == mem.EPC {
		for _, st := range []*graceState{R, S} {
			src, dst := st.in, st.bufs[1]
			g.Phase("Spill.Drain", func(t *engine.Thread, id int) {
				lo, hi := chunk(src.Len(), T, id)
				if hi <= lo {
					return
				}
				tok := t.LoadRun(&src.Buffer, src.Off(lo), 8, hi-lo, 0)
				copy(dst.D[lo:hi], src.D[lo:hi])
				lines := int((int64(hi-lo)*8 + 63) / 64)
				t.StoreLinesNT(&dst.Buffer, dst.Off(lo), lines, 0, tok)
			})
			st.cur = dst
		}
	}

	// --- Recursive partitioning: one radix-digit window per pass ---
	// Pass 1 is cooperative (all threads histogram and scatter slices of
	// the whole input, Kim-style); deeper passes process the previous
	// level's partitions round-robin, each refined by one thread.
	shift := uint(0)
	for pass, bk := range passes {
		fan := 1 << bk
		for _, st := range []*graceState{R, S} {
			p := len(st.start) - 1 // current partition count
			name := st.in.Name
			dst := st.bufs[pass&1]
			if pass == 0 {
				h := env.Space.AllocU32(name+fmt.Sprintf(".h%d", pass+1), T*fan, env.SpillRegion())
				cur := env.Space.AllocU32(name+fmt.Sprintf(".c%d", pass+1), T*fan, env.SpillRegion())
				src := st.src()
				g.Phase(fmt.Sprintf("Spill.Hist%d", pass+1), func(t *engine.Thread, id int) {
					lo, hi := chunk(src.Len(), T, id)
					kernels.Histogram(t, src, lo, hi, h, id*fan, histCfg(id, shift, bk))
				})
				start := make([]int, fan+1)
				g.Phase(fmt.Sprintf("Spill.Copy%d", pass+1), func(t *engine.Thread, id int) {
					// Cooperative prefix: per partition, one strided gather
					// of the T per-thread counts, then the thread's own
					// cursor store (the Kim et al. scheme RHO uses).
					offs := make([]int64, T)
					base := 0
					for p2 := 0; p2 < fan; p2++ {
						for tt := 0; tt < T; tt++ {
							offs[tt] = h.Off(tt*fan + p2)
						}
						t.LoadGather(&h.Buffer, 4, offs, nil, nil)
						cum := base
						for tt := 0; tt < T; tt++ {
							if tt == id {
								engine.StoreU32(t, cur, id*fan+p2, uint32(cum), 0, 0)
							}
							cum += int(h.D[tt*fan+p2])
						}
						if id == 0 {
							start[p2] = base
						}
						base = cum
					}
					if id == 0 {
						start[fan] = base
					}
					lo, hi := chunk(src.Len(), T, id)
					kernels.Scatter(t, src, lo, hi, dst, cur, id*fan, scatCfg(id, shift, bk))
				})
				st.start = start
			} else {
				h := env.Space.AllocU32(name+fmt.Sprintf(".h%d", pass+1), p*fan, env.SpillRegion())
				cur := env.Space.AllocU32(name+fmt.Sprintf(".c%d", pass+1), p*fan, env.SpillRegion())
				src := st.src()
				prev := st.start
				start := make([]int, p*fan+1)
				g.Phase(fmt.Sprintf("Spill.Hist%d", pass+1), func(t *engine.Thread, id int) {
					for pp := id; pp < p; pp += T {
						kernels.Histogram(t, src, prev[pp], prev[pp+1], h, pp*fan, histCfg(id, shift, bk))
					}
				})
				g.Phase(fmt.Sprintf("Spill.Copy%d", pass+1), func(t *engine.Thread, id int) {
					for pp := id; pp < p; pp += T {
						// Local prefix over the partition's histogram row:
						// batched sequential read, then the cursor writes.
						tok := t.LoadRun(&h.Buffer, h.Off(pp*fan), 4, fan, 0)
						cum := uint32(prev[pp])
						for j := 0; j < fan; j++ {
							v := h.D[pp*fan+j]
							cur.D[pp*fan+j] = cum
							start[pp*fan+j] = int(cum)
							cum += v
						}
						t.StoreRun(&cur.Buffer, cur.Off(pp*fan), 4, fan, 0, engine.After(tok, 1))
						kernels.Scatter(t, src, prev[pp], prev[pp+1], dst, cur, pp*fan, scatCfg(id, shift, bk))
					}
				})
				start[p*fan] = prev[p]
				st.start = start
			}
			st.cur = dst
		}
		shift += bk
	}

	// --- In-cache join per final chunk, round-robin ---
	P := len(R.start) - 1
	maxPart := 0
	for p := 0; p < P; p++ {
		if c := R.start[p+1] - R.start[p]; c > maxPart {
			maxPart = c
		}
	}
	scratches := make([]*scratch, T)
	for i := range scratches {
		scratches[i] = newScratch(env, maxPart)
	}
	counts := make([]uint64, T)
	buildCy := make([]uint64, T)
	probeCy := make([]uint64, T)
	outs := make([]*outWriter, T)
	Rout, Sout := R.src(), S.src()
	g.Phase("Spill.Join", func(t *engine.Thread, id int) {
		var out *outWriter
		if opt.Materialize {
			out = newOutWriter(env, id, opt.outBuf(id))
			outs[id] = out
		}
		var local uint64
		for p := id; p < P; p += T {
			local += joinPartition(t,
				Rout, R.start[p], R.start[p+1],
				Sout, S.start[p], S.start[p+1],
				scratches[id], opt.Optimized, out, &buildCy[id], &probeCy[id])
		}
		counts[id] = local
	})

	g.AdvanceClock(env.Alloc.SerialCycles())
	for id := 0; id < T; id++ {
		res.Matches += counts[id]
		res.BuildCycles += buildCy[id]
		res.ProbeCycles += probeCy[id]
	}
	if opt.Materialize {
		res.Output = make([][]uint64, T)
		for i, w := range outs {
			if w != nil {
				res.Output[i] = w.result()
			}
		}
	}
	res.Phases, res.Stats, res.WallCycles = g.Since(mark)
	return res, nil
}
