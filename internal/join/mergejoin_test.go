package join

import (
	stdsort "sort"
	"testing"

	"sgxbench/internal/core"
	"sgxbench/internal/mem"
	"sgxbench/internal/platform"
	sortop "sgxbench/internal/sort"
)

// mkSorted allocates a sorted table from the given (key, payload) rows.
func mkSorted(env *core.Env, name string, rows []uint64) *mem.U64Buf {
	b := env.Space.AllocU64(name, len(rows), env.DataRegion())
	copy(b.D, rows)
	stdsort.Slice(b.D, func(i, j int) bool { return sortop.TupLess(b.D[i], b.D[j]) })
	return b
}

// refMergeCount is the oracle join cardinality over raw rows.
func refMergeCount(r, s []uint64) uint64 {
	m := map[uint32]uint64{}
	for _, v := range r {
		m[mem.TupleKey(v)]++
	}
	var total uint64
	for _, v := range s {
		total += m[mem.TupleKey(v)]
	}
	return total
}

// TestMergeJoinSortedDuplicates pins the exported contract: duplicate
// keys on either side produce the full cross product of the equal-key
// runs (a duplicated build key replays the matching probe run), and
// rows carrying the maximum representable key are joined too.
func TestMergeJoinSortedDuplicates(t *testing.T) {
	env := core.NewEnv(core.Options{Plat: platform.XeonGold6326().Scaled(256), Setting: core.SGXDiE})
	top := ^uint32(0)
	r := []uint64{
		mem.MakeTuple(3, 1), mem.MakeTuple(3, 2), mem.MakeTuple(3, 3), // triple build key
		mem.MakeTuple(5, 4), mem.MakeTuple(7, 5), mem.MakeTuple(7, 6), // double build key
		mem.MakeTuple(top, 7), mem.MakeTuple(top, 8), // max-key duplicates
	}
	s := []uint64{
		mem.MakeTuple(1, 10), mem.MakeTuple(3, 11), mem.MakeTuple(3, 12), // double probe run
		mem.MakeTuple(5, 13), mem.MakeTuple(6, 14), mem.MakeTuple(7, 15),
		mem.MakeTuple(top, 16), mem.MakeTuple(top, 17),
	}
	want := refMergeCount(r, s) // 3*2 + 1 + 2*1 + 2*2 = 13
	for _, threads := range []int{1, 2, 4} {
		R := mkSorted(env, "R", r)
		S := mkSorted(env, "S", s)
		g := env.NewGroup(threads, nil)
		res := MergeJoinSorted(env, g, R, len(r), S, len(s), 8, Options{})
		if res.Matches != want {
			t.Errorf("T=%d: matches=%d want %d", threads, res.Matches, want)
		}
	}
}

// TestMergeJoinSortedMaterializedDuplicates checks the materialized rows
// against the pair oracle under duplication.
func TestMergeJoinSortedMaterializedDuplicates(t *testing.T) {
	env := core.NewEnv(core.Options{Plat: platform.XeonGold6326().Scaled(256), Setting: core.PlainCPU})
	r := []uint64{mem.MakeTuple(2, 1), mem.MakeTuple(2, 2), mem.MakeTuple(4, 3)}
	s := []uint64{mem.MakeTuple(2, 20), mem.MakeTuple(2, 21), mem.MakeTuple(4, 22)}
	R := mkSorted(env, "R", r)
	S := mkSorted(env, "S", s)
	g := env.NewGroup(1, nil)
	res := MergeJoinSorted(env, g, R, len(r), S, len(s), 5, Options{Materialize: true})
	var got []uint64
	for _, rows := range res.Output {
		got = append(got, rows...)
	}
	want := map[uint64]int{}
	for _, rv := range r {
		for _, sv := range s {
			if mem.TupleKey(rv) == mem.TupleKey(sv) {
				want[mem.MakeTuple(mem.TuplePayload(sv), mem.TuplePayload(rv))]++
			}
		}
	}
	if len(got) != 5 {
		t.Fatalf("materialized %d rows, want 5", len(got))
	}
	for _, row := range got {
		if want[row] == 0 {
			t.Fatalf("unexpected output row %#x", row)
		}
		want[row]--
	}
}
