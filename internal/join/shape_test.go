package join

import (
	"testing"

	"sgxbench/internal/core"
	"sgxbench/internal/platform"
	"sgxbench/internal/rel"
)

// runThroughput runs one algorithm at the Fig 3 workload (100 MB + 400 MB
// tables, scaled) and returns throughput in rows/s.
func runThroughput(t *testing.T, alg Algorithm, setting core.Setting, threads int, optimized bool, scale int64) float64 {
	t.Helper()
	plat := platform.XeonGold6326().Scaled(scale)
	env := core.NewEnv(core.Options{Plat: plat, Setting: setting})
	nR := rel.RowsForMB(100) / int(scale)
	nS := rel.RowsForMB(400) / int(scale)
	build, probe := rel.GenFKPair(env.Space, nR, nS, env.DataRegion(), 1234)
	res, err := alg.Run(env, build, probe, Options{Threads: threads, Optimized: optimized})
	if err != nil {
		t.Fatalf("%s: %v", alg.Name(), err)
	}
	if res.Matches == 0 {
		t.Fatalf("%s: no matches", alg.Name())
	}
	return res.Throughput(env, nR, nS)
}

// TestShapeFig3 encodes the Fig 3 shape: every join is slower in the
// enclave; the hash joins are hit hardest; CrkJoin is slowest overall
// with every other algorithm at least 2x faster in-enclave.
func TestShapeFig3(t *testing.T) {
	if testing.Short() {
		t.Skip("shape test is slow")
	}
	const scale = 128
	const threads = 16
	type row struct {
		name        string
		plain, die  float64
		dieOverhead float64
	}
	var rows []row
	for _, alg := range All() {
		plain := runThroughput(t, alg, core.PlainCPU, threads, false, scale)
		die := runThroughput(t, alg, core.SGXDiE, threads, false, scale)
		rows = append(rows, row{alg.Name(), plain, die, plain / die})
		t.Logf("%-8s plain=%8.1f M rows/s  DiE=%8.1f M rows/s  slowdown=%.2fx",
			alg.Name(), plain/1e6, die/1e6, plain/die)
	}
	get := func(name string) row {
		for _, r := range rows {
			if r.name == name {
				return r
			}
		}
		t.Fatalf("missing %s", name)
		return row{}
	}
	// Every join slower inside the enclave.
	for _, r := range rows {
		if r.die >= r.plain {
			t.Errorf("%s: DiE (%.0f) should be slower than plain (%.0f)", r.name, r.die, r.plain)
		}
	}
	// CrkJoin slowest in-enclave; every other algorithm clearly faster
	// (the paper reports 3x..12x; the simulator compresses the PHT/INL
	// gap somewhat — see EXPERIMENTS.md — but the ordering must hold).
	crk := get("CrkJoin")
	for _, r := range rows {
		if r.name == "CrkJoin" {
			continue
		}
		if r.die < 1.3*crk.die {
			t.Errorf("%s DiE (%.0f M/s) should be >= 1.3x CrkJoin (%.0f M/s)", r.name, r.die/1e6, crk.die/1e6)
		}
	}
	rho := get("RHO")
	if rho.die < 5*crk.die {
		t.Errorf("RHO DiE (%.0f M/s) should be >= 5x CrkJoin DiE (%.0f M/s) (paper: 12x)", rho.die/1e6, crk.die/1e6)
	}
	// RHO is the fastest plain-CPU join.
	for _, r := range rows {
		if r.name != "RHO" && r.plain > rho.plain {
			t.Errorf("RHO should be fastest plain join, but %s (%.0f) > RHO (%.0f)", r.name, r.plain, rho.plain)
		}
	}
	// Hash joins suffer larger relative slowdowns than the non-hash
	// algorithms MWAY and CrkJoin ("The hash joins have the highest
	// slowdowns", Fig 3); PHT, whose build is unpartitioned, is hit
	// hardest of all.
	for _, h := range []string{"PHT", "RHO"} {
		for _, o := range []string{"MWAY", "CrkJoin"} {
			if get(h).dieOverhead <= get(o).dieOverhead {
				t.Errorf("%s slowdown (%.2fx) should exceed %s slowdown (%.2fx)",
					h, get(h).dieOverhead, o, get(o).dieOverhead)
			}
		}
	}
	if get("PHT").dieOverhead < 2 || get("PHT").dieOverhead > 6 {
		t.Errorf("PHT slowdown %.2fx outside [2, 6]", get("PHT").dieOverhead)
	}
}

// TestShapeFig1 encodes the Fig 1 headline: CrkJoin-in-enclave is an
// order of magnitude slower than RHO-in-enclave, and the optimized RHO
// in the enclave comes within ~15% of optimized plain-CPU RHO.
func TestShapeFig1(t *testing.T) {
	if testing.Short() {
		t.Skip("shape test is slow")
	}
	const scale = 128
	const threads = 16
	crkDie := runThroughput(t, NewCrk(), core.SGXDiE, threads, false, scale)
	rhoDie := runThroughput(t, NewRHO(), core.SGXDiE, threads, false, scale)
	rhoDieO := runThroughput(t, NewRHO(), core.SGXDiE, threads, true, scale)
	rhoPlainO := runThroughput(t, NewRHO(), core.PlainCPU, threads, true, scale)
	t.Logf("CrkJoin DiE=%.1f  RHO DiE=%.1f  RHO+O DiE=%.1f  RHO+O plain=%.1f (M rows/s)",
		crkDie/1e6, rhoDie/1e6, rhoDieO/1e6, rhoPlainO/1e6)
	if rhoDie < 3*crkDie {
		t.Errorf("RHO DiE (%.0f) should be >= 3x CrkJoin DiE (%.0f)", rhoDie/1e6, crkDie/1e6)
	}
	if rhoDieO <= rhoDie {
		t.Errorf("optimization should improve RHO DiE (%.0f -> %.0f)", rhoDie/1e6, rhoDieO/1e6)
	}
	if rhoDieO < 0.75*rhoPlainO {
		t.Errorf("optimized RHO DiE (%.0f) should reach >=75%% of plain (%.0f)", rhoDieO/1e6, rhoPlainO/1e6)
	}
}
