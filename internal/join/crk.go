package join

import (
	"fmt"

	"sgxbench/internal/core"
	"sgxbench/internal/engine"
	"sgxbench/internal/mem"
	"sgxbench/internal/rel"
)

// Crk is CrkJoin (Maliszewski et al. [26]), the join designed for SGXv1's
// bottlenecks: it radix-partitions both tables **in place** with a
// cracking-style two-pointer pass, one bit at a time, to avoid random
// memory accesses and enclave paging. Partitioning starts single-threaded
// and doubles the number of threads with each bit until all cores are
// busy; partitions are then joined with the same in-cache method as RHO.
//
// On SGXv2 this design is counterproductive (Figures 1 and 3): EPC paging
// is gone, so the serial early partitioning passes waste the machine's
// parallelism while the sequential access pattern no longer buys
// anything. The implementation is configured with the platform's L2 size,
// as the CrkJoin authors prescribe.
type Crk struct{}

// NewCrk returns the CrkJoin algorithm.
func NewCrk() *Crk { return &Crk{} }

// Name returns the paper's name for the algorithm.
func (*Crk) Name() string { return "CrkJoin" }

// crackBit partitions tup[lo:hi) in place by the given key bit using the
// cracking two-pointer pass: pointers move from both ends towards each
// other, swapping out-of-place tuples. Returns the split point. Loads
// stream from both ends (the prefetcher tracks both directions); swap
// stores go to the just-read positions, so addresses are known early and
// the SSB mitigation has little to bite on — CrkJoin's *relative*
// slowdown in enclaves is small even though its absolute speed is poor.
func crackBit(t *engine.Thread, tup *mem.U64Buf, lo, hi int, bit uint) int {
	// Per-element work: CrkJoin hashes every key before extracting the
	// crack bit (its partitioning operates on hash bits so that skewed
	// keys still split evenly) and maintains the cracker index bounds.
	const crackWork = 4
	// The advance-or-swap branch tests a uniformly random bit, so it
	// mispredicts roughly every other element — a dominant cost of
	// cracking-style partitioning that vectorized radix copies avoid.
	const mispredict = 14
	prevBit := uint32(0)
	charge := func(b uint32) {
		t.Work(crackWork)
		if b != prevBit {
			t.Work(mispredict)
			prevBit = b
		}
	}
	i, j := lo, hi-1
	for i <= j {
		vi, tokI := engine.LoadU64(t, tup, i, 0)
		charge(mem.TupleKey(vi) >> bit & 1)
		if mem.TupleKey(vi)>>bit&1 == 0 {
			i++
			continue
		}
		for i <= j {
			vj, tokJ := engine.LoadU64(t, tup, j, 0)
			charge(mem.TupleKey(vj) >> bit & 1)
			if mem.TupleKey(vj)>>bit&1 == 1 {
				j--
				continue
			}
			// Swap: store each tuple at the other cursor position.
			engine.StoreU64(t, tup, i, vj, 0, tokJ)
			engine.StoreU64(t, tup, j, vi, 0, tokI)
			i++
			j--
			break
		}
	}
	return i
}

// Run executes the join.
func (c *Crk) Run(env *core.Env, build, probe *rel.Relation, opt Options) (*Result, error) {
	T := opt.threads()
	g := env.NewGroup(T, opt.NodeOf)
	res := &Result{Algorithm: c.Name()}

	// CrkJoin cracks in place: work on clones so callers keep their
	// inputs (setup, untimed).
	R := rel.Clone(env.Space, build, "R.crk", env.DataRegion())
	S := rel.Clone(env.Space, probe, "S.crk", env.DataRegion())

	// Total bits: partitions sized for L2, as configured by the authors.
	b1, b2 := RadixBits(env, build.N())
	bits := b1 + b2
	if opt.RadixBits > 0 {
		bits = uint(opt.RadixBits)
	}
	nPart := 1 << bits

	// Partition boundaries per table: bounds[k] holds 2^level+1 offsets.
	type table struct {
		t      *rel.Relation
		bounds []int
	}
	tabs := [2]*table{{t: R, bounds: []int{0, R.N()}}, {t: S, bounds: []int{0, S.N()}}}

	for level := uint(0); level < bits; level++ {
		active := 1 << level
		if active > T {
			active = T
		}
		bit := bits - 1 - level
		segs := 1 << level
		next := [2][]int{make([]int, 2*segs+1), make([]int, 2*segs+1)}
		g.Phase(fmt.Sprintf("Crack-%d", level), func(t *engine.Thread, id int) {
			if id >= active {
				return
			}
			for ti, tb := range tabs {
				for s := id; s < segs; s += active {
					lo, hi := tb.bounds[s], tb.bounds[s+1]
					mid := crackBit(t, tb.t.Tup, lo, hi, bit)
					next[ti][2*s] = lo
					next[ti][2*s+1] = mid
				}
			}
		})
		for ti, tb := range tabs {
			next[ti][2*segs] = tb.t.N()
			tb.bounds = next[ti]
		}
	}

	// In-cache join per partition, all threads.
	maxPart := 0
	for _, tb := range tabs[:1] {
		for p := 0; p < nPart; p++ {
			if l := tb.bounds[p+1] - tb.bounds[p]; l > maxPart {
				maxPart = l
			}
		}
	}
	scratches := make([]*scratch, T)
	for i := range scratches {
		scratches[i] = newScratch(env, maxPart)
	}
	counts := make([]uint64, T)
	buildCy := make([]uint64, T)
	probeCy := make([]uint64, T)
	outs := make([]*outWriter, T)
	g.Phase("Join", func(t *engine.Thread, id int) {
		var out *outWriter
		if opt.Materialize {
			out = newOutWriter(env, id, opt.outBuf(id))
			outs[id] = out
		}
		var local uint64
		for p := id; p < nPart; p += T {
			local += joinPartition(t,
				R.Tup, tabs[0].bounds[p], tabs[0].bounds[p+1],
				S.Tup, tabs[1].bounds[p], tabs[1].bounds[p+1],
				scratches[id], opt.Optimized, out, &buildCy[id], &probeCy[id])
		}
		counts[id] = local
	})

	g.AdvanceClock(env.Alloc.SerialCycles())
	for id := 0; id < T; id++ {
		res.Matches += counts[id]
		res.BuildCycles += buildCy[id]
		res.ProbeCycles += probeCy[id]
	}
	if opt.Materialize {
		res.Output = make([][]uint64, T)
		for i, w := range outs {
			if w != nil {
				res.Output[i] = w.result()
			}
		}
	}
	res.Phases = g.Phases()
	res.WallCycles = g.Clock()
	res.Stats = g.TotalStats()
	return res, nil
}
