package platform

import (
	"fmt"
	"strings"
)

// Table1 renders the platform in the layout of the paper's Table 1
// ("Hardware used for our benchmarks").
func (p *Platform) Table1() string {
	var b strings.Builder
	row := func(k, v string) { fmt.Fprintf(&b, "%-32s %s\n", k, v) }
	row("Processor Name", p.Name)
	row("Sockets", fmt.Sprintf("%d", p.Sockets))
	row("Cores per socket", fmt.Sprintf("%d", p.CoresPerSocket))
	row("Threads per socket", fmt.Sprintf("%d (HT disabled)", p.CoresPerSocket))
	row("Base Frequency", fmt.Sprintf("%.1f GHz", p.FreqHz/1e9))
	row("L1d Cache (per core)", fmtBytes(p.L1D.SizeBytes))
	row("L2 Cache (per core)", fmtBytes(p.L2.SizeBytes))
	row("L3 Cache (per socket)", fmtBytes(p.L3.SizeBytes))
	row("Memory (per socket)", fmtBytes(p.DRAMPerSocket))
	row("EPC size (per socket)", fmtBytes(p.EPCPerSocket))
	if p.Scale != 1 {
		row("Simulation scale", fmt.Sprintf("1/%d of full size", p.Scale))
	}
	return b.String()
}

func fmtBytes(n int64) string {
	switch {
	case n >= 1<<30 && n%(1<<30) == 0:
		return fmt.Sprintf("%d GB", n>>30)
	case n >= 1<<20 && n%(1<<20) == 0:
		return fmt.Sprintf("%d MB", n>>20)
	case n >= 1<<10:
		return fmt.Sprintf("%.1f KB", float64(n)/1024)
	default:
		return fmt.Sprintf("%d B", n)
	}
}
