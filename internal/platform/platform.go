// Package platform describes the simulated benchmark hardware.
//
// The default platform mirrors Table 1 of the paper: a dual-socket Intel
// Xeon Gold 6326 (Ice Lake SP, 3rd Gen Xeon Scalable) with SGXv2 support,
// 16 cores per socket at a fixed 2.9 GHz, 8 DDR4-3200 channels per socket
// and 64 GB EPC per socket.
//
// All latency constants are expressed in core cycles; bandwidths in bytes
// per cycle. A Platform can be proportionally scaled down with Scaled so
// that simulated experiments use smaller data sets while keeping the same
// relative cache/TLB residency behaviour.
package platform

import "fmt"

// CacheGeom describes one set-associative cache level.
type CacheGeom struct {
	SizeBytes int64 // total capacity
	Ways      int   // associativity
	LineBytes int64 // cache line size
}

// Sets returns the number of sets implied by the geometry.
func (g CacheGeom) Sets() int64 {
	s := g.SizeBytes / (int64(g.Ways) * g.LineBytes)
	if s < 1 {
		return 1
	}
	return s
}

// TLBGeom describes one TLB level (4 KiB pages).
type TLBGeom struct {
	Entries int
	Ways    int
}

// Platform is the full hardware description used by the timing engine.
// All code paths treat a Platform as immutable after construction.
type Platform struct {
	Name string

	Sockets        int
	CoresPerSocket int
	FreqHz         float64 // fixed frequency (Turbo Boost disabled, Table 1)

	PageBytes int64

	L1D CacheGeom // per core
	L2  CacheGeom // per core
	L3  CacheGeom // per socket, shared

	DTLB TLBGeom // per core, 4 KiB pages
	STLB TLBGeom // per core, unified second level

	// Latencies (cycles).
	LatL1        uint64 // L1d load-to-use
	LatL2        uint64
	LatL3        uint64
	LatDRAM      uint64 // local socket row-buffer-miss latency
	LatRemote    uint64 // additional cycles for a remote-socket DRAM access
	LatSTLB      uint64 // added when dTLB misses but STLB hits
	LatPageWalk  uint64 // base page-walk cost on STLB miss (plus PTE memory accesses)
	PTEAccesses  int    // dependent PTE loads charged through the hierarchy per walk
	MLPSlots     int    // line-fill buffers: outstanding load misses per core
	StoreBufSize int    // store buffer entries per core

	// Bandwidths (bytes per core-cycle).
	CoreStreamBW   float64 // single-core streaming bandwidth
	SocketDRAMBW   float64 // aggregate DRAM bandwidth per socket
	UPIBW          float64 // aggregate cross-socket UPI bandwidth (all links)
	EPCStreamTax   float64 // multiplicative streaming slowdown for EPC data (TME-MK)
	RemoteStreamBW float64 // single-core streaming bandwidth to the remote socket

	// Memory sizes.
	DRAMPerSocket int64
	EPCPerSocket  int64

	// Scale is the proportional scale-down factor applied by Scaled
	// (1 for the full-size platform). Experiments divide their data
	// sizes by Scale so that residency behaviour is preserved.
	Scale int64
}

// XeonGold6326 returns the paper's benchmark machine (Table 1).
func XeonGold6326() *Platform {
	return &Platform{
		Name:           "2x Intel Xeon Gold 6326 (Ice Lake SP, SGXv2)",
		Sockets:        2,
		CoresPerSocket: 16,
		FreqHz:         2.9e9,
		PageBytes:      4096,

		L1D: CacheGeom{SizeBytes: 48 << 10, Ways: 12, LineBytes: 64},
		L2:  CacheGeom{SizeBytes: 1280 << 10, Ways: 20, LineBytes: 64},
		L3:  CacheGeom{SizeBytes: 24 << 20, Ways: 12, LineBytes: 64},

		DTLB: TLBGeom{Entries: 64, Ways: 4},
		STLB: TLBGeom{Entries: 1536, Ways: 12},

		LatL1:        4,
		LatL2:        14,
		LatL3:        42,
		LatDRAM:      260, // ~90 ns at 2.9 GHz
		LatRemote:    180, // ~62 ns extra over UPI
		LatSTLB:      7,
		LatPageWalk:  24,
		PTEAccesses:  2,
		MLPSlots:     10, // line fill buffers on Ice Lake (per load port group)
		StoreBufSize: 56,

		// DDR4-3200 x 8 channels = 204.8 GB/s peak; ~70 B/cycle at 2.9 GHz.
		// Sustained scan throughput tops out near 100 GiB/s (Fig 14), which
		// the engine reproduces via the per-core and per-socket caps below.
		CoreStreamBW:   3.1,  // ~9 GB/s per core
		SocketDRAMBW:   38.0, // ~110 GB/s sustained per socket
		UPIBW:          23.0, // ~67.2 GB/s over 3 UPI links (paper, §5.4)
		EPCStreamTax:   0.97, // Fig 13: -3% outside cache
		RemoteStreamBW: 2.4,

		DRAMPerSocket: 256 << 30,
		EPCPerSocket:  64 << 30,

		Scale: 1,
	}
}

// Scaled returns a copy of p with the capacity quantities that data sizes
// are measured against (L2, L3, STLB coverage, DRAM/EPC sizes) divided by
// f. Latencies, bandwidth per cycle — and, importantly, the *inner-loop*
// working-set capacities L1d and the first-level dTLB — stay (mostly)
// fixed: structures like radix-partition cursors, bucket lines and spill
// slots do not shrink with the data, so scaling L1 with the data would
// make kernels thrash unphysically. L1 and the dTLB are floored at 8 KiB
// and 16 entries. An experiment that divides its data sizes by the same f
// observes the same L2/L3/TLB residency transitions as the full-size
// platform. f must be a positive power of two.
func (p *Platform) Scaled(f int64) *Platform {
	if f <= 0 || f&(f-1) != 0 {
		panic(fmt.Sprintf("platform: scale factor %d must be a positive power of two", f))
	}
	q := *p
	q.Scale = p.Scale * f
	q.L1D.SizeBytes = maxI64(p.L1D.SizeBytes/f, minI64(p.L1D.SizeBytes, 8<<10))
	q.L2.SizeBytes = maxI64(p.L2.SizeBytes/f, 2*q.L1D.SizeBytes)
	q.L3.SizeBytes = maxI64(p.L3.SizeBytes/f, 2*q.L2.SizeBytes)
	q.DTLB.Entries = maxInt(p.DTLB.Entries/int(f), minInt(p.DTLB.Entries, 16))
	q.STLB.Entries = maxInt(p.STLB.Entries/int(f), 2*q.DTLB.Entries)
	q.DRAMPerSocket = maxI64(p.DRAMPerSocket/f, 1<<20)
	q.EPCPerSocket = maxI64(p.EPCPerSocket/f, 1<<20)
	return &q
}

func minI64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// ScaleBytes converts a full-size experiment byte count to the platform's
// scale (rounding up to at least one cache line).
func (p *Platform) ScaleBytes(full int64) int64 {
	b := full / p.Scale
	if b < p.L1D.LineBytes {
		b = p.L1D.LineBytes
	}
	return b
}

// Cores returns the total number of hardware threads (HT is disabled,
// Table 1, so threads == cores).
func (p *Platform) Cores() int { return p.Sockets * p.CoresPerSocket }

// CyclesToSeconds converts engine cycles to wall-clock seconds.
func (p *Platform) CyclesToSeconds(c uint64) float64 { return float64(c) / p.FreqHz }

// SecondsToCycles converts seconds to cycles.
func (p *Platform) SecondsToCycles(s float64) uint64 { return uint64(s * p.FreqHz) }

// Validate performs basic sanity checks and returns an error describing
// the first violated constraint.
func (p *Platform) Validate() error {
	switch {
	case p.Sockets < 1:
		return fmt.Errorf("platform: need at least one socket, got %d", p.Sockets)
	case p.CoresPerSocket < 1:
		return fmt.Errorf("platform: need at least one core per socket, got %d", p.CoresPerSocket)
	case p.FreqHz <= 0:
		return fmt.Errorf("platform: frequency must be positive, got %g", p.FreqHz)
	case p.PageBytes <= 0 || p.PageBytes&(p.PageBytes-1) != 0:
		return fmt.Errorf("platform: page size must be a power of two, got %d", p.PageBytes)
	case p.L1D.LineBytes != p.L2.LineBytes || p.L2.LineBytes != p.L3.LineBytes:
		return fmt.Errorf("platform: cache line sizes must agree")
	case p.MLPSlots < 1:
		return fmt.Errorf("platform: MLPSlots must be >= 1, got %d", p.MLPSlots)
	case p.CoreStreamBW <= 0 || p.SocketDRAMBW <= 0 || p.UPIBW <= 0:
		return fmt.Errorf("platform: bandwidths must be positive")
	case p.EPCStreamTax <= 0 || p.EPCStreamTax > 1:
		return fmt.Errorf("platform: EPCStreamTax must be in (0,1], got %g", p.EPCStreamTax)
	}
	for _, g := range []CacheGeom{p.L1D, p.L2, p.L3} {
		if g.SizeBytes < int64(g.Ways)*g.LineBytes {
			return fmt.Errorf("platform: cache smaller than one set (%d bytes, %d ways)", g.SizeBytes, g.Ways)
		}
	}
	return nil
}

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
