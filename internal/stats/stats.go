// Package stats provides the small numeric helpers used by the benchmark
// harness: mean/stddev over repetitions and human-readable formatting of
// throughputs and sizes, matching the units the paper reports
// (10^6 rows/s for joins, GiB/s for scans, ms for query runtimes).
package stats

import (
	"fmt"
	"math"
)

// Summary holds the aggregate of repeated measurements.
type Summary struct {
	N      int
	Mean   float64
	StdDev float64
	Min    float64
	Max    float64
}

// Summarize computes mean, sample standard deviation, min and max.
// It returns a zero Summary for an empty slice.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := Summary{N: len(xs), Min: xs[0], Max: xs[0]}
	var sum float64
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(len(xs))
	if len(xs) > 1 {
		var ss float64
		for _, x := range xs {
			d := x - s.Mean
			ss += d * d
		}
		s.StdDev = math.Sqrt(ss / float64(len(xs)-1))
	}
	return s
}

// MRowsPerSec formats a rows-per-second figure in the paper's join unit,
// 10^6 rows/s.
func MRowsPerSec(rowsPerSec float64) string {
	return fmt.Sprintf("%.1f M rows/s", rowsPerSec/1e6)
}

// GiBPerSec formats a bytes-per-second figure in GiB/s (scan unit).
func GiBPerSec(bytesPerSec float64) string {
	return fmt.Sprintf("%.1f GiB/s", bytesPerSec/(1<<30))
}

// Millis formats seconds as milliseconds (query runtime unit).
func Millis(seconds float64) string { return fmt.Sprintf("%.2f ms", seconds*1e3) }

// Ratio formats a relative value as a fraction of a baseline.
func Ratio(v, baseline float64) string {
	if baseline == 0 {
		return "n/a"
	}
	return fmt.Sprintf("%.2f", v/baseline)
}

// Percent formats v/baseline as a percentage string.
func Percent(v, baseline float64) string {
	if baseline == 0 {
		return "n/a"
	}
	return fmt.Sprintf("%.0f %%", 100*v/baseline)
}

// HumanBytes formats a byte count with binary units.
func HumanBytes(n int64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.1f GiB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.1f MiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1f KiB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%d B", n)
	}
}
