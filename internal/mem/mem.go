// Package mem provides the simulated physical address space used by the
// timing engine.
//
// Allocations are tagged with a NUMA node and with whether they live in
// the Enclave Page Cache (EPC, the protected memory region of SGX) or in
// untrusted memory. The engine uses these tags to charge memory-encryption
// and EPCM-check costs. Typed buffers pair a simulated address range with
// a real Go slice so that algorithms compute correct results while the
// engine accounts time: the timing layer never influences the values.
package mem

import (
	"fmt"
	"sync"
)

// Kind distinguishes protected (EPC) from untrusted memory.
type Kind int

const (
	// Untrusted is ordinary host memory outside the PRM.
	Untrusted Kind = iota
	// EPC is protected enclave memory inside the Processor Reserved Memory.
	EPC
)

func (k Kind) String() string {
	if k == EPC {
		return "EPC"
	}
	return "untrusted"
}

// Region describes where an allocation lives.
type Region struct {
	Node int  // NUMA node (socket)
	Kind Kind // EPC or untrusted
}

// Buffer is a simulated allocation: a contiguous simulated address range
// plus its placement. Buffers are handed to engine access methods; typed
// wrappers below add real backing data.
type Buffer struct {
	Base uint64
	Size int64
	Reg  Region
	Name string
}

// End returns the first address past the buffer.
func (b *Buffer) End() uint64 { return b.Base + uint64(b.Size) }

// Contains reports whether the buffer covers [off, off+n).
func (b *Buffer) Contains(off, n int64) bool {
	return off >= 0 && n >= 0 && off+n <= b.Size
}

// Slice returns a Buffer aliasing the byte range [off, off+n) of b.
// The returned buffer shares b's placement; it is used to hand a worker
// thread its chunk of a larger allocation.
func (b *Buffer) Slice(off, n int64) Buffer {
	if !b.Contains(off, n) {
		panic(fmt.Sprintf("mem: slice [%d,%d) out of buffer %q of size %d", off, off+n, b.Name, b.Size))
	}
	return Buffer{Base: b.Base + uint64(off), Size: n, Reg: b.Reg, Name: b.Name}
}

// Space is a simulated physical address space with a bump allocator per
// (node, kind) region. Each region occupies a disjoint 2^44-byte address
// window so that placement can be recovered from an address if needed.
type Space struct {
	mu    sync.Mutex
	next  map[Region]uint64
	used  map[Region]int64
	nodes int
}

// NewSpace returns an empty address space for a machine with the given
// number of NUMA nodes.
func NewSpace(nodes int) *Space {
	if nodes < 1 {
		panic("mem: need at least one node")
	}
	return &Space{
		next:  make(map[Region]uint64),
		used:  make(map[Region]int64),
		nodes: nodes,
	}
}

const regionWindow = 1 << 44

func (s *Space) base(r Region) uint64 {
	idx := uint64(r.Node)*2 + uint64(r.Kind)
	return (idx + 1) * regionWindow
}

// Alloc reserves n bytes in region r, aligned to 4 KiB pages, and returns
// the buffer handle. The name is used in diagnostics only.
func (s *Space) Alloc(name string, n int64, r Region) Buffer {
	if n < 0 {
		panic(fmt.Sprintf("mem: negative allocation %d for %q", n, name))
	}
	if r.Node < 0 || r.Node >= s.nodes {
		panic(fmt.Sprintf("mem: node %d out of range for %q", r.Node, name))
	}
	const align = 4096
	sz := (n + align - 1) &^ (align - 1)
	if sz == 0 {
		sz = align
	}
	s.mu.Lock()
	off, ok := s.next[r]
	if !ok {
		off = 0
	}
	base := s.base(r) + off
	s.next[r] = off + uint64(sz)
	s.used[r] += sz
	if s.next[r] >= regionWindow {
		s.mu.Unlock()
		panic(fmt.Sprintf("mem: region %+v exhausted allocating %q", r, name))
	}
	s.mu.Unlock()
	return Buffer{Base: base, Size: n, Reg: r, Name: name}
}

// Used reports the bytes allocated in region r (page-rounded).
func (s *Space) Used(r Region) int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.used[r]
}

// U64Buf is a buffer of 64-bit words with real backing data. Join tuples
// are stored as one word each: key in the low 32 bits, payload in the high
// 32 bits, matching the paper's 8-byte <key, value> rows.
type U64Buf struct {
	Buffer
	D []uint64
}

// AllocU64 allocates an n-word typed buffer.
func (s *Space) AllocU64(name string, n int, r Region) *U64Buf {
	return &U64Buf{Buffer: s.Alloc(name, int64(n)*8, r), D: make([]uint64, n)}
}

// Off returns the byte offset of word i.
func (b *U64Buf) Off(i int) int64 { return int64(i) * 8 }

// Len returns the number of words.
func (b *U64Buf) Len() int { return len(b.D) }

// View returns a typed buffer aliasing the first n words of b: same
// simulated addresses, same backing data. Pipelines use it to hand a
// downstream operator the filled prefix of a pre-allocated intermediate.
func (b *U64Buf) View(n int) *U64Buf {
	return &U64Buf{Buffer: b.Buffer.Slice(0, int64(n)*8), D: b.D[:n]}
}

// U32Buf is a buffer of 32-bit words with real backing data.
type U32Buf struct {
	Buffer
	D []uint32
}

// AllocU32 allocates an n-word typed buffer.
func (s *Space) AllocU32(name string, n int, r Region) *U32Buf {
	return &U32Buf{Buffer: s.Alloc(name, int64(n)*4, r), D: make([]uint32, n)}
}

// Off returns the byte offset of word i.
func (b *U32Buf) Off(i int) int64 { return int64(i) * 4 }

// Len returns the number of words.
func (b *U32Buf) Len() int { return len(b.D) }

// U8Buf is a byte-column buffer (used by the SIMD scans).
type U8Buf struct {
	Buffer
	D []uint8
}

// AllocU8 allocates an n-byte typed buffer.
func (s *Space) AllocU8(name string, n int, r Region) *U8Buf {
	return &U8Buf{Buffer: s.Alloc(name, int64(n), r), D: make([]uint8, n)}
}

// Len returns the number of bytes.
func (b *U8Buf) Len() int { return len(b.D) }

// Raw allocates an untyped (no backing data) buffer, used by
// micro-benchmarks that only need addresses, not values — e.g. the random
// read/write benchmark over up-to-32 GB arrays (Fig 5), where backing the
// array with real memory would be wasteful.
func (s *Space) Raw(name string, n int64, r Region) Buffer {
	return s.Alloc(name, n, r)
}

// MakeTuple packs a (key, payload) pair into the 8-byte row format.
func MakeTuple(key, payload uint32) uint64 { return uint64(key) | uint64(payload)<<32 }

// TupleKey extracts the 32-bit join key of a packed row.
func TupleKey(t uint64) uint32 { return uint32(t) }

// TuplePayload extracts the 32-bit payload of a packed row.
func TuplePayload(t uint64) uint32 { return uint32(t >> 32) }
