// Package scan implements the vectorized column scans of Section 5:
// byte-column range scans producing either a packed bit vector or
// materialized row indexes, modeled after AVX-512 SIMD scans [34, 42].
//
// Go has no SIMD intrinsics, so the kernels use SWAR — SIMD within a
// register — processing 8 column bytes per 64-bit word with branchless
// byte-parallel comparisons. The timing engine charges vector-width
// (cache-line) loads, matching the memory behaviour of AVX-512 scans,
// which is what Figures 13-16 measure.
package scan

// hiBits has the high bit of every byte lane set.
const hiBits = 0x8080808080808080

// broadcast replicates a byte into all 8 lanes.
func broadcast(b uint8) uint64 { return uint64(b) * 0x0101010101010101 }

// bytesGE returns a mask with the high bit of each lane set where the
// corresponding byte of x is >= the byte of y (unsigned).
//
// Derivation: with bit 7 of x forced on and bit 7 of y forced off, the
// per-lane subtraction (x|H)-(y&^H) never borrows across lanes and its
// bit 7 equals "low7(x) >= low7(y)". Combining with the true bit-7s of x
// and y yields the full unsigned comparison:
//
//	ge = (x7 & ^y7) | (^(x7^y7) & bit7((x|H)-(y&^H)))
func bytesGE(x, y uint64) uint64 {
	z := (x | hiBits) - (y &^ hiBits)
	x7 := x & hiBits
	y7 := y & hiBits
	return (x7 &^ y7) | (^(x7 ^ y7) & z & hiBits)
}

// rangeMask returns the lane mask (high bit per lane) of bytes v with
// lo <= v <= hi.
func rangeMask(word, lo, hi uint64) uint64 {
	return bytesGE(word, lo) & bytesGE(hi, word)
}

// packMask compresses a lane mask (bits 7, 15, ..., 63) into the low 8
// bits, least-significant lane first.
func packMask(m uint64) uint8 {
	// Multiply gathers the 8 spaced bits into the top byte.
	return uint8(((m >> 7) * 0x0102040810204080) >> 56)
}
