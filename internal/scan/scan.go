package scan

import (
	"encoding/binary"
	"math/bits"

	"sgxbench/internal/core"
	"sgxbench/internal/engine"
	"sgxbench/internal/exec"
	"sgxbench/internal/mem"
	"sgxbench/internal/rng"
)

// vectorWork is the charged compute per 64-byte vector: one AVX-512
// load feeds two byte compares, a mask AND and a mask store.
const vectorWork = 2

// blockLines is the number of 64-byte lines charged per bulk engine call
// in the scan hot loops: one call per 2 KiB of column keeps the batched
// fast path amortized while staying well inside a thread chunk.
const blockLines = 32

// Predicate is the scan filter: lo <= value <= hi (the paper's range
// filter with lower and upper bound).
type Predicate struct {
	Lo, Hi uint8
}

// Selectivity returns the fraction of a uniform byte column the
// predicate selects.
func (p Predicate) Selectivity() float64 {
	if p.Hi < p.Lo {
		return 0
	}
	return float64(int(p.Hi)-int(p.Lo)+1) / 256
}

// Result reports a completed scan.
type Result struct {
	WallCycles uint64
	Bytes      int64 // input bytes scanned (per pass x passes)
	Matches    uint64
	Phases     []exec.PhaseStats
	// Stats aggregates engine counters over this scan's phases.
	Stats engine.Stats
	// Bits holds the packed result bit vector (bit i set = byte i
	// matched) when Options.RowIDs is false.
	Bits *mem.U64Buf
	// IDs holds the materialized row indexes when Options.RowIDs is true.
	// Each worker thread writes its matches at its chunk base, so the ids
	// form per-thread runs with gaps between them; IDRuns describes them.
	IDs *mem.U64Buf
	// IDRuns lists each thread's contiguous run of materialized row ids
	// inside IDs (RowIDs mode): downstream pipeline stages consume the
	// filter output per-thread, exactly as the threads produced it.
	IDRuns []IDRun
}

// IDRun is one thread's contiguous run of materialized row ids.
type IDRun struct {
	Start, Count int
}

// Throughput returns the paper's scan metric: input bytes per second.
func (r *Result) Throughput(env *core.Env) float64 {
	return env.Bandwidth(r.Bytes, r.WallCycles)
}

// GenColumn fills col with uniform random bytes (deterministic in seed).
func GenColumn(col *mem.U8Buf, seed uint64) {
	r := rng.NewXorShift(rng.Mix(seed))
	i := 0
	for ; i+8 <= len(col.D); i += 8 {
		v := r.Next()
		for j := 0; j < 8; j++ {
			col.D[i+j] = uint8(v >> (8 * j))
		}
	}
	for ; i < len(col.D); i++ {
		col.D[i] = uint8(r.Next())
	}
}

// lineMask computes the 64-bit match mask of one 64-byte line: bit j set
// when col.D[off+j] is inside [loB, hiB] (broadcast bounds). The eight
// word extractions use constant indexes into a re-sliced line so the
// compiler drops the per-word bounds checks.
func lineMask(d []uint8, off int, loB, hiB uint64) uint64 {
	ln := d[off : off+64 : off+64]
	acc := uint64(packMask(rangeMask(binary.LittleEndian.Uint64(ln[0:8]), loB, hiB)))
	acc |= uint64(packMask(rangeMask(binary.LittleEndian.Uint64(ln[8:16]), loB, hiB))) << 8
	acc |= uint64(packMask(rangeMask(binary.LittleEndian.Uint64(ln[16:24]), loB, hiB))) << 16
	acc |= uint64(packMask(rangeMask(binary.LittleEndian.Uint64(ln[24:32]), loB, hiB))) << 24
	acc |= uint64(packMask(rangeMask(binary.LittleEndian.Uint64(ln[32:40]), loB, hiB))) << 32
	acc |= uint64(packMask(rangeMask(binary.LittleEndian.Uint64(ln[40:48]), loB, hiB))) << 40
	acc |= uint64(packMask(rangeMask(binary.LittleEndian.Uint64(ln[48:56]), loB, hiB))) << 48
	acc |= uint64(packMask(rangeMask(binary.LittleEndian.Uint64(ln[56:64]), loB, hiB))) << 56
	return acc
}

// bitVectorChunk scans col[lo:hi) (64-byte aligned lo; hi unaligned only
// in the final chunk) into the bit vector out (one bit per input byte),
// returning the match count. The hot loop is batched: one LoadLines call
// charges a whole block of sequential vector loads and one StoreRun
// charges the block's packed result words — the read-heavy, write-light
// pattern of Section 5.1 expressed through the engine's bulk APIs.
func bitVectorChunk(t *engine.Thread, col *mem.U8Buf, lo, hi int, out *mem.U64Buf, pred Predicate) uint64 {
	loB, hiB := broadcast(pred.Lo), broadcast(pred.Hi)
	var matches uint64
	nLines := (hi - lo) / 64
	for li := 0; li < nLines; {
		blk := nLines - li
		if blk > blockLines {
			blk = blockLines
		}
		base := lo + li*64
		t.LoadLines(&col.Buffer, int64(base), blk, 0)
		t.Work(vectorWork * uint64(blk))
		for l := 0; l < blk; l++ {
			acc := lineMask(col.D, base+l*64, loB, hiB)
			out.D[(base+l*64)/64] = acc
			matches += uint64(bits.OnesCount64(acc))
		}
		t.StoreRun(&out.Buffer, out.Off(base/64), 8, blk, 0, 0)
		li += blk
	}
	// Scalar tail: the final partial line (last chunk only).
	tail := lo + nLines*64
	if tail < hi {
		engine.LoadLine(t, &col.Buffer, int64(tail), 0)
		t.Work(vectorWork)
		var acc uint64
		for i := tail; i < hi; i++ {
			if col.D[i] >= pred.Lo && col.D[i] <= pred.Hi {
				acc |= 1 << uint(i-tail)
				matches++
			}
			t.Work(1)
		}
		engine.StoreU64(t, out, tail/64, acc, 0, 0)
	}
	return matches
}

// rowIDChunk scans col[lo:hi) and materializes the 64-bit row indexes of
// matching values into out[outBase...], returning the match count. Each
// match writes 8 bytes, so the write rate is 8x the selectivity — the
// knob Fig 15 turns. Row ids leave the vcompressq registers with masked
// 64-byte non-temporal vector stores, so the engine charges the output
// *lines* each block's compressed ids touch — streaming straight to DRAM
// without polluting the caches — not a scalar cached store per id (a
// block boundary inside a line re-touches it, exactly like the real
// unaligned vector store).
func rowIDChunk(t *engine.Thread, col *mem.U8Buf, lo, hi int, out *mem.U64Buf, outBase int, pred Predicate) uint64 {
	loB, hiB := broadcast(pred.Lo), broadcast(pred.Hi)
	pos := outBase
	nLines := (hi - lo) / 64
	for li := 0; li < nLines; {
		blk := nLines - li
		if blk > blockLines {
			blk = blockLines
		}
		base := lo + li*64
		t.LoadLines(&col.Buffer, int64(base), blk, 0)
		t.Work(vectorWork * uint64(blk))
		runStart := pos
		for l := 0; l < blk; l++ {
			lineOff := base + l*64
			acc := lineMask(col.D, lineOff, loB, hiB)
			if acc == 0 {
				continue
			}
			// One vcompressq per 8-lane group with any match (SWAR count
			// of nonzero mask bytes), then one emission loop over the set
			// bits — same charged work as a per-word dispatch, without the
			// per-word control flow.
			nzw := acc | acc>>1 | acc>>2 | acc>>3 | acc>>4 | acc>>5 | acc>>6 | acc>>7
			t.Work(uint64(bits.OnesCount64(nzw & broadcast(1))))
			for m := acc; m != 0; m &= m - 1 {
				out.D[pos] = uint64(lineOff + bits.TrailingZeros64(m))
				pos++
			}
		}
		if pos > runStart {
			lineLo := out.Off(runStart) &^ 63
			lineHi := (out.Off(pos) + 63) &^ 63
			if lineHi > out.Size {
				lineHi = out.Size
			}
			t.StoreLinesNT(&out.Buffer, lineLo, int((lineHi-lineLo)/64), 0, 0)
		}
		li += blk
	}
	// Scalar tail.
	for i := lo + nLines*64; i < hi; i++ {
		if col.D[i] >= pred.Lo && col.D[i] <= pred.Hi {
			engine.StoreU64(t, out, pos, uint64(i), 0, 0)
			pos++
		}
		t.Work(1)
	}
	return uint64(pos - outBase)
}

// Options configures a scan run.
type Options struct {
	Threads int
	Pred    Predicate
	// RowIDs selects index materialization instead of a bit vector.
	RowIDs bool
	// Passes repeats the scan (cache warm-up measurements, Fig 13).
	Passes int
	// NodeOf pins thread i to a socket (cross-NUMA scans, Fig 16).
	NodeOf func(i int) int
	// Bits / IDs, when non-nil, are used as the (pre-allocated) result
	// buffers instead of allocating fresh ones — the paper assumes scan
	// result memory is pre-allocated, and reuse keeps repeated benchmark
	// runs from re-faulting fresh pages. IDs needs col.Len()+64 words,
	// Bits col.Len()/64+2.
	Bits *mem.U64Buf
	IDs  *mem.U64Buf
}

func (o Options) threads() int {
	if o.Threads < 1 {
		return 1
	}
	return o.Threads
}

func (o Options) passes() int {
	if o.Passes < 1 {
		return 1
	}
	return o.Passes
}

// Run executes a multi-threaded scan of col under env.
func Run(env *core.Env, col *mem.U8Buf, opt Options) *Result {
	return RunOn(env, env.NewGroup(opt.threads(), opt.NodeOf), col, opt)
}

// RunOn executes the scan on an existing thread group — the pipeline
// form: a query plan shares one group across its stages so simulated
// cache/TLB state carries over operator boundaries. Options.Threads and
// NodeOf are ignored (the group decides both); Result timing and phases
// cover only this stage.
func RunOn(env *core.Env, g *exec.Group, col *mem.U8Buf, opt Options) *Result {
	T := len(g.Threads)
	mark := g.Mark()
	n := col.Len()
	res := &Result{}

	var bits *mem.U64Buf
	var ids *mem.U64Buf
	if opt.RowIDs {
		// Result memory is pre-allocated, as in the paper ("we assume
		// that the memory for the scan result is pre-allocated").
		if ids = opt.IDs; ids == nil {
			ids = env.Space.AllocU64("scan.ids", n+64, env.DataRegion())
		}
		res.IDs = ids
	} else {
		if bits = opt.Bits; bits == nil {
			bits = env.Space.AllocU64("scan.bits", n/64+2, env.DataRegion())
		}
		res.Bits = bits
	}

	counts := make([]uint64, T)
	for pass := 0; pass < opt.passes(); pass++ {
		g.Phase("Scan", func(t *engine.Thread, id int) {
			lo, hi := chunkAligned(n, T, id)
			if opt.RowIDs {
				counts[id] = rowIDChunk(t, col, lo, hi, ids, lo, opt.Pred)
			} else {
				counts[id] = bitVectorChunk(t, col, lo, hi, bits, opt.Pred)
			}
		})
	}
	for _, c := range counts {
		res.Matches += c
	}
	if opt.RowIDs {
		res.IDRuns = make([]IDRun, T)
		for id := range counts {
			lo, _ := chunkAligned(n, T, id)
			res.IDRuns[id] = IDRun{Start: lo, Count: int(counts[id])}
		}
	}
	res.Bytes = int64(n) * int64(opt.passes())
	res.Phases, res.Stats, res.WallCycles = g.Since(mark)
	return res
}

// chunkAligned splits n bytes over workers at 64-byte boundaries so that
// vector loads never straddle two threads' ranges.
func chunkAligned(n, workers, id int) (int, int) {
	per := (n / workers) &^ 63
	lo := id * per
	hi := lo + per
	if id == workers-1 {
		hi = n
	}
	return lo, hi
}

// ReferenceCount is the oracle: a plain scalar count of matching bytes.
func ReferenceCount(col *mem.U8Buf, pred Predicate) uint64 {
	var c uint64
	for _, v := range col.D {
		if v >= pred.Lo && v <= pred.Hi {
			c++
		}
	}
	return c
}
