package scan

import (
	"sgxbench/internal/core"
	"sgxbench/internal/engine"
	"sgxbench/internal/exec"
	"sgxbench/internal/mem"
	"sgxbench/internal/rng"
)

// vectorWork is the charged compute per 64-byte vector: one AVX-512
// load feeds two byte compares, a mask AND and a mask store.
const vectorWork = 2

// Predicate is the scan filter: lo <= value <= hi (the paper's range
// filter with lower and upper bound).
type Predicate struct {
	Lo, Hi uint8
}

// Selectivity returns the fraction of a uniform byte column the
// predicate selects.
func (p Predicate) Selectivity() float64 {
	if p.Hi < p.Lo {
		return 0
	}
	return float64(int(p.Hi)-int(p.Lo)+1) / 256
}

// Result reports a completed scan.
type Result struct {
	WallCycles uint64
	Bytes      int64 // input bytes scanned (per pass x passes)
	Matches    uint64
	Phases     []exec.PhaseStats
}

// Throughput returns the paper's scan metric: input bytes per second.
func (r *Result) Throughput(env *core.Env) float64 {
	return env.Bandwidth(r.Bytes, r.WallCycles)
}

// GenColumn fills col with uniform random bytes (deterministic in seed).
func GenColumn(col *mem.U8Buf, seed uint64) {
	r := rng.NewXorShift(rng.Mix(seed))
	i := 0
	for ; i+8 <= len(col.D); i += 8 {
		v := r.Next()
		for j := 0; j < 8; j++ {
			col.D[i+j] = uint8(v >> (8 * j))
		}
	}
	for ; i < len(col.D); i++ {
		col.D[i] = uint8(r.Next())
	}
}

// bitVectorChunk scans col[lo:hi) (8-byte aligned bounds except the tail)
// into the bit vector out (one bit per input byte), returning the match
// count. One cache-line load covers 64 column bytes; the packed result
// words are written sequentially — the read-heavy, write-light pattern of
// Section 5.1.
func bitVectorChunk(t *engine.Thread, col *mem.U8Buf, lo, hi int, out *mem.U64Buf, pred Predicate) uint64 {
	loB, hiB := broadcast(pred.Lo), broadcast(pred.Hi)
	var matches uint64
	var acc uint64
	accBase := lo // first input index covered by acc
	flush := func(end int) {
		w := accBase / 64
		engine.StoreU64(t, out, w, acc, 0, 0)
		acc = 0
		accBase = end
	}
	i := lo
	for ; i+8 <= hi; i += 8 {
		if (i-lo)%64 == 0 {
			engine.LoadLine(t, &col.Buffer, int64(i), 0)
			t.Work(vectorWork)
		}
		var word uint64
		for j := 0; j < 8; j++ {
			word |= uint64(col.D[i+j]) << (8 * j)
		}
		bits := packMask(rangeMask(word, loB, hiB))
		acc |= uint64(bits) << ((i - accBase) % 64)
		matches += uint64(popcount8(bits))
		if (i+8-accBase)%64 == 0 {
			flush(i + 8)
		}
	}
	// Scalar tail.
	for ; i < hi; i++ {
		if col.D[i] >= pred.Lo && col.D[i] <= pred.Hi {
			acc |= 1 << ((i - accBase) % 64)
			matches++
		}
		t.Work(1)
	}
	if acc != 0 || (hi-accBase) > 0 {
		flush(hi)
	}
	return matches
}

// rowIDChunk scans col[lo:hi) and materializes the 64-bit row indexes of
// matching values into out[outBase...], returning the match count. Each
// match writes 8 bytes, so the write rate is 8x the selectivity — the
// knob Fig 15 turns.
func rowIDChunk(t *engine.Thread, col *mem.U8Buf, lo, hi int, out *mem.U64Buf, outBase int, pred Predicate) uint64 {
	loB, hiB := broadcast(pred.Lo), broadcast(pred.Hi)
	pos := outBase
	i := lo
	for ; i+8 <= hi; i += 8 {
		if (i-lo)%64 == 0 {
			engine.LoadLine(t, &col.Buffer, int64(i), 0)
			t.Work(vectorWork)
		}
		var word uint64
		for j := 0; j < 8; j++ {
			word |= uint64(col.D[i+j]) << (8 * j)
		}
		bits := packMask(rangeMask(word, loB, hiB))
		if bits != 0 {
			t.Work(1) // vcompressq of the matching lanes
			for j := 0; j < 8; j++ {
				if bits&(1<<j) != 0 {
					engine.StoreU64(t, out, pos, uint64(i+j), 0, 0)
					pos++
				}
			}
		}
	}
	for ; i < hi; i++ {
		if col.D[i] >= pred.Lo && col.D[i] <= pred.Hi {
			engine.StoreU64(t, out, pos, uint64(i), 0, 0)
			pos++
		}
		t.Work(1)
	}
	return uint64(pos - outBase)
}

func popcount8(b uint8) int {
	n := 0
	for ; b != 0; b &= b - 1 {
		n++
	}
	return n
}

// Options configures a scan run.
type Options struct {
	Threads int
	Pred    Predicate
	// RowIDs selects index materialization instead of a bit vector.
	RowIDs bool
	// Passes repeats the scan (cache warm-up measurements, Fig 13).
	Passes int
	// NodeOf pins thread i to a socket (cross-NUMA scans, Fig 16).
	NodeOf func(i int) int
}

func (o Options) threads() int {
	if o.Threads < 1 {
		return 1
	}
	return o.Threads
}

func (o Options) passes() int {
	if o.Passes < 1 {
		return 1
	}
	return o.Passes
}

// Run executes a multi-threaded scan of col under env.
func Run(env *core.Env, col *mem.U8Buf, opt Options) *Result {
	T := opt.threads()
	g := env.NewGroup(T, opt.NodeOf)
	n := col.Len()
	res := &Result{}

	var bits *mem.U64Buf
	var ids *mem.U64Buf
	if opt.RowIDs {
		// Result memory is pre-allocated, as in the paper ("we assume
		// that the memory for the scan result is pre-allocated").
		ids = env.Space.AllocU64("scan.ids", n+64, env.DataRegion())
	} else {
		bits = env.Space.AllocU64("scan.bits", n/64+2, env.DataRegion())
	}

	counts := make([]uint64, T)
	for pass := 0; pass < opt.passes(); pass++ {
		g.Phase("Scan", func(t *engine.Thread, id int) {
			lo, hi := chunkAligned(n, T, id)
			if opt.RowIDs {
				counts[id] = rowIDChunk(t, col, lo, hi, ids, lo, opt.Pred)
			} else {
				counts[id] = bitVectorChunk(t, col, lo, hi, bits, opt.Pred)
			}
		})
	}
	for _, c := range counts {
		res.Matches += c
	}
	res.Bytes = int64(n) * int64(opt.passes())
	res.Phases = g.Phases()
	res.WallCycles = g.Clock()
	return res
}

// chunkAligned splits n bytes over workers at 64-byte boundaries so that
// vector loads never straddle two threads' ranges.
func chunkAligned(n, workers, id int) (int, int) {
	per := (n / workers) &^ 63
	lo := id * per
	hi := lo + per
	if id == workers-1 {
		hi = n
	}
	return lo, hi
}

// ReferenceCount is the oracle: a plain scalar count of matching bytes.
func ReferenceCount(col *mem.U8Buf, pred Predicate) uint64 {
	var c uint64
	for _, v := range col.D {
		if v >= pred.Lo && v <= pred.Hi {
			c++
		}
	}
	return c
}
