package scan

import (
	"testing"

	"sgxbench/internal/core"
	"sgxbench/internal/platform"
)

// The predicate-scan workload end to end (SWAR compute + engine). The
// engine-only ratio is higher; see the kernels benchmarks.
func benchScan(b *testing.B, ref, rowIDs bool) {
	env := core.NewEnv(core.Options{
		Plat: platform.XeonGold6326().Scaled(32), Setting: core.SGXDiE, Reference: ref,
	})
	col := env.Space.AllocU8("col", 16<<20, env.DataRegion())
	GenColumn(col, 9)
	b.SetBytes(16 << 20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Run(env, col, Options{Threads: 1, Pred: Predicate{Lo: 16, Hi: 127}, RowIDs: rowIDs})
	}
}

func BenchmarkScanBitVectorPerOp(b *testing.B) { benchScan(b, true, false) }
func BenchmarkScanBitVectorFast(b *testing.B)  { benchScan(b, false, false) }
func BenchmarkScanRowIDPerOp(b *testing.B)     { benchScan(b, true, true) }
func BenchmarkScanRowIDFast(b *testing.B)      { benchScan(b, false, true) }
