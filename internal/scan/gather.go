package scan

import (
	"sgxbench/internal/core"
	"sgxbench/internal/engine"
	"sgxbench/internal/exec"
	"sgxbench/internal/mem"
	"sgxbench/internal/rng"
)

// The gather stage is the data-dependent second half of a filter→gather
// query plan: a row-id scan (Options.RowIDs) produces the qualifying row
// indexes, and Gather then fetches another column's values at exactly
// those rows. Each fetch address comes from a just-loaded row id, so the
// access pattern is the paper's random-access regime (Section 4.1, Fig 5)
// at query granularity — the workload class the engine's LoadGather API
// batches.

// gatherBlock is the number of row ids gathered per engine batch: the
// id reads are one sequential run, the value fetches one LoadGather, the
// result writes one sequential scatter.
const gatherBlock = 64

// GatherOptions configures a gather run.
type GatherOptions struct {
	Threads int
	// NodeOf pins thread i to a socket (nil: the env's node).
	NodeOf func(i int) int
	// Out, when non-nil, is the pre-allocated result buffer (n bytes).
	Out *mem.U8Buf
}

// GatherResult reports a completed gather.
type GatherResult struct {
	WallCycles uint64
	Bytes      int64 // ids read + values fetched + values written
	Sum        uint64
	Phases     []exec.PhaseStats
	// Out holds the gathered values, out[i] = col[ids[i]].
	Out *mem.U8Buf
}

// Gather fetches col[ids[i]] for i in [0, n) into an output column and
// returns the value checksum. ids entries must be valid row indexes of
// col (a row-id scan result, optionally shuffled).
func Gather(env *core.Env, col *mem.U8Buf, ids *mem.U64Buf, n int, opt GatherOptions) *GatherResult {
	T := opt.Threads
	if T < 1 {
		T = 1
	}
	out := opt.Out
	if out == nil {
		out = env.Space.AllocU8("scan.gathered", n, env.DataRegion())
	}
	g := env.NewGroup(T, opt.NodeOf)
	sums := make([]uint64, T)
	g.Phase("Gather", func(t *engine.Thread, id int) {
		lo := id * (n / T)
		hi := lo + n/T
		if id == T-1 {
			hi = n
		}
		var idToks, deps, valToks [gatherBlock]engine.Tok
		var offs, outOffs [gatherBlock]int64
		var local uint64
		for pos := lo; pos < hi; {
			blk := hi - pos
			if blk > gatherBlock {
				blk = gatherBlock
			}
			// Sequential id reads; every gather address derives from its
			// id (one cycle of address arithmetic after the load).
			t.LoadRunToks(&ids.Buffer, ids.Off(pos), 8, blk, 0, idToks[:blk])
			for j := 0; j < blk; j++ {
				row := ids.D[pos+j]
				offs[j] = int64(row)
				deps[j] = engine.After(idToks[j], 1)
				outOffs[j] = int64(pos + j)
				v := col.D[row]
				out.D[pos+j] = v
				local += uint64(v)
			}
			t.LoadGather(&col.Buffer, 1, offs[:blk], deps[:blk], valToks[:blk])
			t.Work(uint64(blk)) // accumulate/pack the gathered lanes
			// Sequential result writes at the output cursor, data from
			// the gathered values.
			t.StoreScatter(&out.Buffer, 1, outOffs[:blk], nil, valToks[:blk])
			pos += blk
		}
		sums[id] = local
	})
	res := &GatherResult{Out: out}
	for _, s := range sums {
		res.Sum += s
	}
	res.Bytes = int64(n) * 10 // 8 id bytes + 1 fetched + 1 written
	res.Phases = g.Phases()
	res.WallCycles = g.Clock()
	return res
}

// ShuffleIDs permutes ids[:n] deterministically (Fisher–Yates). Untimed
// setup: it turns the ascending row-id scan output into the unclustered
// id list of, e.g., a secondary-index lookup, which is what makes the
// gather a true random-access workload.
func ShuffleIDs(ids *mem.U64Buf, n int, seed uint64) {
	r := rng.NewXorShift(rng.Mix(seed))
	for i := n - 1; i > 0; i-- {
		j := int(r.Uint64n(uint64(i + 1)))
		ids.D[i], ids.D[j] = ids.D[j], ids.D[i]
	}
}

// ReferenceGatherSum is the oracle: the checksum of col at ids[:n].
func ReferenceGatherSum(col *mem.U8Buf, ids *mem.U64Buf, n int) uint64 {
	var sum uint64
	for i := 0; i < n; i++ {
		sum += uint64(col.D[ids.D[i]])
	}
	return sum
}
