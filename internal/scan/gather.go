package scan

import (
	"sgxbench/internal/core"
	"sgxbench/internal/engine"
	"sgxbench/internal/exec"
	"sgxbench/internal/mem"
	"sgxbench/internal/rng"
)

// The gather stage is the data-dependent second half of a filter→gather
// query plan: a row-id scan (Options.RowIDs) produces the qualifying row
// indexes, and Gather then fetches another column's values at exactly
// those rows. Each fetch address comes from a just-loaded row id, so the
// access pattern is the paper's random-access regime (Section 4.1, Fig 5)
// at query granularity — the workload class the engine's LoadGather API
// batches.

// gatherBlock is the number of row ids gathered per engine batch: the
// id reads are one sequential run, the value fetches one LoadGather, the
// result writes one sequential scatter.
const gatherBlock = 64

// GatherOptions configures a gather run.
type GatherOptions struct {
	Threads int
	// NodeOf pins thread i to a socket (nil: the env's node).
	NodeOf func(i int) int
	// Out, when non-nil, is the pre-allocated result buffer (n bytes).
	Out *mem.U8Buf
}

// GatherResult reports a completed gather.
type GatherResult struct {
	WallCycles uint64
	Bytes      int64 // ids read + values fetched + values written
	Sum        uint64
	Phases     []exec.PhaseStats
	// Stats aggregates engine counters over the gather phase.
	Stats engine.Stats
	// Out holds the gathered values, out[i] = col[ids[i]].
	Out *mem.U8Buf
}

// Gather fetches col[ids[i]] for i in [0, n) into an output column and
// returns the value checksum. ids entries must be valid row indexes of
// col (a row-id scan result, optionally shuffled).
func Gather(env *core.Env, col *mem.U8Buf, ids *mem.U64Buf, n int, opt GatherOptions) *GatherResult {
	T := opt.Threads
	if T < 1 {
		T = 1
	}
	return GatherOn(env, env.NewGroup(T, opt.NodeOf), col, ids, n, opt)
}

// GatherOn executes the gather on an existing thread group (pipeline
// stage composition; see RunOn). Options.Threads and NodeOf are ignored.
func GatherOn(env *core.Env, g *exec.Group, col *mem.U8Buf, ids *mem.U64Buf, n int, opt GatherOptions) *GatherResult {
	T := len(g.Threads)
	mark := g.Mark()
	out := opt.Out
	if out == nil {
		out = env.Space.AllocU8("scan.gathered", n, env.DataRegion())
	}
	sums := make([]uint64, T)
	g.Phase("Gather", func(t *engine.Thread, id int) {
		lo := id * (n / T)
		hi := lo + n/T
		if id == T-1 {
			hi = n
		}
		var idToks, deps, valToks [gatherBlock]engine.Tok
		var offs, outOffs [gatherBlock]int64
		var local uint64
		for pos := lo; pos < hi; {
			blk := hi - pos
			if blk > gatherBlock {
				blk = gatherBlock
			}
			// Sequential id reads; every gather address derives from its
			// id (one cycle of address arithmetic after the load).
			t.LoadRunToks(&ids.Buffer, ids.Off(pos), 8, blk, 0, idToks[:blk])
			for j := 0; j < blk; j++ {
				row := ids.D[pos+j]
				offs[j] = int64(row)
				deps[j] = engine.After(idToks[j], 1)
				outOffs[j] = int64(pos + j)
				v := col.D[row]
				out.D[pos+j] = v
				local += uint64(v)
			}
			t.LoadGather(&col.Buffer, 1, offs[:blk], deps[:blk], valToks[:blk])
			t.Work(uint64(blk)) // accumulate/pack the gathered lanes
			// Sequential result writes at the output cursor, data from
			// the gathered values.
			t.StoreScatter(&out.Buffer, 1, outOffs[:blk], nil, valToks[:blk])
			pos += blk
		}
		sums[id] = local
	})
	res := &GatherResult{Out: out}
	for _, s := range sums {
		res.Sum += s
	}
	res.Bytes = int64(n) * 10 // 8 id bytes + 1 fetched + 1 written
	res.Phases, res.Stats, res.WallCycles = g.Since(mark)
	return res
}

// TupleGatherResult reports a completed tuple gather.
type TupleGatherResult struct {
	WallCycles uint64
	Rows       int    // tuples materialized (sum of the run counts)
	Sum        uint64 // wrapping sum of the gathered 8-byte tuples
	Phases     []exec.PhaseStats
	// Stats aggregates engine counters over the gather phase.
	Stats engine.Stats
	// Out holds the gathered tuples, densely packed in run order.
	Out *mem.U64Buf
}

// GatherU64On materializes the 8-byte tuples tups[ids[i]] into out —
// the filter→gather stage of a query plan fetching the qualifying fact
// rows for a downstream join or aggregation. The filter output arrives
// as per-thread id runs (scan.Result.IDRuns): thread i gathers run i,
// writing its tuples at the run's prefix-sum offset, so out is densely
// packed in run order. The access structure mirrors Gather (sequential
// id reads, one LoadGather of the data-dependent tuple fetches,
// sequential result writes) at tuple granularity. out must hold at
// least the summed run counts.
func GatherU64On(env *core.Env, g *exec.Group, tups *mem.U64Buf, ids *mem.U64Buf, runs []IDRun, out *mem.U64Buf) *TupleGatherResult {
	T := len(g.Threads)
	mark := g.Mark()
	outBase := make([]int, len(runs)+1)
	for i, r := range runs {
		outBase[i+1] = outBase[i] + r.Count
	}
	sums := make([]uint64, T)
	g.Phase("GatherTup", func(t *engine.Thread, id int) {
		var idToks, deps, valToks [gatherBlock]engine.Tok
		var offs [gatherBlock]int64
		var local uint64
		// Thread i owns run i; with more runs than threads (a scan from a
		// wider group) the surplus runs are claimed round-robin so every
		// run is gathered.
		for r := id; r < len(runs); r += T {
			run := runs[r]
			for done := 0; done < run.Count; {
				blk := run.Count - done
				if blk > gatherBlock {
					blk = gatherBlock
				}
				pos := run.Start + done
				outPos := outBase[r] + done
				// Sequential id reads; every tuple address derives from
				// its id (one cycle of address arithmetic after the load).
				t.LoadRunToks(&ids.Buffer, ids.Off(pos), 8, blk, 0, idToks[:blk])
				for j := 0; j < blk; j++ {
					row := ids.D[pos+j]
					offs[j] = tups.Off(int(row))
					deps[j] = engine.After(idToks[j], 1)
					v := tups.D[row]
					out.D[outPos+j] = v
					local += v
				}
				t.LoadGather(&tups.Buffer, 8, offs[:blk], deps[:blk], valToks[:blk])
				t.Work(uint64(blk)) // pack the gathered lanes
				// Sequential 8-byte result writes at the output cursor,
				// data from the gathered tuples (last lane's token stands
				// for the batch: the run API takes one data dependency).
				t.StoreRun(&out.Buffer, out.Off(outPos), 8, blk, 0, valToks[blk-1])
				done += blk
			}
		}
		sums[id] = local
	})
	res := &TupleGatherResult{Out: out, Rows: outBase[len(runs)]}
	for _, s := range sums {
		res.Sum += s
	}
	res.Phases, res.Stats, res.WallCycles = g.Since(mark)
	return res
}

// ShuffleIDs permutes ids[:n] deterministically (Fisher–Yates). Untimed
// setup: it turns the ascending row-id scan output into the unclustered
// id list of, e.g., a secondary-index lookup, which is what makes the
// gather a true random-access workload.
func ShuffleIDs(ids *mem.U64Buf, n int, seed uint64) {
	r := rng.NewXorShift(rng.Mix(seed))
	for i := n - 1; i > 0; i-- {
		j := int(r.Uint64n(uint64(i + 1)))
		ids.D[i], ids.D[j] = ids.D[j], ids.D[i]
	}
}

// ReferenceGatherSum is the oracle: the checksum of col at ids[:n].
func ReferenceGatherSum(col *mem.U8Buf, ids *mem.U64Buf, n int) uint64 {
	var sum uint64
	for i := 0; i < n; i++ {
		sum += uint64(col.D[ids.D[i]])
	}
	return sum
}
