package scan

import (
	"testing"
	"testing/quick"

	"sgxbench/internal/core"
	"sgxbench/internal/engine"
	"sgxbench/internal/platform"
)

func scanEnv(s core.Setting, scale int64) *core.Env {
	return core.NewEnv(core.Options{Plat: platform.XeonGold6326().Scaled(scale), Setting: s})
}

// TestSWARAgainstScalar property-tests the SWAR range kernel against the
// obvious byte loop.
func TestSWARAgainstScalar(t *testing.T) {
	f := func(word uint64, lo, hi uint8) bool {
		m := rangeMask(word, broadcast(lo), broadcast(hi))
		bits := packMask(m)
		for j := 0; j < 8; j++ {
			v := uint8(word >> (8 * j))
			want := v >= lo && v <= hi
			if (bits&(1<<j) != 0) != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

// TestScanCorrectness checks match counts against the oracle across
// settings, thread counts and output kinds.
func TestScanCorrectness(t *testing.T) {
	for _, setting := range []core.Setting{core.PlainCPU, core.SGXDiE, core.SGXDoE} {
		for _, threads := range []int{1, 4, 16} {
			for _, rowIDs := range []bool{false, true} {
				env := scanEnv(setting, 256)
				col := env.Space.AllocU8("col", 1<<16+13, env.DataRegion())
				GenColumn(col, 5)
				pred := Predicate{Lo: 10, Hi: 90}
				want := ReferenceCount(col, pred)
				res := Run(env, col, Options{Threads: threads, Pred: pred, RowIDs: rowIDs})
				if res.Matches != want {
					t.Errorf("%s threads=%d rowIDs=%v: matches=%d want %d",
						setting, threads, rowIDs, res.Matches, want)
				}
			}
		}
	}
}

// TestGatherCorrectness checks the filter→gather plan end to end: the
// row-id scan's ids drive a gather whose checksum and materialized
// values must match the oracle, in every setting, shuffled or not.
func TestGatherCorrectness(t *testing.T) {
	for _, setting := range []core.Setting{core.PlainCPU, core.SGXDiE} {
		for _, shuffle := range []bool{false, true} {
			env := scanEnv(setting, 256)
			col := env.Space.AllocU8("col", 1<<16+13, env.DataRegion())
			GenColumn(col, 5)
			sc := Run(env, col, Options{Threads: 4, Pred: Predicate{Lo: 10, Hi: 90}, RowIDs: true})
			n := int(sc.Matches)
			if shuffle {
				ShuffleIDs(sc.IDs, n, 3)
			}
			want := ReferenceGatherSum(col, sc.IDs, n)
			res := Gather(env, col, sc.IDs, n, GatherOptions{Threads: 4})
			if res.Sum != want {
				t.Errorf("%s shuffle=%v: sum=%d want %d", setting, shuffle, res.Sum, want)
			}
			for i := 0; i < n; i++ {
				if res.Out.D[i] != col.D[sc.IDs.D[i]] {
					t.Fatalf("%s: gathered value %d differs", setting, i)
				}
			}
		}
	}
}

// TestGoldenGatherEquivalence enforces the engine's fast-path invariant
// on the gather stage: under every execution setting the batched fast
// path must produce bit-identical output and simulated statistics to the
// per-op reference path.
func TestGoldenGatherEquivalence(t *testing.T) {
	allSettings := []core.Setting{core.PlainCPU, core.PlainCPUM, core.SGXDoE, core.SGXDiE}
	for _, setting := range allSettings {
		run := func(ref bool) (*GatherResult, engine.Stats) {
			env := core.NewEnv(core.Options{
				Plat:      platform.XeonGold6326().Scaled(256),
				Setting:   setting,
				Reference: ref,
			})
			col := env.Space.AllocU8("col", 1<<20+777, env.DataRegion())
			GenColumn(col, 42)
			sc := Run(env, col, Options{Threads: 2, Pred: Predicate{Lo: 20, Hi: 200}, RowIDs: true})
			n := int(sc.Matches)
			ShuffleIDs(sc.IDs, n, 7)
			res := Gather(env, col, sc.IDs, n, GatherOptions{Threads: 2})
			var agg engine.Stats
			for _, p := range res.Phases {
				agg.Add(p.Agg)
			}
			return res, agg
		}
		refRes, refAgg := run(true)
		fastRes, fastAgg := run(false)
		if refRes.Sum != fastRes.Sum {
			t.Errorf("%s: sum ref=%d fast=%d", setting, refRes.Sum, fastRes.Sum)
		}
		if refRes.WallCycles != fastRes.WallCycles {
			t.Errorf("%s: wall cycles ref=%d fast=%d", setting, refRes.WallCycles, fastRes.WallCycles)
		}
		if refAgg != fastAgg {
			t.Errorf("%s: stats differ\nref:  %+v\nfast: %+v", setting, refAgg, fastAgg)
		}
		for i := range refRes.Out.D {
			if refRes.Out.D[i] != fastRes.Out.D[i] {
				t.Fatalf("%s: gathered byte %d differs", setting, i)
			}
		}
	}
}

// TestScanResultReuse checks that pre-allocated result buffers produce
// the same matches as fresh ones (and are actually reused).
func TestScanResultReuse(t *testing.T) {
	env := scanEnv(core.PlainCPU, 256)
	col := env.Space.AllocU8("col", 1<<16, env.DataRegion())
	GenColumn(col, 5)
	pred := Predicate{Lo: 10, Hi: 90}
	ids := env.Space.AllocU64("ids.reuse", col.Len()+64, env.DataRegion())
	a := Run(env, col, Options{Threads: 2, Pred: pred, RowIDs: true, IDs: ids})
	if a.IDs != ids {
		t.Fatalf("pre-allocated IDs buffer was not reused")
	}
	b := Run(env, col, Options{Threads: 2, Pred: pred, RowIDs: true})
	if a.Matches != b.Matches {
		t.Errorf("reused buffer changed matches: %d vs %d", a.Matches, b.Matches)
	}
	for i := 0; i < int(a.Matches); i++ {
		if a.IDs.D[i] != b.IDs.D[i] {
			t.Fatalf("row id %d differs between reused and fresh buffers", i)
		}
	}
}

// TestScanShapeFig13 checks the single-threaded size sweep: inside the
// cache DiE == plain; outside, the enclave costs only a few percent.
func TestScanShapeFig13(t *testing.T) {
	run := func(setting core.Setting, bytes int) float64 {
		env := scanEnv(setting, 32)
		col := env.Space.AllocU8("col", bytes, env.DataRegion())
		GenColumn(col, 7)
		// Warm-up pass, then measured passes (the paper scans the data
		// 1000 times after 10 warm-ups; a handful is enough here).
		Run(env, col, Options{Threads: 1, Pred: Predicate{Lo: 0, Hi: 127}})
		res := Run(env, col, Options{Threads: 1, Pred: Predicate{Lo: 0, Hi: 127}, Passes: 4})
		return res.Throughput(env)
	}
	small := 16 << 10 // cache-resident at scale 32
	big := 8 << 20    // DRAM-resident
	rSmall := run(core.SGXDiE, small) / run(core.PlainCPU, small)
	rBig := run(core.SGXDiE, big) / run(core.PlainCPU, big)
	t.Logf("scan DiE/plain: in-cache=%.3f out-of-cache=%.3f", rSmall, rBig)
	if rSmall < 0.93 {
		t.Errorf("in-cache scan should have ~no overhead, got %.3f", rSmall)
	}
	if rBig < 0.90 || rBig > 1.02 {
		t.Errorf("out-of-cache scan should be ~3%% slower, got %.3f", rBig)
	}
	// DoE out-of-cache: no memory encryption, ~native throughput.
	rDoE := run(core.SGXDoE, big) / run(core.PlainCPU, big)
	if rDoE < 0.97 {
		t.Errorf("DoE scan should be ~native, got %.3f", rDoE)
	}
}

// TestScanShapeFig14 checks thread scaling: throughput grows with
// threads and hits the same bandwidth roof in and out of the enclave.
func TestScanShapeFig14(t *testing.T) {
	run := func(setting core.Setting, threads int) float64 {
		env := scanEnv(setting, 32)
		col := env.Space.AllocU8("col", 64<<20, env.DataRegion())
		GenColumn(col, 9)
		res := Run(env, col, Options{Threads: threads, Pred: Predicate{Lo: 0, Hi: 127}})
		return res.Throughput(env)
	}
	var lastPlain, lastDie float64
	for _, th := range []int{1, 4, 16} {
		p, d := run(core.PlainCPU, th), run(core.SGXDiE, th)
		t.Logf("threads=%2d plain=%.1f GiB/s die=%.1f GiB/s", th, p/(1<<30), d/(1<<30))
		if p < lastPlain || d < lastDie {
			t.Errorf("throughput should not decrease with threads")
		}
		lastPlain, lastDie = p, d
	}
	if lastDie < 0.90*lastPlain {
		t.Errorf("16-thread DiE scan (%.1f) should be within 10%% of plain (%.1f)",
			lastDie/(1<<30), lastPlain/(1<<30))
	}
	// The 16-thread scan must be bandwidth-bound (near the socket roof).
	env := scanEnv(core.PlainCPU, 32)
	roof := env.Plat.SocketDRAMBW * env.Plat.FreqHz
	if lastPlain < 0.7*roof {
		t.Errorf("16-thread scan (%.2e B/s) should approach the bandwidth roof (%.2e B/s)", lastPlain, roof)
	}
}

// TestScanShapeFig15 checks that increasing the write rate (selectivity
// of the row-id scan) does not penalize the enclave more than native.
func TestScanShapeFig15(t *testing.T) {
	run := func(setting core.Setting, sel uint8) float64 {
		env := scanEnv(setting, 32)
		col := env.Space.AllocU8("col", 32<<20, env.DataRegion())
		GenColumn(col, 11)
		res := Run(env, col, Options{Threads: 16, Pred: Predicate{Lo: 0, Hi: sel}, RowIDs: true})
		return res.Throughput(env)
	}
	for _, sel := range []uint8{2, 127, 255} {
		ratio := run(core.SGXDiE, sel) / run(core.PlainCPU, sel)
		t.Logf("selectivity %.2f: DiE/plain=%.3f", (float64(sel)+1)/256, ratio)
		if ratio < 0.85 {
			t.Errorf("write rate %.2f: enclave overhead too high (%.3f)", (float64(sel)+1)/256, ratio)
		}
	}
}
