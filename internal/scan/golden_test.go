package scan

import (
	"testing"

	"sgxbench/internal/core"
	"sgxbench/internal/engine"
	"sgxbench/internal/platform"
)

// TestGoldenScanEquivalence enforces the engine's fast-path invariant on
// the scan suite: under every execution setting and both output kinds,
// the batched fast path must produce bit-identical output data and
// bit-identical simulated statistics (cycles, hit counts, DRAM bytes, …)
// to the per-op reference path.
func TestGoldenScanEquivalence(t *testing.T) {
	allSettings := []core.Setting{core.PlainCPU, core.PlainCPUM, core.SGXDoE, core.SGXDiE}
	for _, setting := range allSettings {
		for _, rowIDs := range []bool{false, true} {
			run := func(ref bool) (*Result, engine.Stats) {
				env := core.NewEnv(core.Options{
					Plat:      platform.XeonGold6326().Scaled(256),
					Setting:   setting,
					Reference: ref,
				})
				col := env.Space.AllocU8("col", 1<<20+777, env.DataRegion())
				GenColumn(col, 42)
				res := Run(env, col, Options{
					Threads: 4,
					Pred:    Predicate{Lo: 20, Hi: 200},
					RowIDs:  rowIDs,
					Passes:  2,
				})
				var agg engine.Stats
				for _, p := range res.Phases {
					agg.Add(p.Agg)
				}
				return res, agg
			}
			refRes, refAgg := run(true)
			fastRes, fastAgg := run(false)

			if refRes.Matches != fastRes.Matches {
				t.Errorf("%s rowIDs=%v: matches ref=%d fast=%d", setting, rowIDs, refRes.Matches, fastRes.Matches)
			}
			if refRes.WallCycles != fastRes.WallCycles {
				t.Errorf("%s rowIDs=%v: wall cycles ref=%d fast=%d", setting, rowIDs, refRes.WallCycles, fastRes.WallCycles)
			}
			if refAgg != fastAgg {
				t.Errorf("%s rowIDs=%v: stats differ\nref:  %+v\nfast: %+v", setting, rowIDs, refAgg, fastAgg)
			}
			if rowIDs {
				for i := range refRes.IDs.D {
					if refRes.IDs.D[i] != fastRes.IDs.D[i] {
						t.Fatalf("%s: row id %d differs: ref=%d fast=%d", setting, i, refRes.IDs.D[i], fastRes.IDs.D[i])
					}
				}
			} else {
				for i := range refRes.Bits.D {
					if refRes.Bits.D[i] != fastRes.Bits.D[i] {
						t.Fatalf("%s: bit word %d differs: ref=%x fast=%x", setting, i, refRes.Bits.D[i], fastRes.Bits.D[i])
					}
				}
			}
		}
	}
}
