package cache

import (
	"testing"

	"sgxbench/internal/platform"
	"sgxbench/internal/rng"
)

// oneSet is a single-set, 4-way cache geometry: every line maps to set 0,
// which makes eviction order directly observable.
var oneSet = platform.CacheGeom{SizeBytes: 4 * 64, Ways: 4, LineBytes: 64}

// lines that all map to set 0 of a single-set cache are just consecutive
// integers; for multi-set geometries use line*sets to stay in one set.

// TestLRUEvictionOrder fills a set past capacity and checks that the
// least recently used line is evicted, for both implementations.
func TestLRUEvictionOrder(t *testing.T) {
	type cacheIface interface {
		Access(line uint64, write bool) bool
		Fill(line uint64, write bool) (uint64, bool, bool)
	}
	for _, tc := range []struct {
		name string
		c    cacheIface
	}{
		{"fast", New(oneSet)},
		{"ref", NewRef(oneSet)},
	} {
		c := tc.c
		// Fill ways with lines 1..4. No evictions while invalid ways last.
		for l := uint64(1); l <= 4; l++ {
			if c.Access(l, false) {
				t.Fatalf("%s: cold access to line %d hit", tc.name, l)
			}
			if _, _, ok := c.Fill(l, false); ok {
				t.Fatalf("%s: filling invalid way evicted something (line %d)", tc.name, l)
			}
		}
		// Touch line 1: it becomes MRU; LRU is now line 2.
		if !c.Access(1, false) {
			t.Fatalf("%s: line 1 should be resident", tc.name)
		}
		// Insert line 5: must evict line 2 (true LRU).
		if c.Access(5, false) {
			t.Fatalf("%s: line 5 unexpectedly hit", tc.name)
		}
		ev, _, ok := c.Fill(5, false)
		if !ok || ev != 2 {
			t.Errorf("%s: expected eviction of line 2, got ok=%v line=%d", tc.name, ok, ev)
		}
		// Insert line 6: must evict line 3.
		c.Access(6, false)
		if ev, _, _ := c.Fill(6, false); ev != 3 {
			t.Errorf("%s: expected eviction of line 3, got %d", tc.name, ev)
		}
		// 1, 4, 5, 6 resident; 2, 3 gone.
		for _, want := range []uint64{1, 4, 5, 6} {
			if !c.Access(want, false) {
				t.Errorf("%s: line %d should be resident", tc.name, want)
			}
		}
		if c.Access(2, false) || c.Access(3, false) {
			t.Errorf("%s: evicted lines still resident", tc.name)
		}
	}
}

// TestDirtyWriteback checks that dirty lines report their state when
// evicted and clean lines do not, for both implementations.
func TestDirtyWriteback(t *testing.T) {
	for _, impl := range []string{"fast", "ref"} {
		var access func(uint64, bool) bool
		var fill func(uint64, bool) (uint64, bool, bool)
		if impl == "fast" {
			c := New(oneSet)
			access, fill = c.Access, c.Fill
		} else {
			c := NewRef(oneSet)
			access, fill = c.Access, c.Fill
		}
		fill(1, true)  // written on fill
		fill(2, false) // clean
		access(3, false)
		fill(3, false)
		access(3, true) // dirtied by a write hit
		fill(4, false)
		// Evict line 1 (LRU): was written on fill -> dirty.
		ev, dirty, ok := fill(5, false)
		if !ok || ev != 1 || !dirty {
			t.Errorf("%s: want dirty eviction of line 1, got line=%d dirty=%v ok=%v", impl, ev, dirty, ok)
		}
		// Evict line 2: never written -> clean.
		ev, dirty, _ = fill(6, false)
		if ev != 2 || dirty {
			t.Errorf("%s: want clean eviction of line 2, got line=%d dirty=%v", impl, ev, dirty)
		}
		// Evict line 3: dirtied by the write hit.
		ev, dirty, _ = fill(7, false)
		if ev != 3 || !dirty {
			t.Errorf("%s: want dirty eviction of line 3, got line=%d dirty=%v", impl, ev, dirty)
		}
	}
}

// TestTLBSetIndexing checks set selection and that an empty way is always
// preferred over evicting a valid entry, for both TLB implementations.
func TestTLBSetIndexing(t *testing.T) {
	geom := platform.TLBGeom{Entries: 8, Ways: 4} // 2 sets x 4 ways
	for _, impl := range []string{"fast", "ref"} {
		var access func(uint64) bool
		if impl == "fast" {
			access = NewTLB(geom).Access
		} else {
			access = NewRefTLB(geom).Access
		}
		// Pages 0,2,4,6 map to set 0; pages 1,3,5 to set 1.
		for _, p := range []uint64{0, 2, 4, 6} {
			if access(p) {
				t.Fatalf("%s: cold access to page %d hit", impl, p)
			}
		}
		// Set 1 is untouched: installing there must not disturb set 0.
		access(1)
		for _, p := range []uint64{0, 2, 4, 6} {
			if !access(p) {
				t.Errorf("%s: page %d evicted by an install in another set", impl, p)
			}
		}
		// Set 0 is full; page 8 evicts its LRU (page 0, refreshed last ->
		// LRU is page 2 after the re-touches above... order after touches
		// is 6,4,2,0 oldest-first? re-touches went 0,2,4,6 so LRU is 0).
		access(8)
		if access(0) {
			t.Errorf("%s: page 0 (LRU) should have been evicted", impl)
		}
		// 2 was re-installed by the miss above? No: Access(0) missed and
		// installed page 0 again, evicting the then-LRU page 2.
		if !access(8) || !access(6) || !access(4) {
			t.Errorf("%s: recently used pages evicted", impl)
		}
	}
}

// TestCacheImplEquivalence drives both cache implementations with an
// identical randomized trace of mixed reads and writes over a small
// geometry (so sets overflow constantly) and asserts that every probe
// and every eviction decision agrees.
func TestCacheImplEquivalence(t *testing.T) {
	geom := platform.CacheGeom{SizeBytes: 8 * 64 * 4, Ways: 4, LineBytes: 64} // 8 sets x 4 ways
	fast := New(geom)
	ref := NewRef(geom)
	r := rng.NewXorShift(7)
	for i := 0; i < 200000; i++ {
		line := r.Next() % 128 // 16 lines per set: constant overflow
		write := r.Next()%4 == 0
		fh := fast.Access(line, write)
		rh := ref.Access(line, write)
		if fh != rh {
			t.Fatalf("op %d: access(%d) fast=%v ref=%v", i, line, fh, rh)
		}
		if !fh {
			fe, fd, fok := fast.Fill(line, write)
			re, rd, rok := ref.Fill(line, write)
			if fok != rok || (fok && (fe != re || fd != rd)) {
				t.Fatalf("op %d: fill(%d) fast=(%d,%v,%v) ref=(%d,%v,%v)", i, line, fe, fd, fok, re, rd, rok)
			}
		}
	}
}

// TestCacheFusedEquivalence drives AccessOrFill against a RefCache using
// separate Access+Fill on the same trace.
func TestCacheFusedEquivalence(t *testing.T) {
	geom := platform.CacheGeom{SizeBytes: 4 * 64 * 8, Ways: 8, LineBytes: 64} // 4 sets x 8 ways
	fast := New(geom)
	ref := NewRef(geom)
	r := rng.NewXorShift(11)
	for i := 0; i < 200000; i++ {
		line := r.Next() % 96
		write := r.Next()%3 == 0
		fh, fe, fd, fok := fast.AccessOrFill(line, write)
		rh := ref.Access(line, write)
		if fh != rh {
			t.Fatalf("op %d: line %d fast hit=%v ref hit=%v", i, line, fh, rh)
		}
		if !rh {
			re, rd, rok := ref.Fill(line, write)
			if fok != rok || (fok && (fe != re || fd != rd)) {
				t.Fatalf("op %d: line %d eviction fast=(%d,%v,%v) ref=(%d,%v,%v)", i, line, fe, fd, fok, re, rd, rok)
			}
		}
	}
}

// TestTLBImplEquivalence drives both TLB implementations with the same
// randomized page trace.
func TestTLBImplEquivalence(t *testing.T) {
	geom := platform.TLBGeom{Entries: 16, Ways: 4} // 4 sets x 4 ways
	fast := NewTLB(geom)
	ref := NewRefTLB(geom)
	r := rng.NewXorShift(13)
	for i := 0; i < 200000; i++ {
		page := r.Next() % 64
		fh := fast.Access(page)
		rh := ref.Access(page)
		if fh != rh {
			t.Fatalf("op %d: access(page %d) fast=%v ref=%v", i, page, fh, rh)
		}
		// After any probe (hit or miss-install) the page is its set's MRU.
		if !fast.MRUHit(page) {
			t.Fatalf("op %d: page %d not MRU after probe", i, page)
		}
	}
}
