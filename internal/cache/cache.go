// Package cache implements the set-associative cache and TLB models used
// by the timing engine.
//
// Caches are simulated at cache-line granularity with true LRU replacement
// inside each set. The model is deliberately structural (tags, sets, ways)
// rather than statistical so that residency transitions — the paper's main
// axis of analysis — fall out of the geometry: a 1 MB hash table hits in
// L2, a 100 MB one misses to DRAM, exactly as in Figures 4, 5 and 13.
//
// Two implementations of the same replacement behaviour coexist:
//
//   - Cache/TLB: the production representation used by the engine's
//     batched fast path. Each set stores its ways in recency order
//     (MRU first) as a single packed entry array, so a hit is a short
//     scan plus a move-to-front rotation, a miss victim is always the
//     last slot (O(1), no timestamp scan), and probe + fill merge into
//     one pass over the set (AccessOrFill). Set counts are rounded up
//     to a power of two so indexing is a mask, not a division.
//   - RefCache/RefTLB: the original timestamp-LRU representation with
//     separate Access and Fill probes, kept verbatim as the reference
//     the golden equivalence tests and cmd/bench compare against.
//
// Both implementations make identical hit/miss/eviction decisions for
// every access sequence: move-to-front order is exactly the LRU order the
// timestamps encode, and both prefer an invalid way over evicting (in the
// packed layout invalid ways always form a suffix of the recency order, so
// the last slot is invalid whenever any way is). The cache tests verify
// this equivalence on randomized traces.
package cache

import (
	"math/bits"

	"sgxbench/internal/platform"
)

// pow2Sets rounds a set count up to the next power of two (minimum 1) so
// that set indexing is a mask. Both implementations use the rounded count
// so they stay behaviourally identical to each other.
//
// Note the modeling consequence: geometries whose set count is not a
// power of two (only produced by extreme Scaled() factors or large
// L3Share divisions — the full-size Table 1 geometries are all powers of
// two) gain up to 2x capacity in the affected level. The scaled-platform
// shape tests bound the effect; if an experiment needs exact fractional
// set counts, pick scale factors that keep every level a power of two.
func pow2Sets(n int64) uint64 {
	if n < 1 {
		return 1
	}
	return 1 << uint(bits.Len64(uint64(n-1)))
}

// lineShift returns log2 of the line size.
func lineShift(lineBytes int64) uint {
	l := uint(0)
	for b := lineBytes; b > 1; b >>= 1 {
		l++
	}
	return l
}

// Cache is one set-associative level (fast representation). The zero value
// is not usable; use New.
//
// Entry encoding: 0 means invalid; otherwise (line+1)<<1 | dirtyBit.
// Within a set, entries form a circular recency list: head[s] is the
// physical index of the MRU way and recency decreases walking forward
// (with wrap-around), so the slot just before head is the LRU victim.
// A miss insert is therefore O(1) — rotate head back one slot and
// overwrite the old LRU — and only hits deeper in the recency order pay
// a partial shift to move to the front.
type Cache struct {
	mask     uint64 // sets-1 (sets is a power of two)
	ways     int
	stride   uint64 // words per set block in data: 16 filter words + ways
	lineBits uint
	setShift uint // log2(sets): line >> setShift is the tag
	// data interleaves each set's membership filter (16 words = 128
	// one-byte counters keyed by the low tag bits, see filtKey) with its
	// packed entries (circular recency order), so one probe touches one
	// contiguous block. The filter counts how many resident ways share a
	// key: a zero counter proves a miss without scanning the set — the
	// common case for streaming accesses, whose resident tags within a
	// set are consecutive and therefore never collide with the probed
	// line's key. Counters are exact (no false negatives); a nonzero
	// counter merely means the set must be scanned.
	data []uint64
	head []uint16 // per-set physical index of the MRU way
}

// New builds a cache with the given geometry.
func New(g platform.CacheGeom) *Cache {
	sets := pow2Sets(g.Sets())
	stride := uint64(filtWords + g.Ways)
	return &Cache{
		mask:     sets - 1,
		ways:     g.Ways,
		stride:   stride,
		lineBits: lineShift(g.LineBytes),
		setShift: uint(bits.Len64(sets - 1)),
		data:     make([]uint64, sets*stride),
		head:     make([]uint16, sets),
	}
}

// filtWords is the per-set width of the counting membership filter: 16
// words = 128 one-byte counters. Wider filters mean fewer tag-key
// collisions and therefore fewer false-positive set scans — a pure host
// cost; the counters are exact, so hit/miss decisions are unchanged.
const filtWords = 16

// filtMask selects the filter key from a line's tag bits.
const filtMask = 8*filtWords - 1

// filtKey returns (word index, bit shift) of line's filter counter within
// set s. The key is taken from the tag bits (line with the set index
// shifted out): resident lines of one set always differ in their tags, and
// for streaming workloads recent residents have consecutive tags, so keys
// rarely collide and most misses are proven without a scan.
func (c *Cache) filtKey(s, line uint64) (uint64, uint) {
	k := (line >> c.setShift) & filtMask
	return s*c.stride + k>>3, uint(k&7) << 3
}

// LineOf maps an address to its line number.
func (c *Cache) LineOf(addr uint64) uint64 { return addr >> c.lineBits }

// LineBytes returns the line size in bytes.
func (c *Cache) LineBytes() int64 { return 1 << c.lineBits }

// AccessOrFill merges Access and Fill into a single pass over the set: on
// a hit the line moves to the front (and is dirtied on writes); on a miss
// the line is inserted immediately, evicting the LRU way — the head
// rotates back one slot onto the old LRU entry, so a miss insert is O(1)
// and the set is never rescanned. The eviction report applies only to the
// miss case.
func (c *Cache) AccessOrFill(line uint64, write bool) (hit bool, evicted uint64, evictedDirty, evictedOK bool) {
	s := line & c.mask
	fbase := s * c.stride
	blk := c.data[fbase : fbase+c.stride]
	set := blk[filtWords:]
	h := int(c.head[s])
	want := (line+1)<<1 | 1
	if mru := set[h]; mru|1 == want {
		// MRU hit: already at the front, no reorder needed.
		if write {
			set[h] = mru | 1
		}
		return true, 0, false, false
	}
	k := (line >> c.setShift) & filtMask
	fw, fs := k>>3, uint(k&7)<<3
	if blk[fw]>>fs&0xff != 0 {
		// The filter says the line may be resident: fused walk — scan,
		// move-to-front and (on a miss) fill in one write-behind pass.
		hit, evicted, evictedDirty, evictedOK = c.scanOrFill(blk, h, line, write)
		if !hit {
			blk[fw] += 1 << fs
		}
		return hit, evicted, evictedDirty, evictedOK
	}
	// Proven miss: O(1) insert, rotating the head onto the old LRU entry.
	lru := h - 1
	if lru < 0 {
		lru = len(set) - 1
	}
	if old := set[lru]; old != 0 {
		evicted = old>>1 - 1
		evictedDirty = old&1 != 0
		evictedOK = true
		ek := (evicted >> c.setShift) & filtMask
		blk[ek>>3] -= 1 << (uint(ek&7) << 3)
	}
	e := (line + 1) << 1
	if write {
		e |= 1
	}
	set[lru] = e
	c.head[s] = uint16(lru)
	blk[fw] += 1 << fs
	return false, evicted, evictedDirty, evictedOK
}

// AccessOrFillStream is AccessOrFill with the probe order tuned for
// sequential runs: the membership filter is consulted before the MRU way,
// because a streaming access is almost always a provable miss that can
// take the O(1) insert without touching the set at all. The state
// transition is identical to AccessOrFill — only the check order differs.
func (c *Cache) AccessOrFillStream(line uint64, write bool) (hit bool, evicted uint64, evictedDirty, evictedOK bool) {
	s := line & c.mask
	fbase := s * c.stride
	blk := c.data[fbase : fbase+c.stride]
	set := blk[filtWords:]
	k := (line >> c.setShift) & filtMask
	fw, fs := k>>3, uint(k&7)<<3
	h := int(c.head[s])
	if blk[fw]>>fs&0xff != 0 {
		want := (line+1)<<1 | 1
		if mru := set[h]; mru|1 == want {
			if write {
				set[h] = mru | 1
			}
			return true, 0, false, false
		}
		hit, evicted, evictedDirty, evictedOK = c.scanOrFill(blk, h, line, write)
		if !hit {
			blk[fw] += 1 << fs
		}
		return hit, evicted, evictedDirty, evictedOK
	}
	// Proven miss: O(1) insert, rotating the head onto the old LRU entry.
	lru := h - 1
	if lru < 0 {
		lru = len(set) - 1
	}
	if old := set[lru]; old != 0 {
		evicted = old>>1 - 1
		evictedDirty = old&1 != 0
		evictedOK = true
		ek := (evicted >> c.setShift) & filtMask
		blk[ek>>3] -= 1 << (uint(ek&7) << 3)
	}
	e := (line + 1) << 1
	if write {
		e |= 1
	}
	set[lru] = e
	c.head[s] = uint16(lru)
	blk[fw] += 1 << fs
	return false, evicted, evictedDirty, evictedOK
}

// scanOrFill walks the set in recency order (starting after the MRU way,
// which the caller already checked) with a write-behind shift: on a hit
// the entry lands at the front with the move-to-front rotation already
// complete; on a miss every resident way has aged one position by the end
// of the walk, so writing the new line at the front slot completes the
// fill — same final state as the rotate-head insert, without rescanning.
// The caller maintains the inserted line's filter counter; the evicted
// line's counter is decremented here.
func (c *Cache) scanOrFill(blk []uint64, h int, line uint64, write bool) (hit bool, evicted uint64, evictedDirty, evictedOK bool) {
	set := blk[filtWords:]
	want := (line+1)<<1 | 1
	prev := set[h]
	for i := h + 1; i < len(set); i++ {
		cur := set[i]
		set[i] = prev
		prev = cur
		if cur|1 == want {
			if write {
				cur |= 1
			}
			set[h] = cur
			return true, 0, false, false
		}
	}
	for i := 0; i < h; i++ {
		cur := set[i]
		set[i] = prev
		prev = cur
		if cur|1 == want {
			if write {
				cur |= 1
			}
			set[h] = cur
			return true, 0, false, false
		}
	}
	// Miss: prev now holds the old LRU entry.
	if prev != 0 {
		evicted = prev>>1 - 1
		evictedDirty = prev&1 != 0
		evictedOK = true
		ek := (evicted >> c.setShift) & filtMask
		blk[ek>>3] -= 1 << (uint(ek&7) << 3)
	}
	e := (line + 1) << 1
	if write {
		e |= 1
	}
	set[h] = e
	return false, evicted, evictedDirty, evictedOK
}

// scanHit scans the set s for line in recency order; on a hit the entry
// moves to the front (dirtied on writes). Recency order is two linear
// segments of the circular set: [h, ways) then [0, h).
func (c *Cache) scanHit(s, line uint64, write bool) bool {
	base := s*c.stride + filtWords
	set := c.data[base : base+uint64(c.ways)]
	h := int(c.head[s])
	want := (line+1)<<1 | 1
	for i := h; i < len(set); i++ {
		if set[i]|1 == want {
			e := set[i]
			if write {
				e |= 1
			}
			copy(set[h+1:i+1], set[h:i])
			set[h] = e
			return true
		}
	}
	for i := 0; i < h; i++ {
		if set[i]|1 == want {
			e := set[i]
			if write {
				e |= 1
			}
			copy(set[1:i+1], set[:i])
			set[0] = set[len(set)-1]
			copy(set[h+1:], set[h:len(set)-1])
			set[h] = e
			return true
		}
	}
	return false
}

// fillMiss inserts line at the front of set s (after a miss), evicting
// the LRU way in O(1): the head rotates back one slot onto the old LRU
// entry. fw/fs locate line's filter counter.
func (c *Cache) fillMiss(s, line uint64, write bool, fw uint64, fs uint) (evicted uint64, evictedDirty, ok bool) {
	base := s*c.stride + filtWords
	set := c.data[base : base+uint64(c.ways)]
	lru := int(c.head[s]) - 1
	if lru < 0 {
		lru = len(set) - 1
	}
	if old := set[lru]; old != 0 {
		evicted = old>>1 - 1
		evictedDirty = old&1 != 0
		ok = true
		ew, es := c.filtKey(s, evicted)
		c.data[ew] -= 1 << es
	}
	e := (line + 1) << 1
	if write {
		e |= 1
	}
	set[lru] = e
	c.head[s] = uint16(lru)
	c.data[fw] += 1 << fs
	return evicted, evictedDirty, ok
}

// DirtyMRU marks line dirty in place. The caller guarantees that line is
// the MRU entry of its set — e.g. it was the thread's immediately
// preceding access — so the update is a single word OR with no scan and
// no recency change, exactly the state transition AccessOrFill performs
// on an MRU write hit.
func (c *Cache) DirtyMRU(line uint64) {
	s := line & c.mask
	c.data[s*c.stride+filtWords+uint64(c.head[s])] |= 1
}

// Access probes the cache for line. On a hit it refreshes LRU state
// (move-to-front) and, for writes, marks the line dirty.
func (c *Cache) Access(line uint64, write bool) bool {
	s := line & c.mask
	fw, fs := c.filtKey(s, line)
	if c.data[fw]>>fs&0xff == 0 {
		return false
	}
	return c.scanHit(s, line, write)
}

// Fill inserts line (after a miss), evicting the LRU way of its set.
// It reports the evicted line and whether it was dirty; ok is false when
// an invalid way was used and nothing was evicted.
func (c *Cache) Fill(line uint64, write bool) (evicted uint64, evictedDirty, ok bool) {
	s := line & c.mask
	fw, fs := c.filtKey(s, line)
	return c.fillMiss(s, line, write, fw, fs)
}

// Reset invalidates all lines.
func (c *Cache) Reset() {
	for i := range c.data {
		c.data[i] = 0
	}
	for i := range c.head {
		c.head[i] = 0
	}
}

// TLB is a set-associative translation lookaside buffer over 4 KiB pages
// (fast representation: circular recency order and a counting membership
// filter, exactly like Cache).
type TLB struct {
	mask     uint64
	ways     int
	setShift uint
	ents     []uint64 // 0 invalid, otherwise page+1; circular per set
	head     []uint16 // per-set physical index of the MRU way
	filt     []uint64 // 128 one-byte counters per set, keyed by tag bits
}

// NewTLB builds a TLB with the given geometry.
func NewTLB(g platform.TLBGeom) *TLB {
	sets := pow2Sets(int64(g.Entries / g.Ways))
	return &TLB{
		mask:     sets - 1,
		ways:     g.Ways,
		setShift: uint(bits.Len64(sets - 1)),
		ents:     make([]uint64, sets*uint64(g.Ways)),
		head:     make([]uint16, sets),
		filt:     make([]uint64, sets*filtWords),
	}
}

// MRUHit reports whether page is the most recently used entry of its
// set. A true result means Access(page) would hit without any state
// change, so callers may skip the probe entirely.
func (t *TLB) MRUHit(page uint64) bool {
	s := page & t.mask
	return t.ents[s*uint64(t.ways)+uint64(t.head[s])] == page+1
}

// Access probes for page; on a miss the page is installed (evicting LRU).
// It returns whether the probe hit. The MRU way is checked first (a
// repeat translation of the most recent page in a set needs no reorder),
// and the counting filter proves most misses without scanning the set.
func (t *TLB) Access(page uint64) bool {
	s := page & t.mask
	base := s * uint64(t.ways)
	set := t.ents[base : base+uint64(t.ways)]
	h := int(t.head[s])
	tag := page + 1
	if set[h] == tag {
		return true
	}
	k := (page >> t.setShift) & filtMask
	fw, fs := s*filtWords+k>>3, uint(k&7)<<3
	if t.filt[fw]>>fs&0xff != 0 {
		if t.scanHit(set, h, tag) {
			return true
		}
	}
	lru := h - 1
	if lru < 0 {
		lru = len(set) - 1
	}
	if old := set[lru]; old != 0 {
		ek := ((old - 1) >> t.setShift) & filtMask
		t.filt[s*filtWords+ek>>3] -= 1 << (uint(ek&7) << 3)
	}
	set[lru] = tag
	t.head[s] = uint16(lru)
	t.filt[fw] += 1 << fs
	return false
}

// scanHit scans the set for tag in recency order (two linear segments of
// the circular layout), promoting a hit to the front.
func (t *TLB) scanHit(set []uint64, h int, tag uint64) bool {
	for i := h + 1; i < len(set); i++ {
		if set[i] == tag {
			copy(set[h+1:i+1], set[h:i])
			set[h] = tag
			return true
		}
	}
	for i := 0; i < h; i++ {
		if set[i] == tag {
			copy(set[1:i+1], set[:i])
			set[0] = set[len(set)-1]
			copy(set[h+1:], set[h:len(set)-1])
			set[h] = tag
			return true
		}
	}
	return false
}

// Reset invalidates all entries.
func (t *TLB) Reset() {
	for i := range t.ents {
		t.ents[i] = 0
	}
	for i := range t.head {
		t.head[i] = 0
	}
	for i := range t.filt {
		t.filt[i] = 0
	}
}

// RefCache is the original timestamp-LRU cache level, kept as the
// reference implementation for the engine's per-op path (golden tests and
// cmd/bench baselines). Its replacement decisions are identical to Cache.
type RefCache struct {
	sets     uint64
	ways     int
	lineBits uint
	tags     []uint64 // sets*ways; 0 means invalid, otherwise line+1
	stamp    []uint64 // LRU timestamps
	dirty    []bool
	tick     uint64
}

// NewRef builds a reference cache with the given geometry.
func NewRef(g platform.CacheGeom) *RefCache {
	sets := pow2Sets(g.Sets())
	n := sets * uint64(g.Ways)
	return &RefCache{
		sets:     sets,
		ways:     g.Ways,
		lineBits: lineShift(g.LineBytes),
		tags:     make([]uint64, n),
		stamp:    make([]uint64, n),
		dirty:    make([]bool, n),
	}
}

// LineOf maps an address to its line number.
func (c *RefCache) LineOf(addr uint64) uint64 { return addr >> c.lineBits }

// LineBytes returns the line size in bytes.
func (c *RefCache) LineBytes() int64 { return 1 << c.lineBits }

// Access probes the cache for line. On a hit it refreshes LRU state and,
// for writes, marks the line dirty.
func (c *RefCache) Access(line uint64, write bool) bool {
	base := (line % c.sets) * uint64(c.ways)
	tag := line + 1
	c.tick++
	for w := 0; w < c.ways; w++ {
		if c.tags[base+uint64(w)] == tag {
			c.stamp[base+uint64(w)] = c.tick
			if write {
				c.dirty[base+uint64(w)] = true
			}
			return true
		}
	}
	return false
}

// Fill inserts the line (after a miss), evicting the LRU way of its set.
// It reports the evicted line and whether it was dirty; ok is false when
// an invalid way was used and nothing was evicted.
func (c *RefCache) Fill(line uint64, write bool) (evicted uint64, evictedDirty, ok bool) {
	base := (line % c.sets) * uint64(c.ways)
	c.tick++
	victim := base
	var oldest uint64 = ^uint64(0)
	for w := 0; w < c.ways; w++ {
		i := base + uint64(w)
		if c.tags[i] == 0 {
			victim = i
			oldest = 0
			break
		}
		if c.stamp[i] < oldest {
			oldest = c.stamp[i]
			victim = i
		}
	}
	if c.tags[victim] != 0 {
		evicted = c.tags[victim] - 1
		evictedDirty = c.dirty[victim]
		ok = true
	}
	c.tags[victim] = line + 1
	c.stamp[victim] = c.tick
	c.dirty[victim] = write
	return evicted, evictedDirty, ok
}

// Reset invalidates all lines.
func (c *RefCache) Reset() {
	for i := range c.tags {
		c.tags[i] = 0
		c.stamp[i] = 0
		c.dirty[i] = false
	}
	c.tick = 0
}

// RefTLB is the original timestamp-LRU TLB, the reference counterpart of
// TLB.
type RefTLB struct {
	sets  uint64
	ways  int
	tags  []uint64
	stamp []uint64
	tick  uint64
}

// NewRefTLB builds a reference TLB with the given geometry.
func NewRefTLB(g platform.TLBGeom) *RefTLB {
	sets := pow2Sets(int64(g.Entries / g.Ways))
	n := sets * uint64(g.Ways)
	return &RefTLB{sets: sets, ways: g.Ways, tags: make([]uint64, n), stamp: make([]uint64, n)}
}

// Access probes for page; on a miss the page is installed (evicting an
// empty way if present, else LRU). It returns whether the probe hit.
func (t *RefTLB) Access(page uint64) bool {
	base := (page % t.sets) * uint64(t.ways)
	tag := page + 1
	t.tick++
	victim := base
	var oldest uint64 = ^uint64(0)
	for w := 0; w < t.ways; w++ {
		i := base + uint64(w)
		if t.tags[i] == tag {
			t.stamp[i] = t.tick
			return true
		}
		if t.tags[i] == 0 {
			if oldest != 0 {
				oldest = 0
				victim = i
			}
			continue
		}
		if t.stamp[i] < oldest {
			oldest = t.stamp[i]
			victim = i
		}
	}
	t.tags[victim] = tag
	t.stamp[victim] = t.tick
	return false
}

// Reset invalidates all entries.
func (t *RefTLB) Reset() {
	for i := range t.tags {
		t.tags[i] = 0
		t.stamp[i] = 0
	}
	t.tick = 0
}
