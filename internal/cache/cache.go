// Package cache implements the set-associative cache and TLB models used
// by the timing engine.
//
// Caches are simulated at cache-line granularity with true LRU replacement
// inside each set. The model is deliberately structural (tags, sets, ways)
// rather than statistical so that residency transitions — the paper's main
// axis of analysis — fall out of the geometry: a 1 MB hash table hits in
// L2, a 100 MB one misses to DRAM, exactly as in Figures 4, 5 and 13.
package cache

import "sgxbench/internal/platform"

// Cache is one set-associative level. The zero value is not usable; use New.
type Cache struct {
	sets     uint64
	ways     int
	lineBits uint
	tags     []uint64 // sets*ways; 0 means invalid, otherwise line+1
	stamp    []uint64 // LRU timestamps
	dirty    []bool
	tick     uint64
}

// New builds a cache with the given geometry.
func New(g platform.CacheGeom) *Cache {
	sets := uint64(g.Sets())
	lineBits := uint(0)
	for l := g.LineBytes; l > 1; l >>= 1 {
		lineBits++
	}
	n := sets * uint64(g.Ways)
	return &Cache{
		sets:     sets,
		ways:     g.Ways,
		lineBits: lineBits,
		tags:     make([]uint64, n),
		stamp:    make([]uint64, n),
		dirty:    make([]bool, n),
	}
}

// LineOf maps an address to its line number.
func (c *Cache) LineOf(addr uint64) uint64 { return addr >> c.lineBits }

// LineBytes returns the line size in bytes.
func (c *Cache) LineBytes() int64 { return 1 << c.lineBits }

// Access probes the cache for the line containing addr. On a hit it
// refreshes LRU state and, for writes, marks the line dirty.
func (c *Cache) Access(line uint64, write bool) bool {
	base := (line % c.sets) * uint64(c.ways)
	tag := line + 1
	c.tick++
	for w := 0; w < c.ways; w++ {
		if c.tags[base+uint64(w)] == tag {
			c.stamp[base+uint64(w)] = c.tick
			if write {
				c.dirty[base+uint64(w)] = true
			}
			return true
		}
	}
	return false
}

// Fill inserts the line (after a miss), evicting the LRU way of its set.
// It reports the evicted line and whether it was dirty; ok is false when
// an invalid way was used and nothing was evicted.
func (c *Cache) Fill(line uint64, write bool) (evicted uint64, evictedDirty, ok bool) {
	base := (line % c.sets) * uint64(c.ways)
	c.tick++
	victim := base
	var oldest uint64 = ^uint64(0)
	for w := 0; w < c.ways; w++ {
		i := base + uint64(w)
		if c.tags[i] == 0 {
			victim = i
			oldest = 0
			break
		}
		if c.stamp[i] < oldest {
			oldest = c.stamp[i]
			victim = i
		}
	}
	if c.tags[victim] != 0 {
		evicted = c.tags[victim] - 1
		evictedDirty = c.dirty[victim]
		ok = true
	}
	c.tags[victim] = line + 1
	c.stamp[victim] = c.tick
	c.dirty[victim] = write
	return evicted, evictedDirty, ok
}

// Reset invalidates all lines.
func (c *Cache) Reset() {
	for i := range c.tags {
		c.tags[i] = 0
		c.stamp[i] = 0
		c.dirty[i] = false
	}
	c.tick = 0
}

// TLB is a set-associative translation lookaside buffer over 4 KiB pages.
type TLB struct {
	sets  uint64
	ways  int
	tags  []uint64
	stamp []uint64
	tick  uint64
}

// NewTLB builds a TLB with the given geometry.
func NewTLB(g platform.TLBGeom) *TLB {
	sets := uint64(g.Entries / g.Ways)
	if sets < 1 {
		sets = 1
	}
	n := sets * uint64(g.Ways)
	return &TLB{sets: sets, ways: g.Ways, tags: make([]uint64, n), stamp: make([]uint64, n)}
}

// Access probes for page; on a miss the page is installed (evicting LRU).
// It returns whether the probe hit.
func (t *TLB) Access(page uint64) bool {
	base := (page % t.sets) * uint64(t.ways)
	tag := page + 1
	t.tick++
	victim := base
	var oldest uint64 = ^uint64(0)
	for w := 0; w < t.ways; w++ {
		i := base + uint64(w)
		if t.tags[i] == tag {
			t.stamp[i] = t.tick
			return true
		}
		if t.tags[i] == 0 {
			if oldest != 0 {
				oldest = 0
				victim = i
			}
			continue
		}
		if t.stamp[i] < oldest {
			oldest = t.stamp[i]
			victim = i
		}
	}
	t.tags[victim] = tag
	t.stamp[victim] = t.tick
	return false
}

// Reset invalidates all entries.
func (t *TLB) Reset() {
	for i := range t.tags {
		t.tags[i] = 0
		t.stamp[i] = 0
	}
	t.tick = 0
}
