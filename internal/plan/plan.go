// Package plan is the query planning and execution layer: composable
// plan nodes (Scan, Filter, Gather, the join family, GroupBy, Sort,
// TopK, Limit) that each execute over ONE shared exec.Group with
// pre-allocated Scratch intermediates, an enclave-aware cost model
// calibrated from the simulated engine itself, and a planner that
// enumerates join/aggregation strategy alternatives and picks the
// cheapest by simulated SGX cost.
//
// The node layer reproduces internal/query's hand-wired pipelines
// operator call for operator call: the same engine phases, the same
// profiler scopes, the same scratch buffers in the same allocation
// order — so a plan tree's simulated cycles, checks and statistics are
// bit-identical to the pipeline it replaces (golden-gated in CI).
//
// A pipeline runs all of its stages on ONE exec.Group: the same
// simulated threads execute scan, join and aggregation phases back to
// back, so cache, TLB and prefetcher state carry across operator
// boundaries, and every intermediate (row-id lists, filtered fact
// tuples, materialized join outputs, partition buffers) is allocated in
// the environment's data region — EPC-resident under SGX DiE, exactly
// where DuckDB-style engines hold intermediates inside an enclave.
package plan

import (
	"fmt"

	"sgxbench/internal/agg"
	"sgxbench/internal/core"
	"sgxbench/internal/engine"
	"sgxbench/internal/exec"
	"sgxbench/internal/join"
	"sgxbench/internal/mem"
	"sgxbench/internal/obs"
	"sgxbench/internal/rel"
	"sgxbench/internal/scan"
)

// DefaultLimit is the ORDER BY ... LIMIT row count when Options.Limit
// is zero, and the per-thread top-k capacity NewScratch provisions.
const DefaultLimit = 1024

// Dataset is the star-schema corpus the pipelines run over: a dimension
// relation (unique keys), a fact relation (foreign keys into the
// dimension, payload = row id), and a byte filter column aligned with
// the fact rows (the selectivity knob of the scan stage). Snowflake
// queries extend the star with Extra chain dimensions (EnsureChain).
type Dataset struct {
	Dim    *rel.Relation
	Fact   *rel.Relation
	Filter *mem.U8Buf
	// Extra holds the snowflake chain levels beyond Dim: level i's keys
	// are the 1-based encoding of level i-1's payload domain (Dim is
	// level 0). Allocated lazily by EnsureChain; nil for star queries.
	Extra []*rel.Relation
	// Seed is the generator seed the dataset was built from; EnsureChain
	// derives the chain levels' seeds from it.
	Seed uint64
}

// GenDataset allocates and fills a dataset in env's data region.
// Deterministic in seed.
func GenDataset(env *core.Env, nDim, nFact int, seed uint64) *Dataset {
	dim, fact := rel.GenFKPair(env.Space, nDim, nFact, env.DataRegion(), seed)
	filter := env.Space.AllocU8("q.filter", nFact, env.DataRegion())
	scan.GenColumn(filter, seed^0x9e3779b97f4a7c15)
	return &Dataset{Dim: dim, Fact: fact, Filter: filter, Seed: seed}
}

// EnsureChain extends ds with snowflake dimensions until `extra` chain
// levels exist beyond Dim. Each level has Dim's row count, unique keys
// 1..n in random order, payload = row id — so a swap-projected join
// output (key = previous level's payload + 1) probes it as a foreign
// key. Lazy and idempotent: repeated runs over the same Dataset reuse
// the levels, keeping simulated addresses deterministic.
func EnsureChain(env *core.Env, ds *Dataset, extra int) {
	for len(ds.Extra) < extra {
		i := len(ds.Extra)
		name := fmt.Sprintf("D%d", i+2)
		seed := ds.Seed ^ 0xd1b54a32d192ed03*uint64(i+2)
		ds.Extra = append(ds.Extra, rel.GenDim(env.Space, name, ds.Dim.N(), env.DataRegion(), seed))
	}
}

// dim returns the join build side at chain level (0 = Dim).
func (ds *Dataset) dim(level int) *rel.Relation {
	if level == 0 {
		return ds.Dim
	}
	return ds.Extra[level-1]
}

// Options configures a pipeline run.
type Options struct {
	// Threads is the number of worker threads (default 1).
	Threads int
	// NodeOf pins thread i to a socket (nil: the env's node).
	NodeOf func(i int) int
	// Pred is the fact filter predicate (the Filter node's knob).
	Pred scan.Predicate
	// MaxRows caps the filtered rows fed downstream (0: no cap) — the
	// benchmark knob bounding the expensive random-access stages.
	MaxRows int
	// Limit is the ORDER BY ... LIMIT row count (0: DefaultLimit).
	Limit int
	// Scratch provides pre-allocated intermediates; repeated runs over
	// the same Scratch see identical simulated addresses (benchmark
	// repetitions, golden gates). Nil allocates internally.
	Scratch *Scratch
	// Profiler, when set, receives the run's cycle-attribution tree:
	// one scope per pipeline stage, one leaf per exec phase with the
	// engine's cycle attribution. Purely observational — attaching a
	// profiler changes no simulated cycle or check value.
	Profiler *obs.Profiler
}

func (o Options) threads() int {
	if o.Threads < 1 {
		return 1
	}
	return o.Threads
}

// limitRows resolves the effective LIMIT under the scratch capacity.
func (o Options) limitRows() int {
	if o.Limit > 0 {
		return o.Limit
	}
	return DefaultLimit
}

// Scratch holds a pipeline's pre-allocated intermediates. The paper
// pre-allocates result memory; pipelines extend that convention to every
// inter-stage buffer so repetitions never re-fault fresh pages.
type Scratch struct {
	IDs     *mem.U64Buf   // row-id scan output
	FTup    *mem.U64Buf   // filtered fact tuples
	JoinOut []*mem.U64Buf // per-thread materialized join outputs
	AggOut  *mem.U64Buf   // group entries
	AggPart *mem.U64Buf   // group-by partition intermediate
	// Sort-shape intermediates (Sort/TopK/MergeJoin nodes), allocated
	// lazily on first use so the hash-shape pipelines' working sets —
	// and serve.Calibrate's per-class page counts, which drive the EDMM
	// commit costs — never carry sort scratch they don't touch. Once
	// allocated they are reused, so repeated runs still see identical
	// simulated addresses. The fact-side sort triple is sized like FTup
	// (maxRows), the dim side for the full dimension; the top-k triple
	// for up to topK rows per thread.
	FactSort, FactTmp, FactSorted *mem.U64Buf // fact-stream work / ping-pong / sorted
	DimSort, DimTmp, DimSorted    *mem.U64Buf // dim work / ping-pong / sorted
	TopKHeap, TopKTmp             *mem.U64Buf // per-thread heaps + final-sort ping-pong
	TopKOut                       *mem.U64Buf // emitted LIMIT rows
	Swap                          *mem.U64Buf // Project node's contiguous swap output
	cap                           int
	topK                          int
}

// NewScratch pre-allocates intermediates for pipelines over ds with the
// given thread count; maxRows bounds the rows any stage materializes
// (use the fact row count when no MaxRows cap is applied).
func NewScratch(env *core.Env, ds *Dataset, threads, maxRows int) *Scratch {
	if threads < 1 {
		threads = 1
	}
	if maxRows < 1 {
		maxRows = 1
	}
	reg := env.DataRegion()
	topK := DefaultLimit
	if topK > maxRows {
		topK = maxRows
	}
	sc := &Scratch{
		IDs:     env.Space.AllocU64("q.ids", ds.Fact.N()+64, reg),
		FTup:    env.Space.AllocU64("q.ftup", maxRows, reg),
		JoinOut: make([]*mem.U64Buf, threads),
		AggOut:  env.Space.AllocU64("q.agg.out", agg.EntryWords*maxRows, reg),
		AggPart: env.Space.AllocU64("q.agg.parts", maxRows, reg),
		cap:     maxRows,
		topK:    topK,
	}
	for i := range sc.JoinOut {
		sc.JoinOut[i] = env.Space.AllocU64(fmt.Sprintf("q.join.out.%d", i), maxRows, reg)
	}
	return sc
}

// ensureSort allocates the sort triples on first use (in the pipeline's
// setup path, before any timed phase, so addresses stay deterministic).
func (sc *Scratch) ensureSort(env *core.Env, ds *Dataset) {
	if sc.FactSort != nil {
		return
	}
	reg := env.DataRegion()
	sc.FactSort = env.Space.AllocU64("q.fact.work", sc.cap, reg)
	sc.FactTmp = env.Space.AllocU64("q.fact.tmp", sc.cap, reg)
	sc.FactSorted = env.Space.AllocU64("q.fact.sorted", sc.cap, reg)
	sc.DimSort = env.Space.AllocU64("q.dim.work", ds.Dim.N(), reg)
	sc.DimTmp = env.Space.AllocU64("q.dim.tmp", ds.Dim.N(), reg)
	sc.DimSorted = env.Space.AllocU64("q.dim.sorted", ds.Dim.N(), reg)
}

// ensureTopK allocates the top-k triple on first use, and grows it when
// a LIMIT beyond the provisioned DefaultLimit capacity needs more heap
// rows per thread (the re-allocation advances simulated addresses once,
// exactly like the operator-internal fallback it replaces, but keeps
// repetitions over the same Scratch deterministic afterwards).
func (sc *Scratch) ensureTopK(env *core.Env, threads, k int) {
	if threads < 1 {
		threads = 1
	}
	if k < sc.topK {
		k = sc.topK
	}
	if sc.TopKHeap != nil && sc.TopKHeap.Len() >= threads*k && sc.TopKOut.Len() >= k {
		return
	}
	reg := env.DataRegion()
	sc.TopKHeap = env.Space.AllocU64("q.topk.heap", threads*k, reg)
	sc.TopKTmp = env.Space.AllocU64("q.topk.tmp", threads*k, reg)
	sc.TopKOut = env.Space.AllocU64("q.topk.out", k, reg)
}

// ensureSwap allocates the Project node's contiguous output on first use.
func (sc *Scratch) ensureSwap(env *core.Env) {
	if sc.Swap != nil {
		return
	}
	sc.Swap = env.Space.AllocU64("q.swap", sc.cap, env.DataRegion())
}

// StageStats reports one pipeline stage.
type StageStats struct {
	Name       string
	WallCycles uint64
	Rows       uint64 // rows the stage produced
}

// Result reports a completed pipeline.
type Result struct {
	Pipeline   string
	WallCycles uint64
	Rows       uint64 // rows flowing into the final stage
	Groups     int
	// Check is the deterministic checksum benchmarks and golden gates
	// compare: stage cardinalities folded with the aggregate checksum.
	Check  uint64
	Stages []StageStats
	Phases []exec.PhaseStats
	Stats  engine.Stats
	// TopRows holds an ORDER BY query's emitted LIMIT rows in key order
	// (nil for the aggregation-shaped pipelines).
	TopRows []uint64
}

// scratch returns the options' Scratch, allocating one when absent.
func (o Options) scratch(env *core.Env, ds *Dataset) *Scratch {
	if o.Scratch != nil {
		return o.Scratch
	}
	maxRows := ds.Fact.N()
	if o.MaxRows > 0 && o.MaxRows < maxRows {
		maxRows = o.MaxRows
	}
	return NewScratch(env, ds, o.threads(), maxRows)
}

// profiled attaches opt.Profiler (when set) to the group and opens the
// pipeline's own scope, so stage scopes and phase leaves nest under the
// pipeline name. The returned closer pops the scope; with no profiler
// everything is a no-op:
//
//	defer profiled(g, opt, name)()
func profiled(g *exec.Group, opt Options, name string) func() {
	if opt.Profiler == nil {
		return func() {}
	}
	g.AttachProfiler(opt.Profiler)
	return g.Scope(name)
}

// capRuns truncates the per-thread id runs, in order, to at most maxN
// total rows; it returns the capped runs and their row total.
func capRuns(runs []scan.IDRun, maxN int) ([]scan.IDRun, int) {
	out := make([]scan.IDRun, 0, len(runs))
	n := 0
	for _, r := range runs {
		if r.Count > maxN-n {
			r.Count = maxN - n
		}
		out = append(out, r)
		n += r.Count
	}
	return out, n
}

// joinSegments maps a materialized join result onto the aggregation's
// input segments: one per thread, backed by the pre-allocated output
// buffer. Rows past a buffer's capacity spilled to dynamically claimed
// chunks at non-deterministic addresses; they are excluded here (size
// Scratch to the workload so this never truncates — the stage row
// counts in Result.Stages expose it when it does).
func joinSegments(sc *Scratch, jr *join.Result) []agg.Input {
	segs := make([]agg.Input, 0, len(jr.Output))
	for i, rows := range jr.Output {
		n := len(rows)
		if i < len(sc.JoinOut) {
			if c := sc.JoinOut[i].Len(); n > c {
				n = c
			}
			segs = append(segs, agg.Input{Tup: sc.JoinOut[i], N: n})
		}
	}
	return segs
}

// finish seals the pipeline result from the group's full run.
func finish(g *exec.Group, res *Result) *Result {
	res.Phases = g.Phases()
	res.WallCycles = g.Clock()
	res.Stats = g.TotalStats()
	return res
}
