package plan

import (
	"sgxbench/internal/core"
	"sgxbench/internal/rel"
	"sgxbench/internal/scan"
)

// The 20-query OLAP suite: star/snowflake shapes spanning the planner's
// decision space — selectivities from 0.4% to 90%, uniform and
// self-similar (80/20) fact keys, join chains of 0–3 dimensions, and
// aggregation vs ORDER BY [LIMIT] finals.
//
// Naming scheme: s<NN>.j<dims>.sel<permille>.<u|z>.<agg|top|ord>
//   j<dims>   join chain depth (j0 = pure aggregation over the fact)
//   sel<...>  filter selectivity in permille (sel004 = 0.4%, sel250 = 25%)
//   u|z       uniform vs skewed (Zipf-like self-similar) fact keys
//   agg       group-by final;  top = ORDER BY + LIMIT;  ord = ORDER BY

// Suite predicates: byte-filter ranges hitting the named selectivities.
var (
	sel004 = scan.Predicate{Lo: 40, Hi: 40}  // 1/256  ≈ 0.4%
	sel102 = scan.Predicate{Lo: 16, Hi: 41}  // 26/256 ≈ 10.2%
	sel250 = scan.Predicate{Lo: 32, Hi: 95}  // 64/256 = 25%
	sel500 = scan.Predicate{Lo: 0, Hi: 127}  // 128/256 = 50%
	sel902 = scan.Predicate{Lo: 10, Hi: 240} // 231/256 ≈ 90.2%
)

// SuiteLimit is the LIMIT of the suite's top-k queries: small enough
// that the heap top-k and the full-sort cutoff genuinely differ.
const SuiteLimit = 256

// Suite returns the suite queries in report order.
func Suite() []Query {
	return []Query{
		{Name: "s01.j0.sel004.u.agg", Pred: sel004},
		{Name: "s02.j0.sel250.u.agg", Pred: sel250},
		{Name: "s03.j0.sel902.u.agg", Pred: sel902},
		{Name: "s04.j0.sel250.z.agg", Pred: sel250, Skew: true},
		{Name: "s05.j0.sel102.u.top", Pred: sel102, Order: true, Limit: SuiteLimit},
		{Name: "s06.j0.sel500.u.ord", Pred: sel500, Order: true},
		{Name: "s07.j1.sel004.u.agg", Pred: sel004, Dims: 1},
		{Name: "s08.j1.sel102.u.agg", Pred: sel102, Dims: 1},
		{Name: "s09.j1.sel250.u.agg", Pred: sel250, Dims: 1},
		{Name: "s10.j1.sel500.u.agg", Pred: sel500, Dims: 1},
		{Name: "s11.j1.sel902.u.agg", Pred: sel902, Dims: 1},
		{Name: "s12.j1.sel250.z.agg", Pred: sel250, Dims: 1, Skew: true},
		{Name: "s13.j1.sel902.z.agg", Pred: sel902, Dims: 1, Skew: true},
		{Name: "s14.j1.sel250.u.top", Pred: sel250, Dims: 1, Order: true, Limit: SuiteLimit},
		{Name: "s15.j1.sel500.u.ord", Pred: sel500, Dims: 1, Order: true},
		{Name: "s16.j2.sel250.u.agg", Pred: sel250, Dims: 2},
		{Name: "s17.j2.sel500.z.agg", Pred: sel500, Dims: 2, Skew: true},
		{Name: "s18.j2.sel102.u.top", Pred: sel102, Dims: 2, Order: true, Limit: SuiteLimit},
		{Name: "s19.j3.sel250.u.agg", Pred: sel250, Dims: 3},
		{Name: "s20.j3.sel902.z.agg", Pred: sel902, Dims: 3, Skew: true},
	}
}

// SuiteByName returns the suite query with the given name.
func SuiteByName(name string) (Query, bool) {
	for _, q := range Suite() {
		if q.Name == name {
			return q, true
		}
	}
	return Query{}, false
}

// GenSuiteDataset builds the corpus q is specified over: the uniform
// star dataset, the self-similar fact keys when the query is skewed,
// and the snowflake chain levels its join depth needs. Deterministic in
// seed.
func GenSuiteDataset(env *core.Env, q Query, nDim, nFact int, seed uint64) *Dataset {
	ds := GenDataset(env, nDim, nFact, seed)
	if q.Skew {
		rel.GenSkewFK(ds.Fact, nDim, seed^0x94d049bb133111eb)
	}
	if q.Dims > 1 {
		EnsureChain(env, ds, q.Dims-1)
	}
	return ds
}
