package plan

import (
	"math"

	"sgxbench/internal/agg"
	"sgxbench/internal/core"
	"sgxbench/internal/scan"
)

// Order strategy identifiers (Alternative.Ord values).
const (
	OrdTopK = "topk" // heap-based top-k
	OrdSort = "sort" // full sort + LIMIT cutoff
)

// Query is one declarative suite query: a star/snowflake shape the
// planner lowers to a plan tree by picking join, aggregation and order
// strategies.
type Query struct {
	Name string
	// Pred is the fact filter predicate (the selectivity knob).
	Pred scan.Predicate
	// Dims is the join chain depth: 0 (pure aggregation) to 3.
	Dims int
	// Skew marks the dataset recipe: fact foreign keys drawn
	// self-similar (80/20) instead of uniform. A dataset property — the
	// plan shape and the planner's uniform cost estimate are unchanged.
	Skew bool
	// Order requests ORDER BY (by the last joined attribute, or the
	// fact key for Dims == 0); Limit > 0 adds LIMIT.
	Order bool
	Limit int
}

// Alternative is one static strategy choice the planner weighs.
type Alternative struct {
	Join string // JoinRHO/JoinINL/JoinMerge/JoinGrace ("" when Dims == 0)
	Agg  string // AggHash/AggSpill ("" for ORDER BY queries)
	Ord  string // OrdTopK/OrdSort ("" for aggregation queries)
}

// String names the alternative for reports and cost maps.
func (a Alternative) String() string {
	s := ""
	for _, part := range []string{a.Join, a.Agg, a.Ord} {
		if part == "" {
			continue
		}
		if s != "" {
			s += "+"
		}
		s += part
	}
	if s == "" {
		return "direct"
	}
	return s
}

// Alternatives enumerates the static strategy choices for q, in
// deterministic order (the planner's tie-break prefers earlier
// entries). MergeJoin is enumerated for single-level joins; deeper
// chains would need a re-sort per level, which no strategy here models.
func (q Query) Alternatives() []Alternative {
	joins := []string{""}
	if q.Dims > 0 {
		joins = []string{JoinRHO, JoinINL, JoinGrace}
		if q.Dims == 1 {
			joins = append(joins, JoinMerge)
		}
	}
	var finals []Alternative
	switch {
	case q.Order && q.Limit > 0:
		finals = []Alternative{{Ord: OrdTopK}, {Ord: OrdSort}}
	case q.Order:
		finals = []Alternative{{Ord: OrdSort}}
	default:
		finals = []Alternative{{Agg: AggHash}, {Agg: AggSpill}}
	}
	out := make([]Alternative, 0, len(joins)*len(finals))
	for _, j := range joins {
		for _, f := range finals {
			f.Join = j
			out = append(out, f)
		}
	}
	return out
}

// Tree lowers q to a plan tree under the given strategy alternative.
func (q Query) Tree(alt Alternative) Node {
	var root Node = Gather{Input: Filter{Input: Scan{}}}
	for lvl := 0; lvl < q.Dims; lvl++ {
		switch alt.Join {
		case JoinINL:
			root = INLJoin{Input: root, Level: lvl}
		case JoinGrace:
			root = GraceJoin{Input: root, Level: lvl}
		case JoinMerge:
			root = MergeJoin{Input: root}
		default:
			root = HashJoin{Input: root, Level: lvl}
		}
		if lvl < q.Dims-1 || q.Order {
			// Re-key by the joined attribute for the next probe or the
			// ORDER BY.
			root = Project{Input: root}
		}
	}
	switch {
	case q.Order && q.Limit > 0 && alt.Ord == OrdTopK:
		root = TopK{Input: root}
	case q.Order && q.Limit > 0:
		root = Limit{Input: Sort{Input: root}}
	case q.Order:
		root = Sort{Input: root}
	default:
		sel := agg.ByKey
		if q.Dims > 0 {
			sel = agg.ByPayload
		}
		if alt.Agg == AggSpill {
			root = SpillGroupBy{Input: root, Sel: sel}
		} else {
			root = GroupBy{Input: root, Sel: sel}
		}
	}
	return root
}

// Choose costs every alternative of q under the model and returns the
// cheapest (ties break to enumeration order) plus the full cost map
// keyed by Alternative.String().
func Choose(m *Model, q Query, sh Shape) (Alternative, map[string]float64) {
	alts := q.Alternatives()
	costs := make(map[string]float64, len(alts))
	best, bestC := alts[0], math.Inf(1)
	for _, a := range alts {
		c := m.Cost(q, a, sh)
		costs[a.String()] = c
		if c < bestC {
			best, bestC = a, c
		}
	}
	return best, costs
}

// shapeOf estimates the planner Shape for an environment: the dataset
// sizes, and — under an EPC capacity limit — the ratio of the query's
// approximate working set (fact column + filter + scratch-sized
// intermediates) to that capacity.
func shapeOf(env *core.Env, ds *Dataset) Shape {
	sh := Shape{NDim: ds.Dim.N(), NFact: ds.Fact.N()}
	if env.EPCPages > 0 {
		// fact tuples + filter bytes + id list + filtered tuples +
		// join outputs + agg entries: ~9 bytes of table plus ~7 words of
		// intermediates per fact row.
		wsBytes := int64(ds.Fact.N())*(9+7*8) + int64(ds.Dim.N())*8
		sh.EPCRatio = float64(wsBytes/4096+1) / float64(env.EPCPages)
	}
	return sh
}

// Plan picks the cost-based strategy for q in env at a thread count and
// returns the lowered tree alongside the choice.
func (q Query) Plan(env *core.Env, ds *Dataset, threads int) (Node, Alternative) {
	m := ModelFor(env.Setting, threads)
	alt, _ := Choose(m, q, shapeOf(env, ds))
	return q.Tree(alt), alt
}

// Run executes q end to end: ensures the snowflake chain exists, picks
// the cheapest strategy for the environment's setting and EPC regime,
// and executes the lowered tree. This is the suite entry point behind
// query.Suite / serve.Calibrate / diag -query.
func (q Query) Run(env *core.Env, ds *Dataset, opt Options) *Result {
	if q.Dims > 1 {
		EnsureChain(env, ds, q.Dims-1)
	}
	opt.Pred = q.Pred
	if q.Limit > 0 && opt.Limit == 0 {
		opt.Limit = q.Limit
	}
	root, _ := q.Plan(env, ds, opt.threads())
	return Execute(env, ds, opt, q.Name, root)
}
