package plan

import (
	stdsort "sort"
	"testing"

	"sgxbench/internal/core"
	"sgxbench/internal/mem"
	"sgxbench/internal/platform"
	sortop "sgxbench/internal/sort"
)

const (
	testDim  = 512
	testFact = 1 << 14
	testSeed = 4242
)

func testEnv(setting core.Setting, ref bool) *core.Env {
	return core.NewEnv(core.Options{
		Plat:      platform.XeonGold6326().Scaled(32),
		Setting:   setting,
		Reference: ref,
	})
}

// oracleSuite computes a suite query's expected shape straight from the
// generated (host-visible) dataset: surviving row count, distinct final
// group keys for aggregation finals, and the ordered output tuples for
// ORDER BY finals.
func oracleSuite(ds *Dataset, q Query) (rows int, groups map[uint32]bool, ord []uint64) {
	dimMaps := make([]map[uint32]uint32, q.Dims)
	for l := 0; l < q.Dims; l++ {
		d := ds.dim(l)
		m := make(map[uint32]uint32, d.N())
		for i := 0; i < d.N(); i++ {
			m[d.Key(i)] = d.Payload(i)
		}
		dimMaps[l] = m
	}
	groups = make(map[uint32]bool)
	for i := 0; i < ds.Fact.N(); i++ {
		if ds.Filter.D[i] < q.Pred.Lo || ds.Filter.D[i] > q.Pred.Hi {
			continue
		}
		rows++
		if q.Dims == 0 {
			groups[ds.Fact.Key(i)] = true
			ord = append(ord, ds.Fact.Tup.D[i])
			continue
		}
		// Walk the join chain: each level maps the current key to the
		// dimension payload, re-keyed 1-based by the Project node.
		key := ds.Fact.Key(i)
		var p uint32
		for l := 0; l < q.Dims; l++ {
			p = dimMaps[l][key]
			key = p + 1
		}
		groups[p] = true
		ord = append(ord, mem.MakeTuple(p+1, ds.Fact.Payload(i)))
	}
	stdsort.Slice(ord, func(i, j int) bool { return sortop.TupLess(ord[i], ord[j]) })
	return rows, groups, ord
}

// TestSuiteCorrectness validates planner-chosen executions of suite
// queries against pure-Go oracles computed from the dataset itself.
func TestSuiteCorrectness(t *testing.T) {
	for _, name := range []string{
		"s02.j0.sel250.u.agg", "s04.j0.sel250.z.agg", "s05.j0.sel102.u.top",
		"s09.j1.sel250.u.agg", "s14.j1.sel250.u.top", "s15.j1.sel500.u.ord",
		"s16.j2.sel250.u.agg", "s19.j3.sel250.u.agg", "s20.j3.sel902.z.agg",
	} {
		q, ok := SuiteByName(name)
		if !ok {
			t.Fatalf("suite query %q missing", name)
		}
		env := testEnv(core.PlainCPU, false)
		ds := GenSuiteDataset(env, q, testDim, testFact, testSeed)
		res := q.Run(env, ds, Options{Threads: 2})
		rows, groups, ord := oracleSuite(ds, q)
		if res.Rows != uint64(rows) {
			t.Errorf("%s: rows=%d oracle=%d", name, res.Rows, rows)
		}
		switch {
		case q.Order && q.Limit > 0:
			k := q.Limit
			if k > rows {
				k = rows
			}
			if res.Groups != k || len(res.TopRows) != k {
				t.Errorf("%s: emitted %d/%d rows, oracle %d", name, res.Groups, len(res.TopRows), k)
				continue
			}
			for i := 0; i < k; i++ {
				if res.TopRows[i] != ord[i] {
					t.Errorf("%s: row %d = %#x, oracle %#x", name, i, res.TopRows[i], ord[i])
					break
				}
			}
		case q.Order:
			if res.Groups != rows {
				t.Errorf("%s: sorted rows=%d oracle=%d", name, res.Groups, rows)
			}
		default:
			if res.Groups != len(groups) {
				t.Errorf("%s: groups=%d oracle=%d", name, res.Groups, len(groups))
			}
		}
	}
}

// TestTreeFastRefEquivalence enforces the fast-path invariant on plan
// trees that exercise every node type — Project, INLJoin, GraceJoin,
// MergeJoin, Sort, TopK, Limit — under all four settings: fast and
// reference engine paths must be bit-identical in check, wall cycles
// and aggregate statistics.
func TestTreeFastRefEquivalence(t *testing.T) {
	cases := []struct {
		label string
		q     Query
		alt   Alternative
	}{
		{"inl-chain-topk", Query{Name: "t.inl", Pred: sel250, Dims: 2, Order: true, Limit: 128}, Alternative{Join: JoinINL, Ord: OrdTopK}},
		{"rho-chain-sortlimit", Query{Name: "t.rho", Pred: sel250, Dims: 2, Order: true, Limit: 128}, Alternative{Join: JoinRHO, Ord: OrdSort}},
		{"grace-ord", Query{Name: "t.grace", Pred: sel500, Dims: 1, Order: true}, Alternative{Join: JoinGrace, Ord: OrdSort}},
		{"merge-spill", Query{Name: "t.merge", Pred: sel250, Dims: 1}, Alternative{Join: JoinMerge, Agg: AggSpill}},
	}
	settings := []core.Setting{core.PlainCPU, core.PlainCPUM, core.SGXDoE, core.SGXDiE}
	for _, c := range cases {
		for _, setting := range settings {
			label := c.label + "/" + setting.String()
			run := func(ref bool) *Result {
				env := testEnv(setting, ref)
				ds := GenSuiteDataset(env, c.q, testDim, testFact, testSeed)
				return Execute(env, ds, Options{Threads: 2, Pred: c.q.Pred, Limit: c.q.Limit},
					c.q.Name, c.q.Tree(c.alt))
			}
			ref, fast := run(true), run(false)
			if ref.Check != fast.Check {
				t.Errorf("%s: check ref=%#x fast=%#x", label, ref.Check, fast.Check)
			}
			if ref.WallCycles != fast.WallCycles {
				t.Errorf("%s: wall cycles ref=%d fast=%d", label, ref.WallCycles, fast.WallCycles)
			}
			if ref.Stats != fast.Stats {
				t.Errorf("%s: stats differ\nref:  %+v\nfast: %+v", label, ref.Stats, fast.Stats)
			}
			if ref.Groups != fast.Groups || ref.Rows != fast.Rows {
				t.Errorf("%s: shape ref=(%d, %d) fast=(%d, %d)", label, ref.Rows, ref.Groups, fast.Rows, fast.Groups)
			}
		}
	}
}

// TestSuiteRepeatDeterminism checks that planner-driven suite runs are
// bit-identical across identically prepared environments and stable
// across repetitions, including the lazily grown chain dimensions and
// swap scratch.
func TestSuiteRepeatDeterminism(t *testing.T) {
	q, _ := SuiteByName("s18.j2.sel102.u.top")
	prep := func() (*core.Env, *Dataset, Options) {
		env := testEnv(core.SGXDiE, false)
		ds := GenSuiteDataset(env, q, testDim, testFact, testSeed)
		return env, ds, Options{Threads: 2, Scratch: NewScratch(env, ds, 2, testFact)}
	}
	envA, dsA, optA := prep()
	envB, dsB, optB := prep()
	for rep := 0; rep < 3; rep++ {
		a := q.Run(envA, dsA, optA)
		b := q.Run(envB, dsB, optB)
		if a.Check != b.Check || a.WallCycles != b.WallCycles || a.Stats != b.Stats {
			t.Errorf("rep %d: envA (check=%#x wall=%d) vs envB (check=%#x wall=%d)",
				rep, a.Check, a.WallCycles, b.Check, b.WallCycles)
		}
	}
}

// TestAlternativesEnumeration pins the planner's strategy space.
func TestAlternativesEnumeration(t *testing.T) {
	cases := []struct {
		q    Query
		want int
	}{
		{Query{}, 2},                               // hash, spill
		{Query{Order: true}, 1},                    // sort
		{Query{Order: true, Limit: 8}, 2},          // topk, sort
		{Query{Dims: 1}, 8},                        // 4 joins × 2 aggs
		{Query{Dims: 2}, 6},                        // 3 joins (no merge) × 2
		{Query{Dims: 3, Order: true, Limit: 8}, 6}, // 3 joins × 2 orders
	}
	for _, c := range cases {
		alts := c.q.Alternatives()
		if len(alts) != c.want {
			t.Errorf("dims=%d order=%v limit=%d: %d alternatives, want %d",
				c.q.Dims, c.q.Order, c.q.Limit, len(alts), c.want)
		}
		seen := map[string]bool{}
		for _, a := range alts {
			if seen[a.String()] {
				t.Errorf("duplicate alternative %q", a.String())
			}
			seen[a.String()] = true
		}
	}
	if (Alternative{}).String() != "direct" {
		t.Errorf("empty alternative = %q, want direct", (Alternative{}).String())
	}
}

// TestEnsureChainIdempotent: repeated chain provisioning must not
// re-allocate (address stability is what repeat determinism rests on).
func TestEnsureChainIdempotent(t *testing.T) {
	env := testEnv(core.PlainCPU, false)
	ds := GenDataset(env, testDim, testFact, testSeed)
	EnsureChain(env, ds, 2)
	base := ds.Extra[0].Tup.Base
	used := env.Space.Used(env.DataRegion())
	EnsureChain(env, ds, 2)
	if len(ds.Extra) != 2 || ds.Extra[0].Tup.Base != base {
		t.Fatal("EnsureChain re-allocated existing levels")
	}
	if got := env.Space.Used(env.DataRegion()); got != used {
		t.Fatalf("EnsureChain leaked %d bytes on re-run", got-used)
	}
	EnsureChain(env, ds, 3)
	if len(ds.Extra) != 3 {
		t.Fatalf("chain depth %d, want 3", len(ds.Extra))
	}
}
