package plan

import (
	"sgxbench/internal/agg"
	"sgxbench/internal/core"
	"sgxbench/internal/engine"
	"sgxbench/internal/exec"
	"sgxbench/internal/join"
	"sgxbench/internal/mem"
	"sgxbench/internal/rel"
	"sgxbench/internal/scan"
	sortop "sgxbench/internal/sort"
)

// Context is the shared execution state a plan tree runs in: one Env,
// one exec.Group (so simulated cache/TLB state carries across node
// boundaries), one Scratch, and the Result the nodes fold stage stats
// and checksums into.
type Context struct {
	Env *core.Env
	G   *exec.Group
	DS  *Dataset
	SC  *Scratch
	Opt Options
	Res *Result
}

// Stream is the data flowing between plan nodes: a base relation
// (Scan), a contiguous tuple stream (Gather/Sort/Project), or the
// per-thread segments of a materialized join.
type Stream struct {
	Rel  *rel.Relation // base table (Scan); nil downstream
	Tup  *mem.U64Buf   // contiguous tuples
	N    int           // row count
	Segs []agg.Input   // segmented join output
	ids  *mem.U64Buf   // row-id list (Filter)
	runs []scan.IDRun  // per-thread id runs (Filter)
}

// aggInputs adapts the stream to the aggregation operators' segment
// form: the join segments when present, else the contiguous stream.
func (s Stream) aggInputs() []agg.Input {
	if s.Segs != nil {
		return s.Segs
	}
	return []agg.Input{{Tup: s.Tup, N: s.N}}
}

// probeRel adapts the stream to a join probe side: the base table
// itself for an unfiltered scan, else a view of the contiguous stream
// (named S' after the filtered fact side of the star query).
func (s Stream) probeRel() *rel.Relation {
	if s.Rel != nil {
		return s.Rel
	}
	return &rel.Relation{Name: "S'", Tup: s.Tup.View(s.N)}
}

// Node is one operator of a plan tree. Exec pulls the input stream from
// the child, runs this node's engine phases on ctx.G, folds its stage
// stats and checksum contribution into ctx.Res, and returns the output
// stream.
type Node interface {
	Exec(ctx *Context) Stream
}

// Execute runs a plan tree as a pipeline: one group, one scratch, one
// result — the same prologue/epilogue as the hand-wired pipelines it
// replaces.
func Execute(env *core.Env, ds *Dataset, opt Options, name string, root Node) *Result {
	g := env.NewGroup(opt.threads(), opt.NodeOf)
	sc := opt.scratch(env, ds)
	defer profiled(g, opt, name)()
	res := &Result{Pipeline: name, Check: agg.FNVOffset64}
	ctx := &Context{Env: env, G: g, DS: ds, SC: sc, Opt: opt, Res: res}
	root.Exec(ctx)
	return finish(g, res)
}

// stage folds one completed stage into the result.
func (ctx *Context) stage(name string, wall uint64, rows uint64, check uint64) {
	ctx.Res.Stages = append(ctx.Res.Stages, StageStats{Name: name, WallCycles: wall, Rows: rows})
	ctx.Res.Check = agg.Mix(ctx.Res.Check, check)
}

// Scan streams a base relation (the fact table). Untimed leaf: the
// downstream operators read base tables in place.
type Scan struct{}

// Exec returns the fact table as a stream.
func (Scan) Exec(ctx *Context) Stream {
	return Stream{Rel: ctx.DS.Fact, Tup: ctx.DS.Fact.Tup, N: ctx.DS.Fact.N()}
}

// Filter is σ(fact): a row-id scan over the filter column with
// Options.Pred, emitting the qualifying row ids as per-thread runs.
type Filter struct{ Input Node }

// Exec runs the row-id scan.
func (f Filter) Exec(ctx *Context) Stream {
	in := f.Input.Exec(ctx)
	closeFilter := ctx.G.Scope("filter")
	sr := scan.RunOn(ctx.Env, ctx.G, ctx.DS.Filter, scan.Options{Pred: ctx.Opt.Pred, RowIDs: true, IDs: ctx.SC.IDs})
	closeFilter()
	ctx.stage("filter", sr.WallCycles, sr.Matches, sr.Matches)
	return Stream{Rel: in.Rel, N: int(sr.Matches), ids: ctx.SC.IDs, runs: sr.IDRuns}
}

// Gather materializes the filtered rows: fetches the base table's
// tuples at the filter's row ids, densely packed in per-thread run
// order (the data-dependent random-access stage).
type Gather struct{ Input Node }

// Exec runs the tuple gather.
func (gn Gather) Exec(ctx *Context) Stream {
	in := gn.Input.Exec(ctx)
	maxN := ctx.SC.FTup.Len()
	if ctx.Opt.MaxRows > 0 && ctx.Opt.MaxRows < maxN {
		maxN = ctx.Opt.MaxRows
	}
	runs, n := capRuns(in.runs, maxN)
	closeGather := ctx.G.Scope("gather")
	gr := scan.GatherU64On(ctx.Env, ctx.G, in.Rel.Tup, in.ids, runs, ctx.SC.FTup)
	closeGather()
	ctx.stage("gather", gr.WallCycles, uint64(n), gr.Sum)
	return Stream{Tup: ctx.SC.FTup, N: n}
}

// joinRunner is the slice of the join algorithms the nodes drive: every
// algorithm that can execute on a caller-owned group.
type joinRunner interface {
	Name() string
	RunOn(env *core.Env, g *exec.Group, build, probe *rel.Relation, opt join.Options) (*join.Result, error)
}

// execJoin runs one materializing FK join of the input stream against
// the chain-level dimension on the shared group.
func execJoin(ctx *Context, alg joinRunner, in Stream, level int) Stream {
	build := ctx.DS.dim(level)
	probe := in.probeRel()
	closeJoin := ctx.G.Scope("join")
	jr, err := alg.RunOn(ctx.Env, ctx.G, build, probe, join.Options{
		Optimized: true, Materialize: true, OutBufs: ctx.SC.JoinOut,
	})
	closeJoin()
	if err != nil {
		panic(err)
	}
	ctx.stage("join", jr.WallCycles, jr.Matches, jr.Matches)
	segs := joinSegments(ctx.SC, jr)
	n := 0
	for _, s := range segs {
		n += s.N
	}
	return Stream{Segs: segs, N: n}
}

// HashJoin probes the chain-level dimension with a hash join: the
// radix-partitioned RHO by default, or the shared-table PHT (the
// paper's no-partitioning join) when Shared is set.
type HashJoin struct {
	Input  Node
	Shared bool // PHT instead of RHO
	Level  int  // dimension chain level (0 = Dim)
}

// Exec runs the hash join.
func (h HashJoin) Exec(ctx *Context) Stream {
	var alg joinRunner = join.NewRHO()
	if h.Shared {
		alg = join.NewPHT()
	}
	return execJoin(ctx, alg, h.Input.Exec(ctx), h.Level)
}

// INLJoin probes a pre-built B+-tree index over the chain-level
// dimension once per input row: no build cost, but every lookup is a
// chain of dependent random reads — the strategy the planner picks when
// very few rows survive the filter.
type INLJoin struct {
	Input Node
	Level int
}

// Exec runs the index nested loop join.
func (n INLJoin) Exec(ctx *Context) Stream {
	return execJoin(ctx, join.NewINL(), n.Input.Exec(ctx), n.Level)
}

// GraceJoin probes the chain-level dimension with the spill-partitioned
// GRACE join, which stages partition runs in untrusted memory under an
// EPC capacity limit and degrades gracefully when the working set
// outgrows the enclave.
type GraceJoin struct {
	Input Node
	Level int
}

// Exec runs the grace join.
func (gj GraceJoin) Exec(ctx *Context) Stream {
	return execJoin(ctx, join.NewGrace(), gj.Input.Exec(ctx), gj.Level)
}

// sortTuples sorts n tuples from tup into a scratch (or fallback)
// triple and returns the sorted buffer, folding a "sort-<label>" stage.
// The fallback fires when the provided triple is nil or undersized (a
// MaxRows-capped scratch reused across shapes); its buffer names keep
// the q5 prefix the convention was established under.
func sortTuples(ctx *Context, label string, tup *mem.U64Buf, n int, work, tmp, out *mem.U64Buf, maxKey uint32, runLen int) *mem.U64Buf {
	if work == nil || tmp == nil || out == nil || work.Len() < n || tmp.Len() < n || out.Len() < n {
		reg := ctx.Env.DataRegion()
		work = ctx.Env.Space.AllocU64("q5."+label+".work", n, reg)
		tmp = ctx.Env.Space.AllocU64("q5."+label+".tmp", n, reg)
		out = ctx.Env.Space.AllocU64("q5."+label+".sorted", n, reg)
	}
	copy(work.D[:n], tup.D) // untimed setup copy; timed passes stream it
	closeSort := ctx.G.Scope("sort-" + label)
	sr := sortop.RunOn(ctx.Env, ctx.G, work, n, sortop.Options{
		MaxKey: maxKey, RunLen: runLen, Tmp: tmp, Out: out,
	})
	closeSort()
	ctx.stage("sort-"+label, sr.WallCycles, uint64(n), sr.Check)
	return out
}

// MergeJoin is the sort-based join: sorts the input stream and the
// dimension as explicit pipeline stages, then merge-joins the sorted
// runs (MWAY's final pass) into the per-thread output buffers. The
// sequential-stream regime that loses far less to the enclave than the
// hash joins. Chain level 0 only.
type MergeJoin struct{ Input Node }

// Exec runs sort(input), sort(dim), then the merge join.
func (m MergeJoin) Exec(ctx *Context) Stream {
	in := m.Input.Exec(ctx)
	ds, sc := ctx.DS, ctx.SC
	sc.ensureSort(ctx.Env, ds)
	maxKey := uint32(ds.Dim.N() + 1)
	runLen := sortop.RunLen(ctx.Env)
	factSorted := sortTuples(ctx, "fact", in.Tup, in.N, sc.FactSort, sc.FactTmp, sc.FactSorted, maxKey, runLen)
	dimSorted := sortTuples(ctx, "dim", ds.Dim.Tup, ds.Dim.N(), sc.DimSort, sc.DimTmp, sc.DimSorted, maxKey, runLen)
	closeJoin := ctx.G.Scope("join")
	jr := join.MergeJoinSorted(ctx.Env, ctx.G, dimSorted, ds.Dim.N(), factSorted, in.N, maxKey, join.Options{
		Materialize: true, OutBufs: sc.JoinOut,
	})
	closeJoin()
	ctx.stage("join", jr.WallCycles, jr.Matches, jr.Matches)
	segs := joinSegments(sc, jr)
	n := 0
	for _, s := range segs {
		n += s.N
	}
	return Stream{Segs: segs, N: n}
}

// projectBlock is the number of tuples swapped per engine batch.
const projectBlock = 64

// Project materializes a segmented join output into one contiguous
// stream, swapping each tuple's halves and re-encoding the build
// attribute as a 1-based key: (k, p) → (p+1, k). The output stream is
// keyed by the joined dimension's attribute, ready for the next chain
// level's FK probe or an ORDER BY on the attribute.
type Project struct{ Input Node }

// Exec runs the streaming swap.
func (p Project) Exec(ctx *Context) Stream {
	in := p.Input.Exec(ctx)
	sc := ctx.SC
	sc.ensureSwap(ctx.Env)
	segs := in.Segs
	outBase := make([]int, len(segs)+1)
	total := 0
	for i, s := range segs {
		n := s.N
		if total+n > sc.Swap.Len() {
			n = sc.Swap.Len() - total
		}
		total += n
		outBase[i+1] = total
	}
	out := sc.Swap
	T := len(ctx.G.Threads)
	closeProj := ctx.G.Scope("project")
	ps := ctx.G.Phase("Swap", func(t *engine.Thread, id int) {
		var toks [projectBlock]engine.Tok
		// Thread i owns segment i; surplus segments are claimed
		// round-robin (the gather stage's convention).
		for s := id; s < len(segs); s += T {
			seg := segs[s]
			for done := 0; done < outBase[s+1]-outBase[s]; {
				blk := outBase[s+1] - outBase[s] - done
				if blk > projectBlock {
					blk = projectBlock
				}
				pos := done
				outPos := outBase[s] + done
				// Sequential tuple reads, register swap, sequential writes.
				t.LoadRunToks(&seg.Tup.Buffer, seg.Tup.Off(pos), 8, blk, 0, toks[:blk])
				for j := 0; j < blk; j++ {
					v := seg.Tup.D[pos+j]
					out.D[outPos+j] = mem.MakeTuple(mem.TuplePayload(v)+1, mem.TupleKey(v))
				}
				t.Work(uint64(blk)) // swap/pack the lanes
				t.StoreRun(&out.Buffer, out.Off(outPos), 8, blk, 0, engine.After(toks[blk-1], 1))
				done += blk
			}
		}
	})
	closeProj()
	ctx.G.AdvanceClock(ctx.Env.Alloc.SerialCycles())
	ctx.stage("project", ps.WallCycles, uint64(total), uint64(total))
	return Stream{Tup: out, N: total}
}

// Sort is the full ORDER BY: sorts the contiguous input stream by key
// (the run-sort + multi-way merge operator). The emitted stream is the
// whole input in ascending key order.
type Sort struct{ Input Node }

// Exec runs the sort.
func (s Sort) Exec(ctx *Context) Stream {
	in := s.Input.Exec(ctx)
	ds, sc := ctx.DS, ctx.SC
	sc.ensureSort(ctx.Env, ds)
	maxKey := uint32(ds.Dim.N() + 1)
	runLen := sortop.RunLen(ctx.Env)
	out := sortTuples(ctx, "fact", in.Tup, in.N, sc.FactSort, sc.FactTmp, sc.FactSorted, maxKey, runLen)
	ctx.Res.Rows = uint64(in.N)
	ctx.Res.Groups = in.N
	return Stream{Tup: out, N: in.N}
}

// TopK is ORDER BY key LIMIT k on the heap-based top-k operator: each
// thread keeps a k-row heap, the survivors merge and sort. Result.Groups
// reports the emitted row count and Result.TopRows the rows themselves.
type TopK struct{ Input Node }

// Exec runs the top-k.
func (tk TopK) Exec(ctx *Context) Stream {
	in := tk.Input.Exec(ctx)
	sc := ctx.SC
	n := in.N
	k := ctx.Opt.limitRows()
	if k > n {
		k = n // TopKOn clamps anyway; clamp first so the scratch sizing
		// below sees the effective k, not the nominal LIMIT
	}
	sc.ensureTopK(ctx.Env, len(ctx.G.Threads), k)
	topt := sortop.TopKOptions{Heap: sc.TopKHeap, Tmp: sc.TopKTmp, Out: sc.TopKOut}
	closeTopK := ctx.G.Scope("topk")
	tr := sortop.TopKOn(ctx.Env, ctx.G, in.Tup, n, k, topt)
	closeTopK()
	ctx.stage("topk", tr.WallCycles, uint64(tr.K), tr.Check)
	ctx.Res.Rows = uint64(n)
	ctx.Res.Groups = tr.K
	ctx.Res.TopRows = append([]uint64(nil), tr.Out.D[:tr.K]...)
	return Stream{Tup: tr.Out, N: tr.K}
}

// Limit truncates a sorted contiguous stream to its first K rows
// (ORDER BY ... LIMIT executed as full sort + cutoff — the naive
// alternative the planner weighs against the heap-based TopK). Pure
// bookkeeping: the rows past the cutoff are simply never read.
type Limit struct{ Input Node }

// Exec truncates the stream.
func (l Limit) Exec(ctx *Context) Stream {
	in := l.Input.Exec(ctx)
	k := ctx.Opt.limitRows()
	if k > in.N {
		k = in.N
	}
	ctx.Res.Check = agg.Mix(ctx.Res.Check, uint64(k))
	ctx.Res.Groups = k
	ctx.Res.TopRows = append([]uint64(nil), in.Tup.D[:k]...)
	return Stream{Tup: in.Tup, N: k}
}

// GroupBy is the final γ: the partitioned hash aggregation over the
// input stream or join segments (SUM/COUNT/MIN/MAX per group).
type GroupBy struct {
	Input Node
	Sel   agg.Sel // group key selector (ByKey or ByPayload)
}

// Exec runs the aggregation.
func (gb GroupBy) Exec(ctx *Context) Stream {
	in := gb.Input.Exec(ctx)
	ins := in.aggInputs()
	rows := 0
	for _, seg := range ins {
		rows += seg.N
	}
	closeAgg := ctx.G.Scope("agg")
	ar := agg.RunOn(ctx.Env, ctx.G, ins, agg.Options{
		Sel: gb.Sel, Groups: ctx.DS.Dim.N(), Out: ctx.SC.AggOut, Parts: ctx.SC.AggPart,
	})
	closeAgg()
	ctx.stage("agg", ar.WallCycles, uint64(ar.Groups), ar.Check)
	ctx.Res.Rows = uint64(rows)
	ctx.Res.Groups = ar.Groups
	return Stream{}
}

// SpillGroupBy is GroupBy on the spill-partitioned aggregation, which
// stages partition runs in untrusted memory under an EPC capacity limit
// (the staging buffers are operator-internal; only the output entry
// array comes from the Scratch).
type SpillGroupBy struct {
	Input Node
	Sel   agg.Sel
}

// Exec runs the spill aggregation.
func (gb SpillGroupBy) Exec(ctx *Context) Stream {
	in := gb.Input.Exec(ctx)
	ins := in.aggInputs()
	rows := 0
	for _, seg := range ins {
		rows += seg.N
	}
	closeAgg := ctx.G.Scope("agg")
	ar := agg.SpillRunOn(ctx.Env, ctx.G, ins, agg.Options{
		Sel: gb.Sel, Groups: ctx.DS.Dim.N(), Out: ctx.SC.AggOut,
	})
	closeAgg()
	ctx.stage("agg", ar.WallCycles, uint64(ar.Groups), ar.Check)
	ctx.Res.Rows = uint64(rows)
	ctx.Res.Groups = ar.Groups
	return Stream{}
}
