package plan

import (
	"testing"

	"sgxbench/internal/core"
	"sgxbench/internal/scan"
)

// planAlts returns every alternative the monotonicity properties must
// hold for, across the shapes the suite exercises.
func planAlts() []struct {
	q   Query
	alt Alternative
} {
	return []struct {
		q   Query
		alt Alternative
	}{
		{Query{Pred: sel250}, Alternative{Agg: AggHash}},
		{Query{Pred: sel250}, Alternative{Agg: AggSpill}},
		{Query{Pred: sel250, Order: true, Limit: 256}, Alternative{Ord: OrdTopK}},
		{Query{Pred: sel250, Order: true}, Alternative{Ord: OrdSort}},
		{Query{Pred: sel250, Dims: 1}, Alternative{Join: JoinRHO, Agg: AggHash}},
		{Query{Pred: sel250, Dims: 1}, Alternative{Join: JoinINL, Agg: AggHash}},
		{Query{Pred: sel250, Dims: 1}, Alternative{Join: JoinGrace, Agg: AggSpill}},
		{Query{Pred: sel250, Dims: 1}, Alternative{Join: JoinMerge, Agg: AggHash}},
		{Query{Pred: sel250, Dims: 3, Order: true, Limit: 256}, Alternative{Join: JoinRHO, Ord: OrdTopK}},
	}
}

// TestCostMonotonicRows: modeled cost must be non-decreasing in the
// fact row count for every strategy, under plain and enclave models.
func TestCostMonotonicRows(t *testing.T) {
	for _, setting := range []core.Setting{core.PlainCPU, core.SGXDiE} {
		m := ModelFor(setting, 2)
		for _, c := range planAlts() {
			prev := 0.0
			for nf := 1 << 8; nf <= 1<<20; nf <<= 1 {
				got := m.Cost(c.q, c.alt, Shape{NDim: testDim, NFact: nf})
				if got < prev {
					t.Errorf("%s/%s: cost(%d)=%.0f < cost(%d/2)=%.0f", setting, c.alt, nf, got, nf, prev)
				}
				prev = got
			}
		}
	}
}

// TestCostMonotonicSelectivity: modeled cost must be non-decreasing in
// the filter selectivity at a fixed shape.
func TestCostMonotonicSelectivity(t *testing.T) {
	preds := []scan.Predicate{sel004, sel102, sel250, sel500, sel902}
	for _, setting := range []core.Setting{core.PlainCPU, core.SGXDiE} {
		m := ModelFor(setting, 2)
		for _, c := range planAlts() {
			prev := 0.0
			for _, p := range preds {
				q := c.q
				q.Pred = p
				got := m.Cost(q, c.alt, Shape{NDim: testDim, NFact: testFact})
				if got < prev {
					t.Errorf("%s/%s: cost(sel=%.3f)=%.0f decreased", setting, c.alt, p.Selectivity(), got)
				}
				prev = got
			}
		}
	}
}

// TestCostMonotonicPressure: modeled cost must be non-decreasing in the
// EPC oversubscription ratio (the calibrated kappa term scaled by the
// paging pressure factor).
func TestCostMonotonicPressure(t *testing.T) {
	m := ModelFor(core.SGXDiE, 2)
	for _, c := range planAlts() {
		prev := 0.0
		for _, ratio := range []float64{0, 1, 1.5, 2, 3, 4, 8} {
			got := m.Cost(c.q, c.alt, Shape{NDim: testDim, NFact: testFact, EPCRatio: ratio})
			if got < prev {
				t.Errorf("%s: cost(ratio=%.1f)=%.0f < cost(prev)=%.0f", c.alt, ratio, got, prev)
			}
			prev = got
		}
	}
	for _, k := range m.Kappa {
		if k < 0 {
			t.Errorf("negative kappa coefficient: %+v", m.Kappa)
		}
	}
}

// TestEnclaveInflationPinned pins the q2-vs-q5 relationship from the
// calibrated constants: running data-in-enclave inflates the hash
// join's per-probe-row cost by more than the sort unit — the measured
// asymmetry (hash probes are the random-access pattern SGX paging and
// store serialization punish; sort runs are sequential) that drives any
// hash-to-sort plan flip.
func TestEnclaveInflationPinned(t *testing.T) {
	plain := ModelFor(core.PlainCPU, 2)
	die := ModelFor(core.SGXDiE, 2)
	if die.JoinRow[JoinRHO] <= plain.JoinRow[JoinRHO] {
		t.Fatalf("hash join row cost not inflated in enclave: die=%.3f plain=%.3f",
			die.JoinRow[JoinRHO], plain.JoinRow[JoinRHO])
	}
	hashInfl := die.JoinRow[JoinRHO] / plain.JoinRow[JoinRHO]
	sortInfl := die.SortUnit / plain.SortUnit
	if hashInfl <= sortInfl {
		t.Fatalf("enclave inflation differential inverted: hash %.3fx <= sort %.3fx", hashInfl, sortInfl)
	}
}

// TestHashSpillCrossoverPinned pins the resident hash-vs-spill group-by
// crossover from the calibrated plain-CPU constants: the hash group-by
// wins below the row count where the affine cost curves cross, the
// spill group-by above it, and Choose flips exactly there.
func TestHashSpillCrossoverPinned(t *testing.T) {
	m := ModelFor(core.PlainCPU, 2)
	if m.SpillAggFixed <= m.AggFixed {
		t.Skipf("no resident crossover under these calibrated constants: spill fixed %.0f <= hash fixed %.0f",
			m.SpillAggFixed, m.AggFixed)
	}
	if m.SpillAggRow >= m.AggRow {
		t.Fatalf("spill slope %.3f >= hash slope %.3f: curves never cross", m.SpillAggRow, m.AggRow)
	}
	// The crossover in selected rows, from the affine coefficients.
	xRows := (m.SpillAggFixed - m.AggFixed) / (m.AggRow - m.SpillAggRow)
	sel := sel250.Selectivity()
	q := Query{Pred: sel250}
	hash, spill := Alternative{Agg: AggHash}, Alternative{Agg: AggSpill}
	below := Shape{NDim: testDim, NFact: int(xRows / sel * 0.9)}
	above := Shape{NDim: testDim, NFact: int(xRows / sel * 1.1)}
	if m.Cost(q, hash, below) >= m.Cost(q, spill, below) {
		t.Errorf("below crossover (%d rows): hash not cheaper", int(xRows*0.9))
	}
	if m.Cost(q, spill, above) >= m.Cost(q, hash, above) {
		t.Errorf("above crossover (%d rows): spill not cheaper", int(xRows*1.1))
	}
	if alt, _ := Choose(m, q, below); alt.Agg != AggHash {
		t.Errorf("below crossover: planner picked %s", alt)
	}
	if alt, _ := Choose(m, q, above); alt.Agg != AggSpill {
		t.Errorf("above crossover: planner picked %s", alt)
	}
}

// TestPressurePicksSpill: under 2-4x EPC oversubscription the DiE
// planner must choose the spill aggregation (its calibrated kappa is
// what the graceful-degradation operators exist to keep small).
func TestPressurePicksSpill(t *testing.T) {
	m := ModelFor(core.SGXDiE, 2)
	q := Query{Pred: sel902, Dims: 1}
	for _, ratio := range []float64{2, 3, 4} {
		alt, costs := Choose(m, q, Shape{NDim: testDim, NFact: testFact, EPCRatio: ratio})
		if alt.Agg != AggSpill {
			t.Errorf("ratio %.0f: picked %s, want a spill aggregation (costs %v)", ratio, alt, costs)
		}
	}
}

// TestChooseNeverWorseThanWorst is the in-package planner gate: the
// cost-based pick's measured wall cycles must never exceed the worst
// static alternative's, for representative suite shapes under plain and
// enclave settings.
func TestChooseNeverWorseThanWorst(t *testing.T) {
	for _, setting := range []core.Setting{core.PlainCPU, core.SGXDiE} {
		m := ModelFor(setting, 2)
		for _, name := range []string{"s07.j1.sel004.u.agg", "s11.j1.sel902.u.agg", "s14.j1.sel250.u.top"} {
			q, _ := SuiteByName(name)
			measured := map[string]uint64{}
			var worst uint64
			for _, alt := range q.Alternatives() {
				env := testEnv(setting, false)
				ds := GenSuiteDataset(env, q, testDim, testFact, testSeed)
				res := Execute(env, ds, Options{Threads: 2, Pred: q.Pred, Limit: q.Limit}, q.Name, q.Tree(alt))
				measured[alt.String()] = res.WallCycles
				if res.WallCycles > worst {
					worst = res.WallCycles
				}
			}
			alt, _ := Choose(m, q, Shape{NDim: testDim, NFact: testFact})
			if got := measured[alt.String()]; got > worst {
				t.Errorf("%s/%s: chosen %s measured %d > worst %d", setting, name, alt, got, worst)
			} else if got == worst && len(measured) > 1 {
				// Never-worse must be strict when the field is spread out.
				best := got
				for _, c := range measured {
					if c < best {
						best = c
					}
				}
				if float64(worst-best) > 0.05*float64(best) {
					t.Errorf("%s/%s: chosen %s is the worst alternative (%d, best %d)", setting, name, alt, got, best)
				}
			}
		}
	}
}

// TestModelCalibrationDeterminism: two independent calibrations of the
// same setting must produce identical constants (the probes run on the
// deterministic simulator), so cached and fresh models agree.
func TestModelCalibrationDeterminism(t *testing.T) {
	a, b := calibrate(core.SGXDiE, 2), calibrate(core.SGXDiE, 2)
	if a.FilterRow != b.FilterRow || a.GatherRow != b.GatherRow ||
		a.AggFixed != b.AggFixed || a.AggRow != b.AggRow ||
		a.SpillAggFixed != b.SpillAggFixed || a.SpillAggRow != b.SpillAggRow ||
		a.TopKRow != b.TopKRow || a.ProjectRow != b.ProjectRow ||
		a.SortUnit != b.SortUnit || a.MergeRow != b.MergeRow {
		t.Fatalf("calibration not deterministic:\na=%+v\nb=%+v", a, b)
	}
	for s, v := range a.JoinRow {
		if b.JoinRow[s] != v || b.JoinFixed[s] != a.JoinFixed[s] {
			t.Fatalf("join fit for %s not deterministic", s)
		}
	}
	a.EnsureKappa()
	b.EnsureKappa()
	for s, v := range a.Kappa {
		if b.Kappa[s] != v {
			t.Fatalf("kappa for %s not deterministic: %v vs %v", s, v, b.Kappa[s])
		}
	}
}
