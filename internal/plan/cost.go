package plan

import (
	"math"
	"sync"

	"sgxbench/internal/core"
	"sgxbench/internal/mem"
	"sgxbench/internal/platform"
	"sgxbench/internal/scan"
)

// The enclave-aware cost model. Every constant is CALIBRATED, not
// guessed: the model executes small probe plans on a fresh simulated
// environment of the target setting and derives per-row cycle costs
// from the measured stage cycles. Because the probes run under the full
// engine simulation, each per-setting constant already embeds the
// enclave effects the paper measures — the run/gather access mix of the
// operator, the SSB store serialization inside enclaves, and the
// transition costs of the setting — so a plain-CPU model and a DiE
// model of the same operator differ exactly where the simulation says
// they differ. EPC pressure enters as a separate calibrated paging
// term: kappa[s] is the extra per-row cost of strategy s at full miss
// rate, measured by re-running the probe under a 2x-oversubscribed EPC
// capacity, and scaled by (1 - 1/ratio) — zero when resident,
// monotonically increasing in the oversubscription ratio.

// Calibration probe sizes: small enough that a full calibration is a
// few milliseconds of host time, large enough that fixed per-phase
// overheads do not swamp the per-row slopes.
const (
	calDim  = 256
	calFact = 8192
	// calK is the LIMIT of the top-k calibration probe; the model scales
	// TopKRow by log2(k+2)/log2(calK+2) for other limits.
	calK = 256
)

// Join strategy identifiers (Alternative.Join values).
const (
	JoinRHO   = "rho"
	JoinINL   = "inl"
	JoinMerge = "merge"
	JoinGrace = "grace"
)

// Aggregation strategy identifiers (Alternative.Agg values).
const (
	AggHash  = "hash"
	AggSpill = "spill"
)

// Shape is the planner's view of a query's data sizes.
type Shape struct {
	NDim  int
	NFact int
	// EPCRatio is working set / EPC capacity (0 or <=1: resident).
	EPCRatio float64
}

// Model holds one setting's calibrated per-row cycle costs.
type Model struct {
	Setting core.Setting
	// Threads is the execution parallelism the model was calibrated at.
	// Stages parallelize unevenly (per-thread top-k heaps do more total
	// work at higher thread counts; sorts scale near-linearly), so the
	// calibration probes run at the thread count the plans will.
	Threads int

	FilterRow     float64 // filter scan, per fact row
	GatherRow     float64 // tuple gather, per selected row
	AggFixed      float64 // hash group-by, fixed (table setup)
	AggRow        float64 // hash group-by, per input row
	SpillAggFixed float64 // spill group-by, fixed (partition setup)
	SpillAggRow   float64 // spill group-by, per input row
	TopKFixed     float64 // heap top-k, fixed (heap fill + merge at calK)
	TopKRow       float64 // heap top-k, per row·(log2(k)/log2(calK))
	ProjectRow    float64 // swap projection, per row
	SortUnit      float64 // sort, per row·log2(rows)
	MergeRow      float64 // merge join, per input row (both sides)

	// JoinFixed/JoinRow: per-strategy affine fit cost(n) =
	// fixed·(nDim/calDim) + row·nProbe from two probe selectivities.
	JoinFixed map[string]float64
	JoinRow   map[string]float64
	// inlDepth is log2(calDim+2): INL's per-probe cost scales with the
	// B+-tree depth, so the model scales JoinRow[inl] by
	// log2(nDim+2)/inlDepth.
	inlDepth float64

	// Kappa is the paging penalty: extra cycles per row at full miss
	// rate, per join strategy and per "agg."-prefixed agg strategy.
	// Calibrated lazily (EnsureKappa); zero for non-EPC settings.
	Kappa     map[string]float64
	kappaOnce sync.Once
}

// calPlat is the fixed calibration platform: the benchmark's scaled
// paper machine, so calibrated constants are deterministic and
// independent of the caller's env instance.
func calPlat() *platform.Platform { return platform.XeonGold6326().Scaled(32) }

// calEnv builds one fresh probe environment. The fast engine path is
// used unconditionally: fast and reference paths are bit-identical in
// simulated cycles, so one calibration serves both.
func calEnv(setting core.Setting, epcPages int64) *core.Env {
	return core.NewEnv(core.Options{Plat: calPlat(), Setting: setting, EPCPages: epcPages})
}

// calPred is the probe predicate pair: two selectivities whose measured
// join-stage cycles give the per-probe-row slope and the fixed
// (build + partition-setup) intercept.
var calPredLo = scan.Predicate{Lo: 32, Hi: 95}  // 25%
var calPredHi = scan.Predicate{Lo: 10, Hi: 240} // ~90%

// calRun executes one probe query tree and returns its per-stage
// cycles and row counts.
func calRun(setting core.Setting, threads int, epcPages int64, q Query, alt Alternative) *Result {
	env := calEnv(setting, epcPages)
	ds := GenDataset(env, calDim, calFact, 4242)
	if q.Dims > 1 {
		EnsureChain(env, ds, q.Dims-1)
	}
	opt := Options{Threads: threads, Pred: q.Pred, Limit: q.Limit}
	return Execute(env, ds, opt, q.Name, q.Tree(alt))
}

// stageOf returns the first stage with the given name (cycles, rows).
func stageOf(res *Result, name string) (float64, float64) {
	for _, s := range res.Stages {
		if s.Name == name {
			return float64(s.WallCycles), float64(s.Rows)
		}
	}
	return 0, 0
}

type modelKey struct {
	setting core.Setting
	threads int
}

var modelCache sync.Map // modelKey → *Model

// ModelFor returns the calibrated cost model for a setting at a thread
// count, running the calibration probes on first use (cached;
// deterministic).
func ModelFor(setting core.Setting, threads int) *Model {
	if threads < 1 {
		threads = 1
	}
	k := modelKey{setting, threads}
	if m, ok := modelCache.Load(k); ok {
		return m.(*Model)
	}
	m := calibrate(setting, threads)
	actual, _ := modelCache.LoadOrStore(k, m)
	return actual.(*Model)
}

// calibrate derives the per-row constants from probe plans.
func calibrate(setting core.Setting, threads int) *Model {
	m := &Model{
		Setting:   setting,
		Threads:   threads,
		JoinFixed: map[string]float64{},
		JoinRow:   map[string]float64{},
		Kappa:     map[string]float64{},
		inlDepth:  math.Log2(calDim + 2),
	}

	// affineFit turns two (cycles, rows) probe points into non-negative
	// (fixed, slope) coefficients.
	affineFit := func(c1, n1, c2, n2 float64) (fixed, row float64) {
		row = (c2 - c1) / (n2 - n1)
		if row < 0 {
			row = 0
		}
		fixed = c1 - row*n1
		if fixed < 0 {
			fixed = 0
		}
		return fixed, row
	}

	// Scan/gather slopes and the agg affine fits from the no-join
	// aggregation shape at the two probe selectivities. The fixed agg
	// terms matter: the spill group-by's partition setup makes the
	// resident hash group-by cheaper at low row counts even though the
	// spill variant's per-row slope is slightly lower.
	base := calRun(setting, threads, 0, Query{Name: "cal.base", Pred: calPredLo}, Alternative{Agg: AggHash})
	baseHi := calRun(setting, threads, 0, Query{Name: "cal.base", Pred: calPredHi}, Alternative{Agg: AggHash})
	fc, _ := stageOf(base, "filter")
	gc, gr := stageOf(base, "gather")
	ac, _ := stageOf(base, "agg")
	ac2, _ := stageOf(baseHi, "agg")
	_, gr2 := stageOf(baseHi, "gather")
	m.FilterRow = fc / calFact
	m.GatherRow = gc / gr
	m.AggFixed, m.AggRow = affineFit(ac, gr, ac2, gr2)

	spill := calRun(setting, threads, 0, Query{Name: "cal.spill", Pred: calPredLo}, Alternative{Agg: AggSpill})
	spillHi := calRun(setting, threads, 0, Query{Name: "cal.spill", Pred: calPredHi}, Alternative{Agg: AggSpill})
	sc, _ := stageOf(spill, "agg")
	_, sn := stageOf(spill, "gather")
	sc2, _ := stageOf(spillHi, "agg")
	_, sn2 := stageOf(spillHi, "gather")
	m.SpillAggFixed, m.SpillAggRow = affineFit(sc, sn, sc2, sn2)

	topk := calRun(setting, threads, 0, Query{Name: "cal.topk", Pred: calPredLo, Order: true, Limit: calK}, Alternative{Ord: OrdTopK})
	topkHi := calRun(setting, threads, 0, Query{Name: "cal.topk", Pred: calPredHi, Order: true, Limit: calK}, Alternative{Ord: OrdTopK})
	tc, _ := stageOf(topk, "topk")
	_, tn := stageOf(topk, "gather")
	tc2, _ := stageOf(topkHi, "topk")
	_, tn2 := stageOf(topkHi, "gather")
	m.TopKFixed, m.TopKRow = affineFit(tc, tn, tc2, tn2)

	// Join slopes: the affine fit from the two probe selectivities.
	for _, s := range []string{JoinRHO, JoinINL, JoinGrace, JoinMerge} {
		lo := calRun(setting, threads, 0, Query{Name: "cal." + s, Pred: calPredLo, Dims: 1}, Alternative{Join: s, Agg: AggHash})
		hi := calRun(setting, threads, 0, Query{Name: "cal." + s, Pred: calPredHi, Dims: 1}, Alternative{Join: s, Agg: AggHash})
		c1, n1 := stageOf(lo, "join")
		c2, n2 := stageOf(hi, "join")
		m.JoinFixed[s], m.JoinRow[s] = affineFit(c1, n1, c2, n2)
		if s == JoinINL {
			// INL has no timed build: its probe-phase cost goes through
			// the origin, and fit noise in the intercept would otherwise
			// overcharge low-selectivity probes.
			m.JoinFixed[s] = 0
		}
		if s == JoinMerge {
			// The merge strategy's sort stages are costed separately.
			sfc, sfn := stageOf(lo, "sort-fact")
			m.SortUnit = sfc / (sfn * math.Log2(sfn))
			m.MergeRow = c1 / (n1 + calDim)
			m.JoinFixed[s], m.JoinRow[s] = 0, 0
		}
	}

	// Project slope from a 2-dim chain.
	chain := calRun(setting, threads, 0, Query{Name: "cal.chain", Pred: calPredLo, Dims: 2}, Alternative{Join: JoinRHO, Agg: AggHash})
	pc, pn := stageOf(chain, "project")
	m.ProjectRow = pc / pn

	return m
}

// EnsureKappa calibrates the paging penalty coefficients on first use:
// each strategy's probe re-runs under an EPC capacity of half its
// measured resident working set (2x oversubscription), and the per-row
// cost delta — clamped non-negative — becomes the full-miss penalty.
// Settings whose data region is not EPC-resident page nowhere; their
// coefficients stay zero.
func (m *Model) EnsureKappa() {
	m.kappaOnce.Do(func() {
		if !m.Setting.DataInEPC() {
			return
		}
		probe := func(q Query, alt Alternative, stage string) {
			res0 := calRun(m.Setting, m.Threads, 0, q, alt)
			pages := wsPages(m.Setting, m.Threads)
			res2 := calRun(m.Setting, m.Threads, pages/2, q, alt)
			c0, n := stageOf(res0, stage)
			c2, _ := stageOf(res2, stage)
			k := (c2 - c0) / n / (1 - 0.5)
			if k < 0 {
				k = 0
			}
			key := alt.Join
			if stage == "agg" {
				key = "agg." + alt.Agg
			}
			m.Kappa[key] = k
		}
		for _, s := range []string{JoinRHO, JoinINL, JoinGrace, JoinMerge} {
			probe(Query{Name: "cal.k." + s, Pred: calPredHi, Dims: 1}, Alternative{Join: s, Agg: AggHash}, "join")
		}
		probe(Query{Name: "cal.k.agg", Pred: calPredHi}, Alternative{Agg: AggHash}, "agg")
		probe(Query{Name: "cal.k.spill", Pred: calPredHi}, Alternative{Agg: AggSpill}, "agg")
	})
}

// wsPages measures the probe workload's resident EPC page footprint
// (dataset + scratch + operator state) by running it once without a
// capacity limit and reading the space's EPC usage.
func wsPages(setting core.Setting, threads int) int64 {
	env := calEnv(setting, 0)
	ds := GenDataset(env, calDim, calFact, 4242)
	Execute(env, ds, Options{Threads: threads, Pred: calPredHi}, "cal.ws",
		Query{Pred: calPredHi, Dims: 1}.Tree(Alternative{Join: JoinRHO, Agg: AggHash}))
	used := env.Space.Used(mem.Region{Node: env.Node, Kind: mem.EPC})
	if used <= 0 {
		used = env.Space.Used(env.DataRegion())
	}
	return (used + 4095) / 4096
}

// press maps an oversubscription ratio to the paging pressure factor
// multiplying kappa: 0 when resident, approaching 1 as the working set
// dwarfs the EPC. Monotone non-decreasing in the ratio.
func press(ratio float64) float64 {
	if ratio <= 1 {
		return 0
	}
	return 1 - 1/ratio
}

// joinCost returns one chain level's modeled cycles.
func (m *Model) joinCost(s string, nProbe, nDim, ratio float64) float64 {
	var c float64
	switch s {
	case JoinMerge:
		c = m.SortUnit*(nProbe*math.Log2(nProbe+2)+nDim*math.Log2(nDim+2)) +
			m.MergeRow*(nProbe+nDim)
	case JoinINL:
		// INL's index build is untimed (pre-provisioned), so its fixed
		// term is generic probe setup, not dim-dependent; the per-probe
		// slope scales with the B+-tree depth.
		c = m.JoinFixed[s] + m.JoinRow[s]*nProbe*math.Log2(nDim+2)/m.inlDepth
	default:
		c = m.JoinFixed[s]*(nDim/calDim) + m.JoinRow[s]*nProbe
	}
	return c + m.Kappa[s]*nProbe*press(ratio)
}

// Cost returns the modeled simulated cycles of running q with the given
// strategy alternative over a dataset shape. Monotone non-decreasing in
// rows, selectivity and EPC pressure.
func (m *Model) Cost(q Query, alt Alternative, sh Shape) float64 {
	if sh.EPCRatio > 1 {
		m.EnsureKappa()
	}
	nF := float64(sh.NFact)
	rows := q.Pred.Selectivity() * nF
	if rows < 1 {
		rows = 1
	}
	d := float64(sh.NDim)
	c := m.FilterRow*nF + m.GatherRow*rows
	for lvl := 0; lvl < q.Dims; lvl++ {
		c += m.joinCost(alt.Join, rows, d, sh.EPCRatio)
		if lvl < q.Dims-1 || q.Order {
			c += m.ProjectRow * rows
		}
	}
	switch {
	case q.Order && q.Limit > 0 && alt.Ord == OrdTopK:
		k := float64(q.Limit)
		if k > rows {
			k = rows
		}
		c += m.TopKFixed*(k/calK) + m.TopKRow*rows*math.Log2(k+2)/math.Log2(calK+2)
	case q.Order:
		c += m.SortUnit * rows * math.Log2(rows+2)
	default:
		fx, ar, ka := m.AggFixed, m.AggRow, m.Kappa["agg."+AggHash]
		if alt.Agg == AggSpill {
			fx, ar, ka = m.SpillAggFixed, m.SpillAggRow, m.Kappa["agg."+AggSpill]
		}
		c += fx + ar*rows + ka*rows*press(sh.EPCRatio)
	}
	return c
}
