// Package rng provides the deterministic pseudo-random generators used by
// workload generation and the random-access micro-benchmarks.
//
// The paper's random-access micro-benchmark derives positions from a linear
// congruential generator (Section 4.1); LCG reproduces that. Splittable
// xorshift generators are used for data generation so that every table is
// reproducible from a single seed regardless of thread count.
package rng

// LCG is the linear congruential generator used to produce random access
// positions (Numerical Recipes constants, full 64-bit period).
type LCG struct {
	state uint64
}

// NewLCG returns an LCG seeded with seed.
func NewLCG(seed uint64) *LCG { return &LCG{state: seed*6364136223846793005 + 1442695040888963407} }

// Next returns the next 64-bit value.
func (l *LCG) Next() uint64 {
	l.state = l.state*6364136223846793005 + 1442695040888963407
	return l.state
}

// Uint64n returns a value in [0, n). n must be > 0.
func (l *LCG) Uint64n(n uint64) uint64 {
	// Multiply-shift reduction avoids the modulo bias being relevant for
	// benchmark position streams and is what high-performance benchmark
	// code uses in practice.
	hi, _ := mul64(l.Next(), n)
	return hi
}

// XorShift is a 64-bit xorshift* generator used for data generation.
type XorShift struct {
	state uint64
}

// NewXorShift returns a generator seeded with seed (zero is remapped).
func NewXorShift(seed uint64) *XorShift {
	if seed == 0 {
		seed = 0x9e3779b97f4a7c15
	}
	return &XorShift{state: seed}
}

// Next returns the next 64-bit value.
func (x *XorShift) Next() uint64 {
	s := x.state
	s ^= s >> 12
	s ^= s << 25
	s ^= s >> 27
	x.state = s
	return s * 0x2545f4914f6cdd1d
}

// Uint32 returns the next 32-bit value.
func (x *XorShift) Uint32() uint32 { return uint32(x.Next() >> 32) }

// Uint64n returns a value in [0, n). n must be > 0.
func (x *XorShift) Uint64n(n uint64) uint64 {
	hi, _ := mul64(x.Next(), n)
	return hi
}

// Split returns a new generator whose stream is independent of x for all
// practical purposes; used to give each worker a private stream derived
// from one experiment seed.
func (x *XorShift) Split(i uint64) *XorShift {
	return NewXorShift(mix(x.state ^ (i+1)*0xbf58476d1ce4e5b9))
}

// Mix hashes a seed into a well-distributed state (splitmix64 finalizer).
func mix(z uint64) uint64 {
	z += 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Mix is the exported splitmix64 finalizer for deriving sub-seeds.
func Mix(z uint64) uint64 { return mix(z) }

// mul64 returns the 128-bit product of a and b as (hi, lo).
func mul64(a, b uint64) (hi, lo uint64) {
	const mask = 1<<32 - 1
	aLo, aHi := a&mask, a>>32
	bLo, bHi := b&mask, b>>32
	t := aHi*bLo + (aLo*bLo)>>32
	lo = a * b
	hi = aHi*bHi + t>>32 + (t&mask+aLo*bHi)>>32
	return hi, lo
}

// Permutation fills out with a pseudo-random permutation of [0, len(out))
// using the Fisher-Yates shuffle driven by x.
func (x *XorShift) Permutation(out []uint32) {
	for i := range out {
		out[i] = uint32(i)
	}
	for i := len(out) - 1; i > 0; i-- {
		j := int(x.Uint64n(uint64(i + 1)))
		out[i], out[j] = out[j], out[i]
	}
}
