// Package core ties the simulated platform, memory, engine and SGX
// runtime together into the execution environments the paper benchmarks.
//
// The paper compares three settings (Section 3) plus one diagnostic one:
//
//   - Plain CPU: native execution, data in untrusted memory.
//   - Plain CPU M: native execution with the SSB mitigation force-enabled
//     (prctl), used to attribute enclave slowdowns (Section 4.2).
//   - SGX DoE (Data outside Enclave): code in the enclave, data untrusted;
//     isolates code-execution effects from memory-encryption effects.
//   - SGX DiE (Data in Enclave): code and data inside the enclave; data
//     lives in the EPC and pays encryption and EPCM costs.
//
// An Env fixes one setting and provides allocation and thread-group
// construction for operators. Envs influence timing only — results are
// identical across settings by construction.
package core

import (
	"fmt"

	"sgxbench/internal/engine"
	"sgxbench/internal/exec"
	"sgxbench/internal/mem"
	"sgxbench/internal/platform"
	"sgxbench/internal/sgx"
)

// Setting is one of the paper's execution settings.
type Setting int

const (
	// PlainCPU is the native baseline without SGX.
	PlainCPU Setting = iota
	// PlainCPUM is native execution with the Spectre-V4 mitigation
	// enabled via prctl ("Plain CPU M").
	PlainCPUM
	// SGXDoE runs code inside an enclave over untrusted data.
	SGXDoE
	// SGXDiE runs code inside an enclave over EPC-resident data.
	SGXDiE
)

// String returns the paper's name for the setting.
func (s Setting) String() string {
	switch s {
	case PlainCPU:
		return "Plain CPU"
	case PlainCPUM:
		return "Plain CPU M"
	case SGXDoE:
		return "SGX DoE"
	case SGXDiE:
		return "SGX DiE"
	default:
		return fmt.Sprintf("Setting(%d)", int(s))
	}
}

// InEnclave reports whether code executes inside an enclave.
func (s Setting) InEnclave() bool { return s == SGXDoE || s == SGXDiE }

// DataInEPC reports whether operator data lives in protected memory.
func (s Setting) DataInEPC() bool { return s == SGXDiE }

// Mode returns the engine execution mode for the setting.
func (s Setting) Mode() engine.Mode {
	switch s {
	case PlainCPU:
		return engine.PlainCPU
	case PlainCPUM:
		return engine.PlainCPUM
	default:
		return engine.Enclave
	}
}

// Options configures NewEnv. Zero values select the paper's defaults.
type Options struct {
	Plat    *platform.Platform // default: XeonGold6326
	Setting Setting
	Node    int             // home NUMA node for data and threads
	Policy  sgx.AllocPolicy // default: PreAllocated / EnclaveStatic
	OS      sgx.OSCosts     // default: sgx.DefaultOSCosts
	SGX     engine.SGXCosts // default: engine.DefaultSGXCosts
	Space   *mem.Space      // default: fresh space per Env
	// EPCPages caps the enclave's EPC at this many 4 KiB pages; data
	// accesses beyond it demand-page with eviction (the oversubscription
	// regime). 0 means unlimited — the default, and the behaviour of every
	// setting whose data is not EPC-resident.
	EPCPages int64
	// Reference selects the engine's per-op reference path instead of the
	// batched fast path. Simulated results and statistics are identical
	// by construction (golden-tested); only host wall-clock differs.
	Reference bool
}

// Env is one fully configured execution environment.
type Env struct {
	Plat      *platform.Platform
	Space     *mem.Space
	Setting   Setting
	Mode      engine.Mode
	OS        sgx.OSCosts
	SGX       engine.SGXCosts
	Node      int
	Reference bool // per-op reference engine path (see Options.Reference)
	Alloc     *sgx.Allocator
	Enclave   *sgx.Enclave // nil outside enclaves
	// EPC is the enclave's finite EPC capacity model (nil: unlimited).
	EPC *engine.EPCDomain
	// EPCPages echoes Options.EPCPages (0: unlimited), for diagnostics.
	EPCPages int64
}

// NewEnv builds an environment for the given options.
func NewEnv(o Options) *Env {
	if o.Plat == nil {
		o.Plat = platform.XeonGold6326()
	}
	if err := o.Plat.Validate(); err != nil {
		panic(err)
	}
	if o.OS == (sgx.OSCosts{}) {
		o.OS = sgx.DefaultOSCosts()
	}
	if o.SGX == (engine.SGXCosts{}) {
		o.SGX = engine.DefaultSGXCosts()
	}
	if o.Space == nil {
		o.Space = mem.NewSpace(o.Plat.Sockets)
	}
	policy := o.Policy
	if policy == sgx.PreAllocated && o.Setting.InEnclave() {
		policy = sgx.EnclaveStatic
	}
	e := &Env{
		Plat:      o.Plat,
		Space:     o.Space,
		Setting:   o.Setting,
		Mode:      o.Setting.Mode(),
		OS:        o.OS,
		SGX:       o.SGX,
		Node:      o.Node,
		Reference: o.Reference,
		EPC:       sgx.NewEPCDomain(o.EPCPages, o.OS),
		EPCPages:  o.EPCPages,
	}
	e.Alloc = sgx.NewAllocator(o.Space, e.DataRegion(), policy, o.OS)
	if o.Setting.InEnclave() {
		e.Enclave = sgx.NewEnclave(o.Node, policy, o.OS)
	}
	return e
}

// DataRegion returns where operator data is placed under this setting.
func (e *Env) DataRegion() mem.Region { return e.RegionOn(e.Node) }

// SpillRegion returns where spill-partitioned operators stage their
// partition runs. When the EPC is capacity-limited the runs are staged in
// untrusted memory — spilled partitions leave the enclave through
// sequential streaming writes instead of churning the paged EPC — else
// staging stays in the normal data region.
func (e *Env) SpillRegion() mem.Region {
	if e.EPCPages > 0 {
		return mem.Region{Node: e.Node, Kind: mem.Untrusted}
	}
	return e.DataRegion()
}

// RegionOn returns the data region pinned to a specific node.
func (e *Env) RegionOn(node int) mem.Region {
	k := mem.Untrusted
	if e.Setting.DataInEPC() {
		k = mem.EPC
	}
	return mem.Region{Node: node, Kind: k}
}

// EngineConfig returns the thread construction config for this Env.
func (e *Env) EngineConfig() engine.Config {
	return engine.Config{Plat: e.Plat, Mode: e.Mode, Costs: e.SGX, Node: e.Node, Reference: e.Reference, EPC: e.EPC}
}

// NewGroup creates a thread group homed on e.Node. nodeOf may remap
// individual threads to other sockets (NUMA experiments); nil pins all
// threads to e.Node.
func (e *Env) NewGroup(threads int, nodeOf func(i int) int) *exec.Group {
	if nodeOf == nil {
		nodeOf = func(int) int { return e.Node }
	}
	return exec.NewGroup(e.EngineConfig(), threads, nodeOf)
}

// NewThread creates one standalone thread (micro-benchmarks).
func (e *Env) NewThread() *engine.Thread {
	return engine.NewThread(e.EngineConfig(), 0)
}

// Throughput converts (rows processed, wall cycles) to rows per second.
func (e *Env) Throughput(rows int, cycles uint64) float64 {
	if cycles == 0 {
		return 0
	}
	return float64(rows) / e.Plat.CyclesToSeconds(cycles)
}

// Bandwidth converts (bytes processed, wall cycles) to bytes per second.
func (e *Env) Bandwidth(bytes int64, cycles uint64) float64 {
	if cycles == 0 {
		return 0
	}
	return float64(bytes) / e.Plat.CyclesToSeconds(cycles)
}
