package obs_test

import (
	"sort"
	"testing"

	"sgxbench/internal/obs"
)

// splitmix64 keeps the test's value stream seeded and dependency-free,
// matching the repo's determinism discipline.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// exactPctl is the nearest-rank oracle, matching serve's pctl.
func exactPctl(sorted []uint64, p int) uint64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := (len(sorted)*p + 99) / 100
	if idx < 1 {
		idx = 1
	}
	return sorted[idx-1]
}

// TestHistogramSmallValuesExact: values below two octaves of
// sub-buckets (64) live in width-1 buckets, so every percentile is
// exact there.
func TestHistogramSmallValuesExact(t *testing.T) {
	h := obs.NewHistogram()
	var vals []uint64
	for v := uint64(0); v < 64; v++ {
		h.Record(v)
		vals = append(vals, v)
	}
	for _, p := range []int{1, 50, 95, 99, 100} {
		if got, want := h.Percentile(p), exactPctl(vals, p); got != want {
			t.Errorf("p%d = %d, want exact %d", p, got, want)
		}
	}
	if h.Max() != 63 || h.Count() != 64 {
		t.Errorf("max=%d count=%d, want 63/64", h.Max(), h.Count())
	}
}

// TestHistogramPercentileWithinBucketWidth pins the satellite
// guarantee: every percentile is >= the exact sorted-slice value and
// within one bucket width of it, across magnitudes from exact-region
// values to multi-billion-cycle latencies.
func TestHistogramPercentileWithinBucketWidth(t *testing.T) {
	h := obs.NewHistogram()
	var vals []uint64
	r := uint64(42)
	for i := 0; i < 20_000; i++ {
		r = splitmix64(r)
		// Spread over ~10 orders of magnitude: shift by a seeded 0..39.
		v := (r >> 24) >> (r % 40)
		h.Record(v)
		vals = append(vals, v)
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	for p := 0; p <= 100; p++ {
		got := h.Percentile(p)
		want := exactPctl(vals, p)
		if got < want {
			t.Fatalf("p%d = %d below exact %d", p, got, want)
		}
		if w := obs.BucketWidth(want); got-want > w {
			t.Fatalf("p%d = %d off exact %d by %d > bucket width %d", p, got, want, got-want, w)
		}
	}
	if got, want := h.Max(), vals[len(vals)-1]; got != want {
		t.Fatalf("Max = %d, want exact %d", got, want)
	}
}

// TestHistogramPercentileClampedToMax: the quantized upper edge never
// exceeds the exact maximum (P99 <= Max must hold for any input).
func TestHistogramPercentileClampedToMax(t *testing.T) {
	h := obs.NewHistogram()
	for i := 0; i < 100; i++ {
		h.Record(1000) // bucket [992, 1008): upper edge above the value
	}
	if got := h.Percentile(99); got != 1000 {
		t.Errorf("p99 = %d, want clamped to max 1000", got)
	}
}

// TestHistogramMonotonePercentiles: p50 <= p95 <= p99 <= max for a
// skewed distribution.
func TestHistogramMonotonePercentiles(t *testing.T) {
	h := obs.NewHistogram()
	r := uint64(7)
	for i := 0; i < 5000; i++ {
		r = splitmix64(r)
		h.Record(1_000_000 + r%900_000_000)
	}
	p50, p95, p99 := h.Percentile(50), h.Percentile(95), h.Percentile(99)
	if !(p50 <= p95 && p95 <= p99 && p99 <= h.Max()) {
		t.Errorf("not monotone: p50=%d p95=%d p99=%d max=%d", p50, p95, p99, h.Max())
	}
}

// TestHistogramEmpty: the empty histogram reports zeros everywhere.
func TestHistogramEmpty(t *testing.T) {
	h := obs.NewHistogram()
	if h.Percentile(50) != 0 || h.Max() != 0 || h.Count() != 0 || h.Sum() != 0 || h.Mean() != 0 {
		t.Error("empty histogram must report zeros")
	}
}

// TestHistogramMergeMatchesCombined: merging two histograms equals
// recording both value streams into one.
func TestHistogramMergeMatchesCombined(t *testing.T) {
	a, b, both := obs.NewHistogram(), obs.NewHistogram(), obs.NewHistogram()
	r := uint64(11)
	for i := 0; i < 4000; i++ {
		r = splitmix64(r)
		v := r >> (20 + r%30)
		if i%2 == 0 {
			a.Record(v)
		} else {
			b.Record(v)
		}
		both.Record(v)
	}
	a.Merge(b)
	if a.Count() != both.Count() || a.Sum() != both.Sum() || a.Max() != both.Max() || a.Mean() != both.Mean() {
		t.Fatal("merged summary differs from combined recording")
	}
	for p := 0; p <= 100; p += 5 {
		if a.Percentile(p) != both.Percentile(p) {
			t.Fatalf("merged p%d = %d, combined %d", p, a.Percentile(p), both.Percentile(p))
		}
	}
}

// TestHistogramPercentileZeroReturnsMin pins the p<=0 edge case: the
// 0th percentile is the exact smallest recorded value, not the upper
// edge of its bucket (which for a wide bucket can overshoot the
// minimum by almost a full bucket width).
func TestHistogramPercentileZeroReturnsMin(t *testing.T) {
	h := obs.NewHistogram()
	h.Record(1 << 20) // bucket [1<<20, 1<<20+32768): upper edge > value
	h.Record(1 << 30)
	if got := h.Percentile(0); got != 1<<20 {
		t.Errorf("p0 = %d, want exact min %d", got, 1<<20)
	}
	if got := h.Percentile(-5); got != 1<<20 {
		t.Errorf("p(-5) = %d, want exact min %d", got, 1<<20)
	}
	if got := h.Min(); got != 1<<20 {
		t.Errorf("Min = %d, want %d", got, 1<<20)
	}
}

// TestHistogramMinTracking: Min is exact under Record and Merge, zero
// when empty, and merging an empty histogram leaves it untouched.
func TestHistogramMinTracking(t *testing.T) {
	h := obs.NewHistogram()
	if h.Min() != 0 || h.Percentile(0) != 0 {
		t.Fatal("empty histogram must report Min/p0 = 0")
	}
	r := uint64(3)
	want := ^uint64(0)
	for i := 0; i < 1000; i++ {
		r = splitmix64(r)
		v := 1000 + r%1_000_000
		h.Record(v)
		if v < want {
			want = v
		}
	}
	if h.Min() != want {
		t.Fatalf("Min = %d, want exact %d", h.Min(), want)
	}
	h.Merge(obs.NewHistogram()) // empty merge must not clobber min
	if h.Min() != want {
		t.Fatalf("Min after empty merge = %d, want %d", h.Min(), want)
	}
	lo := obs.NewHistogram()
	lo.Record(7)
	h.Merge(lo)
	if h.Min() != 7 || h.Percentile(0) != 7 {
		t.Fatalf("Min after merge = %d (p0 %d), want 7", h.Min(), h.Percentile(0))
	}
}

// TestHistogramExtremeValues: the top octave (e=63) is addressable —
// recording near-MaxUint64 values must not walk off the bucket array,
// and percentiles stay ordered.
func TestHistogramExtremeValues(t *testing.T) {
	h := obs.NewHistogram()
	for _, v := range []uint64{0, 1, 63, 64, 1 << 32, 1 << 62, 1 << 63, ^uint64(0) - 1, ^uint64(0)} {
		h.Record(v)
	}
	if h.Max() != ^uint64(0) {
		t.Fatalf("Max = %d, want MaxUint64", h.Max())
	}
	if got := h.Percentile(100); got != ^uint64(0) {
		t.Fatalf("p100 = %d, want MaxUint64", got)
	}
	if h.Percentile(1) != 0 {
		t.Fatalf("p1 = %d, want 0", h.Percentile(1))
	}
}

// TestBucketWidthShape: widths are powers of two, non-decreasing in v,
// and at most ~1/32 of v (the HDR relative-error bound).
func TestBucketWidthShape(t *testing.T) {
	prev := uint64(0)
	for e := 0; e < 63; e++ {
		v := uint64(1) << e
		w := obs.BucketWidth(v)
		if w&(w-1) != 0 {
			t.Fatalf("BucketWidth(%d) = %d not a power of two", v, w)
		}
		if w < prev {
			t.Fatalf("BucketWidth not monotone at %d: %d < %d", v, w, prev)
		}
		if v >= 64 && w*32 > v {
			t.Fatalf("BucketWidth(%d) = %d above v/32", v, w)
		}
		prev = w
	}
}
