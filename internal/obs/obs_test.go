package obs_test

import (
	"bytes"
	"encoding/json"
	"reflect"
	"testing"

	"sgxbench/internal/obs"
)

// fillUints sets every field of a flat uint64 struct to base*(i+1) via
// reflection, mirroring the serve.Breakdown completeness discipline: a
// newly added field is exercised by construction, and a non-uint64
// field fails loudly.
func fillUints(t *testing.T, v reflect.Value, base uint64) {
	t.Helper()
	for i := 0; i < v.NumField(); i++ {
		f := v.Field(i)
		if f.Kind() != reflect.Uint64 {
			t.Fatalf("field %s is %s, want uint64", v.Type().Field(i).Name, f.Kind())
		}
		f.SetUint(base * uint64(i+1))
	}
}

// TestTraceStatsAddCoversAllFields: Add/Sub must touch every field.
func TestTraceStatsAddCoversAllFields(t *testing.T) {
	var a, b obs.TraceStats
	fillUints(t, reflect.ValueOf(&a).Elem(), 5)
	fillUints(t, reflect.ValueOf(&b).Elem(), 2)
	diff := a.Sub(b)
	dv := reflect.ValueOf(diff)
	for i := 0; i < dv.NumField(); i++ {
		if got, want := dv.Field(i).Uint(), 3*uint64(i+1); got != want {
			t.Errorf("Sub field %s = %d, want %d", dv.Type().Field(i).Name, got, want)
		}
	}
	sum := a
	sum.Add(b)
	if sum.Sub(b) != a {
		t.Error("(a+b)-b != a: Add or Sub misses a field")
	}
}

// TestGaugesAddCoversAllFields: same discipline for the gauge snapshot.
func TestGaugesAddCoversAllFields(t *testing.T) {
	var a, b obs.Gauges
	fillUints(t, reflect.ValueOf(&a).Elem(), 5)
	fillUints(t, reflect.ValueOf(&b).Elem(), 2)
	diff := a.Sub(b)
	dv := reflect.ValueOf(diff)
	for i := 0; i < dv.NumField(); i++ {
		if got, want := dv.Field(i).Uint(), 3*uint64(i+1); got != want {
			t.Errorf("Sub field %s = %d, want %d", dv.Type().Field(i).Name, got, want)
		}
	}
	sum := a
	sum.Add(b)
	if sum.Sub(b) != a {
		t.Error("(a+b)-b != a: Add or Sub misses a field")
	}
}

// TestGaugesJSONTags: every gauge needs a json tag — it names the
// counter track in the trace export.
func TestGaugesJSONTags(t *testing.T) {
	gt := reflect.TypeOf(obs.Gauges{})
	for i := 0; i < gt.NumField(); i++ {
		if gt.Field(i).Tag.Get("json") == "" {
			t.Errorf("Gauges.%s has no json tag (counter track name)", gt.Field(i).Name)
		}
	}
}

// TestTracerRecordsInOrder: below capacity, nothing drops and spans
// come back in recording order.
func TestTracerRecordsInOrder(t *testing.T) {
	tr := obs.NewTracer(8)
	for i := 0; i < 5; i++ {
		tr.Record(obs.Span{Name: "s", Ph: obs.PhComplete, T: uint64(i)})
	}
	if tr.Len() != 5 || tr.Dropped() != 0 {
		t.Fatalf("len=%d dropped=%d, want 5/0", tr.Len(), tr.Dropped())
	}
	for i, s := range tr.Spans() {
		if s.T != uint64(i) {
			t.Fatalf("span %d at T=%d, want %d", i, s.T, i)
		}
	}
	st := tr.Stats()
	if st.Spans != 5 || st.Instants != 0 {
		t.Fatalf("stats = %+v, want 5 spans", st)
	}
}

// TestTracerRingEviction: past capacity, the oldest records drop, the
// dropped counter says how many, and order stays oldest-first.
func TestTracerRingEviction(t *testing.T) {
	tr := obs.NewTracer(4)
	for i := 0; i < 11; i++ {
		tr.Record(obs.Span{Ph: obs.PhInstant, T: uint64(i)})
	}
	if tr.Len() != 4 {
		t.Fatalf("len = %d, want capacity 4", tr.Len())
	}
	if tr.Dropped() != 7 {
		t.Fatalf("dropped = %d, want 7", tr.Dropped())
	}
	spans := tr.Spans()
	for i, s := range spans {
		if want := uint64(7 + i); s.T != want {
			t.Fatalf("span %d at T=%d, want %d (newest window, oldest first)", i, s.T, want)
		}
	}
	if st := tr.Stats(); st.Instants != 11 {
		t.Fatalf("instants = %d, want 11 (drops do not uncount)", st.Instants)
	}
}

// TestTracerDefaultCap: capacity < 1 falls back to the default.
func TestTracerDefaultCap(t *testing.T) {
	tr := obs.NewTracer(0)
	for i := 0; i < obs.DefaultTraceCap; i++ {
		tr.Record(obs.Span{Ph: obs.PhComplete})
	}
	if tr.Dropped() != 0 || tr.Len() != obs.DefaultTraceCap {
		t.Fatalf("default cap: len=%d dropped=%d", tr.Len(), tr.Dropped())
	}
}

// TestMetricsDueRecord: boundaries fire at exact multiples of the
// interval, and each Record advances exactly one boundary.
func TestMetricsDueRecord(t *testing.T) {
	m := obs.NewMetrics(100, 16)
	if m.Due(99) {
		t.Fatal("due before first boundary")
	}
	if !m.Due(100) {
		t.Fatal("not due at first boundary")
	}
	// An event at t=350 crosses boundaries 100, 200, 300: record each.
	for m.Due(350) {
		m.Record(obs.Gauges{QueueDepth: 3}, []uint64{1, 2})
	}
	if m.Len() != 3 {
		t.Fatalf("len = %d, want 3 samples for 3 crossed boundaries", m.Len())
	}
	for i, s := range m.Samples() {
		if want := uint64(100 * (i + 1)); s.T != want {
			t.Fatalf("sample %d at T=%d, want %d", i, s.T, want)
		}
		if s.G.QueueDepth != 3 || len(s.Shards) != 2 {
			t.Fatalf("sample %d payload %+v", i, s)
		}
	}
}

// TestMetricsRingEviction: the sample ring keeps the newest window.
func TestMetricsRingEviction(t *testing.T) {
	m := obs.NewMetrics(10, 4)
	for i := 0; i < 9; i++ {
		m.Record(obs.Gauges{}, nil)
	}
	if m.Len() != 4 || m.Dropped() != 5 {
		t.Fatalf("len=%d dropped=%d, want 4/5", m.Len(), m.Dropped())
	}
	s := m.Samples()
	for i := range s {
		if want := uint64(10 * (6 + i)); s[i].T != want {
			t.Fatalf("sample %d at T=%d, want %d", i, s[i].T, want)
		}
	}
}

// TestMetricsDefaults: non-positive interval/capacity fall back.
func TestMetricsDefaults(t *testing.T) {
	m := obs.NewMetrics(0, 0)
	if m.Interval() != obs.DefaultMetricsInterval {
		t.Fatalf("interval = %d, want default", m.Interval())
	}
	if m.Due(obs.DefaultMetricsInterval-1) || !m.Due(obs.DefaultMetricsInterval) {
		t.Fatal("default interval boundary wrong")
	}
}

// TestWriteTraceRoundTrip: the export parses as JSON, has the expected
// event mix, and reports ring truncation in otherData.
func TestWriteTraceRoundTrip(t *testing.T) {
	tr := obs.NewTracer(8)
	tr.Record(obs.Span{
		Name: "service", Cat: "serve", Ph: obs.PhComplete, T: 100, Dur: 50,
		PID: 0, TID: 3, Args: []obs.Attr{{Key: "req", Val: 7}, {Key: "worker", Val: 3}},
	})
	tr.Record(obs.Span{Name: "shed", Cat: "client", Ph: obs.PhInstant, T: 160, PID: 1, TID: 9})
	m := obs.NewMetrics(64, 8)
	m.Record(obs.Gauges{QueueDepth: 4, BusyWorkers: 2}, []uint64{3, 1})

	var buf bytes.Buffer
	if err := obs.WriteTrace(&buf, tr, m); err != nil {
		t.Fatal(err)
	}
	var f struct {
		TraceEvents []struct {
			Name  string         `json:"name"`
			Ph    string         `json:"ph"`
			Ts    uint64         `json:"ts"`
			Dur   *uint64        `json:"dur"`
			PID   int            `json:"pid"`
			TID   int            `json:"tid"`
			Scope string         `json:"s"`
			Args  map[string]any `json:"args"`
		} `json:"traceEvents"`
		OtherData map[string]any `json:"otherData"`
	}
	if err := json.Unmarshal(buf.Bytes(), &f); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	var nX, nI, nC int
	for _, ev := range f.TraceEvents {
		switch ev.Ph {
		case "X":
			nX++
			if ev.Dur == nil {
				t.Errorf("complete event %q without dur", ev.Name)
			}
			if ev.Name == "service" {
				if *ev.Dur != 50 || ev.Ts != 100 || ev.TID != 3 {
					t.Errorf("service span mangled: %+v", ev)
				}
				if got := ev.Args["worker"]; got != float64(3) {
					t.Errorf("service span worker arg = %v", got)
				}
			}
		case "i":
			nI++
			if ev.Scope != "t" {
				t.Errorf("instant %q scope = %q, want t", ev.Name, ev.Scope)
			}
		case "C":
			nC++
		default:
			t.Errorf("unexpected phase %q", ev.Ph)
		}
	}
	gaugeTracks := reflect.TypeOf(obs.Gauges{}).NumField()
	if nX != 1 || nI != 1 || nC != gaugeTracks+1 {
		t.Fatalf("event mix X=%d i=%d C=%d, want 1/1/%d", nX, nI, nC, gaugeTracks+1)
	}
	for _, k := range []string{"dropped_spans", "dropped_samples", "metrics_interval_cycles"} {
		if _, ok := f.OtherData[k]; !ok {
			t.Errorf("otherData missing %q", k)
		}
	}
}

// TestWriteTraceNilParts: either source may be nil; the output is still
// a valid, loadable trace.
func TestWriteTraceNilParts(t *testing.T) {
	for _, tc := range []struct {
		name string
		tr   *obs.Tracer
		m    *obs.Metrics
	}{
		{"both nil", nil, nil},
		{"tracer only", obs.NewTracer(2), nil},
		{"metrics only", nil, obs.NewMetrics(1, 2)},
	} {
		var buf bytes.Buffer
		if err := obs.WriteTrace(&buf, tc.tr, tc.m); err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		var f map[string]any
		if err := json.Unmarshal(buf.Bytes(), &f); err != nil {
			t.Fatalf("%s: invalid JSON: %v", tc.name, err)
		}
		if _, ok := f["traceEvents"].([]any); !ok {
			t.Fatalf("%s: traceEvents missing or not an array", tc.name)
		}
	}
}

// TestWriteTraceDeterministic: two identical recordings export
// byte-identical files.
func TestWriteTraceDeterministic(t *testing.T) {
	build := func() ([]byte, error) {
		tr := obs.NewTracer(4)
		tr.Record(obs.Span{Name: "a", Ph: obs.PhComplete, T: 1, Dur: 2,
			Args: []obs.Attr{{Key: "z", Val: 1}, {Key: "a", Val: 2}, {Key: "m", Val: 3}}})
		m := obs.NewMetrics(5, 4)
		m.Record(obs.Gauges{QueueDepth: 1}, []uint64{9, 8, 7})
		var buf bytes.Buffer
		err := obs.WriteTrace(&buf, tr, m)
		return buf.Bytes(), err
	}
	a, err := build()
	if err != nil {
		t.Fatal(err)
	}
	b, err := build()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("trace export is not byte-deterministic")
	}
}
