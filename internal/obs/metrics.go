package obs

// Gauges is one deterministic snapshot of the serving simulator's
// instantaneous state, sampled on virtual-clock boundaries. The Add/Sub
// completeness discipline mirrors serve.Breakdown so timelines can be
// aggregated across runs; TestGaugesAddCoversAllFields fails if a newly
// added gauge is omitted.
type Gauges struct {
	// QueueDepth is the total number of queued attempts over all
	// dispatch shards; MaxShardDepth the deepest single shard.
	QueueDepth    uint64 `json:"queue_depth"`
	MaxShardDepth uint64 `json:"max_shard_depth"`
	// BusyWorkers counts workers inside an enclave entry; DownWorkers
	// counts crashed workers awaiting rebuild.
	BusyWorkers uint64 `json:"busy_workers"`
	DownWorkers uint64 `json:"down_workers"`
	// InFlightBatches counts workers currently serving a batched entry.
	InFlightBatches uint64 `json:"in_flight_batches"`
	// PagesCommitted is the cumulative count of EPC pages committed at
	// run time (EDMM / minor faults) up to the sample boundary.
	PagesCommitted uint64 `json:"pages_committed"`
}

// Add accumulates o into g, field-wise.
func (g *Gauges) Add(o Gauges) {
	g.QueueDepth += o.QueueDepth
	g.MaxShardDepth += o.MaxShardDepth
	g.BusyWorkers += o.BusyWorkers
	g.DownWorkers += o.DownWorkers
	g.InFlightBatches += o.InFlightBatches
	g.PagesCommitted += o.PagesCommitted
}

// Sub returns the field-wise difference g - o, where o is an earlier
// snapshot of the same accumulator.
func (g Gauges) Sub(o Gauges) Gauges {
	g.QueueDepth -= o.QueueDepth
	g.MaxShardDepth -= o.MaxShardDepth
	g.BusyWorkers -= o.BusyWorkers
	g.DownWorkers -= o.DownWorkers
	g.InFlightBatches -= o.InFlightBatches
	g.PagesCommitted -= o.PagesCommitted
	return g
}

// Sample is one point of the metrics timeline.
type Sample struct {
	T uint64 `json:"t"`
	G Gauges `json:"gauges"`
	// Shards is the per-shard queue depth at T (one entry per dispatch
	// shard).
	Shards []uint64 `json:"shards,omitempty"`
}

// DefaultMetricsCap is the sample-ring capacity for capacity < 1, and
// DefaultMetricsInterval the sample period for interval < 1.
const (
	DefaultMetricsCap      = 1 << 12
	DefaultMetricsInterval = 1 << 16
)

// Metrics is a deterministic gauge timeline: the simulation calls Due
// before processing each event and Records a sample per crossed
// boundary. Sampling never schedules events — the simulator reads its
// own state at boundaries it was already passing — so an attached
// Metrics cannot perturb event order. Like the Tracer, the timeline is
// ring-buffered with an explicit dropped counter.
type Metrics struct {
	interval uint64
	next     uint64
	cap      int
	buf      []Sample
	head     int // ring write position once the buffer is full
	dropped  uint64
}

// NewMetrics returns a timeline sampling every interval virtual cycles,
// retaining up to capacity samples.
func NewMetrics(interval uint64, capacity int) *Metrics {
	if interval < 1 {
		interval = DefaultMetricsInterval
	}
	if capacity < 1 {
		capacity = DefaultMetricsCap
	}
	return &Metrics{interval: interval, next: interval, cap: capacity}
}

// Interval returns the sample period in virtual cycles.
func (m *Metrics) Interval() uint64 { return m.interval }

// Due reports whether the next sample boundary is at or before t.
func (m *Metrics) Due(t uint64) bool { return m.next <= t }

// Record stores a sample at the current boundary and advances to the
// next one. Call only while Due; between events the simulated state is
// constant, so recording the same gauges at each crossed boundary is an
// honest timeline.
func (m *Metrics) Record(g Gauges, shards []uint64) {
	s := Sample{T: m.next, G: g, Shards: shards}
	m.next += m.interval
	if len(m.buf) < m.cap {
		m.buf = append(m.buf, s)
		return
	}
	m.buf[m.head] = s
	m.head = (m.head + 1) % m.cap
	m.dropped++
}

// Len returns the number of retained samples.
func (m *Metrics) Len() int { return len(m.buf) }

// Dropped returns how many samples were evicted from the ring.
func (m *Metrics) Dropped() uint64 { return m.dropped }

// Samples returns the retained timeline in time order, oldest first.
func (m *Metrics) Samples() []Sample {
	if len(m.buf) < m.cap || m.head == 0 {
		return append([]Sample(nil), m.buf...)
	}
	out := make([]Sample, 0, len(m.buf))
	out = append(out, m.buf[m.head:]...)
	return append(out, m.buf[:m.head]...)
}
