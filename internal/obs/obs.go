// Package obs is the deterministic observability layer: per-request
// span tracing, virtual-clock metrics timelines, log-bucketed latency
// histograms and hierarchical cycle-attribution profiles.
//
// Everything in this package READS simulated state and never steers it:
// no type here schedules events, draws randomness or touches a clock.
// Recording a span is plain host-side bookkeeping, so attaching a
// Tracer/Metrics/Profiler to a simulation leaves every simulated cycle,
// check value and golden entry bit-identical — the zero-perturbation
// invariant the serve and query differential tests pin.
//
// The package is a leaf: it imports only the standard library, so the
// engine, exec and serve layers can all attach to it without cycles.
package obs

// Attr is one named uint64 attribute attached to a span or a profile
// node (worker/shard/generation ids on spans, cycle attributions on
// profile phases). A slice of Attrs keeps attribute order deterministic
// where a map would not.
type Attr struct {
	Key string
	Val uint64
}

// Span phase kinds, matching the Chrome trace-event "ph" field.
const (
	PhComplete = 'X' // a [T, T+Dur) interval
	PhInstant  = 'i' // a point event
)

// Span is one trace record on the virtual clock: a complete interval
// (PhComplete) or an instant (PhInstant). PID/TID select the Perfetto
// track: the serving simulator uses pid 0 / tid worker for server-side
// spans and pid 1 / tid client for client-side ones.
type Span struct {
	Name string
	Cat  string
	Ph   byte
	T    uint64 // start (or instant time) in virtual cycles
	Dur  uint64 // PhComplete only
	PID  int
	TID  int
	Args []Attr
}

// TraceStats counts a Tracer's traffic. The Add/Sub completeness
// discipline mirrors serve.Breakdown: TestTraceStatsAddCoversAllFields
// fails if a newly added counter is omitted.
type TraceStats struct {
	// Spans and Instants count recorded events by phase kind.
	Spans    uint64 `json:"spans"`
	Instants uint64 `json:"instants"`
	// Dropped counts records evicted from the ring buffer to make room
	// for newer ones — the explicit truncation signal.
	Dropped uint64 `json:"dropped"`
}

// Add accumulates o into s, field-wise.
func (s *TraceStats) Add(o TraceStats) {
	s.Spans += o.Spans
	s.Instants += o.Instants
	s.Dropped += o.Dropped
}

// Sub returns the field-wise difference s - o, where o is an earlier
// snapshot of the same accumulator.
func (s TraceStats) Sub(o TraceStats) TraceStats {
	s.Spans -= o.Spans
	s.Instants -= o.Instants
	s.Dropped -= o.Dropped
	return s
}

// DefaultTraceCap is the ring capacity NewTracer uses for capacity < 1.
const DefaultTraceCap = 1 << 16

// Tracer is a fixed-capacity ring buffer of spans. Once full, each new
// record evicts the oldest one and increments the dropped counter, so a
// long scenario keeps its most recent window and reports exactly how
// much history it shed.
type Tracer struct {
	cap   int
	buf   []Span
	next  int // ring write position once the buffer is full
	stats TraceStats
}

// NewTracer returns a tracer retaining up to capacity records
// (DefaultTraceCap when capacity < 1).
func NewTracer(capacity int) *Tracer {
	if capacity < 1 {
		capacity = DefaultTraceCap
	}
	return &Tracer{cap: capacity}
}

// Record appends one span, evicting the oldest record when full.
func (t *Tracer) Record(s Span) {
	if s.Ph == PhInstant {
		t.stats.Instants++
	} else {
		t.stats.Spans++
	}
	if len(t.buf) < t.cap {
		t.buf = append(t.buf, s)
		return
	}
	t.buf[t.next] = s
	t.next = (t.next + 1) % t.cap
	t.stats.Dropped++
}

// Len returns the number of retained records.
func (t *Tracer) Len() int { return len(t.buf) }

// Dropped returns how many records were evicted from the ring.
func (t *Tracer) Dropped() uint64 { return t.stats.Dropped }

// Stats returns the tracer's traffic counters.
func (t *Tracer) Stats() TraceStats { return t.stats }

// Spans returns the retained records in recording order, oldest first.
func (t *Tracer) Spans() []Span {
	if len(t.buf) < t.cap || t.next == 0 {
		return append([]Span(nil), t.buf...)
	}
	out := make([]Span, 0, len(t.buf))
	out = append(out, t.buf[t.next:]...)
	return append(out, t.buf[:t.next]...)
}
