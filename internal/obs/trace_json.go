package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"reflect"
)

// Chrome trace-event JSON export (the "JSON Array Format" with the
// traceEvents wrapper object), loadable in Perfetto and chrome://tracing.
// Spans become "X" (complete) and "i" (instant) events; the metrics
// timeline becomes "C" (counter) events. Timestamps are emitted in raw
// virtual cycles — the trace is a simulated timeline, not host time, so
// the "microsecond" unit the viewers assume is just a label.
//
// Output is byte-deterministic: events are written in recording order
// and args as maps, which encoding/json marshals with sorted keys.

// traceEvent is one trace-event record. Dur uses a pointer so instant
// and counter events omit it while complete events keep an explicit 0.
type traceEvent struct {
	Name  string         `json:"name"`
	Cat   string         `json:"cat,omitempty"`
	Ph    string         `json:"ph"`
	Ts    uint64         `json:"ts"`
	Dur   *uint64        `json:"dur,omitempty"`
	PID   int            `json:"pid"`
	TID   int            `json:"tid"`
	Scope string         `json:"s,omitempty"` // instant scope
	Args  map[string]any `json:"args,omitempty"`
}

type traceFile struct {
	TraceEvents []traceEvent   `json:"traceEvents"`
	OtherData   map[string]any `json:"otherData,omitempty"`
}

// WriteTrace writes tr's spans and m's metrics timeline (either may be
// nil) as Chrome trace-event JSON. Ring-buffer truncation is reported
// in otherData (dropped_spans / dropped_samples), never silently.
func WriteTrace(w io.Writer, tr *Tracer, m *Metrics) error {
	var f traceFile
	f.TraceEvents = []traceEvent{} // a valid, loadable trace even when empty
	other := map[string]any{}
	if tr != nil {
		for _, s := range tr.Spans() {
			ev := traceEvent{
				Name: s.Name, Cat: s.Cat, Ts: s.T, PID: s.PID, TID: s.TID,
			}
			if s.Ph == PhInstant {
				ev.Ph = "i"
				ev.Scope = "t"
			} else {
				ev.Ph = "X"
				dur := s.Dur
				ev.Dur = &dur
			}
			if len(s.Args) > 0 {
				ev.Args = map[string]any{}
				for _, a := range s.Args {
					ev.Args[a.Key] = a.Val
				}
			}
			f.TraceEvents = append(f.TraceEvents, ev)
		}
		other["dropped_spans"] = tr.Dropped()
	}
	if m != nil {
		f.TraceEvents = append(f.TraceEvents, counterEvents(m)...)
		other["dropped_samples"] = m.Dropped()
		other["metrics_interval_cycles"] = m.Interval()
	}
	f.OtherData = other
	enc := json.NewEncoder(w)
	return enc.Encode(f)
}

// counterEvents renders the gauge timeline as one counter track per
// Gauges field plus a stacked per-shard queue-depth track. The Gauges
// struct is walked reflectively so a newly added gauge appears in the
// export by construction.
func counterEvents(m *Metrics) []traceEvent {
	var evs []traceEvent
	gt := reflect.TypeOf(Gauges{})
	for _, s := range m.Samples() {
		gv := reflect.ValueOf(s.G)
		for i := 0; i < gv.NumField(); i++ {
			evs = append(evs, traceEvent{
				Name: gaugeName(gt.Field(i)), Ph: "C", Ts: s.T,
				Args: map[string]any{"value": gv.Field(i).Uint()},
			})
		}
		if len(s.Shards) > 0 {
			args := map[string]any{}
			for si, d := range s.Shards {
				args[fmt.Sprintf("s%03d", si)] = d
			}
			evs = append(evs, traceEvent{Name: "shard_depth", Ph: "C", Ts: s.T, Args: args})
		}
	}
	return evs
}

// gaugeName is the counter-track name of a Gauges field: its json tag.
func gaugeName(f reflect.StructField) string {
	if tag := f.Tag.Get("json"); tag != "" {
		return tag
	}
	return f.Name
}
