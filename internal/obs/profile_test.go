package obs_test

import (
	"bytes"
	"sort"
	"strings"
	"testing"

	"sgxbench/internal/obs"
)

// TestProfilerTreeShape: nested Push/Pop and Leaf build the expected
// tree with inclusive cycles on scopes and root accumulation.
func TestProfilerTreeShape(t *testing.T) {
	p := obs.NewProfiler("run")
	p.Push("q2")
	p.Push("join")
	p.Leaf("partition", 30, []obs.Attr{{Key: "work", Val: 25}})
	p.Leaf("probe", 50, []obs.Attr{{Key: "work", Val: 40}})
	p.Pop(100) // join: 20 self
	p.Leaf("agg", 40, nil)
	p.Pop(160) // q2: 20 self
	if p.Depth() != 0 {
		t.Fatalf("depth = %d after balanced pops", p.Depth())
	}

	root := p.Root()
	if root.Name != "run" || root.Cycles != 160 {
		t.Fatalf("root = %s/%d, want run/160", root.Name, root.Cycles)
	}
	q2 := root.Children[0]
	if q2.Name != "q2" || q2.Cycles != 160 || q2.Count != 1 {
		t.Fatalf("q2 = %+v", q2)
	}
	if len(q2.Children) != 2 {
		t.Fatalf("q2 children = %d, want join+agg", len(q2.Children))
	}
	join := q2.Children[0]
	if join.Cycles != 100 || join.SelfCycles() != 20 {
		t.Fatalf("join cycles=%d self=%d, want 100/20", join.Cycles, join.SelfCycles())
	}
	probe := join.Children[1]
	if probe.Name != "probe" || probe.Cycles != 50 || probe.Count != 1 {
		t.Fatalf("probe = %+v", probe)
	}
	if len(probe.Attrs) != 1 || probe.Attrs[0] != (obs.Attr{Key: "work", Val: 40}) {
		t.Fatalf("probe attrs = %+v", probe.Attrs)
	}
	if q2.SelfCycles() != 20 || root.SelfCycles() != 0 {
		t.Fatalf("self: q2=%d root=%d, want 20/0", q2.SelfCycles(), root.SelfCycles())
	}
}

// TestProfilerMergesRepeatedScopes: re-entering the same scope under
// the same parent accumulates into one node (profiles span benchmark
// repetitions).
func TestProfilerMergesRepeatedScopes(t *testing.T) {
	p := obs.NewProfiler("run")
	for i := 0; i < 3; i++ {
		p.Push("q1")
		p.Leaf("filter", 10, []obs.Attr{{Key: "work", Val: 7}, {Key: "stall.ssb", Val: 2}})
		p.Pop(25)
	}
	root := p.Root()
	if len(root.Children) != 1 {
		t.Fatalf("root children = %d, want merged 1", len(root.Children))
	}
	q1 := root.Children[0]
	if q1.Cycles != 75 || q1.Count != 3 {
		t.Fatalf("q1 = %d cycles x%d, want 75 x3", q1.Cycles, q1.Count)
	}
	f := q1.Children[0]
	if f.Cycles != 30 || f.Count != 3 {
		t.Fatalf("filter = %d cycles x%d, want 30 x3", f.Cycles, f.Count)
	}
	var want = []obs.Attr{{Key: "work", Val: 21}, {Key: "stall.ssb", Val: 6}}
	if len(f.Attrs) != 2 || f.Attrs[0] != want[0] || f.Attrs[1] != want[1] {
		t.Fatalf("merged attrs = %+v, want %+v", f.Attrs, want)
	}
	if root.Cycles != 75 {
		t.Fatalf("root cycles = %d, want 75", root.Cycles)
	}
}

// TestProfilerSelfCyclesSaturates: children exceeding the parent's
// inclusive cycles (possible when a scope was never popped with its
// full span) yields self 0, not underflow.
func TestProfilerSelfCyclesSaturates(t *testing.T) {
	p := obs.NewProfiler("run")
	p.Push("outer")
	p.Leaf("inner", 100, nil)
	p.Pop(60)
	if self := p.Root().Children[0].SelfCycles(); self != 0 {
		t.Fatalf("self = %d, want saturated 0", self)
	}
}

// TestProfilerPopPanics: an unmatched Pop is a programming error.
func TestProfilerPopPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Pop on empty stack did not panic")
		}
	}()
	obs.NewProfiler("run").Pop(1)
}

// TestWriteFolded: folded-stack lines are "path self" with ;-joined
// paths, only for nodes with nonzero self time, and the total equals
// the root's inclusive cycles when the tree is fully attributed.
func TestWriteFolded(t *testing.T) {
	p := obs.NewProfiler("run")
	p.Push("q2")
	p.Push("join")
	p.Leaf("probe", 50, nil)
	p.Pop(80) // join self 30
	p.Leaf("agg", 40, nil)
	p.Pop(120) // q2 self 0
	var buf bytes.Buffer
	if err := p.WriteFolded(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	sort.Strings(lines)
	want := []string{
		"run;q2;agg 40",
		"run;q2;join 30",
		"run;q2;join;probe 50",
	}
	if len(lines) != len(want) {
		t.Fatalf("folded lines = %q, want %q", lines, want)
	}
	var total uint64
	for i := range want {
		if lines[i] != want[i] {
			t.Fatalf("folded line %d = %q, want %q", i, lines[i], want[i])
		}
		var self uint64
		if _, err := fmtSscanSelf(lines[i], &self); err != nil {
			t.Fatal(err)
		}
		total += self
	}
	if total != p.Root().Cycles {
		t.Fatalf("folded total = %d, want root inclusive %d", total, p.Root().Cycles)
	}
}

func fmtSscanSelf(line string, self *uint64) (int, error) {
	i := strings.LastIndexByte(line, ' ')
	var v uint64
	for _, c := range line[i+1:] {
		v = v*10 + uint64(c-'0')
	}
	*self = v
	return 1, nil
}

// TestWriteTree: the tree render names every node with cycles, counts
// and attrs.
func TestWriteTree(t *testing.T) {
	p := obs.NewProfiler("run")
	p.Push("q1")
	p.Leaf("filter", 10, []obs.Attr{{Key: "work", Val: 7}})
	p.Pop(15)
	var buf bytes.Buffer
	if err := p.WriteTree(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, frag := range []string{"run", "q1", "filter", "x1", "work=7", "15 cycles", "10 cycles"} {
		if !strings.Contains(out, frag) {
			t.Errorf("tree output missing %q:\n%s", frag, out)
		}
	}
}
