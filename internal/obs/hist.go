package obs

import "math/bits"

// Log-bucketed latency histogram, HDR-style: each power-of-two octave
// splits into 1<<histSubBits sub-buckets, so the relative bucket width
// is at most 1/32 (~3%) everywhere while the whole uint64 range fits in
// a fixed 1920-entry count array. Values below two octaves of
// sub-buckets (v < 64) are recorded exactly. Pure integer arithmetic:
// recording and querying are deterministic and allocation-free, which
// is what lets the serving simulator replace its O(n log n) sorted-
// slice percentile pass without perturbing a single simulated cycle.

const (
	histSubBits = 5
	histSub     = 1 << histSubBits // sub-buckets per octave
	// histBuckets covers octaves histSubBits..63 plus the exact linear
	// region below histSub (bucketIndex peaks at histBuckets-1 for the
	// top sub-bucket of the e=63 octave).
	histBuckets = (64 - histSubBits + 1) * histSub
)

// Histogram is a log-bucketed distribution of uint64 values (virtual-
// clock cycles). The zero value is NOT ready; use NewHistogram.
type Histogram struct {
	counts []uint64
	n      uint64
	sum    uint64
	max    uint64
	min    uint64
}

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram {
	return &Histogram{counts: make([]uint64, histBuckets)}
}

// bucketIndex maps a value to its bucket.
func bucketIndex(v uint64) int {
	if v < histSub {
		return int(v)
	}
	e := bits.Len64(v) - 1 // 2^e <= v < 2^(e+1), e >= histSubBits
	return (e-histSubBits+1)*histSub + int(v>>uint(e-histSubBits)) - histSub
}

// bucketUpper returns the largest value mapping to bucket i.
func bucketUpper(i int) uint64 {
	oct := i / histSub
	if oct == 0 {
		return uint64(i)
	}
	e := oct + histSubBits - 1
	shift := uint(e - histSubBits)
	low := uint64(histSub+i%histSub) << shift
	return low + (uint64(1) << shift) - 1
}

// BucketWidth returns the width of the bucket containing v — the
// guaranteed bound on |Percentile(p) - exact p-th value| for any
// distribution, since bucketing preserves rank order.
func BucketWidth(v uint64) uint64 {
	if v < 2*histSub {
		return 1
	}
	return uint64(1) << uint(bits.Len64(v)-1-histSubBits)
}

// Record adds one value.
func (h *Histogram) Record(v uint64) {
	h.counts[bucketIndex(v)]++
	if h.n == 0 || v < h.min {
		h.min = v
	}
	h.n++
	h.sum += v
	if v > h.max {
		h.max = v
	}
}

// Count returns the number of recorded values.
func (h *Histogram) Count() uint64 { return h.n }

// Sum returns the sum of recorded values.
func (h *Histogram) Sum() uint64 { return h.sum }

// Mean returns the exact mean of recorded values (0 when empty).
func (h *Histogram) Mean() uint64 {
	if h.n == 0 {
		return 0
	}
	return h.sum / h.n
}

// Max returns the exact maximum recorded value (0 when empty).
func (h *Histogram) Max() uint64 { return h.max }

// Min returns the exact minimum recorded value (0 when empty).
func (h *Histogram) Min() uint64 { return h.min }

// Percentile returns the nearest-rank p-th percentile (p in [0, 100]),
// quantized to the upper edge of the rank's bucket and clamped to the
// exact [min, max] range: the result is >= the exact value and within
// one bucket width of it. Empty histograms return 0, and p <= 0 returns
// the exact minimum (the 0th percentile is the smallest value, not the
// upper edge of its bucket).
func (h *Histogram) Percentile(p int) uint64 {
	if h.n == 0 {
		return 0
	}
	if p <= 0 {
		return h.min
	}
	rank := (h.n*uint64(p) + 99) / 100
	if rank < 1 {
		rank = 1
	}
	var cum uint64
	for i, c := range h.counts {
		cum += c
		if cum >= rank {
			if u := bucketUpper(i); u < h.max {
				return u
			}
			return h.max
		}
	}
	return h.max
}

// Merge accumulates o into h.
func (h *Histogram) Merge(o *Histogram) {
	for i, c := range o.counts {
		h.counts[i] += c
	}
	if o.n > 0 && (h.n == 0 || o.min < h.min) {
		h.min = o.min
	}
	h.n += o.n
	h.sum += o.sum
	if o.max > h.max {
		h.max = o.max
	}
}
