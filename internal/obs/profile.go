package obs

import (
	"fmt"
	"io"
)

// Profiler is a hierarchical cycle-attribution registry: a tree of
// named scopes whose inclusive cycles come from the caller (exec.Group
// measures them over Mark/Since on its own clock), with leaf phases
// carrying engine-counter attributions. Repeated entries of the same
// scope under the same parent merge: cycles and counts accumulate, so
// one profiler can span benchmark repetitions.
//
// Like every type in this package it only records what it is told —
// attaching a profiler to a pipeline run changes no simulated number.
type Profiler struct {
	root  *Node
	stack []*Node
}

// Node is one scope of the profile tree.
type Node struct {
	Name string
	// Cycles is the node's inclusive virtual-clock cycles; Count how
	// many times the scope was entered (or the leaf recorded).
	Cycles uint64
	Count  uint64
	// Attrs carries engine-counter attributions on leaf phases (work
	// cycles, SSB stalls, EPC paging), merged by key across records.
	Attrs    []Attr
	Children []*Node
}

// NewProfiler returns a profiler with a root scope of the given name.
func NewProfiler(root string) *Profiler {
	return &Profiler{root: &Node{Name: root, Count: 1}}
}

// Root returns the profile tree.
func (p *Profiler) Root() *Node { return p.root }

// Depth returns the number of open scopes.
func (p *Profiler) Depth() int { return len(p.stack) }

// current is the innermost open scope (the root when none is open).
func (p *Profiler) current() *Node {
	if n := len(p.stack); n > 0 {
		return p.stack[n-1]
	}
	return p.root
}

// child finds or creates the named child of n.
func (n *Node) child(name string) *Node {
	for _, c := range n.Children {
		if c.Name == name {
			return c
		}
	}
	c := &Node{Name: name}
	n.Children = append(n.Children, c)
	return c
}

// SelfCycles returns the node's inclusive cycles minus its children's,
// saturating at zero — the folded-stack self time.
func (n *Node) SelfCycles() uint64 {
	var kids uint64
	for _, c := range n.Children {
		kids += c.Cycles
	}
	if kids >= n.Cycles {
		return 0
	}
	return n.Cycles - kids
}

// Push opens a scope named name under the current one.
func (p *Profiler) Push(name string) {
	c := p.current().child(name)
	c.Count++
	p.stack = append(p.stack, c)
}

// Pop closes the current scope, attributing cycles inclusive cycles to
// it. Panics on an empty stack — an unbalanced Push/Pop is a
// programming error, not a data condition.
func (p *Profiler) Pop(cycles uint64) {
	if len(p.stack) == 0 {
		panic("obs: Profiler.Pop without matching Push")
	}
	n := p.stack[len(p.stack)-1]
	n.Cycles += cycles
	p.stack = p.stack[:len(p.stack)-1]
	if len(p.stack) == 0 {
		p.root.Cycles += cycles
	}
}

// Leaf records a completed leaf phase of cycles under the current
// scope, merging attrs by key.
func (p *Profiler) Leaf(name string, cycles uint64, attrs []Attr) {
	n := p.current().child(name)
	n.Cycles += cycles
	n.Count++
	for _, a := range attrs {
		n.addAttr(a)
	}
}

func (n *Node) addAttr(a Attr) {
	for i := range n.Attrs {
		if n.Attrs[i].Key == a.Key {
			n.Attrs[i].Val += a.Val
			return
		}
	}
	n.Attrs = append(n.Attrs, a)
}

// WriteTree writes the profile as an indented per-operator x per-phase
// cycle tree.
func (p *Profiler) WriteTree(w io.Writer) error {
	return writeTree(w, p.root, 0)
}

func writeTree(w io.Writer, n *Node, depth int) error {
	if _, err := fmt.Fprintf(w, "%*s%-*s %12d cycles  x%d", 2*depth, "", 28-2*depth, n.Name, n.Cycles, n.Count); err != nil {
		return err
	}
	for _, a := range n.Attrs {
		if _, err := fmt.Fprintf(w, "  %s=%d", a.Key, a.Val); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintln(w); err != nil {
		return err
	}
	for _, c := range n.Children {
		if err := writeTree(w, c, depth+1); err != nil {
			return err
		}
	}
	return nil
}

// WriteFolded writes the profile as folded stacks — one
// "root;scope;...;leaf selfCycles" line per node with nonzero self
// time, flamegraph-compatible (feed to inferno / flamegraph.pl).
func (p *Profiler) WriteFolded(w io.Writer) error {
	return writeFolded(w, p.root, "")
}

func writeFolded(w io.Writer, n *Node, prefix string) error {
	path := n.Name
	if prefix != "" {
		path = prefix + ";" + n.Name
	}
	if self := n.SelfCycles(); self > 0 {
		if _, err := fmt.Fprintf(w, "%s %d\n", path, self); err != nil {
			return err
		}
	}
	for _, c := range n.Children {
		if err := writeFolded(w, c, path); err != nil {
			return err
		}
	}
	return nil
}
