module sgxbench

go 1.24
